#!/usr/bin/env bash
# Runs the repo's .clang-tidy gate over the library sources.
#
#   scripts/run_clang_tidy.sh [build-dir] [-- extra clang-tidy args]
#
# Configures `build-tidy/` (or the given dir) with a compile_commands.json
# and lints every src/**/*.cc translation unit; headers are covered through
# HeaderFilterRegex.  WarningsAsErrors in .clang-tidy makes any finding a
# nonzero exit, which is what the CI `lint` job gates on.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build-tidy}"

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "error: clang-tidy not found on PATH" >&2
  echo "       (apt-get install clang-tidy, or brew install llvm)" >&2
  exit 2
fi

cmake -B "${BUILD_DIR}" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
  -DCMAKE_BUILD_TYPE=Debug >/dev/null

mapfile -t sources < <(find src -name '*.cc' | sort)
echo "linting ${#sources[@]} translation units against .clang-tidy"

if command -v run-clang-tidy >/dev/null 2>&1; then
  run-clang-tidy -quiet -p "${BUILD_DIR}" "${sources[@]}"
else
  status=0
  for tu in "${sources[@]}"; do
    clang-tidy --quiet -p "${BUILD_DIR}" "${tu}" || status=1
  done
  exit "${status}"
fi
