#!/usr/bin/env bash
# Runs the repo's .clang-tidy gate over the library sources.
#
#   scripts/run_clang_tidy.sh [build-dir] [-- extra clang-tidy args]
#
# Configures `build-tidy/` (or the given dir) with a compile_commands.json
# and lints every src/**/*.cc translation unit; headers are covered through
# HeaderFilterRegex.  WarningsAsErrors in .clang-tidy makes any finding a
# nonzero exit, which is what the CI `lint` job gates on.
#
# Exit status: 0 clean, 1 findings, 2 clang-tidy missing, 3 compile
# database could not be produced.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build-tidy}"

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "error: clang-tidy not found on PATH" >&2
  echo "       install it (apt-get install clang-tidy | brew install llvm)" >&2
  echo "       or run scripts/lint_all.sh, which skips this stage when the" >&2
  echo "       tool is absent" >&2
  exit 2
fi

if ! cmake -B "${BUILD_DIR}" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
    -DCMAKE_BUILD_TYPE=Debug >/dev/null; then
  echo "error: cmake configure for the compile database failed" >&2
  echo "       (see output above; is a C++ toolchain installed?)" >&2
  exit 3
fi
if [ ! -f "${BUILD_DIR}/compile_commands.json" ]; then
  echo "error: ${BUILD_DIR}/compile_commands.json was not generated" >&2
  echo "       (the cmake generator in use may not support" >&2
  echo "       CMAKE_EXPORT_COMPILE_COMMANDS; use Ninja or Makefiles)" >&2
  exit 3
fi

mapfile -t sources < <(find src -name '*.cc' | sort)
echo "linting ${#sources[@]} translation units against .clang-tidy"

if command -v run-clang-tidy >/dev/null 2>&1; then
  run-clang-tidy -quiet -p "${BUILD_DIR}" "${sources[@]}"
else
  status=0
  for tu in "${sources[@]}"; do
    clang-tidy --quiet -p "${BUILD_DIR}" "${tu}" || status=1
  done
  exit "${status}"
fi
