#!/usr/bin/env bash
# Clang Static Analyzer pass over every library translation unit:
#
#   scripts/run_clang_analyzer.sh [build-dir]
#
# Runs `clang-tidy -checks=clang-analyzer-*` (path-sensitive symbolic
# execution: null derefs, use-after-move, leaked streams, dead stores)
# against the same compile database the .clang-tidy gate uses.  Kept as a
# separate pass because the analyzer is an order of magnitude slower than
# the syntactic checks; CI runs it as its own job.
#
# Findings are per-site actionable: fix the code, or — when the analyzer is
# provably wrong — add `// NOLINT(clang-analyzer-<check>): <why>` at the
# site (scripts/atypical_lint.py AL001 enforces the justification).
#
# Exit status: 0 clean, 1 findings, 2 clang-tidy missing, 3 compile
# database could not be produced.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build-analyzer}"

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "error: clang-tidy not found on PATH (the analyzer runs through it)" >&2
  echo "       install it (apt-get install clang-tidy | brew install llvm)" >&2
  exit 2
fi

if ! cmake -B "${BUILD_DIR}" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
    -DCMAKE_BUILD_TYPE=Debug >/dev/null; then
  echo "error: cmake configure for the compile database failed" >&2
  exit 3
fi
if [ ! -f "${BUILD_DIR}/compile_commands.json" ]; then
  echo "error: ${BUILD_DIR}/compile_commands.json was not generated" >&2
  exit 3
fi

mapfile -t sources < <(find src -name '*.cc' | sort)
echo "analyzing ${#sources[@]} translation units (clang-analyzer-*)"

CHECKS='-*,clang-analyzer-*'

if command -v run-clang-tidy >/dev/null 2>&1; then
  run-clang-tidy -quiet -p "${BUILD_DIR}" \
    "-checks=${CHECKS}" -warnings-as-errors='*' "${sources[@]}"
else
  status=0
  for tu in "${sources[@]}"; do
    clang-tidy --quiet -p "${BUILD_DIR}" \
      "--checks=${CHECKS}" --warnings-as-errors='*' "${tu}" || status=1
  done
  exit "${status}"
fi
