#!/usr/bin/env python3
"""Project-wide static lint for the atypical codebase (stdlib only).

Machine-enforces the conventions that DESIGN.md §10 documents.  Each check
has a stable ID; findings print as `file:line: ALxxx name: message`.

Checks
  AL001 nolint-justification   every NOLINT / NOLINTNEXTLINE carries a
                               `: <why>` justification after the check list.
  AL002 metric-name            obs metric names registered in src/ follow the
                               DESIGN §9 scheme (lowercase dotted path;
                               latency histograms end in `seconds`, count
                               histograms do not) and therefore fit
                               scripts/stats_schema.json.
  AL003 check-side-effect      no CHECK/DCHECK argument mutates state
                               (++/--/assignment/mutating calls): DCHECK
                               operands vanish in Release builds.
  AL004 raw-sync-primitive     no raw std::mutex / std::lock_guard /
                               std::condition_variable outside util/sync.h;
                               use the annotated wrappers.
  AL005 void-discard           a statement-level `(void)` discard carries a
                               trailing `// <why>` justification ([[nodiscard]]
                               escape hatch must be auditable).
  AL006 bare-assert            no bare `assert(`; use CHECK/DCHECK
                               (always-on / side-effect-free semantics).
  AL007 header-self-contained  every header compiles in isolation (built in;
                               run with --with-includes, it needs a C++
                               compiler).
  AL008 registered-metric      every `fault.*` / `degradation.*` metric name
                               registered in src/ appears in the
                               `resilienceMetrics` list of
                               scripts/stats_schema.json (DESIGN §12), and
                               every `serve.*` name in its `servingMetrics`
                               list (DESIGN §16), so both metric sets stay
                               closed and discoverable.
  AL009 unordered-iteration    no iteration over std::unordered_map/set in
                               the deterministic modules (src/core, src/cube,
                               src/index): hash-layout order leaks into ids,
                               output, or accumulation order.  Iterate a
                               sorted view, or carry `NOLINT(AL009): <proof
                               of order-independence>`.  Membership lookups
                               (find/contains/operator[]) are fine.
  AL010 nondeterminism-source  no wall/monotonic clock reads, rand()/
                               std::random_device, or address-as-identity
                               casts in the deterministic modules.  Escape
                               hatches: the seeded util::Rng, and timing via
                               util/stopwatch.h + obs (results never depend
                               on it).
  AL011 guarded-by-coverage    a class that owns a util Mutex must annotate
                               every mutable field with ATYPICAL_GUARDED_BY /
                               ATYPICAL_PT_GUARDED_BY (atomics, CondVars and
                               const members are exempt) or justify with
                               `NOLINT(AL011): <why it is not shared>`.
  AL012 float-accumulation     no +=/-= reduction into a double/float
                               declared outside the loop while iterating an
                               unordered container in the deterministic
                               modules — float addition does not commute, so
                               hash order would perturb the sum past the
                               1e-6 similarity-slack contract.  Reduce over
                               a sorted view (or the galloping ordered path,
                               see core/similarity.cc).

Suppressions reuse the NOLINT convention and must themselves be justified
(AL001):   ... code ...  // NOLINT(AL003): counter is test-local
`NOLINTNEXTLINE(ALxxx): why` suppresses on the following line.

Usage:
  scripts/atypical_lint.py [paths...]     lint the tree (default: src tests
                                          bench examples)
  scripts/atypical_lint.py --with-includes   also run AL007
  scripts/atypical_lint.py --self-test    run the fixture suite in
                                          scripts/lint_fixtures/
  scripts/atypical_lint.py --list-discards   print the (void)-discard audit
                                          list (file:line: justification)
Exit status: 0 clean, 1 findings, 2 usage/environment error.
"""

from __future__ import annotations

import argparse
import concurrent.futures
import dataclasses
import json
import os
import pathlib
import re
import shutil
import subprocess
import sys
import tempfile

REPO = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_DIRS = ["src", "tests", "bench", "examples"]
SOURCE_GLOBS = ("*.h", "*.cc")


@dataclasses.dataclass
class Finding:
    path: pathlib.Path
    line: int  # 1-based
    check: str  # "AL003"
    name: str  # "check-side-effect"
    message: str

    def render(self) -> str:
        try:
            rel = self.path.relative_to(REPO)
        except ValueError:
            rel = self.path
        return f"{rel}:{self.line}: {self.check} {self.name}: {self.message}"


@dataclasses.dataclass
class SourceFile:
    path: pathlib.Path
    raw: list[str]  # original lines, without trailing newline
    code: list[str]  # comments and string/char literals blanked out
    comments: list[str]  # the comment text per line ("" when none)


def strip_comments(text: str) -> tuple[list[str], list[str]]:
    """Returns (code_lines, comment_lines) with literals/comments blanked.

    Comments and string/character literals are replaced by spaces in the code
    view (so column numbers survive); the comment view holds only comment
    text.  Handles // and /* */ spanning lines; does not attempt raw strings
    (the codebase has none).
    """
    code_chars: list[str] = []
    comment_chars: list[str] = []
    state = "code"  # code | line_comment | block_comment | string | char
    i = 0
    n = len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                code_chars.append("  ")
                comment_chars.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                code_chars.append("  ")
                comment_chars.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
                code_chars.append('"')
                comment_chars.append(" ")
                i += 1
                continue
            if c == "'":
                state = "char"
                code_chars.append("'")
                comment_chars.append(" ")
                i += 1
                continue
            code_chars.append(c)
            comment_chars.append(c if c == "\n" else " ")
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                code_chars.append("\n")
                comment_chars.append("\n")
            else:
                code_chars.append(" ")
                comment_chars.append(c)
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                code_chars.append("  ")
                comment_chars.append("  ")
                i += 2
                continue
            code_chars.append("\n" if c == "\n" else " ")
            comment_chars.append(c)
        elif state == "string":
            if c == "\\":
                code_chars.append("  ")
                comment_chars.append("  ")
                i += 2
                continue
            if c == '"':
                state = "code"
                code_chars.append('"')
            elif c == "\n":  # unterminated (macro continuation); bail to code
                state = "code"
                code_chars.append("\n")
            else:
                code_chars.append(" ")
            comment_chars.append("\n" if c == "\n" else " ")
        elif state == "char":
            if c == "\\":
                code_chars.append("  ")
                comment_chars.append("  ")
                i += 2
                continue
            if c == "'":
                state = "code"
                code_chars.append("'")
            elif c == "\n":
                state = "code"
                code_chars.append("\n")
            else:
                code_chars.append(" ")
            comment_chars.append("\n" if c == "\n" else " ")
        i += 1
    code = "".join(code_chars).split("\n")
    comments = "".join(comment_chars).split("\n")
    return code, comments


def load(path: pathlib.Path) -> SourceFile:
    text = path.read_text(encoding="utf-8")
    raw = text.split("\n")
    code, comments = strip_comments(text)
    # split("\n") on both views yields equal lengths by construction.
    return SourceFile(path=path, raw=raw, code=code, comments=comments)


# --- suppression handling ---------------------------------------------------

NOLINT_RE = re.compile(
    r"\bNOLINT(?P<next>NEXTLINE)?\b(?:\((?P<checks>[^)]*)\))?")


def iter_nolints(comment: str):
    """Yields (next_line, checks_or_None, justified) for real suppressions.

    A NOLINT token is a suppression when followed by `(checks)`, by `:`, or
    by nothing (end of comment).  Prose mentions — "a bare NOLINT is fine" —
    are ignored.  `checks` is None for the suppress-everything bare form.
    """
    for m in NOLINT_RE.finditer(comment):
        tail = comment[m.end():]
        has_parens = m.group("checks") is not None
        justified = re.match(r":\s*\S", tail) is not None
        if has_parens or justified or tail.strip() == "":
            yield bool(m.group("next")), m.group("checks"), justified


def suppressed(sf: SourceFile, line_idx: int, check_id: str) -> bool:
    """True if `check_id` is NOLINT-suppressed at raw line index `line_idx`."""
    for idx, need_next in ((line_idx, False), (line_idx - 1, True)):
        if idx < 0 or idx >= len(sf.comments):
            continue
        for next_line, checks, _ in iter_nolints(sf.comments[idx]):
            if next_line != need_next:
                continue
            if checks is None:  # bare NOLINT suppresses everything
                return True
            listed = [c.strip() for c in checks.split(",")]
            if check_id in listed or "*" in listed:
                return True
    return False


# --- AL001: NOLINT justification -------------------------------------------

def check_nolint_justification(sf: SourceFile) -> list[Finding]:
    findings = []
    for i, comment in enumerate(sf.comments):
        for _, _, justified in iter_nolints(comment):
            if not justified:
                findings.append(Finding(
                    sf.path, i + 1, "AL001", "nolint-justification",
                    "NOLINT without a `: <why>` justification"))
    return findings


# --- AL002: obs metric naming ----------------------------------------------

METRIC_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z0-9_]+)+$")


def check_metric_names(sf: SourceFile) -> list[Finding]:
    # The §9 scheme governs production metrics: src/ only.  obs/ unit tests
    # use deliberately tiny names ("a", "h") to probe registry mechanics.
    rel = sf.path.relative_to(REPO).as_posix()
    if not (rel.startswith("src/") or rel.startswith("scripts/lint_fixtures/")):
        return []
    if rel.startswith("src/obs/"):  # the registry itself documents examples
        return []
    findings = []
    raw_text = "\n".join(sf.raw)
    for m in re.finditer(
            r"Get(Counter|Gauge|Histogram)\(\s*\"([^\"]*)\"", raw_text):
        kind, name = m.group(1), m.group(2)
        line = raw_text.count("\n", 0, m.start()) + 1
        if suppressed(sf, line - 1, "AL002"):
            continue
        if not METRIC_NAME_RE.match(name):
            findings.append(Finding(
                sf.path, line, "AL002", "metric-name",
                f"metric name {name!r} is not a lowercase dotted path "
                "(DESIGN §9)"))
            continue
        if kind == "Histogram":
            latency = True  # default layout is Latency()
            tail = raw_text[m.end(2) + 1:m.end(2) + 200]
            arg_tail = tail.split(")")[0]
            if "Counts" in arg_tail:
                latency = False
            if latency and not name.endswith("seconds"):
                findings.append(Finding(
                    sf.path, line, "AL002", "metric-name",
                    f"latency histogram {name!r} must end in 'seconds' "
                    "(DESIGN §9)"))
            if not latency and name.endswith("seconds"):
                findings.append(Finding(
                    sf.path, line, "AL002", "metric-name",
                    f"count histogram {name!r} must not end in 'seconds' "
                    "(DESIGN §9)"))
    return findings


# --- AL008: prefixed-metric registries ---------------------------------------

# Metric-name prefix -> (stats_schema.json registry key, DESIGN section).
REGISTERED_PREFIXES = {
    "fault.": ("resilienceMetrics", "DESIGN §12"),
    "degradation.": ("resilienceMetrics", "DESIGN §12"),
    "serve.": ("servingMetrics", "DESIGN §16"),
}
_metric_registries: dict[str, set[str]] | None = None


def metric_registry(key: str) -> set[str]:
    global _metric_registries
    if _metric_registries is None:
        schema = json.loads(
            (REPO / "scripts" / "stats_schema.json").read_text())
        _metric_registries = {
            k: set(schema.get(k, []))
            for k, _ in REGISTERED_PREFIXES.values()
        }
    return _metric_registries[key]


def check_resilience_metrics(sf: SourceFile) -> list[Finding]:
    # Same scope as AL002: production metrics live in src/.
    rel = sf.path.relative_to(REPO).as_posix()
    if not (rel.startswith("src/") or rel.startswith("scripts/lint_fixtures/")):
        return []
    findings = []
    raw_text = "\n".join(sf.raw)
    for m in re.finditer(
            r"Get(Counter|Gauge|Histogram)\(\s*\"([^\"]*)\"", raw_text):
        name = m.group(2)
        registry_key = None
        for prefix, (key, section) in REGISTERED_PREFIXES.items():
            if name.startswith(prefix):
                registry_key, design_section = key, section
                break
        if registry_key is None:
            continue
        line = raw_text.count("\n", 0, m.start()) + 1
        if suppressed(sf, line - 1, "AL008"):
            continue
        if name not in metric_registry(registry_key):
            findings.append(Finding(
                sf.path, line, "AL008", "registered-metric",
                f"metric {name!r} is not listed in "
                f"scripts/stats_schema.json {registry_key} "
                f"({design_section})"))
    return findings


# --- AL003: CHECK/DCHECK side effects ---------------------------------------

CHECK_CALL_RE = re.compile(
    r"\b(D?CHECK(_EQ|_NE|_LT|_LE|_GT|_GE|_OK)?)\s*\(")
# Mutating member calls we can name statically.  Anything matching
# `.name(` / `->name(` with one of these names inside a CHECK is flagged.
MUTATING_METHODS = {
    "push_back", "pop_back", "push", "pop", "insert", "emplace",
    "emplace_back", "erase", "clear", "reset", "release", "assign",
    "swap", "resize", "swap_remove", "Add", "Increment", "Record",
    "Set", "Flush", "Next", "NextBlock", "Consume", "Take",
}
# `=` that is not part of ==/!=/<=/>=/compound-assign or a [=] capture.
ASSIGN_RE = re.compile(r"(?<![=!<>+\-*/%&|^\[])=(?![=\]])")
INCDEC_RE = re.compile(r"\+\+|--")


def _check_argument_spans(code_text: str):
    """Yields (offset, arg_text) for every CHECK/DCHECK argument list."""
    for m in CHECK_CALL_RE.finditer(code_text):
        depth = 0
        start = m.end() - 1
        for j in range(start, min(len(code_text), start + 4000)):
            c = code_text[j]
            if c == "(":
                depth += 1
            elif c == ")":
                depth -= 1
                if depth == 0:
                    yield m.start(), code_text[start + 1:j]
                    break


def check_side_effects(sf: SourceFile) -> list[Finding]:
    findings = []
    code_text = "\n".join(sf.code)
    for offset, arg in _check_argument_spans(code_text):
        line = code_text.count("\n", 0, offset) + 1
        if suppressed(sf, line - 1, "AL003"):
            continue
        if INCDEC_RE.search(arg):
            findings.append(Finding(
                sf.path, line, "AL003", "check-side-effect",
                "++/-- inside CHECK/DCHECK (operands are not evaluated in "
                "Release DCHECKs)"))
            continue
        if ASSIGN_RE.search(arg):
            findings.append(Finding(
                sf.path, line, "AL003", "check-side-effect",
                "assignment inside CHECK/DCHECK"))
            continue
        for call in re.finditer(r"(?:\.|->)\s*(\w+)\s*\(", arg):
            if call.group(1) in MUTATING_METHODS:
                findings.append(Finding(
                    sf.path, line, "AL003", "check-side-effect",
                    f"call to mutating method '{call.group(1)}' inside "
                    "CHECK/DCHECK"))
                break
    return findings


# --- AL004: raw sync primitives ---------------------------------------------

RAW_SYNC_RE = re.compile(
    r"\bstd::(mutex|lock_guard|condition_variable)\b")
SYNC_EXEMPT = {"src/util/sync.h"}


def check_raw_sync(sf: SourceFile) -> list[Finding]:
    rel = sf.path.relative_to(REPO).as_posix()
    if rel in SYNC_EXEMPT:
        return []
    findings = []
    for i, code in enumerate(sf.code):
        m = RAW_SYNC_RE.search(code)
        if not m:
            continue
        if suppressed(sf, i, "AL004"):
            continue
        findings.append(Finding(
            sf.path, i + 1, "AL004", "raw-sync-primitive",
            f"raw std::{m.group(1)}; use the annotated wrappers in "
            "util/sync.h"))
    return findings


# --- AL005: (void) discard justification ------------------------------------

VOID_DISCARD_RE = re.compile(r"^\s*\(void\)")


def _void_discard_lines(sf: SourceFile):
    """Yields (index, justification) for statement-level (void) discards."""
    for i, code in enumerate(sf.code):
        if not VOID_DISCARD_RE.match(code):
            continue
        # Skip continuations: `EXPECT_DEATH(\n    (void)f(), ...)`.
        prev = sf.code[i - 1].rstrip() if i > 0 else ""
        if prev.endswith(("(", ",")):
            continue
        justification = sf.comments[i].strip()
        yield i, justification


def check_void_discards(sf: SourceFile) -> list[Finding]:
    findings = []
    for i, justification in _void_discard_lines(sf):
        if suppressed(sf, i, "AL005"):
            continue
        if not justification:
            findings.append(Finding(
                sf.path, i + 1, "AL005", "void-discard",
                "(void) discard without a trailing `// <why>` justification"))
    return findings


# --- AL006: bare assert ------------------------------------------------------

BARE_ASSERT_RE = re.compile(r"(?<![_\w])assert\s*\(")


def check_bare_assert(sf: SourceFile) -> list[Finding]:
    findings = []
    for i, code in enumerate(sf.code):
        # static_assert is fine; blank it before searching.
        m = BARE_ASSERT_RE.search(code.replace("static_assert", "STATIC_AST"))
        if not m:
            continue
        if suppressed(sf, i, "AL006"):
            continue
        findings.append(Finding(
            sf.path, i + 1, "AL006", "bare-assert",
            "bare assert(); use CHECK (always-on) or DCHECK (debug-only)"))
    return findings


# --- AL007: header self-containment ------------------------------------------

def _compile_header_alone(compiler: str, header: pathlib.Path) -> str:
    """Syntax-checks a TU holding only `header`; returns stderr on failure."""
    rel = header.relative_to(REPO / "src").as_posix()
    with tempfile.NamedTemporaryFile(
            mode="w", suffix=".cc", prefix="hdr_check_", delete=False) as tu:
        tu.write(f'#include "{rel}"\n')
        tu_path = tu.name
    try:
        proc = subprocess.run(
            [compiler, "-std=c++20", "-fsyntax-only", "-Wall", "-Wextra",
             f"-I{REPO / 'src'}", "-x", "c++", tu_path],
            capture_output=True, text=True)
        return "" if proc.returncode == 0 else proc.stderr
    finally:
        pathlib.Path(tu_path).unlink(missing_ok=True)


def check_headers_self_contained(compiler: str = "g++",
                                 jobs: int | None = None) -> list[Finding]:
    """AL007: every src/**/*.h compiles in isolation.

    A header that passes can be included first from any file, so
    include-order coupling cannot creep in.  Compiles fan out across all
    cores by default (each worker shells out to the compiler, so threads
    are enough); findings stay in sorted-header order regardless of which
    compile finishes first.
    """
    if jobs is None:
        jobs = os.cpu_count() or 1
    if shutil.which(compiler) is None:
        print(f"error: AL007 needs a C++ compiler; {compiler!r} not found "
              "(use --skip via lint_all.sh, or install one)", file=sys.stderr)
        sys.exit(2)
    headers = sorted((REPO / "src").rglob("*.h"))
    if not headers:
        print("error: no headers found under src/", file=sys.stderr)
        sys.exit(2)
    findings = []
    with concurrent.futures.ThreadPoolExecutor(max_workers=jobs) as pool:
        for header, err in zip(
                headers,
                pool.map(lambda h: _compile_header_alone(compiler, h),
                         headers)):
            if err:
                first = err.strip().splitlines()[0] if err.strip() else ""
                findings.append(Finding(
                    header, 1, "AL007", "header-self-contained",
                    f"header does not compile in isolation: {first}"))
    return findings


# --- AL009–AL012 shared machinery: deterministic-module scope ----------------
#
# The bit-identical guarantees (parallel integration, similarity pruning,
# degradation equivalence) are carried by src/core, src/cube and src/index;
# those directories are the "deterministic modules" the next four checks
# police.  Fixtures opt in so the self-test can exercise them.

DETERMINISTIC_PREFIXES = ("src/core/", "src/cube/", "src/index/")


def _in_deterministic_scope(sf: SourceFile) -> bool:
    rel = sf.path.relative_to(REPO).as_posix()
    return rel.startswith(DETERMINISTIC_PREFIXES) or \
        rel.startswith("scripts/lint_fixtures/")


def _companion_code(sf: SourceFile) -> str:
    """Code view of foo.h when linting foo.cc (member decls live there)."""
    if sf.path.suffix == ".cc":
        header = sf.path.with_suffix(".h")
        if header.exists():
            code, _ = strip_comments(header.read_text(encoding="utf-8"))
            return "\n".join(code)
    return ""


UNORDERED_DECL_RE = re.compile(
    r"\bstd::unordered_(?:map|set|multimap|multiset)\s*<")


def _match_angle(text: str, open_idx: int) -> int | None:
    """Index just past the `>` matching the `<` at open_idx, or None."""
    depth = 0
    for j in range(open_idx, min(len(text), open_idx + 2000)):
        c = text[j]
        if c == "<":
            depth += 1
        elif c == ">":
            depth -= 1
            if depth == 0:
                return j + 1
    return None


def _collect_unordered(code_text: str) -> dict[str, bool]:
    """Names declared with an unordered container type -> is_array.

    Covers direct declarations, `using X = std::unordered_*<...>` aliases and
    variables declared with those aliases (including C arrays of them, e.g.
    `LevelMap levels_[kNumCubeLevels]`).
    """
    names: dict[str, bool] = {}
    aliases: set[str] = set()
    for m in UNORDERED_DECL_RE.finditer(code_text):
        open_idx = code_text.index("<", m.start())
        close = _match_angle(code_text, open_idx)
        if close is None:
            continue
        before = code_text[max(0, m.start() - 80):m.start()]
        alias = re.search(r"\busing\s+(\w+)\s*=\s*$", before)
        if alias:
            aliases.add(alias.group(1))
            continue
        tail = code_text[close:close + 160]
        decl = re.match(r"\s*(?:const\s+)?[&*]?\s*([A-Za-z_]\w*)\s*(\[)?", tail)
        if decl is None:
            continue
        after_name = tail[decl.end(1):].lstrip()
        if after_name.startswith("("):  # function returning the container
            continue
        names[decl.group(1)] = decl.group(2) == "["
    for alias in aliases:
        for decl in re.finditer(
                rf"\b{alias}\b\s*(?:const\s+)?[&*]?\s*([A-Za-z_]\w*)\s*(\[)?",
                code_text):
            names[decl.group(1)] = decl.group(2) == "["
    return names


FOR_RE = re.compile(r"\bfor\s*\(")


def _for_loops(code_text: str):
    """Yields (offset, header_text, body_start, body_end) for every for()."""
    for m in FOR_RE.finditer(code_text):
        start = m.end() - 1
        depth = 0
        header_end = None
        for j in range(start, min(len(code_text), start + 2000)):
            c = code_text[j]
            if c == "(":
                depth += 1
            elif c == ")":
                depth -= 1
                if depth == 0:
                    header_end = j
                    break
        if header_end is None:
            continue
        header = code_text[start + 1:header_end]
        k = header_end + 1
        while k < len(code_text) and code_text[k] in " \t\n":
            k += 1
        if k < len(code_text) and code_text[k] == "{":
            depth = 0
            body_end = k
            for j in range(k, min(len(code_text), k + 40000)):
                c = code_text[j]
                if c == "{":
                    depth += 1
                elif c == "}":
                    depth -= 1
                    if depth == 0:
                        body_end = j
                        break
            yield m.start(), header, k + 1, body_end
        else:
            semi = code_text.find(";", k)
            yield m.start(), header, k, semi if semi != -1 else k


def _range_for_split(header: str) -> tuple[str, str] | None:
    """Splits `decl : expr`; None for a classic three-clause for."""
    depth = 0
    i = 0
    while i < len(header):
        c = header[i]
        if c in "<([":
            depth += 1
        elif c in ">)]":
            depth -= 1
        elif c == ":" and depth == 0:
            if i + 1 < len(header) and header[i + 1] == ":":
                i += 2
                continue
            return header[:i], header[i + 1:]
        i += 1
    return None


def _unordered_loops(sf: SourceFile):
    """Yields (line_idx, name, body_start, body_end) for loops whose range is
    an unordered container.

    A range expression `m[k]` over a scalar map is the *mapped value*, not the
    map — skipped; `levels_[i]` over an array of maps IS a map — flagged; the
    array itself (`for (auto& level : levels_)`) iterates in index order —
    skipped.  Classic iterator loops count when the init clause calls
    `.begin()` on an unordered name (so the sort-a-copy fix idiom, which
    calls .begin() outside any for-init, stays clean).
    """
    code_text = "\n".join(sf.code)
    names = _collect_unordered(code_text + "\n" + _companion_code(sf))
    if not names:
        return
    for offset, header, body_start, body_end in _for_loops(code_text):
        line_idx = code_text.count("\n", 0, offset)
        split = _range_for_split(header)
        if split is not None:
            expr = split[1].strip()
            m = re.match(
                r"^[&*]*\s*(?:\w+\s*(?:\.|->)\s*)*([A-Za-z_]\w*)\s*"
                r"(\[[^\]]*\])?\s*$", expr)
            if m is None:
                continue
            name, subscripted = m.group(1), m.group(2) is not None
            if name in names and names[name] == subscripted:
                yield line_idx, name, body_start, body_end
        else:
            init = header.split(";", 1)[0]
            m = re.search(
                r"([A-Za-z_]\w*)\s*(\[[^\]]*\])?\s*(?:\.|->)\s*c?begin\s*\(",
                init)
            if m and m.group(1) in names and \
                    names[m.group(1)] == (m.group(2) is not None):
                yield line_idx, m.group(1), body_start, body_end


# --- AL009: unordered-container iteration in deterministic modules -----------

def check_unordered_iteration(sf: SourceFile) -> list[Finding]:
    if not _in_deterministic_scope(sf):
        return []
    findings = []
    for line_idx, name, _, _ in _unordered_loops(sf):
        if suppressed(sf, line_idx, "AL009"):
            continue
        findings.append(Finding(
            sf.path, line_idx + 1, "AL009", "unordered-iteration",
            f"iteration over unordered container '{name}' in a deterministic "
            "module leaks hash-layout order; iterate a sorted view or prove "
            "order-independence with NOLINT(AL009): <why>"))
    return findings


# --- AL010: nondeterminism sources in deterministic modules ------------------

AL010_PATTERNS = [
    (re.compile(
        r"\bstd::chrono::(?:system_clock|steady_clock|high_resolution_clock)"
        r"\b"),
     "clock read; results must not depend on time — use util/stopwatch.h "
     "for obs-only timing"),
    (re.compile(r"(?<![\w:.])s?rand\s*\("),
     "rand()/srand(); use the seeded util::Rng"),
    (re.compile(r"\bstd::random_device\b"),
     "std::random_device; use the seeded util::Rng"),
    (re.compile(r"\breinterpret_cast\s*<\s*(?:std::)?u?intptr_t\b"),
     "address-as-identity cast; pointer values vary run to run (ASLR)"),
]


def check_nondeterminism_sources(sf: SourceFile) -> list[Finding]:
    if not _in_deterministic_scope(sf):
        return []
    findings = []
    for i, code in enumerate(sf.code):
        for pattern, why in AL010_PATTERNS:
            if not pattern.search(code):
                continue
            if suppressed(sf, i, "AL010"):
                continue
            findings.append(Finding(
                sf.path, i + 1, "AL010", "nondeterminism-source", why))
            break
    return findings


# --- AL011: GUARDED_BY coverage for Mutex-owning classes ---------------------

CLASS_HEAD_RE = re.compile(r"\b(?:class|struct)\s+([A-Za-z_]\w*)")
MEMBER_SKIP_RE = re.compile(
    r"^\s*(?:using|typedef|friend|static|constexpr|enum|class|struct|"
    r"template)\b")
GUARDED_ANNOT_RE = re.compile(r"\bATYPICAL_(?:PT_)?GUARDED_BY\s*\(")
MUTEX_OWNER_RE = re.compile(r"^(?:mutable\s+)?(?:util::)?Mutex\s+\w+$")


def _class_spans(code_text: str):
    """Yields (class_name, body_start, body_end) for class/struct bodies."""
    for m in CLASS_HEAD_RE.finditer(code_text):
        if re.search(r"\benum\s+$", code_text[max(0, m.start() - 16):m.start()]):
            continue
        body_open = None
        angle = 0
        j = m.end()
        while j < len(code_text):
            c = code_text[j]
            if c == "<":
                angle += 1
            elif c == ">":
                angle = max(0, angle - 1)
            elif angle == 0 and c == "{":
                body_open = j
                break
            elif angle == 0 and c in ";=,)":
                break  # forward decl / template parameter / variable
            j += 1
        if body_open is None:
            continue
        depth = 0
        for k in range(body_open, len(code_text)):
            c = code_text[k]
            if c == "{":
                depth += 1
            elif c == "}":
                depth -= 1
                if depth == 0:
                    yield m.group(1), body_open + 1, k
                    break


def _member_statements(code_text: str, start: int, end: int):
    """Yields (statement_text, start_offset) for depth-1 class members.

    Function definitions are discarded (their closing `}` is not followed by
    `;`); braced initializers and nested type definitions survive to the
    terminating `;` and are filtered by the caller.
    """
    depth = 1
    buf: list[str] = []
    buf_start: int | None = None
    i = start
    while i < end:
        c = code_text[i]
        if c == "{":
            depth += 1
            buf.append(c)
        elif c == "}":
            depth -= 1
            if depth == 1:
                j = i + 1
                while j < end and code_text[j] in " \t\n":
                    j += 1
                if j < end and code_text[j] == ";":
                    buf.append(c)  # braced init / nested type; keep going
                else:
                    buf, buf_start = [], None  # function definition body
            elif depth >= 1:
                buf.append(c)
        elif c == ";" and depth == 1:
            stmt = "".join(buf).strip()
            if stmt and buf_start is not None:
                yield stmt, buf_start
            buf, buf_start = [], None
        elif c == ":" and depth == 1 and \
                "".join(buf).strip() in ("public", "private", "protected"):
            buf, buf_start = [], None
        else:
            if buf_start is None and not c.isspace():
                buf_start = i
            buf.append(c)
        i += 1


def check_guarded_by(sf: SourceFile) -> list[Finding]:
    rel = sf.path.relative_to(REPO).as_posix()
    if not (rel.startswith("src/") or rel.startswith("scripts/lint_fixtures/")):
        return []
    findings = []
    code_text = "\n".join(sf.code)
    for cls, start, end in _class_spans(code_text):
        statements = list(_member_statements(code_text, start, end))
        if not any(MUTEX_OWNER_RE.match(s) for s, _ in statements):
            continue  # class does not own a util::Mutex
        for stmt, offset in statements:
            if MEMBER_SKIP_RE.match(stmt):
                continue
            if re.search(r"\b(?:Mutex|MutexLock|CondVar)\b", stmt):
                continue  # the lock itself / its companions
            if "std::atomic" in stmt or stmt.startswith("const "):
                continue  # atomics and immutable members are exempt
            if GUARDED_ANNOT_RE.search(stmt):
                continue
            bare = re.sub(r"\bATYPICAL_\w+\s*\([^)]*\)", "", stmt)
            bare = re.sub(r"\bATYPICAL_\w+\b", "", bare)
            if "(" in bare:
                continue  # function declaration or function-typed member
            line_idx = code_text.count("\n", 0, offset)
            if suppressed(sf, line_idx, "AL011"):
                continue
            head = re.split(r"[={]", bare)[0]
            tokens = re.findall(r"[A-Za-z_]\w*", head)
            field = tokens[-1] if tokens else stmt
            findings.append(Finding(
                sf.path, line_idx + 1, "AL011", "guarded-by-coverage",
                f"class '{cls}' owns a util::Mutex but field '{field}' has "
                "no ATYPICAL_GUARDED_BY/ATYPICAL_PT_GUARDED_BY annotation "
                "(justify unshared fields with NOLINT(AL011): <why>)"))
    return findings


# --- AL012: float accumulation over unordered iteration ----------------------

FLOAT_DECL_RE = re.compile(r"\b(?:double|float)\s+([A-Za-z_]\w*)")
ACCUM_RE = re.compile(r"[+\-]=")
LOOP_LOCAL_DECL_TEMPLATE = (
    r"(?:^|[;{{}}(\s])(?:const\s+)?(?:auto|[A-Za-z_][\w:]*(?:<[^;{{]*?>)?)"
    r"\s*[&*]?\s+{base}\s*[=({{\[]")


def check_float_accumulation(sf: SourceFile) -> list[Finding]:
    if not _in_deterministic_scope(sf):
        return []
    findings = []
    code_text = "\n".join(sf.code)
    float_names = set(FLOAT_DECL_RE.findall(
        code_text + "\n" + _companion_code(sf)))
    if not float_names:
        return []
    for _, name, body_start, body_end in _unordered_loops(sf):
        body = code_text[body_start:body_end]
        for acc in ACCUM_RE.finditer(body):
            before = body[:acc.start()]
            stmt_start = max(before.rfind(";"), before.rfind("{"),
                             before.rfind("}")) + 1
            lhs = before[stmt_start:]
            idents = re.findall(r"[A-Za-z_]\w*", lhs)
            if not idents or not (set(idents) & float_names):
                continue
            if re.search(LOOP_LOCAL_DECL_TEMPLATE.format(
                    base=re.escape(idents[0])), before):
                continue  # accumulator lives inside the loop: order-free
            line_idx = code_text.count("\n", 0, body_start + acc.start())
            if suppressed(sf, line_idx, "AL012"):
                continue
            findings.append(Finding(
                sf.path, line_idx + 1, "AL012", "float-accumulation",
                f"float accumulation into '{'.'.join(idents)}' while "
                f"iterating unordered container '{name}': float addition "
                "does not commute, so hash order perturbs the sum (1e-6 "
                "similarity-slack contract); reduce over a sorted view"))
    return findings


TEXT_CHECKS = [
    check_nolint_justification,
    check_metric_names,
    check_resilience_metrics,
    check_side_effects,
    check_raw_sync,
    check_void_discards,
    check_bare_assert,
    check_unordered_iteration,
    check_nondeterminism_sources,
    check_guarded_by,
    check_float_accumulation,
]


def lint_paths(paths: list[pathlib.Path]) -> list[Finding]:
    findings: list[Finding] = []
    files: list[pathlib.Path] = []
    for p in paths:
        if p.is_dir():
            for glob in SOURCE_GLOBS:
                files.extend(sorted(p.rglob(glob)))
        elif p.is_file():
            files.append(p)
        else:
            print(f"error: no such path: {p}", file=sys.stderr)
            sys.exit(2)
    for f in files:
        sf = load(f)
        for check in TEXT_CHECKS:
            findings.extend(check(sf))
    return findings


def list_discards(paths: list[pathlib.Path]) -> int:
    """Prints the audit list of every statement-level (void) discard."""
    count = 0
    files: list[pathlib.Path] = []
    for p in paths:
        if p.is_dir():
            for glob in SOURCE_GLOBS:
                files.extend(sorted(p.rglob(glob)))
        else:
            files.append(p)
    for f in files:
        sf = load(f)
        for i, justification in _void_discard_lines(sf):
            rel = f.relative_to(REPO)
            print(f"{rel}:{i + 1}: {justification or '(unjustified)'}")
            count += 1
    print(f"{count} (void) discard(s)")
    return 0


# --- self-test over fixture files -------------------------------------------

EXPECT_RE = re.compile(r"EXPECT-LINT(?P<next>-NEXT)?:\s*(?P<ids>AL\d{3}(?:\s*,\s*AL\d{3})*)")


def self_test() -> int:
    """Runs the text checks over scripts/lint_fixtures/*.

    Each fixture declares its expected findings with `// EXPECT-LINT: ALxxx`
    on the line the finding must anchor to, or `// EXPECT-LINT-NEXT: ALxxx`
    on the line above (for checks where a trailing comment would change the
    verdict, e.g. AL005).  A fixture with no EXPECT-LINT lines must lint
    clean.  The stats schema must also parse (AL002's contract is alignment
    with it).
    """
    fixture_dir = REPO / "scripts" / "lint_fixtures"
    fixtures = sorted(fixture_dir.glob("*.cc*"))
    if not fixtures:
        print(f"error: no fixtures in {fixture_dir}", file=sys.stderr)
        return 2
    schema = json.loads((REPO / "scripts" / "stats_schema.json").read_text())
    for key in ("counters", "gauges", "histograms"):
        if key not in schema.get("properties", {}):
            print(f"error: stats_schema.json lost its '{key}' map",
                  file=sys.stderr)
            return 2
    if not schema.get("resilienceMetrics"):
        print("error: stats_schema.json lost its 'resilienceMetrics' list "
              "(AL008's registry)", file=sys.stderr)
        return 2
    if not schema.get("servingMetrics"):
        print("error: stats_schema.json lost its 'servingMetrics' list "
              "(AL008's serving registry)", file=sys.stderr)
        return 2
    failures = []
    for fixture in fixtures:
        sf = load(fixture)
        got = {}
        for check in TEXT_CHECKS:
            for finding in check(sf):
                got.setdefault(finding.line, set()).add(finding.check)
        want = {}
        for i, raw in enumerate(sf.raw):
            for m in EXPECT_RE.finditer(raw):
                line = i + 2 if m.group("next") else i + 1
                for check_id in re.findall(r"AL\d{3}", m.group("ids")):
                    want.setdefault(line, set()).add(check_id)
        if got != want:
            failures.append((fixture, want, got))
    if failures:
        for fixture, want, got in failures:
            rel = fixture.relative_to(REPO)
            print(f"SELF-TEST FAIL {rel}", file=sys.stderr)
            for line in sorted(set(want) | set(got)):
                w = ",".join(sorted(want.get(line, ()))) or "-"
                g = ",".join(sorted(got.get(line, ()))) or "-"
                if want.get(line) != got.get(line):
                    print(f"  line {line}: expected [{w}] got [{g}]",
                          file=sys.stderr)
        return 1
    print(f"self-test ok: {len(fixtures)} fixtures")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("paths", nargs="*", default=None)
    parser.add_argument("--with-includes", action="store_true",
                        help="also run AL007 (needs a C++ compiler)")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="parallel AL007 header compiles "
                             "(default: all cores)")
    parser.add_argument("--self-test", action="store_true")
    parser.add_argument("--list-discards", action="store_true")
    args = parser.parse_args()

    if args.self_test:
        return self_test()

    paths = [pathlib.Path(p) if pathlib.Path(p).is_absolute()
             else REPO / p for p in (args.paths or DEFAULT_DIRS)]

    if args.list_discards:
        return list_discards(paths)

    findings = lint_paths(paths)
    if args.with_includes:
        findings.extend(check_headers_self_contained(jobs=args.jobs))
    for finding in findings:
        print(finding.render())
    if findings:
        print(f"\n{len(findings)} finding(s)", file=sys.stderr)
        return 1
    print("atypical_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
