#!/usr/bin/env python3
"""Project-wide static lint for the atypical codebase (stdlib only).

Machine-enforces the conventions that DESIGN.md §10 documents.  Each check
has a stable ID; findings print as `file:line: ALxxx name: message`.

Checks
  AL001 nolint-justification   every NOLINT / NOLINTNEXTLINE carries a
                               `: <why>` justification after the check list.
  AL002 metric-name            obs metric names registered in src/ follow the
                               DESIGN §9 scheme (lowercase dotted path;
                               latency histograms end in `seconds`, count
                               histograms do not) and therefore fit
                               scripts/stats_schema.json.
  AL003 check-side-effect      no CHECK/DCHECK argument mutates state
                               (++/--/assignment/mutating calls): DCHECK
                               operands vanish in Release builds.
  AL004 raw-sync-primitive     no raw std::mutex / std::lock_guard /
                               std::condition_variable outside util/sync.h;
                               use the annotated wrappers.
  AL005 void-discard           a statement-level `(void)` discard carries a
                               trailing `// <why>` justification ([[nodiscard]]
                               escape hatch must be auditable).
  AL006 bare-assert            no bare `assert(`; use CHECK/DCHECK
                               (always-on / side-effect-free semantics).
  AL007 header-self-contained  every header compiles in isolation
                               (delegates to scripts/check_includes.py; run
                               with --with-includes, it needs a compiler).
  AL008 resilience-metric      every `fault.*` / `degradation.*` metric name
                               registered in src/ appears in the
                               `resilienceMetrics` list of
                               scripts/stats_schema.json, so the resilience
                               counter set stays closed and discoverable
                               (DESIGN §12).

Suppressions reuse the NOLINT convention and must themselves be justified
(AL001):   ... code ...  // NOLINT(AL003): counter is test-local
`NOLINTNEXTLINE(ALxxx): why` suppresses on the following line.

Usage:
  scripts/atypical_lint.py [paths...]     lint the tree (default: src tests
                                          bench examples)
  scripts/atypical_lint.py --with-includes   also run AL007
  scripts/atypical_lint.py --self-test    run the fixture suite in
                                          scripts/lint_fixtures/
  scripts/atypical_lint.py --list-discards   print the (void)-discard audit
                                          list (file:line: justification)
Exit status: 0 clean, 1 findings, 2 usage/environment error.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import pathlib
import re
import subprocess
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_DIRS = ["src", "tests", "bench", "examples"]
SOURCE_GLOBS = ("*.h", "*.cc")


@dataclasses.dataclass
class Finding:
    path: pathlib.Path
    line: int  # 1-based
    check: str  # "AL003"
    name: str  # "check-side-effect"
    message: str

    def render(self) -> str:
        try:
            rel = self.path.relative_to(REPO)
        except ValueError:
            rel = self.path
        return f"{rel}:{self.line}: {self.check} {self.name}: {self.message}"


@dataclasses.dataclass
class SourceFile:
    path: pathlib.Path
    raw: list[str]  # original lines, without trailing newline
    code: list[str]  # comments and string/char literals blanked out
    comments: list[str]  # the comment text per line ("" when none)


def strip_comments(text: str) -> tuple[list[str], list[str]]:
    """Returns (code_lines, comment_lines) with literals/comments blanked.

    Comments and string/character literals are replaced by spaces in the code
    view (so column numbers survive); the comment view holds only comment
    text.  Handles // and /* */ spanning lines; does not attempt raw strings
    (the codebase has none).
    """
    code_chars: list[str] = []
    comment_chars: list[str] = []
    state = "code"  # code | line_comment | block_comment | string | char
    i = 0
    n = len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                code_chars.append("  ")
                comment_chars.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                code_chars.append("  ")
                comment_chars.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
                code_chars.append('"')
                comment_chars.append(" ")
                i += 1
                continue
            if c == "'":
                state = "char"
                code_chars.append("'")
                comment_chars.append(" ")
                i += 1
                continue
            code_chars.append(c)
            comment_chars.append(c if c == "\n" else " ")
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                code_chars.append("\n")
                comment_chars.append("\n")
            else:
                code_chars.append(" ")
                comment_chars.append(c)
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                code_chars.append("  ")
                comment_chars.append("  ")
                i += 2
                continue
            code_chars.append("\n" if c == "\n" else " ")
            comment_chars.append(c)
        elif state == "string":
            if c == "\\":
                code_chars.append("  ")
                comment_chars.append("  ")
                i += 2
                continue
            if c == '"':
                state = "code"
                code_chars.append('"')
            elif c == "\n":  # unterminated (macro continuation); bail to code
                state = "code"
                code_chars.append("\n")
            else:
                code_chars.append(" ")
            comment_chars.append("\n" if c == "\n" else " ")
        elif state == "char":
            if c == "\\":
                code_chars.append("  ")
                comment_chars.append("  ")
                i += 2
                continue
            if c == "'":
                state = "code"
                code_chars.append("'")
            elif c == "\n":
                state = "code"
                code_chars.append("\n")
            else:
                code_chars.append(" ")
            comment_chars.append("\n" if c == "\n" else " ")
        i += 1
    code = "".join(code_chars).split("\n")
    comments = "".join(comment_chars).split("\n")
    return code, comments


def load(path: pathlib.Path) -> SourceFile:
    text = path.read_text(encoding="utf-8")
    raw = text.split("\n")
    code, comments = strip_comments(text)
    # split("\n") on both views yields equal lengths by construction.
    return SourceFile(path=path, raw=raw, code=code, comments=comments)


# --- suppression handling ---------------------------------------------------

NOLINT_RE = re.compile(
    r"\bNOLINT(?P<next>NEXTLINE)?\b(?:\((?P<checks>[^)]*)\))?")


def iter_nolints(comment: str):
    """Yields (next_line, checks_or_None, justified) for real suppressions.

    A NOLINT token is a suppression when followed by `(checks)`, by `:`, or
    by nothing (end of comment).  Prose mentions — "a bare NOLINT is fine" —
    are ignored.  `checks` is None for the suppress-everything bare form.
    """
    for m in NOLINT_RE.finditer(comment):
        tail = comment[m.end():]
        has_parens = m.group("checks") is not None
        justified = re.match(r":\s*\S", tail) is not None
        if has_parens or justified or tail.strip() == "":
            yield bool(m.group("next")), m.group("checks"), justified


def suppressed(sf: SourceFile, line_idx: int, check_id: str) -> bool:
    """True if `check_id` is NOLINT-suppressed at raw line index `line_idx`."""
    for idx, need_next in ((line_idx, False), (line_idx - 1, True)):
        if idx < 0 or idx >= len(sf.comments):
            continue
        for next_line, checks, _ in iter_nolints(sf.comments[idx]):
            if next_line != need_next:
                continue
            if checks is None:  # bare NOLINT suppresses everything
                return True
            listed = [c.strip() for c in checks.split(",")]
            if check_id in listed or "*" in listed:
                return True
    return False


# --- AL001: NOLINT justification -------------------------------------------

def check_nolint_justification(sf: SourceFile) -> list[Finding]:
    findings = []
    for i, comment in enumerate(sf.comments):
        for _, _, justified in iter_nolints(comment):
            if not justified:
                findings.append(Finding(
                    sf.path, i + 1, "AL001", "nolint-justification",
                    "NOLINT without a `: <why>` justification"))
    return findings


# --- AL002: obs metric naming ----------------------------------------------

METRIC_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z0-9_]+)+$")


def check_metric_names(sf: SourceFile) -> list[Finding]:
    # The §9 scheme governs production metrics: src/ only.  obs/ unit tests
    # use deliberately tiny names ("a", "h") to probe registry mechanics.
    rel = sf.path.relative_to(REPO).as_posix()
    if not (rel.startswith("src/") or rel.startswith("scripts/lint_fixtures/")):
        return []
    if rel.startswith("src/obs/"):  # the registry itself documents examples
        return []
    findings = []
    raw_text = "\n".join(sf.raw)
    for m in re.finditer(
            r"Get(Counter|Gauge|Histogram)\(\s*\"([^\"]*)\"", raw_text):
        kind, name = m.group(1), m.group(2)
        line = raw_text.count("\n", 0, m.start()) + 1
        if suppressed(sf, line - 1, "AL002"):
            continue
        if not METRIC_NAME_RE.match(name):
            findings.append(Finding(
                sf.path, line, "AL002", "metric-name",
                f"metric name {name!r} is not a lowercase dotted path "
                "(DESIGN §9)"))
            continue
        if kind == "Histogram":
            latency = True  # default layout is Latency()
            tail = raw_text[m.end(2) + 1:m.end(2) + 200]
            arg_tail = tail.split(")")[0]
            if "Counts" in arg_tail:
                latency = False
            if latency and not name.endswith("seconds"):
                findings.append(Finding(
                    sf.path, line, "AL002", "metric-name",
                    f"latency histogram {name!r} must end in 'seconds' "
                    "(DESIGN §9)"))
            if not latency and name.endswith("seconds"):
                findings.append(Finding(
                    sf.path, line, "AL002", "metric-name",
                    f"count histogram {name!r} must not end in 'seconds' "
                    "(DESIGN §9)"))
    return findings


# --- AL008: resilience metric registry ---------------------------------------

RESILIENCE_PREFIXES = ("fault.", "degradation.")
_resilience_registry: set[str] | None = None


def resilience_registry() -> set[str]:
    global _resilience_registry
    if _resilience_registry is None:
        schema = json.loads(
            (REPO / "scripts" / "stats_schema.json").read_text())
        _resilience_registry = set(schema.get("resilienceMetrics", []))
    return _resilience_registry


def check_resilience_metrics(sf: SourceFile) -> list[Finding]:
    # Same scope as AL002: production metrics live in src/.
    rel = sf.path.relative_to(REPO).as_posix()
    if not (rel.startswith("src/") or rel.startswith("scripts/lint_fixtures/")):
        return []
    findings = []
    raw_text = "\n".join(sf.raw)
    for m in re.finditer(
            r"Get(Counter|Gauge|Histogram)\(\s*\"([^\"]*)\"", raw_text):
        name = m.group(2)
        if not name.startswith(RESILIENCE_PREFIXES):
            continue
        line = raw_text.count("\n", 0, m.start()) + 1
        if suppressed(sf, line - 1, "AL008"):
            continue
        if name not in resilience_registry():
            findings.append(Finding(
                sf.path, line, "AL008", "resilience-metric",
                f"resilience metric {name!r} is not listed in "
                "scripts/stats_schema.json resilienceMetrics (DESIGN §12)"))
    return findings


# --- AL003: CHECK/DCHECK side effects ---------------------------------------

CHECK_CALL_RE = re.compile(
    r"\b(D?CHECK(_EQ|_NE|_LT|_LE|_GT|_GE|_OK)?)\s*\(")
# Mutating member calls we can name statically.  Anything matching
# `.name(` / `->name(` with one of these names inside a CHECK is flagged.
MUTATING_METHODS = {
    "push_back", "pop_back", "push", "pop", "insert", "emplace",
    "emplace_back", "erase", "clear", "reset", "release", "assign",
    "swap", "resize", "swap_remove", "Add", "Increment", "Record",
    "Set", "Flush", "Next", "NextBlock", "Consume", "Take",
}
# `=` that is not part of ==/!=/<=/>=/compound-assign or a [=] capture.
ASSIGN_RE = re.compile(r"(?<![=!<>+\-*/%&|^\[])=(?![=\]])")
INCDEC_RE = re.compile(r"\+\+|--")


def _check_argument_spans(code_text: str):
    """Yields (offset, arg_text) for every CHECK/DCHECK argument list."""
    for m in CHECK_CALL_RE.finditer(code_text):
        depth = 0
        start = m.end() - 1
        for j in range(start, min(len(code_text), start + 4000)):
            c = code_text[j]
            if c == "(":
                depth += 1
            elif c == ")":
                depth -= 1
                if depth == 0:
                    yield m.start(), code_text[start + 1:j]
                    break


def check_side_effects(sf: SourceFile) -> list[Finding]:
    findings = []
    code_text = "\n".join(sf.code)
    for offset, arg in _check_argument_spans(code_text):
        line = code_text.count("\n", 0, offset) + 1
        if suppressed(sf, line - 1, "AL003"):
            continue
        if INCDEC_RE.search(arg):
            findings.append(Finding(
                sf.path, line, "AL003", "check-side-effect",
                "++/-- inside CHECK/DCHECK (operands are not evaluated in "
                "Release DCHECKs)"))
            continue
        if ASSIGN_RE.search(arg):
            findings.append(Finding(
                sf.path, line, "AL003", "check-side-effect",
                "assignment inside CHECK/DCHECK"))
            continue
        for call in re.finditer(r"(?:\.|->)\s*(\w+)\s*\(", arg):
            if call.group(1) in MUTATING_METHODS:
                findings.append(Finding(
                    sf.path, line, "AL003", "check-side-effect",
                    f"call to mutating method '{call.group(1)}' inside "
                    "CHECK/DCHECK"))
                break
    return findings


# --- AL004: raw sync primitives ---------------------------------------------

RAW_SYNC_RE = re.compile(
    r"\bstd::(mutex|lock_guard|condition_variable)\b")
SYNC_EXEMPT = {"src/util/sync.h"}


def check_raw_sync(sf: SourceFile) -> list[Finding]:
    rel = sf.path.relative_to(REPO).as_posix()
    if rel in SYNC_EXEMPT:
        return []
    findings = []
    for i, code in enumerate(sf.code):
        m = RAW_SYNC_RE.search(code)
        if not m:
            continue
        if suppressed(sf, i, "AL004"):
            continue
        findings.append(Finding(
            sf.path, i + 1, "AL004", "raw-sync-primitive",
            f"raw std::{m.group(1)}; use the annotated wrappers in "
            "util/sync.h"))
    return findings


# --- AL005: (void) discard justification ------------------------------------

VOID_DISCARD_RE = re.compile(r"^\s*\(void\)")


def _void_discard_lines(sf: SourceFile):
    """Yields (index, justification) for statement-level (void) discards."""
    for i, code in enumerate(sf.code):
        if not VOID_DISCARD_RE.match(code):
            continue
        # Skip continuations: `EXPECT_DEATH(\n    (void)f(), ...)`.
        prev = sf.code[i - 1].rstrip() if i > 0 else ""
        if prev.endswith(("(", ",")):
            continue
        justification = sf.comments[i].strip()
        yield i, justification


def check_void_discards(sf: SourceFile) -> list[Finding]:
    findings = []
    for i, justification in _void_discard_lines(sf):
        if suppressed(sf, i, "AL005"):
            continue
        if not justification:
            findings.append(Finding(
                sf.path, i + 1, "AL005", "void-discard",
                "(void) discard without a trailing `// <why>` justification"))
    return findings


# --- AL006: bare assert ------------------------------------------------------

BARE_ASSERT_RE = re.compile(r"(?<![_\w])assert\s*\(")


def check_bare_assert(sf: SourceFile) -> list[Finding]:
    findings = []
    for i, code in enumerate(sf.code):
        # static_assert is fine; blank it before searching.
        m = BARE_ASSERT_RE.search(code.replace("static_assert", "STATIC_AST"))
        if not m:
            continue
        if suppressed(sf, i, "AL006"):
            continue
        findings.append(Finding(
            sf.path, i + 1, "AL006", "bare-assert",
            "bare assert(); use CHECK (always-on) or DCHECK (debug-only)"))
    return findings


# --- AL007: header self-containment (delegated) ------------------------------

def check_headers_self_contained() -> list[Finding]:
    proc = subprocess.run(
        [sys.executable, str(REPO / "scripts" / "check_includes.py")],
        capture_output=True, text=True)
    if proc.returncode == 0:
        return []
    detail = (proc.stderr or proc.stdout).strip().splitlines()
    msg = detail[-1] if detail else "check_includes.py failed"
    return [Finding(REPO / "src", 0, "AL007", "header-self-contained", msg)]


TEXT_CHECKS = [
    check_nolint_justification,
    check_metric_names,
    check_resilience_metrics,
    check_side_effects,
    check_raw_sync,
    check_void_discards,
    check_bare_assert,
]


def lint_paths(paths: list[pathlib.Path]) -> list[Finding]:
    findings: list[Finding] = []
    files: list[pathlib.Path] = []
    for p in paths:
        if p.is_dir():
            for glob in SOURCE_GLOBS:
                files.extend(sorted(p.rglob(glob)))
        elif p.is_file():
            files.append(p)
        else:
            print(f"error: no such path: {p}", file=sys.stderr)
            sys.exit(2)
    for f in files:
        sf = load(f)
        for check in TEXT_CHECKS:
            findings.extend(check(sf))
    return findings


def list_discards(paths: list[pathlib.Path]) -> int:
    """Prints the audit list of every statement-level (void) discard."""
    count = 0
    files: list[pathlib.Path] = []
    for p in paths:
        if p.is_dir():
            for glob in SOURCE_GLOBS:
                files.extend(sorted(p.rglob(glob)))
        else:
            files.append(p)
    for f in files:
        sf = load(f)
        for i, justification in _void_discard_lines(sf):
            rel = f.relative_to(REPO)
            print(f"{rel}:{i + 1}: {justification or '(unjustified)'}")
            count += 1
    print(f"{count} (void) discard(s)")
    return 0


# --- self-test over fixture files -------------------------------------------

EXPECT_RE = re.compile(r"EXPECT-LINT(?P<next>-NEXT)?:\s*(?P<ids>AL\d{3}(?:\s*,\s*AL\d{3})*)")


def self_test() -> int:
    """Runs the text checks over scripts/lint_fixtures/*.

    Each fixture declares its expected findings with `// EXPECT-LINT: ALxxx`
    on the line the finding must anchor to, or `// EXPECT-LINT-NEXT: ALxxx`
    on the line above (for checks where a trailing comment would change the
    verdict, e.g. AL005).  A fixture with no EXPECT-LINT lines must lint
    clean.  The stats schema must also parse (AL002's contract is alignment
    with it).
    """
    fixture_dir = REPO / "scripts" / "lint_fixtures"
    fixtures = sorted(fixture_dir.glob("*.cc*"))
    if not fixtures:
        print(f"error: no fixtures in {fixture_dir}", file=sys.stderr)
        return 2
    schema = json.loads((REPO / "scripts" / "stats_schema.json").read_text())
    for key in ("counters", "gauges", "histograms"):
        if key not in schema.get("properties", {}):
            print(f"error: stats_schema.json lost its '{key}' map",
                  file=sys.stderr)
            return 2
    if not schema.get("resilienceMetrics"):
        print("error: stats_schema.json lost its 'resilienceMetrics' list "
              "(AL008's registry)", file=sys.stderr)
        return 2
    failures = []
    for fixture in fixtures:
        sf = load(fixture)
        got = {}
        for check in TEXT_CHECKS:
            for finding in check(sf):
                got.setdefault(finding.line, set()).add(finding.check)
        want = {}
        for i, raw in enumerate(sf.raw):
            for m in EXPECT_RE.finditer(raw):
                line = i + 2 if m.group("next") else i + 1
                for check_id in re.findall(r"AL\d{3}", m.group("ids")):
                    want.setdefault(line, set()).add(check_id)
        if got != want:
            failures.append((fixture, want, got))
    if failures:
        for fixture, want, got in failures:
            rel = fixture.relative_to(REPO)
            print(f"SELF-TEST FAIL {rel}", file=sys.stderr)
            for line in sorted(set(want) | set(got)):
                w = ",".join(sorted(want.get(line, ()))) or "-"
                g = ",".join(sorted(got.get(line, ()))) or "-"
                if want.get(line) != got.get(line):
                    print(f"  line {line}: expected [{w}] got [{g}]",
                          file=sys.stderr)
        return 1
    print(f"self-test ok: {len(fixtures)} fixtures")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("paths", nargs="*", default=None)
    parser.add_argument("--with-includes", action="store_true",
                        help="also run AL007 (needs a C++ compiler)")
    parser.add_argument("--self-test", action="store_true")
    parser.add_argument("--list-discards", action="store_true")
    args = parser.parse_args()

    if args.self_test:
        return self_test()

    paths = [pathlib.Path(p) if pathlib.Path(p).is_absolute()
             else REPO / p for p in (args.paths or DEFAULT_DIRS)]

    if args.list_discards:
        return list_discards(paths)

    findings = lint_paths(paths)
    if args.with_includes:
        findings.extend(check_headers_self_contained())
    for finding in findings:
        print(finding.render())
    if findings:
        print(f"\n{len(findings)} finding(s)", file=sys.stderr)
        return 1
    print("atypical_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
