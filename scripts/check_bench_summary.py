#!/usr/bin/env python3
"""Validate a bench_results/<bench>_summary.json emitted by bench::BenchSummary.

Checks the document against scripts/bench_summary_schema.json (reusing
check_stats_schema.py's stdlib JSON-Schema subset), then that every series'
stored median actually is the median of its samples — a bench that edits one
without the other fails here, not in a plot much later.

Usage:
    scripts/check_bench_summary.py SUMMARY.json
        [--schema scripts/bench_summary_schema.json]
        [--require-series NAME]...   # fail unless NAME has samples

Exit status: 0 if the document conforms (and every required series exists),
1 otherwise, with one line per violation on stderr.
"""

import argparse
import json
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
from check_stats_schema import validate

REPO = pathlib.Path(__file__).resolve().parent.parent


def median(samples):
    ordered = sorted(samples)
    n = len(ordered)
    if n % 2 == 1:
        return ordered[n // 2]
    return 0.5 * (ordered[n // 2 - 1] + ordered[n // 2])


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("summary", type=pathlib.Path)
    parser.add_argument(
        "--schema", type=pathlib.Path,
        default=REPO / "scripts/bench_summary_schema.json",
    )
    parser.add_argument(
        "--require-series",
        action="append",
        default=[],
        metavar="NAME",
        help="fail unless series NAME is present with at least one sample",
    )
    args = parser.parse_args()

    try:
        document = json.loads(args.summary.read_text())
    except (OSError, json.JSONDecodeError) as e:
        print(f"{args.summary}: not readable as JSON: {e}", file=sys.stderr)
        return 1
    schema = json.loads(args.schema.read_text())

    errors: list[str] = []
    validate(document, schema, "$", errors)

    if not errors:
        series = document["series"]
        for name, entry in series.items():
            if not entry["samples"]:
                errors.append(f"$.series.{name}: empty samples array")
            elif abs(entry["median_seconds"] - median(entry["samples"])) > \
                    1e-9 * max(1.0, entry["median_seconds"]):
                errors.append(
                    f"$.series.{name}: median_seconds "
                    f"{entry['median_seconds']} is not the median of samples")
        for name in args.require_series:
            if name not in series:
                errors.append(f"$.series.{name}: required series missing")

    for error in errors:
        print(error, file=sys.stderr)
    if not errors:
        print(f"{args.summary}: conforms to bench summary schema "
              f"v{document['schema_version']} "
              f"({len(document['series'])} series, "
              f"{len(document['counters'])} counters)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
