#!/usr/bin/env python3
"""Serving-readiness check: hot query paths stay lock-free, I/O-free, and
allocation-budgeted (DESIGN §15).

ROADMAP item 3 turns QueryEngine into a high-QPS concurrent server, which is
only safe on reader paths that provably do not block, do not touch I/O, and
do not allocate unboundedly per query.  This check makes that contract
mechanical:

  1. A brace/comment-aware extractor parses every function definition under
     src/ and resolves intra-repo calls into a function-level call graph.
  2. Direct effects are seeded from the code: `allocates` (new/make_unique/
     container growth), `blocks` (util::Mutex, MutexLock, CondVar, joins),
     `io` (streams, stdio, LOG(INFO/WARNING/ERROR)), `throws` (throw,
     stoi-family).  Seeds propagate transitively over the call graph.
  3. Functions annotated ATYPICAL_HOT (util/hot_path.h) are gated:
       AL013 hot-path-no-block     hot function reaches a blocking call
       AL014 hot-path-no-io        hot function reaches I/O
       AL015 hot-path-alloc-budget hot function allocates without a budget
     `throws` is tracked and shown by --explain but not gated (the repo
     builds with exceptions; Status/Result discipline is AL001–AL006's job).
  4. `scripts/effects_ratchet.json` grandfathers existing violations per
     (function, effect) with a mandatory burn-down note.  A ratchet entry is
     the allocation *budget declaration* for AL015; the runtime counterpart
     (util/alloc_probe.h, tests/alloc_probe_test.cc) pins the actual counts.
     Stale entries are findings: delete them, that is the burn-down.

Exemption policy (what the extractor deliberately ignores):
  - statements beginning with `static` — one-time initialization (the
    `static obs::Counter* const c = Registry()->GetCounter(...)` idiom
    locks once per process, not per query);
  - CHECK/DCHECK/LOG(FATAL) statements — failure-path only; a hot path
    that dies is not a hot path that blocks;
  - a trailing `// NOEFFECT(effect): reason` comment suppresses seeding
    that effect from its line (e.g. a shrink-only resize());
    `// NOEFFECT(calls): reason` drops the line's call edges (escape
    hatch for name-collision false positives — resolution is by name, so
    one `Add` matches every class's `Add`).

Usage:
  scripts/check_effects.py                   check src/ against the ratchet
  scripts/check_effects.py --self-test       fixture suite in
                                             scripts/lint_fixtures/effects/
  scripts/check_effects.py --explain FUNC    print FUNC's effect call chains
  scripts/check_effects.py --list-hot        dump hot functions + effects
  scripts/check_effects.py --root DIR [--ratchet F]   check any tree
Exit status: 0 clean, 1 findings, 2 usage/environment error.
"""

from __future__ import annotations

import argparse
import bisect
import dataclasses
import json
import pathlib
import re
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
from atypical_lint import strip_comments  # noqa: E402

SOURCE_GLOBS = ("*.h", "*.cc")
HOT_TOKEN = "ATYPICAL_HOT"
EFFECTS = ("blocks", "io", "allocates", "throws")
GATED = {
    "blocks": ("AL013", "hot-path-no-block"),
    "io": ("AL014", "hot-path-no-io"),
    "allocates": ("AL015", "hot-path-alloc-budget"),
}

# ---------------------------------------------------------------------------
# Direct-effect seeds.  Patterns run on the comment/string/preprocessor-
# blanked code, after the exempt statements have been blanked too.

ALLOC_CALLS = {
    "push_back", "emplace_back", "emplace", "emplace_front", "push_front",
    "insert", "try_emplace", "resize", "reserve", "assign", "append",
    "push", "make_unique", "make_shared", "to_string", "substr",
    "stable_sort", "str",
}
IO_CALLS = {
    "fopen", "fclose", "fread", "fwrite", "fprintf", "printf", "vfprintf",
    "fputs", "puts", "fputc", "fgets", "fgetc", "fflush", "fseek", "ftell",
    "rewind", "remove", "rename", "fsync", "perror", "getline", "system",
}
THROW_CALLS = {"stoi", "stol", "stoll", "stoul", "stoull", "stof", "stod"}

# (effect, regex, human label).  Call-name seeds above are matched through
# the call extractor; these catch non-call syntax.
TOKEN_SEEDS = [
    ("allocates", re.compile(r"(?<!\w)new\s"), "new"),
    # The call extractor needs `name(`; these are routinely written with
    # template arguments in between.
    ("allocates", re.compile(r"\bmake_(?:unique|shared)\b"),
     "make_unique/make_shared"),
    ("allocates",
     re.compile(r"\bstd::(?:vector|string|deque|map|set|unordered_map|"
                r"unordered_set|multimap|multiset)\s*<[^;{}()]*>\s+\w+\s*"
                r"\(\s*[^)\s]"),
     "container constructed with contents"),
    ("blocks", re.compile(r"\bMutexLock\b"), "MutexLock"),
    ("blocks", re.compile(r"\bCondVar\b"), "CondVar"),
    ("blocks", re.compile(r"\bstd::(?:lock_guard|unique_lock|scoped_lock|"
                          r"shared_lock|mutex|condition_variable)\b"),
     "std sync primitive"),
    ("blocks", re.compile(r"(?:\.|->)\s*(?:Lock|Await|Wait|WaitFor)\s*\("),
     "lock/wait call"),
    ("blocks", re.compile(r"(?:\.|->)\s*(?:lock|unlock|join)\s*\("),
     "lock/join call"),
    ("blocks", re.compile(r"\bsleep_(?:for|until)\b"), "sleep"),
    ("io", re.compile(r"\bstd::(?:cout|cerr|clog|cin)\b"), "std stream"),
    ("io", re.compile(r"\b(?:std::)?[io]?fstream\b"), "file stream"),
    ("io", re.compile(r"\bLOG\s*\(\s*(?:INFO|WARNING|ERROR)\s*\)"),
     "LOG()"),
    ("throws", re.compile(r"\bthrow\b"), "throw"),
]

# Statements blanked before seeding/call extraction (see module docstring).
EXEMPT_STMT_RES = [
    re.compile(r"\b(?:DCHECK|CHECK)(?:_[A-Z]+)?\s*\(.*?;", re.S),
    re.compile(r"\bLOG\s*\(\s*FATAL\s*\).*?;", re.S),
    re.compile(r"(?<![\w_])static\s[^;{}]*;"),
]

CALL_RE = re.compile(r"(?<![\w:])((?:\w+::)*~?\w+)\s*\(")
NON_CALLS = {
    "if", "for", "while", "switch", "catch", "return", "sizeof", "alignof",
    "decltype", "noexcept", "assert", "defined", "alignas", "typeid",
    "static_assert", "new", "delete", "throw", "case", "this",
    "int", "char", "bool", "float", "double", "unsigned", "long", "short",
    "auto", "void", "size_t", "uint8_t", "uint16_t", "uint32_t", "uint64_t",
    "int8_t", "int16_t", "int32_t", "int64_t", "ptrdiff_t",
}

NOEFFECT_RE = re.compile(r"NOEFFECT\((\w+)\)")
NOEFFECT_JUSTIFIED_RE = re.compile(r"NOEFFECT\((\w+)\)\s*:\s*\S")


@dataclasses.dataclass
class FunctionNode:
    qname: str
    file: str = ""
    line: int = 0
    hot: bool = False
    hot_sites: list = dataclasses.field(default_factory=list)
    # callee qname -> line of the first call site
    calls: dict = dataclasses.field(default_factory=dict)
    # effect -> ("direct", detail, file, line) | ("call", callee, file, line)
    cause: dict = dataclasses.field(default_factory=dict)

    @property
    def effects(self) -> set:
        return set(self.cause)


@dataclasses.dataclass
class RawFunction:
    qname: str
    file: str
    line: int
    hot: bool
    body: str            # blanked code of the body (offsets file-absolute)
    body_start: int      # offset of the body in the file's code text


def blank_preserving_newlines(m: re.Match) -> str:
    return re.sub(r"[^\n]", " ", m.group(0))


def blank_preprocessor(code_lines: list[str]) -> list[str]:
    """Blanks #-directives (incl. backslash continuations) so macro bodies
    like `#define ATYPICAL_HOT __attribute__((hot))` are not parsed."""
    out = []
    in_directive = False
    for line in code_lines:
        is_directive = in_directive or line.lstrip().startswith("#")
        out.append(" " * len(line) if is_directive else line)
        in_directive = is_directive and line.rstrip().endswith("\\")
    return out


def strip_template_prefix(head: str) -> str:
    h = head.lstrip()
    while h.startswith("template"):
        lt = h.find("<")
        if lt == -1:
            break
        depth, i = 0, lt
        while i < len(h):
            if h[i] == "<":
                depth += 1
            elif h[i] == ">":
                depth -= 1
                if depth == 0:
                    break
            i += 1
        h = h[i + 1:].lstrip()
    return h


TYPE_HEAD_RE = re.compile(r"^(?:class|struct|union|enum(?:\s+class|\s+struct)?)\b")
NAMESPACE_HEAD_RE = re.compile(r"^(?:inline\s+)?namespace\b")
NAME_BEFORE_PAREN_RE = re.compile(
    r"((?:~?\w+\s*::\s*)*(?:~?\w+|operator[^\s(]+))\s*$")
FUNC_TAIL_RE = re.compile(
    r"^(?:\s*(?:const|noexcept(?:\s*\([^()]*\))?|override|final|mutable|"
    r"&&?|try|->\s*[\w:<>,&*\s]+|[A-Z][A-Z_0-9]*(?:\s*\([^()]*\))?))*"
    r"\s*(?::.*)?$", re.S)


def classify_head(head: str):
    """Returns (kind, name): kind in {namespace, type, function, opaque}."""
    h = strip_template_prefix(head).strip()
    if not h:
        return ("opaque", "")
    if NAMESPACE_HEAD_RE.match(h):
        names = re.findall(r"namespace\s+([\w:]+)", h)
        return ("namespace", names[0] if names else "")
    m = TYPE_HEAD_RE.match(h)
    if m:
        rest = h[m.end():]
        # Drop annotation macros (ATYPICAL_CAPABILITY("mutex") etc.), final,
        # alignas, then the base clause.
        rest = re.sub(r"\b[A-Z][A-Z_0-9]+\s*\([^()]*\)", " ", rest)
        rest = re.sub(r"\bfinal\b|\balignas\s*\([^()]*\)", " ", rest)
        rest = rest.split(":", 1)[0]
        nm = re.match(r"\s*(\w+)", rest)
        return ("type", nm.group(1) if nm else "")
    if h.endswith("="):  # brace initializer `Foo x = {...}`
        return ("opaque", "")
    # Function definition: find the parameter list — the first top-level
    # paren group preceded by a plausible name — and require the tail after
    # its `)` to be qualifiers / ctor-initializer only.
    paren = h.find("(")
    while paren != -1:
        nm = NAME_BEFORE_PAREN_RE.search(h[:paren])
        if nm is None:
            return ("opaque", "")
        name = re.sub(r"\s+", "", nm.group(1))
        if name.split("::")[-1] in NON_CALLS:
            return ("opaque", "")
        depth, i = 0, paren
        while i < len(h):
            if h[i] == "(":
                depth += 1
            elif h[i] == ")":
                depth -= 1
                if depth == 0:
                    break
            i += 1
        if depth != 0:
            return ("opaque", "")
        if FUNC_TAIL_RE.match(h[i + 1:]):
            return ("function", name)
        paren = h.find("(", i + 1)
    return ("opaque", "")


def qualify(name: str, scopes: list) -> str:
    """Builds the qualified name from enclosing namespaces/types.

    The project namespace `atypical` and anonymous namespaces are dropped so
    declarations and out-of-line definitions land on the same key."""
    parts = [s[1] for s in scopes
             if s[1] and s[1] not in ("atypical",)]
    return "::".join(parts + [name]) if parts else name


def parse_file(rel: str, text: str):
    """Returns (raw functions, hot declaration sites, comment lines)."""
    code_lines, comment_lines = strip_comments(text)
    code_lines = blank_preprocessor(code_lines)
    code = "\n".join(code_lines)
    newlines = [i for i, ch in enumerate(code) if ch == "\n"]

    def line_of(offset: int) -> int:
        return bisect.bisect_right(newlines, offset - 1) + 1

    raw_funcs: list[RawFunction] = []
    hot_decls: list[tuple[str, int]] = []  # (qname, line)
    scopes: list[tuple[str, str]] = []     # (kind, name)
    stmt_start = 0
    i, n = 0, len(code)
    while i < n:
        ch = code[i]
        if ch == "{":
            head = code[stmt_start:i]
            kind, name = classify_head(head)
            if kind in ("namespace", "type"):
                scopes.append((kind, name))
                stmt_start = i + 1
                i += 1
                continue
            # Function definition or opaque initializer: skip to the
            # matching close brace either way (control-flow braces only
            # occur inside bodies, which are captured whole).
            depth, j = 0, i
            while j < n:
                if code[j] == "{":
                    depth += 1
                elif code[j] == "}":
                    depth -= 1
                    if depth == 0:
                        break
                j += 1
            if kind == "function":
                raw_funcs.append(RawFunction(
                    qname=qualify(name, scopes), file=rel,
                    line=line_of(stmt_start + len(head) - len(head.lstrip())),
                    hot=HOT_TOKEN in head,
                    body=code[i + 1:j], body_start=i + 1))
            i = j + 1
            stmt_start = i
        elif ch == "}":
            if scopes:
                scopes.pop()
            i += 1
            stmt_start = i
        elif ch == ";":
            stmt = code[stmt_start:i]
            if HOT_TOKEN in stmt:
                kind, name = classify_head(stmt)
                if kind == "function":
                    hot_decls.append((qualify(name, scopes),
                                      line_of(stmt_start)))
                else:
                    hot_decls.append(("", line_of(stmt_start)))
            i += 1
            stmt_start = i
        elif ch == ":" and code[i - 1:i] != ":" and code[i + 1:i + 2] != ":":
            # Access specifiers would pollute the next statement head.
            if code[stmt_start:i].strip() in ("public", "private",
                                              "protected"):
                stmt_start = i + 1
            i += 1
        else:
            i += 1
    return raw_funcs, hot_decls, comment_lines, newlines


def noeffect_on(comment_lines: list[str], line: int) -> set[str]:
    if 1 <= line <= len(comment_lines):
        return set(NOEFFECT_JUSTIFIED_RE.findall(comment_lines[line - 1]))
    return set()


def analyze(root: pathlib.Path):
    """Parses the tree and returns (nodes, findings)."""
    findings: list[str] = []
    files: list[pathlib.Path] = []
    for glob in SOURCE_GLOBS:
        files.extend(root.rglob(glob))

    nodes: dict[str, FunctionNode] = {}
    pending: list[tuple[RawFunction, list[str], list[int]]] = []
    unresolved_hot: list[tuple[str, int, str]] = []

    for f in sorted(files):
        rel = f.relative_to(root).as_posix()
        text = f.read_text(encoding="utf-8")
        raw_funcs, hot_decls, comment_lines, newlines = parse_file(rel, text)
        for rf in raw_funcs:
            node = nodes.setdefault(rf.qname, FunctionNode(qname=rf.qname))
            if not node.file or rf.file.endswith(".cc"):
                node.file, node.line = rf.file, rf.line
            if rf.hot:
                node.hot = True
                node.hot_sites.append((rf.file, rf.line))
            pending.append((rf, comment_lines, newlines))
        for qname, line in hot_decls:
            unresolved_hot.append((qname, line, rel))
        # Unjustified NOEFFECT: a suppression without a reason is a finding.
        for ln, comment in enumerate(comment_lines, start=1):
            for m in NOEFFECT_RE.finditer(comment):
                if not NOEFFECT_JUSTIFIED_RE.match(comment[m.start():]):
                    findings.append(
                        f"{rel}:{ln}: NOEFFECT({m.group(1)}) needs a "
                        f"justification: NOEFFECT({m.group(1)}): <why>")

    # Bind ATYPICAL_HOT declarations to parsed definitions.
    for qname, line, rel in unresolved_hot:
        if qname and qname in nodes:
            nodes[qname].hot = True
            nodes[qname].hot_sites.append((rel, line))
        else:
            findings.append(
                f"{rel}:{line}: {HOT_TOKEN} annotation does not match any "
                f"parsed function definition"
                + (f" (looked for '{qname}')" if qname else "")
                + "; the effect analysis cannot gate it")

    by_base: dict[str, list[str]] = {}
    for qname in nodes:
        by_base.setdefault(qname.split("::")[-1], []).append(qname)

    def resolve(call: str) -> list[str]:
        if "::" in call:
            return [q for q in by_base.get(call.split("::")[-1], [])
                    if q == call or q.endswith("::" + call)]
        return by_base.get(call, [])

    # Seed direct effects and call edges.
    for rf, comment_lines, newlines in pending:
        node = nodes[rf.qname]

        def line_of(offset: int) -> int:
            return bisect.bisect_right(newlines, offset - 1) + 1

        body = rf.body
        for stmt_re in EXEMPT_STMT_RES:
            body = stmt_re.sub(blank_preserving_newlines, body)

        def seed(effect: str, detail: str, line: int):
            if effect in noeffect_on(comment_lines, line):
                return
            node.cause.setdefault(
                effect, ("direct", detail, rf.file, line))

        for effect, pattern, label in TOKEN_SEEDS:
            for m in pattern.finditer(body):
                seed(effect, label, line_of(rf.body_start + m.start()))
        for m in CALL_RE.finditer(body):
            call = m.group(1)
            base = call.split("::")[-1]
            if base in NON_CALLS:
                continue
            line = line_of(rf.body_start + m.start())
            if "calls" in noeffect_on(comment_lines, line):
                continue
            if base in ALLOC_CALLS:
                seed("allocates", f"{base}()", line)
            if base in IO_CALLS:
                seed("io", f"{base}()", line)
            if base in THROW_CALLS:
                seed("throws", f"{base}()", line)
            for callee in resolve(call):
                if callee != rf.qname:
                    node.calls.setdefault(callee, line)

    # Propagate effects to callers (BFS per effect; cause set once, so
    # --explain chains terminate at a direct seed).
    callers: dict[str, list[str]] = {}
    for qname, node in nodes.items():
        for callee in node.calls:
            callers.setdefault(callee, []).append(qname)
    for effect in EFFECTS:
        work = [q for q, nd in nodes.items() if effect in nd.cause]
        while work:
            cur = work.pop()
            for caller in callers.get(cur, ()):
                nd = nodes[caller]
                if effect in nd.cause:
                    continue
                nd.cause[effect] = ("call", cur, nodes[cur].file,
                                    nd.calls[cur])
                work.append(caller)
    return nodes, findings


def chain_of(nodes: dict, qname: str, effect: str) -> str:
    """Renders the witness call chain from `qname` to a direct seed."""
    parts = [qname]
    seen = {qname}
    cur = qname
    while True:
        kind, detail, file, line = nodes[cur].cause[effect]
        if kind == "direct":
            parts.append(f"{detail} ({file}:{line})")
            break
        parts.append(detail)
        if detail in seen:  # defensive; BFS causes cannot cycle
            parts.append("...")
            break
        seen.add(detail)
        cur = detail
    return " -> ".join(parts)


def load_ratchet(path: pathlib.Path | None) -> dict[tuple[str, str], str]:
    if path is None or not path.exists():
        return {}
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: cannot load ratchet {path}: {e}", file=sys.stderr)
        sys.exit(2)
    entries = {}
    for entry in data.get("grandfathered", []):
        if not all(entry.get(k) for k in ("function", "effect", "note")):
            print(f"error: ratchet entry needs non-empty function/effect/"
                  f"note: {entry}", file=sys.stderr)
            sys.exit(2)
        if entry["effect"] not in GATED:
            print(f"error: ratchet entry for ungated effect "
                  f"{entry['effect']!r}: {entry}", file=sys.stderr)
            sys.exit(2)
        entries[(entry["function"], entry["effect"])] = entry["note"]
    return entries


def check_tree(root: pathlib.Path,
               ratchet: dict[tuple[str, str], str],
               min_functions: int = 1):
    """Returns (nodes, rendered findings)."""
    nodes, findings = analyze(root)
    if len(nodes) < min_functions:
        print(f"error: parsed only {len(nodes)} function(s) under {root} "
              f"(expected >= {min_functions}); extractor regression?",
              file=sys.stderr)
        sys.exit(2)

    used: set[tuple[str, str]] = set()
    for qname in sorted(nodes):
        node = nodes[qname]
        if not node.hot:
            continue
        for effect in EFFECTS:
            if effect not in GATED or effect not in node.cause:
                continue
            if (qname, effect) in ratchet:
                used.add((qname, effect))
                continue
            check_id, check_name = GATED[effect]
            findings.append(
                f"{node.file}:{node.line}: {check_id} {check_name}: hot "
                f"function '{qname}' reaches {effect}: "
                f"{chain_of(nodes, qname, effect)}; fix the path or add a "
                f"(function, effect) entry with a burn-down note to the "
                f"ratchet")
    for (fn, effect), _ in sorted(ratchet.items()):
        if (fn, effect) in used:
            continue
        why = ("function is not annotated " + HOT_TOKEN
               if fn not in nodes or not nodes[fn].hot
               else f"it no longer reaches {effect}")
        findings.append(
            f"{fn}: stale ratchet entry for '{effect}' ({why} — delete the "
            f"entry from effects_ratchet.json; that is the burn-down)")
    return nodes, findings


def explain(nodes: dict, target: str) -> int:
    matches = [q for q in sorted(nodes)
               if q == target or q.endswith("::" + target)]
    if not matches:
        print(f"error: no parsed function matches {target!r}",
              file=sys.stderr)
        return 2
    for qname in matches:
        node = nodes[qname]
        hot = " [ATYPICAL_HOT]" if node.hot else ""
        print(f"{qname}{hot}  ({node.file}:{node.line})")
        if not node.cause:
            print("  no effects: allocation-free, lock-free, I/O-free, "
                  "nothrow")
        for effect in EFFECTS:
            if effect in node.cause:
                print(f"  {effect}: {chain_of(nodes, qname, effect)}")
    return 0


def list_hot(nodes: dict) -> int:
    hot = [q for q in sorted(nodes) if nodes[q].hot]
    for qname in hot:
        effects = ", ".join(e for e in EFFECTS if e in nodes[qname].cause)
        print(f"{qname}: {effects if effects else 'clean'}")
    print(f"{len(hot)} hot function(s)", file=sys.stderr)
    return 0


# --- self-test over fixture trees -------------------------------------------

def self_test() -> int:
    """Runs the checker over scripts/lint_fixtures/effects/<case>/.

    Each case holds a `src/` tree, an optional `ratchet.json`, and an
    `EXPECT` file: first line `clean` or `findings`, remaining lines
    substrings that must each appear in some finding."""
    fixture_root = REPO / "scripts" / "lint_fixtures" / "effects"
    cases = sorted(p for p in fixture_root.iterdir() if p.is_dir())
    if not cases:
        print(f"error: no fixture cases under {fixture_root}",
              file=sys.stderr)
        return 2
    failures = []
    for case in cases:
        ratchet_path = case / "ratchet.json"
        ratchet = load_ratchet(ratchet_path if ratchet_path.exists()
                               else None)
        nodes, findings = check_tree(case / "src", ratchet)
        expect_lines = (case / "EXPECT").read_text().strip().split("\n")
        verdict, needles = expect_lines[0].strip(), expect_lines[1:]
        if verdict == "clean":
            if findings:
                failures.append((case.name, "expected clean, got:",
                                 findings))
            continue
        if not findings:
            failures.append((case.name, "expected findings, got none", []))
            continue
        for needle in needles:
            if not any(needle in f for f in findings):
                failures.append(
                    (case.name, f"no finding contains {needle!r}:",
                     findings))
    # The ratcheted fixture must also support --explain: a grandfathered
    # effect still prints its full witness chain.
    ratcheted = fixture_root / "ratcheted"
    if ratcheted.is_dir():
        nodes, _ = check_tree(ratcheted / "src",
                              load_ratchet(ratcheted / "ratchet.json"))
        hot = [q for q in nodes if nodes[q].hot and nodes[q].cause]
        if not hot:
            failures.append(("ratcheted", "no hot function with effects to "
                             "explain", []))
        else:
            chain = chain_of(nodes, hot[0],
                             sorted(nodes[hot[0]].cause)[0])
            if " -> " not in chain:
                failures.append(("ratcheted",
                                 f"explain chain has no call arrow: {chain}",
                                 []))
    if failures:
        for name, why, findings in failures:
            print(f"SELF-TEST FAIL {name}: {why}", file=sys.stderr)
            for f in findings:
                print(f"  {f}", file=sys.stderr)
        return 1
    print(f"self-test ok: {len(cases)} fixture trees")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--root", default=str(REPO / "src"))
    parser.add_argument("--ratchet", default=str(REPO / "scripts" /
                                                 "effects_ratchet.json"))
    parser.add_argument("--self-test", action="store_true")
    parser.add_argument("--explain", metavar="FUNC")
    parser.add_argument("--list-hot", action="store_true")
    args = parser.parse_args()

    if args.self_test:
        return self_test()

    root = pathlib.Path(args.root)
    if not root.is_dir():
        print(f"error: no such directory: {root}", file=sys.stderr)
        return 2
    # On the real tree a sudden drop in parsed functions means the extractor
    # broke, not that the code got clean.
    min_functions = 200 if root == (REPO / "src") else 1
    ratchet = load_ratchet(pathlib.Path(args.ratchet))
    nodes, findings = check_tree(root, ratchet, min_functions)

    if args.explain:
        return explain(nodes, args.explain)
    if args.list_hot:
        return list_hot(nodes)
    for f in findings:
        print(f)
    if findings:
        print(f"\n{len(findings)} effect finding(s)", file=sys.stderr)
        return 1
    hot = sum(1 for nd in nodes.values() if nd.hot)
    print(f"check_effects: clean ({len(nodes)} functions, {hot} hot, "
          f"{len(ratchet)} grandfathered (function, effect) budget(s) "
          f"remaining in the ratchet)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
