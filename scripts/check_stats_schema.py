#!/usr/bin/env python3
"""Validate an `atypical_cli --stats=json` dump against the stats schema.

Implements (stdlib-only) the subset of JSON Schema that
scripts/stats_schema.json uses: type, const, required, properties,
additionalProperties, items, minimum, oneOf.

Usage:
    scripts/check_stats_schema.py STATS.json
        [--schema scripts/stats_schema.json]
        [--require-counter NAME]...   # fail unless NAME is a counter > 0
        [--expect-empty]              # fail unless every metric map is empty

Exit status: 0 if the document conforms (and every extra expectation holds),
1 otherwise, with one line per violation on stderr.
"""

import argparse
import json
import pathlib
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent

_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "number": (int, float),
    "integer": int,
}


def validate(value, schema, path, errors):
    """Appends "path: problem" strings to `errors` for every violation."""
    if "oneOf" in schema:
        branch_errors = []
        for branch in schema["oneOf"]:
            attempt = []
            validate(value, branch, path, attempt)
            if not attempt:
                break
            branch_errors.append(attempt)
        else:
            errors.append(f"{path}: matches none of the oneOf alternatives")
        return

    if "const" in schema and value != schema["const"]:
        errors.append(f"{path}: expected {schema['const']!r}, got {value!r}")
        return

    expected = schema.get("type")
    if expected is not None:
        python_type = _TYPES[expected]
        # bool is a subclass of int in Python; JSON booleans are never valid
        # numbers here.
        if isinstance(value, bool) or not isinstance(value, python_type):
            errors.append(f"{path}: expected {expected}, got {value!r}")
            return

    if "minimum" in schema and value < schema["minimum"]:
        errors.append(f"{path}: {value!r} below minimum {schema['minimum']}")

    if isinstance(value, dict):
        for key in schema.get("required", []):
            if key not in value:
                errors.append(f"{path}: missing required key '{key}'")
        properties = schema.get("properties", {})
        extra = schema.get("additionalProperties")
        for key, child in value.items():
            if key in properties:
                validate(child, properties[key], f"{path}.{key}", errors)
            elif isinstance(extra, dict):
                validate(child, extra, f"{path}.{key}", errors)

    if isinstance(value, list) and "items" in schema:
        for i, child in enumerate(value):
            validate(child, schema["items"], f"{path}[{i}]", errors)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("stats", type=pathlib.Path)
    parser.add_argument(
        "--schema", type=pathlib.Path, default=REPO / "scripts/stats_schema.json"
    )
    parser.add_argument(
        "--require-counter",
        action="append",
        default=[],
        metavar="NAME",
        help="fail unless counter NAME is present with a positive value",
    )
    parser.add_argument(
        "--expect-empty",
        action="store_true",
        help="fail unless counters/gauges/histograms are all empty "
        "(ATYPICAL_NO_STATS builds)",
    )
    args = parser.parse_args()

    try:
        document = json.loads(args.stats.read_text())
    except (OSError, json.JSONDecodeError) as e:
        print(f"{args.stats}: not readable as JSON: {e}", file=sys.stderr)
        return 1
    schema = json.loads(args.schema.read_text())

    errors: list[str] = []
    validate(document, schema, "$", errors)

    if not errors:
        counters = document["counters"]
        for name in args.require_counter:
            if counters.get(name, 0) <= 0:
                errors.append(f"$.counters.{name}: required counter missing or 0")
        if args.expect_empty:
            for section in ("counters", "gauges", "histograms"):
                if document[section]:
                    errors.append(f"$.{section}: expected empty, has "
                                  f"{len(document[section])} entries")

    for error in errors:
        print(error, file=sys.stderr)
    if not errors:
        summary = (
            f"{len(document['counters'])} counters, "
            f"{len(document['gauges'])} gauges, "
            f"{len(document['histograms'])} histograms"
        )
        print(f"{args.stats}: conforms to schema v{document['schema_version']} "
              f"({summary})")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
