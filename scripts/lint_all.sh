#!/usr/bin/env bash
# Single entry point for every project lint — what CI runs and what a
# developer runs before pushing:
#
#   scripts/lint_all.sh [--skip-includes] [--skip-tidy]
#
# Stages (all must pass):
#   1. atypical_lint self-test      the lint's own fixture suite
#   2. check_layering self-test     the layering checker's fixture trees
#   3. atypical_lint               project conventions (AL001-AL012) over
#                                  src/ tests/ bench/ examples/; includes
#                                  AL007 header self-containment unless
#                                  --skip-includes (needs a C++ compiler)
#   4. check_layering              src/ #include graph vs the layer DAG in
#                                  scripts/layering.json (+ ratchet)
#   5. check_effects self-test     the effect checker's fixture trees
#   6. check_effects               AL013-AL015 hot-path effect gates over
#                                  src/ (+ scripts/effects_ratchet.json)
#   7. clang-tidy                  .clang-tidy gate, when clang-tidy is on
#                                  PATH (skipped quietly otherwise unless
#                                  REQUIRE_CLANG_TIDY=1; --skip-tidy)
#
# Exit status: 0 all stages clean, 1 findings, 2 environment error.
set -uo pipefail

cd "$(dirname "$0")/.."

SKIP_INCLUDES=0
SKIP_TIDY=0
for arg in "$@"; do
  case "$arg" in
    --skip-includes) SKIP_INCLUDES=1 ;;
    --skip-tidy) SKIP_TIDY=1 ;;
    *)
      echo "usage: scripts/lint_all.sh [--skip-includes] [--skip-tidy]" >&2
      exit 2
      ;;
  esac
done

FAILED=0
run_stage() {
  local name="$1"
  shift
  echo "==> ${name}"
  if "$@"; then
    echo "    ${name}: ok"
  else
    local status=$?
    if [ "${status}" -ge 2 ]; then
      echo "    ${name}: environment error (exit ${status})" >&2
      exit 2
    fi
    echo "    ${name}: FAILED" >&2
    FAILED=1
  fi
}

run_stage "atypical_lint --self-test" python3 scripts/atypical_lint.py --self-test
run_stage "check_layering --self-test" python3 scripts/check_layering.py --self-test

if [ "${SKIP_INCLUDES}" -eq 0 ]; then
  run_stage "atypical_lint (with AL007 includes)" python3 scripts/atypical_lint.py --with-includes
else
  echo "==> AL007 header self-containment: skipped (--skip-includes)"
  run_stage "atypical_lint" python3 scripts/atypical_lint.py
fi

run_stage "check_layering" python3 scripts/check_layering.py
run_stage "check_effects --self-test" python3 scripts/check_effects.py --self-test
run_stage "check_effects" python3 scripts/check_effects.py

if [ "${SKIP_TIDY}" -eq 0 ]; then
  if command -v clang-tidy >/dev/null 2>&1; then
    run_stage "clang-tidy" scripts/run_clang_tidy.sh
  elif [ "${REQUIRE_CLANG_TIDY:-0}" = "1" ]; then
    echo "error: REQUIRE_CLANG_TIDY=1 but clang-tidy is not installed" >&2
    exit 2
  else
    echo "==> clang-tidy: skipped (not installed; set REQUIRE_CLANG_TIDY=1 to fail)"
  fi
else
  echo "==> clang-tidy: skipped (--skip-tidy)"
fi

if [ "${FAILED}" -ne 0 ]; then
  echo "lint_all: FAILED" >&2
  exit 1
fi
echo "lint_all: all stages clean"
