// Lint fixture: AL011 GUARDED_BY coverage for Mutex-owning classes.
// Exercised by atypical_lint.py --self-test; never compiled.
#include <atomic>
#include <thread>
#include <vector>

#include "util/sync.h"
#include "util/thread_annotations.h"

namespace fixture {

class UnguardedQueue {
 public:
  void Push(int v);

 private:
  Mutex mu_;
  std::vector<int> items_;  // EXPECT-LINT: AL011
  int high_water_ = 0;  // EXPECT-LINT: AL011
};

class GuardedQueue {
 public:
  void Push(int v);

 private:
  mutable Mutex mu_;
  CondVar ready_;
  std::vector<int> items_ ATYPICAL_GUARDED_BY(mu_);
  int* sink_ ATYPICAL_PT_GUARDED_BY(mu_);
  std::atomic<bool> stopped_{false};
  const int capacity_ = 64;
  std::vector<std::thread> workers_;  // NOLINT(AL011): created before the workers start, joined after shutdown; never accessed concurrently
};

// No Mutex ownership: the annotation requirement does not apply.
struct PlainAccumulator {
  double mass = 0.0;
  int count = 0;
};

}  // namespace fixture
