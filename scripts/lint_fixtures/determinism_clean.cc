// Lint fixture: order-safe patterns the determinism checks must NOT flag.
// Exercised by atypical_lint.py --self-test; never compiled.
#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

namespace fixture {

using Sketch = std::unordered_map<int, double>;

// Membership lookups are fine; only iteration leaks hash order.
bool Member(const std::unordered_set<int>& w_set, int id) {
  return w_set.contains(id);
}

// The sort-a-copy fix idiom: .begin() outside any for-init, then an ordered
// iteration over the sorted vector.
double SortedMass(const Sketch& label_mass) {
  std::vector<std::pair<int, double>> ordered(label_mass.begin(),
                                              label_mass.end());
  std::sort(ordered.begin(), ordered.end());
  double total = 0.0;
  for (const auto& [label, mass] : ordered) {
    total += mass;
  }
  return total;
}

// Iterating an array OF maps walks index order, not hash order.
struct Levels {
  Sketch levels[4];
};

unsigned long CellCount(const Levels& lv) {
  unsigned long cells = 0;
  for (const Sketch& level : lv.levels) {
    cells += level.size();
  }
  return cells;
}

// Subscripting a scalar map in a range expression names the mapped value,
// not the map; the loop below iterates the ordered row vector.
int CountHot(Sketch& by_row, const std::vector<int>& row) {
  int hot = 0;
  for (int v : row) {
    hot += by_row[v] > 0.5 ? 1 : 0;
  }
  return hot;
}

}  // namespace fixture
