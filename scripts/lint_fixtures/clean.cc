// Lint fixture: idiomatic code that must produce ZERO findings.
// (Not compiled; scanned by scripts/atypical_lint.py --self-test.)
#include "util/logging.h"
#include "util/status.h"
#include "util/sync.h"

namespace atypical {

void Good() {
  // Dotted metric names per DESIGN §9; latency histograms end in seconds.
  static obs::Counter* const accepted =
      obs::Registry()->GetCounter("fixture.records_accepted");
  static obs::Histogram* const latency =
      obs::Registry()->GetHistogram("fixture.scan.seconds");
  static obs::Histogram* const sizes = obs::Registry()->GetHistogram(
      "fixture.batch_size", obs::BucketLayout::Counts());
  accepted->Increment();

  // Resilience metrics listed in stats_schema.json resilienceMetrics, and
  // serving metrics listed in servingMetrics (AL008).
  static obs::Counter* const torn =
      obs::Registry()->GetCounter("fault.torn_writes");
  static obs::Counter* const lost =
      obs::Registry()->GetCounter("degradation.records_lost");
  static obs::Counter* const hits =
      obs::Registry()->GetCounter("serve.cache.hits");
  torn->Increment();
  lost->Increment();
  hits->Increment();

  // CHECK/DCHECK over pure reads only.
  int n = 3;
  CHECK_GE(n, 0) << "negative batch";
  DCHECK_EQ(n % 2, 1);
  static_assert(sizeof(int) >= 4, "static_assert is not a bare assert");

  // Annotated wrapper, not std::mutex.
  Mutex mu;
  MutexLock lock(&mu);

  // Justified discard and justified NOLINT.
  (void)latency;  // registered for the side effect; recorded elsewhere
  // NOLINTNEXTLINE(cppcoreguidelines-pro-type-reinterpret-cast): byte I/O
  const char* bytes = reinterpret_cast<const char*>(&n);
  (void)bytes;  // fixture only exercises the cast
  (void)sizes;  // fixture only exercises registration
}

}  // namespace atypical
