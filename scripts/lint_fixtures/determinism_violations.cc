// Lint fixture: determinism violations the AL009/AL010/AL012 checks must
// catch in deterministic modules.  Exercised by atypical_lint.py --self-test;
// never compiled.
#include <unordered_map>
#include <unordered_set>

namespace fixture {

using Sketch = std::unordered_map<int, double>;

double LeakyMass(const std::unordered_map<int, double>& label_mass) {
  double total = 0.0;
  for (const auto& [label, mass] : label_mass) {  // EXPECT-LINT: AL009
    total += mass;  // EXPECT-LINT: AL012
  }
  return total;
}

int LeakyFirst(const std::unordered_set<int>& w_set) {
  for (auto it = w_set.begin(); it != w_set.end(); ++it) {  // EXPECT-LINT: AL009
    return *it;
  }
  return -1;
}

struct Levels {
  Sketch levels[4];
};

int LeakyArrayElement(const Levels& lv) {
  int sum = 0;
  for (const auto& kv : lv.levels[2]) {  // EXPECT-LINT: AL009
    sum += kv.first;
  }
  return sum;
}

long Ticks() {
  return std::chrono::steady_clock::now().time_since_epoch().count();  // EXPECT-LINT: AL010
}

int Noise() {
  return rand();  // EXPECT-LINT: AL010
}

unsigned Entropy() {
  std::random_device rd;  // EXPECT-LINT: AL010
  return rd();
}

unsigned long Identity(const int* p) {
  return reinterpret_cast<uintptr_t>(p);  // EXPECT-LINT: AL010
}

}  // namespace fixture
