// Ratcheted case: the hot function allocates, but the (function, effect)
// pair is grandfathered with a burn-down note, so the tree is clean.  The
// self-test also renders this entry's --explain chain.
#include <vector>

namespace atypical {

void AppendResult(std::vector<int>* out, int value) {
  out->push_back(value);
}

ATYPICAL_HOT int ServeQuery(std::vector<int>* out) {
  AppendResult(out, 1);
  return 1;
}

}  // namespace atypical
