// Stale-ratchet case: the hot function is clean, but the ratchet still
// grandfathers an allocation for it — the entry must be reported so it gets
// deleted (that is the burn-down).
namespace atypical {

ATYPICAL_HOT int ServeQuery(int key) {
  return key * 2;
}

}  // namespace atypical
