// Violating case: one hot function that reaches a lock (transitively), I/O
// (transitively) and a direct allocation — AL013, AL014, AL015 must all
// fire, each with its witness chain.
#include <fstream>
#include <vector>

namespace atypical {

void ReloadTable() {
  std::ifstream in;
}

void LockedPublish() {
  MutexLock lock(&mu_);
}

ATYPICAL_HOT int ServeQuery(std::vector<int>* out) {
  ReloadTable();
  LockedPublish();
  out->push_back(1);
  return 1;
}

}  // namespace atypical
