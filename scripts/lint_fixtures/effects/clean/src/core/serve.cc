// Clean case: a hot function whose whole call tree is effect-free, plus a
// justified NOEFFECT suppression on a shrink-only resize.
#include <algorithm>
#include <vector>

namespace atypical {

int SumPrefix(const std::vector<int>& v, int n) {
  int total = 0;
  for (int i = 0; i < n; ++i) total += v[i];
  return total;
}

void ShrinkTo(std::vector<int>* v, int n) {
  v->resize(n);  // NOEFFECT(allocates): shrink-only, capacity untouched
}

ATYPICAL_HOT int ServeQuery(const std::vector<int>& table, int key) {
  if (!std::binary_search(table.begin(), table.end(), key)) return 0;
  return SumPrefix(table, key);
}

}  // namespace atypical
