// Lint fixture: each convention violation must be caught (see the
// EXPECT-LINT annotations).  Not compiled; scanned by
// scripts/atypical_lint.py --self-test.
#include <cassert>
#include <mutex>

#include "util/logging.h"

namespace atypical {

void Bad(int* counter) {
  // Metric name not a dotted path.  EXPECT-LINT-NEXT: AL002
  obs::Registry()->GetCounter("UPPERCASE");
  // Latency histogram (default layout) not ending in seconds.
  obs::Registry()->GetHistogram("fixture.latency_ms");  // EXPECT-LINT: AL002
  // Counts histogram pretending to be a duration.
  obs::Registry()->GetHistogram("fixture.seconds",  // EXPECT-LINT: AL002
                                obs::BucketLayout::Counts());

  // Resilience metric missing from stats_schema.json resilienceMetrics.
  // EXPECT-LINT-NEXT: AL008
  obs::Registry()->GetCounter("fault.unregistered_total");
  // EXPECT-LINT-NEXT: AL008
  obs::Registry()->GetCounter("degradation.not_in_registry");
  // Serving metric missing from stats_schema.json servingMetrics.
  // EXPECT-LINT-NEXT: AL008
  obs::Registry()->GetCounter("serve.not_in_registry");

  // Side effects inside assertions.  EXPECT-LINT-NEXT: AL003
  DCHECK_GT(++*counter, 0);
  std::vector<int> v;
  CHECK(v.empty() || v.erase(v.begin()) != v.end());  // EXPECT-LINT: AL003
  int state = 0;
  DCHECK((state = 1) == 1);  // EXPECT-LINT: AL003

  // Raw primitives outside util/sync.h.  EXPECT-LINT-NEXT: AL004
  std::mutex raw_mu;
  std::lock_guard<std::mutex> lock(raw_mu);  // EXPECT-LINT: AL004
  // EXPECT-LINT-NEXT: AL004
  std::condition_variable raw_cv;

  // Unjustified discard.  EXPECT-LINT-NEXT: AL005
  (void)counter;

  // Bare assert.  EXPECT-LINT-NEXT: AL006
  assert(counter != nullptr);

  // An unjustified suppression, caught by AL001.
  state = *counter;  // NOLINT(bugprone-fixture-check) EXPECT-LINT: AL001
}

}  // namespace atypical
