// Lint fixture: NOLINT-style ALxxx suppressions with justifications silence
// the project checks — and the justification requirement (AL001) still
// applies to the suppression comment itself.  Must produce ZERO findings.
#include <mutex>

#include "util/logging.h"

namespace atypical {

void Suppressed(int* counter) {
  // NOLINTNEXTLINE(AL004): interop shim owns the handle; wrapper cannot
  std::mutex interop_mu;

  DCHECK_GT(*counter, 0);  // NOLINT(AL003): pure read, flagged name below
  (void)interop_mu;  // fixture only checks registration

  // A bare NOLINT with a justification suppresses everything on its line.
  std::condition_variable legacy_cv;  // NOLINT: vendored API predates sync.h
  (void)legacy_cv;  // fixture only checks suppression
}

}  // namespace atypical
