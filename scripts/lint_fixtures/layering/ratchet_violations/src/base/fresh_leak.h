// Fixture: new upward include; the ratchet only covers base/leaky.h.
#ifndef FIXTURE_RATCHET_FRESH_LEAK_H_
#define FIXTURE_RATCHET_FRESH_LEAK_H_
#include "mid/api.h"
#endif
