// Fixture: bottom layer, no project includes.
#ifndef FIXTURE_BASE_UTIL_H_
#define FIXTURE_BASE_UTIL_H_
#endif
