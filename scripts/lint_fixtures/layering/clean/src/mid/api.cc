// Fixture: same-layer include is always allowed.
#include "mid/api.h"
