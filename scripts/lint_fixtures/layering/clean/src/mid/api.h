// Fixture: declared downward edge mid -> base.
#ifndef FIXTURE_MID_API_H_
#define FIXTURE_MID_API_H_
#include "base/util.h"
#endif
