#ifndef FIXTURE_CYCLE_B_H_
#define FIXTURE_CYCLE_B_H_
#include "base/a.h"
#endif
