#ifndef FIXTURE_CYCLE_A_H_
#define FIXTURE_CYCLE_A_H_
#include "base/b.h"
#endif
