// Fixture: base must not reach up into mid.
#ifndef FIXTURE_UNDECLARED_LEAKY_H_
#define FIXTURE_UNDECLARED_LEAKY_H_
#include "mid/api.h"
#endif
