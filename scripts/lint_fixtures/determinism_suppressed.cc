// Lint fixture: justified suppressions for the determinism checks; the
// self-test proves the NOLINT path works and stays silent.  Never compiled.
#include <random>
#include <unordered_map>
#include <vector>

namespace fixture {

// Per-key rewrite: each entry is processed independently and written back to
// the same key, so visitation order cannot change the result.
int CompactAll(std::unordered_map<int, std::vector<int>>& postings) {
  int touched = 0;
  // NOLINTNEXTLINE(AL009): per-key rewrite; no cross-entry state, order-free
  for (auto it = postings.begin(); it != postings.end(); ++it) {
    it->second.shrink_to_fit();
    ++touched;
  }
  return touched;
}

double MaxMass(const std::unordered_map<int, double>& label_mass) {
  double best = 0.0;
  for (const auto& [label, mass] : label_mass) {  // NOLINT(AL009): strict max over distinct keys is order-free
    if (mass > best) best = mass;
  }
  return best;
}

long CountAll(const std::unordered_map<int, double>& m) {
  long n = 0;
  double mass_seen = 0.0;
  for (const auto& [k, v] : m) {  // NOLINT(AL009): integer count and a fixture-only sum
    ++n;
    mass_seen += v;  // NOLINT(AL012): fixture exercises the suppression path
  }
  return n;
}

// NOLINTNEXTLINE(AL010): one-shot seed report for operators; never feeds results
unsigned LogSeed() { return std::random_device{}(); }

}  // namespace fixture
