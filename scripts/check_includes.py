#!/usr/bin/env python3
"""IWYU-lite: every header under src/ must compile in isolation.

For each src/**/*.h this generates a one-line translation unit that includes
only that header and syntax-checks it with the project's include root and
language standard.  A header that passes can be included first from any
file, so include-order coupling cannot creep in.

Usage: scripts/check_includes.py [--compiler g++] [--jobs N]
Exit status: 0 if every header is self-contained, 1 otherwise.
"""

import argparse
import concurrent.futures
import pathlib
import shutil
import subprocess
import sys
import tempfile

REPO = pathlib.Path(__file__).resolve().parent.parent
SRC = REPO / "src"


def check_header(compiler: str, header: pathlib.Path) -> tuple[pathlib.Path, str]:
    rel = header.relative_to(SRC).as_posix()
    with tempfile.NamedTemporaryFile(
        mode="w", suffix=".cc", prefix="hdr_check_", delete=False
    ) as tu:
        tu.write(f'#include "{rel}"\n')
        tu_path = tu.name
    try:
        proc = subprocess.run(
            [
                compiler,
                "-std=c++20",
                "-fsyntax-only",
                "-Wall",
                "-Wextra",
                f"-I{SRC}",
                "-x",
                "c++",
                tu_path,
            ],
            capture_output=True,
            text=True,
        )
        return header, "" if proc.returncode == 0 else proc.stderr
    finally:
        pathlib.Path(tu_path).unlink(missing_ok=True)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--compiler", default="g++")
    parser.add_argument("--jobs", type=int, default=4)
    args = parser.parse_args()

    if shutil.which(args.compiler) is None:
        print(f"error: compiler '{args.compiler}' not found", file=sys.stderr)
        return 1

    headers = sorted(SRC.rglob("*.h"))
    if not headers:
        print("error: no headers found under src/", file=sys.stderr)
        return 1

    failures = []
    with concurrent.futures.ThreadPoolExecutor(max_workers=args.jobs) as pool:
        for header, err in pool.map(
            lambda h: check_header(args.compiler, h), headers
        ):
            rel = header.relative_to(REPO)
            if err:
                failures.append((rel, err))
                print(f"FAIL {rel}")
            else:
                print(f"ok   {rel}")

    if failures:
        print(f"\n{len(failures)} of {len(headers)} headers are not "
              "self-contained:\n", file=sys.stderr)
        for rel, err in failures:
            print(f"--- {rel}\n{err}", file=sys.stderr)
        return 1
    print(f"\nall {len(headers)} headers are self-contained")
    return 0


if __name__ == "__main__":
    sys.exit(main())
