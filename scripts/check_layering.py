#!/usr/bin/env python3
"""Architecture-conformance check: the src/ #include graph obeys the layer DAG.

Every headline guarantee in this repo (bit-identical parallel integration,
prune-is-a-proof similarity, damaged==clean-restricted degradation) rests on
the core staying deterministic and the layer boundaries staying auditable.
This check makes the architecture mechanical instead of tribal:

  1. `scripts/layering.json` declares the layers (top-level directories of
     src/), their bottom-up tier order, and the exact allowed dependency
     edges.  The checker verifies every allowed edge points to a strictly
     lower tier, so the declared graph is acyclic by construction.
  2. The full `#include "..."` graph of src/ is extracted (comment-aware).
     An include whose first path component is another layer is a cross-layer
     edge; it must be declared in the manifest or grandfathered, per exact
     (file, include) pair, in `scripts/layering_ratchet.json`.
  3. File-level include cycles are rejected outright (no ratchet).
  4. Stale ratchet entries — pairs that no longer occur — are findings too:
     remove them, that is the burn-down.

Usage:
  scripts/check_layering.py                 check src/ against the manifest
  scripts/check_layering.py --self-test     run the fixture suite in
                                            scripts/lint_fixtures/layering/
  scripts/check_layering.py --root DIR --manifest F [--ratchet F]
                                            check an arbitrary tree (the
                                            self-test uses this)
Exit status: 0 clean, 1 findings, 2 usage/environment error.

DESIGN.md §13 documents the layer contract, the ratchet policy, and how to
add a layer.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import re
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
SOURCE_GLOBS = ("*.h", "*.cc")
INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([^"]+)"')


def strip_block_comments(text: str) -> str:
    """Blanks /* */ comments so a commented-out #include is not an edge.

    Line comments are handled per line (INCLUDE_RE anchors at line start and
    an #include cannot follow code on the same line, so only block comments
    can hide one mid-line).
    """
    out = []
    i, n = 0, len(text)
    in_block = False
    while i < n:
        if in_block:
            if text.startswith("*/", i):
                in_block = False
                i += 2
                continue
            out.append("\n" if text[i] == "\n" else " ")
            i += 1
        else:
            if text.startswith("/*", i):
                in_block = True
                i += 2
                continue
            if text.startswith("//", i):
                j = text.find("\n", i)
                if j == -1:
                    break
                out.append("\n")
                i = j + 1
                continue
            out.append(text[i])
            i += 1
    return "".join(out)


class Manifest:
    def __init__(self, path: pathlib.Path):
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as e:
            print(f"error: cannot load manifest {path}: {e}", file=sys.stderr)
            sys.exit(2)
        self.tier_of: dict[str, int] = {}
        for rank, tier in enumerate(data.get("tiers", [])):
            for layer in tier:
                if layer in self.tier_of:
                    print(f"error: layer {layer!r} listed in two tiers",
                          file=sys.stderr)
                    sys.exit(2)
                self.tier_of[layer] = rank
        self.allowed: dict[str, set[str]] = {
            layer: set(targets)
            for layer, targets in data.get("allowed", {}).items()
        }
        self._validate()

    def _validate(self) -> None:
        """The declared graph must be a DAG: every edge strictly descends."""
        problems = []
        if set(self.allowed) != set(self.tier_of):
            only_allowed = set(self.allowed) - set(self.tier_of)
            only_tiers = set(self.tier_of) - set(self.allowed)
            if only_allowed:
                problems.append(
                    f"layers in 'allowed' but not tiered: {sorted(only_allowed)}")
            if only_tiers:
                problems.append(
                    f"tiered layers missing from 'allowed': {sorted(only_tiers)}")
        for layer, targets in self.allowed.items():
            for target in targets:
                if target not in self.tier_of:
                    problems.append(
                        f"allowed edge {layer} -> {target}: undeclared layer "
                        f"{target!r}")
                    continue
                if layer in self.tier_of and \
                        self.tier_of[target] >= self.tier_of[layer]:
                    problems.append(
                        f"allowed edge {layer} -> {target} does not descend "
                        f"(tier {self.tier_of[layer]} -> "
                        f"{self.tier_of[target]}); the manifest must be a DAG")
        if problems:
            for p in problems:
                print(f"error: manifest: {p}", file=sys.stderr)
            sys.exit(2)


def load_ratchet(path: pathlib.Path | None) -> set[tuple[str, str]]:
    if path is None or not path.exists():
        return set()
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: cannot load ratchet {path}: {e}", file=sys.stderr)
        sys.exit(2)
    pairs = set()
    for entry in data.get("grandfathered", []):
        if "file" not in entry or "include" not in entry:
            print(f"error: ratchet entry missing file/include: {entry}",
                  file=sys.stderr)
            sys.exit(2)
        pairs.add((entry["file"], entry["include"]))
    return pairs


def extract_includes(root: pathlib.Path) -> dict[str, list[tuple[int, str]]]:
    """Returns {root-relative file: [(line, quoted include), ...]}."""
    graph: dict[str, list[tuple[int, str]]] = {}
    files: list[pathlib.Path] = []
    for glob in SOURCE_GLOBS:
        files.extend(root.rglob(glob))
    for f in sorted(files):
        rel = f.relative_to(root).as_posix()
        text = strip_block_comments(f.read_text(encoding="utf-8"))
        incs = []
        for i, line in enumerate(text.split("\n"), start=1):
            m = INCLUDE_RE.match(line)
            if m:
                incs.append((i, m.group(1)))
        graph[rel] = incs
    return graph


def find_file_cycle(graph: dict[str, list[tuple[int, str]]]) -> list[str] | None:
    """Returns one include cycle as a path of files, or None.

    Edges are resolved root-relative: `a/x.cc` including "b/y.h" points at
    `b/y.h` when that file exists in the tree (quoted includes are
    root-relative by project convention).
    """
    adjacency = {
        f: [inc for _, inc in incs if inc in graph]
        for f, incs in graph.items()
    }
    WHITE, GRAY, BLACK = 0, 1, 2
    color = dict.fromkeys(graph, WHITE)
    parent: dict[str, str] = {}
    for start in sorted(graph):
        if color[start] != WHITE:
            continue
        stack = [(start, iter(adjacency[start]))]
        color[start] = GRAY
        while stack:
            node, it = stack[-1]
            advanced = False
            for nxt in it:
                if color[nxt] == GRAY:  # back edge: reconstruct the loop
                    cycle = [nxt, node]
                    walk = node
                    while walk != nxt:
                        walk = parent[walk]
                        cycle.append(walk)
                    cycle.reverse()
                    return cycle
                if color[nxt] == WHITE:
                    color[nxt] = GRAY
                    parent[nxt] = node
                    stack.append((nxt, iter(adjacency[nxt])))
                    advanced = True
                    break
            if not advanced:
                color[node] = BLACK
                stack.pop()
    return None


def check_tree(root: pathlib.Path, manifest: Manifest,
               ratchet: set[tuple[str, str]]) -> list[str]:
    """Returns rendered findings (empty == conformant)."""
    findings: list[str] = []
    graph = extract_includes(root)
    if not graph:
        print(f"error: no sources under {root}", file=sys.stderr)
        sys.exit(2)

    cycle = find_file_cycle(graph)
    if cycle is not None:
        findings.append(
            "include cycle (never ratchetable): " + " -> ".join(cycle))

    used_ratchet: set[tuple[str, str]] = set()
    for rel in sorted(graph):
        layer = rel.split("/", 1)[0]
        if "/" not in rel or layer not in manifest.tier_of:
            findings.append(
                f"{rel}:1: file is not in a declared layer (top-level "
                f"directory {layer!r} missing from layering.json tiers)")
            continue
        for line, inc in graph[rel]:
            target = inc.split("/", 1)[0]
            if "/" not in inc or target not in manifest.tier_of:
                findings.append(
                    f"{rel}:{line}: include \"{inc}\" is not in a declared "
                    f"layer (add the layer to layering.json or fix the path)")
                continue
            if target == layer or target in manifest.allowed.get(layer, set()):
                continue
            if (rel, inc) in ratchet:
                used_ratchet.add((rel, inc))
                continue
            findings.append(
                f"{rel}:{line}: undeclared cross-layer include \"{inc}\" "
                f"({layer} -> {target} is not in layering.json 'allowed'; "
                f"fix the layering — the ratchet only grandfathers "
                f"pre-manifest edges)")
    for rel, inc in sorted(ratchet - used_ratchet):
        findings.append(
            f"{rel}: stale ratchet entry for \"{inc}\" (edge no longer "
            f"exists — delete it from layering_ratchet.json; that is the "
            f"burn-down)")
    return findings


# --- self-test over fixture trees -------------------------------------------

def self_test() -> int:
    """Runs the checker over scripts/lint_fixtures/layering/<case>/.

    Each case directory holds `layering.json`, an optional `ratchet.json`, a
    `src/` tree, and an `EXPECT` file: first line `clean` or `findings`,
    remaining lines substrings that must each appear in some finding (and
    for `clean`, there must be none at all).
    """
    fixture_root = REPO / "scripts" / "lint_fixtures" / "layering"
    cases = sorted(p for p in fixture_root.iterdir() if p.is_dir())
    if not cases:
        print(f"error: no fixture cases under {fixture_root}", file=sys.stderr)
        return 2
    failures = []
    for case in cases:
        manifest = Manifest(case / "layering.json")
        ratchet_path = case / "ratchet.json"
        ratchet = load_ratchet(ratchet_path if ratchet_path.exists() else None)
        findings = check_tree(case / "src", manifest, ratchet)
        expect_lines = (case / "EXPECT").read_text().strip().split("\n")
        verdict, needles = expect_lines[0].strip(), expect_lines[1:]
        if verdict == "clean":
            if findings:
                failures.append((case.name, "expected clean, got:", findings))
            continue
        if not findings:
            failures.append((case.name, "expected findings, got none", []))
            continue
        for needle in needles:
            if not any(needle in f for f in findings):
                failures.append(
                    (case.name, f"no finding contains {needle!r}:", findings))
    if failures:
        for name, why, findings in failures:
            print(f"SELF-TEST FAIL {name}: {why}", file=sys.stderr)
            for f in findings:
                print(f"  {f}", file=sys.stderr)
        return 1
    print(f"self-test ok: {len(cases)} fixture trees")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--root", default=str(REPO / "src"))
    parser.add_argument("--manifest", default=str(REPO / "scripts" /
                                                  "layering.json"))
    parser.add_argument("--ratchet", default=str(REPO / "scripts" /
                                                 "layering_ratchet.json"))
    parser.add_argument("--self-test", action="store_true")
    args = parser.parse_args()

    if args.self_test:
        return self_test()

    root = pathlib.Path(args.root)
    if not root.is_dir():
        print(f"error: no such directory: {root}", file=sys.stderr)
        return 2
    manifest = Manifest(pathlib.Path(args.manifest))
    ratchet = load_ratchet(pathlib.Path(args.ratchet))
    findings = check_tree(root, manifest, ratchet)
    for f in findings:
        print(f)
    if findings:
        print(f"\n{len(findings)} layering finding(s)", file=sys.stderr)
        return 1
    grandfathered = len(ratchet)
    print(f"check_layering: conformant ({grandfathered} grandfathered "
          f"edge(s) remaining in the ratchet)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
