// Battlefield surveillance (the paper's §I and §VII mention this CPS
// domain): acoustic sensor posts along patrol corridors report atypical
// activity; the same cluster model retrieves and summarizes intrusion
// events.
//
// Everything is re-parameterized, nothing re-implemented: the "roads" are
// patrol corridors, the "hotspots" are contested chokepoints probed almost
// daily, the "incidents" are scattered one-off contacts.  The trustworthy-
// record pre-filter (ext::FilterTrustworthy) drops un-corroborated readings
// first — acoustic sensors are noisy.
#include <algorithm>
#include <cstdio>

#include "analytics/report.h"
#include "core/event_retrieval.h"
#include "core/integration.h"
#include "core/significance.h"
#include "core/temporal_key.h"
#include "ext/corroboration_filter.h"
#include "gen/congestion_process.h"
#include "gen/traffic_gen.h"
#include "util/string_util.h"

int main() {
  using namespace atypical;

  // Patrol corridors across a 10x8 mile sector, sensor posts every ~0.5 mi.
  RoadNetworkConfig corridors;
  corridors.num_highways = 5;
  corridors.area_width_miles = 10.0;
  corridors.area_height_miles = 8.0;
  corridors.seed = 77;
  const RoadNetwork sector = RoadNetwork::Generate(corridors);
  SensorNetworkConfig posts;
  posts.target_num_sensors = 80;
  const SensorNetwork network = SensorNetwork::Place(sector, posts);
  std::printf("sector: %d acoustic posts on %d patrol corridors\n",
              network.num_sensors(), network.num_highways());

  // Intrusion activity: two contested chokepoints probed regularly, some
  // diversionary activity elsewhere.  Events are short (minutes to an hour)
  // and spatially tight compared to traffic jams.
  TrafficGenConfig activity;
  activity.time_grid = TimeGrid(5);  // 5-minute reporting like PeMS
  activity.days_per_month = 14;      // a two-week operation
  activity.congestion.num_major_hotspots = 2;
  activity.congestion.num_minor_hotspots = 2;
  activity.congestion.incidents_per_day = 10.0;
  activity.congestion.incident_near_hotspot_prob = 0.3;
  activity.congestion.seed = 99;
  const TrafficGenerator generator(network, activity);
  std::vector<AtypicalRecord> contacts = generator.GenerateMonthAtypical(0);
  std::printf("%zu atypical contact reports over %d days\n", contacts.size(),
              activity.days_per_month);

  // Acoustic sensors misfire; require each report to be corroborated by at
  // least one neighbor before analysis (Tru-Alarm-style trustworthiness).
  ext::CorroborationParams trust;
  trust.delta_d_miles = 1.0;
  trust.delta_t_minutes = 10;
  trust.min_corroborators = 1;
  ext::CorroborationStats trust_stats;
  contacts = ext::FilterTrustworthy(contacts, network, activity.time_grid,
                                    trust, &trust_stats);
  std::printf("trust filter: kept %zu, dropped %zu un-corroborated reports\n",
              trust_stats.kept_records, trust_stats.dropped_records);

  // Retrieve intrusion events and integrate recurring ones.
  RetrievalParams retrieval;
  retrieval.delta_d_miles = 1.0;  // contacts cluster tighter than traffic
  retrieval.delta_t_minutes = 10;
  ClusterIdGenerator ids;
  std::vector<AtypicalCluster> events = RetrieveMicroClusters(
      contacts, network, activity.time_grid, retrieval, &ids);
  std::printf("%zu intrusion events detected\n", events.size());

  for (AtypicalCluster& c : events) {
    c = WithTemporalKeyMode(c, activity.time_grid,
                            TemporalKeyMode::kTimeOfDay);
  }
  IntegrationParams integration;
  integration.delta_sim = 0.4;  // intrusions vary more day to day
  const std::vector<AtypicalCluster> patterns =
      IntegrateClusters(std::move(events), integration, &ids);

  // Significant patterns: sustained pressure on a corridor, not one-off
  // contacts.
  SignificanceParams sig;
  sig.delta_s = 0.02;
  const double threshold = SignificanceThreshold(
      sig, DayRange{0, activity.days_per_month - 1}, activity.time_grid,
      network.num_sensors());
  std::vector<const AtypicalCluster*> hot;
  for (const AtypicalCluster& c : patterns) {
    if (IsSignificant(c, threshold)) hot.push_back(&c);
  }
  std::sort(hot.begin(), hot.end(),
            [](const AtypicalCluster* a, const AtypicalCluster* b) {
              return a->severity() > b->severity();
            });

  std::printf("\n%zu of %zu activity patterns are significant "
              "(threshold %.0f):\n",
              hot.size(), patterns.size(), threshold);
  for (const AtypicalCluster* c : hot) {
    const FeatureVector::Entry post = c->spatial.Top();
    const FeatureVector::Entry peak = c->temporal.Top();
    std::printf(
        "  corridor %s near post %u: %.0f sensor-minutes over %d probes, "
        "peaking around %s\n",
        sector.highway(network.sensor(post.key).highway).name.c_str(),
        post.key, c->severity(), c->num_micros(),
        ClockLabel(static_cast<int>(peak.key) *
                   activity.time_grid.window_minutes())
            .c_str());
  }
  return 0;
}
