// Quickstart: the smallest useful pipeline.
//
//   1. synthesize one month of CPS traffic data,
//   2. retrieve atypical events as micro-clusters (Algorithm 1),
//   3. integrate them into macro-clusters (Algorithm 3),
//   4. print the significant ones (Def. 5) with their hottest sensor and
//      peak time — the answers to the paper's Example 1 questions.
//
// Build & run:  cmake --build build && build/examples/quickstart
#include <cstdio>

#include "analytics/report.h"
#include "core/event_retrieval.h"
#include "core/integration.h"
#include "core/significance.h"
#include "core/temporal_key.h"
#include "gen/workload.h"
#include "util/string_util.h"

int main() {
  using namespace atypical;

  // A small synthetic deployment: highways, sensors, one month of data.
  std::unique_ptr<Workload> workload = MakeWorkload(WorkloadScale::kTiny);
  const TimeGrid grid = workload->gen_config.time_grid;
  const std::vector<AtypicalRecord> records =
      workload->generator->GenerateMonthAtypical(0);
  std::printf("deployment: %d sensors on %d highways, %zu atypical records\n",
              workload->sensors->num_sensors(),
              workload->sensors->num_highways(), records.size());

  // Algorithm 1: atypical events -> micro-clusters.
  ClusterIdGenerator ids;
  const ForestParams params = analytics::DefaultForestParams();
  RetrievalStats retrieval_stats;
  std::vector<AtypicalCluster> micros = RetrieveMicroClusters(
      records, *workload->sensors, grid, params.retrieval, &ids,
      &retrieval_stats);
  std::printf("Algorithm 1: %zu micro-clusters in %.1f ms\n", micros.size(),
              retrieval_stats.seconds * 1e3);

  // Cross-day integration needs time-of-day temporal keys.
  for (AtypicalCluster& c : micros) {
    c = WithTemporalKeyMode(c, grid, TemporalKeyMode::kTimeOfDay);
  }

  // Algorithm 3: micro -> macro clusters.
  IntegrationStats integration_stats;
  const std::vector<AtypicalCluster> macros = IntegrateClusters(
      std::move(micros), params.integration, &ids, &integration_stats);
  std::printf("Algorithm 3: %zu macro-clusters (%zu merges) in %.1f ms\n",
              macros.size(), integration_stats.merges,
              integration_stats.seconds * 1e3);

  // Def. 5: significant clusters for the whole month / whole area.
  const DayRange month{0, workload->gen_config.days_per_month - 1};
  const double threshold = SignificanceThreshold(
      analytics::DefaultSignificanceParams(), month, grid,
      workload->sensors->num_sensors());
  const std::vector<AtypicalCluster> significant =
      FilterSignificant(macros, threshold);

  std::printf("\nsignificant clusters (severity > %.0f sensor-minutes):\n",
              threshold);
  for (const AtypicalCluster& c : significant) {
    std::printf("  %s\n", c.DebugString(grid).c_str());
  }
  return 0;
}
