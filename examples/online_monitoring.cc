// Online monitoring: data arrives day by day; each evening the system
// appends the day's micro-clusters to the forest and the day's severities to
// the bottom-up cube, then answers a rolling "last 7 days" query with
// red-zone guided clustering — the paper's online analytical query
// processing (Fig. 2, right half) driven incrementally.
#include <algorithm>
#include <cstdio>

#include "analytics/report.h"
#include "core/query.h"
#include "cube/cube.h"
#include "gen/workload.h"
#include "util/string_util.h"

int main() {
  using namespace atypical;

  const auto workload = MakeWorkload(WorkloadScale::kTiny, 4);
  const TimeGrid grid = workload->gen_config.time_grid;

  // Pre-generate three "months" of incoming data, split by day.
  std::map<int, std::vector<AtypicalRecord>> incoming;
  for (int month = 0; month < workload->num_months; ++month) {
    for (const AtypicalRecord& r :
         workload->generator->GenerateMonthAtypical(month)) {
      incoming[grid.DayOfWindow(r.window)].push_back(r);
    }
  }

  AtypicalForest forest(workload->sensors.get(), grid,
                        analytics::DefaultForestParams());
  cube::BottomUpCube severity_cube;
  const QueryEngine engine(workload->sensors.get(), workload->regions.get(),
                           &forest, &severity_cube,
                           analytics::DefaultEngineOptions());

  std::printf("day | micros | 7-day significant clusters (guided query)\n");
  std::printf("----|--------|------------------------------------------\n");
  for (const auto& [day, records] : incoming) {
    // Evening ingest: one day of atypical records.
    forest.AddDay(day, records);
    severity_cube.MergeFrom(cube::BottomUpCube::FromAtypical(
        records, *workload->regions, grid));

    // Rolling weekly query ending today.
    AnalyticalQuery query;
    query.area = workload->sensors->bounds();
    query.days = DayRange{std::max(0, day - 6), day};
    QueryEngineOptions options = analytics::DefaultEngineOptions();
    options.post_check_significance = true;  // exact significant set
    const QueryEngine nightly(workload->sensors.get(),
                              workload->regions.get(), &forest,
                              &severity_cube, options);
    const QueryResult result = nightly.Run(query, QueryStrategy::kGuided);

    std::string summary;
    for (const AtypicalCluster& c : result.clusters) {
      const FeatureVector::Entry top = c.spatial.Top();
      summary += StrPrintf(" [s%u %.0fmin]", top.key, c.severity());
    }
    std::printf("%3d | %6zu |%s\n", day, forest.MicrosOfDay(day).size(),
                summary.empty() ? " (none)" : summary.c_str());
  }

  std::printf("\nforest now holds %zu micro-clusters (%s)\n",
              forest.num_micro_clusters(),
              HumanBytes(forest.ByteSize()).c_str());
  return 0;
}
