// Online monitoring under faults: data arrives day by day over a lossy
// feed — late, duplicated and malformed records included — and the archive
// read at startup has a corrupt block.  The robust ingest guard
// (core/ingest.h) and the salvage reader (storage/reader.h) absorb the
// damage; each evening the system appends the day's micro-clusters to the
// forest and the validated severities to the bottom-up cube, then answers a
// rolling "last 7 days" query with red-zone guided clustering — the paper's
// online analytical query processing (Fig. 2, right half) driven
// incrementally, now in degraded mode.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "analytics/report.h"
#include "core/incremental_integration.h"
#include "core/ingest.h"
#include "core/query.h"
#include "cube/cube.h"
#include "gen/workload.h"
#include "obs/snapshot.h"
#include "obs/stats.h"
#include "storage/reader.h"
#include "storage/writer.h"
#include "util/fault.h"
#include "util/flags.h"
#include "util/string_util.h"

// Accepts --stats[=text|json] [--stats-out FILE] to dump the pipeline's
// StatsSnapshot after the run (same contract as atypical_cli).
int main(int argc, char** argv) {
  using namespace atypical;
  const FlagParser flags(argc, argv);

  const auto workload = MakeWorkload(WorkloadScale::kTiny, 4);
  const TimeGrid grid = workload->gen_config.time_grid;

  // ---- Startup: recover the archived month from a damaged file. ----
  // Write month 0 to disk, flip one payload bit, then read it back in
  // salvage mode: one block is lost, everything else survives.
  const std::string archive = "/tmp/online_monitoring_archive.atyp";
  constexpr uint32_t kArchiveBlockRecords = 512;
  {
    const Dataset month0 = workload->generator->GenerateMonth(0);
    storage::WriterOptions writer_options;
    writer_options.block_records = kArchiveBlockRecords;
    const auto written = storage::WriteDataset(month0, archive, writer_options);
    if (!written.ok()) {
      std::printf("archive write failed: %s\n",
                  written.status().ToString().c_str());
      return 1;
    }
  }
  {
    std::ifstream in(archive, std::ios::binary);
    std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                               std::istreambuf_iterator<char>());
    in.close();
    // Flip one bit inside the first block's payload: that block's CRC
    // check fails and salvage mode skips exactly one block.
    const size_t payload = sizeof(storage::kMagic) + storage::kFileHeaderBytes +
                           storage::kBlockHeaderBytes;
    FaultPlan disk_fault(7);
    disk_fault.FlipBit(&bytes, payload,
                       payload + kArchiveBlockRecords * storage::kWireRecordBytes);
    std::ofstream out(archive, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
  }
  storage::SalvageReport salvage;
  const Result<Dataset> recovered =
      storage::ReadDataset(archive, {.salvage = true}, &salvage);
  std::remove(archive.c_str());
  if (!recovered.ok()) {
    std::printf("salvage read failed: %s\n",
                recovered.status().ToString().c_str());
    return 1;
  }
  std::printf("startup archive recovery: %s\n",
              analytics::SalvageHealthLine(salvage).c_str());

  // ---- Live feed: three months of days, mangled in transit. ----
  std::map<int, std::vector<AtypicalRecord>> incoming;
  for (int month = 0; month < workload->num_months; ++month) {
    for (const AtypicalRecord& r :
         workload->generator->GenerateMonthAtypical(month)) {
      incoming[grid.DayOfWindow(r.window)].push_back(r);
    }
  }

  AtypicalForest forest(workload->sensors.get(), grid,
                        analytics::DefaultForestParams());
  cube::BottomUpCube severity_cube;

  // Attribute the archive damage to absolute days so every later query
  // reports the loss in its completeness annotation instead of silently
  // shrinking (DESIGN §12: quiet day vs blind day).
  for (const auto& [day, lost] : analytics::LostRecordsByDay(
           salvage, recovered->meta(), kArchiveBlockRecords)) {
    DayProvenance damage;
    damage.records_lost = lost;
    damage.blocks_skipped = lost / kArchiveBlockRecords;
    forest.RecordDayProvenance(day, damage);
  }

  IngestOptions ingest_options;
  ingest_options.policy = IngestPolicy::kBuffer;
  FaultPlan feed_fault(2026);

  // One guard and one incremental integrator serve the whole run: records
  // stream guard → integrator as they are validated, so a live macro-cluster
  // picture (`num_macros()`) is available at any instant, and each evening
  // `Finalize()` re-derives the canonical batch micro-clusters — the exact
  // clusters the old per-day batch path produced — for the forest.  The
  // builder draws provisional ids from the integrator's scratch generator;
  // the real forest ids are only consumed at Finalize.
  const ForestParams forest_params = analytics::DefaultForestParams();
  IncrementalIntegrator integrator(forest_params.integration, forest.ids());
  std::vector<AtypicalRecord> validated;  // the current day's accepted records
  RobustStreamingEventBuilder guard(
      workload->sensors.get(), grid, forest_params.retrieval,
      integrator.scratch_ids(), integrator.AsEmitFn(), ingest_options);
  guard.set_accept_tap(
      [&validated](const AtypicalRecord& r) { validated.push_back(r); });
  IngestStats published_ingest;  // stats are cumulative; rows show the delta

  std::printf(
      "day | micros | macros | ingest health                             "
      "| 7-day significant clusters\n"
      "----|--------|--------|-------------------------------------------"
      "|---------------------------\n");
  for (const auto& [day, records] : incoming) {
    // The transport delays, duplicates and corrupts the day's records.
    std::vector<AtypicalRecord> feed = feed_fault.DelayRecords(
        records, ingest_options.lateness_horizon_windows);
    feed = feed_fault.DuplicateRecords(feed, 0.02);
    feed = feed_fault.CorruptRecords(feed, 0.01, grid);

    // Evening ingest through the guard: malformed records are quarantined,
    // late ones reordered; only the validated stream reaches the integrator
    // and the severity cube.
    validated.clear();
    for (const AtypicalRecord& r : feed) guard.Add(r);
    guard.Flush();
    const size_t live_macros = integrator.num_macros();

    // Close out the day: canonical micro-clusters into the forest, then
    // re-arm both stages for tomorrow.
    std::vector<AtypicalCluster> day_micros;
    integrator.Finalize(/*stats=*/nullptr, &day_micros);
    forest.InstallDay(day, std::move(day_micros));
    guard.Reset();
    integrator.Reset();
    severity_cube.MergeFrom(cube::BottomUpCube::FromAtypical(
        validated, *workload->regions, grid));

    // What the guard absorbed becomes part of the day's provenance: a day
    // whose records were quarantined is a degraded day, not a quiet one.
    // Guard stats are cumulative across Reset(), so take the day's delta.
    const IngestStats total = guard.stats();
    IngestStats day_stats;
    day_stats.records_in = total.records_in - published_ingest.records_in;
    day_stats.accepted = total.accepted - published_ingest.accepted;
    day_stats.reordered = total.reordered - published_ingest.reordered;
    day_stats.quarantined_unknown_sensor =
        total.quarantined_unknown_sensor -
        published_ingest.quarantined_unknown_sensor;
    day_stats.quarantined_bad_severity =
        total.quarantined_bad_severity -
        published_ingest.quarantined_bad_severity;
    day_stats.quarantined_excess_severity =
        total.quarantined_excess_severity -
        published_ingest.quarantined_excess_severity;
    day_stats.quarantined_duplicate =
        total.quarantined_duplicate - published_ingest.quarantined_duplicate;
    day_stats.quarantined_late =
        total.quarantined_late - published_ingest.quarantined_late;
    published_ingest = total;
    DayProvenance ingested;
    ingested.records_stored = day_stats.accepted;
    ingested.records_quarantined = day_stats.quarantined();
    forest.RecordDayProvenance(day, ingested);

    // Rolling weekly query ending today.
    AnalyticalQuery query;
    query.area = workload->sensors->bounds();
    query.days = DayRange{std::max(0, day - 6), day};
    QueryEngineOptions options = analytics::DefaultEngineOptions();
    options.post_check_significance = true;  // exact significant set
    const QueryEngine nightly(workload->sensors.get(),
                              workload->regions.get(), &forest,
                              &severity_cube, options);
    const QueryResult result = nightly.Run(query, QueryStrategy::kGuided);

    std::string summary;
    for (const AtypicalCluster& c : result.clusters) {
      const FeatureVector::Entry top = c.spatial.Top();
      summary += StrPrintf(" [s%u %.0fmin]", top.key, c.severity());
    }
    std::printf("%3d | %6zu | %6zu | %s |%s\n", day,
                forest.MicrosOfDay(day).size(), live_macros,
                analytics::IngestHealthLine(day_stats).c_str(),
                summary.empty() ? " (none)" : summary.c_str());
  }

  std::printf("\nforest now holds %zu micro-clusters (%s)\n",
              forest.num_micro_clusters(),
              HumanBytes(forest.ByteSize()).c_str());

  // ---- Audit: how trustworthy was the whole run? ----
  // One query over the full history; its completeness annotation folds in
  // every day's provenance (archive loss + feed quarantines).
  {
    const std::vector<int> days = forest.Days();
    AnalyticalQuery audit;
    audit.area = workload->sensors->bounds();
    audit.days = DayRange{days.front(), days.back()};
    const QueryEngine engine(workload->sensors.get(), workload->regions.get(),
                             &forest, &severity_cube,
                             analytics::DefaultEngineOptions());
    const QueryResult history = engine.Run(audit, QueryStrategy::kAll);
    std::printf("full-history audit: %s\n",
                analytics::CompletenessLine(history.completeness).c_str());
  }

  if (flags.Has("stats")) {
    const std::string mode = flags.GetString("stats", "text");
    const obs::StatsSnapshot snapshot = obs::Registry()->Snapshot();
    std::string rendered;
    if (mode == "json") {
      rendered = snapshot.ToJson();
    } else if (mode == "text" || mode == "true") {  // bare --stats
      rendered = snapshot.ToText();
    } else {
      std::fprintf(stderr, "error: --stats expects text or json, got: %s\n",
                   mode.c_str());
      return 1;
    }
    const std::string out_path = flags.GetString("stats-out", "");
    if (out_path.empty()) {
      std::fputs(rendered.c_str(), stdout);
    } else {
      std::ofstream out(out_path, std::ios::trunc);
      out << rendered;
      if (!out) {
        std::fprintf(stderr, "error: cannot write --stats-out file: %s\n",
                     out_path.c_str());
        return 1;
      }
    }
  }
  return 0;
}
