// The paper's motivating scenario (Example 1): a transportation officer's
// monthly congestion report for the metropolitan area.
//
// Answers, for each significant congestion macro-cluster:
//   (1) WHERE do congestions usually happen? — top sensors by severity;
//   (2) WHEN and how do they start?          — the temporal profile's onset;
//   (3) WHICH segment/time is most serious?  — peak SF and TF entries.
//
// Uses the full analytical stack: forest + cube + red-zone guided queries,
// and shows the drill-down from a monthly macro-cluster to its daily
// micro-clusters (the clustering tree of Fig. 10).
#include <algorithm>
#include <cstdio>

#include "analytics/report.h"
#include "core/query.h"
#include "util/string_util.h"

namespace {

using namespace atypical;

// Prints the onset: the earliest time-of-day window whose severity reaches
// 20% of the cluster's peak window severity.
void PrintOnset(const AtypicalCluster& cluster, const TimeGrid& grid) {
  const double peak = cluster.temporal.Top().severity;
  for (const FeatureVector::Entry& e : cluster.temporal.entries()) {
    if (e.severity >= 0.2 * peak) {
      std::printf("      starts around %s",
                  ClockLabel(static_cast<int>(e.key) *
                             grid.window_minutes())
                      .c_str());
      return;
    }
  }
}

}  // namespace

int main() {
  using namespace atypical;

  // Three months of data, daily micro-clusters pre-computed offline.
  std::printf("building three months of monitoring data...\n");
  const auto ctx = analytics::BuildContext(WorkloadScale::kSmall, 3);
  const TimeGrid& grid = ctx->time_grid();

  QueryEngine engine = ctx->MakeEngine(analytics::DefaultEngineOptions());

  // Monthly report: whole city, days 0..27, red-zone guided with the exact
  // severity post-check (Algorithm 4 in full).
  QueryEngineOptions options = analytics::DefaultEngineOptions();
  options.post_check_significance = true;
  QueryEngine report_engine = ctx->MakeEngine(options);
  const AnalyticalQuery month_query = ctx->WholeAreaQuery(28);
  const QueryResult report =
      report_engine.Run(month_query, QueryStrategy::kGuided);

  std::printf(
      "\n===== monthly congestion report =====\n"
      "query: whole area (%d sensors), %d days; guided clustering used\n"
      "%zu of %zu micro-clusters integrated (%zu red zones of %zu regions); "
      "%.1f ms\n",
      report.num_sensors_in_w, month_query.days.NumDays(),
      report.cost.input_micro_clusters, report.cost.micro_clusters_in_range,
      report.cost.red_zones, report.cost.regions_checked,
      report.cost.seconds * 1e3);

  // Sort by severity for the report.
  std::vector<const AtypicalCluster*> ranked;
  for (const AtypicalCluster& c : report.clusters) ranked.push_back(&c);
  std::sort(ranked.begin(), ranked.end(),
            [](const AtypicalCluster* a, const AtypicalCluster* b) {
              return a->severity() > b->severity();
            });

  int rank = 0;
  for (const AtypicalCluster* c : ranked) {
    if (++rank > 5) break;
    std::printf("\n  #%d recurring congestion, total %.0f sensor-minutes, "
                "%d sensors, %d daily events merged\n",
                rank, c->severity(), c->num_sensors(), c->num_micros());
    // (1) Where.
    std::printf("      worst road segments:");
    for (const FeatureVector::Entry& e : c->spatial.TopEntries(3)) {
      const Sensor& s = ctx->network().sensor(e.key);
      std::printf("  s%u on %s (%.0f min)", e.key,
                  ctx->workload->roads.highway(s.highway).name.c_str(),
                  e.severity);
    }
    std::printf("\n");
    // (2) When.
    PrintOnset(*c, grid);
    const FeatureVector::Entry peak = c->temporal.Top();
    std::printf(", most serious at %s (%.0f min)\n",
                ClockLabel(static_cast<int>(peak.key) *
                           grid.window_minutes())
                    .c_str(),
                peak.severity);
    // (3) Drill-down into the clustering tree: daily pieces.
    std::printf("      drill-down: spans days %d-%d across %d daily events\n",
                c->first_day, c->last_day, c->num_micros());
  }

  // Compare query strategies on the same report (the paper's §V.B).
  std::printf("\n===== strategy comparison (no post-check) =====\n");
  for (const QueryStrategy strategy :
       {QueryStrategy::kAll, QueryStrategy::kPrune, QueryStrategy::kGuided}) {
    const QueryResult r = engine.Run(month_query, strategy);
    std::printf("  %-3s: %5zu input micro-clusters, %4zu macro-clusters, "
                "%7.1f ms\n",
                QueryStrategyName(strategy), r.cost.input_micro_clusters,
                r.clusters.size(), r.cost.seconds * 1e3);
  }
  return 0;
}
