// atypical_cli — command-line driver for the whole pipeline.
//
//   atypical_cli generate --dir /tmp/cps --months 2 [--scale tiny|small]
//       Synthesize monthly datasets and write them as .atyp files.
//
//   atypical_cli inspect /tmp/cps/month0.atyp
//       Print dataset metadata and atypical statistics.
//
//   atypical_cli analyze --dir /tmp/cps [--days a:b] [--strategy All|Pru|Gui]
//                        [--delta-s 0.05] [--post-check]
//       Scan every dataset in the directory, build the forest and the
//       severity cube, run the analytical query and print the top clusters.
//
// The generator is deterministic per --seed, so `generate` + `analyze`
// reproduce exactly.
//
// Every command accepts --stats[=text|json] to dump the pipeline's
// StatsSnapshot on exit (--stats-out FILE redirects it away from stdout).
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "analytics/drilldown.h"
#include "analytics/report.h"
#include "core/event_retrieval.h"
#include "core/incremental_integration.h"
#include "core/integration.h"
#include "core/query.h"
#include "core/streaming.h"
#include "gen/workload.h"
#include "obs/snapshot.h"
#include "obs/stats.h"
#include "storage/reader.h"
#include "storage/writer.h"
#include "util/flags.h"
#include "util/string_util.h"

namespace {

using namespace atypical;

int Fail(const std::string& message) {
  std::fprintf(stderr, "error: %s\n", message.c_str());
  return 1;
}

int Usage() {
  std::fprintf(stderr,
               "usage: atypical_cli generate --dir DIR [--months N] "
               "[--scale tiny|small] [--seed S]\n"
               "       atypical_cli inspect FILE...\n"
               "       atypical_cli analyze --dir DIR [--days A:B] "
               "[--strategy All|Pru|Gui] [--delta-s F] [--post-check] "
               "[--scale tiny|small] [--seed S]\n"
               "       atypical_cli integrate --dir DIR "
               "[--mode batch|streamed] [--delta-sim F] [--max-rounds N] "
               "[--scale tiny|small] [--seed S]\n"
               "Any command also takes --stats[=text|json] "
               "[--stats-out FILE] to dump pipeline metrics on exit.\n");
  return 2;
}

// Renders the process-wide StatsSnapshot per --stats[=text|json], to stdout
// or to --stats-out FILE.  No-op without --stats.  In an ATYPICAL_NO_STATS
// build the snapshot is empty but still renders (valid empty JSON), so the
// flag's contract is build-flavor independent.
int DumpStats(const FlagParser& flags) {
  if (!flags.Has("stats")) return 0;
  const std::string mode = flags.GetString("stats", "text");
  std::string rendered;
  const obs::StatsSnapshot snapshot = obs::Registry()->Snapshot();
  if (mode == "json") {
    rendered = snapshot.ToJson();
  } else if (mode == "text" || mode == "true") {  // bare --stats
    rendered = snapshot.ToText();
  } else {
    return Fail("--stats expects text or json, got: " + mode);
  }
  const std::string out_path = flags.GetString("stats-out", "");
  if (out_path.empty()) {
    std::fputs(rendered.c_str(), stdout);
    return 0;
  }
  std::ofstream out(out_path, std::ios::trunc);
  out << rendered;
  if (!out) return Fail("cannot write --stats-out file: " + out_path);
  return 0;
}

Result<WorkloadScale> ParseScale(const std::string& name) {
  if (name == "tiny") return WorkloadScale::kTiny;
  if (name == "small") return WorkloadScale::kSmall;
  if (name == "paper-like") return WorkloadScale::kPaperLike;
  return InvalidArgumentError("unknown scale: " + name);
}

int RunGenerate(const FlagParser& flags) {
  const std::string dir = flags.GetString("dir", "");
  if (dir.empty()) return Usage();
  const int months = static_cast<int>(flags.GetInt("months", 2));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  const Result<WorkloadScale> scale =
      ParseScale(flags.GetString("scale", "tiny"));
  if (!scale.ok()) return Fail(scale.status().ToString());
  if (!flags.ok()) return Fail(flags.error());

  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  const auto workload = MakeWorkload(*scale, seed);
  for (int month = 0; month < months; ++month) {
    const Dataset dataset = workload->generator->GenerateMonth(month);
    const std::string path = StrPrintf("%s/month%d.atyp", dir.c_str(), month);
    const Result<uint64_t> bytes = storage::WriteDataset(dataset, path);
    if (!bytes.ok()) return Fail(bytes.status().ToString());
    std::printf("%s: %lld readings (%.1f%% atypical), %s\n", path.c_str(),
                (long long)dataset.num_readings(),
                100.0 * dataset.atypical_fraction(),
                HumanBytes(*bytes).c_str());
  }
  return 0;
}

int RunInspect(const FlagParser& flags) {
  if (flags.positional().size() < 2) return Usage();
  for (size_t i = 1; i < flags.positional().size(); ++i) {
    const std::string& path = flags.positional()[i];
    Result<storage::DatasetReader> reader = storage::DatasetReader::Open(path);
    if (!reader.ok()) return Fail(reader.status().ToString());
    const DatasetMeta& meta = reader->meta();
    int64_t atypical = 0;
    double severity = 0.0;
    const Result<int64_t> scanned =
        reader->ScanAtypical([&](const AtypicalRecord& r) {
          ++atypical;
          severity += static_cast<double>(r.severity_minutes);
        });
    if (!scanned.ok()) return Fail(scanned.status().ToString());
    std::printf(
        "%s: %s — %d days from day %d, %d sensors, %d-min windows; "
        "%lld readings, %lld atypical (%.2f%%), %.0f severity minutes\n",
        path.c_str(), meta.name.c_str(), meta.num_days, meta.first_day,
        meta.num_sensors, meta.time_grid.window_minutes(),
        (long long)*scanned, (long long)atypical,
        *scanned > 0 ? 100.0 * static_cast<double>(atypical) /
                           static_cast<double>(*scanned)
                     : 0.0,
        severity);
  }
  return 0;
}

int RunAnalyze(const FlagParser& flags) {
  const std::string dir = flags.GetString("dir", "");
  if (dir.empty()) return Usage();
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  const Result<WorkloadScale> scale =
      ParseScale(flags.GetString("scale", "tiny"));
  if (!scale.ok()) return Fail(scale.status().ToString());
  const std::string strategy_name = flags.GetString("strategy", "Gui");
  const double delta_s = flags.GetDouble("delta-s", 0.05);
  const bool post_check = flags.GetBool("post-check", false);
  const std::string days_spec = flags.GetString("days", "");
  if (!flags.ok()) return Fail(flags.error());

  QueryStrategy strategy;
  if (strategy_name == "All") {
    strategy = QueryStrategy::kAll;
  } else if (strategy_name == "Pru") {
    strategy = QueryStrategy::kPrune;
  } else if (strategy_name == "Gui") {
    strategy = QueryStrategy::kGuided;
  } else {
    return Fail("unknown strategy: " + strategy_name);
  }

  // The sensor deployment is reconstructed from (scale, seed): dataset
  // files store readings, not the map.  A mismatched seed is detectable via
  // the sensor count.
  const auto workload = MakeWorkload(*scale, seed);
  const TimeGrid grid = workload->gen_config.time_grid;
  AtypicalForest forest(workload->sensors.get(), grid,
                        analytics::DefaultForestParams());
  cube::BottomUpCube severity_cube;

  std::vector<std::string> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".atyp") {
      files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  if (files.empty()) return Fail("no .atyp files in " + dir);

  int min_day = INT32_MAX;
  int max_day = INT32_MIN;
  for (const std::string& path : files) {
    Result<storage::DatasetReader> reader = storage::DatasetReader::Open(path);
    if (!reader.ok()) return Fail(reader.status().ToString());
    if (reader->meta().num_sensors != workload->sensors->num_sensors()) {
      return Fail(StrPrintf(
          "%s has %d sensors but the (scale, seed) deployment has %d — "
          "pass the generate-time --scale/--seed", path.c_str(),
          reader->meta().num_sensors, workload->sensors->num_sensors()));
    }
    std::vector<AtypicalRecord> records;
    const Result<int64_t> scanned = reader->ScanAtypical(
        [&](const AtypicalRecord& r) { records.push_back(r); });
    if (!scanned.ok()) return Fail(scanned.status().ToString());
    min_day = std::min(min_day, reader->meta().first_day);
    max_day = std::max(max_day,
                       reader->meta().first_day + reader->meta().num_days - 1);
    forest.AddRecords(records);
    severity_cube.MergeFrom(cube::BottomUpCube::FromAtypical(
        records, *workload->regions, grid));
    std::printf("loaded %s: %zu atypical records\n", path.c_str(),
                records.size());
  }

  AnalyticalQuery query;
  query.area = workload->sensors->bounds();
  query.days = DayRange{min_day, max_day};
  if (!days_spec.empty()) {
    const auto parts = StrSplit(days_spec, ':');
    if (parts.size() != 2) return Fail("--days expects A:B");
    query.days = DayRange{static_cast<int>(ParseInt64(parts[0])),
                          static_cast<int>(ParseInt64(parts[1]))};
    if (query.days.NumDays() <= 0) return Fail("--days range is empty");
  }

  QueryEngineOptions options = analytics::DefaultEngineOptions();
  options.significance.delta_s = delta_s;
  options.post_check_significance = post_check;
  const QueryEngine engine(workload->sensors.get(), workload->regions.get(),
                           &forest, &severity_cube, options);
  const QueryResult result = engine.Run(query, strategy);

  std::printf(
      "\n%s query over days %d-%d (%d sensors): %zu input micro-clusters, "
      "%zu clusters, threshold %.0f, %.1f ms\n\n",
      QueryStrategyName(strategy), query.days.first_day, query.days.last_day,
      result.num_sensors_in_w, result.cost.input_micro_clusters,
      result.clusters.size(), result.threshold, result.cost.seconds * 1e3);
  std::printf("%s", analytics::RenderTopClusters(result.clusters,
                                                 *workload->sensors, grid, 10)
                        .ToAlignedString()
                        .c_str());
  return 0;
}

// Runs Algorithm 1 + Algorithm 3 over every .atyp file in --dir through
// either the batch pipeline (RetrieveMicroClusters + IntegrateClusters) or
// the streamed one (StreamingEventBuilder → IncrementalIntegrator →
// Finalize).  The streamed≡batch guarantee makes the two modes print
// byte-identical macro-cluster lines — CI diffs them — so nothing
// mode-dependent (timing, counters) goes to stdout.
int RunIntegrate(const FlagParser& flags) {
  const std::string dir = flags.GetString("dir", "");
  if (dir.empty()) return Usage();
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  const Result<WorkloadScale> scale =
      ParseScale(flags.GetString("scale", "tiny"));
  if (!scale.ok()) return Fail(scale.status().ToString());
  const std::string mode = flags.GetString("mode", "batch");
  if (mode != "batch" && mode != "streamed") {
    return Fail("--mode expects batch or streamed, got: " + mode);
  }
  IntegrationParams params;
  params.delta_sim = flags.GetDouble("delta-sim", params.delta_sim);
  params.max_fixpoint_rounds = static_cast<uint64_t>(flags.GetInt(
      "max-rounds", static_cast<int64_t>(params.max_fixpoint_rounds)));
  if (!flags.ok()) return Fail(flags.error());

  const auto workload = MakeWorkload(*scale, seed);
  const TimeGrid grid = workload->gen_config.time_grid;
  const RetrievalParams retrieval = analytics::DefaultForestParams().retrieval;

  std::vector<std::string> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".atyp") {
      files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  if (files.empty()) return Fail("no .atyp files in " + dir);

  std::vector<AtypicalRecord> records;
  for (const std::string& path : files) {
    Result<storage::DatasetReader> reader = storage::DatasetReader::Open(path);
    if (!reader.ok()) return Fail(reader.status().ToString());
    if (reader->meta().num_sensors != workload->sensors->num_sensors()) {
      return Fail(StrPrintf(
          "%s has %d sensors but the (scale, seed) deployment has %d — "
          "pass the generate-time --scale/--seed", path.c_str(),
          reader->meta().num_sensors, workload->sensors->num_sensors()));
    }
    const Result<int64_t> scanned = reader->ScanAtypical(
        [&](const AtypicalRecord& r) { records.push_back(r); });
    if (!scanned.ok()) return Fail(scanned.status().ToString());
  }

  std::vector<AtypicalCluster> micros;
  std::vector<AtypicalCluster> macros;
  ClusterIdGenerator ids(1);
  if (mode == "batch") {
    micros = RetrieveMicroClusters(records, *workload->sensors, grid,
                                   retrieval, &ids);
    macros = IntegrateClusters(micros, params, &ids);
  } else {
    IncrementalIntegrator integrator(params, &ids);
    StreamingEventBuilder builder(workload->sensors.get(), grid, retrieval,
                                  integrator.scratch_ids(),
                                  integrator.AsEmitFn());
    for (const AtypicalRecord& r : records) builder.Add(r);
    builder.Flush();
    macros = integrator.Finalize(/*stats=*/nullptr, &micros);
  }

  std::printf("records=%zu micros=%zu macros=%zu delta_sim=%.17g\n",
              records.size(), micros.size(), macros.size(), params.delta_sim);
  for (const AtypicalCluster& c : macros) {
    std::printf(
        "cluster %llu: severity=%.17g sensors=%d windows=%d micros=%zu\n",
        (unsigned long long)c.id, c.severity(), c.num_sensors(),
        c.num_windows(), c.micro_ids.size());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const FlagParser flags(argc, argv);
  if (flags.positional().empty()) return Usage();
  const std::string& command = flags.positional()[0];
  int rc;
  if (command == "generate") {
    rc = RunGenerate(flags);
  } else if (command == "inspect") {
    rc = RunInspect(flags);
  } else if (command == "analyze") {
    rc = RunAnalyze(flags);
  } else if (command == "integrate") {
    rc = RunIntegrate(flags);
  } else {
    return Usage();
  }
  const int stats_rc = DumpStats(flags);
  return rc != 0 ? rc : stats_rc;
}
