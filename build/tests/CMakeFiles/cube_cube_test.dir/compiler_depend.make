# Empty compiler generated dependencies file for cube_cube_test.
# This may be replaced when dependencies are built.
