# Empty compiler generated dependencies file for cps_road_network_test.
# This may be replaced when dependencies are built.
