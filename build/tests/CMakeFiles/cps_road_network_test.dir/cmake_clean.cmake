file(REMOVE_RECURSE
  "CMakeFiles/cps_road_network_test.dir/cps_road_network_test.cc.o"
  "CMakeFiles/cps_road_network_test.dir/cps_road_network_test.cc.o.d"
  "cps_road_network_test"
  "cps_road_network_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cps_road_network_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
