# Empty compiler generated dependencies file for core_query_planning_test.
# This may be replaced when dependencies are built.
