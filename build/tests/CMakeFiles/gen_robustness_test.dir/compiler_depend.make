# Empty compiler generated dependencies file for gen_robustness_test.
# This may be replaced when dependencies are built.
