file(REMOVE_RECURSE
  "CMakeFiles/gen_robustness_test.dir/gen_robustness_test.cc.o"
  "CMakeFiles/gen_robustness_test.dir/gen_robustness_test.cc.o.d"
  "gen_robustness_test"
  "gen_robustness_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gen_robustness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
