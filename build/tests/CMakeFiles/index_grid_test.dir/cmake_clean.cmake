file(REMOVE_RECURSE
  "CMakeFiles/index_grid_test.dir/index_grid_test.cc.o"
  "CMakeFiles/index_grid_test.dir/index_grid_test.cc.o.d"
  "index_grid_test"
  "index_grid_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/index_grid_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
