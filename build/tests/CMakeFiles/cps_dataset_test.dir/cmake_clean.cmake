file(REMOVE_RECURSE
  "CMakeFiles/cps_dataset_test.dir/cps_dataset_test.cc.o"
  "CMakeFiles/cps_dataset_test.dir/cps_dataset_test.cc.o.d"
  "cps_dataset_test"
  "cps_dataset_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cps_dataset_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
