file(REMOVE_RECURSE
  "CMakeFiles/core_event_retrieval_test.dir/core_event_retrieval_test.cc.o"
  "CMakeFiles/core_event_retrieval_test.dir/core_event_retrieval_test.cc.o.d"
  "core_event_retrieval_test"
  "core_event_retrieval_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_event_retrieval_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
