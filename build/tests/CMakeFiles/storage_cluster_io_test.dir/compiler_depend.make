# Empty compiler generated dependencies file for storage_cluster_io_test.
# This may be replaced when dependencies are built.
