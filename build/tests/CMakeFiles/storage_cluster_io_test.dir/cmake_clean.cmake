file(REMOVE_RECURSE
  "CMakeFiles/storage_cluster_io_test.dir/storage_cluster_io_test.cc.o"
  "CMakeFiles/storage_cluster_io_test.dir/storage_cluster_io_test.cc.o.d"
  "storage_cluster_io_test"
  "storage_cluster_io_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_cluster_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
