# Empty compiler generated dependencies file for core_similarity_test.
# This may be replaced when dependencies are built.
