file(REMOVE_RECURSE
  "CMakeFiles/core_forest_test.dir/core_forest_test.cc.o"
  "CMakeFiles/core_forest_test.dir/core_forest_test.cc.o.d"
  "core_forest_test"
  "core_forest_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_forest_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
