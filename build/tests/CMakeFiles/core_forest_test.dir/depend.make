# Empty dependencies file for core_forest_test.
# This may be replaced when dependencies are built.
