# Empty dependencies file for core_query_partition_test.
# This may be replaced when dependencies are built.
