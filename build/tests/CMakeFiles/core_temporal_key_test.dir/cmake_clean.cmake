file(REMOVE_RECURSE
  "CMakeFiles/core_temporal_key_test.dir/core_temporal_key_test.cc.o"
  "CMakeFiles/core_temporal_key_test.dir/core_temporal_key_test.cc.o.d"
  "core_temporal_key_test"
  "core_temporal_key_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_temporal_key_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
