# Empty dependencies file for core_temporal_key_test.
# This may be replaced when dependencies are built.
