file(REMOVE_RECURSE
  "CMakeFiles/cps_types_test.dir/cps_types_test.cc.o"
  "CMakeFiles/cps_types_test.dir/cps_types_test.cc.o.d"
  "cps_types_test"
  "cps_types_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cps_types_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
