# Empty dependencies file for cps_types_test.
# This may be replaced when dependencies are built.
