# Empty dependencies file for ext_corroboration_test.
# This may be replaced when dependencies are built.
