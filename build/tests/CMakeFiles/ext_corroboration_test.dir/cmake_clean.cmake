file(REMOVE_RECURSE
  "CMakeFiles/ext_corroboration_test.dir/ext_corroboration_test.cc.o"
  "CMakeFiles/ext_corroboration_test.dir/ext_corroboration_test.cc.o.d"
  "ext_corroboration_test"
  "ext_corroboration_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_corroboration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
