# Empty dependencies file for ext_prediction_test.
# This may be replaced when dependencies are built.
