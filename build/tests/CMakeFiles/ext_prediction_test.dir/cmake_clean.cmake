file(REMOVE_RECURSE
  "CMakeFiles/ext_prediction_test.dir/ext_prediction_test.cc.o"
  "CMakeFiles/ext_prediction_test.dir/ext_prediction_test.cc.o.d"
  "ext_prediction_test"
  "ext_prediction_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_prediction_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
