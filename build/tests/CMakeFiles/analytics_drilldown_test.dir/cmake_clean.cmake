file(REMOVE_RECURSE
  "CMakeFiles/analytics_drilldown_test.dir/analytics_drilldown_test.cc.o"
  "CMakeFiles/analytics_drilldown_test.dir/analytics_drilldown_test.cc.o.d"
  "analytics_drilldown_test"
  "analytics_drilldown_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analytics_drilldown_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
