# Empty compiler generated dependencies file for analytics_drilldown_test.
# This may be replaced when dependencies are built.
