# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for gen_traffic_gen_test.
