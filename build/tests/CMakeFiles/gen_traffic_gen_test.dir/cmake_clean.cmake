file(REMOVE_RECURSE
  "CMakeFiles/gen_traffic_gen_test.dir/gen_traffic_gen_test.cc.o"
  "CMakeFiles/gen_traffic_gen_test.dir/gen_traffic_gen_test.cc.o.d"
  "gen_traffic_gen_test"
  "gen_traffic_gen_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gen_traffic_gen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
