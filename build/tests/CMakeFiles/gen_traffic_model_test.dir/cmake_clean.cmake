file(REMOVE_RECURSE
  "CMakeFiles/gen_traffic_model_test.dir/gen_traffic_model_test.cc.o"
  "CMakeFiles/gen_traffic_model_test.dir/gen_traffic_model_test.cc.o.d"
  "gen_traffic_model_test"
  "gen_traffic_model_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gen_traffic_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
