file(REMOVE_RECURSE
  "CMakeFiles/core_query_test.dir/core_query_test.cc.o"
  "CMakeFiles/core_query_test.dir/core_query_test.cc.o.d"
  "core_query_test"
  "core_query_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_query_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
