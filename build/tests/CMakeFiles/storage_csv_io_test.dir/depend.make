# Empty dependencies file for storage_csv_io_test.
# This may be replaced when dependencies are built.
