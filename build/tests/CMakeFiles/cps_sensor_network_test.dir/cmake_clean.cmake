file(REMOVE_RECURSE
  "CMakeFiles/cps_sensor_network_test.dir/cps_sensor_network_test.cc.o"
  "CMakeFiles/cps_sensor_network_test.dir/cps_sensor_network_test.cc.o.d"
  "cps_sensor_network_test"
  "cps_sensor_network_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cps_sensor_network_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
