file(REMOVE_RECURSE
  "CMakeFiles/gen_workload_test.dir/gen_workload_test.cc.o"
  "CMakeFiles/gen_workload_test.dir/gen_workload_test.cc.o.d"
  "gen_workload_test"
  "gen_workload_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gen_workload_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
