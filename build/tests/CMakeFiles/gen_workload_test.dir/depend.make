# Empty dependencies file for gen_workload_test.
# This may be replaced when dependencies are built.
