# Empty dependencies file for cube_red_zone_test.
# This may be replaced when dependencies are built.
