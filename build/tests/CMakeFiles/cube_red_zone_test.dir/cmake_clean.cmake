file(REMOVE_RECURSE
  "CMakeFiles/cube_red_zone_test.dir/cube_red_zone_test.cc.o"
  "CMakeFiles/cube_red_zone_test.dir/cube_red_zone_test.cc.o.d"
  "cube_red_zone_test"
  "cube_red_zone_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cube_red_zone_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
