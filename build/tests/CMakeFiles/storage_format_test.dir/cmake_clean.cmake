file(REMOVE_RECURSE
  "CMakeFiles/storage_format_test.dir/storage_format_test.cc.o"
  "CMakeFiles/storage_format_test.dir/storage_format_test.cc.o.d"
  "storage_format_test"
  "storage_format_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_format_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
