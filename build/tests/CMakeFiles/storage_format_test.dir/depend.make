# Empty dependencies file for storage_format_test.
# This may be replaced when dependencies are built.
