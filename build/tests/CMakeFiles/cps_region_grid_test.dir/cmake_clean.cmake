file(REMOVE_RECURSE
  "CMakeFiles/cps_region_grid_test.dir/cps_region_grid_test.cc.o"
  "CMakeFiles/cps_region_grid_test.dir/cps_region_grid_test.cc.o.d"
  "cps_region_grid_test"
  "cps_region_grid_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cps_region_grid_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
