# Empty compiler generated dependencies file for cps_region_grid_test.
# This may be replaced when dependencies are built.
