file(REMOVE_RECURSE
  "CMakeFiles/analytics_metrics_test.dir/analytics_metrics_test.cc.o"
  "CMakeFiles/analytics_metrics_test.dir/analytics_metrics_test.cc.o.d"
  "analytics_metrics_test"
  "analytics_metrics_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analytics_metrics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
