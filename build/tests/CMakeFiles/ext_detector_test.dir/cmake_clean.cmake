file(REMOVE_RECURSE
  "CMakeFiles/ext_detector_test.dir/ext_detector_test.cc.o"
  "CMakeFiles/ext_detector_test.dir/ext_detector_test.cc.o.d"
  "ext_detector_test"
  "ext_detector_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_detector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
