# Empty compiler generated dependencies file for ext_detector_test.
# This may be replaced when dependencies are built.
