# Empty compiler generated dependencies file for core_significance_test.
# This may be replaced when dependencies are built.
