file(REMOVE_RECURSE
  "CMakeFiles/core_significance_test.dir/core_significance_test.cc.o"
  "CMakeFiles/core_significance_test.dir/core_significance_test.cc.o.d"
  "core_significance_test"
  "core_significance_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_significance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
