file(REMOVE_RECURSE
  "CMakeFiles/analytics_report_test.dir/analytics_report_test.cc.o"
  "CMakeFiles/analytics_report_test.dir/analytics_report_test.cc.o.d"
  "analytics_report_test"
  "analytics_report_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analytics_report_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
