# Empty dependencies file for analytics_report_test.
# This may be replaced when dependencies are built.
