file(REMOVE_RECURSE
  "CMakeFiles/gen_congestion_test.dir/gen_congestion_test.cc.o"
  "CMakeFiles/gen_congestion_test.dir/gen_congestion_test.cc.o.d"
  "gen_congestion_test"
  "gen_congestion_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gen_congestion_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
