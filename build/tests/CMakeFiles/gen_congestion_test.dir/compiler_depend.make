# Empty compiler generated dependencies file for gen_congestion_test.
# This may be replaced when dependencies are built.
