file(REMOVE_RECURSE
  "CMakeFiles/storage_roundtrip_test.dir/storage_roundtrip_test.cc.o"
  "CMakeFiles/storage_roundtrip_test.dir/storage_roundtrip_test.cc.o.d"
  "storage_roundtrip_test"
  "storage_roundtrip_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_roundtrip_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
