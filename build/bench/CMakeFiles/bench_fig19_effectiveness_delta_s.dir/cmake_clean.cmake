file(REMOVE_RECURSE
  "CMakeFiles/bench_fig19_effectiveness_delta_s.dir/bench_fig19_effectiveness_delta_s.cc.o"
  "CMakeFiles/bench_fig19_effectiveness_delta_s.dir/bench_fig19_effectiveness_delta_s.cc.o.d"
  "bench_fig19_effectiveness_delta_s"
  "bench_fig19_effectiveness_delta_s.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig19_effectiveness_delta_s.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
