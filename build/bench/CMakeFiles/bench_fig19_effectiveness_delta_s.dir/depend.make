# Empty dependencies file for bench_fig19_effectiveness_delta_s.
# This may be replaced when dependencies are built.
