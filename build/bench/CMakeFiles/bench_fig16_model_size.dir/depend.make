# Empty dependencies file for bench_fig16_model_size.
# This may be replaced when dependencies are built.
