# Empty compiler generated dependencies file for bench_fig15_construction_time.
# This may be replaced when dependencies are built.
