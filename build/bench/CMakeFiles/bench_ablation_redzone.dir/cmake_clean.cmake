file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_redzone.dir/bench_ablation_redzone.cc.o"
  "CMakeFiles/bench_ablation_redzone.dir/bench_ablation_redzone.cc.o.d"
  "bench_ablation_redzone"
  "bench_ablation_redzone.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_redzone.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
