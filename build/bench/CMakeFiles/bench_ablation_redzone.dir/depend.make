# Empty dependencies file for bench_ablation_redzone.
# This may be replaced when dependencies are built.
