# Empty dependencies file for bench_fig20_cluster_counts.
# This may be replaced when dependencies are built.
