file(REMOVE_RECURSE
  "CMakeFiles/bench_fig20_cluster_counts.dir/bench_fig20_cluster_counts.cc.o"
  "CMakeFiles/bench_fig20_cluster_counts.dir/bench_fig20_cluster_counts.cc.o.d"
  "bench_fig20_cluster_counts"
  "bench_fig20_cluster_counts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig20_cluster_counts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
