# Empty dependencies file for bench_fig17_query_cost.
# This may be replaced when dependencies are built.
