file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_metric.dir/bench_ablation_metric.cc.o"
  "CMakeFiles/bench_ablation_metric.dir/bench_ablation_metric.cc.o.d"
  "bench_ablation_metric"
  "bench_ablation_metric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_metric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
