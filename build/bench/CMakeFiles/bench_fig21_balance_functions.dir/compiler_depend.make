# Empty compiler generated dependencies file for bench_fig21_balance_functions.
# This may be replaced when dependencies are built.
