file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_temporal_key.dir/bench_ablation_temporal_key.cc.o"
  "CMakeFiles/bench_ablation_temporal_key.dir/bench_ablation_temporal_key.cc.o.d"
  "bench_ablation_temporal_key"
  "bench_ablation_temporal_key.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_temporal_key.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
