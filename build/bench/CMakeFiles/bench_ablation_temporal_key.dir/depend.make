# Empty dependencies file for bench_ablation_temporal_key.
# This may be replaced when dependencies are built.
