# Empty dependencies file for bench_fig18_effectiveness_range.
# This may be replaced when dependencies are built.
