file(REMOVE_RECURSE
  "CMakeFiles/bench_fig18_effectiveness_range.dir/bench_fig18_effectiveness_range.cc.o"
  "CMakeFiles/bench_fig18_effectiveness_range.dir/bench_fig18_effectiveness_range.cc.o.d"
  "bench_fig18_effectiveness_range"
  "bench_fig18_effectiveness_range.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig18_effectiveness_range.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
