# Empty dependencies file for atypical_cli.
# This may be replaced when dependencies are built.
