file(REMOVE_RECURSE
  "CMakeFiles/atypical_cli.dir/atypical_cli.cc.o"
  "CMakeFiles/atypical_cli.dir/atypical_cli.cc.o.d"
  "atypical_cli"
  "atypical_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atypical_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
