# Empty dependencies file for battlefield_surveillance.
# This may be replaced when dependencies are built.
