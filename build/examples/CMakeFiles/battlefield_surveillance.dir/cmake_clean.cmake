file(REMOVE_RECURSE
  "CMakeFiles/battlefield_surveillance.dir/battlefield_surveillance.cc.o"
  "CMakeFiles/battlefield_surveillance.dir/battlefield_surveillance.cc.o.d"
  "battlefield_surveillance"
  "battlefield_surveillance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/battlefield_surveillance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
