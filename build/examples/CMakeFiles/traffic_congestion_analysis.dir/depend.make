# Empty dependencies file for traffic_congestion_analysis.
# This may be replaced when dependencies are built.
