file(REMOVE_RECURSE
  "CMakeFiles/traffic_congestion_analysis.dir/traffic_congestion_analysis.cc.o"
  "CMakeFiles/traffic_congestion_analysis.dir/traffic_congestion_analysis.cc.o.d"
  "traffic_congestion_analysis"
  "traffic_congestion_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traffic_congestion_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
