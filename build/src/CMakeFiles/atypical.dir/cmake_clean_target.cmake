file(REMOVE_RECURSE
  "libatypical.a"
)
