# Empty compiler generated dependencies file for atypical.
# This may be replaced when dependencies are built.
