
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analytics/drilldown.cc" "src/CMakeFiles/atypical.dir/analytics/drilldown.cc.o" "gcc" "src/CMakeFiles/atypical.dir/analytics/drilldown.cc.o.d"
  "/root/repo/src/analytics/ground_truth.cc" "src/CMakeFiles/atypical.dir/analytics/ground_truth.cc.o" "gcc" "src/CMakeFiles/atypical.dir/analytics/ground_truth.cc.o.d"
  "/root/repo/src/analytics/metrics.cc" "src/CMakeFiles/atypical.dir/analytics/metrics.cc.o" "gcc" "src/CMakeFiles/atypical.dir/analytics/metrics.cc.o.d"
  "/root/repo/src/analytics/report.cc" "src/CMakeFiles/atypical.dir/analytics/report.cc.o" "gcc" "src/CMakeFiles/atypical.dir/analytics/report.cc.o.d"
  "/root/repo/src/core/cluster.cc" "src/CMakeFiles/atypical.dir/core/cluster.cc.o" "gcc" "src/CMakeFiles/atypical.dir/core/cluster.cc.o.d"
  "/root/repo/src/core/event_retrieval.cc" "src/CMakeFiles/atypical.dir/core/event_retrieval.cc.o" "gcc" "src/CMakeFiles/atypical.dir/core/event_retrieval.cc.o.d"
  "/root/repo/src/core/forest.cc" "src/CMakeFiles/atypical.dir/core/forest.cc.o" "gcc" "src/CMakeFiles/atypical.dir/core/forest.cc.o.d"
  "/root/repo/src/core/integration.cc" "src/CMakeFiles/atypical.dir/core/integration.cc.o" "gcc" "src/CMakeFiles/atypical.dir/core/integration.cc.o.d"
  "/root/repo/src/core/merge.cc" "src/CMakeFiles/atypical.dir/core/merge.cc.o" "gcc" "src/CMakeFiles/atypical.dir/core/merge.cc.o.d"
  "/root/repo/src/core/query.cc" "src/CMakeFiles/atypical.dir/core/query.cc.o" "gcc" "src/CMakeFiles/atypical.dir/core/query.cc.o.d"
  "/root/repo/src/core/significance.cc" "src/CMakeFiles/atypical.dir/core/significance.cc.o" "gcc" "src/CMakeFiles/atypical.dir/core/significance.cc.o.d"
  "/root/repo/src/core/similarity.cc" "src/CMakeFiles/atypical.dir/core/similarity.cc.o" "gcc" "src/CMakeFiles/atypical.dir/core/similarity.cc.o.d"
  "/root/repo/src/core/streaming.cc" "src/CMakeFiles/atypical.dir/core/streaming.cc.o" "gcc" "src/CMakeFiles/atypical.dir/core/streaming.cc.o.d"
  "/root/repo/src/core/temporal_key.cc" "src/CMakeFiles/atypical.dir/core/temporal_key.cc.o" "gcc" "src/CMakeFiles/atypical.dir/core/temporal_key.cc.o.d"
  "/root/repo/src/cps/dataset.cc" "src/CMakeFiles/atypical.dir/cps/dataset.cc.o" "gcc" "src/CMakeFiles/atypical.dir/cps/dataset.cc.o.d"
  "/root/repo/src/cps/region_grid.cc" "src/CMakeFiles/atypical.dir/cps/region_grid.cc.o" "gcc" "src/CMakeFiles/atypical.dir/cps/region_grid.cc.o.d"
  "/root/repo/src/cps/road_network.cc" "src/CMakeFiles/atypical.dir/cps/road_network.cc.o" "gcc" "src/CMakeFiles/atypical.dir/cps/road_network.cc.o.d"
  "/root/repo/src/cps/sensor_network.cc" "src/CMakeFiles/atypical.dir/cps/sensor_network.cc.o" "gcc" "src/CMakeFiles/atypical.dir/cps/sensor_network.cc.o.d"
  "/root/repo/src/cube/cube.cc" "src/CMakeFiles/atypical.dir/cube/cube.cc.o" "gcc" "src/CMakeFiles/atypical.dir/cube/cube.cc.o.d"
  "/root/repo/src/cube/hierarchy.cc" "src/CMakeFiles/atypical.dir/cube/hierarchy.cc.o" "gcc" "src/CMakeFiles/atypical.dir/cube/hierarchy.cc.o.d"
  "/root/repo/src/cube/red_zone.cc" "src/CMakeFiles/atypical.dir/cube/red_zone.cc.o" "gcc" "src/CMakeFiles/atypical.dir/cube/red_zone.cc.o.d"
  "/root/repo/src/ext/corroboration_filter.cc" "src/CMakeFiles/atypical.dir/ext/corroboration_filter.cc.o" "gcc" "src/CMakeFiles/atypical.dir/ext/corroboration_filter.cc.o.d"
  "/root/repo/src/ext/detector.cc" "src/CMakeFiles/atypical.dir/ext/detector.cc.o" "gcc" "src/CMakeFiles/atypical.dir/ext/detector.cc.o.d"
  "/root/repo/src/ext/prediction.cc" "src/CMakeFiles/atypical.dir/ext/prediction.cc.o" "gcc" "src/CMakeFiles/atypical.dir/ext/prediction.cc.o.d"
  "/root/repo/src/gen/congestion_process.cc" "src/CMakeFiles/atypical.dir/gen/congestion_process.cc.o" "gcc" "src/CMakeFiles/atypical.dir/gen/congestion_process.cc.o.d"
  "/root/repo/src/gen/traffic_gen.cc" "src/CMakeFiles/atypical.dir/gen/traffic_gen.cc.o" "gcc" "src/CMakeFiles/atypical.dir/gen/traffic_gen.cc.o.d"
  "/root/repo/src/gen/traffic_model.cc" "src/CMakeFiles/atypical.dir/gen/traffic_model.cc.o" "gcc" "src/CMakeFiles/atypical.dir/gen/traffic_model.cc.o.d"
  "/root/repo/src/gen/workload.cc" "src/CMakeFiles/atypical.dir/gen/workload.cc.o" "gcc" "src/CMakeFiles/atypical.dir/gen/workload.cc.o.d"
  "/root/repo/src/index/grid_index.cc" "src/CMakeFiles/atypical.dir/index/grid_index.cc.o" "gcc" "src/CMakeFiles/atypical.dir/index/grid_index.cc.o.d"
  "/root/repo/src/index/rtree.cc" "src/CMakeFiles/atypical.dir/index/rtree.cc.o" "gcc" "src/CMakeFiles/atypical.dir/index/rtree.cc.o.d"
  "/root/repo/src/storage/cluster_io.cc" "src/CMakeFiles/atypical.dir/storage/cluster_io.cc.o" "gcc" "src/CMakeFiles/atypical.dir/storage/cluster_io.cc.o.d"
  "/root/repo/src/storage/csv_io.cc" "src/CMakeFiles/atypical.dir/storage/csv_io.cc.o" "gcc" "src/CMakeFiles/atypical.dir/storage/csv_io.cc.o.d"
  "/root/repo/src/storage/reader.cc" "src/CMakeFiles/atypical.dir/storage/reader.cc.o" "gcc" "src/CMakeFiles/atypical.dir/storage/reader.cc.o.d"
  "/root/repo/src/storage/writer.cc" "src/CMakeFiles/atypical.dir/storage/writer.cc.o" "gcc" "src/CMakeFiles/atypical.dir/storage/writer.cc.o.d"
  "/root/repo/src/util/csv.cc" "src/CMakeFiles/atypical.dir/util/csv.cc.o" "gcc" "src/CMakeFiles/atypical.dir/util/csv.cc.o.d"
  "/root/repo/src/util/flags.cc" "src/CMakeFiles/atypical.dir/util/flags.cc.o" "gcc" "src/CMakeFiles/atypical.dir/util/flags.cc.o.d"
  "/root/repo/src/util/logging.cc" "src/CMakeFiles/atypical.dir/util/logging.cc.o" "gcc" "src/CMakeFiles/atypical.dir/util/logging.cc.o.d"
  "/root/repo/src/util/random.cc" "src/CMakeFiles/atypical.dir/util/random.cc.o" "gcc" "src/CMakeFiles/atypical.dir/util/random.cc.o.d"
  "/root/repo/src/util/string_util.cc" "src/CMakeFiles/atypical.dir/util/string_util.cc.o" "gcc" "src/CMakeFiles/atypical.dir/util/string_util.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
