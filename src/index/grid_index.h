// Spatio-temporal bucket index over atypical records.
//
// Algorithm 1 spends its time finding, for a seed record r, every record r'
// with distance(s, s') < δd and interval(t, t') < δt (Def. 1).  Bucketing
// records by (⌊x/δd⌋, ⌊y/δd⌋, ⌊minute/δt⌋) bounds that search to the 3×3×3
// neighborhood of the seed's bucket, which turns event retrieval from
// O(N + n²) into O(N + n·k) — the indexed complexity of Proposition 1.
#ifndef ATYPICAL_INDEX_GRID_INDEX_H_
#define ATYPICAL_INDEX_GRID_INDEX_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "cps/record.h"
#include "cps/sensor_network.h"
#include "cps/types.h"

namespace atypical {
namespace index {

// Immutable index over one batch of atypical records.  Records are referred
// to by their position in the batch passed at construction.
class GridIndex {
 public:
  // `records` must outlive the index.  `delta_d_miles` / `delta_t_minutes`
  // are the Def. 1 thresholds; they fix the bucket geometry.
  GridIndex(const std::vector<AtypicalRecord>& records,
            const SensorNetwork& network, const TimeGrid& grid,
            double delta_d_miles, int delta_t_minutes,
            DistanceMetric metric = DistanceMetric::kEuclidean);

  size_t num_records() const { return records_->size(); }

  // Appends the indices of all records directly atypical-related to record
  // `i` (excluding `i` itself) to `out`.
  void DirectlyRelated(size_t i, std::vector<size_t>* out) const;

  // Total buckets currently occupied (exposed for tests/benches).
  size_t num_buckets() const { return buckets_.size(); }

 private:
  struct CellKey {
    int32_t cx;
    int32_t cy;
    int32_t ct;
    friend bool operator==(const CellKey& a, const CellKey& b) {
      return a.cx == b.cx && a.cy == b.cy && a.ct == b.ct;
    }
  };
  struct CellKeyHash {
    size_t operator()(const CellKey& k) const {
      uint64_t h = static_cast<uint32_t>(k.cx);
      h = h * 0x9e3779b97f4a7c15ULL + static_cast<uint32_t>(k.cy);
      h = h * 0x9e3779b97f4a7c15ULL + static_cast<uint32_t>(k.ct);
      return static_cast<size_t>(h ^ (h >> 32));
    }
  };

  CellKey KeyOf(const AtypicalRecord& r) const;

  const std::vector<AtypicalRecord>* records_;
  const SensorNetwork* network_;
  TimeGrid grid_;
  double delta_d_;
  int64_t delta_t_;
  DistanceMetric metric_;
  std::unordered_map<CellKey, std::vector<uint32_t>, CellKeyHash> buckets_;
};

}  // namespace index
}  // namespace atypical

#endif  // ATYPICAL_INDEX_GRID_INDEX_H_
