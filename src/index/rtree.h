// STR-bulk-loaded R-tree over the sensor fleet.
//
// The paper's related work builds OLAP on R-tree rectangles (Papadias et
// al. [11,12]); this is the corresponding substrate here.  Sensors are
// packed into leaves with the Sort-Tile-Recursive algorithm, upper levels
// pack child MBRs the same way.  Two uses:
//   * spatial range queries over sensors (an alternative to the linear scan
//     in SensorNetwork::SensorsInRect);
//   * the leaf rectangles as a pre-defined partition (RTreeLeafPartition)
//     driving the cube and red-zone guidance — the "R-tree rectangles"
//     regionalization of §II.A.
#ifndef ATYPICAL_INDEX_RTREE_H_
#define ATYPICAL_INDEX_RTREE_H_

#include <string>
#include <vector>

#include "cps/sensor_network.h"
#include "cps/spatial_partition.h"
#include "cps/types.h"

namespace atypical {
namespace index {

class SensorRTree {
 public:
  // Bulk loads all sensors of `network`; each leaf holds up to
  // `leaf_capacity` sensors, inner nodes up to `fanout` children.
  SensorRTree(const SensorNetwork& network, int leaf_capacity = 16,
              int fanout = 8);

  // All sensors whose location falls inside `rect`.
  std::vector<SensorId> Query(const GeoRect& rect) const;

  int num_leaves() const { return num_leaves_; }
  int height() const { return height_; }

  // Leaf index (0..num_leaves) containing `sensor`.
  int LeafOfSensor(SensorId sensor) const;

  // MBR of the given leaf.
  GeoRect LeafRect(int leaf) const;

  // Sensors stored in the given leaf.
  const std::vector<SensorId>& LeafSensors(int leaf) const;

  // Leaves whose MBR overlaps `rect`.
  std::vector<int> LeavesInRect(const GeoRect& rect) const;

 private:
  struct Node {
    GeoRect mbr;
    bool leaf = false;
    // Leaf: index into leaf_sensors_.  Inner: children node indices.
    int leaf_index = -1;
    std::vector<int> children;
  };

  static bool Overlaps(const GeoRect& a, const GeoRect& b) {
    return a.min_x <= b.max_x && b.min_x <= a.max_x && a.min_y <= b.max_y &&
           b.min_y <= a.max_y;
  }

  void Collect(int node, const GeoRect& rect,
               std::vector<SensorId>* out) const;
  void CollectLeaves(int node, const GeoRect& rect,
                     std::vector<int>* out) const;

  const SensorNetwork* network_;
  std::vector<Node> nodes_;
  int root_ = -1;
  int num_leaves_ = 0;
  int height_ = 0;
  std::vector<std::vector<SensorId>> leaf_sensors_;
  std::vector<int> leaf_of_sensor_;
};

// The R-tree leaves as a pre-defined spatial partition (regions = leaf
// MBRs).  Unlike the uniform grid, region granularity adapts to sensor
// density.
class RTreeLeafPartition : public SpatialPartition {
 public:
  RTreeLeafPartition(const SensorNetwork& network, int leaf_capacity = 16);

  int num_regions() const override { return tree_.num_leaves(); }
  RegionId RegionOfSensor(SensorId sensor) const override;
  const std::vector<SensorId>& SensorsInRegion(RegionId region) const override;
  std::vector<RegionId> RegionsInRect(const GeoRect& rect) const override;
  std::string Name() const override;

  const SensorRTree& tree() const { return tree_; }

 private:
  SensorRTree tree_;
  int leaf_capacity_;
};

}  // namespace index
}  // namespace atypical

#endif  // ATYPICAL_INDEX_RTREE_H_
