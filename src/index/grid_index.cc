#include "index/grid_index.h"

#include <cmath>

#include "util/hash_perturb.h"
#include "util/logging.h"

namespace atypical {
namespace index {

GridIndex::GridIndex(const std::vector<AtypicalRecord>& records,
                     const SensorNetwork& network, const TimeGrid& grid,
                     double delta_d_miles, int delta_t_minutes,
                     DistanceMetric metric)
    : records_(&records),
      network_(&network),
      grid_(grid),
      delta_d_(delta_d_miles),
      delta_t_(delta_t_minutes),
      metric_(metric) {
  CHECK_GT(delta_d_miles, 0.0);
  CHECK_GT(delta_t_minutes, 0);
  PerturbedReserve(buckets_, records.size() / 4 + 16);
  for (size_t i = 0; i < records.size(); ++i) {
    buckets_[KeyOf(records[i])].push_back(static_cast<uint32_t>(i));
  }
}

GridIndex::CellKey GridIndex::KeyOf(const AtypicalRecord& r) const {
  // A time bucket of (δt + window length) minutes guarantees that any two
  // windows with gap < δt (i.e. start distance < δt + window length) land in
  // the same or adjacent buckets, so the 3×3×3 neighborhood scan is exact.
  const int64_t bucket_minutes = delta_t_ + grid_.window_minutes();
  const GeoPoint& loc = network_->location(r.sensor);
  return CellKey{
      static_cast<int32_t>(std::floor(loc.x / delta_d_)),
      static_cast<int32_t>(std::floor(loc.y / delta_d_)),
      static_cast<int32_t>(grid_.StartMinute(r.window) / bucket_minutes)};
}

void GridIndex::DirectlyRelated(size_t i, std::vector<size_t>* out) const {
  const AtypicalRecord& seed = (*records_)[i];
  const CellKey center = KeyOf(seed);
  for (int32_t dx = -1; dx <= 1; ++dx) {
    for (int32_t dy = -1; dy <= 1; ++dy) {
      for (int32_t dt = -1; dt <= 1; ++dt) {
        const CellKey key{center.cx + dx, center.cy + dy, center.ct + dt};
        const auto it = buckets_.find(key);
        if (it == buckets_.end()) continue;
        for (uint32_t j : it->second) {
          if (j == i) continue;
          const AtypicalRecord& other = (*records_)[j];
          if (grid_.IntervalMinutes(seed.window, other.window) >= delta_t_) {
            continue;
          }
          // Bucketing uses Euclidean geometry, which lower-bounds the road
          // metric, so the 3x3x3 neighborhood stays exhaustive either way.
          if (network_->Distance(seed.sensor, other.sensor, metric_) >=
              delta_d_) {
            continue;
          }
          out->push_back(j);
        }
      }
    }
  }
}

}  // namespace index
}  // namespace atypical
