#include "index/rtree.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/string_util.h"

namespace atypical {
namespace index {

namespace {

GeoRect MbrOfPoints(const SensorNetwork& network,
                    const std::vector<SensorId>& sensors) {
  CHECK(!sensors.empty());
  GeoRect mbr{1e18, 1e18, -1e18, -1e18};
  for (SensorId s : sensors) {
    const GeoPoint& p = network.location(s);
    mbr.min_x = std::min(mbr.min_x, p.x);
    mbr.min_y = std::min(mbr.min_y, p.y);
    mbr.max_x = std::max(mbr.max_x, p.x);
    mbr.max_y = std::max(mbr.max_y, p.y);
  }
  return mbr;
}

GeoRect Union(const GeoRect& a, const GeoRect& b) {
  return GeoRect{std::min(a.min_x, b.min_x), std::min(a.min_y, b.min_y),
                 std::max(a.max_x, b.max_x), std::max(a.max_y, b.max_y)};
}

}  // namespace

SensorRTree::SensorRTree(const SensorNetwork& network, int leaf_capacity,
                         int fanout)
    : network_(&network) {
  CHECK_GT(leaf_capacity, 0);
  CHECK_GT(fanout, 1);
  const int n = network.num_sensors();
  CHECK_GT(n, 0);

  // --- STR leaf packing ---
  std::vector<SensorId> ids(n);
  for (int i = 0; i < n; ++i) ids[i] = static_cast<SensorId>(i);
  std::sort(ids.begin(), ids.end(), [&](SensorId a, SensorId b) {
    return network.location(a).x < network.location(b).x;
  });
  const int num_leaves =
      static_cast<int>(std::ceil(static_cast<double>(n) / leaf_capacity));
  const int slices =
      std::max(1, static_cast<int>(std::ceil(std::sqrt(num_leaves))));
  const int per_slice =
      static_cast<int>(std::ceil(static_cast<double>(n) / slices));

  leaf_of_sensor_.assign(n, -1);
  for (int s = 0; s < slices; ++s) {
    const int begin = s * per_slice;
    const int end = std::min(n, begin + per_slice);
    if (begin >= end) break;
    std::sort(ids.begin() + begin, ids.begin() + end,
              [&](SensorId a, SensorId b) {
                return network.location(a).y < network.location(b).y;
              });
    for (int pos = begin; pos < end; pos += leaf_capacity) {
      const int leaf = static_cast<int>(leaf_sensors_.size());
      std::vector<SensorId> members(
          ids.begin() + pos,
          ids.begin() + std::min(end, pos + leaf_capacity));
      for (SensorId member : members) leaf_of_sensor_[member] = leaf;
      Node node;
      node.leaf = true;
      node.leaf_index = leaf;
      node.mbr = MbrOfPoints(network, members);
      leaf_sensors_.push_back(std::move(members));
      nodes_.push_back(std::move(node));
    }
  }
  num_leaves_ = static_cast<int>(leaf_sensors_.size());

  // --- pack upper levels until a single root remains ---
  std::vector<int> level(nodes_.size());
  for (size_t i = 0; i < nodes_.size(); ++i) level[i] = static_cast<int>(i);
  height_ = 1;
  while (level.size() > 1) {
    // Order this level's nodes by MBR center, x-major then y (one STR pass).
    std::sort(level.begin(), level.end(), [&](int a, int b) {
      const double ax = nodes_[a].mbr.min_x + nodes_[a].mbr.max_x;
      const double bx = nodes_[b].mbr.min_x + nodes_[b].mbr.max_x;
      if (ax != bx) return ax < bx;
      return nodes_[a].mbr.min_y + nodes_[a].mbr.max_y <
             nodes_[b].mbr.min_y + nodes_[b].mbr.max_y;
    });
    std::vector<int> parents;
    for (size_t pos = 0; pos < level.size();
         pos += static_cast<size_t>(fanout)) {
      Node parent;
      parent.leaf = false;
      parent.children.assign(
          level.begin() + pos,
          level.begin() + std::min(level.size(),
                                   pos + static_cast<size_t>(fanout)));
      parent.mbr = nodes_[parent.children[0]].mbr;
      for (int child : parent.children) {
        parent.mbr = Union(parent.mbr, nodes_[child].mbr);
      }
      parents.push_back(static_cast<int>(nodes_.size()));
      nodes_.push_back(std::move(parent));
    }
    level = std::move(parents);
    ++height_;
  }
  root_ = level[0];
}

void SensorRTree::Collect(int node_index, const GeoRect& rect,
                          std::vector<SensorId>* out) const {
  const Node& node = nodes_[node_index];
  if (!Overlaps(node.mbr, rect)) return;
  if (node.leaf) {
    for (SensorId s : leaf_sensors_[node.leaf_index]) {
      if (rect.Contains(network_->location(s))) out->push_back(s);
    }
    return;
  }
  for (int child : node.children) Collect(child, rect, out);
}

std::vector<SensorId> SensorRTree::Query(const GeoRect& rect) const {
  std::vector<SensorId> out;
  Collect(root_, rect, &out);
  std::sort(out.begin(), out.end());
  return out;
}

int SensorRTree::LeafOfSensor(SensorId sensor) const {
  CHECK_LT(static_cast<size_t>(sensor), leaf_of_sensor_.size());
  return leaf_of_sensor_[sensor];
}

GeoRect SensorRTree::LeafRect(int leaf) const {
  CHECK_GE(leaf, 0);
  CHECK_LT(leaf, num_leaves_);
  // Leaves occupy the first num_leaves_ node slots in construction order.
  CHECK_EQ(nodes_[leaf].leaf_index, leaf);
  return nodes_[leaf].mbr;
}

const std::vector<SensorId>& SensorRTree::LeafSensors(int leaf) const {
  CHECK_GE(leaf, 0);
  CHECK_LT(leaf, num_leaves_);
  return leaf_sensors_[leaf];
}

void SensorRTree::CollectLeaves(int node_index, const GeoRect& rect,
                                std::vector<int>* out) const {
  const Node& node = nodes_[node_index];
  if (!Overlaps(node.mbr, rect)) return;
  if (node.leaf) {
    out->push_back(node.leaf_index);
    return;
  }
  for (int child : node.children) CollectLeaves(child, rect, out);
}

std::vector<int> SensorRTree::LeavesInRect(const GeoRect& rect) const {
  std::vector<int> out;
  CollectLeaves(root_, rect, &out);
  std::sort(out.begin(), out.end());
  return out;
}

RTreeLeafPartition::RTreeLeafPartition(const SensorNetwork& network,
                                       int leaf_capacity)
    : tree_(network, leaf_capacity), leaf_capacity_(leaf_capacity) {}

RegionId RTreeLeafPartition::RegionOfSensor(SensorId sensor) const {
  return static_cast<RegionId>(tree_.LeafOfSensor(sensor));
}

const std::vector<SensorId>& RTreeLeafPartition::SensorsInRegion(
    RegionId region) const {
  return tree_.LeafSensors(static_cast<int>(region));
}

std::vector<RegionId> RTreeLeafPartition::RegionsInRect(
    const GeoRect& rect) const {
  std::vector<RegionId> out;
  for (int leaf : tree_.LeavesInRect(rect)) {
    out.push_back(static_cast<RegionId>(leaf));
  }
  return out;
}

std::string RTreeLeafPartition::Name() const {
  return StrPrintf("rtree-leaves-%d", leaf_capacity_);
}

}  // namespace index
}  // namespace atypical
