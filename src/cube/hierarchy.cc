#include "cube/hierarchy.h"

namespace atypical {
namespace cube {

const char* CubeLevelName(CubeLevel level) {
  switch (level) {
    case CubeLevel::kRegionHour:
      return "region_hour";
    case CubeLevel::kSensorDay:
      return "sensor_day";
    case CubeLevel::kRegionDay:
      return "region_day";
    case CubeLevel::kRegionWeek:
      return "region_week";
  }
  return "unknown";
}

}  // namespace cube
}  // namespace atypical
