// Red-zone computation and micro-cluster filtering (Algorithm 4, lines 1–3).
//
// Property 5: for a region W' ⊆ W, if F(W', T) < δs·length(T)·N then no
// significant macro-cluster lies (entirely) within W'.  Regions at or above
// the threshold are "red zones"; micro-clusters that touch no red zone are
// pruned before integration.
//
// The guarantee degrades when an event's footprint is split across many
// regions that are each individually below the threshold — the trade-off
// the region-granularity ablation quantifies.
#ifndef ATYPICAL_CUBE_RED_ZONE_H_
#define ATYPICAL_CUBE_RED_ZONE_H_

#include <vector>

#include "core/cluster.h"
#include "cps/spatial_partition.h"
#include "cube/cube.h"
#include "util/hot_path.h"

namespace atypical {
namespace cube {

// Regions among `regions_in_w` whose total severity over `days` reaches
// `threshold` (= δs·length(T)·N computed by the caller).
ATYPICAL_HOT std::vector<RegionId> ComputeRedZones(
    const BottomUpCube& atypical_cube,
    const std::vector<RegionId>& regions_in_w, const DayRange& days,
    double threshold);

enum class RedZoneFilterMode : uint8_t {
  // Keep a cluster if any of its sensors lies in a red zone (Example 7:
  // clusters intersecting the zones may contribute to significant
  // macro-clusters and must be kept).  Default.
  kKeepIntersecting,
  // Keep a cluster only if all of its sensors lie in red zones.  More
  // aggressive pruning; loses the no-false-negative property.  Exposed for
  // the ablation bench.
  kKeepContained,
};

// Returns the subset of `clusters` surviving the red-zone filter, preserving
// order.  Clusters pass whole — features are never trimmed, so survivors'
// severities stay exact.
ATYPICAL_HOT std::vector<AtypicalCluster> FilterByRedZones(
    std::vector<AtypicalCluster> clusters,
    const std::vector<RegionId>& red_zones, const SpatialPartition& regions,
    RedZoneFilterMode mode = RedZoneFilterMode::kKeepIntersecting);

}  // namespace cube
}  // namespace atypical

#endif  // ATYPICAL_CUBE_RED_ZONE_H_
