// Pre-defined aggregation hierarchies for bottom-up aggregation (§II.A).
//
// Temporal: window → hour → day → week → month.  Spatial: sensor → region
// (the RegionGrid stands in for zipcode areas) → whole area.  The CubeView
// baseline accumulates measures along these hierarchies only; that rigidity
// — events do not follow pre-defined boundaries — is exactly what the
// atypical-cluster model fixes.
#ifndef ATYPICAL_CUBE_HIERARCHY_H_
#define ATYPICAL_CUBE_HIERARCHY_H_

#include "cps/types.h"

namespace atypical {
namespace cube {

// Absolute hour index since epoch.
inline int64_t HourOfWindow(WindowId w, const TimeGrid& grid) {
  return grid.StartMinute(w) / 60;
}

inline int DayOfWindow(WindowId w, const TimeGrid& grid) {
  return grid.DayOfWindow(w);
}

// Week index (day 0 starts week 0; 7-day weeks).
inline int WeekOfDay(int day) { return day >= 0 ? day / 7 : (day - 6) / 7; }

// Month index under fixed-length synthetic months.
inline int MonthOfDay(int day, int days_per_month) {
  return day / days_per_month;
}

// Materialized granularities of the bottom-up cube.  The base granularity
// is (region, hour): CubeView-style aggregation accumulates measures on the
// pre-defined spatial partition (zipcode areas / regions), not on individual
// sensors; the sensor-day level exists for drill-down.
enum class CubeLevel : uint8_t {
  kRegionHour = 0,
  kSensorDay = 1,
  kRegionDay = 2,
  kRegionWeek = 3,
};
inline constexpr int kNumCubeLevels = 4;

const char* CubeLevelName(CubeLevel level);

}  // namespace cube
}  // namespace atypical

#endif  // ATYPICAL_CUBE_HIERARCHY_H_
