#include "cube/red_zone.h"

#include <algorithm>

#include "util/logging.h"

namespace atypical {
namespace cube {

std::vector<RegionId> ComputeRedZones(const BottomUpCube& atypical_cube,
                                      const std::vector<RegionId>& regions_in_w,
                                      const DayRange& days, double threshold) {
  std::vector<RegionId> red;
  for (RegionId region : regions_in_w) {
    double f = 0.0;
    for (int day = days.first_day; day <= days.last_day; ++day) {
      f += atypical_cube.RegionDaySeverity(region, day);
      if (f >= threshold) break;  // already qualifies
    }
    if (f >= threshold) red.push_back(region);
  }
  // Sorted output: FilterByRedZones tests membership by binary search, which
  // keeps the per-query filter free of hash-set construction (AL015).
  std::sort(red.begin(), red.end());
  return red;
}

std::vector<AtypicalCluster> FilterByRedZones(
    std::vector<AtypicalCluster> clusters,
    const std::vector<RegionId>& red_zones, const SpatialPartition& regions,
    RedZoneFilterMode mode) {
  DCHECK(std::is_sorted(red_zones.begin(), red_zones.end()));
  std::erase_if(clusters, [&](const AtypicalCluster& cluster) {
    int inside = 0;
    int total = 0;
    for (const FeatureVector::Entry& e : cluster.spatial.entries()) {
      ++total;
      if (std::binary_search(red_zones.begin(), red_zones.end(),
                             regions.RegionOfSensor(e.key))) {
        ++inside;
      }
    }
    const bool keep = mode == RedZoneFilterMode::kKeepIntersecting
                          ? inside > 0
                          : inside == total && total > 0;
    return !keep;
  });
  return clusters;
}

}  // namespace cube
}  // namespace atypical
