// The bottom-up aggregation baseline (CubeView-style, §II.A) and the
// distributive total-severity measure F(W, T) (Property 4) that guides the
// red-zone filter.
//
// Two construction modes mirror the paper's baselines:
//   * FromReadings  — "original CubeView" (OC): aggregates every reading,
//     measure = record count + occupied minutes;
//   * FromAtypical  — "modified CubeView" (MC): aggregates only atypical
//     records, measure = total severity.
//
// Cells are materialized at the granularities in cube::CubeLevel; F(W, T)
// sums region×day cells, which is exact because total severity is
// distributive over any partition of (W, T).
#ifndef ATYPICAL_CUBE_CUBE_H_
#define ATYPICAL_CUBE_CUBE_H_

#include <unordered_map>
#include <vector>

#include "cps/dataset.h"
#include "cps/record.h"
#include "cps/spatial_partition.h"
#include "cube/hierarchy.h"

namespace atypical {
namespace cube {

// Aggregated measures of one cell.
struct CubeCell {
  double severity = 0.0;  // Σ atypical minutes (MC), 0 for normal readings
  int64_t count = 0;      // records aggregated
  double value_minutes = 0.0;  // OC only: Σ window minutes of traffic data
};

struct CubeBuildStats {
  double seconds = 0.0;
  int64_t records = 0;
  uint64_t num_cells = 0;
  uint64_t byte_size = 0;
};

class BottomUpCube {
 public:
  // OC: aggregates every reading of `dataset` into the cube.
  static BottomUpCube FromReadings(const Dataset& dataset,
                                   const SpatialPartition& regions);

  // MC: aggregates only atypical records.
  static BottomUpCube FromAtypical(const std::vector<AtypicalRecord>& records,
                                   const SpatialPartition& regions,
                                   const TimeGrid& grid);

  BottomUpCube() = default;

  // Merges another cube built over the same regions/grid (used to accumulate
  // months).  Distributivity makes this exact.
  void MergeFrom(const BottomUpCube& other);

  const CubeCell* Lookup(CubeLevel level, uint32_t space, int64_t time) const;

  // Total severity F(W', T) for a set of regions and a day range
  // (the red-zone guidance measure; Property 4/5).
  double F(const std::vector<RegionId>& regions, const DayRange& days) const;

  // Severity of a single (region, day) cell.
  double RegionDaySeverity(RegionId region, int day) const;

  uint64_t num_cells() const;
  uint64_t ByteSize() const;
  const CubeBuildStats& build_stats() const { return build_stats_; }

 private:
  static uint64_t CellKey(uint32_t space, int64_t time) {
    return (static_cast<uint64_t>(space) << 34) ^
           static_cast<uint64_t>(time & 0x3ffffffffLL);
  }

  void AddAtypical(const AtypicalRecord& r, const SpatialPartition& regions,
                   const TimeGrid& grid);

  using LevelMap = std::unordered_map<uint64_t, CubeCell>;
  LevelMap levels_[kNumCubeLevels];
  CubeBuildStats build_stats_;
};

}  // namespace cube
}  // namespace atypical

#endif  // ATYPICAL_CUBE_CUBE_H_
