#include "cube/cube.h"

#include "util/hash_perturb.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace atypical {
namespace cube {

void BottomUpCube::AddAtypical(const AtypicalRecord& r,
                               const SpatialPartition& regions,
                               const TimeGrid& grid) {
  const RegionId region = regions.RegionOfSensor(r.sensor);
  const int day = grid.DayOfWindow(r.window);
  const double severity = r.severity_minutes;

  auto bump = [&](CubeLevel level, uint32_t space, int64_t time) {
    CubeCell& cell = levels_[static_cast<int>(level)][CellKey(space, time)];
    cell.severity += severity;
    cell.count += 1;
  };
  bump(CubeLevel::kRegionHour, region, HourOfWindow(r.window, grid));
  bump(CubeLevel::kSensorDay, r.sensor, day);
  bump(CubeLevel::kRegionDay, region, day);
  bump(CubeLevel::kRegionWeek, region, WeekOfDay(day));
}

BottomUpCube BottomUpCube::FromReadings(const Dataset& dataset,
                                        const SpatialPartition& regions) {
  Stopwatch timer;
  BottomUpCube cube;
  for (LevelMap& level : cube.levels_) {
    PerturbedReserve(level, dataset.readings().size() / 4 + 8);
  }
  const TimeGrid& grid = dataset.meta().time_grid;
  const double window_minutes = grid.window_minutes();
  for (const Reading& r : dataset.readings()) {
    const RegionId region = regions.RegionOfSensor(r.sensor);
    const int day = grid.DayOfWindow(r.window);
    auto bump = [&](CubeLevel level, uint32_t space, int64_t time) {
      CubeCell& cell =
          cube.levels_[static_cast<int>(level)][CellKey(space, time)];
      cell.severity += static_cast<double>(r.atypical_minutes);
      cell.count += 1;
      cell.value_minutes += window_minutes;
    };
    bump(CubeLevel::kRegionHour, region, HourOfWindow(r.window, grid));
    bump(CubeLevel::kSensorDay, r.sensor, day);
    bump(CubeLevel::kRegionDay, region, day);
    bump(CubeLevel::kRegionWeek, region, WeekOfDay(day));
  }
  cube.build_stats_.seconds = timer.ElapsedSeconds();
  cube.build_stats_.records = dataset.num_readings();
  cube.build_stats_.num_cells = cube.num_cells();
  cube.build_stats_.byte_size = cube.ByteSize();
  return cube;
}

BottomUpCube BottomUpCube::FromAtypical(
    const std::vector<AtypicalRecord>& records, const SpatialPartition& regions,
    const TimeGrid& grid) {
  Stopwatch timer;
  BottomUpCube cube;
  for (LevelMap& level : cube.levels_) {
    PerturbedReserve(level, records.size() / 4 + 8);
  }
  for (const AtypicalRecord& r : records) {
    cube.AddAtypical(r, regions, grid);
  }
  cube.build_stats_.seconds = timer.ElapsedSeconds();
  cube.build_stats_.records = static_cast<int64_t>(records.size());
  cube.build_stats_.num_cells = cube.num_cells();
  cube.build_stats_.byte_size = cube.ByteSize();
  return cube;
}

void BottomUpCube::MergeFrom(const BottomUpCube& other) {
  for (int level = 0; level < kNumCubeLevels; ++level) {
    // Per-key merge: each source key is visited exactly once and folded into
    // its own destination cell, so visitation order cannot change any sum.
    // NOLINTNEXTLINE(AL009): += over distinct keys commutes; order-free
    for (const auto& [key, cell] : other.levels_[level]) {
      CubeCell& mine = levels_[level][key];
      mine.severity += cell.severity;
      mine.count += cell.count;
      mine.value_minutes += cell.value_minutes;
    }
  }
  build_stats_.seconds += other.build_stats_.seconds;
  build_stats_.records += other.build_stats_.records;
  build_stats_.num_cells = num_cells();
  build_stats_.byte_size = ByteSize();
}

const CubeCell* BottomUpCube::Lookup(CubeLevel level, uint32_t space,
                                     int64_t time) const {
  const LevelMap& map = levels_[static_cast<int>(level)];
  const auto it = map.find(CellKey(space, time));
  return it == map.end() ? nullptr : &it->second;
}

double BottomUpCube::RegionDaySeverity(RegionId region, int day) const {
  const CubeCell* cell = Lookup(CubeLevel::kRegionDay, region, day);
  return cell == nullptr ? 0.0 : cell->severity;
}

double BottomUpCube::F(const std::vector<RegionId>& regions,
                       const DayRange& days) const {
  double total = 0.0;
  for (RegionId region : regions) {
    for (int day = days.first_day; day <= days.last_day; ++day) {
      total += RegionDaySeverity(region, day);
    }
  }
  return total;
}

uint64_t BottomUpCube::num_cells() const {
  uint64_t cells = 0;
  for (const LevelMap& map : levels_) cells += map.size();
  return cells;
}

uint64_t BottomUpCube::ByteSize() const {
  // Hash-map overhead is implementation-defined; report the payload a
  // compact serialization would need: key + cell per cell.
  return num_cells() * (sizeof(uint64_t) + sizeof(CubeCell));
}

}  // namespace cube
}  // namespace atypical
