// The congestion-event process: the stochastic model that decides when and
// where atypical events happen and how they evolve.
//
// Three event populations reproduce the structure the paper's evaluation
// depends on:
//   * major hotspots  — recur almost every weekday in their rush window,
//     span dozens of sensors for hours (the events that become significant
//     weekly/monthly macro-clusters, like the paper's clusters A and B);
//   * minor hotspots  — recur a few times a week, smaller footprint;
//   * incidents       — Poisson background noise: short, small, anywhere,
//     any time (the trivial clusters that dominate cluster counts).
//
// Every event starts small, expands along its highway to a peak extent, then
// shrinks — so events have no fixed spatial boundary, exactly the property
// that defeats the bottom-up baseline.
#ifndef ATYPICAL_GEN_CONGESTION_PROCESS_H_
#define ATYPICAL_GEN_CONGESTION_PROCESS_H_

#include <cstdint>
#include <vector>

#include "cps/sensor_network.h"
#include "cps/types.h"
#include "util/random.h"

namespace atypical {

// A recurring congestion source anchored at one stretch of highway.
struct Hotspot {
  HighwayId highway = 0;
  int center_index = 0;          // index into SensorsOnHighway(highway)
  int peak_minute_of_day = 480;  // when the jam usually peaks (8:00 or 17:30)
  double weekday_probability = 0.85;
  double weekend_probability = 0.15;
  double peak_radius_sensors = 10.0;  // half-extent at the jam's peak
  double mean_duration_minutes = 180.0;
  bool major = false;
  // Days on which the hotspot is active, [first, last] inclusive.  Major
  // hotspots run all year; minor ones model road works / seasonal trouble
  // spots with finite spans, so their macro-clusters stop growing with the
  // query range — the mechanism behind precision decaying with T (Fig. 18).
  int active_first_day = 0;
  int active_last_day = INT32_MAX;

  bool ActiveOn(int day) const {
    return day >= active_first_day && day <= active_last_day;
  }
};

// One concrete occurrence of congestion on one day (generator-internal;
// the core library never sees these).
struct CongestionEventInstance {
  EventId id = kNoEvent;
  HighwayId highway = 0;
  int center_index = 0;
  int start_minute = 0;      // minute of day the jam begins
  int duration_minutes = 0;
  double peak_radius = 0.0;  // in sensor positions along the highway
  double drift_per_minute = 0.0;  // upstream drift of the jam center
  bool from_hotspot = false;
};

struct CongestionProcessConfig {
  int num_major_hotspots = 6;
  int num_minor_hotspots = 10;
  // Expected background incidents per day (Poisson).
  double incidents_per_day = 6.0;
  // Fraction of incidents placed on a hotspot's highway near its center, so
  // they merge into the recurring macro-clusters (secondary accidents).
  double incident_near_hotspot_prob = 0.5;
  // Length bounds (days) for minor hotspots' active spans; the span start is
  // uniform over `horizon_days`.  Major hotspots ignore these.
  int minor_span_min_days = 30;
  int minor_span_max_days = 60;
  int horizon_days = 336;
  // Stop-and-go flicker: probability that a window in the middle of an
  // event briefly recovers (no atypical readings that window).  Flicker
  // creates the temporal gaps that make the δt threshold meaningful —
  // chaining across a one-window gap needs δt > window length (Def. 1).
  double flicker_prob = 0.22;
  uint64_t seed = 23;
};

// Contribution of one event to one (sensor, window) cell.
struct SeverityContribution {
  SensorId sensor = kInvalidSensor;
  int window_of_day = 0;
  float minutes = 0.0f;
  EventId event = kNoEvent;
};

// Samples daily congestion events and renders them into per-window severity
// contributions.
class CongestionProcess {
 public:
  CongestionProcess(const SensorNetwork& network,
                    const CongestionProcessConfig& config);

  const std::vector<Hotspot>& hotspots() const { return hotspots_; }

  // Samples the events of one absolute day.  Deterministic per
  // (seed, absolute_day); event ids are unique across days.
  std::vector<CongestionEventInstance> SampleDay(int absolute_day) const;

  // Renders an event into (sensor, window-of-day, minutes) contributions.
  // The jam expands to `peak_radius` sensors and contracts following a
  // sinusoidal profile; frontier sensors get partial-window durations.
  std::vector<SeverityContribution> Render(
      const CongestionEventInstance& event, const TimeGrid& grid) const;

 private:
  void PlaceHotspots();
  CongestionEventInstance SampleHotspotEvent(const Hotspot& hotspot,
                                             EventId id, Rng& rng) const;
  CongestionEventInstance SampleIncident(EventId id, Rng& rng) const;

  const SensorNetwork& network_;
  CongestionProcessConfig config_;
  std::vector<Hotspot> hotspots_;
};

}  // namespace atypical

#endif  // ATYPICAL_GEN_CONGESTION_PROCESS_H_
