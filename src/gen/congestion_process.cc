#include "gen/congestion_process.h"

#include <algorithm>
#include <cmath>

#include "gen/traffic_model.h"
#include "util/logging.h"

namespace atypical {

namespace {

// Event ids are (day + 1) * kEventsPerDayStride + ordinal, so they are unique
// across days and never collide with kNoEvent (0).
constexpr EventId kEventsPerDayStride = 4096;

}  // namespace

CongestionProcess::CongestionProcess(const SensorNetwork& network,
                                     const CongestionProcessConfig& config)
    : network_(network), config_(config) {
  CHECK_GE(config.num_major_hotspots, 0);
  CHECK_GE(config.num_minor_hotspots, 0);
  CHECK_GE(config.incidents_per_day, 0.0);
  PlaceHotspots();
}

void CongestionProcess::PlaceHotspots() {
  Rng rng(config_.seed);
  const int total = config_.num_major_hotspots + config_.num_minor_hotspots;
  const GeoRect bounds = network_.bounds();
  const GeoPoint downtown{(bounds.min_x + bounds.max_x) / 2.0,
                          (bounds.min_y + bounds.max_y) / 2.0};

  // Collect highways long enough to host a jam, weighted toward those that
  // pass close to the "downtown" center (where real hotspots concentrate).
  std::vector<HighwayId> candidates;
  std::vector<double> weights;
  for (HighwayId h = 0; h < static_cast<HighwayId>(network_.num_highways());
       ++h) {
    const auto& line = network_.SensorsOnHighway(h);
    if (static_cast<int>(line.size()) < 8) continue;
    const Sensor& mid = network_.sensor(line[line.size() / 2]);
    const double dist = DistanceMiles(mid.location, downtown);
    candidates.push_back(h);
    weights.push_back(1.0 / (1.0 + dist * dist / 50.0));
  }
  CHECK(!candidates.empty()) << "no highway long enough to host hotspots";

  for (int i = 0; i < total; ++i) {
    const size_t pick = rng.WeightedIndex(weights);
    const HighwayId h = candidates[pick];
    // Soft no-replacement: repeated picks of the same highway are strongly
    // discouraged so hotspots spread across the network instead of piling
    // onto the downtown corridors and merging into one mega-cluster.
    weights[pick] *= 0.15;
    const auto& line = network_.SensorsOnHighway(h);
    Hotspot spot;
    spot.highway = h;
    spot.major = i < config_.num_major_hotspots;
    if (spot.major) {
      spot.peak_minute_of_day = rng.Bernoulli(0.5) ? 8 * 60 : 17 * 60 + 30;
      spot.weekday_probability = 0.85;
      spot.weekend_probability = 0.15;
      spot.peak_radius_sensors = rng.Uniform(5.0, 8.0);
      spot.mean_duration_minutes = rng.Uniform(200.0, 300.0);
    } else {
      // Off-peak troubles (road works, venues): outside the rush windows,
      // so they stay distinct events instead of percolating into the
      // rush-hour mega-clusters.
      static constexpr int kOffPeakMinutes[] = {6 * 60, 10 * 60 + 30,
                                                12 * 60 + 45, 14 * 60 + 30,
                                                20 * 60 + 30};
      spot.peak_minute_of_day =
          kOffPeakMinutes[rng.UniformInt(uint64_t{5})];
      // Wide per-spot variation in recurrence and size gives the cluster
      // population a graded severity spectrum, so the δs sweep (Fig. 19)
      // actually moves clusters across the significance bar, and some
      // minors' daily micro-clusters are individually trivial even though
      // their weekly/monthly macro-clusters are significant (Example 6's
      // trap for beforehand pruning).
      spot.weekday_probability = rng.Uniform(0.5, 0.85);
      spot.weekend_probability = spot.weekday_probability * 0.15;
      spot.peak_radius_sensors = rng.Uniform(1.2, 2.0);
      spot.mean_duration_minutes = rng.Uniform(60.0, 90.0);
      // Finite active span, staggered over the horizon.
      const int span = static_cast<int>(
          rng.UniformInt(config_.minor_span_min_days,
                         config_.minor_span_max_days));
      const int latest_start = std::max(1, config_.horizon_days - span);
      spot.active_first_day =
          static_cast<int>(rng.UniformInt(static_cast<uint64_t>(latest_start)));
      spot.active_last_day = spot.active_first_day + span - 1;
    }
    // Keep centers away from the highway ends so jams have room to expand,
    // and away from already-placed hotspots on the same highway (otherwise
    // neighbors merge into one cluster and the population collapses).
    const int margin = std::max(1, static_cast<int>(line.size()) / 8);
    for (int attempt = 0; attempt < 8; ++attempt) {
      spot.center_index = static_cast<int>(
          rng.UniformInt(static_cast<int64_t>(margin),
                         static_cast<int64_t>(line.size()) - 1 - margin));
      bool clear = true;
      for (const Hotspot& other : hotspots_) {
        if (other.highway == h &&
            std::abs(other.center_index - spot.center_index) <
                static_cast<int>(other.peak_radius_sensors +
                                 spot.peak_radius_sensors) +
                    2) {
          clear = false;
          break;
        }
      }
      if (clear) break;
    }
    hotspots_.push_back(spot);
  }
}

std::vector<CongestionEventInstance> CongestionProcess::SampleDay(
    int absolute_day) const {
  // Independent stream per day so months can be generated in any order.
  Rng rng(config_.seed ^ (0x51d0'9e37ULL * (absolute_day + 1)));
  const bool weekend = IsWeekend(absolute_day);

  std::vector<CongestionEventInstance> events;
  EventId next_ordinal = 0;
  auto next_id = [&]() {
    return static_cast<EventId>(absolute_day + 1) * kEventsPerDayStride +
           next_ordinal++;
  };

  for (const Hotspot& spot : hotspots_) {
    const double p =
        weekend ? spot.weekend_probability : spot.weekday_probability;
    // Draw even for inactive hotspots so the stream position (and thus all
    // later events of the day) is independent of span parameters.
    const bool fires = rng.Bernoulli(p);
    if (!fires || !spot.ActiveOn(absolute_day)) continue;
    events.push_back(SampleHotspotEvent(spot, next_id(), rng));
  }

  const int incidents = rng.Poisson(config_.incidents_per_day);
  for (int i = 0; i < incidents; ++i) {
    events.push_back(SampleIncident(next_id(), rng));
  }
  return events;
}

CongestionEventInstance CongestionProcess::SampleHotspotEvent(
    const Hotspot& hotspot, EventId id, Rng& rng) const {
  CongestionEventInstance e;
  e.id = id;
  e.highway = hotspot.highway;
  e.from_hotspot = true;
  const auto& line = network_.SensorsOnHighway(hotspot.highway);
  e.center_index = std::clamp(
      hotspot.center_index + static_cast<int>(rng.UniformInt(-1, 1)), 0,
      static_cast<int>(line.size()) - 1);
  e.duration_minutes = std::max(
      30, static_cast<int>(rng.Normal(hotspot.mean_duration_minutes,
                                      hotspot.mean_duration_minutes * 0.15)));
  // The jam peaks mid-event around the hotspot's usual peak time, with some
  // day-to-day jitter (recurring jams are fairly punctual, so the jitter is
  // small relative to event durations — otherwise short recurring events
  // would share no time-of-day windows and never integrate across days).
  const int peak = hotspot.peak_minute_of_day +
                   static_cast<int>(rng.Normal(0.0, 10.0));
  e.start_minute = std::clamp(peak - e.duration_minutes / 2, 0,
                              1440 - e.duration_minutes);
  e.peak_radius = std::max(
      1.0, rng.Normal(hotspot.peak_radius_sensors,
                      hotspot.peak_radius_sensors * 0.15));
  // Jams drift slowly upstream as the queue tail grows.
  e.drift_per_minute = rng.Uniform(0.0, 0.01);
  return e;
}

CongestionEventInstance CongestionProcess::SampleIncident(EventId id,
                                                          Rng& rng) const {
  CongestionEventInstance e;
  e.id = id;
  e.from_hotspot = false;
  if (!hotspots_.empty() &&
      rng.Bernoulli(config_.incident_near_hotspot_prob)) {
    // Secondary incident near a hotspot: same highway, near the center,
    // during that hotspot's usual active period, so it tends to merge into
    // the recurring macro-cluster.
    const Hotspot& spot =
        hotspots_[rng.UniformInt(static_cast<uint64_t>(hotspots_.size()))];
    const auto& line = network_.SensorsOnHighway(spot.highway);
    e.highway = spot.highway;
    e.center_index = std::clamp(
        spot.center_index + static_cast<int>(rng.UniformInt(-4, 4)), 0,
        static_cast<int>(line.size()) - 1);
    e.start_minute = std::clamp(
        spot.peak_minute_of_day + static_cast<int>(rng.Normal(0.0, 45.0)), 0,
        1380);
  } else {
    // Anywhere, any time (mildly biased to daytime).
    HighwayId h;
    do {
      h = static_cast<HighwayId>(
          rng.UniformInt(static_cast<uint64_t>(network_.num_highways())));
    } while (network_.SensorsOnHighway(h).empty());
    e.highway = h;
    const auto& line = network_.SensorsOnHighway(h);
    e.center_index =
        static_cast<int>(rng.UniformInt(static_cast<uint64_t>(line.size())));
    e.start_minute =
        static_cast<int>(rng.UniformInt(5 * 60, 22 * 60));
  }
  e.duration_minutes = static_cast<int>(rng.UniformInt(12, 28));
  e.peak_radius = rng.Uniform(0.5, 1.2);
  e.drift_per_minute = 0.0;
  return e;
}

std::vector<SeverityContribution> CongestionProcess::Render(
    const CongestionEventInstance& event, const TimeGrid& grid) const {
  std::vector<SeverityContribution> out;
  const auto& line = network_.SensorsOnHighway(event.highway);
  const int window_minutes = grid.window_minutes();
  const int first_window = event.start_minute / window_minutes;
  const int end_minute = event.start_minute + event.duration_minutes;
  const int last_window = std::min((end_minute - 1) / window_minutes,
                                   grid.WindowsPerDay() - 1);

  // Deterministic per-event flicker stream (Render has no day context).
  Rng flicker_rng(config_.seed ^ (event.id * 0x9e37'79b9'7f4aULL));

  for (int w = first_window; w <= last_window; ++w) {
    // Stop-and-go: traffic occasionally recovers for a whole window in the
    // middle of a jam.  Keep the first and last windows so the event's
    // nominal span is preserved.
    const bool interior = w != first_window && w != last_window;
    if (interior && flicker_rng.Bernoulli(config_.flicker_prob)) continue;
    // Minutes of this window covered by the event.
    const int window_start = w * window_minutes;
    const int overlap_start = std::max(window_start, event.start_minute);
    const int overlap_end = std::min(window_start + window_minutes, end_minute);
    const int covered = overlap_end - overlap_start;
    if (covered <= 0) continue;

    // Spatial extent at the window's midpoint: grows to the peak radius and
    // shrinks back (half-sine profile over the event lifetime).
    const double mid_minute = window_start + window_minutes / 2.0;
    const double progress = std::clamp(
        (mid_minute - event.start_minute) / event.duration_minutes, 0.0, 1.0);
    const double radius = event.peak_radius * std::sin(progress * M_PI);
    const double center =
        event.center_index -
        event.drift_per_minute * (mid_minute - event.start_minute) *
            event.peak_radius;
    if (radius < 0.25) continue;

    const int lo = std::max(0, static_cast<int>(std::floor(center - radius)));
    const int hi = std::min(static_cast<int>(line.size()) - 1,
                            static_cast<int>(std::ceil(center + radius)));
    for (int i = lo; i <= hi; ++i) {
      const double dist = std::abs(i - center);
      if (dist > radius) continue;
      // Core sensors are congested for the whole covered span; frontier
      // sensors only partially.
      const double intensity = std::clamp(1.3 * (1.0 - dist / (radius + 0.5)),
                                          0.0, 1.0);
      const float minutes =
          static_cast<float>(std::round(covered * intensity * 10.0) / 10.0);
      if (minutes < 0.5f) continue;
      out.push_back(SeverityContribution{line[i], w, minutes, event.id});
    }
  }
  return out;
}

}  // namespace atypical
