// Monthly dataset synthesis: combines the background traffic model with the
// congestion process into a full month of readings (the analogue of one of
// the paper's PeMS monthly datasets).
#ifndef ATYPICAL_GEN_TRAFFIC_GEN_H_
#define ATYPICAL_GEN_TRAFFIC_GEN_H_

#include <vector>

#include "cps/dataset.h"
#include "cps/sensor_network.h"
#include "gen/congestion_process.h"
#include "gen/traffic_model.h"

namespace atypical {

struct TrafficGenConfig {
  TimeGrid time_grid{15};       // 15-minute windows by default
  int days_per_month = 28;
  TrafficModelConfig traffic;
  CongestionProcessConfig congestion;
  // Probability that a sensor fails to report a congested window (loop
  // detectors are flaky; PeMS data is full of such holes).  Dropouts create
  // the temporal gaps that make the δt threshold matter: larger δt bridges
  // missing windows when chaining records into events.
  double record_dropout_prob = 0.06;
  uint64_t seed = 42;
};

// Deterministic generator for monthly datasets over a fixed sensor network.
// Thread-compatible: each GenerateMonth call is independent.
class TrafficGenerator {
 public:
  TrafficGenerator(const SensorNetwork& network, const TrafficGenConfig& config);

  const TrafficGenConfig& config() const { return config_; }
  const CongestionProcess& congestion() const { return congestion_; }

  // Generates the full month (every sensor × window reading).
  Dataset GenerateMonth(int month_index) const;

  // Generates only the atypical records of the month — much faster and
  // sufficient for the clustering pipeline (the full month is needed only by
  // the OC baseline and the PR scan).
  std::vector<AtypicalRecord> GenerateMonthAtypical(int month_index) const;

  DatasetMeta MetaForMonth(int month_index) const;

 private:
  // Renders all of `day`'s events into a dense (sensor × window-of-day)
  // severity buffer.  Overlapping events accumulate, capped at the window
  // length; the label of the largest contributor wins.
  struct DayBuffer {
    std::vector<float> minutes;   // sensor-major: [sensor * wpd + window]
    std::vector<EventId> labels;
  };
  DayBuffer RenderDay(int absolute_day) const;

  const SensorNetwork& network_;
  TrafficGenConfig config_;
  TrafficModel traffic_model_;
  CongestionProcess congestion_;
};

}  // namespace atypical

#endif  // ATYPICAL_GEN_TRAFFIC_GEN_H_
