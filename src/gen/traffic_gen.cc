#include "gen/traffic_gen.h"

#include <algorithm>

#include "util/logging.h"
#include "util/string_util.h"

namespace atypical {

TrafficGenerator::TrafficGenerator(const SensorNetwork& network,
                                   const TrafficGenConfig& config)
    : network_(network),
      config_(config),
      traffic_model_(network, config.traffic),
      congestion_(network, config.congestion) {
  CHECK_GT(config.days_per_month, 0);
  CHECK_EQ(1440 % config.time_grid.window_minutes(), 0);
}

DatasetMeta TrafficGenerator::MetaForMonth(int month_index) const {
  DatasetMeta meta;
  meta.month_index = month_index;
  meta.first_day = month_index * config_.days_per_month;
  meta.num_days = config_.days_per_month;
  meta.num_sensors = network_.num_sensors();
  meta.time_grid = config_.time_grid;
  meta.name = StrPrintf("D%d", month_index + 1);
  return meta;
}

TrafficGenerator::DayBuffer TrafficGenerator::RenderDay(
    int absolute_day) const {
  const int wpd = config_.time_grid.WindowsPerDay();
  const float cap = static_cast<float>(config_.time_grid.window_minutes());
  DayBuffer buf;
  buf.minutes.assign(static_cast<size_t>(network_.num_sensors()) * wpd, 0.0f);
  buf.labels.assign(buf.minutes.size(), kNoEvent);

  for (const CongestionEventInstance& event :
       congestion_.SampleDay(absolute_day)) {
    for (const SeverityContribution& c :
         congestion_.Render(event, config_.time_grid)) {
      const size_t cell =
          static_cast<size_t>(c.sensor) * wpd + c.window_of_day;
      const float before = buf.minutes[cell];
      buf.minutes[cell] = std::min(cap, before + c.minutes);
      // Keep the label of the dominant contributor.
      if (c.minutes > before || buf.labels[cell] == kNoEvent) {
        buf.labels[cell] = c.event;
      }
    }
  }

  // Sensor dropouts: some congested windows simply never get reported.
  if (config_.record_dropout_prob > 0.0) {
    Rng dropout_rng(config_.seed ^ (0x7f4a'11bbULL * (absolute_day + 3)));
    for (size_t cell = 0; cell < buf.minutes.size(); ++cell) {
      if (buf.minutes[cell] > 0.0f &&
          dropout_rng.Bernoulli(config_.record_dropout_prob)) {
        buf.minutes[cell] = 0.0f;
        buf.labels[cell] = kNoEvent;
      }
    }
  }
  return buf;
}

Dataset TrafficGenerator::GenerateMonth(int month_index) const {
  const DatasetMeta meta = MetaForMonth(month_index);
  const int wpd = config_.time_grid.WindowsPerDay();
  const float window_minutes =
      static_cast<float>(config_.time_grid.window_minutes());

  std::vector<Reading> readings;
  readings.reserve(static_cast<size_t>(meta.ExpectedReadings()));
  Rng noise_rng(config_.seed ^ (0xabcdULL * (month_index + 1)));

  for (int d = 0; d < meta.num_days; ++d) {
    const int day = meta.first_day + d;
    const bool weekend = IsWeekend(day);
    const DayBuffer buf = RenderDay(day);
    for (int w = 0; w < wpd; ++w) {
      const WindowId window = config_.time_grid.MakeWindow(day, w);
      const int minute = w * config_.time_grid.window_minutes();
      for (SensorId s = 0; s < static_cast<SensorId>(meta.num_sensors); ++s) {
        const size_t cell = static_cast<size_t>(s) * wpd + w;
        const float atypical = buf.minutes[cell];
        Reading r;
        r.sensor = s;
        r.window = window;
        r.atypical_minutes = atypical;
        r.true_event = buf.labels[cell];
        r.speed_mph = static_cast<float>(traffic_model_.ObservedSpeed(
            s, minute, weekend, atypical / window_minutes, noise_rng));
        r.occupancy =
            static_cast<float>(traffic_model_.Occupancy(r.speed_mph, s));
        readings.push_back(r);
      }
    }
  }
  return Dataset(meta, std::move(readings));
}

std::vector<AtypicalRecord> TrafficGenerator::GenerateMonthAtypical(
    int month_index) const {
  const DatasetMeta meta = MetaForMonth(month_index);
  const int wpd = config_.time_grid.WindowsPerDay();
  std::vector<AtypicalRecord> out;
  for (int d = 0; d < meta.num_days; ++d) {
    const int day = meta.first_day + d;
    const DayBuffer buf = RenderDay(day);
    for (SensorId s = 0; s < static_cast<SensorId>(meta.num_sensors); ++s) {
      for (int w = 0; w < wpd; ++w) {
        const size_t cell = static_cast<size_t>(s) * wpd + w;
        if (buf.minutes[cell] > 0.0f) {
          out.push_back(AtypicalRecord{s, config_.time_grid.MakeWindow(day, w),
                                       buf.minutes[cell], buf.labels[cell]});
        }
      }
    }
  }
  // Match the (window, sensor) order produced by GenerateMonth +
  // ExtractAtypicalRecords so both paths are interchangeable.
  std::sort(out.begin(), out.end(),
            [](const AtypicalRecord& a, const AtypicalRecord& b) {
              if (a.window != b.window) return a.window < b.window;
              return a.sensor < b.sensor;
            });
  return out;
}

}  // namespace atypical
