// Named workload scales bundling the whole synthetic substrate (roads,
// sensors, regions, generator) so tests, examples and benches share one
// construction path.
#ifndef ATYPICAL_GEN_WORKLOAD_H_
#define ATYPICAL_GEN_WORKLOAD_H_

#include <memory>
#include <string>

#include "cps/region_grid.h"
#include "cps/road_network.h"
#include "cps/sensor_network.h"
#include "gen/traffic_gen.h"

namespace atypical {

enum class WorkloadScale {
  kTiny,       // tests: ~60 sensors, 8 highways, 7-day months
  kSmall,      // benches/examples: ~400 sensors, 38 highways, 28-day months
  kPaperLike,  // ~4000 sensors, 5-minute windows, 30-day months (slow)
};

const char* WorkloadScaleName(WorkloadScale scale);

// Everything needed to synthesize and analyze a deployment.  Immutable after
// construction; the members reference each other, so the struct is handed
// around by unique_ptr.
struct Workload {
  RoadNetwork roads;
  std::unique_ptr<SensorNetwork> sensors;
  std::unique_ptr<RegionGrid> regions;   // zipcode-like pre-defined partition
  std::unique_ptr<TrafficGenerator> generator;
  TrafficGenConfig gen_config;
  int num_months = 12;
};

// Builds a workload at the given scale.  Deterministic per (scale, seed).
std::unique_ptr<Workload> MakeWorkload(WorkloadScale scale, uint64_t seed = 1);

// Region cell size (miles) used for the pre-defined partition at each scale.
double DefaultRegionCellMiles(WorkloadScale scale);

}  // namespace atypical

#endif  // ATYPICAL_GEN_WORKLOAD_H_
