#include "gen/traffic_model.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace atypical {

namespace {

// Gaussian bump centered at `center` minutes with the given width.
double Bump(int minute, double center, double width) {
  const double z = (minute - center) / width;
  return std::exp(-0.5 * z * z);
}

}  // namespace

double DiurnalDemand(int minute_of_day, bool weekend) {
  const int m = ((minute_of_day % 1440) + 1440) % 1440;
  if (weekend) {
    // One broad peak around 13:00, lighter than weekday rush.
    return 0.15 + 0.55 * Bump(m, 13 * 60.0, 210.0);
  }
  const double am = Bump(m, 8 * 60.0, 75.0);         // ~8:00 peak
  const double pm = Bump(m, 17 * 60.0 + 30.0, 90.0);  // ~17:30 peak
  const double midday = 0.45 * Bump(m, 12 * 60 + 30.0, 240.0);
  return std::min(1.0, 0.1 + std::max({am, pm, midday}));
}

bool IsWeekend(int absolute_day) {
  const int dow = ((absolute_day % 7) + 7) % 7;  // day 0 == Monday
  return dow >= 5;
}

TrafficModel::TrafficModel(const SensorNetwork& network,
                           const TrafficModelConfig& config)
    : config_(config) {
  CHECK_GT(config.mean_free_flow_mph, 0.0);
  Rng rng(config.seed);
  free_flow_.reserve(network.num_sensors());
  for (int i = 0; i < network.num_sensors(); ++i) {
    free_flow_.push_back(std::max(
        30.0, rng.Normal(config.mean_free_flow_mph,
                         config.free_flow_stddev_mph)));
  }
}

double TrafficModel::free_flow_mph(SensorId sensor) const {
  CHECK_LT(static_cast<size_t>(sensor), free_flow_.size());
  return free_flow_[sensor];
}

double TrafficModel::BaseSpeed(SensorId sensor, int minute_of_day,
                               bool weekend) const {
  const double demand = DiurnalDemand(minute_of_day, weekend);
  return free_flow_mph(sensor) * (1.0 - config_.demand_slowdown * demand);
}

double TrafficModel::ObservedSpeed(SensorId sensor, int minute_of_day,
                                   bool weekend, double congested_fraction,
                                   Rng& rng) const {
  const double base = BaseSpeed(sensor, minute_of_day, weekend);
  const double f = std::clamp(congested_fraction, 0.0, 1.0);
  const double speed = base * (1.0 - f) + config_.congested_speed_mph * f +
                       rng.Normal(0.0, config_.speed_noise_stddev_mph);
  return std::max(2.0, speed);
}

double TrafficModel::Occupancy(double speed_mph, SensorId sensor) const {
  // Simple fundamental-diagram stand-in: occupancy rises as speed drops
  // below free flow.
  const double ratio =
      std::clamp(speed_mph / free_flow_mph(sensor), 0.0, 1.2);
  return std::clamp(0.08 + 0.72 * (1.0 - ratio), 0.0, 1.0);
}

}  // namespace atypical
