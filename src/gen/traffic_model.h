// Background traffic model: what sensors report when nothing atypical is
// happening.
//
// Speeds follow a diurnal demand curve (AM and PM rush peaks on weekdays, a
// flat midday hump on weekends) around a per-sensor free-flow speed.  The
// congestion process overlays atypical events on top of this baseline.
#ifndef ATYPICAL_GEN_TRAFFIC_MODEL_H_
#define ATYPICAL_GEN_TRAFFIC_MODEL_H_

#include <vector>

#include "cps/sensor_network.h"
#include "cps/types.h"
#include "util/random.h"

namespace atypical {

// Relative travel demand in [0, 1] for a minute of day.  Peaks near 8:00
// and 17:30 on weekdays; a single broad midday peak on weekends.
double DiurnalDemand(int minute_of_day, bool weekend);

// True for days falling on Saturday/Sunday under the epoch convention that
// day 0 is a Monday.
bool IsWeekend(int absolute_day);

struct TrafficModelConfig {
  double mean_free_flow_mph = 65.0;
  double free_flow_stddev_mph = 4.0;
  double congested_speed_mph = 18.0;
  // Peak-demand slowdown as a fraction of free-flow speed.
  double demand_slowdown = 0.22;
  double speed_noise_stddev_mph = 1.5;
  uint64_t seed = 11;
};

// Deterministic per-sensor speed model.
class TrafficModel {
 public:
  TrafficModel(const SensorNetwork& network, const TrafficModelConfig& config);

  double free_flow_mph(SensorId sensor) const;

  // Expected (noise-free) speed under normal conditions.
  double BaseSpeed(SensorId sensor, int minute_of_day, bool weekend) const;

  // Observed speed given how many of the window's minutes were congested.
  // Blends base speed toward the congested speed and adds reporting noise.
  double ObservedSpeed(SensorId sensor, int minute_of_day, bool weekend,
                       double congested_fraction, Rng& rng) const;

  // Loop occupancy consistent with the reported speed (monotone decreasing
  // in speed; used only to make the raw dataset realistic).
  double Occupancy(double speed_mph, SensorId sensor) const;

 private:
  TrafficModelConfig config_;
  std::vector<double> free_flow_;
};

}  // namespace atypical

#endif  // ATYPICAL_GEN_TRAFFIC_MODEL_H_
