#include "gen/workload.h"

#include "util/logging.h"

namespace atypical {

const char* WorkloadScaleName(WorkloadScale scale) {
  switch (scale) {
    case WorkloadScale::kTiny:
      return "tiny";
    case WorkloadScale::kSmall:
      return "small";
    case WorkloadScale::kPaperLike:
      return "paper-like";
  }
  return "unknown";
}

double DefaultRegionCellMiles(WorkloadScale scale) {
  switch (scale) {
    // Cells must be fine enough that background-incident mass per region
    // stays below δs·length(T)·N, or every region becomes a red zone and
    // the guided filter degenerates to All.
    case WorkloadScale::kTiny:
      return 2.0;
    case WorkloadScale::kSmall:
      return 1.5;
    case WorkloadScale::kPaperLike:
      return 3.0;
  }
  return 6.0;
}

std::unique_ptr<Workload> MakeWorkload(WorkloadScale scale, uint64_t seed) {
  auto workload = std::make_unique<Workload>();

  RoadNetworkConfig roads;
  SensorNetworkConfig sensors;
  TrafficGenConfig gen;
  gen.seed = seed * 131 + 7;
  gen.traffic.seed = seed * 17 + 3;
  gen.congestion.seed = seed * 257 + 11;
  roads.seed = seed * 31 + 1;

  switch (scale) {
    // Sensor spacing must stay below the paper's default δd = 1.5 miles
    // (PeMS spacing is ~0.5 mi), so each scale sizes its area and highway
    // count to keep total-road-miles / sensors under ~1 mile.
    case WorkloadScale::kTiny:
      roads.num_highways = 6;
      roads.area_width_miles = 12.0;
      roads.area_height_miles = 9.0;
      sensors.target_num_sensors = 60;
      gen.time_grid = TimeGrid(15);
      gen.days_per_month = 7;
      gen.congestion.num_major_hotspots = 2;
      gen.congestion.num_minor_hotspots = 3;
      gen.congestion.incidents_per_day = 3.0;
      gen.congestion.horizon_days = 21;
      gen.congestion.minor_span_min_days = 7;
      gen.congestion.minor_span_max_days = 14;
      workload->num_months = 3;
      break;
    case WorkloadScale::kSmall:
      roads.num_highways = 14;
      roads.area_width_miles = 30.0;
      roads.area_height_miles = 20.0;
      sensors.target_num_sensors = 450;
      gen.time_grid = TimeGrid(15);
      gen.days_per_month = 28;
      gen.congestion.num_major_hotspots = 10;
      gen.congestion.num_minor_hotspots = 40;
      gen.congestion.incidents_per_day = 48.0;
      gen.congestion.incident_near_hotspot_prob = 0.1;
      gen.congestion.horizon_days = 12 * 28;
      gen.congestion.minor_span_min_days = 50;
      gen.congestion.minor_span_max_days = 90;
      workload->num_months = 12;
      break;
    case WorkloadScale::kPaperLike:
      roads.num_highways = 38;
      roads.area_width_miles = 60.0;
      roads.area_height_miles = 45.0;
      sensors.target_num_sensors = 4000;
      gen.time_grid = TimeGrid(5);
      gen.days_per_month = 30;
      gen.congestion.num_major_hotspots = 12;
      gen.congestion.num_minor_hotspots = 24;
      gen.congestion.incidents_per_day = 150.0;
      gen.congestion.incident_near_hotspot_prob = 0.2;
      workload->num_months = 12;
      break;
  }

  workload->roads = RoadNetwork::Generate(roads);
  workload->sensors =
      std::make_unique<SensorNetwork>(SensorNetwork::Place(workload->roads,
                                                           sensors));
  workload->regions = std::make_unique<RegionGrid>(
      *workload->sensors, DefaultRegionCellMiles(scale));
  workload->generator =
      std::make_unique<TrafficGenerator>(*workload->sensors, gen);
  workload->gen_config = gen;
  return workload;
}

}  // namespace atypical
