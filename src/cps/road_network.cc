#include "cps/road_network.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/random.h"
#include "util/string_util.h"

namespace atypical {

namespace {

// Polyline sampling step in miles; fine enough that linear interpolation
// between way points stays well under sensor spacing.
constexpr double kSampleStepMiles = 0.5;

double PolylineLength(const std::vector<GeoPoint>& points) {
  double length = 0.0;
  for (size_t i = 1; i < points.size(); ++i) {
    length += DistanceMiles(points[i - 1], points[i]);
  }
  return length;
}

}  // namespace

GeoPoint Highway::PointAtMile(double mile) const {
  CHECK(!polyline.empty());
  if (mile <= 0.0) return polyline.front();
  double remaining = mile;
  for (size_t i = 1; i < polyline.size(); ++i) {
    const double seg = DistanceMiles(polyline[i - 1], polyline[i]);
    if (remaining <= seg && seg > 0.0) {
      const double t = remaining / seg;
      return GeoPoint{polyline[i - 1].x + t * (polyline[i].x - polyline[i - 1].x),
                      polyline[i - 1].y + t * (polyline[i].y - polyline[i - 1].y)};
    }
    remaining -= seg;
  }
  return polyline.back();
}

RoadNetwork RoadNetwork::Generate(const RoadNetworkConfig& config) {
  CHECK_GT(config.num_highways, 0);
  CHECK_GT(config.area_width_miles, 0.0);
  CHECK_GT(config.area_height_miles, 0.0);

  RoadNetwork network;
  network.bounds_ = GeoRect{0.0, 0.0, config.area_width_miles,
                            config.area_height_miles};
  Rng rng(config.seed);

  const double w = config.area_width_miles;
  const double h = config.area_height_miles;

  for (int i = 0; i < config.num_highways; ++i) {
    Highway hw;
    hw.id = static_cast<HighwayId>(i);

    // Orientation mix: ~40% east-west, ~40% north-south, ~20% diagonal —
    // a rough grid like the LA freeway system.
    const double orientation = rng.Uniform();
    GeoPoint start, end;
    char axis;
    if (orientation < 0.4) {
      axis = 'E';
      const double y = rng.Uniform(0.05 * h, 0.95 * h);
      start = GeoPoint{0.0, y};
      end = GeoPoint{w, std::clamp(y + rng.Uniform(-0.15, 0.15) * h, 0.0, h)};
    } else if (orientation < 0.8) {
      axis = 'N';
      const double x = rng.Uniform(0.05 * w, 0.95 * w);
      start = GeoPoint{x, 0.0};
      end = GeoPoint{std::clamp(x + rng.Uniform(-0.15, 0.15) * w, 0.0, w), h};
    } else {
      axis = 'D';
      // Diagonal: corner-ish to corner-ish.
      const bool rising = rng.Bernoulli(0.5);
      start = GeoPoint{rng.Uniform(0.0, 0.2 * w),
                       rising ? rng.Uniform(0.0, 0.3 * h)
                              : rng.Uniform(0.7 * h, h)};
      end = GeoPoint{rng.Uniform(0.8 * w, w),
                     rising ? rng.Uniform(0.7 * h, h)
                            : rng.Uniform(0.0, 0.3 * h)};
    }
    hw.name = StrPrintf("I-%d%c", 2 + i * 3, axis);

    // Sample a gently curved path: straight line plus a low-frequency sine
    // offset perpendicular to the direction of travel.
    const double straight = DistanceMiles(start, end);
    const int steps = std::max(2, static_cast<int>(straight / kSampleStepMiles));
    const double amplitude = config.curvature * straight *
                             rng.Uniform(0.3, 1.0);
    const double phase = rng.Uniform(0.0, 2.0 * M_PI);
    const double cycles = rng.Uniform(0.5, 1.5);
    const double dx = (end.x - start.x) / straight;
    const double dy = (end.y - start.y) / straight;
    for (int s = 0; s <= steps; ++s) {
      const double t = static_cast<double>(s) / steps;
      const double offset =
          amplitude * std::sin(phase + t * cycles * 2.0 * M_PI) *
          std::sin(t * M_PI);  // taper so ends stay put
      GeoPoint p{start.x + t * (end.x - start.x) - dy * offset,
                 start.y + t * (end.y - start.y) + dx * offset};
      p.x = std::clamp(p.x, 0.0, w);
      p.y = std::clamp(p.y, 0.0, h);
      hw.polyline.push_back(p);
    }
    hw.length_miles = PolylineLength(hw.polyline);
    network.total_length_miles_ += hw.length_miles;
    network.highways_.push_back(std::move(hw));
  }
  return network;
}

const Highway& RoadNetwork::highway(HighwayId id) const {
  CHECK_LT(static_cast<size_t>(id), highways_.size());
  return highways_[id];
}

}  // namespace atypical
