#include "cps/region_grid.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/string_util.h"

namespace atypical {

RegionGrid::RegionGrid(const SensorNetwork& network, double cell_miles) {
  CHECK_GT(cell_miles, 0.0);
  const GeoRect bounds = network.bounds();
  origin_x_ = bounds.min_x;
  origin_y_ = bounds.min_y;
  cell_miles_ = cell_miles;
  cols_ = std::max(1, static_cast<int>(std::ceil(bounds.Width() / cell_miles)));
  rows_ = std::max(1, static_cast<int>(std::ceil(bounds.Height() / cell_miles)));

  region_of_sensor_.resize(network.num_sensors(), kInvalidRegion);
  sensors_in_region_.resize(static_cast<size_t>(cols_) * rows_);
  for (const Sensor& s : network.sensors()) {
    const RegionId r = RegionOfPoint(s.location);
    region_of_sensor_[s.id] = r;
    sensors_in_region_[r].push_back(s.id);
  }
}

std::string RegionGrid::Name() const {
  return StrPrintf("grid-%.1fmi", cell_miles_);
}

RegionId RegionGrid::RegionOfSensor(SensorId sensor) const {
  CHECK_LT(static_cast<size_t>(sensor), region_of_sensor_.size());
  return region_of_sensor_[sensor];
}

RegionId RegionGrid::RegionOfPoint(const GeoPoint& p) const {
  int cx = static_cast<int>((p.x - origin_x_) / cell_miles_);
  int cy = static_cast<int>((p.y - origin_y_) / cell_miles_);
  cx = std::clamp(cx, 0, cols_ - 1);
  cy = std::clamp(cy, 0, rows_ - 1);
  return static_cast<RegionId>(cy) * cols_ + cx;
}

const std::vector<SensorId>& RegionGrid::SensorsInRegion(
    RegionId region) const {
  CHECK_LT(static_cast<size_t>(region), sensors_in_region_.size());
  return sensors_in_region_[region];
}

GeoRect RegionGrid::RegionRect(RegionId region) const {
  CHECK_LT(static_cast<size_t>(region), sensors_in_region_.size());
  const int cy = static_cast<int>(region) / cols_;
  const int cx = static_cast<int>(region) % cols_;
  return GeoRect{origin_x_ + cx * cell_miles_, origin_y_ + cy * cell_miles_,
                 origin_x_ + (cx + 1) * cell_miles_,
                 origin_y_ + (cy + 1) * cell_miles_};
}

std::vector<RegionId> RegionGrid::RegionsInRect(const GeoRect& rect) const {
  const int cx0 = std::clamp(
      static_cast<int>((rect.min_x - origin_x_) / cell_miles_), 0, cols_ - 1);
  const int cx1 = std::clamp(
      static_cast<int>((rect.max_x - origin_x_) / cell_miles_), 0, cols_ - 1);
  const int cy0 = std::clamp(
      static_cast<int>((rect.min_y - origin_y_) / cell_miles_), 0, rows_ - 1);
  const int cy1 = std::clamp(
      static_cast<int>((rect.max_y - origin_y_) / cell_miles_), 0, rows_ - 1);
  std::vector<RegionId> out;
  out.reserve(static_cast<size_t>(cx1 - cx0 + 1) * (cy1 - cy0 + 1));
  for (int cy = cy0; cy <= cy1; ++cy) {
    for (int cx = cx0; cx <= cx1; ++cx) {
      out.push_back(static_cast<RegionId>(cy) * cols_ + cx);
    }
  }
  return out;
}

}  // namespace atypical
