// Record types flowing through the system.
//
// A `Reading` is the raw sensor report for one time window (the full CPS
// dataset stores one per sensor per window).  An `AtypicalRecord` is the
// paper's (s, t, f(s,t)) triple: only the windows in which the sensor was
// atypical, with the atypical duration as the severity measure.
#ifndef ATYPICAL_CPS_RECORD_H_
#define ATYPICAL_CPS_RECORD_H_

#include <cstdint>

#include "cps/types.h"

namespace atypical {

// One raw report from one sensor for one time window.
struct Reading {
  SensorId sensor = kInvalidSensor;
  WindowId window = 0;
  float speed_mph = 0.0f;       // mean vehicle speed observed in the window
  float occupancy = 0.0f;       // fraction of window the loop was occupied
  float atypical_minutes = 0.0f;  // minutes of atypical (congested) state
  // Ground-truth label attached by the synthetic generator: id of the
  // congestion event responsible for the atypical minutes, kNoEvent if none.
  // Real deployments do not have this field; it is used only for generator
  // validation and is never read by the core algorithms.
  EventId true_event = kNoEvent;

  bool is_atypical() const { return atypical_minutes > 0.0f; }
};

// The paper's atypical record (s, t, f(s, t)).
struct AtypicalRecord {
  SensorId sensor = kInvalidSensor;
  WindowId window = 0;
  float severity_minutes = 0.0f;
  EventId true_event = kNoEvent;  // generator label, see Reading::true_event

  friend bool operator==(const AtypicalRecord& a, const AtypicalRecord& b) {
    return a.sensor == b.sensor && a.window == b.window &&
           a.severity_minutes == b.severity_minutes;
  }
};

}  // namespace atypical

#endif  // ATYPICAL_CPS_RECORD_H_
