// Procedural highway map.
//
// The paper's data covers 38 highways in the Los Angeles / Ventura area.  We
// synthesize a comparable planar map: a mix of east-west, north-south and
// diagonal highways with gentle curvature crossing a rectangular area, so
// congestion events can propagate along realistic 1-D corridors embedded in
// 2-D space.
#ifndef ATYPICAL_CPS_ROAD_NETWORK_H_
#define ATYPICAL_CPS_ROAD_NETWORK_H_

#include <string>
#include <vector>

#include "cps/types.h"

namespace atypical {

// One highway: a polyline sampled at roughly uniform arc length.
struct Highway {
  HighwayId id = 0;
  std::string name;                // e.g. "I-3E"
  std::vector<GeoPoint> polyline;  // ordered way points
  double length_miles = 0.0;

  // Interpolated point at the given mile post along the polyline.
  GeoPoint PointAtMile(double mile) const;
};

struct RoadNetworkConfig {
  int num_highways = 38;
  double area_width_miles = 60.0;
  double area_height_miles = 40.0;
  // Curvature amplitude as a fraction of the crossing span.
  double curvature = 0.06;
  uint64_t seed = 7;
};

// The full highway map of the synthetic metropolitan area.
class RoadNetwork {
 public:
  // Procedurally builds `config.num_highways` highways.
  static RoadNetwork Generate(const RoadNetworkConfig& config);

  const std::vector<Highway>& highways() const { return highways_; }
  const Highway& highway(HighwayId id) const;
  GeoRect bounds() const { return bounds_; }
  double total_length_miles() const { return total_length_miles_; }

 private:
  std::vector<Highway> highways_;
  GeoRect bounds_;
  double total_length_miles_ = 0.0;
};

}  // namespace atypical

#endif  // ATYPICAL_CPS_ROAD_NETWORK_H_
