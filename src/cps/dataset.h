// In-memory CPS dataset: the readings of one month (one of the paper's D1..
// D12 datasets), plus derived views.
#ifndef ATYPICAL_CPS_DATASET_H_
#define ATYPICAL_CPS_DATASET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "cps/record.h"
#include "cps/types.h"

namespace atypical {

// Dataset identity and shape.  `first_day` is the absolute day index of the
// month's first day, so WindowIds are globally comparable across months.
struct DatasetMeta {
  int month_index = 0;      // 0-based month number (paper's D1..D12)
  int first_day = 0;        // absolute day of the first day of the month
  int num_days = 28;
  int num_sensors = 0;
  TimeGrid time_grid;
  std::string name;         // e.g. "D1"

  int64_t TotalWindows() const {
    return static_cast<int64_t>(num_days) * time_grid.WindowsPerDay();
  }
  int64_t ExpectedReadings() const {
    return TotalWindows() * num_sensors;
  }
  DayRange Days() const {
    return DayRange{first_day, first_day + num_days - 1};
  }
};

// One month of raw readings, ordered by (window, sensor).
class Dataset {
 public:
  Dataset() = default;
  Dataset(DatasetMeta meta, std::vector<Reading> readings)
      : meta_(std::move(meta)), readings_(std::move(readings)) {}

  const DatasetMeta& meta() const { return meta_; }
  const std::vector<Reading>& readings() const { return readings_; }
  std::vector<Reading>& mutable_readings() { return readings_; }

  int64_t num_readings() const {
    return static_cast<int64_t>(readings_.size());
  }
  int64_t num_atypical() const;
  double atypical_fraction() const;

  // Sum of atypical minutes over all readings (the month's total severity
  // budget; used to sanity-check significance thresholds).
  double total_severity_minutes() const;

  // Extracts the paper's atypical records (s, t, f(s,t)) — the
  // pre-processing step PR in §V.A.
  std::vector<AtypicalRecord> ExtractAtypicalRecords() const;

  // In-memory size of the raw readings in bytes (used by the Fig. 16 model
  // size comparison).
  uint64_t ByteSize() const { return readings_.size() * sizeof(Reading); }

 private:
  DatasetMeta meta_;
  std::vector<Reading> readings_;
};

}  // namespace atypical

#endif  // ATYPICAL_CPS_DATASET_H_
