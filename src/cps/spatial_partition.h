// Abstract pre-defined spatial partition.
//
// The paper's bottom-up aggregation runs over fixed spatial regions and
// names several interchangeable schemes: zipcode areas, streets, highway
// mileages and R-tree rectangles (§II.A, §VI).  Everything downstream (the
// cube, red-zone guidance, query engine) depends only on this interface, so
// the scheme is pluggable: `RegionGrid` is the uniform-grid instance,
// `index::RTreeLeafPartition` the R-tree-rectangle instance.
#ifndef ATYPICAL_CPS_SPATIAL_PARTITION_H_
#define ATYPICAL_CPS_SPATIAL_PARTITION_H_

#include <string>
#include <vector>

#include "cps/types.h"

namespace atypical {

class SpatialPartition {
 public:
  virtual ~SpatialPartition() = default;

  virtual int num_regions() const = 0;

  // Region owning `sensor`; every sensor belongs to exactly one region.
  virtual RegionId RegionOfSensor(SensorId sensor) const = 0;

  // Sensors assigned to `region` (may be empty).
  virtual const std::vector<SensorId>& SensorsInRegion(
      RegionId region) const = 0;

  // Regions that overlap `rect`.
  virtual std::vector<RegionId> RegionsInRect(const GeoRect& rect) const = 0;

  // Human-readable scheme name ("grid-1.5mi", "rtree-leaves", ...).
  virtual std::string Name() const = 0;
};

}  // namespace atypical

#endif  // ATYPICAL_CPS_SPATIAL_PARTITION_H_
