// Sensor placement along the highway map, plus the adjacency structure the
// congestion process uses to propagate events along a road.
//
// Sensors are fixed in their locations (as in the paper); the spatial
// coverage of an event is therefore a set of sensors, and the topology graph
// maps sensors to highways and regions.
#ifndef ATYPICAL_CPS_SENSOR_NETWORK_H_
#define ATYPICAL_CPS_SENSOR_NETWORK_H_

#include <vector>

#include "cps/road_network.h"
#include "cps/types.h"
#include "util/hot_path.h"

namespace atypical {

// One fixed roadside sensor.
struct Sensor {
  SensorId id = kInvalidSensor;
  GeoPoint location;
  HighwayId highway = 0;
  double mile_post = 0.0;  // arc-length position along the highway
  // Neighbors along the same highway (kInvalidSensor at the ends).
  SensorId upstream = kInvalidSensor;
  SensorId downstream = kInvalidSensor;
};

struct SensorNetworkConfig {
  // Approximate total sensor count; actual count depends on highway lengths.
  int target_num_sensors = 400;
};

// Distance notion used by Def. 1's distance(sᵢ, sⱼ).
//
// Euclidean distance lets concurrent jams on crossing highways chain into
// one event at interchanges (how the paper's LA data yields very few, very
// large significant clusters); road-network distance confines events to a
// single highway.  The metric ablation quantifies the difference.
enum class DistanceMetric : uint8_t {
  kEuclidean,
  // |mile-post difference| on the same highway; +inf across highways.
  kRoadNetwork,
};

const char* DistanceMetricName(DistanceMetric metric);

// All sensors of the deployment plus lookup structures.
class SensorNetwork {
 public:
  // Places sensors at uniform spacing along every highway so that the total
  // is close to `config.target_num_sensors`.
  static SensorNetwork Place(const RoadNetwork& roads,
                             const SensorNetworkConfig& config);

  int num_sensors() const { return static_cast<int>(sensors_.size()); }
  int num_highways() const { return static_cast<int>(by_highway_.size()); }
  const std::vector<Sensor>& sensors() const { return sensors_; }
  const Sensor& sensor(SensorId id) const;
  const GeoPoint& location(SensorId id) const { return sensor(id).location; }

  double spacing_miles() const { return spacing_miles_; }
  GeoRect bounds() const { return bounds_; }

  // Sensors on the given highway ordered by mile post.
  const std::vector<SensorId>& SensorsOnHighway(HighwayId highway) const;

  // All sensors within `radius_miles` of `center` (linear scan; the hot path
  // uses index::GridIndex instead).
  std::vector<SensorId> SensorsNear(const GeoPoint& center,
                                    double radius_miles) const;

  // All sensors inside the rectangle (query region W).
  std::vector<SensorId> SensorsInRect(const GeoRect& rect) const;

  // Same, into a caller-owned buffer (cleared first) so serving loops reuse
  // its capacity across queries.  Output is ascending by sensor id, which
  // lets callers use binary search for membership.
  ATYPICAL_HOT void SensorsInRect(const GeoRect& rect,
                                  std::vector<SensorId>* out) const;

  // Distance between two sensors under `metric`.  Road-network distance
  // across different highways is +infinity (HUGE_VAL) — it always exceeds
  // any δd.  Note road distance >= Euclidean distance, so Euclidean-based
  // index pruning stays safe for both metrics.
  double Distance(SensorId a, SensorId b, DistanceMetric metric) const;

 private:
  std::vector<Sensor> sensors_;
  std::vector<std::vector<SensorId>> by_highway_;
  double spacing_miles_ = 0.0;
  GeoRect bounds_;
};

}  // namespace atypical

#endif  // ATYPICAL_CPS_SENSOR_NETWORK_H_
