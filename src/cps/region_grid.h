// Pre-defined spatial partition of the map, standing in for the paper's
// zipcode areas.
//
// The bottom-up baseline (CubeView) and the red-zone computation (Algorithm
// 4) both aggregate severities per pre-defined region.  The paper notes that
// zipcode areas, street segments, highway mileages and R-tree rectangles are
// all used in practice; a uniform grid is the simplest such fixed partition
// and exposes the same behaviour (events do not follow region boundaries).
#ifndef ATYPICAL_CPS_REGION_GRID_H_
#define ATYPICAL_CPS_REGION_GRID_H_

#include <string>
#include <vector>

#include "cps/sensor_network.h"
#include "cps/spatial_partition.h"
#include "cps/types.h"

namespace atypical {

// Uniform rectangular partition of the sensor deployment area.
class RegionGrid : public SpatialPartition {
 public:
  // Partitions `network.bounds()` into cells of roughly `cell_miles` on a
  // side and assigns every sensor to its cell.
  RegionGrid(const SensorNetwork& network, double cell_miles);

  int num_regions() const override { return cols_ * rows_; }
  int cols() const { return cols_; }
  int rows() const { return rows_; }
  double cell_miles() const { return cell_miles_; }
  std::string Name() const override;

  RegionId RegionOfSensor(SensorId sensor) const override;
  RegionId RegionOfPoint(const GeoPoint& p) const;

  // Sensors assigned to `region` (empty for regions with no sensors).
  const std::vector<SensorId>& SensorsInRegion(RegionId region) const override;

  int SensorCount(RegionId region) const {
    return static_cast<int>(SensorsInRegion(region).size());
  }

  // Bounding rectangle of a region cell.
  GeoRect RegionRect(RegionId region) const;

  // Regions overlapping the given rectangle.
  std::vector<RegionId> RegionsInRect(const GeoRect& rect) const override;

 private:
  double origin_x_;
  double origin_y_;
  double cell_miles_;
  int cols_;
  int rows_;
  std::vector<RegionId> region_of_sensor_;
  std::vector<std::vector<SensorId>> sensors_in_region_;
};

}  // namespace atypical

#endif  // ATYPICAL_CPS_REGION_GRID_H_
