// Fundamental identifier and coordinate types of the CPS data model.
//
// Time is discretized into fixed-length windows.  A `WindowId` is an absolute
// window index counted from the dataset epoch (day 0, minute 0), so a window
// id encodes both the day and the time of day; `TimeGrid` converts between
// the representations.  Space is a planar map measured in miles (the paper's
// distance threshold δd is given in miles).
#ifndef ATYPICAL_CPS_TYPES_H_
#define ATYPICAL_CPS_TYPES_H_

#include <cmath>
#include <cstdint>
#include <limits>

namespace atypical {

using SensorId = uint32_t;
using WindowId = uint32_t;
using RegionId = uint32_t;
using HighwayId = uint32_t;
using EventId = uint64_t;
using ClusterId = uint64_t;

inline constexpr SensorId kInvalidSensor =
    std::numeric_limits<SensorId>::max();
inline constexpr RegionId kInvalidRegion =
    std::numeric_limits<RegionId>::max();
inline constexpr EventId kNoEvent = 0;

// Planar map coordinate in miles.
struct GeoPoint {
  double x = 0.0;
  double y = 0.0;

  friend bool operator==(const GeoPoint& a, const GeoPoint& b) {
    return a.x == b.x && a.y == b.y;
  }
};

inline double DistanceMiles(const GeoPoint& a, const GeoPoint& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

// Axis-aligned spatial rectangle (used for query regions W).
struct GeoRect {
  double min_x = 0.0;
  double min_y = 0.0;
  double max_x = 0.0;
  double max_y = 0.0;

  bool Contains(const GeoPoint& p) const {
    return p.x >= min_x && p.x <= max_x && p.y >= min_y && p.y <= max_y;
  }
  double Width() const { return max_x - min_x; }
  double Height() const { return max_y - min_y; }
};

// The time discretization of a dataset: length of one window in minutes.
// Converts absolute WindowId <-> (day, window-of-day, minute-of-day).
class TimeGrid {
 public:
  TimeGrid() : window_minutes_(5) {}
  explicit TimeGrid(int window_minutes) : window_minutes_(window_minutes) {}

  int window_minutes() const { return window_minutes_; }
  int WindowsPerDay() const { return 1440 / window_minutes_; }

  int DayOfWindow(WindowId w) const {
    return static_cast<int>(w) / WindowsPerDay();
  }
  int WindowOfDay(WindowId w) const {
    return static_cast<int>(w) % WindowsPerDay();
  }
  int MinuteOfDay(WindowId w) const {
    return WindowOfDay(w) * window_minutes_;
  }
  WindowId MakeWindow(int day, int window_of_day) const {
    return static_cast<WindowId>(day) * WindowsPerDay() + window_of_day;
  }
  // Absolute start minute of the window since epoch.
  int64_t StartMinute(WindowId w) const {
    return static_cast<int64_t>(w) * window_minutes_;
  }
  // Def. 1's interval(): the gap in minutes between the two windows as time
  // intervals — 0 for the same or adjacent windows, growing by the window
  // length per step.  (Using start-to-start distance instead would make
  // adjacent windows "unrelated" whenever δt <= window length, splitting
  // every event at each window boundary.)
  int64_t IntervalMinutes(WindowId a, WindowId b) const {
    int64_t d = StartMinute(a) - StartMinute(b);
    if (d < 0) d = -d;
    return d <= window_minutes_ ? 0 : d - window_minutes_;
  }

  friend bool operator==(const TimeGrid& a, const TimeGrid& b) {
    return a.window_minutes_ == b.window_minutes_;
  }

 private:
  int window_minutes_;
};

// Half-open absolute window range [begin, end).
struct WindowRange {
  WindowId begin = 0;
  WindowId end = 0;

  bool Contains(WindowId w) const { return w >= begin && w < end; }
  uint32_t size() const { return end > begin ? end - begin : 0; }
  bool empty() const { return end <= begin; }
};

// Inclusive day range [first_day, last_day] (query time ranges T are given
// in whole days, as in the paper's experiments).
struct DayRange {
  int first_day = 0;
  int last_day = -1;

  int NumDays() const {
    return last_day >= first_day ? last_day - first_day + 1 : 0;
  }
  bool ContainsDay(int day) const {
    return day >= first_day && day <= last_day;
  }
  WindowRange ToWindows(const TimeGrid& grid) const {
    if (NumDays() <= 0) return WindowRange{};
    return WindowRange{grid.MakeWindow(first_day, 0),
                       grid.MakeWindow(last_day + 1, 0)};
  }
};

}  // namespace atypical

#endif  // ATYPICAL_CPS_TYPES_H_
