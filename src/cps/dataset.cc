#include "cps/dataset.h"

namespace atypical {

int64_t Dataset::num_atypical() const {
  int64_t count = 0;
  for (const Reading& r : readings_) {
    if (r.is_atypical()) ++count;
  }
  return count;
}

double Dataset::atypical_fraction() const {
  if (readings_.empty()) return 0.0;
  return static_cast<double>(num_atypical()) /
         static_cast<double>(readings_.size());
}

double Dataset::total_severity_minutes() const {
  double total = 0.0;
  for (const Reading& r : readings_)
    total += static_cast<double>(r.atypical_minutes);
  return total;
}

std::vector<AtypicalRecord> Dataset::ExtractAtypicalRecords() const {
  std::vector<AtypicalRecord> out;
  for (const Reading& r : readings_) {
    if (r.is_atypical()) {
      out.push_back(AtypicalRecord{r.sensor, r.window, r.atypical_minutes,
                                   r.true_event});
    }
  }
  return out;
}

}  // namespace atypical
