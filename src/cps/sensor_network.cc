#include "cps/sensor_network.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace atypical {

const char* DistanceMetricName(DistanceMetric metric) {
  switch (metric) {
    case DistanceMetric::kEuclidean:
      return "euclidean";
    case DistanceMetric::kRoadNetwork:
      return "road";
  }
  return "unknown";
}

SensorNetwork SensorNetwork::Place(const RoadNetwork& roads,
                                   const SensorNetworkConfig& config) {
  CHECK_GT(config.target_num_sensors, 0);
  CHECK(!roads.highways().empty());

  SensorNetwork network;
  network.bounds_ = roads.bounds();
  network.spacing_miles_ =
      roads.total_length_miles() / config.target_num_sensors;
  CHECK_GT(network.spacing_miles_, 0.0);

  network.by_highway_.resize(roads.highways().size());
  for (const Highway& hw : roads.highways()) {
    // One sensor every `spacing` miles, centered within the highway so both
    // ends get similar coverage.
    const int count =
        std::max(1, static_cast<int>(hw.length_miles / network.spacing_miles_));
    const double step = hw.length_miles / count;
    SensorId prev = kInvalidSensor;
    for (int i = 0; i < count; ++i) {
      const double mile = (i + 0.5) * step;
      Sensor s;
      s.id = static_cast<SensorId>(network.sensors_.size());
      s.location = hw.PointAtMile(mile);
      s.highway = hw.id;
      s.mile_post = mile;
      s.upstream = prev;
      if (prev != kInvalidSensor) network.sensors_[prev].downstream = s.id;
      prev = s.id;
      network.by_highway_[hw.id].push_back(s.id);
      network.sensors_.push_back(s);
    }
  }
  return network;
}

const Sensor& SensorNetwork::sensor(SensorId id) const {
  CHECK_LT(static_cast<size_t>(id), sensors_.size());
  return sensors_[id];
}

const std::vector<SensorId>& SensorNetwork::SensorsOnHighway(
    HighwayId highway) const {
  CHECK_LT(static_cast<size_t>(highway), by_highway_.size());
  return by_highway_[highway];
}

std::vector<SensorId> SensorNetwork::SensorsNear(const GeoPoint& center,
                                                 double radius_miles) const {
  std::vector<SensorId> out;
  for (const Sensor& s : sensors_) {
    if (DistanceMiles(s.location, center) <= radius_miles) out.push_back(s.id);
  }
  return out;
}

double SensorNetwork::Distance(SensorId a, SensorId b,
                               DistanceMetric metric) const {
  const Sensor& sa = sensor(a);
  const Sensor& sb = sensor(b);
  switch (metric) {
    case DistanceMetric::kEuclidean:
      return DistanceMiles(sa.location, sb.location);
    case DistanceMetric::kRoadNetwork:
      if (sa.highway != sb.highway) return HUGE_VAL;
      return std::abs(sa.mile_post - sb.mile_post);
  }
  LOG(FATAL) << "unknown DistanceMetric";
  return HUGE_VAL;
}

std::vector<SensorId> SensorNetwork::SensorsInRect(const GeoRect& rect) const {
  std::vector<SensorId> out;
  SensorsInRect(rect, &out);
  return out;
}

void SensorNetwork::SensorsInRect(const GeoRect& rect,
                                  std::vector<SensorId>* out) const {
  out->clear();
  // sensors_ is ordered by id (Place assigns ids sequentially), so the
  // output is sorted without an explicit sort.
  for (const Sensor& s : sensors_) {
    if (rect.Contains(s.location)) out->push_back(s.id);
  }
}

}  // namespace atypical
