#include "storage/writer.h"

#include <fstream>
#include <vector>

#include "storage/format.h"
#include "util/logging.h"

namespace atypical {
namespace storage {

namespace {

// CRC-32 table, computed once.
const uint32_t* CrcTable() {
  static uint32_t table[256];
  static const bool initialized = [] {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
      table[i] = c;
    }
    return true;
  }();
  (void)initialized;  // only the initializer's side effect is needed
  return table;
}

}  // namespace

uint32_t Crc32(const void* data, size_t size) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  const uint32_t* table = CrcTable();
  uint32_t crc = 0xffffffffu;
  for (size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ p[i]) & 0xffu] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

void EncodeFileHeader(const FileHeader& h, uint8_t* out) {
  detail::PutU32(out, h.version);
  detail::PutU32(out + 4, static_cast<uint32_t>(h.month_index));
  detail::PutU32(out + 8, static_cast<uint32_t>(h.first_day));
  detail::PutU32(out + 12, static_cast<uint32_t>(h.num_days));
  detail::PutU32(out + 16, static_cast<uint32_t>(h.num_sensors));
  detail::PutU32(out + 20, static_cast<uint32_t>(h.window_minutes));
  detail::PutU32(out + 24, h.block_records);
}

FileHeader DecodeFileHeader(const uint8_t* in) {
  FileHeader h;
  h.version = detail::GetU32(in);
  h.month_index = static_cast<int32_t>(detail::GetU32(in + 4));
  h.first_day = static_cast<int32_t>(detail::GetU32(in + 8));
  h.num_days = static_cast<int32_t>(detail::GetU32(in + 12));
  h.num_sensors = static_cast<int32_t>(detail::GetU32(in + 16));
  h.window_minutes = static_cast<int32_t>(detail::GetU32(in + 20));
  h.block_records = detail::GetU32(in + 24);
  return h;
}

void EncodeBlockHeader(const BlockHeader& h, uint8_t* out) {
  detail::PutU32(out, h.record_count);
  detail::PutU32(out + 4, h.crc32);
}

BlockHeader DecodeBlockHeader(const uint8_t* in) {
  BlockHeader h;
  h.record_count = detail::GetU32(in);
  h.crc32 = detail::GetU32(in + 4);
  return h;
}

void EncodeFooter(const Footer& f, uint8_t* out) {
  detail::PutU32(out, f.magic);
  detail::PutU64(out + 4, f.total_records);
}

Footer DecodeFooter(const uint8_t* in) {
  Footer f;
  f.magic = detail::GetU32(in);
  f.total_records = detail::GetU64(in + 4);
  return f;
}

Result<uint64_t> WriteDataset(const Dataset& dataset, const std::string& path,
                              const WriterOptions& options) {
  if (options.block_records == 0) {
    return InvalidArgumentError("block_records must be positive");
  }
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) return IoError("cannot open for writing: " + path);

  uint64_t bytes = 0;
  auto write = [&](const void* data, size_t size) {
    file.write(static_cast<const char*>(data),
               static_cast<std::streamsize>(size));
    bytes += size;
  };

  write(kMagic, sizeof(kMagic));

  const DatasetMeta& meta = dataset.meta();
  FileHeader header;
  header.month_index = meta.month_index;
  header.first_day = meta.first_day;
  header.num_days = meta.num_days;
  header.num_sensors = meta.num_sensors;
  header.window_minutes = meta.time_grid.window_minutes();
  header.block_records = options.block_records;
  uint8_t header_buf[kFileHeaderBytes];
  EncodeFileHeader(header, header_buf);
  write(header_buf, sizeof(header_buf));

  const std::vector<Reading>& readings = dataset.readings();
  std::vector<uint8_t> payload;
  payload.reserve(static_cast<size_t>(options.block_records) *
                  kWireRecordBytes);
  size_t pos = 0;
  while (pos < readings.size()) {
    const size_t count =
        std::min<size_t>(options.block_records, readings.size() - pos);
    payload.resize(count * kWireRecordBytes);
    for (size_t i = 0; i < count; ++i) {
      EncodeRecord(readings[pos + i], payload.data() + i * kWireRecordBytes);
    }
    BlockHeader block;
    block.record_count = static_cast<uint32_t>(count);
    block.crc32 = Crc32(payload.data(), payload.size());
    uint8_t block_buf[kBlockHeaderBytes];
    EncodeBlockHeader(block, block_buf);
    write(block_buf, sizeof(block_buf));
    write(payload.data(), payload.size());
    pos += count;
  }

  Footer footer;
  footer.total_records = readings.size();
  uint8_t footer_buf[kFooterBytes];
  EncodeFooter(footer, footer_buf);
  write(footer_buf, sizeof(footer_buf));

  file.flush();
  if (!file) return IoError("short write: " + path);
  return bytes;
}

}  // namespace storage
}  // namespace atypical
