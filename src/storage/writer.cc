#include "storage/writer.h"

#include <algorithm>

#include "obs/stats.h"
#include "util/logging.h"

namespace atypical {
namespace storage {

namespace {

// CRC-32 table, computed once.
const uint32_t* CrcTable() {
  static uint32_t table[256];
  static const bool initialized = [] {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
      table[i] = c;
    }
    return true;
  }();
  (void)initialized;  // only the initializer's side effect is needed
  return table;
}

}  // namespace

uint32_t Crc32(const void* data, size_t size) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  const uint32_t* table = CrcTable();
  uint32_t crc = 0xffffffffu;
  for (size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ p[i]) & 0xffu] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

void EncodeFileHeader(const FileHeader& h, uint8_t* out) {
  detail::PutU32(out, h.version);
  detail::PutU32(out + 4, static_cast<uint32_t>(h.month_index));
  detail::PutU32(out + 8, static_cast<uint32_t>(h.first_day));
  detail::PutU32(out + 12, static_cast<uint32_t>(h.num_days));
  detail::PutU32(out + 16, static_cast<uint32_t>(h.num_sensors));
  detail::PutU32(out + 20, static_cast<uint32_t>(h.window_minutes));
  detail::PutU32(out + 24, h.block_records);
}

FileHeader DecodeFileHeader(const uint8_t* in) {
  FileHeader h;
  h.version = detail::GetU32(in);
  h.month_index = static_cast<int32_t>(detail::GetU32(in + 4));
  h.first_day = static_cast<int32_t>(detail::GetU32(in + 8));
  h.num_days = static_cast<int32_t>(detail::GetU32(in + 12));
  h.num_sensors = static_cast<int32_t>(detail::GetU32(in + 16));
  h.window_minutes = static_cast<int32_t>(detail::GetU32(in + 20));
  h.block_records = detail::GetU32(in + 24);
  return h;
}

void EncodeBlockHeader(const BlockHeader& h, uint8_t* out) {
  detail::PutU32(out, h.record_count);
  detail::PutU32(out + 4, h.crc32);
}

BlockHeader DecodeBlockHeader(const uint8_t* in) {
  BlockHeader h;
  h.record_count = detail::GetU32(in);
  h.crc32 = detail::GetU32(in + 4);
  return h;
}

void EncodeFooter(const Footer& f, uint8_t* out) {
  detail::PutU32(out, f.magic);
  detail::PutU64(out + 4, f.total_records);
}

Footer DecodeFooter(const uint8_t* in) {
  Footer f;
  f.magic = detail::GetU32(in);
  f.total_records = detail::GetU64(in + 4);
  return f;
}

Result<DatasetWriter> DatasetWriter::Open(const std::string& path,
                                          const DatasetMeta& meta,
                                          const WriterOptions& options) {
  if (options.block_records == 0) {
    return InvalidArgumentError("block_records must be positive");
  }
  DatasetWriter w;
  w.path_ = path;
  w.options_ = options;
  w.file_ = std::make_unique<std::ofstream>(path,
                                            std::ios::binary | std::ios::trunc);
  if (!*w.file_) return IoError("cannot open for writing: " + path);

  FileHeader header;
  header.month_index = meta.month_index;
  header.first_day = meta.first_day;
  header.num_days = meta.num_days;
  header.num_sensors = meta.num_sensors;
  header.window_minutes = meta.time_grid.window_minutes();
  header.block_records = options.block_records;

  // Magic + header go out as one flushed write: a file either has a complete
  // preamble or fails Open on the read side; no block starts before this is
  // durable.
  uint8_t preamble[sizeof(kMagic) + kFileHeaderBytes];
  std::memcpy(preamble, kMagic, sizeof(kMagic));
  EncodeFileHeader(header, preamble + sizeof(kMagic));
  ATYPICAL_RETURN_IF_ERROR(w.WriteRaw(preamble, sizeof(preamble)));
  return w;
}

Status DatasetWriter::WriteRaw(const uint8_t* data, size_t size) {
  file_->write(reinterpret_cast<const char*>(data),  // NOLINT: byte I/O
               static_cast<std::streamsize>(size));
  file_->flush();
  if (!*file_) {
    failed_ = true;
    return IoError("short write: " + path_);
  }
  bytes_ += size;
  return Status::Ok();
}

Status DatasetWriter::WriteBlock(size_t count) {
  CHECK_GT(count, 0u);
  CHECK_LE(count, pending_.size());
  // Assemble the whole block — header and payload — in memory first.  The
  // CRC is computed before a single byte reaches the file, so the on-disk
  // prefix is always a sequence of self-validating blocks plus at most one
  // torn tail.
  block_buf_.resize(kBlockHeaderBytes + count * kWireRecordBytes);
  uint8_t* payload = block_buf_.data() + kBlockHeaderBytes;
  for (size_t i = 0; i < count; ++i) {
    EncodeRecord(pending_[i], payload + i * kWireRecordBytes);
  }
  BlockHeader block;
  block.record_count = static_cast<uint32_t>(count);
  block.crc32 = Crc32(payload, count * kWireRecordBytes);
  EncodeBlockHeader(block, block_buf_.data());

  if (options_.faults != nullptr) {
    Status scheduled = options_.faults->OnOp("write block");
    if (!scheduled.ok()) {
      // Simulate a crash mid-write: half the block reaches the file, then
      // the error surfaces.  The salvage reader must recover everything
      // before this block.
      static obs::Counter* const torn =
          obs::Registry()->GetCounter("fault.torn_writes");
      torn->Add(1);
      (void)WriteRaw(block_buf_.data(), block_buf_.size() / 2);  // torn tail is the point
      failed_ = true;
      return scheduled;
    }
  }

  ATYPICAL_RETURN_IF_ERROR(WriteRaw(block_buf_.data(), block_buf_.size()));
  total_records_ += count;
  pending_.erase(pending_.begin(),
                 pending_.begin() + static_cast<ptrdiff_t>(count));
  return Status::Ok();
}

Status DatasetWriter::Append(const std::vector<Reading>& readings) {
  if (failed_) {
    return FailedPreconditionError("writer already failed: " + path_);
  }
  if (finished_) {
    return FailedPreconditionError("writer already finished: " + path_);
  }
  pending_.insert(pending_.end(), readings.begin(), readings.end());
  while (pending_.size() >= options_.block_records) {
    ATYPICAL_RETURN_IF_ERROR(WriteBlock(options_.block_records));
  }
  return Status::Ok();
}

Status DatasetWriter::Finish() {
  if (failed_) {
    return FailedPreconditionError("writer already failed: " + path_);
  }
  if (finished_) {
    return FailedPreconditionError("writer already finished: " + path_);
  }
  if (!pending_.empty()) {
    ATYPICAL_RETURN_IF_ERROR(WriteBlock(pending_.size()));
  }
  if (options_.faults != nullptr) {
    Status scheduled = options_.faults->OnOp("write footer");
    if (!scheduled.ok()) {
      failed_ = true;
      return scheduled;  // footer never lands: salvage reports footer_missing
    }
  }
  Footer footer;
  footer.total_records = total_records_;
  uint8_t footer_buf[kFooterBytes];
  EncodeFooter(footer, footer_buf);
  ATYPICAL_RETURN_IF_ERROR(WriteRaw(footer_buf, sizeof(footer_buf)));
  finished_ = true;
  return Status::Ok();
}

Result<uint64_t> WriteDataset(const Dataset& dataset, const std::string& path,
                              const WriterOptions& options) {
  Result<DatasetWriter> writer =
      DatasetWriter::Open(path, dataset.meta(), options);
  if (!writer.ok()) return writer.status();
  ATYPICAL_RETURN_IF_ERROR(writer->Append(dataset.readings()));
  ATYPICAL_RETURN_IF_ERROR(writer->Finish());
  return writer->bytes_written();
}

}  // namespace storage
}  // namespace atypical
