// Structure-aware mutation engine for the on-disk block format.
//
// Random byte fuzzing mostly produces inputs the reader rejects at the first
// CRC check; the interesting salvage paths (implausible headers, forged
// counts, replayed blocks, torn tails) need mutations aimed at the format's
// own structure.  `BlockMutator` parses the geometry of a *pristine* dataset
// image once — block offsets, record counts, footer position — and then
// derives damaged variants by composing the format-agnostic primitives of
// `util/fault.h` against that geometry: scramble a specific header field,
// flip a payload bit in block 3, splice a whole block out, replay one,
// truncate mid-structure.
//
// Mutations are fully determined by (pristine image, seed, count), so a
// crashing input is reproducible from two integers — that is the corpus
// format of fuzz/corpus/regressions.txt.
#ifndef ATYPICAL_STORAGE_BLOCK_MUTATOR_H_
#define ATYPICAL_STORAGE_BLOCK_MUTATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/format.h"
#include "util/fault.h"

namespace atypical {
namespace storage {

enum class MutationKind : uint8_t {
  kMagicBit,          // flip a bit in the 8-byte magic
  kFileHeaderField,   // scramble one u32 field of the file header
  kBlockCount,        // scramble a block header's record_count
  kBlockCrc,          // scramble a block header's crc32
  kPayloadBit,        // flip one bit somewhere in a block payload
  kRecordField,       // scramble one u32-aligned field of one record
  kFooterBit,         // flip a bit in the footer
  kBlockSplice,       // remove one whole block (lost write)
  kBlockDuplicate,    // replay one whole block (CRC still passes!)
  kTruncateTail,      // cut the image at a random byte (crash tail)
};

const char* MutationKindName(MutationKind kind);

struct AppliedMutation {
  MutationKind kind;
  uint64_t block = 0;  // target block index, when the kind has one
  size_t offset = 0;   // byte offset touched (pre-mutation coordinates)
};

// Human-readable "kind@offset(block=N)" trail for fuzz failure reports.
std::string DescribeMutations(const std::vector<AppliedMutation>& applied);

class BlockMutator {
 public:
  // `pristine` must be a well-formed dataset image (as produced by
  // DatasetWriter); the constructor CHECK-fails otherwise — the mutator's
  // whole premise is that it knows the true geometry.
  explicit BlockMutator(std::vector<uint8_t> pristine);

  size_t num_blocks() const { return blocks_.size(); }
  const std::vector<uint8_t>& pristine() const { return pristine_; }

  // Returns a copy of the pristine image with `count` seeded mutations.
  // Structure-preserving mutations land first (their targets come from the
  // pristine geometry); at most one length-changing mutation (splice /
  // duplicate / truncate) is applied, last, so earlier offsets stay valid.
  // If `applied` is non-null it receives the mutation trail.
  std::vector<uint8_t> Mutate(uint64_t seed, int count,
                              std::vector<AppliedMutation>* applied = nullptr);

 private:
  struct BlockSpan {
    size_t offset = 0;  // of the BlockHeader
    uint32_t record_count = 0;
    size_t size() const {
      return kBlockHeaderBytes +
             static_cast<size_t>(record_count) * kWireRecordBytes;
    }
  };

  std::vector<uint8_t> pristine_;
  std::vector<BlockSpan> blocks_;
  size_t footer_offset_ = 0;
};

}  // namespace storage
}  // namespace atypical

#endif  // ATYPICAL_STORAGE_BLOCK_MUTATOR_H_
