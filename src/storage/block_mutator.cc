#include "storage/block_mutator.h"

#include <cstring>
#include <iterator>
#include <utility>

#include "util/logging.h"
#include "util/random.h"
#include "util/string_util.h"

namespace atypical {
namespace storage {

namespace {

constexpr MutationKind kAllKinds[] = {
    MutationKind::kMagicBit,      MutationKind::kFileHeaderField,
    MutationKind::kBlockCount,    MutationKind::kBlockCrc,
    MutationKind::kPayloadBit,    MutationKind::kRecordField,
    MutationKind::kFooterBit,     MutationKind::kBlockSplice,
    MutationKind::kBlockDuplicate, MutationKind::kTruncateTail,
};

bool ChangesLength(MutationKind kind) {
  return kind == MutationKind::kBlockSplice ||
         kind == MutationKind::kBlockDuplicate ||
         kind == MutationKind::kTruncateTail;
}

bool NeedsBlock(MutationKind kind) {
  switch (kind) {
    case MutationKind::kBlockCount:
    case MutationKind::kBlockCrc:
    case MutationKind::kPayloadBit:
    case MutationKind::kRecordField:
    case MutationKind::kBlockSplice:
    case MutationKind::kBlockDuplicate:
      return true;
    default:
      return false;
  }
}

}  // namespace

const char* MutationKindName(MutationKind kind) {
  switch (kind) {
    case MutationKind::kMagicBit:
      return "magic_bit";
    case MutationKind::kFileHeaderField:
      return "file_header_field";
    case MutationKind::kBlockCount:
      return "block_count";
    case MutationKind::kBlockCrc:
      return "block_crc";
    case MutationKind::kPayloadBit:
      return "payload_bit";
    case MutationKind::kRecordField:
      return "record_field";
    case MutationKind::kFooterBit:
      return "footer_bit";
    case MutationKind::kBlockSplice:
      return "block_splice";
    case MutationKind::kBlockDuplicate:
      return "block_duplicate";
    case MutationKind::kTruncateTail:
      return "truncate_tail";
  }
  return "unknown";
}

std::string DescribeMutations(const std::vector<AppliedMutation>& applied) {
  std::string out;
  for (const AppliedMutation& m : applied) {
    if (!out.empty()) out += ", ";
    out += StrPrintf("%s@%zu(block=%llu)", MutationKindName(m.kind), m.offset,
                     (unsigned long long)m.block);
  }
  return out;
}

BlockMutator::BlockMutator(std::vector<uint8_t> pristine)
    : pristine_(std::move(pristine)) {
  // Walk the image once, trusting nothing implicitly: a malformed "pristine"
  // input means the caller's writer is broken, which a CHECK should surface.
  CHECK_GE(pristine_.size(), sizeof(kMagic) + kFileHeaderBytes + kFooterBytes);
  CHECK(std::memcmp(pristine_.data(), kMagic, sizeof(kMagic)) == 0);
  size_t pos = sizeof(kMagic) + kFileHeaderBytes;
  while (true) {
    CHECK_LE(pos + kBlockHeaderBytes, pristine_.size());
    const uint32_t first_word = detail::GetU32(pristine_.data() + pos);
    if (first_word == kFooterMagic) {
      CHECK_EQ(pos + kFooterBytes, pristine_.size());
      footer_offset_ = pos;
      return;
    }
    const BlockHeader header = DecodeBlockHeader(pristine_.data() + pos);
    CHECK_GT(header.record_count, 0u);
    BlockSpan span;
    span.offset = pos;
    span.record_count = header.record_count;
    CHECK_LE(pos + span.size(), pristine_.size());
    blocks_.push_back(span);
    pos += span.size();
  }
}

std::vector<uint8_t> BlockMutator::Mutate(
    uint64_t seed, int count, std::vector<AppliedMutation>* applied) {
  CHECK_GT(count, 0);
  Rng rng(seed);
  FaultPlan plan(rng.Next64());
  std::vector<uint8_t> image = pristine_;

  // Draw the mutation set up front: structure-preserving kinds apply in draw
  // order against pristine offsets; at most one length-changing kind
  // survives and goes last, so every earlier offset is still meaningful.
  std::vector<MutationKind> kinds;
  MutationKind length_kind = MutationKind::kTruncateTail;
  bool have_length_change = false;
  for (int i = 0; i < count; ++i) {
    MutationKind kind;
    do {
      kind = kAllKinds[rng.UniformInt(std::size(kAllKinds))];
    } while ((ChangesLength(kind) && have_length_change) ||
             (NeedsBlock(kind) && blocks_.empty()));
    if (ChangesLength(kind)) {
      have_length_change = true;
      length_kind = kind;
    } else {
      kinds.push_back(kind);
    }
  }
  if (have_length_change) kinds.push_back(length_kind);

  for (const MutationKind kind : kinds) {
    AppliedMutation m;
    m.kind = kind;
    const uint64_t block_index =
        blocks_.empty() ? 0 : rng.UniformInt(blocks_.size());
    const BlockSpan* block = blocks_.empty() ? nullptr : &blocks_[block_index];
    m.block = block_index;
    switch (kind) {
      case MutationKind::kMagicBit:
        m.offset = plan.FlipBit(&image, 0, sizeof(kMagic));
        break;
      case MutationKind::kFileHeaderField: {
        const size_t field = static_cast<size_t>(rng.UniformInt(7));
        m.offset = sizeof(kMagic) + field * 4;
        (void)plan.ScrambleU32(&image, m.offset);  // value itself is irrelevant
        break;
      }
      case MutationKind::kBlockCount:
        m.offset = block->offset;
        (void)plan.ScrambleU32(&image, m.offset);  // value itself is irrelevant
        break;
      case MutationKind::kBlockCrc:
        m.offset = block->offset + 4;
        (void)plan.ScrambleU32(&image, m.offset);  // value itself is irrelevant
        break;
      case MutationKind::kPayloadBit:
        m.offset = plan.FlipBit(&image, block->offset + kBlockHeaderBytes,
                                block->offset + block->size());
        break;
      case MutationKind::kRecordField: {
        const uint64_t record = rng.UniformInt(block->record_count);
        const size_t field = static_cast<size_t>(rng.UniformInt(7));
        m.offset = block->offset + kBlockHeaderBytes +
                   static_cast<size_t>(record) * kWireRecordBytes + field * 4;
        (void)plan.ScrambleU32(&image, m.offset);  // value itself is irrelevant
        break;
      }
      case MutationKind::kFooterBit:
        m.offset = plan.FlipBit(&image, footer_offset_,
                                footer_offset_ + kFooterBytes);
        break;
      case MutationKind::kBlockSplice:
        m.offset = block->offset;
        FaultPlan::SpliceOut(&image, block->offset, block->size());
        break;
      case MutationKind::kBlockDuplicate:
        m.offset = block->offset;
        FaultPlan::DuplicateAt(&image, block->offset, block->size());
        break;
      case MutationKind::kTruncateTail:
        m.offset = plan.TruncateTail(&image);
        break;
    }
    if (applied != nullptr) applied->push_back(m);
  }
  return image;
}

}  // namespace storage
}  // namespace atypical
