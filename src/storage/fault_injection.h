// Operation-level I/O fault injection for the storage layer.
//
// An `IoFaultSchedule` decides, deterministically, which I/O operations of a
// run fail.  `DatasetWriter` and `DatasetReader` consult the schedule (when
// `WriterOptions::faults` / `ReaderOptions::faults` is set) once per block
// operation; a scheduled fault surfaces as a mid-stream `kIoError` Status —
// and, on the write side, as a *torn* block: a prefix of the block's bytes
// reaches the file before the error returns, exactly what a crash or full
// disk leaves behind.  Tests and the fuzz campaigns use this to drive the
// ingest→integration→forest paths against transient failure without mocking
// the filesystem.
//
// Every injected fault is tallied in the `fault.injected_io_errors` obs
// counter (and `fault.torn_writes` for writer tears), so a campaign's damage
// is visible in the same stats snapshot as the pipeline's health counters.
#ifndef ATYPICAL_STORAGE_FAULT_INJECTION_H_
#define ATYPICAL_STORAGE_FAULT_INJECTION_H_

#include <cstdint>
#include <set>
#include <string>

#include "util/random.h"
#include "util/status.h"

namespace atypical {
namespace storage {

class IoFaultSchedule {
 public:
  // Fails each operation independently with probability `p` (seeded, so a
  // campaign replays bit-identically).
  IoFaultSchedule(uint64_t seed, double p);

  // Fails exactly the operations at the given 0-based indices.
  static IoFaultSchedule FailAt(std::set<uint64_t> fail_ops);

  // Consulted once per I/O operation, in order.  Returns OK to proceed, or
  // an `kIoError` Status naming `what` when the schedule fires.
  [[nodiscard]] Status OnOp(const std::string& what);

  uint64_t ops_seen() const { return ops_seen_; }
  uint64_t failures_injected() const { return failures_injected_; }

 private:
  explicit IoFaultSchedule(std::set<uint64_t> fail_ops);

  Rng rng_;
  double probability_ = 0.0;
  bool use_fail_ops_ = false;
  std::set<uint64_t> fail_ops_;
  uint64_t ops_seen_ = 0;
  uint64_t failures_injected_ = 0;
};

}  // namespace storage
}  // namespace atypical

#endif  // ATYPICAL_STORAGE_FAULT_INJECTION_H_
