// Dataset file writer.
//
// `DatasetWriter` streams a dataset to disk block by block with an explicit
// crash-consistency contract: each block is assembled fully in memory (CRC
// over the payload computed *before* the header is emitted), written as one
// contiguous header+payload write, and flushed to the OS before the next
// block starts.  A crash — or an injected fault from
// `WriterOptions::faults` — therefore tears at most the final in-flight
// block, and the salvage reader (storage/reader.h) recovers every
// previously flushed block intact.  The sweep test in
// tests/storage_writer_crash_test.cc truncates the file at every byte
// boundary of the last block to lock this in.
//
// `WriteDataset` is the one-shot convenience wrapper over the streaming
// class.
#ifndef ATYPICAL_STORAGE_WRITER_H_
#define ATYPICAL_STORAGE_WRITER_H_

#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "cps/dataset.h"
#include "storage/fault_injection.h"
#include "storage/format.h"
#include "util/status.h"

namespace atypical {
namespace storage {

struct WriterOptions {
  uint32_t block_records = kDefaultBlockRecords;
  // Test-only operation-level fault injection: consulted once per block
  // write and once for the footer.  A scheduled fault leaves a torn block —
  // a prefix of the block's bytes — on disk and surfaces as kIoError.
  IoFaultSchedule* faults = nullptr;
};

class DatasetWriter {
 public:
  // Creates `path` (truncating) and writes the magic + file header.
  [[nodiscard]] static Result<DatasetWriter> Open(const std::string& path,
                                                  const DatasetMeta& meta,
                                                  const WriterOptions& options = {});

  DatasetWriter(DatasetWriter&&) = default;
  DatasetWriter& operator=(DatasetWriter&&) = default;

  // Buffers `readings`; every full block of `options.block_records` records
  // is written and flushed immediately.  After a non-OK return the writer is
  // dead (the file holds a recoverable prefix) and further calls fail.
  [[nodiscard]] Status Append(const std::vector<Reading>& readings);

  // Writes the final partial block (if any) and the footer, then flushes.
  [[nodiscard]] Status Finish();

  uint64_t bytes_written() const { return bytes_; }
  uint64_t records_written() const { return total_records_; }

 private:
  DatasetWriter() = default;

  // Encodes `count` readings from `pending_` into one block and writes
  // header+payload as a single flushed write.
  Status WriteBlock(size_t count);
  Status WriteRaw(const uint8_t* data, size_t size);

  std::unique_ptr<std::ofstream> file_;
  std::string path_;
  WriterOptions options_;
  std::vector<Reading> pending_;
  std::vector<uint8_t> block_buf_;  // header + payload scratch
  uint64_t total_records_ = 0;
  uint64_t bytes_ = 0;
  bool finished_ = false;
  bool failed_ = false;
};

// Writes `dataset` to `path` in the block format described in format.h.
// Returns the number of bytes written.
[[nodiscard]] Result<uint64_t> WriteDataset(const Dataset& dataset,
                                            const std::string& path,
                                            const WriterOptions& options = {});

}  // namespace storage
}  // namespace atypical

#endif  // ATYPICAL_STORAGE_WRITER_H_
