// Dataset file writer.
#ifndef ATYPICAL_STORAGE_WRITER_H_
#define ATYPICAL_STORAGE_WRITER_H_

#include <string>

#include "cps/dataset.h"
#include "storage/format.h"
#include "util/status.h"

namespace atypical {
namespace storage {

struct WriterOptions {
  uint32_t block_records = kDefaultBlockRecords;
};

// Writes `dataset` to `path` in the block format described in format.h.
// Returns the number of bytes written.
[[nodiscard]] Result<uint64_t> WriteDataset(const Dataset& dataset,
                                            const std::string& path,
                                            const WriterOptions& options = {});

}  // namespace storage
}  // namespace atypical

#endif  // ATYPICAL_STORAGE_WRITER_H_
