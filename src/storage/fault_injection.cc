#include "storage/fault_injection.h"

#include <utility>

#include "obs/stats.h"
#include "util/string_util.h"

namespace atypical {
namespace storage {

IoFaultSchedule::IoFaultSchedule(uint64_t seed, double p)
    : rng_(seed), probability_(p) {}

IoFaultSchedule::IoFaultSchedule(std::set<uint64_t> fail_ops)
    : rng_(0), use_fail_ops_(true), fail_ops_(std::move(fail_ops)) {}

IoFaultSchedule IoFaultSchedule::FailAt(std::set<uint64_t> fail_ops) {
  return IoFaultSchedule(std::move(fail_ops));
}

Status IoFaultSchedule::OnOp(const std::string& what) {
  const uint64_t op = ops_seen_++;
  const bool fire = use_fail_ops_ ? fail_ops_.contains(op)
                                  : rng_.Bernoulli(probability_);
  if (!fire) return Status::Ok();
  ++failures_injected_;
  static obs::Counter* const injected =
      obs::Registry()->GetCounter("fault.injected_io_errors");
  injected->Add(1);
  return IoError(StrPrintf("injected fault at op %llu: %s",
                           (unsigned long long)op, what.c_str()));
}

}  // namespace storage
}  // namespace atypical
