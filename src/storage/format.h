// On-disk dataset format.
//
// Layout (all integers little-endian):
//   magic "ATYPDS01"
//   FileHeader   { version, month, first_day, num_days, num_sensors,
//                  window_minutes, block_records }
//   Block*       { BlockHeader { record_count, crc32 },
//                  record_count * kWireRecordBytes payload }
//   Footer       { kFooterMagic, total_record_count }
//
// Records are fixed 28-byte encodings of cps::Reading, written field by
// field so the format does not depend on struct layout.  Blocks let the
// reader stream a month without loading it whole, and each block carries a
// CRC32 of its payload so corruption is detected and localized.
#ifndef ATYPICAL_STORAGE_FORMAT_H_
#define ATYPICAL_STORAGE_FORMAT_H_

#include <cstdint>
#include <cstring>

#include "cps/record.h"

namespace atypical {
namespace storage {

inline constexpr char kMagic[8] = {'A', 'T', 'Y', 'P', 'D', 'S', '0', '1'};
inline constexpr uint32_t kFooterMagic = 0x53444e45;  // "ENDS"
inline constexpr uint32_t kDefaultBlockRecords = 65536;
inline constexpr size_t kWireRecordBytes = 28;
inline constexpr size_t kFileHeaderBytes = 28;
inline constexpr size_t kBlockHeaderBytes = 8;
inline constexpr size_t kFooterBytes = 12;

// File header following the 8-byte magic.
struct FileHeader {
  uint32_t version = 1;
  int32_t month_index = 0;
  int32_t first_day = 0;
  int32_t num_days = 0;
  int32_t num_sensors = 0;
  int32_t window_minutes = 5;
  uint32_t block_records = kDefaultBlockRecords;
};

struct BlockHeader {
  uint32_t record_count = 0;
  uint32_t crc32 = 0;
};

struct Footer {
  uint32_t magic = kFooterMagic;
  uint64_t total_records = 0;
};

namespace detail {

inline void PutU32(uint8_t* p, uint32_t v) {
  p[0] = static_cast<uint8_t>(v);
  p[1] = static_cast<uint8_t>(v >> 8);
  p[2] = static_cast<uint8_t>(v >> 16);
  p[3] = static_cast<uint8_t>(v >> 24);
}
inline void PutU64(uint8_t* p, uint64_t v) {
  PutU32(p, static_cast<uint32_t>(v));
  PutU32(p + 4, static_cast<uint32_t>(v >> 32));
}
inline void PutF32(uint8_t* p, float v) {
  uint32_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU32(p, bits);
}
inline uint32_t GetU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
         static_cast<uint32_t>(p[2]) << 16 | static_cast<uint32_t>(p[3]) << 24;
}
inline uint64_t GetU64(const uint8_t* p) {
  return static_cast<uint64_t>(GetU32(p)) |
         static_cast<uint64_t>(GetU32(p + 4)) << 32;
}
inline float GetF32(const uint8_t* p) {
  const uint32_t bits = GetU32(p);
  float v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

}  // namespace detail

// Encodes a Reading into exactly kWireRecordBytes at `out`.
inline void EncodeRecord(const Reading& r, uint8_t* out) {
  detail::PutU32(out, r.sensor);
  detail::PutU32(out + 4, r.window);
  detail::PutF32(out + 8, r.speed_mph);
  detail::PutF32(out + 12, r.occupancy);
  detail::PutF32(out + 16, r.atypical_minutes);
  detail::PutU64(out + 20, r.true_event);
}

// Decodes a Reading from kWireRecordBytes at `in`.
inline Reading DecodeRecord(const uint8_t* in) {
  Reading r;
  r.sensor = detail::GetU32(in);
  r.window = detail::GetU32(in + 4);
  r.speed_mph = detail::GetF32(in + 8);
  r.occupancy = detail::GetF32(in + 12);
  r.atypical_minutes = detail::GetF32(in + 16);
  r.true_event = detail::GetU64(in + 20);
  return r;
}

void EncodeFileHeader(const FileHeader& h, uint8_t* out);  // kFileHeaderBytes
FileHeader DecodeFileHeader(const uint8_t* in);
void EncodeBlockHeader(const BlockHeader& h, uint8_t* out);
BlockHeader DecodeBlockHeader(const uint8_t* in);
void EncodeFooter(const Footer& f, uint8_t* out);  // kFooterBytes
Footer DecodeFooter(const uint8_t* in);

// CRC-32 (IEEE 802.3 polynomial, reflected) of `size` bytes.
uint32_t Crc32(const void* data, size_t size);

}  // namespace storage
}  // namespace atypical

#endif  // ATYPICAL_STORAGE_FORMAT_H_
