#include "storage/cluster_io.h"

#include <cstring>
#include <fstream>

#include "storage/format.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace atypical {
namespace storage {

namespace {

constexpr char kClusterMagic[8] = {'A', 'T', 'Y', 'P', 'C', 'F', '0', '1'};

// Level tags: days are stored as-is (>= 0); weeks and months use disjoint
// negative ranges.
constexpr int32_t kWeekBias = 1'000'000;
constexpr int32_t kMonthBias = 2'000'000;

int32_t WeekTag(int week) { return -(week + 1) - kWeekBias; }
int32_t MonthTag(int month) { return -(month + 1) - kMonthBias; }
bool IsWeekTag(int32_t tag) { return tag <= -kWeekBias && tag > -kMonthBias; }
bool IsMonthTag(int32_t tag) { return tag <= -kMonthBias; }
int WeekFromTag(int32_t tag) { return -(tag + kWeekBias) - 1; }
int MonthFromTag(int32_t tag) { return -(tag + kMonthBias) - 1; }

// Append-only byte buffer with little-endian primitives.
class Buffer {
 public:
  void PutU8(uint8_t v) { bytes_.push_back(v); }
  void PutU32(uint32_t v) {
    uint8_t tmp[4];
    detail::PutU32(tmp, v);
    bytes_.insert(bytes_.end(), tmp, tmp + 4);
  }
  void PutI32(int32_t v) { PutU32(static_cast<uint32_t>(v)); }
  void PutU64(uint64_t v) {
    uint8_t tmp[8];
    detail::PutU64(tmp, v);
    bytes_.insert(bytes_.end(), tmp, tmp + 8);
  }
  void PutF64(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    PutU64(bits);
  }
  const std::vector<uint8_t>& bytes() const { return bytes_; }

 private:
  std::vector<uint8_t> bytes_;
};

// Bounds-checked little-endian reader.
class Cursor {
 public:
  Cursor(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  bool ok() const { return ok_; }
  size_t remaining() const { return size_ - pos_; }

  uint8_t GetU8() {
    if (!Need(1)) return 0;
    return data_[pos_++];
  }
  uint32_t GetU32() {
    if (!Need(4)) return 0;
    const uint32_t v = detail::GetU32(data_ + pos_);
    pos_ += 4;
    return v;
  }
  int32_t GetI32() { return static_cast<int32_t>(GetU32()); }
  uint64_t GetU64() {
    if (!Need(8)) return 0;
    const uint64_t v = detail::GetU64(data_ + pos_);
    pos_ += 8;
    return v;
  }
  double GetF64() {
    const uint64_t bits = GetU64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

 private:
  bool Need(size_t n) {
    if (pos_ + n > size_) {
      ok_ = false;
      return false;
    }
    return true;
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
  bool ok_ = true;
};

void EncodeFeature(const FeatureVector& f, Buffer* out) {
  const auto& entries = f.entries();
  out->PutU32(static_cast<uint32_t>(entries.size()));
  for (const FeatureVector::Entry& e : entries) {
    out->PutU32(e.key);
    out->PutF64(e.severity);
  }
}

bool DecodeFeature(Cursor* in, FeatureVector* out) {
  const uint32_t count = in->GetU32();
  if (!in->ok() || static_cast<uint64_t>(count) * 12 > in->remaining()) {
    return false;
  }
  for (uint32_t i = 0; i < count; ++i) {
    const uint32_t key = in->GetU32();
    const double severity = in->GetF64();
    if (!in->ok() || severity < 0.0) return false;
    out->Add(key, severity);
  }
  return in->ok();
}

void EncodeCluster(const AtypicalCluster& c, Buffer* out) {
  out->PutU64(c.id);
  out->PutU8(static_cast<uint8_t>(c.key_mode));
  out->PutI32(c.first_day);
  out->PutI32(c.last_day);
  out->PutU64(static_cast<uint64_t>(c.num_records));
  out->PutU64(c.dominant_true_event);
  out->PutU64(c.left_child);
  out->PutU64(c.right_child);
  out->PutU32(static_cast<uint32_t>(c.micro_ids.size()));
  for (ClusterId id : c.micro_ids) out->PutU64(id);
  EncodeFeature(c.spatial, out);
  EncodeFeature(c.temporal, out);
}

bool DecodeCluster(Cursor* in, AtypicalCluster* out) {
  out->id = in->GetU64();
  const uint8_t mode = in->GetU8();
  if (mode > static_cast<uint8_t>(TemporalKeyMode::kTimeOfDay)) return false;
  out->key_mode = static_cast<TemporalKeyMode>(mode);
  out->first_day = in->GetI32();
  out->last_day = in->GetI32();
  out->num_records = static_cast<int64_t>(in->GetU64());
  out->dominant_true_event = in->GetU64();
  out->left_child = in->GetU64();
  out->right_child = in->GetU64();
  const uint32_t micros = in->GetU32();
  if (!in->ok() || static_cast<uint64_t>(micros) * 8 > in->remaining()) {
    return false;
  }
  out->micro_ids.reserve(micros);
  for (uint32_t i = 0; i < micros; ++i) out->micro_ids.push_back(in->GetU64());
  if (!DecodeFeature(in, &out->spatial)) return false;
  if (!DecodeFeature(in, &out->temporal)) return false;
  return in->ok();
}

}  // namespace

Result<uint64_t> WriteClusterGroups(const std::vector<ClusterGroup>& groups,
                                    const std::string& path) {
  Buffer body;
  body.PutU32(static_cast<uint32_t>(groups.size()));
  for (const ClusterGroup& group : groups) {
    body.PutI32(group.tag);
    body.PutU32(static_cast<uint32_t>(group.clusters.size()));
    for (const AtypicalCluster& c : group.clusters) EncodeCluster(c, &body);
  }
  const uint32_t crc = Crc32(body.bytes().data(), body.bytes().size());

  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) return IoError("cannot open for writing: " + path);
  file.write(kClusterMagic, sizeof(kClusterMagic));
  // Safe casts: iostreams write from const char*, the encoder produced
  // uint8_t bytes; byte-type punning is the aliasing-exempt case.
  // NOLINTNEXTLINE(cppcoreguidelines-pro-type-reinterpret-cast): byte I/O
  file.write(reinterpret_cast<const char*>(body.bytes().data()),
             static_cast<std::streamsize>(body.bytes().size()));
  uint8_t footer[8];
  detail::PutU32(footer, kFooterMagic);
  detail::PutU32(footer + 4, crc);
  // NOLINTNEXTLINE(cppcoreguidelines-pro-type-reinterpret-cast): byte I/O
  file.write(reinterpret_cast<const char*>(footer), sizeof(footer));
  file.flush();
  if (!file) return IoError("short write: " + path);
  return static_cast<uint64_t>(sizeof(kClusterMagic) + body.bytes().size() +
                               sizeof(footer));
}

Result<std::vector<ClusterGroup>> ReadClusterGroups(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return IoError("cannot open: " + path);
  std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(file)),
                             std::istreambuf_iterator<char>());
  if (bytes.size() < sizeof(kClusterMagic) + 8) {
    return DataLossError("truncated cluster file: " + path);
  }
  if (std::memcmp(bytes.data(), kClusterMagic, sizeof(kClusterMagic)) != 0) {
    return DataLossError("bad magic (not a cluster file): " + path);
  }
  const uint8_t* footer = bytes.data() + bytes.size() - 8;
  if (detail::GetU32(footer) != kFooterMagic) {
    return DataLossError("missing footer: " + path);
  }
  const uint8_t* body = bytes.data() + sizeof(kClusterMagic);
  const size_t body_size = bytes.size() - sizeof(kClusterMagic) - 8;
  if (Crc32(body, body_size) != detail::GetU32(footer + 4)) {
    return DataLossError("crc mismatch: " + path);
  }

  Cursor in(body, body_size);
  const uint32_t group_count = in.GetU32();
  std::vector<ClusterGroup> groups;
  for (uint32_t g = 0; g < group_count && in.ok(); ++g) {
    ClusterGroup group;
    group.tag = in.GetI32();
    const uint32_t cluster_count = in.GetU32();
    for (uint32_t c = 0; c < cluster_count && in.ok(); ++c) {
      AtypicalCluster cluster;
      if (!DecodeCluster(&in, &cluster)) {
        return DataLossError(
            StrPrintf("malformed cluster %u in group %u: %s", c, g,
                      path.c_str()));
      }
      group.clusters.push_back(std::move(cluster));
    }
    groups.push_back(std::move(group));
  }
  if (!in.ok() || in.remaining() != 0) {
    return DataLossError("malformed cluster file body: " + path);
  }
  return groups;
}

Result<uint64_t> SaveForest(const AtypicalForest& forest,
                            const std::string& path) {
  std::vector<ClusterGroup> groups;
  for (int day : forest.Days()) {
    groups.push_back(ClusterGroup{day, forest.MicrosOfDay(day)});
  }
  for (int week : forest.MaterializedWeeks()) {
    groups.push_back(ClusterGroup{WeekTag(week), forest.MacrosOfWeek(week)});
  }
  for (int month : forest.MaterializedMonths()) {
    groups.push_back(
        ClusterGroup{MonthTag(month), forest.MacrosOfMonth(month)});
  }
  return WriteClusterGroups(groups, path);
}

Result<AtypicalForest> LoadForest(const std::string& path,
                                  const SensorNetwork* network,
                                  const TimeGrid& grid,
                                  const ForestParams& params) {
  Result<std::vector<ClusterGroup>> groups = ReadClusterGroups(path);
  if (!groups.ok()) return groups.status();
  AtypicalForest forest(network, grid, params);
  for (ClusterGroup& group : *groups) {
    if (IsMonthTag(group.tag)) {
      forest.InstallMonth(MonthFromTag(group.tag),
                          std::move(group.clusters));
    } else if (IsWeekTag(group.tag)) {
      forest.InstallWeek(WeekFromTag(group.tag), std::move(group.clusters));
    } else if (group.tag >= 0) {
      forest.InstallDay(group.tag, std::move(group.clusters));
    } else {
      return DataLossError(
          StrPrintf("unknown group tag %d in %s", group.tag, path.c_str()));
    }
  }
  return forest;
}

}  // namespace storage
}  // namespace atypical
