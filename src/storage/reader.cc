#include "storage/reader.h"

#include <cstring>

#include "util/string_util.h"

namespace atypical {
namespace storage {

Result<DatasetReader> DatasetReader::Open(const std::string& path) {
  DatasetReader reader;
  reader.path_ = path;
  reader.file_ = std::make_unique<std::ifstream>(path, std::ios::binary);
  if (!*reader.file_) return IoError("cannot open: " + path);

  char magic[sizeof(kMagic)];
  reader.file_->read(magic, sizeof(magic));
  if (reader.file_->gcount() != sizeof(magic) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return DataLossError("bad magic (not an atypical dataset): " + path);
  }

  uint8_t header_buf[kFileHeaderBytes];
  reader.file_->read(reinterpret_cast<char*>(header_buf), sizeof(header_buf));
  if (reader.file_->gcount() != static_cast<std::streamsize>(
                                    sizeof(header_buf))) {
    return DataLossError("truncated header: " + path);
  }
  const FileHeader header = DecodeFileHeader(header_buf);
  if (header.version != 1) {
    return DataLossError(
        StrPrintf("unsupported version %u in %s", header.version,
                  path.c_str()));
  }
  if (header.window_minutes <= 0 || 1440 % header.window_minutes != 0 ||
      header.num_days < 0 || header.num_sensors < 0 ||
      header.block_records == 0) {
    return DataLossError("implausible header fields: " + path);
  }

  reader.meta_.month_index = header.month_index;
  reader.meta_.first_day = header.first_day;
  reader.meta_.num_days = header.num_days;
  reader.meta_.num_sensors = header.num_sensors;
  reader.meta_.time_grid = TimeGrid(header.window_minutes);
  reader.meta_.name = StrPrintf("D%d", header.month_index + 1);
  return reader;
}

Result<bool> DatasetReader::NextBlock(std::vector<Reading>* out) {
  out->clear();
  if (saw_footer_) return false;

  uint8_t head_buf[kFooterBytes];  // big enough for either header or footer
  file_->read(reinterpret_cast<char*>(head_buf), kBlockHeaderBytes);
  if (file_->gcount() != static_cast<std::streamsize>(kBlockHeaderBytes)) {
    return DataLossError("truncated block header: " + path_);
  }

  // Disambiguate footer vs block: the footer starts with kFooterMagic, a
  // value far larger than any sane record_count.  Peek the first field.
  const uint32_t first_word = detail::GetU32(head_buf);
  if (first_word == kFooterMagic) {
    // Read the rest of the footer.
    file_->read(reinterpret_cast<char*>(head_buf + kBlockHeaderBytes),
                kFooterBytes - kBlockHeaderBytes);
    if (file_->gcount() !=
        static_cast<std::streamsize>(kFooterBytes - kBlockHeaderBytes)) {
      return DataLossError("truncated footer: " + path_);
    }
    const Footer footer = DecodeFooter(head_buf);
    saw_footer_ = true;
    footer_total_ = footer.total_records;
    if (footer.total_records != records_read_) {
      return DataLossError(StrPrintf(
          "footer record count %llu != records read %llu in %s",
          (unsigned long long)footer.total_records,
          (unsigned long long)records_read_, path_.c_str()));
    }
    return false;
  }

  const BlockHeader block = DecodeBlockHeader(head_buf);
  if (block.record_count == 0) {
    return DataLossError("empty block: " + path_);
  }
  std::vector<uint8_t> payload(static_cast<size_t>(block.record_count) *
                               kWireRecordBytes);
  file_->read(reinterpret_cast<char*>(payload.data()),
              static_cast<std::streamsize>(payload.size()));
  if (file_->gcount() != static_cast<std::streamsize>(payload.size())) {
    return DataLossError("truncated block payload: " + path_);
  }
  const uint32_t crc = Crc32(payload.data(), payload.size());
  if (crc != block.crc32) {
    return DataLossError(
        StrPrintf("crc mismatch in %s (got %08x want %08x)", path_.c_str(),
                  crc, block.crc32));
  }
  out->reserve(block.record_count);
  for (uint32_t i = 0; i < block.record_count; ++i) {
    out->push_back(DecodeRecord(payload.data() + i * kWireRecordBytes));
  }
  records_read_ += block.record_count;
  return true;
}

Result<Dataset> DatasetReader::ReadAll() {
  std::vector<Reading> all;
  std::vector<Reading> block;
  while (true) {
    Result<bool> more = NextBlock(&block);
    if (!more.ok()) return more.status();
    if (!*more) break;
    all.insert(all.end(), block.begin(), block.end());
  }
  if (!saw_footer_) return DataLossError("missing footer: " + path_);
  return Dataset(meta_, std::move(all));
}

Result<int64_t> DatasetReader::ScanAtypical(
    const std::function<void(const AtypicalRecord&)>& fn) {
  int64_t scanned = 0;
  std::vector<Reading> block;
  while (true) {
    Result<bool> more = NextBlock(&block);
    if (!more.ok()) return more.status();
    if (!*more) break;
    for (const Reading& r : block) {
      ++scanned;
      if (r.is_atypical()) {
        fn(AtypicalRecord{r.sensor, r.window, r.atypical_minutes,
                          r.true_event});
      }
    }
  }
  if (!saw_footer_) return DataLossError("missing footer: " + path_);
  return scanned;
}

Result<Dataset> ReadDataset(const std::string& path) {
  Result<DatasetReader> reader = DatasetReader::Open(path);
  if (!reader.ok()) return reader.status();
  return reader->ReadAll();
}

}  // namespace storage
}  // namespace atypical
