#include "storage/reader.h"

#include <algorithm>
#include <cstring>

#include "obs/stats.h"
#include "util/string_util.h"

namespace atypical {
namespace storage {

namespace {

// Per-block (never per-record) storage counters.
struct ReaderMetrics {
  obs::Counter* blocks_read;
  obs::Counter* records_read;
  obs::Counter* blocks_skipped;
  obs::Counter* records_lost;
  obs::Counter* records_duplicated;
  obs::Counter* footer_missing;
};

const ReaderMetrics& Metrics() {
  static const ReaderMetrics m = {
      obs::Registry()->GetCounter("storage.blocks_read"),
      obs::Registry()->GetCounter("storage.records_read"),
      obs::Registry()->GetCounter("storage.blocks_skipped"),
      obs::Registry()->GetCounter("storage.records_lost"),
      obs::Registry()->GetCounter("storage.records_duplicated"),
      obs::Registry()->GetCounter("storage.footer_missing"),
  };
  return m;
}

}  // namespace

Result<DatasetReader> DatasetReader::Open(const std::string& path,
                                          const ReaderOptions& options) {
  DatasetReader reader;
  reader.path_ = path;
  reader.options_ = options;
  reader.file_ = std::make_unique<std::ifstream>(path, std::ios::binary);
  if (!*reader.file_) return IoError("cannot open: " + path);
  // The file size bounds every length field read later: a forged
  // record_count must never size an allocation past the bytes that exist
  // (found by fuzzing — a scrambled header + count combination otherwise
  // requests a multi-gigabyte payload buffer).
  reader.file_->seekg(0, std::ios::end);
  reader.file_size_ = static_cast<uint64_t>(reader.file_->tellg());
  reader.file_->seekg(0, std::ios::beg);

  char magic[sizeof(kMagic)];
  reader.file_->read(magic, sizeof(magic));
  if (reader.file_->gcount() != sizeof(magic) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return DataLossError("bad magic (not an atypical dataset): " + path);
  }

  uint8_t header_buf[kFileHeaderBytes];
  // Safe cast: iostreams read into char*, the wire format decodes from
  // uint8_t*; both are byte types, so viewing one as the other is the
  // aliasing-exempt object-representation access.  Same for every
  // reinterpret_cast in this file.
  // NOLINTNEXTLINE(cppcoreguidelines-pro-type-reinterpret-cast): byte I/O
  reader.file_->read(reinterpret_cast<char*>(header_buf), sizeof(header_buf));
  if (reader.file_->gcount() != static_cast<std::streamsize>(
                                    sizeof(header_buf))) {
    return DataLossError("truncated header: " + path);
  }
  const FileHeader header = DecodeFileHeader(header_buf);
  if (header.version != 1) {
    return DataLossError(
        StrPrintf("unsupported version %u in %s", header.version,
                  path.c_str()));
  }
  if (header.window_minutes <= 0 || 1440 % header.window_minutes != 0 ||
      header.num_days < 0 || header.num_sensors < 0 ||
      header.block_records == 0) {
    return DataLossError("implausible header fields: " + path);
  }

  reader.meta_.month_index = header.month_index;
  reader.meta_.first_day = header.first_day;
  reader.meta_.num_days = header.num_days;
  reader.meta_.num_sensors = header.num_sensors;
  reader.meta_.time_grid = TimeGrid(header.window_minutes);
  reader.meta_.name = StrPrintf("D%d", header.month_index + 1);
  reader.block_records_ = header.block_records;
  return reader;
}

Result<bool> DatasetReader::NextBlock(std::vector<Reading>* out) {
  out->clear();
  if (file_ == nullptr) {
    return FailedPreconditionError("reader is moved-from or closed: " + path_);
  }
  if (saw_footer_ || exhausted_) return false;
  if (options_.faults != nullptr) {
    // Consulted before any bytes are consumed: a scheduled fault is
    // transient, and retrying the same NextBlock proceeds normally.
    ATYPICAL_RETURN_IF_ERROR(options_.faults->OnOp("read block"));
  }

  while (true) {
    uint8_t head_buf[kFooterBytes];  // big enough for either header or footer
    // NOLINTNEXTLINE(cppcoreguidelines-pro-type-reinterpret-cast): byte I/O
    file_->read(reinterpret_cast<char*>(head_buf), kBlockHeaderBytes);
    const std::streamsize head_got = file_->gcount();
    if (head_got != static_cast<std::streamsize>(kBlockHeaderBytes)) {
      if (!options_.salvage) {
        return DataLossError("truncated block header: " + path_);
      }
      // The file ended mid-structure; there is nothing left to resync on.
      if (head_got > 0) {
        ++salvage_.blocks_skipped;
        salvage_.skipped_blocks.push_back(blocks_seen_++);
        Metrics().blocks_skipped->Add(1);
      }
      salvage_.footer_missing = true;
      Metrics().footer_missing->Add(1);
      exhausted_ = true;
      return false;
    }

    // Disambiguate footer vs block: the footer starts with kFooterMagic, a
    // value far larger than any sane record_count.  Peek the first field.
    const uint32_t first_word = detail::GetU32(head_buf);
    if (first_word == kFooterMagic) {
      // Read the rest of the footer.
      // NOLINTNEXTLINE(cppcoreguidelines-pro-type-reinterpret-cast): byte I/O
      file_->read(reinterpret_cast<char*>(head_buf + kBlockHeaderBytes),
                  kFooterBytes - kBlockHeaderBytes);
      if (file_->gcount() !=
          static_cast<std::streamsize>(kFooterBytes - kBlockHeaderBytes)) {
        if (!options_.salvage) {
          return DataLossError("truncated footer: " + path_);
        }
        salvage_.footer_missing = true;
        Metrics().footer_missing->Add(1);
        exhausted_ = true;
        return false;
      }
      const Footer footer = DecodeFooter(head_buf);
      saw_footer_ = true;
      footer_total_ = footer.total_records;
      if (options_.salvage) {
        // The footer count is authoritative; it supersedes the claimed
        // counts accumulated while skipping blocks.
        salvage_.records_lost = footer.total_records > records_read_
                                    ? footer.total_records - records_read_
                                    : 0;
        // More records than the footer promises: a replayed block passed
        // its CRC and was returned twice.  Not silent — it breaks clean().
        salvage_.records_duplicated = records_read_ > footer.total_records
                                          ? records_read_ - footer.total_records
                                          : 0;
        if (salvage_.records_duplicated > 0) {
          Metrics().records_duplicated->Add(salvage_.records_duplicated);
        }
      } else if (footer.total_records != records_read_) {
        return DataLossError(StrPrintf(
            "footer record count %llu != records read %llu in %s",
            (unsigned long long)footer.total_records,
            (unsigned long long)records_read_, path_.c_str()));
      }
      return false;
    }

    const BlockHeader block = DecodeBlockHeader(head_buf);
    if (block.record_count == 0 || block.record_count > block_records_) {
      if (!options_.salvage) {
        if (block.record_count == 0) {
          return DataLossError("empty block: " + path_);
        }
        return DataLossError(
            StrPrintf("implausible block record count %u (max %u) in %s",
                      block.record_count, block_records_, path_.c_str()));
      }
      // Corrupt block header: the payload length cannot be trusted.  Resync
      // assuming the writer's fixed block size (every block but the last
      // holds exactly block_records_ records).
      ++salvage_.blocks_skipped;
      salvage_.skipped_blocks.push_back(blocks_seen_++);
      salvage_.records_lost += block_records_;
      Metrics().blocks_skipped->Add(1);
      Metrics().records_lost->Add(block_records_);
      file_->seekg(static_cast<std::streamoff>(block_records_) *
                       static_cast<std::streamoff>(kWireRecordBytes),
                   std::ios::cur);
      if (!*file_) {
        salvage_.footer_missing = true;
        Metrics().footer_missing->Add(1);
        exhausted_ = true;
        return false;
      }
      continue;
    }

    const uint64_t payload_bytes =
        static_cast<uint64_t>(block.record_count) * kWireRecordBytes;
    const uint64_t pos = static_cast<uint64_t>(file_->tellg());
    if (payload_bytes > file_size_ - pos) {
      // The claimed payload extends past the end of the file; the read
      // below would fail anyway, but checking first keeps a forged count
      // from sizing the buffer (the file header's block_records bound may
      // itself be corrupt, so plausibility alone is not enough).
      if (!options_.salvage) {
        return DataLossError("truncated block payload: " + path_);
      }
      ++salvage_.blocks_skipped;
      salvage_.skipped_blocks.push_back(blocks_seen_++);
      salvage_.records_lost += block.record_count;
      Metrics().blocks_skipped->Add(1);
      Metrics().records_lost->Add(block.record_count);
      salvage_.footer_missing = true;
      Metrics().footer_missing->Add(1);
      exhausted_ = true;
      return false;
    }
    std::vector<uint8_t> payload(static_cast<size_t>(payload_bytes));
    // NOLINTNEXTLINE(cppcoreguidelines-pro-type-reinterpret-cast): byte I/O
    file_->read(reinterpret_cast<char*>(payload.data()),
                static_cast<std::streamsize>(payload.size()));
    if (file_->gcount() != static_cast<std::streamsize>(payload.size())) {
      if (!options_.salvage) {
        return DataLossError("truncated block payload: " + path_);
      }
      ++salvage_.blocks_skipped;
      salvage_.skipped_blocks.push_back(blocks_seen_++);
      salvage_.records_lost += block.record_count;
      Metrics().blocks_skipped->Add(1);
      Metrics().records_lost->Add(block.record_count);
      salvage_.footer_missing = true;
      Metrics().footer_missing->Add(1);
      exhausted_ = true;
      return false;
    }
    const uint32_t crc = Crc32(payload.data(), payload.size());
    if (crc != block.crc32) {
      if (!options_.salvage) {
        return DataLossError(
            StrPrintf("crc mismatch in %s (got %08x want %08x)", path_.c_str(),
                      crc, block.crc32));
      }
      // Skip this block; the stream is already positioned at the next
      // block boundary.
      ++salvage_.blocks_skipped;
      salvage_.skipped_blocks.push_back(blocks_seen_++);
      salvage_.records_lost += block.record_count;
      Metrics().blocks_skipped->Add(1);
      Metrics().records_lost->Add(block.record_count);
      continue;
    }
    out->reserve(block.record_count);
    for (uint32_t i = 0; i < block.record_count; ++i) {
      out->push_back(DecodeRecord(payload.data() + i * kWireRecordBytes));
    }
    records_read_ += block.record_count;
    ++blocks_seen_;
    salvage_.records_recovered = records_read_;
    Metrics().blocks_read->Add(1);
    Metrics().records_read->Add(block.record_count);
    return true;
  }
}

Result<Dataset> DatasetReader::ReadAll() {
  std::vector<Reading> all;
  std::vector<Reading> block;
  while (true) {
    Result<bool> more = NextBlock(&block);
    if (!more.ok()) return more.status();
    if (!*more) break;
    all.insert(all.end(), block.begin(), block.end());
  }
  if (!saw_footer_ && !options_.salvage) {
    return DataLossError("missing footer: " + path_);
  }
  return Dataset(meta_, std::move(all));
}

Result<int64_t> DatasetReader::ScanAtypical(
    const std::function<void(const AtypicalRecord&)>& fn) {
  int64_t scanned = 0;
  std::vector<Reading> block;
  while (true) {
    Result<bool> more = NextBlock(&block);
    if (!more.ok()) return more.status();
    if (!*more) break;
    for (const Reading& r : block) {
      ++scanned;
      if (r.is_atypical()) {
        fn(AtypicalRecord{r.sensor, r.window, r.atypical_minutes,
                          r.true_event});
      }
    }
  }
  if (!saw_footer_ && !options_.salvage) {
    return DataLossError("missing footer: " + path_);
  }
  return scanned;
}

Result<Dataset> ReadDataset(const std::string& path) {
  return ReadDataset(path, ReaderOptions{}, nullptr);
}

Result<Dataset> ReadDataset(const std::string& path,
                            const ReaderOptions& options,
                            SalvageReport* report) {
  Result<DatasetReader> reader = DatasetReader::Open(path, options);
  if (!reader.ok()) return reader.status();
  Result<Dataset> dataset = reader->ReadAll();
  if (report != nullptr) *report = reader->salvage_report();
  return dataset;
}

}  // namespace storage
}  // namespace atypical
