// Persistence for atypical clusters and forests.
//
// The atypical forest is an offline-built model (§III); deployments persist
// it so query processing does not re-cluster history on every restart.
// Layout:
//   magic "ATYPCF01"
//   u32 group_count
//   group*  { i32 tag, u32 cluster_count, cluster* }
//   footer  { u32 kFooterMagic, u32 crc32 of everything after the magic }
//
// A cluster serializes as its identity, metadata, micro-id list and both
// feature vectors (u32 key + f64 severity per entry).  Group tags encode
// forest levels: day d -> tag d, week w -> tag -(w+1) - kWeekBias, month m
// -> tag -(m+1) - kMonthBias (see cluster_io.cc).
#ifndef ATYPICAL_STORAGE_CLUSTER_IO_H_
#define ATYPICAL_STORAGE_CLUSTER_IO_H_

#include <string>
#include <vector>

#include "core/cluster.h"
#include "core/forest.h"
#include "util/status.h"

namespace atypical {
namespace storage {

// A tagged group of clusters (one forest level slice).
struct ClusterGroup {
  int32_t tag = 0;
  std::vector<AtypicalCluster> clusters;
};

// Writes groups to `path`; returns bytes written.
[[nodiscard]] Result<uint64_t> WriteClusterGroups(
    const std::vector<ClusterGroup>& groups, const std::string& path);

// Reads groups back, validating magic and checksum.
[[nodiscard]] Result<std::vector<ClusterGroup>> ReadClusterGroups(
    const std::string& path);

// Persists a forest's day-level micro-clusters (and any materialized weekly
// and monthly levels) to `path`.
[[nodiscard]] Result<uint64_t> SaveForest(const AtypicalForest& forest,
                            const std::string& path);

// Restores a forest saved with SaveForest.  `network`, `grid` and `params`
// must match the deployment the forest was built for (the file stores
// clusters, not the substrate).
[[nodiscard]] Result<AtypicalForest> LoadForest(const std::string& path,
                                  const SensorNetwork* network,
                                  const TimeGrid& grid,
                                  const ForestParams& params);

}  // namespace storage
}  // namespace atypical

#endif  // ATYPICAL_STORAGE_CLUSTER_IO_H_
