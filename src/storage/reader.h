// Streaming dataset reader.
//
// `DatasetReader` validates the magic, header, per-block CRCs and the footer
// and exposes the data either block-by-block (so the pre-processing scan can
// run without materializing a month) or as a whole `Dataset`.
//
// By default any damage fails the read with kDataLoss.  In salvage mode
// (`ReaderOptions{.salvage = true}`) block-level damage — a failed CRC, an
// implausible block header, a truncated tail — skips the affected block and
// resyncs at the next block boundary; the damage is tallied in a
// `SalvageReport`.  Records from a block that failed its CRC are never
// returned.  File-level damage (bad magic, bad file header) still fails
// Open: without the header's geometry there is no boundary to resync on.
#ifndef ATYPICAL_STORAGE_READER_H_
#define ATYPICAL_STORAGE_READER_H_

#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cps/dataset.h"
#include "storage/fault_injection.h"
#include "storage/format.h"
#include "util/status.h"

namespace atypical {
namespace storage {

struct ReaderOptions {
  bool salvage = false;
  // Test-only operation-level fault injection: consulted once per block
  // read.  A scheduled fault surfaces as a transient kIoError before any
  // bytes are consumed, so retrying the same NextBlock succeeds.
  IoFaultSchedule* faults = nullptr;
};

// Tally of damage encountered (and survived) in salvage mode.
struct SalvageReport {
  uint64_t blocks_skipped = 0;
  uint64_t records_recovered = 0;
  // From the footer when one was read (authoritative), otherwise the sum of
  // the skipped blocks' claimed record counts.
  uint64_t records_lost = 0;
  // Footer says fewer records than were read: a replayed (duplicated) block
  // passed its CRC and was returned twice.
  uint64_t records_duplicated = 0;
  bool footer_missing = false;  // file ended without a valid footer
  // 0-based indices (in on-disk order, counting both read and skipped
  // blocks) of the blocks that were skipped.  With the writer's fixed block
  // size this localizes the loss to a record range, hence to days — see
  // analytics::LostRecordsByDay.
  std::vector<uint64_t> skipped_blocks;

  bool clean() const {
    return blocks_skipped == 0 && records_lost == 0 &&
           records_duplicated == 0 && !footer_missing;
  }
};

class DatasetReader {
 public:
  // Opens `path` and validates the magic and header.
  [[nodiscard]] static Result<DatasetReader> Open(
      const std::string& path, const ReaderOptions& options = {});

  DatasetReader(DatasetReader&&) = default;
  DatasetReader& operator=(DatasetReader&&) = default;

  const DatasetMeta& meta() const { return meta_; }

  // Reads the next block into `out` (replacing its contents).  Returns true
  // when a block was read, false at end of data.  CRC failures and
  // truncation surface as error Status, or are skipped in salvage mode.
  // A moved-from reader returns kFailedPrecondition.
  [[nodiscard]] Result<bool> NextBlock(std::vector<Reading>* out);

  // Reads all remaining blocks and the footer into a Dataset.
  [[nodiscard]] Result<Dataset> ReadAll();

  // Streams the whole file, invoking `fn` for every atypical record (the
  // paper's pre-processing step PR: one full scan selecting atypical data).
  // Returns the number of readings scanned.
  [[nodiscard]] Result<int64_t> ScanAtypical(
      const std::function<void(const AtypicalRecord&)>& fn);

  // Damage tally so far; only ever non-clean() in salvage mode.
  const SalvageReport& salvage_report() const { return salvage_; }

 private:
  DatasetReader() = default;

  std::unique_ptr<std::ifstream> file_;
  std::string path_;
  DatasetMeta meta_;
  ReaderOptions options_;
  SalvageReport salvage_;
  uint32_t block_records_ = kDefaultBlockRecords;  // from the file header
  uint64_t file_size_ = 0;  // bounds every length field read from the file
  uint64_t records_read_ = 0;
  uint64_t blocks_seen_ = 0;  // read + skipped, in on-disk order
  bool saw_footer_ = false;
  bool exhausted_ = false;  // salvage hit an unrecoverable end of data
  uint64_t footer_total_ = 0;
};

// Convenience wrapper: open + ReadAll.
[[nodiscard]] Result<Dataset> ReadDataset(const std::string& path);

// Same with explicit options; in salvage mode `report` (if non-null)
// receives the damage tally alongside the dataset.
[[nodiscard]] Result<Dataset> ReadDataset(const std::string& path,
                                          const ReaderOptions& options,
                                          SalvageReport* report = nullptr);

}  // namespace storage
}  // namespace atypical

#endif  // ATYPICAL_STORAGE_READER_H_
