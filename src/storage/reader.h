// Streaming dataset reader.
//
// `DatasetReader` validates the magic, header, per-block CRCs and the footer
// and exposes the data either block-by-block (so the pre-processing scan can
// run without materializing a month) or as a whole `Dataset`.
#ifndef ATYPICAL_STORAGE_READER_H_
#define ATYPICAL_STORAGE_READER_H_

#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cps/dataset.h"
#include "storage/format.h"
#include "util/status.h"

namespace atypical {
namespace storage {

class DatasetReader {
 public:
  // Opens `path` and validates the magic and header.
  static Result<DatasetReader> Open(const std::string& path);

  DatasetReader(DatasetReader&&) = default;
  DatasetReader& operator=(DatasetReader&&) = default;

  const DatasetMeta& meta() const { return meta_; }

  // Reads the next block into `out` (replacing its contents).  Returns true
  // when a block was read, false at end of data.  CRC failures and
  // truncation surface as error Status.
  Result<bool> NextBlock(std::vector<Reading>* out);

  // Reads all remaining blocks and the footer into a Dataset.
  Result<Dataset> ReadAll();

  // Streams the whole file, invoking `fn` for every atypical record (the
  // paper's pre-processing step PR: one full scan selecting atypical data).
  // Returns the number of readings scanned.
  Result<int64_t> ScanAtypical(
      const std::function<void(const AtypicalRecord&)>& fn);

 private:
  DatasetReader() = default;

  std::unique_ptr<std::ifstream> file_;
  std::string path_;
  DatasetMeta meta_;
  uint64_t records_read_ = 0;
  bool saw_footer_ = false;
  uint64_t footer_total_ = 0;
};

// Convenience wrapper: open + ReadAll.
Result<Dataset> ReadDataset(const std::string& path);

}  // namespace storage
}  // namespace atypical

#endif  // ATYPICAL_STORAGE_READER_H_
