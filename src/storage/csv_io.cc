#include "storage/csv_io.h"

#include <fstream>

#include "util/string_util.h"

namespace atypical {
namespace storage {

Status WriteReadingsCsv(const Dataset& dataset, const std::string& path) {
  std::ofstream file(path, std::ios::trunc);
  if (!file) return IoError("cannot open for writing: " + path);
  file << "sensor,window,speed_mph,occupancy,atypical_minutes\n";
  for (const Reading& r : dataset.readings()) {
    file << StrPrintf("%u,%u,%.2f,%.3f,%.1f\n", r.sensor, r.window,
                      static_cast<double>(r.speed_mph),
                      static_cast<double>(r.occupancy),
                      static_cast<double>(r.atypical_minutes));
  }
  if (!file) return IoError("short write: " + path);
  return Status::Ok();
}

Status WriteAtypicalCsv(const std::vector<AtypicalRecord>& records,
                        const std::string& path) {
  std::ofstream file(path, std::ios::trunc);
  if (!file) return IoError("cannot open for writing: " + path);
  file << "sensor,window,severity_minutes\n";
  for (const AtypicalRecord& r : records) {
    file << StrPrintf("%u,%u,%.1f\n", r.sensor, r.window,
                      static_cast<double>(r.severity_minutes));
  }
  if (!file) return IoError("short write: " + path);
  return Status::Ok();
}

Result<std::vector<AtypicalRecord>> ReadAtypicalCsv(const std::string& path) {
  std::ifstream file(path);
  if (!file) return IoError("cannot open: " + path);
  std::string line;
  if (!std::getline(file, line)) return DataLossError("empty file: " + path);
  if (line != "sensor,window,severity_minutes") {
    return DataLossError("unexpected CSV header in " + path + ": " + line);
  }
  std::vector<AtypicalRecord> out;
  int line_no = 1;
  while (std::getline(file, line)) {
    ++line_no;
    if (line.empty()) continue;
    const std::vector<std::string> fields = StrSplit(line, ',');
    if (fields.size() != 3) {
      return DataLossError(
          StrPrintf("%s:%d: expected 3 fields", path.c_str(), line_no));
    }
    const int64_t sensor = ParseInt64(fields[0]);
    const int64_t window = ParseInt64(fields[1]);
    const double severity = ParseDouble(fields[2], -1.0);
    if (sensor < 0 || window < 0 || severity < 0.0) {
      return DataLossError(
          StrPrintf("%s:%d: malformed row", path.c_str(), line_no));
    }
    out.push_back(AtypicalRecord{static_cast<SensorId>(sensor),
                                 static_cast<WindowId>(window),
                                 static_cast<float>(severity), kNoEvent});
  }
  return out;
}

}  // namespace storage
}  // namespace atypical
