// CSV import/export for datasets and atypical records — the interchange
// format for users bringing their own CPS data into the library.
#ifndef ATYPICAL_STORAGE_CSV_IO_H_
#define ATYPICAL_STORAGE_CSV_IO_H_

#include <string>
#include <vector>

#include "cps/dataset.h"
#include "util/status.h"

namespace atypical {
namespace storage {

// Writes "sensor,window,speed_mph,occupancy,atypical_minutes" rows.
[[nodiscard]] Status WriteReadingsCsv(const Dataset& dataset,
                                      const std::string& path);

// Writes "sensor,window,severity_minutes" rows.
[[nodiscard]] Status WriteAtypicalCsv(
    const std::vector<AtypicalRecord>& records, const std::string& path);

// Parses atypical records from a CSV with a "sensor,window,severity_minutes"
// header.  Rejects malformed rows with a DataLoss status naming the line.
[[nodiscard]] Result<std::vector<AtypicalRecord>> ReadAtypicalCsv(
    const std::string& path);

}  // namespace storage
}  // namespace atypical

#endif  // ATYPICAL_STORAGE_CSV_IO_H_
