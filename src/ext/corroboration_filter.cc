#include "ext/corroboration_filter.h"

#include "index/grid_index.h"
#include "util/logging.h"

namespace atypical {
namespace ext {

std::vector<AtypicalRecord> FilterTrustworthy(
    const std::vector<AtypicalRecord>& records, const SensorNetwork& network,
    const TimeGrid& grid, const CorroborationParams& params,
    CorroborationStats* stats) {
  CHECK_GE(params.min_corroborators, 0);
  std::vector<AtypicalRecord> kept;
  kept.reserve(records.size());

  const index::GridIndex idx(records, network, grid, params.delta_d_miles,
                             params.delta_t_minutes);
  std::vector<size_t> neighbors;
  for (size_t i = 0; i < records.size(); ++i) {
    neighbors.clear();
    idx.DirectlyRelated(i, &neighbors);
    if (static_cast<int>(neighbors.size()) >= params.min_corroborators) {
      kept.push_back(records[i]);
    }
  }

  if (stats != nullptr) {
    stats->input_records = records.size();
    stats->kept_records = kept.size();
    stats->dropped_records = records.size() - kept.size();
  }
  return kept;
}

}  // namespace ext
}  // namespace atypical
