#include "ext/detector.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace atypical {
namespace ext {

SpeedProfile SpeedProfile::Learn(const Dataset& dataset,
                                 double reference_percentile) {
  CHECK_GT(reference_percentile, 0.0);
  CHECK_LE(reference_percentile, 1.0);
  const int n = dataset.meta().num_sensors;
  std::vector<std::vector<float>> speeds(n);
  for (const Reading& r : dataset.readings()) {
    CHECK_LT(static_cast<int>(r.sensor), n);
    speeds[r.sensor].push_back(r.speed_mph);
  }
  SpeedProfile profile;
  profile.reference_.resize(n, 0.0);
  for (int s = 0; s < n; ++s) {
    if (speeds[s].empty()) continue;
    const size_t k = std::min(
        speeds[s].size() - 1,
        static_cast<size_t>(reference_percentile *
                            static_cast<double>(speeds[s].size())));
    std::nth_element(speeds[s].begin(), speeds[s].begin() + k,
                     speeds[s].end());
    profile.reference_[s] = speeds[s][k];
  }
  return profile;
}

double SpeedProfile::reference_mph(SensorId sensor) const {
  CHECK_LT(static_cast<size_t>(sensor), reference_.size());
  return reference_[sensor];
}

std::vector<AtypicalRecord> DetectAtypical(const Dataset& dataset,
                                           const SpeedProfile& profile,
                                           const DetectorParams& params,
                                           DetectionStats* stats) {
  CHECK_GT(params.congestion_fraction, 0.0);
  CHECK_LT(params.congestion_fraction, 1.0);
  const double window_minutes = dataset.meta().time_grid.window_minutes();
  std::vector<AtypicalRecord> out;
  int64_t scanned = 0;
  for (const Reading& r : dataset.readings()) {
    ++scanned;
    const double reference = profile.reference_mph(r.sensor);
    if (reference <= 0.0) continue;
    const double threshold = params.congestion_fraction * reference;
    if (static_cast<double>(r.speed_mph) >= threshold) continue;
    // Depth below the threshold estimates how much of the window was
    // congested: at the threshold nothing, at (or below) the fully-congested
    // speed the whole window.  The fully-congested reference is taken as
    // 40% of the threshold speed.
    const double floor_speed = 0.4 * threshold;
    const double depth =
        std::clamp((threshold - static_cast<double>(r.speed_mph)) /
                       (threshold - floor_speed),
                   0.0, 1.0);
    const double minutes =
        std::round(depth * window_minutes * 10.0) / 10.0;
    if (minutes < params.min_minutes) continue;
    out.push_back(AtypicalRecord{r.sensor, r.window,
                                 static_cast<float>(minutes), kNoEvent});
  }
  if (stats != nullptr) {
    stats->readings_scanned = scanned;
    stats->records_emitted = static_cast<int64_t>(out.size());
  }
  return out;
}

DetectionQuality EvaluateDetection(
    const Dataset& labeled, const std::vector<AtypicalRecord>& detected) {
  // Index detected records by (sensor, window).
  auto key = [](SensorId s, WindowId w) {
    return (static_cast<uint64_t>(s) << 32) | w;
  };
  std::vector<uint64_t> hits;
  hits.reserve(detected.size());
  for (const AtypicalRecord& r : detected) hits.push_back(key(r.sensor, r.window));
  std::sort(hits.begin(), hits.end());

  DetectionQuality q;
  for (const Reading& r : labeled.readings()) {
    const bool truly = r.is_atypical();
    const bool flagged =
        std::binary_search(hits.begin(), hits.end(), key(r.sensor, r.window));
    if (flagged && truly) ++q.true_positives;
    if (flagged && !truly) ++q.false_positives;
    if (!flagged && truly) ++q.false_negatives;
  }
  const int64_t detected_total = q.true_positives + q.false_positives;
  const int64_t actual_total = q.true_positives + q.false_negatives;
  q.precision = detected_total > 0
                    ? static_cast<double>(q.true_positives) /
                          static_cast<double>(detected_total)
                    : 0.0;
  q.recall = actual_total > 0
                 ? static_cast<double>(q.true_positives) /
                       static_cast<double>(actual_total)
                 : 1.0;
  return q;
}

}  // namespace ext
}  // namespace atypical
