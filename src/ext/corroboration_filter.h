// Trustworthiness pre-filter (extension).
//
// The paper assumes clean, trustworthy atypical records selected by methods
// like Tru-Alarm (Tang et al., ICDM 2010).  This module provides a simple
// corroboration-based stand-in: an atypical record is kept only if at least
// `min_corroborators` other atypical records fall within the (δd, δt)
// neighborhood — isolated one-off readings are treated as sensor noise.
#ifndef ATYPICAL_EXT_CORROBORATION_FILTER_H_
#define ATYPICAL_EXT_CORROBORATION_FILTER_H_

#include <vector>

#include "cps/record.h"
#include "cps/sensor_network.h"

namespace atypical {
namespace ext {

struct CorroborationParams {
  double delta_d_miles = 1.5;
  int delta_t_minutes = 15;
  int min_corroborators = 1;
};

struct CorroborationStats {
  size_t input_records = 0;
  size_t kept_records = 0;
  size_t dropped_records = 0;
};

// Returns the trustworthy subset of `records`, preserving order.
std::vector<AtypicalRecord> FilterTrustworthy(
    const std::vector<AtypicalRecord>& records, const SensorNetwork& network,
    const TimeGrid& grid, const CorroborationParams& params,
    CorroborationStats* stats = nullptr);

}  // namespace ext
}  // namespace atypical

#endif  // ATYPICAL_EXT_CORROBORATION_FILTER_H_
