#include "ext/prediction.h"

#include <cmath>

#include "gen/traffic_model.h"
#include "util/logging.h"

namespace atypical {
namespace ext {

CongestionPredictor::CongestionPredictor(int num_sensors,
                                         const TimeGrid& grid,
                                         const PredictionParams& params)
    : num_sensors_(num_sensors), grid_(grid), params_(params) {
  CHECK_GT(num_sensors, 0);
  const size_t cells =
      static_cast<size_t>(num_sensors) * grid.WindowsPerDay();
  sum_weekday_.assign(cells, 0.0);
  sum_weekend_.assign(cells, 0.0);
}

size_t CongestionPredictor::CellIndex(SensorId sensor,
                                      int window_of_day) const {
  CHECK_LT(static_cast<int>(sensor), num_sensors_);
  return static_cast<size_t>(sensor) * grid_.WindowsPerDay() + window_of_day;
}

void CongestionPredictor::Train(const std::vector<AtypicalRecord>& records) {
  for (const AtypicalRecord& r : records) {
    const int day = grid_.DayOfWindow(r.window);
    if (seen_days_.insert(day).second) {
      if (IsWeekend(day)) {
        ++days_weekend_;
      } else {
        ++days_weekday_;
      }
    }
    std::vector<double>& sums =
        IsWeekend(day) ? sum_weekend_ : sum_weekday_;
    sums[CellIndex(r.sensor, grid_.WindowOfDay(r.window))] +=
        static_cast<double>(r.severity_minutes);
  }
}

int CongestionPredictor::training_days(bool weekend) const {
  return weekend ? days_weekend_ : days_weekday_;
}

double CongestionPredictor::ExpectedMinutes(SensorId sensor,
                                            int window_of_day,
                                            bool weekend) const {
  const int days = training_days(weekend);
  if (days == 0) return 0.0;
  const std::vector<double>& sums = weekend ? sum_weekend_ : sum_weekday_;
  return sums[CellIndex(sensor, window_of_day)] / days;
}

std::vector<PredictedCell> CongestionPredictor::PredictDay(
    bool weekend) const {
  std::vector<PredictedCell> out;
  const int wpd = grid_.WindowsPerDay();
  for (SensorId s = 0; s < static_cast<SensorId>(num_sensors_); ++s) {
    for (int w = 0; w < wpd; ++w) {
      const double expected = ExpectedMinutes(s, w, weekend);
      if (expected >= params_.min_predicted_minutes) {
        out.push_back(PredictedCell{s, w, static_cast<float>(expected)});
      }
    }
  }
  return out;
}

PredictionQuality CongestionPredictor::Evaluate(
    int day, const std::vector<AtypicalRecord>& actual) const {
  const bool weekend = IsWeekend(day);
  const int wpd = grid_.WindowsPerDay();

  // Dense actual-severity grid for the day.
  std::vector<float> actual_minutes(
      static_cast<size_t>(num_sensors_) * wpd, 0.0f);
  for (const AtypicalRecord& r : actual) {
    CHECK_EQ(grid_.DayOfWindow(r.window), day);
    actual_minutes[CellIndex(r.sensor, grid_.WindowOfDay(r.window))] +=
        r.severity_minutes;
  }

  PredictionQuality q;
  double abs_error = 0.0;
  size_t hits = 0;
  for (SensorId s = 0; s < static_cast<SensorId>(num_sensors_); ++s) {
    for (int w = 0; w < wpd; ++w) {
      const double predicted = ExpectedMinutes(s, w, weekend);
      const double observed = actual_minutes[CellIndex(s, w)];
      abs_error += std::abs(predicted - observed);
      const bool predicted_atypical =
          predicted >= params_.min_predicted_minutes;
      const bool actually_atypical = observed > 0.0;
      if (predicted_atypical) ++q.predicted_cells;
      if (actually_atypical) ++q.actual_cells;
      if (predicted_atypical && actually_atypical) ++hits;
    }
  }
  const size_t total_cells = static_cast<size_t>(num_sensors_) * wpd;
  q.mean_absolute_error_minutes =
      abs_error / static_cast<double>(total_cells);
  q.precision = q.predicted_cells > 0
                    ? static_cast<double>(hits) /
                          static_cast<double>(q.predicted_cells)
                    : 0.0;
  q.recall =
      q.actual_cells > 0
          ? static_cast<double>(hits) / static_cast<double>(q.actual_cells)
          : 1.0;
  return q;
}

}  // namespace ext
}  // namespace atypical
