// Atypical-record detection from raw readings (extension).
//
// The paper assumes the atypical criterion is given and trustworthy records
// arrive pre-selected (§II.A).  This module provides the canonical traffic
// criterion so the library also works on raw speed feeds without generator
// labels: a window is congested when the observed speed falls below a
// fraction of the sensor's reference (free-flow) speed, and the atypical
// duration is estimated from how deep the speed sits below the threshold.
//
// The reference speed per sensor is learned from the data itself (a high
// percentile of observed speeds), so no ground-truth model is required.
#ifndef ATYPICAL_EXT_DETECTOR_H_
#define ATYPICAL_EXT_DETECTOR_H_

#include <vector>

#include "cps/dataset.h"
#include "cps/record.h"

namespace atypical {
namespace ext {

struct DetectorParams {
  // Speed below `congestion_fraction` × reference speed counts as congested.
  double congestion_fraction = 0.55;
  // Percentile of a sensor's speeds used as its reference speed.
  double reference_percentile = 0.9;
  // Minimum estimated atypical minutes for a record to be emitted.
  double min_minutes = 1.0;
};

// Per-sensor reference speeds learned from observed data.
class SpeedProfile {
 public:
  // Learns reference speeds from every reading in `dataset`.
  static SpeedProfile Learn(const Dataset& dataset,
                            double reference_percentile = 0.9);

  int num_sensors() const { return static_cast<int>(reference_.size()); }
  double reference_mph(SensorId sensor) const;

 private:
  std::vector<double> reference_;
};

struct DetectionStats {
  int64_t readings_scanned = 0;
  int64_t records_emitted = 0;
};

// Scans `dataset` and emits atypical records per the speed criterion.
// Output is ordered like the input readings; true_event labels are NOT
// copied (a real detector has no labels) so evaluation against the
// generator's labels stays honest.
std::vector<AtypicalRecord> DetectAtypical(const Dataset& dataset,
                                           const SpeedProfile& profile,
                                           const DetectorParams& params = {},
                                           DetectionStats* stats = nullptr);

// Detection quality against labeled ground truth: a reading is truly
// atypical iff the generator marked it.
struct DetectionQuality {
  double precision = 0.0;
  double recall = 0.0;
  int64_t true_positives = 0;
  int64_t false_positives = 0;
  int64_t false_negatives = 0;
};

DetectionQuality EvaluateDetection(const Dataset& labeled,
                                   const std::vector<AtypicalRecord>& detected);

}  // namespace ext
}  // namespace atypical

#endif  // ATYPICAL_EXT_DETECTOR_H_
