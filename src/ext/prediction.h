// Congestion prediction (the paper's stated future work, §VII).
//
// A simple historical-profile forecaster: for each (sensor, window-of-day,
// day-type) cell it averages the observed atypical minutes over the training
// days and predicts that profile for future days.  This is deliberately the
// baseline any production system would start from; its value here is
// (a) demonstrating that the cluster model's features carry enough signal to
// forecast recurring events, and (b) providing a measurable extension.
#ifndef ATYPICAL_EXT_PREDICTION_H_
#define ATYPICAL_EXT_PREDICTION_H_

#include <set>
#include <vector>

#include "cps/record.h"
#include "cps/types.h"

namespace atypical {
namespace ext {

struct PredictionParams {
  // Minimum mean severity (minutes) for a cell to be predicted atypical.
  double min_predicted_minutes = 1.0;
};

struct PredictedCell {
  SensorId sensor = kInvalidSensor;
  int window_of_day = 0;
  float expected_minutes = 0.0f;
};

struct PredictionQuality {
  // Over the evaluation day's (sensor, window) grid:
  double mean_absolute_error_minutes = 0.0;
  // Treating "atypical" as a binary label:
  double precision = 0.0;
  double recall = 0.0;
  size_t predicted_cells = 0;
  size_t actual_cells = 0;
};

// Forecasts per-sensor congestion profiles from historical atypical records.
class CongestionPredictor {
 public:
  CongestionPredictor(int num_sensors, const TimeGrid& grid,
                      const PredictionParams& params = {});

  // Accumulates training data.  Records may span many days.
  void Train(const std::vector<AtypicalRecord>& records);

  // Days seen so far, per day type (0 = weekday, 1 = weekend).
  int training_days(bool weekend) const;

  // Expected atypical minutes for a cell on a day of the given type.
  double ExpectedMinutes(SensorId sensor, int window_of_day,
                         bool weekend) const;

  // All cells whose expectation clears `min_predicted_minutes`.
  std::vector<PredictedCell> PredictDay(bool weekend) const;

  // Scores a prediction against one actual day of atypical records (all of
  // which must fall on `day`).
  PredictionQuality Evaluate(int day,
                             const std::vector<AtypicalRecord>& actual) const;

 private:
  size_t CellIndex(SensorId sensor, int window_of_day) const;

  int num_sensors_;
  TimeGrid grid_;
  PredictionParams params_;
  // Summed minutes per (sensor, window-of-day), split by day type.
  std::vector<double> sum_weekday_;
  std::vector<double> sum_weekend_;
  int days_weekday_ = 0;
  int days_weekend_ = 0;
  std::set<int> seen_days_;  // absolute days already counted
};

}  // namespace ext
}  // namespace atypical

#endif  // ATYPICAL_EXT_PREDICTION_H_
