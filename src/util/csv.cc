#include "util/csv.h"

#include <algorithm>
#include <fstream>

#include "util/logging.h"
#include "util/string_util.h"

namespace atypical {

namespace {

std::string CsvEscape(const std::string& cell) {
  const bool needs_quotes =
      cell.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quotes) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  CHECK(!header_.empty());
}

void Table::AddRow(std::vector<std::string> cells) {
  CHECK_EQ(cells.size(), header_.size());
  rows_.push_back(std::move(cells));
}

void Table::AddNumericRow(const std::vector<double>& cells, int precision) {
  std::vector<std::string> text;
  text.reserve(cells.size());
  for (double v : cells) text.push_back(StrPrintf("%.*f", precision, v));
  AddRow(std::move(text));
}

std::string Table::ToAlignedString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t i = 0; i < header_.size(); ++i) widths[i] = header_[i].size();
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t i = 0; i < row.size(); ++i) {
      line += i == 0 ? "| " : " | ";
      line += row[i];
      line.append(widths[i] - row[i].size(), ' ');
    }
    line += " |\n";
    return line;
  };
  std::string out = render_row(header_);
  std::string rule = "|";
  for (size_t w : widths) rule += std::string(w + 2, '-') + "|";
  out += rule + "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

std::string Table::ToCsvString() const {
  std::string out;
  auto append_row = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += ',';
      out += CsvEscape(row[i]);
    }
    out += '\n';
  };
  append_row(header_);
  for (const auto& row : rows_) append_row(row);
  return out;
}

Status Table::WriteCsv(const std::string& path) const {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) return IoError("cannot open for writing: " + path);
  const std::string body = ToCsvString();
  file.write(body.data(), static_cast<std::streamsize>(body.size()));
  if (!file) return IoError("short write: " + path);
  return Status::Ok();
}

}  // namespace atypical
