// Minimal command-line flag parsing for the CLI and examples.
//
//   FlagParser flags(argc, argv);
//   const std::string out = flags.GetString("out", "data/");
//   const int months = static_cast<int>(flags.GetInt("months", 3));
//   if (!flags.ok()) { ... flags.error() ... }
//
// Accepted forms: --name=value, --name value, --name (boolean true).
// Everything before the first --flag is a positional argument.
#ifndef ATYPICAL_UTIL_FLAGS_H_
#define ATYPICAL_UTIL_FLAGS_H_

#include <map>
#include <string>
#include <vector>

namespace atypical {

class FlagParser {
 public:
  FlagParser(int argc, const char* const* argv);

  // Parse-time diagnostics (unknown forms like "-x" set an error).
  bool ok() const { return error_.empty(); }
  const std::string& error() const { return error_; }

  // Positional arguments in order (argv[0] excluded).
  const std::vector<std::string>& positional() const { return positional_; }

  bool Has(const std::string& name) const { return values_.contains(name); }

  // Typed getters; malformed values record an error and return `fallback`.
  std::string GetString(const std::string& name, std::string fallback) const;
  int64_t GetInt(const std::string& name, int64_t fallback) const;
  double GetDouble(const std::string& name, double fallback) const;
  bool GetBool(const std::string& name, bool fallback) const;

  // Flags present on the command line but never read by a getter; callers
  // use this to reject typos.
  std::vector<std::string> UnreadFlags() const;

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
  mutable std::map<std::string, bool> read_;
  mutable std::string error_;
};

}  // namespace atypical

#endif  // ATYPICAL_UTIL_FLAGS_H_
