#include "util/fault.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <utility>

#include "util/logging.h"

namespace atypical {

size_t FaultPlan::FlipBit(std::vector<uint8_t>* bytes, size_t lo, size_t hi) {
  if (hi == 0) hi = bytes->size();
  CHECK_LT(lo, hi);
  CHECK_LE(hi, bytes->size());
  const size_t offset = lo + static_cast<size_t>(rng_.UniformInt(hi - lo));
  (*bytes)[offset] ^= static_cast<uint8_t>(1u << rng_.UniformInt(8));
  return offset;
}

size_t FaultPlan::TruncateTail(std::vector<uint8_t>* bytes, size_t lo) {
  CHECK_LT(lo, bytes->size());
  const size_t new_size =
      lo + static_cast<size_t>(rng_.UniformInt(bytes->size() - lo));
  bytes->resize(new_size);
  return new_size;
}

void FaultPlan::TruncateTo(std::vector<uint8_t>* bytes, size_t new_size) {
  CHECK_LE(new_size, bytes->size());
  bytes->resize(new_size);
}

uint32_t FaultPlan::ScrambleU32(std::vector<uint8_t>* bytes, size_t offset) {
  CHECK_LE(offset + 4, bytes->size());
  const uint32_t value = static_cast<uint32_t>(rng_.Next64());
  (*bytes)[offset] = static_cast<uint8_t>(value);
  (*bytes)[offset + 1] = static_cast<uint8_t>(value >> 8);
  (*bytes)[offset + 2] = static_cast<uint8_t>(value >> 16);
  (*bytes)[offset + 3] = static_cast<uint8_t>(value >> 24);
  return value;
}

void FaultPlan::SpliceOut(std::vector<uint8_t>* bytes, size_t lo, size_t len) {
  CHECK_LE(lo + len, bytes->size());
  bytes->erase(bytes->begin() + static_cast<ptrdiff_t>(lo),
               bytes->begin() + static_cast<ptrdiff_t>(lo + len));
}

void FaultPlan::DuplicateAt(std::vector<uint8_t>* bytes, size_t lo,
                            size_t len) {
  CHECK_LE(lo + len, bytes->size());
  const std::vector<uint8_t> range(
      bytes->begin() + static_cast<ptrdiff_t>(lo),
      bytes->begin() + static_cast<ptrdiff_t>(lo + len));
  bytes->insert(bytes->begin() + static_cast<ptrdiff_t>(lo + len),
                range.begin(), range.end());
}

size_t FaultPlan::DuplicateRange(std::vector<uint8_t>* bytes, size_t max_len) {
  CHECK(!bytes->empty());
  CHECK_GT(max_len, 0u);
  const size_t len =
      1 + static_cast<size_t>(
              rng_.UniformInt(std::min(max_len, bytes->size())));
  const size_t offset =
      static_cast<size_t>(rng_.UniformInt(bytes->size() - len + 1));
  const std::vector<uint8_t> range(bytes->begin() + offset,
                                   bytes->begin() + offset + len);
  bytes->insert(bytes->begin() + offset + len, range.begin(), range.end());
  return offset;
}

std::vector<AtypicalRecord> FaultPlan::DropRecords(
    std::vector<AtypicalRecord> records, double p) {
  std::vector<AtypicalRecord> out;
  out.reserve(records.size());
  for (const AtypicalRecord& r : records) {
    if (!rng_.Bernoulli(p)) out.push_back(r);
  }
  return out;
}

std::vector<AtypicalRecord> FaultPlan::DelayRecords(
    std::vector<AtypicalRecord> records, int max_delay_windows) {
  CHECK_GE(max_delay_windows, 0);
  std::vector<std::pair<uint64_t, size_t>> arrival(records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    const uint64_t delay =
        rng_.UniformInt(static_cast<uint64_t>(max_delay_windows) + 1);
    arrival[i] = {static_cast<uint64_t>(records[i].window) + delay, i};
  }
  std::stable_sort(arrival.begin(), arrival.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<AtypicalRecord> out;
  out.reserve(records.size());
  for (const auto& [key, index] : arrival) out.push_back(records[index]);
  return out;
}

std::vector<AtypicalRecord> FaultPlan::DuplicateRecords(
    std::vector<AtypicalRecord> records, double p) {
  std::vector<AtypicalRecord> out;
  out.reserve(records.size());
  for (const AtypicalRecord& r : records) {
    out.push_back(r);
    if (rng_.Bernoulli(p)) out.push_back(r);
  }
  return out;
}

std::vector<AtypicalRecord> FaultPlan::CorruptRecords(
    std::vector<AtypicalRecord> records, double p, const TimeGrid& grid) {
  for (AtypicalRecord& r : records) {
    if (!rng_.Bernoulli(p)) continue;
    switch (corrupt_kind_++ % 4) {
      case 0:
        r.sensor = kInvalidSensor;
        break;
      case 1:
        r.severity_minutes = std::numeric_limits<float>::quiet_NaN();
        break;
      case 2:
        r.severity_minutes = -(r.severity_minutes + 1.0f);
        break;
      default:
        r.severity_minutes =
            static_cast<float>(grid.window_minutes()) * 4.0f + 1.0f;
        break;
    }
  }
  return records;
}

}  // namespace atypical
