// Lightweight error-handling primitives used across the library.
//
// The library does not throw exceptions across API boundaries.  Fallible
// operations return a `Status`, or a `Result<T>` when they also produce a
// value.  Both are cheap to move and carry a code plus a human-readable
// message.
//
// Example:
//   Result<Dataset> ds = reader.Read(path);
//   if (!ds.ok()) return ds.status();
//   Use(ds.value());
#ifndef ATYPICAL_UTIL_STATUS_H_
#define ATYPICAL_UTIL_STATUS_H_

#include <cstdint>
#include <string>
#include <utility>
#include <variant>

namespace atypical {

enum class StatusCode : int8_t {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kDataLoss,
  kIoError,
  kUnimplemented,
  kInternal,
};

// Returns a stable lower-case name for `code` ("ok", "invalid_argument", ...).
const char* StatusCodeName(StatusCode code);

// Value-semantic error descriptor.  An OK status carries no message.
//
// The class itself is [[nodiscard]]: any expression returning a Status by
// value must be consumed.  Intentional discards are written
// `(void)expr;  // reason` — scripts/atypical_lint.py (AL005) rejects a
// `(void)` without the trailing justification.
class [[nodiscard]] Status {
 public:
  // Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  [[nodiscard]] bool ok() const { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  // "ok" or "<code_name>: <message>".
  [[nodiscard]] std::string ToString() const {
    if (ok()) return "ok";
    return std::string(StatusCodeName(code_)) + ": " + message_;
  }

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

[[nodiscard]] inline Status InvalidArgumentError(std::string msg) {
  return Status(StatusCode::kInvalidArgument, std::move(msg));
}
[[nodiscard]] inline Status NotFoundError(std::string msg) {
  return Status(StatusCode::kNotFound, std::move(msg));
}
[[nodiscard]] inline Status OutOfRangeError(std::string msg) {
  return Status(StatusCode::kOutOfRange, std::move(msg));
}
[[nodiscard]] inline Status FailedPreconditionError(std::string msg) {
  return Status(StatusCode::kFailedPrecondition, std::move(msg));
}
[[nodiscard]] inline Status DataLossError(std::string msg) {
  return Status(StatusCode::kDataLoss, std::move(msg));
}
[[nodiscard]] inline Status IoError(std::string msg) {
  return Status(StatusCode::kIoError, std::move(msg));
}
[[nodiscard]] inline Status UnimplementedError(std::string msg) {
  return Status(StatusCode::kUnimplemented, std::move(msg));
}
[[nodiscard]] inline Status InternalError(std::string msg) {
  return Status(StatusCode::kInternal, std::move(msg));
}

// A value or an error.  Accessing `value()` on an error result aborts (the
// caller must check `ok()` first); this mirrors the CHECK discipline used
// throughout the library.
//
// [[nodiscard]] at class scope: dropping a Result drops both the value and
// the error, so every return must be bound or explicitly `(void)`-discarded
// with a justification (enforced by scripts/atypical_lint.py AL005).
template <typename T>
class [[nodiscard]] Result {
 public:
  // Intentionally implicit so functions can `return value;` / `return status;`.
  Result(T value) : state_(std::move(value)) {}
  Result(Status status) : state_(std::move(status)) {}

  [[nodiscard]] bool ok() const { return std::holds_alternative<T>(state_); }

  [[nodiscard]] const Status& status() const {
    static const Status kOkStatus;
    if (ok()) return kOkStatus;
    return std::get<Status>(state_);
  }

  [[nodiscard]] const T& value() const& {
    AbortIfError();
    return std::get<T>(state_);
  }
  [[nodiscard]] T& value() & {
    AbortIfError();
    return std::get<T>(state_);
  }
  [[nodiscard]] T&& value() && {
    AbortIfError();
    return std::move(std::get<T>(state_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void AbortIfError() const;

  std::variant<T, Status> state_;
};

namespace internal_status {
// Out-of-line abort keeps Result<T> accessors small.  Defined in logging.cc
// to reuse the fatal-log machinery.
[[noreturn]] void DieBadResultAccess(const Status& status);
}  // namespace internal_status

template <typename T>
void Result<T>::AbortIfError() const {
  if (!ok()) internal_status::DieBadResultAccess(std::get<Status>(state_));
}

// Propagates a non-OK status from an expression producing a Status.
#define ATYPICAL_RETURN_IF_ERROR(expr)                   \
  do {                                                   \
    ::atypical::Status _st = (expr);                     \
    if (!_st.ok()) return _st;                           \
  } while (false)

}  // namespace atypical

#endif  // ATYPICAL_UTIL_STATUS_H_
