// Hash-layout perturbation hook for determinism testing (DESIGN §13).
//
// Deterministic modules must not depend on the iteration order of unordered
// containers.  AL009/AL012 keep order dependence out of the source; this
// hook proves it at runtime: perturbing the initial bucket request changes
// libstdc++'s chosen bucket-count prime, which reshuffles iteration order
// without changing contents.  Production runs keep the perturbation at 0
// (PerturbedReserve(c, n) is exactly reserve(n)); the determinism regression
// test and the CI determinism-smoke job vary it — via
// SetHashLayoutPerturbation() or the ATYPICAL_HASH_PERTURB environment
// variable — and require analyze output to stay bit-identical.
#ifndef ATYPICAL_UTIL_HASH_PERTURB_H_
#define ATYPICAL_UTIL_HASH_PERTURB_H_

#include <cstddef>

namespace atypical {

// Extra buckets added to every PerturbedReserve request.  Read once from
// ATYPICAL_HASH_PERTURB (unset/invalid -> 0).
size_t HashLayoutPerturbation();

// Test-only override; call before the containers under test are built.
// Not synchronised against concurrent PerturbedReserve calls.
void SetHashLayoutPerturbation(size_t extra_buckets);

// reserve(n) whose bucket request is test-perturbable.  Use it wherever a
// deterministic module pre-sizes an unordered container, so the regression
// harness can shuffle hash layouts underneath the whole pipeline.
template <typename Container>
void PerturbedReserve(Container& container, size_t n) {
  container.reserve(n + HashLayoutPerturbation());
}

}  // namespace atypical

#endif  // ATYPICAL_UTIL_HASH_PERTURB_H_
