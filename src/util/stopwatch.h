// Wall-clock stopwatch used by benches to report construction/query costs.
#ifndef ATYPICAL_UTIL_STOPWATCH_H_
#define ATYPICAL_UTIL_STOPWATCH_H_

#include <chrono>

namespace atypical {

// Measures elapsed wall time.  Starts running on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace atypical

#endif  // ATYPICAL_UTIL_STOPWATCH_H_
