// Scoped heap-allocation counter (DESIGN §15) — the runtime half of the
// serving-readiness contract.
//
// scripts/check_effects.py proves *statically* that ATYPICAL_HOT functions
// stay off locks and I/O and that their allocations are budgeted; AllocProbe
// measures the same paths at runtime so the two verdicts cross-validate.
// Tests warm a path up (first calls may lazily build sketches, grow caches,
// reach steady-state capacity), then probe a repeat call and pin the count
// to a named budget:
//
//   util::AllocProbe probe;
//   auto result = engine.Run(query, strategy, &scratch);
//   EXPECT_LE(probe.Count(), kQueryRunSteadyStateAllocBudget);
//
// Implementation: linking util/alloc_probe.cc replaces the global operator
// new/delete with malloc/free forwarders that bump a thread_local counter.
// The counter only sees this thread's allocations, so probes are stable
// under concurrent test shards.  The replacement comes from the static
// library, so it binds into a binary only when that binary references a
// probe symbol; production binaries that never include this header keep the
// default allocator.
#ifndef ATYPICAL_UTIL_ALLOC_PROBE_H_
#define ATYPICAL_UTIL_ALLOC_PROBE_H_

#include <cstdint>

namespace atypical {
namespace util {

// Total operator-new calls made by this thread since it started.  Monotone;
// never reset.  Scoped deltas are what tests should assert on (AllocProbe).
uint64_t ThreadAllocCount();

// Counts this thread's heap allocations from construction to Count().
class AllocProbe {
 public:
  AllocProbe() : start_(ThreadAllocCount()) {}

  // Allocations on this thread since the probe was constructed.  Probes
  // nest: an inner probe's Count() is included in the outer probe's.
  uint64_t Count() const { return ThreadAllocCount() - start_; }

 private:
  uint64_t start_;
};

}  // namespace util
}  // namespace atypical

#endif  // ATYPICAL_UTIL_ALLOC_PROBE_H_
