#include "util/flags.h"

#include "util/string_util.h"

namespace atypical {

FlagParser::FlagParser(int argc, const char* const* argv) {
  bool saw_flag = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      saw_flag = true;
      const size_t eq = arg.find('=');
      if (eq != std::string::npos) {
        values_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
      } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        values_[arg.substr(2)] = argv[++i];
      } else {
        values_[arg.substr(2)] = "true";  // boolean flag
      }
    } else if (!saw_flag) {
      positional_.push_back(arg);
    } else {
      error_ = "unexpected argument after flags: " + arg;
    }
  }
  for (const auto& [name, _] : values_) read_[name] = false;
}

std::string FlagParser::GetString(const std::string& name,
                                  std::string fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  read_[name] = true;
  return it->second;
}

int64_t FlagParser::GetInt(const std::string& name, int64_t fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  read_[name] = true;
  const int64_t value = ParseInt64(it->second);
  if (value < 0) {
    error_ = "flag --" + name + " expects a non-negative integer, got '" +
             it->second + "'";
    return fallback;
  }
  return value;
}

double FlagParser::GetDouble(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  read_[name] = true;
  const double kSentinel = -1.2345e300;
  const double value = ParseDouble(it->second, kSentinel);
  if (value == kSentinel) {
    error_ = "flag --" + name + " expects a number, got '" + it->second + "'";
    return fallback;
  }
  return value;
}

bool FlagParser::GetBool(const std::string& name, bool fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  read_[name] = true;
  if (it->second == "true" || it->second == "1") return true;
  if (it->second == "false" || it->second == "0") return false;
  error_ = "flag --" + name + " expects true/false, got '" + it->second + "'";
  return fallback;
}

std::vector<std::string> FlagParser::UnreadFlags() const {
  std::vector<std::string> unread;
  for (const auto& [name, was_read] : read_) {
    if (!was_read) unread.push_back(name);
  }
  return unread;
}

}  // namespace atypical
