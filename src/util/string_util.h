// Small string helpers (libstdc++ 12 has no <format>, so formatting goes
// through snprintf wrappers).
#ifndef ATYPICAL_UTIL_STRING_UTIL_H_
#define ATYPICAL_UTIL_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace atypical {

// printf-style formatting into a std::string.
std::string StrPrintf(const char* format, ...)
    __attribute__((format(printf, 1, 2)));

// Splits `text` on `sep`, keeping empty fields.
std::vector<std::string> StrSplit(std::string_view text, char sep);

// Joins `parts` with `sep`.
std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep);

// True if `text` starts with / ends with the given affix.
bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

// Formats a byte count as "12.3 KB" / "4.5 MB" etc.
std::string HumanBytes(uint64_t bytes);

// Formats minutes-of-day as "8:05am"-style clock text (paper figures use
// clock-time labels for temporal features).
std::string ClockLabel(int minute_of_day);

// Parses a non-negative integer; returns -1 on malformed input.
int64_t ParseInt64(std::string_view text);

// Parses a double; returns `fallback` on malformed input.
double ParseDouble(std::string_view text, double fallback);

}  // namespace atypical

#endif  // ATYPICAL_UTIL_STRING_UTIL_H_
