#include "util/string_util.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace atypical {

std::string StrPrintf(const char* format, ...) {
  va_list args;
  va_start(args, format);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, format, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, format, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::vector<std::string> StrSplit(std::string_view text, char sep) {
  std::vector<std::string> parts;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      parts.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return parts;
}

std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string HumanBytes(uint64_t bytes) {
  static const char* kUnits[] = {"B", "KB", "MB", "GB", "TB"};
  double value = static_cast<double>(bytes);
  int unit = 0;
  while (value >= 1024.0 && unit < 4) {
    value /= 1024.0;
    ++unit;
  }
  if (unit == 0) return StrPrintf("%llu B", (unsigned long long)bytes);
  return StrPrintf("%.1f %s", value, kUnits[unit]);
}

std::string ClockLabel(int minute_of_day) {
  minute_of_day = ((minute_of_day % 1440) + 1440) % 1440;
  const int hour24 = minute_of_day / 60;
  const int minute = minute_of_day % 60;
  const char* suffix = hour24 < 12 ? "am" : "pm";
  int hour12 = hour24 % 12;
  if (hour12 == 0) hour12 = 12;
  return StrPrintf("%d:%02d%s", hour12, minute, suffix);
}

int64_t ParseInt64(std::string_view text) {
  if (text.empty()) return -1;
  int64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return -1;
    value = value * 10 + (c - '0');
  }
  return value;
}

double ParseDouble(std::string_view text, double fallback) {
  if (text.empty()) return fallback;
  std::string buf(text);
  char* end = nullptr;
  const double value = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) return fallback;
  return value;
}

}  // namespace atypical
