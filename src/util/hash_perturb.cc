#include "util/hash_perturb.h"

#include <cstdlib>

namespace atypical {
namespace {

constexpr size_t kUninitialised = static_cast<size_t>(-1);
size_t g_perturbation = kUninitialised;

size_t FromEnv() {
  const char* env = std::getenv("ATYPICAL_HASH_PERTURB");
  if (env == nullptr || *env == '\0') return 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(env, &end, 10);
  if (end == env || *end != '\0') return 0;  // not a number: behave as unset
  return static_cast<size_t>(value);
}

}  // namespace

size_t HashLayoutPerturbation() {
  if (g_perturbation == kUninitialised) g_perturbation = FromEnv();
  return g_perturbation;
}

void SetHashLayoutPerturbation(size_t extra_buckets) {
  g_perturbation = extra_buckets;
}

}  // namespace atypical
