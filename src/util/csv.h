// Table output helpers for the benchmark harness.
//
// Every figure-reproduction bench emits (a) an aligned console table and
// (b) an optional CSV file, so results can be inspected and re-plotted.
#ifndef ATYPICAL_UTIL_CSV_H_
#define ATYPICAL_UTIL_CSV_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace atypical {

// Collects rows of string cells and renders them.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  // Adds a row; must have the same arity as the header.
  void AddRow(std::vector<std::string> cells);

  // Convenience: formats doubles with `precision` digits after the point.
  void AddNumericRow(const std::vector<double>& cells, int precision = 3);

  size_t num_rows() const { return rows_.size(); }
  const std::vector<std::string>& header() const { return header_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

  // Renders an aligned, pipe-separated console table.
  std::string ToAlignedString() const;

  // Renders RFC-4180-ish CSV (cells containing comma/quote/newline quoted).
  std::string ToCsvString() const;

  // Writes the CSV rendering to `path`.
  [[nodiscard]] Status WriteCsv(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace atypical

#endif  // ATYPICAL_UTIL_CSV_H_
