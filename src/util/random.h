// Deterministic pseudo-random number generation for the synthetic workload.
//
// The generator must be reproducible across platforms and runs (benches and
// tests fix seeds), so we avoid std::mt19937 + std::*_distribution, whose
// outputs are not specified identically across standard libraries, and use a
// small SplitMix64-based engine with explicitly-coded distributions instead.
#ifndef ATYPICAL_UTIL_RANDOM_H_
#define ATYPICAL_UTIL_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace atypical {

// SplitMix64: tiny, fast, passes BigCrush; one 64-bit word of state.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) : state_(seed) {}

  // Next raw 64 random bits.
  uint64_t Next64();

  // Uniform in [0, 1).
  double Uniform();

  // Uniform in [lo, hi).
  double Uniform(double lo, double hi);

  // Uniform integer in [0, n).  n must be > 0.
  uint64_t UniformInt(uint64_t n);

  // Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi);

  // Standard normal via Box-Muller (deterministic, no cached spare).
  double Normal();
  double Normal(double mean, double stddev);

  // Bernoulli trial.
  bool Bernoulli(double p);

  // Poisson-distributed count (Knuth for small lambda, normal approximation
  // for large lambda).
  int Poisson(double lambda);

  // Exponential with the given rate (mean 1/rate).
  double Exponential(double rate);

  // Samples an index in [0, weights.size()) proportionally to weights.
  // All weights must be >= 0 with a positive sum.
  size_t WeightedIndex(const std::vector<double>& weights);

  // Derives an independent child generator; stable for (seed, stream) pairs.
  Rng Fork(uint64_t stream);

 private:
  uint64_t state_;
};

}  // namespace atypical

#endif  // ATYPICAL_UTIL_RANDOM_H_
