// Clang thread-safety-analysis attribute macros (no-ops elsewhere).
//
// These drive Clang's `-Wthread-safety` static race detection: annotate
// shared state with ATYPICAL_GUARDED_BY(mu) and lock-requiring functions
// with ATYPICAL_REQUIRES(mu), and the compiler rejects any access path
// that does not provably hold the lock.  GCC compiles the same code with
// the annotations expanded to nothing, so the annotations cost nothing
// where they cannot be checked.
//
// Naming follows the capability model used by abseil/clang docs:
//   CAPABILITY      — a type that represents a lockable resource (Mutex)
//   GUARDED_BY      — data that may only be touched while holding the lock
//   REQUIRES        — caller must hold the lock (non-exclusively: _SHARED)
//   ACQUIRE/RELEASE — functions that take/drop the lock themselves
//   SCOPED_CAPABILITY — RAII types like MutexLock
#ifndef ATYPICAL_UTIL_THREAD_ANNOTATIONS_H_
#define ATYPICAL_UTIL_THREAD_ANNOTATIONS_H_

#if defined(__clang__)
#define ATYPICAL_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define ATYPICAL_THREAD_ANNOTATION(x)  // no-op: only Clang checks these
#endif

#define ATYPICAL_CAPABILITY(x) ATYPICAL_THREAD_ANNOTATION(capability(x))

#define ATYPICAL_SCOPED_CAPABILITY ATYPICAL_THREAD_ANNOTATION(scoped_lockable)

#define ATYPICAL_GUARDED_BY(x) ATYPICAL_THREAD_ANNOTATION(guarded_by(x))

#define ATYPICAL_PT_GUARDED_BY(x) ATYPICAL_THREAD_ANNOTATION(pt_guarded_by(x))

#define ATYPICAL_REQUIRES(...) \
  ATYPICAL_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

#define ATYPICAL_REQUIRES_SHARED(...) \
  ATYPICAL_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

#define ATYPICAL_ACQUIRE(...) \
  ATYPICAL_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

#define ATYPICAL_RELEASE(...) \
  ATYPICAL_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

#define ATYPICAL_TRY_ACQUIRE(...) \
  ATYPICAL_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

#define ATYPICAL_EXCLUDES(...) \
  ATYPICAL_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

#define ATYPICAL_RETURN_CAPABILITY(x) \
  ATYPICAL_THREAD_ANNOTATION(lock_returned(x))

// Escape hatch for code the analysis cannot follow (e.g. locking driven by
// runtime data).  Use sparingly and leave a comment saying why.
#define ATYPICAL_NO_THREAD_SAFETY_ANALYSIS \
  ATYPICAL_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif  // ATYPICAL_UTIL_THREAD_ANNOTATIONS_H_
