// Thread-safety-annotated synchronization primitives.
//
// Thin wrappers over std::mutex / std::condition_variable that carry the
// Clang capability annotations from thread_annotations.h, so all shared
// state in the repo can be declared ATYPICAL_GUARDED_BY(mu_) and verified
// at compile time under `-Wthread-safety` (and at run time under
// `-DATYPICAL_TSAN=ON`).
//
//   Mutex mu_;
//   int queue_depth_ ATYPICAL_GUARDED_BY(mu_) = 0;
//
//   void Push() {
//     MutexLock lock(&mu_);
//     ++queue_depth_;          // ok: lock held
//     cv_.Signal();
//   }
//
// Raw std::mutex must not be used for new shared state — the analysis
// cannot see it.  See DESIGN.md "Correctness tooling".
#ifndef ATYPICAL_UTIL_SYNC_H_
#define ATYPICAL_UTIL_SYNC_H_

#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.h"

namespace atypical {

// A standard mutex carrying the `capability` annotation.
class ATYPICAL_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ATYPICAL_ACQUIRE() { mu_.lock(); }
  void Unlock() ATYPICAL_RELEASE() { mu_.unlock(); }
  bool TryLock() ATYPICAL_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  // For CondVar::Wait; not part of the public locking API.
  std::mutex& native_handle() { return mu_; }

 private:
  std::mutex mu_;
};

// RAII lock; the scoped_lockable annotation lets the analysis track the
// critical section's extent.
class ATYPICAL_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ATYPICAL_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() ATYPICAL_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

// Condition variable bound to the annotated Mutex.  Wait() requires the
// lock by annotation, mirroring the std contract.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  // Atomically releases *mu and blocks until notified; re-acquires before
  // returning.  Spurious wakeups possible — always wait in a predicate loop.
  void Wait(Mutex* mu) ATYPICAL_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu->native_handle(), std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // caller still owns the mutex, as the annotation says
  }

  void Signal() { cv_.notify_one(); }
  void SignalAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace atypical

#endif  // ATYPICAL_UTIL_SYNC_H_
