// Serving-readiness annotation for query hot paths (DESIGN §15).
//
// ATYPICAL_HOT marks a function as part of the read-mostly serving surface:
// the paths a high-QPS QueryEngine will run per request (ROADMAP item 3).
// The static effect analysis (scripts/check_effects.py) builds a call graph
// over src/ and gates every annotated function with three lint checks:
//
//   AL013 hot-path-no-block   — must not reach util::Mutex / CondVar / joins
//   AL014 hot-path-no-io      — must not reach streams, stdio, or LOG(...)
//   AL015 hot-path-alloc-budget — allocation must be budgeted: either absent
//                                 or grandfathered in scripts/effects_ratchet
//                                 .json with a burn-down note
//
// The runtime counterpart is util/alloc_probe.h: tests wrap annotated paths
// in an AllocProbe and pin their steady-state allocation counts, so the
// static verdict and the measured behaviour cross-validate each other.
//
// The macro also tells the compiler the function is hot, which biases
// inlining and code layout in its favour on GCC/Clang.
#ifndef ATYPICAL_UTIL_HOT_PATH_H_
#define ATYPICAL_UTIL_HOT_PATH_H_

#if defined(__GNUC__) || defined(__clang__)
#define ATYPICAL_HOT __attribute__((hot))
#else
#define ATYPICAL_HOT
#endif

#endif  // ATYPICAL_UTIL_HOT_PATH_H_
