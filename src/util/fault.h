// Deterministic fault injection for robustness tests, benches and demos.
//
// A `FaultPlan` is a seeded source of reproducible corruption.  It mangles
// byte buffers the way disks and transports do (bit flips, truncation,
// duplicated ranges) and record streams the way real CPS feeds degrade
// (drops, bounded delay/reorder, duplicates, corrupt fields).  The same
// (seed, operation sequence) always yields the same faults, so tests can
// assert exact salvage and quarantine outcomes instead of sampling.
//
// Consumers: the storage corruption/salvage tests (byte faults against the
// on-disk block format), the ingest-guard tests (stream faults against
// `RobustStreamingEventBuilder`), and `bench_robust_ingest`.
#ifndef ATYPICAL_UTIL_FAULT_H_
#define ATYPICAL_UTIL_FAULT_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "cps/record.h"
#include "util/random.h"

namespace atypical {

class FaultPlan {
 public:
  explicit FaultPlan(uint64_t seed) : rng_(seed) {}

  // ---- Byte-buffer faults (on-disk / wire corruption) ----

  // Flips one random bit of one byte in `bytes[lo, hi)` (`hi == 0` means
  // `bytes->size()`).  Returns the byte offset touched.
  size_t FlipBit(std::vector<uint8_t>* bytes, size_t lo = 0, size_t hi = 0);

  // Truncates the buffer to a random length in [lo, size).  Returns the new
  // size.
  size_t TruncateTail(std::vector<uint8_t>* bytes, size_t lo = 0);

  // Deterministic truncation to exactly `new_size` bytes (crash-consistency
  // sweeps hit every byte boundary; the random TruncateTail cannot).
  static void TruncateTo(std::vector<uint8_t>* bytes, size_t new_size);

  // Duplicates a random range of 1..max_len bytes in place, re-inserting the
  // copy immediately after the original (a torn/replayed write).  Returns
  // the offset of the duplicated range.
  size_t DuplicateRange(std::vector<uint8_t>* bytes, size_t max_len = 64);

  // ---- Structure-targeted primitives (format-aware fuzzing) ----
  // The storage block mutator composes these against parsed file geometry;
  // they stay format-agnostic here (offsets are the caller's business).

  // Overwrites the 4 bytes at `offset` with random bits.  Returns the value
  // written (little-endian view of those bytes).
  uint32_t ScrambleU32(std::vector<uint8_t>* bytes, size_t offset);

  // Removes `bytes[lo, lo + len)` in place (a lost/skipped write).
  static void SpliceOut(std::vector<uint8_t>* bytes, size_t lo, size_t len);

  // Re-inserts a copy of `bytes[lo, lo + len)` immediately after itself
  // (a replayed write at caller-chosen granularity, e.g. one whole block).
  static void DuplicateAt(std::vector<uint8_t>* bytes, size_t lo, size_t len);

  // ---- Record-stream faults (live-feed degradation) ----

  // Drops each record independently with probability `p`.
  std::vector<AtypicalRecord> DropRecords(std::vector<AtypicalRecord> records,
                                          double p);

  // Delays each record by a uniform 0..max_delay_windows windows and stably
  // re-sorts by delayed arrival, i.e. permutes the stream within that
  // lateness horizon: when a record arrives, every earlier arrival has a
  // window at most `max_delay_windows` ahead of it.  max_delay_windows == 0
  // is the identity on a window-sorted stream.
  std::vector<AtypicalRecord> DelayRecords(std::vector<AtypicalRecord> records,
                                           int max_delay_windows);

  // Duplicates each record independently with probability `p`; the copy
  // arrives immediately after the original.
  std::vector<AtypicalRecord> DuplicateRecords(
      std::vector<AtypicalRecord> records, double p);

  // Corrupts each record independently with probability `p`, cycling
  // deterministically through the malformation kinds the ingest guard
  // quarantines: unknown sensor id, NaN severity, negative severity,
  // severity exceeding the window length of `grid`.
  std::vector<AtypicalRecord> CorruptRecords(std::vector<AtypicalRecord> records,
                                             double p, const TimeGrid& grid);

 private:
  Rng rng_;
  uint64_t corrupt_kind_ = 0;  // round-robin over malformation kinds
};

}  // namespace atypical

#endif  // ATYPICAL_UTIL_FAULT_H_
