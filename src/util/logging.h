// Minimal logging and assertion macros.
//
//   LOG(INFO) << "built " << n << " clusters";
//   CHECK(ptr != nullptr) << "cluster must exist";
//   CHECK_EQ(a, b);
//   DCHECK_LE(sim, 1.0) << "similarity is a mean of fractions";
//
// FATAL logs abort the process.  CHECK macros are always on (they guard
// internal invariants, not user input; user input errors surface as Status).
// DCHECK macros compile to nothing in Release (NDEBUG) builds: use them for
// invariants that are too hot to verify in production — per-record
// reconciliation, per-merge algebra spot-checks — while CHECK stays for
// cheap preconditions whose violation would corrupt results silently.
// DCHECK operands are not evaluated in Release, so they must be
// side-effect-free.
#ifndef ATYPICAL_UTIL_LOGGING_H_
#define ATYPICAL_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace atypical {

enum class LogSeverity : int { kInfo = 0, kWarning = 1, kError = 2, kFatal = 3 };

// Minimum severity that is actually written to stderr (default kInfo).
// Benches raise this to keep tables clean.
void SetMinLogSeverity(LogSeverity severity);
LogSeverity MinLogSeverity();

namespace internal_logging {

class LogMessage {
 public:
  LogMessage(LogSeverity severity, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogSeverity severity_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

// Swallows the streamed message for disabled log levels.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

// Turns a streamed expression into void so CHECK can live in a ternary.
// operator& binds looser than operator<<, so the whole chained message is
// evaluated first.
class Voidify {
 public:
  void operator&(std::ostream&) {}
};

}  // namespace internal_logging
}  // namespace atypical

#define ATYPICAL_LOG_INFO                                         \
  ::atypical::internal_logging::LogMessage(                       \
      ::atypical::LogSeverity::kInfo, __FILE__, __LINE__)         \
      .stream()
#define ATYPICAL_LOG_WARNING                                      \
  ::atypical::internal_logging::LogMessage(                       \
      ::atypical::LogSeverity::kWarning, __FILE__, __LINE__)      \
      .stream()
#define ATYPICAL_LOG_ERROR                                        \
  ::atypical::internal_logging::LogMessage(                       \
      ::atypical::LogSeverity::kError, __FILE__, __LINE__)        \
      .stream()
#define ATYPICAL_LOG_FATAL                                        \
  ::atypical::internal_logging::LogMessage(                       \
      ::atypical::LogSeverity::kFatal, __FILE__, __LINE__)        \
      .stream()

#define LOG(severity) ATYPICAL_LOG_##severity

#define CHECK(condition)                                          \
  (condition) ? (void)0                                           \
              : ::atypical::internal_logging::Voidify() &         \
                    ::atypical::internal_logging::LogMessage(     \
                        ::atypical::LogSeverity::kFatal,          \
                        __FILE__, __LINE__)                       \
                            .stream()                             \
                        << "Check failed: " #condition " "

#define CHECK_EQ(a, b) CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define CHECK_NE(a, b) CHECK((a) != (b)) << "(" << (a) << " vs " << (b) << ") "
#define CHECK_LT(a, b) CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define CHECK_LE(a, b) CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define CHECK_GT(a, b) CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "
#define CHECK_GE(a, b) CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "

// Checks that an expression returning Status is OK.
#define CHECK_OK(expr)                                            \
  do {                                                            \
    ::atypical::Status _st = (expr);                              \
    CHECK(_st.ok()) << _st.ToString();                            \
  } while (false)

// Debug-only checks.  In Release the condition is never evaluated but stays
// syntactically checked (and streamed operands swallowed), so DCHECKed code
// cannot rot behind the build type.
#ifdef NDEBUG
#define ATYPICAL_DCHECK_IS_ON 0
#else
#define ATYPICAL_DCHECK_IS_ON 1
#endif

#if ATYPICAL_DCHECK_IS_ON
#define DCHECK(condition) CHECK(condition)
#define DCHECK_EQ(a, b) CHECK_EQ(a, b)
#define DCHECK_NE(a, b) CHECK_NE(a, b)
#define DCHECK_LT(a, b) CHECK_LT(a, b)
#define DCHECK_LE(a, b) CHECK_LE(a, b)
#define DCHECK_GT(a, b) CHECK_GT(a, b)
#define DCHECK_GE(a, b) CHECK_GE(a, b)
#define DCHECK_OK(expr) CHECK_OK(expr)
#else
#define ATYPICAL_DCHECK_DISCARD(condition)                        \
  while (false && (condition)) ::atypical::internal_logging::NullStream()
#define DCHECK(condition) ATYPICAL_DCHECK_DISCARD(condition)
#define DCHECK_EQ(a, b) ATYPICAL_DCHECK_DISCARD((a) == (b))
#define DCHECK_NE(a, b) ATYPICAL_DCHECK_DISCARD((a) != (b))
#define DCHECK_LT(a, b) ATYPICAL_DCHECK_DISCARD((a) < (b))
#define DCHECK_LE(a, b) ATYPICAL_DCHECK_DISCARD((a) <= (b))
#define DCHECK_GT(a, b) ATYPICAL_DCHECK_DISCARD((a) > (b))
#define DCHECK_GE(a, b) ATYPICAL_DCHECK_DISCARD((a) >= (b))
#define DCHECK_OK(expr) ATYPICAL_DCHECK_DISCARD((expr).ok())
#endif

#endif  // ATYPICAL_UTIL_LOGGING_H_
