// Minimal logging and assertion macros.
//
//   LOG(INFO) << "built " << n << " clusters";
//   CHECK(ptr != nullptr) << "cluster must exist";
//   CHECK_EQ(a, b);
//
// FATAL logs abort the process.  CHECK macros are always on (they guard
// internal invariants, not user input; user input errors surface as Status).
#ifndef ATYPICAL_UTIL_LOGGING_H_
#define ATYPICAL_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace atypical {

enum class LogSeverity : int { kInfo = 0, kWarning = 1, kError = 2, kFatal = 3 };

// Minimum severity that is actually written to stderr (default kInfo).
// Benches raise this to keep tables clean.
void SetMinLogSeverity(LogSeverity severity);
LogSeverity MinLogSeverity();

namespace internal_logging {

class LogMessage {
 public:
  LogMessage(LogSeverity severity, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogSeverity severity_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

// Swallows the streamed message for disabled log levels.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

// Turns a streamed expression into void so CHECK can live in a ternary.
// operator& binds looser than operator<<, so the whole chained message is
// evaluated first.
class Voidify {
 public:
  void operator&(std::ostream&) {}
};

}  // namespace internal_logging
}  // namespace atypical

#define ATYPICAL_LOG_INFO                                         \
  ::atypical::internal_logging::LogMessage(                       \
      ::atypical::LogSeverity::kInfo, __FILE__, __LINE__)         \
      .stream()
#define ATYPICAL_LOG_WARNING                                      \
  ::atypical::internal_logging::LogMessage(                       \
      ::atypical::LogSeverity::kWarning, __FILE__, __LINE__)      \
      .stream()
#define ATYPICAL_LOG_ERROR                                        \
  ::atypical::internal_logging::LogMessage(                       \
      ::atypical::LogSeverity::kError, __FILE__, __LINE__)        \
      .stream()
#define ATYPICAL_LOG_FATAL                                        \
  ::atypical::internal_logging::LogMessage(                       \
      ::atypical::LogSeverity::kFatal, __FILE__, __LINE__)        \
      .stream()

#define LOG(severity) ATYPICAL_LOG_##severity

#define CHECK(condition)                                          \
  (condition) ? (void)0                                           \
              : ::atypical::internal_logging::Voidify() &         \
                    ::atypical::internal_logging::LogMessage(     \
                        ::atypical::LogSeverity::kFatal,          \
                        __FILE__, __LINE__)                       \
                            .stream()                             \
                        << "Check failed: " #condition " "

#define CHECK_EQ(a, b) CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define CHECK_NE(a, b) CHECK((a) != (b)) << "(" << (a) << " vs " << (b) << ") "
#define CHECK_LT(a, b) CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define CHECK_LE(a, b) CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define CHECK_GT(a, b) CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "
#define CHECK_GE(a, b) CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "

// Checks that an expression returning Status is OK.
#define CHECK_OK(expr)                                            \
  do {                                                            \
    ::atypical::Status _st = (expr);                              \
    CHECK(_st.ok()) << _st.ToString();                            \
  } while (false)

#endif  // ATYPICAL_UTIL_LOGGING_H_
