#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "util/status.h"

namespace atypical {

namespace {
std::atomic<int> g_min_severity{static_cast<int>(LogSeverity::kInfo)};

const char* SeverityTag(LogSeverity severity) {
  switch (severity) {
    case LogSeverity::kInfo:
      return "I";
    case LogSeverity::kWarning:
      return "W";
    case LogSeverity::kError:
      return "E";
    case LogSeverity::kFatal:
      return "F";
  }
  return "?";
}
}  // namespace

void SetMinLogSeverity(LogSeverity severity) {
  g_min_severity.store(static_cast<int>(severity), std::memory_order_relaxed);
}

LogSeverity MinLogSeverity() {
  return static_cast<LogSeverity>(
      g_min_severity.load(std::memory_order_relaxed));
}

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid_argument";
    case StatusCode::kNotFound:
      return "not_found";
    case StatusCode::kOutOfRange:
      return "out_of_range";
    case StatusCode::kFailedPrecondition:
      return "failed_precondition";
    case StatusCode::kDataLoss:
      return "data_loss";
    case StatusCode::kIoError:
      return "io_error";
    case StatusCode::kUnimplemented:
      return "unimplemented";
    case StatusCode::kInternal:
      return "internal";
  }
  return "unknown";
}

namespace internal_status {
void DieBadResultAccess(const Status& status) {
  LOG(FATAL) << "Result accessed with error status: " << status.ToString();
  std::abort();  // not reached; LOG(FATAL) aborts.
}
}  // namespace internal_status

namespace internal_logging {

LogMessage::LogMessage(LogSeverity severity, const char* file, int line)
    : severity_(severity), file_(file), line_(line) {}

LogMessage::~LogMessage() {
  const bool enabled =
      static_cast<int>(severity_) >=
          g_min_severity.load(std::memory_order_relaxed) ||
      severity_ == LogSeverity::kFatal;
  if (enabled) {
    // Strip directories from the file name for compact output.
    const char* base = file_;
    for (const char* p = file_; *p != '\0'; ++p) {
      if (*p == '/') base = p + 1;
    }
    std::fprintf(stderr, "[%s %s:%d] %s\n", SeverityTag(severity_), base,
                 line_, stream_.str().c_str());
  }
  if (severity_ == LogSeverity::kFatal) std::abort();
}

}  // namespace internal_logging
}  // namespace atypical
