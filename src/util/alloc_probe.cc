// Global operator new/delete replacement backing util/alloc_probe.h.
//
// Every overload forwards to malloc/free and bumps a thread_local counter.
// The counter must be trivially destructible (plain integer) so counting
// stays safe during thread teardown, when allocations can still happen
// after thread_local destructors have run.
#include "util/alloc_probe.h"

#include <cstdlib>
#include <new>

namespace atypical {
namespace util {
namespace {

thread_local uint64_t g_thread_alloc_count = 0;

void* CountedAlloc(size_t size) {
  ++g_thread_alloc_count;
  // Zero-size requests must still return a unique non-null pointer.
  return std::malloc(size == 0 ? 1 : size);
}

void* CountedAlignedAlloc(size_t size, size_t alignment) {
  ++g_thread_alloc_count;
  if (size == 0) size = alignment;
  // aligned_alloc requires the size to be a multiple of the alignment.
  const size_t rounded = (size + alignment - 1) / alignment * alignment;
  return std::aligned_alloc(alignment, rounded);
}

}  // namespace

uint64_t ThreadAllocCount() { return g_thread_alloc_count; }

}  // namespace util
}  // namespace atypical

// The replacement operators live outside any namespace.  Throwing overloads
// must report exhaustion with std::bad_alloc; nothrow overloads return null.
void* operator new(size_t size) {
  void* p = atypical::util::CountedAlloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](size_t size) {
  void* p = atypical::util::CountedAlloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(size_t size, const std::nothrow_t&) noexcept {
  return atypical::util::CountedAlloc(size);
}

void* operator new[](size_t size, const std::nothrow_t&) noexcept {
  return atypical::util::CountedAlloc(size);
}

void* operator new(size_t size, std::align_val_t alignment) {
  void* p =
      atypical::util::CountedAlignedAlloc(size, static_cast<size_t>(alignment));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](size_t size, std::align_val_t alignment) {
  void* p =
      atypical::util::CountedAlignedAlloc(size, static_cast<size_t>(alignment));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, size_t) noexcept { std::free(p); }
void operator delete[](void* p, size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, size_t, std::align_val_t) noexcept {
  std::free(p);
}
