#include "util/random.h"

#include <cmath>

#include "util/logging.h"

namespace atypical {

uint64_t Rng::Next64() {
  // SplitMix64 (Steele, Lea, Flood 2014).
  state_ += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

double Rng::Uniform() {
  // 53 random bits into [0, 1).
  return static_cast<double>(Next64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

uint64_t Rng::UniformInt(uint64_t n) {
  CHECK_GT(n, 0u);
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % n;
  uint64_t v = Next64();
  while (v >= limit) v = Next64();
  return v % n;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  CHECK_LE(lo, hi);
  return lo + static_cast<int64_t>(
                  UniformInt(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::Normal() {
  // Box-Muller; draws two uniforms per variate, no cached spare so that the
  // stream position is a pure function of call count.
  double u1 = Uniform();
  while (u1 <= 0.0) u1 = Uniform();
  const double u2 = Uniform();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

int Rng::Poisson(double lambda) {
  CHECK_GE(lambda, 0.0);
  if (lambda == 0.0) return 0;
  if (lambda < 30.0) {
    // Knuth's multiplication method.
    const double limit = std::exp(-lambda);
    double product = Uniform();
    int count = 0;
    while (product > limit) {
      ++count;
      product *= Uniform();
    }
    return count;
  }
  // Normal approximation with continuity correction.
  const double v = Normal(lambda, std::sqrt(lambda));
  return v < 0.0 ? 0 : static_cast<int>(v + 0.5);
}

double Rng::Exponential(double rate) {
  CHECK_GT(rate, 0.0);
  double u = Uniform();
  while (u <= 0.0) u = Uniform();
  return -std::log(u) / rate;
}

size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    CHECK_GE(w, 0.0);
    total += w;
  }
  CHECK_GT(total, 0.0);
  double target = Uniform() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return weights.size() - 1;  // Floating-point slack: last positive weight.
}

Rng Rng::Fork(uint64_t stream) {
  // Mix the stream id into a fresh seed; golden-ratio increments keep child
  // streams decorrelated from the parent and from each other.
  return Rng(Next64() ^ (stream * 0xda942042e4dd58b5ULL + 0x2545f4914f6cdd1dULL));
}

}  // namespace atypical
