// Incremental streaming integration: online macro-clusters over a live feed
// with a streamed≡batch fixpoint guarantee.
//
// `IncrementalIntegrator` sits behind the streaming builders' emit seam
// (StreamingEventBuilder::EmitSeqFn) and maintains a running macro-state:
// each arriving micro-cluster is probed against the CandidateIndex and
// cascaded into the state until no alive pair of macro-clusters exceeds
// δsim — the same fixpoint *property* Algorithm 3 guarantees, restored in
// amortized per-arrival cost instead of an O(n²) per-epoch re-run.
//
// The online *partition* can legitimately differ from the batch one: the
// greedy order is arrival order, and committing merges as records arrive
// can fuse a pair (say B, C) that batch order would have kept apart because
// an earlier slot (A, grown by a later arrival D) would have absorbed C
// first — and the fused B∪C may dilute below δsim against A∪D.  No online
// commit discipline can be batch-prefix-equivalent, so the integrator keeps
// the arrived micro-clusters and `Finalize()` *re-derives* the canonical
// result: micros are sorted by their first-record arrival index (exactly
// batch RetrieveEvents' event order), re-numbered from the real id
// generator in that order, and run through the very same
// integration_internal::GreedyFixpoint the batch driver uses.  The output
// is therefore bit-identical — cluster ids included — to
// RetrieveMicroClusters + IntegrateClusters over the same records
// (property-tested across balance functions × δsim × permutations ×
// serial/parallel batch drivers).
//
// Id discipline: the builder and all provisional online merges draw from a
// private scratch generator (`scratch_ids()`, starting at 2^40) so the real
// generator's sequence is untouched until Finalize() replays it — which is
// what makes the finalized ids line up with batch.  See DESIGN.md §14.
#ifndef ATYPICAL_CORE_INCREMENTAL_INTEGRATION_H_
#define ATYPICAL_CORE_INCREMENTAL_INTEGRATION_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/cluster.h"
#include "core/integration.h"
#include "core/integration_internal.h"
#include "core/similarity.h"
#include "core/streaming.h"

namespace atypical {

// Online-side counters (the Finalize() run reports through the usual
// IntegrationStats).  Published to the obs registry as
// integration.incremental.* on Finalize()/destruction, delta-style.
struct IncrementalIntegrationStats {
  uint64_t arrivals = 0;
  uint64_t online_merges = 0;
  uint64_t similarity_checks = 0;
  uint64_t cascade_rounds = 0;
  uint64_t index_compactions = 0;
  // Arrivals whose cascade was cut short by max_fixpoint_rounds /
  // deadline_seconds (applied per arrival).  The state stays a valid,
  // severity-conserving partition; some qualifying pairs may linger until a
  // later arrival's cascade or Finalize() re-visits them.
  uint64_t budget_trips = 0;
  // False once any cascade tripped a budget: the online state is then not
  // guaranteed to be at its fixpoint.
  bool converged = true;
};

class IncrementalIntegrator {
 public:
  // `ids` is the real id generator shared with the rest of the pipeline
  // (e.g. AtypicalForest's); Finalize() is its only consumer.  It must
  // currently sit exactly where the equivalent batch run would start it.
  IncrementalIntegrator(const IntegrationParams& params,
                        ClusterIdGenerator* ids);
  ~IncrementalIntegrator();  // publishes outstanding online counters

  IncrementalIntegrator(const IncrementalIntegrator&) = delete;
  IncrementalIntegrator& operator=(const IncrementalIntegrator&) = delete;

  // Construct the streaming builder with this generator so provisional
  // micro ids never consume the real sequence (ids are re-assigned from the
  // real generator in Finalize()).
  ClusterIdGenerator* scratch_ids() { return &scratch_ids_; }

  // Adapter for the builders' seq-carrying emit seam.  The integrator must
  // outlive the builder using it.
  StreamingEventBuilder::EmitSeqFn AsEmitFn();

  // Feeds one closed micro-cluster whose earliest record was the
  // `first_record_seq`-th accepted record of the feed (the builders supply
  // this via EmitSeqFn).  Seqs must be unique across a Finalize() cycle.
  // Probes the candidate index and cascades merges until the online state
  // is back at its fixpoint (or a per-arrival budget trips).
  void Accept(AtypicalCluster micro, uint64_t first_record_seq);

  // Micro-clusters retained since construction / the last Reset().
  size_t num_micros() const { return retained_.size(); }
  // Macro-clusters currently alive in the online state.
  size_t num_macros() const { return alive_count_; }

  // Copies of the alive online macro-clusters, in slot order.  Ids are
  // provisional (scratch); severity mass is conserved: the snapshot's
  // record mass equals the sum over all retained micros.
  std::vector<AtypicalCluster> MacroSnapshot() const;

  const IncrementalIntegrationStats& online_stats() const { return stats_; }

  // Re-derives the canonical batch result from the retained micros:
  // bit-identical — ids included — to RetrieveMicroClusters +
  // IntegrateClusters over the same accepted records with the same params
  // and generator state (budget-tripped partials included: `stats` mirrors
  // the batch IntegrationStats, converged flag and all).  If
  // `canonical_micros` is non-null it receives the re-numbered micros (the
  // exact batch micro-clusters — e.g. for installing into a forest).
  // After Finalize() the integrator refuses further Accept()s until
  // Reset().
  std::vector<AtypicalCluster> Finalize(
      IntegrationStats* stats = nullptr,
      std::vector<AtypicalCluster>* canonical_micros = nullptr);

  // Publishes outstanding counters, then returns to the freshly-constructed
  // state (scratch generator re-based included) so one integrator can serve
  // consecutive days.  Online counters stay cumulative.
  void Reset();

 private:
  struct RetainedMicro {
    AtypicalCluster micro;
    uint64_t first_seq = 0;
  };

  // Restores the online fixpoint after `focus` changed (was appended or
  // grew).  Only the focus slot's pairs can newly qualify — every other
  // alive pair was already below δsim and is untouched — so re-checking the
  // focus against its candidate-key neighbours per round is sufficient.
  void Cascade(uint32_t focus);
  void PublishOnlineStats();

  IntegrationParams params_;
  ClusterIdGenerator* ids_;
  ClusterIdGenerator scratch_ids_;
  std::unique_ptr<integration_internal::CandidateIndex> index_;

  std::vector<AtypicalCluster> slots_;  // online state; merged-away = dead
  std::vector<bool> alive_;
  size_t alive_count_ = 0;
  std::vector<RetainedMicro> retained_;
  bool finalized_ = false;

  IncrementalIntegrationStats stats_;
  IncrementalIntegrationStats published_;
  SimilarityScanStats scan_stats_;
  std::vector<uint32_t> candidates_;  // scratch for Cascade
};

}  // namespace atypical

#endif  // ATYPICAL_CORE_INCREMENTAL_INTEGRATION_H_
