#include "core/parallel_integration.h"

#include <algorithm>
#include <limits>
#include <memory>
#include <thread>

#include "core/integration_internal.h"
#include "core/merge.h"
#include "core/similarity.h"
#include "obs/stats.h"
#include "util/logging.h"
#include "util/stopwatch.h"
#include "util/sync.h"

namespace atypical {

namespace {

using integration_internal::CandidateIndex;

constexpr size_t kNoMatch = std::numeric_limits<size_t>::max();

struct ShardResult {
  size_t first_match = kNoMatch;  // position in the candidate list
  size_t checks = 0;
  SimilarityScanStats scan_stats;
};

// Scans positions [w·n/T, (w+1)·n/T) of `candidates` and returns the first
// position whose cluster clears `delta`, stopping there.  Shards are
// contiguous ranges of the ascending candidate list, so the minimum over
// shard results is the globally first match — the serial driver's choice.
ShardResult ScanShard(const std::vector<AtypicalCluster>& clusters,
                      const std::vector<uint32_t>& candidates,
                      const AtypicalCluster& pivot, BalanceFunction g,
                      double delta, bool fast_path, int shard,
                      int num_shards) {
  const size_t n = candidates.size();
  const size_t begin = n * static_cast<size_t>(shard) /
                       static_cast<size_t>(num_shards);
  const size_t end = n * (static_cast<size_t>(shard) + 1) /
                     static_cast<size_t>(num_shards);
  ShardResult result;
  for (size_t pos = begin; pos < end; ++pos) {
    ++result.checks;
    if (ExceedsThreshold(pivot, clusters[candidates[pos]], g, delta,
                         &result.scan_stats, fast_path)) {
      result.first_match = pos;
      break;
    }
  }
  return result;
}

// A persistent pool of scan workers coordinated through the annotated
// primitives.  The coordinator publishes one scan at a time (a generation);
// workers pull the inputs under the lock, scan their shard outside it (the
// coordinator blocks until every shard reports, so the shared cluster data
// is immutable for the scan's duration), and report back under the lock.
class ScanPool {
 public:
  explicit ScanPool(int num_workers) : results_(num_workers) {
    CHECK_GT(num_workers, 0);
    workers_.reserve(static_cast<size_t>(num_workers));
    for (int w = 0; w < num_workers; ++w) {
      workers_.emplace_back([this, w] { WorkerLoop(w); });
    }
  }

  ~ScanPool() {
    {
      MutexLock lock(&mu_);
      shutdown_ = true;
    }
    work_cv_.SignalAll();
    for (std::thread& t : workers_) t.join();
  }

  ScanPool(const ScanPool&) = delete;
  ScanPool& operator=(const ScanPool&) = delete;

  // Returns the position in `candidates` of the first candidate whose
  // similarity to `pivot` exceeds `delta`, or kNoMatch.  Accumulates the
  // number of similarity evaluations into *checks.
  size_t FindFirstMatch(const std::vector<AtypicalCluster>& clusters,
                        const std::vector<uint32_t>& candidates,
                        const AtypicalCluster& pivot, BalanceFunction g,
                        double delta, bool fast_path, size_t* checks,
                        SimilarityScanStats* scan_stats) {
    {
      MutexLock lock(&mu_);
      DCHECK_EQ(pending_, 0) << "scan started while one is in flight";
      clusters_ = &clusters;
      candidates_ = &candidates;
      pivot_ = &pivot;
      g_ = g;
      delta_ = delta;
      fast_path_ = fast_path;
      pending_ = static_cast<int>(workers_.size());
      ++generation_;
    }
    work_cv_.SignalAll();

    // How long the coordinator sits idle per scan: the shard-queue wait the
    // obs layer surfaces for tuning min_shard_candidates / thread counts.
    static obs::Histogram* const scan_wait =
        obs::Registry()->GetHistogram("integration.parallel.scan_wait_seconds");
    Stopwatch wait_timer;
    size_t best = kNoMatch;
    MutexLock lock(&mu_);
    while (pending_ > 0) done_cv_.Wait(&mu_);
    scan_wait->Record(wait_timer.ElapsedSeconds());
    for (const ShardResult& r : results_) {
      best = std::min(best, r.first_match);
      *checks += r.checks;
      *scan_stats += r.scan_stats;
    }
    return best;
  }

 private:
  void WorkerLoop(int worker) {
    uint64_t seen = 0;
    for (;;) {
      const std::vector<AtypicalCluster>* clusters = nullptr;
      const std::vector<uint32_t>* candidates = nullptr;
      const AtypicalCluster* pivot = nullptr;
      BalanceFunction g;
      double delta;
      bool fast_path;
      {
        MutexLock lock(&mu_);
        while (!shutdown_ && generation_ == seen) work_cv_.Wait(&mu_);
        if (shutdown_) return;
        seen = generation_;
        clusters = clusters_;
        candidates = candidates_;
        pivot = pivot_;
        g = g_;
        delta = delta_;
        fast_path = fast_path_;
      }
      const ShardResult result =
          ScanShard(*clusters, *candidates, *pivot, g, delta, fast_path,
                    worker, static_cast<int>(workers_.size()));
      {
        MutexLock lock(&mu_);
        results_[static_cast<size_t>(worker)] = result;
        if (--pending_ == 0) done_cv_.Signal();
      }
    }
  }

  Mutex mu_;
  CondVar work_cv_;   // coordinator -> workers: new generation or shutdown
  CondVar done_cv_;   // workers -> coordinator: last shard reported
  bool shutdown_ ATYPICAL_GUARDED_BY(mu_) = false;
  uint64_t generation_ ATYPICAL_GUARDED_BY(mu_) = 0;
  int pending_ ATYPICAL_GUARDED_BY(mu_) = 0;
  // Inputs of the in-flight scan; the pointees are owned by the coordinator
  // and immutable until every worker reports.
  const std::vector<AtypicalCluster>* clusters_ ATYPICAL_GUARDED_BY(mu_) =
      nullptr;
  const std::vector<uint32_t>* candidates_ ATYPICAL_GUARDED_BY(mu_) = nullptr;
  const AtypicalCluster* pivot_ ATYPICAL_GUARDED_BY(mu_) = nullptr;
  BalanceFunction g_ ATYPICAL_GUARDED_BY(mu_) =
      BalanceFunction::kArithmeticMean;
  double delta_ ATYPICAL_GUARDED_BY(mu_) = 0.0;
  bool fast_path_ ATYPICAL_GUARDED_BY(mu_) = true;
  std::vector<ShardResult> results_ ATYPICAL_GUARDED_BY(mu_);
  std::vector<std::thread> workers_;  // NOLINT(AL011): filled before the workers start, joined in the destructor after shutdown; never touched while workers run
};

}  // namespace

std::vector<AtypicalCluster> ParallelIntegrateClusters(
    std::vector<AtypicalCluster> clusters,
    const ParallelIntegrationParams& params, ClusterIdGenerator* ids,
    IntegrationStats* stats) {
  CHECK_GT(params.num_threads, 0);
  if (params.num_threads == 1) {
    return IntegrateClusters(std::move(clusters), params.base, ids, stats);
  }
  CHECK_GT(params.base.delta_sim, 0.0)
      << "δsim must be positive (disjoint clusters have similarity 0)";
  CHECK(ids != nullptr);
  Stopwatch timer;

  const size_t n = clusters.size();
  for (size_t i = 1; i < n; ++i) {
    CHECK(clusters[i].key_mode == clusters[0].key_mode)
        << "all inputs must share one temporal key mode";
  }
  // Lazy compaction (and the lazily-built severity sketch the fast path
  // reads) mutate under const; force them now so the workers' concurrent
  // reads are physically read-only.  Merged clusters are built compact, and
  // FeatureVector::Merge carries the sketch forward when both parents have
  // one, so readiness holds inductively for the whole run.
  for (const AtypicalCluster& c : clusters) {
    if (params.base.use_similarity_fast_path) {
      c.spatial.EnsureSimilarityReady();
      c.temporal.EnsureSimilarityReady();
    } else {
      c.spatial.EnsureCompact();
      c.temporal.EnsureCompact();
    }
  }

  std::vector<bool> alive(n, true);
  size_t similarity_checks = 0;
  size_t merges = 0;
  size_t fixpoint_rounds = 0;
  uint64_t index_compactions = 0;
  SimilarityScanStats scan_stats;

  std::unique_ptr<CandidateIndex> index;
  if (params.base.use_candidate_index) {
    index = std::make_unique<CandidateIndex>(n);
    for (size_t i = 0; i < n; ++i) {
      index->AddKeys(clusters[i], static_cast<uint32_t>(i));
    }
    index->SealBaseline();
  }

  ScanPool pool(params.num_threads);

  // The serial driver's greedy absorb loop (see integration.cc), with the
  // candidate scan farmed to the pool.  Any divergence between the two
  // loops is caught by the bit-identity tests in
  // core_parallel_integration_test.cc.
  std::vector<uint32_t> candidates;
  for (size_t i = 0; i < n; ++i) {
    if (!alive[i]) continue;
    bool merged_any = true;
    while (merged_any) {
      merged_any = false;
      ++fixpoint_rounds;
      if (index != nullptr) {
        index->Candidates(clusters[i], static_cast<uint32_t>(i), alive,
                          &candidates);
      } else {
        candidates.clear();
        for (size_t j = 0; j < n; ++j) {
          if (j != i && alive[j]) candidates.push_back(static_cast<uint32_t>(j));
        }
      }

      size_t match_pos;
      if (candidates.size() < params.min_shard_candidates) {
        const ShardResult inline_scan =
            ScanShard(clusters, candidates, clusters[i], params.base.g,
                      params.base.delta_sim,
                      params.base.use_similarity_fast_path,
                      /*shard=*/0, /*num_shards=*/1);
        match_pos = inline_scan.first_match;
        similarity_checks += inline_scan.checks;
        scan_stats += inline_scan.scan_stats;
      } else {
        match_pos = pool.FindFirstMatch(clusters, candidates, clusters[i],
                                        params.base.g, params.base.delta_sim,
                                        params.base.use_similarity_fast_path,
                                        &similarity_checks, &scan_stats);
      }

      if (match_pos != kNoMatch) {
        const uint32_t j = candidates[match_pos];
        // Grow the cluster's key set; only j's keys can be new, and the
        // postings for i's existing keys remain valid for the merged
        // cluster, so index j's keys under slot i.
        AtypicalCluster merged = MergeClusters(clusters[i], clusters[j], ids);
        clusters[i] = std::move(merged);
        alive[j] = false;
        if (index != nullptr) {
          index->AddKeys(clusters[j], static_cast<uint32_t>(i));
          if (index->MaybeCompact(alive)) ++index_compactions;
        }
        ++merges;
        merged_any = true;  // re-gather candidates for the grown cluster
      }
    }
  }

  std::vector<AtypicalCluster> out;
  out.reserve(n - merges);
  for (size_t i = 0; i < n; ++i) {
    if (alive[i]) out.push_back(std::move(clusters[i]));
  }

  // Publish once per run; the scan loop and workers touch only locals.
  static obs::Counter* const obs_runs =
      obs::Registry()->GetCounter("integration.parallel.runs");
  static obs::Counter* const obs_inputs =
      obs::Registry()->GetCounter("integration.parallel.input_clusters");
  static obs::Counter* const obs_outputs =
      obs::Registry()->GetCounter("integration.parallel.output_clusters");
  static obs::Counter* const obs_checks =
      obs::Registry()->GetCounter("integration.parallel.similarity_checks");
  static obs::Counter* const obs_merges =
      obs::Registry()->GetCounter("integration.parallel.merges");
  static obs::Counter* const obs_rounds =
      obs::Registry()->GetCounter("integration.parallel.fixpoint_rounds");
  static obs::Counter* const obs_exact_scans =
      obs::Registry()->GetCounter("similarity.exact_scans");
  static obs::Counter* const obs_pruned =
      obs::Registry()->GetCounter("similarity.pruned");
  static obs::Counter* const obs_compactions =
      obs::Registry()->GetCounter("integration.index_compactions");
  static obs::Histogram* const obs_seconds =
      obs::Registry()->GetHistogram("integration.parallel.seconds");
  obs_runs->Add(1);
  obs_inputs->Add(n);
  obs_outputs->Add(out.size());
  obs_checks->Add(similarity_checks);
  obs_merges->Add(merges);
  obs_rounds->Add(fixpoint_rounds);
  obs_exact_scans->Add(scan_stats.exact_scans);
  obs_pruned->Add(scan_stats.pruned_scans);
  obs_compactions->Add(index_compactions);
  obs_seconds->Record(timer.ElapsedSeconds());

  if (stats != nullptr) {
    stats->input_clusters = n;
    stats->output_clusters = out.size();
    stats->similarity_checks = similarity_checks;
    stats->merges = merges;
    stats->exact_scans = scan_stats.exact_scans;
    stats->pruned_scans = scan_stats.pruned_scans;
    stats->index_compactions = index_compactions;
    stats->seconds = timer.ElapsedSeconds();
  }
  return out;
}

}  // namespace atypical
