#include "core/event_retrieval.h"

#include <algorithm>
#include <memory>
#include <unordered_map>
#include <utility>

#include "index/grid_index.h"
#include "obs/stats.h"
#include "util/hash_perturb.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace atypical {

std::vector<std::vector<size_t>> RetrieveEvents(
    const std::vector<AtypicalRecord>& records, const SensorNetwork& network,
    const TimeGrid& grid, const RetrievalParams& params,
    RetrievalStats* stats) {
  CHECK_GT(params.delta_d_miles, 0.0);
  CHECK_GT(params.delta_t_minutes, 0);
  Stopwatch timer;

  std::vector<std::vector<size_t>> events;
  std::vector<bool> visited(records.size(), false);
  size_t neighbor_checks = 0;

  // The index is only built when used; the unindexed path exists to realize
  // (and measure) Proposition 1's O(N + n²) bound.
  std::unique_ptr<index::GridIndex> grid_index;
  if (params.use_index) {
    grid_index = std::make_unique<index::GridIndex>(
        records, network, grid, params.delta_d_miles, params.delta_t_minutes,
        params.metric);
  }

  std::vector<size_t> frontier;
  std::vector<size_t> neighbors;
  for (size_t seed = 0; seed < records.size(); ++seed) {
    if (visited[seed]) continue;
    // Expand the seed into its maximal connected component (Def. 2/3).
    std::vector<size_t> event;
    visited[seed] = true;
    frontier.assign(1, seed);
    while (!frontier.empty()) {
      const size_t current = frontier.back();
      frontier.pop_back();
      event.push_back(current);
      neighbors.clear();
      if (grid_index != nullptr) {
        grid_index->DirectlyRelated(current, &neighbors);
        neighbor_checks += neighbors.size();
      } else {
        const AtypicalRecord& r = records[current];
        for (size_t j = 0; j < records.size(); ++j) {
          if (j == current) continue;
          ++neighbor_checks;
          const AtypicalRecord& other = records[j];
          if (grid.IntervalMinutes(r.window, other.window) >=
              params.delta_t_minutes) {
            continue;
          }
          if (network.Distance(r.sensor, other.sensor, params.metric) >=
              params.delta_d_miles) {
            continue;
          }
          neighbors.push_back(j);
        }
      }
      for (size_t n : neighbors) {
        if (!visited[n]) {
          visited[n] = true;
          frontier.push_back(n);
        }
      }
    }
    std::sort(event.begin(), event.end());
    events.push_back(std::move(event));
  }

  static obs::Counter* const records_in =
      obs::Registry()->GetCounter("retrieval.records_in");
  static obs::Counter* const events_out =
      obs::Registry()->GetCounter("retrieval.events_out");
  static obs::Counter* const index_probes =
      obs::Registry()->GetCounter("retrieval.index_probes");
  static obs::Histogram* const seconds =
      obs::Registry()->GetHistogram("retrieval.seconds");
  records_in->Add(records.size());
  events_out->Add(events.size());
  index_probes->Add(neighbor_checks);
  seconds->Record(timer.ElapsedSeconds());

  if (stats != nullptr) {
    stats->num_events = events.size();
    stats->num_records = records.size();
    stats->neighbor_checks = neighbor_checks;
    stats->seconds = timer.ElapsedSeconds();
  }
  return events;
}

AtypicalCluster BuildMicroCluster(const std::vector<AtypicalRecord>& records,
                                  const std::vector<size_t>& event,
                                  const TimeGrid& grid,
                                  ClusterIdGenerator* ids) {
  CHECK(!event.empty());
  CHECK(ids != nullptr);
  AtypicalCluster cluster;
  cluster.id = ids->Next();
  cluster.key_mode = TemporalKeyMode::kAbsolute;
  cluster.num_records = static_cast<int64_t>(event.size());
  cluster.micro_ids = {cluster.id};

  int first_day = INT32_MAX;
  int last_day = INT32_MIN;
  std::unordered_map<EventId, double> label_mass;
  PerturbedReserve(label_mass, event.size());
  // Aggregate SF by sensor and TF by window (Def. 4).  Records arrive
  // window-major, so TF adds are mostly in key order.
  for (size_t idx : event) {
    const AtypicalRecord& r = records[idx];
    cluster.spatial.Add(r.sensor, r.severity_minutes);
    cluster.temporal.Add(r.window, r.severity_minutes);
    const int day = grid.DayOfWindow(r.window);
    first_day = std::min(first_day, day);
    last_day = std::max(last_day, day);
    if (r.true_event != kNoEvent)
      label_mass[r.true_event] += static_cast<double>(r.severity_minutes);
  }
  cluster.first_day = first_day;
  cluster.last_day = last_day;

  // Strict argmax by (mass, then smallest label).  Walk the labels in sorted
  // order so the winner never depends on the map's hash layout.
  std::vector<std::pair<EventId, double>> by_label(label_mass.begin(),
                                                   label_mass.end());
  std::sort(by_label.begin(), by_label.end());
  EventId dominant = kNoEvent;
  double best = 0.0;
  for (const auto& [label, mass] : by_label) {
    if (mass > best || (mass == best && label < dominant)) {
      dominant = label;
      best = mass;
    }
  }
  cluster.dominant_true_event = dominant;
  return cluster;
}

std::vector<AtypicalCluster> RetrieveMicroClusters(
    const std::vector<AtypicalRecord>& records, const SensorNetwork& network,
    const TimeGrid& grid, const RetrievalParams& params,
    ClusterIdGenerator* ids, RetrievalStats* stats) {
  Stopwatch timer;
  const std::vector<std::vector<size_t>> events =
      RetrieveEvents(records, network, grid, params, stats);
  std::vector<AtypicalCluster> clusters;
  clusters.reserve(events.size());
  for (const std::vector<size_t>& event : events) {
    clusters.push_back(BuildMicroCluster(records, event, grid, ids));
  }
  static obs::Counter* const micros_out =
      obs::Registry()->GetCounter("retrieval.micro_clusters_out");
  micros_out->Add(clusters.size());
  if (stats != nullptr) stats->seconds = timer.ElapsedSeconds();
  return clusters;
}

}  // namespace atypical
