#include "core/integration.h"

#include <memory>

#include "core/integration_internal.h"
#include "core/merge.h"
#include "obs/stats.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace atypical {

namespace integration_internal {

std::vector<AtypicalCluster> GreedyFixpoint(
    std::vector<AtypicalCluster> clusters, const IntegrationParams& params,
    ClusterIdGenerator* ids, IntegrationStats* stats) {
  CHECK_GT(params.delta_sim, 0.0)
      << "δsim must be positive (disjoint clusters have similarity 0)";
  CHECK(ids != nullptr);
  CHECK(stats != nullptr);
  Stopwatch timer;

  const size_t n = clusters.size();
  for (size_t i = 1; i < n; ++i) {
    CHECK(clusters[i].key_mode == clusters[0].key_mode)
        << "all inputs must share one temporal key mode";
  }

  std::vector<bool> alive(n, true);
  size_t similarity_checks = 0;
  size_t merges = 0;
  size_t fixpoint_rounds = 0;
  uint64_t index_compactions = 0;
  SimilarityScanStats scan_stats;

  std::unique_ptr<CandidateIndex> index;
  if (params.use_candidate_index) {
    index = std::make_unique<CandidateIndex>(n);
    for (size_t i = 0; i < n; ++i) {
      index->AddKeys(clusters[i], static_cast<uint32_t>(i));
    }
    index->SealBaseline();
  }

  // Greedy absorb: for each slot in ascending order, repeatedly merge the
  // lowest-numbered similar cluster into it until none qualifies, then move
  // on.  Every merged result re-scans all alive slots, so the loop ends at
  // the Algorithm 3 fixpoint ("until no clusters can be merged") — unless a
  // round/deadline budget trips first, in which case the partition reached
  // so far is returned as-is (valid, possibly under-merged) and `converged`
  // reports the truncation.
  bool converged = true;
  std::vector<uint32_t> candidates;
  for (size_t i = 0; i < n && converged; ++i) {
    if (!alive[i]) continue;
    bool merged_any = true;
    while (merged_any) {
      merged_any = false;
      if ((params.max_fixpoint_rounds > 0 &&
           fixpoint_rounds >= params.max_fixpoint_rounds) ||
          (params.deadline_seconds > 0.0 &&
           timer.ElapsedSeconds() >= params.deadline_seconds)) {
        converged = false;
        break;
      }
      ++fixpoint_rounds;
      if (index != nullptr) {
        index->Candidates(clusters[i], static_cast<uint32_t>(i), alive,
                          &candidates);
      } else {
        candidates.clear();
        for (size_t j = 0; j < n; ++j) {
          if (j != i && alive[j]) candidates.push_back(static_cast<uint32_t>(j));
        }
      }
      for (uint32_t j : candidates) {
        ++similarity_checks;
        if (ExceedsThreshold(clusters[i], clusters[j], params.g,
                             params.delta_sim, &scan_stats,
                             params.use_similarity_fast_path)) {
          // Grow the cluster's key set; only j's keys can be new, and the
          // postings for i's existing keys remain valid for the merged
          // cluster, so index j's keys under slot i.
          AtypicalCluster merged = MergeClusters(clusters[i], clusters[j], ids);
          clusters[i] = std::move(merged);
          alive[j] = false;
          if (index != nullptr) {
            index->AddKeys(clusters[j], static_cast<uint32_t>(i));
            if (index->MaybeCompact(alive)) ++index_compactions;
          }
          ++merges;
          merged_any = true;
          break;  // re-gather candidates for the grown cluster
        }
      }
    }
  }

  std::vector<AtypicalCluster> out;
  out.reserve(n - merges);
  for (size_t i = 0; i < n; ++i) {
    if (alive[i]) out.push_back(std::move(clusters[i]));
  }

  stats->input_clusters = n;
  stats->output_clusters = out.size();
  stats->similarity_checks = similarity_checks;
  stats->merges = merges;
  stats->exact_scans = scan_stats.exact_scans;
  stats->pruned_scans = scan_stats.pruned_scans;
  stats->index_compactions = index_compactions;
  stats->fixpoint_rounds = fixpoint_rounds;
  stats->converged = converged;
  stats->seconds = timer.ElapsedSeconds();
  return out;
}

}  // namespace integration_internal

std::vector<AtypicalCluster> IntegrateClusters(
    std::vector<AtypicalCluster> clusters, const IntegrationParams& params,
    ClusterIdGenerator* ids, IntegrationStats* stats) {
  IntegrationStats local;
  std::vector<AtypicalCluster> out = integration_internal::GreedyFixpoint(
      std::move(clusters), params, ids, &local);

  // Publish once per run; the fixpoint loop touches only locals.
  static obs::Counter* const obs_runs =
      obs::Registry()->GetCounter("integration.runs");
  static obs::Counter* const obs_inputs =
      obs::Registry()->GetCounter("integration.input_clusters");
  static obs::Counter* const obs_outputs =
      obs::Registry()->GetCounter("integration.output_clusters");
  static obs::Counter* const obs_checks =
      obs::Registry()->GetCounter("integration.similarity_checks");
  static obs::Counter* const obs_merges =
      obs::Registry()->GetCounter("integration.merges");
  static obs::Counter* const obs_rounds =
      obs::Registry()->GetCounter("integration.fixpoint_rounds");
  static obs::Counter* const obs_exact_scans =
      obs::Registry()->GetCounter("similarity.exact_scans");
  static obs::Counter* const obs_pruned =
      obs::Registry()->GetCounter("similarity.pruned");
  static obs::Counter* const obs_compactions =
      obs::Registry()->GetCounter("integration.index_compactions");
  static obs::Histogram* const obs_seconds =
      obs::Registry()->GetHistogram("integration.seconds");
  static obs::Counter* const obs_partial =
      obs::Registry()->GetCounter("degradation.integration_partial");
  obs_runs->Add(1);
  if (!local.converged) obs_partial->Add(1);
  obs_inputs->Add(local.input_clusters);
  obs_outputs->Add(local.output_clusters);
  obs_checks->Add(local.similarity_checks);
  obs_merges->Add(local.merges);
  obs_rounds->Add(local.fixpoint_rounds);
  obs_exact_scans->Add(local.exact_scans);
  obs_pruned->Add(local.pruned_scans);
  obs_compactions->Add(local.index_compactions);
  obs_seconds->Record(local.seconds);

  if (stats != nullptr) *stats = local;
  return out;
}

}  // namespace atypical
