#include "core/integration.h"

#include <memory>

#include "core/integration_internal.h"
#include "core/merge.h"
#include "obs/stats.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace atypical {

using integration_internal::CandidateIndex;

std::vector<AtypicalCluster> IntegrateClusters(
    std::vector<AtypicalCluster> clusters, const IntegrationParams& params,
    ClusterIdGenerator* ids, IntegrationStats* stats) {
  CHECK_GT(params.delta_sim, 0.0)
      << "δsim must be positive (disjoint clusters have similarity 0)";
  CHECK(ids != nullptr);
  Stopwatch timer;

  const size_t n = clusters.size();
  for (size_t i = 1; i < n; ++i) {
    CHECK(clusters[i].key_mode == clusters[0].key_mode)
        << "all inputs must share one temporal key mode";
  }

  std::vector<bool> alive(n, true);
  size_t similarity_checks = 0;
  size_t merges = 0;
  size_t fixpoint_rounds = 0;

  std::unique_ptr<CandidateIndex> index;
  if (params.use_candidate_index) {
    index = std::make_unique<CandidateIndex>(n);
    for (size_t i = 0; i < n; ++i) {
      index->AddKeys(clusters[i], static_cast<uint32_t>(i));
    }
  }

  // Greedy absorb: for each slot in ascending order, repeatedly merge the
  // lowest-numbered similar cluster into it until none qualifies, then move
  // on.  Every merged result re-scans all alive slots, so the loop ends at
  // the Algorithm 3 fixpoint ("until no clusters can be merged").
  std::vector<uint32_t> candidates;
  for (size_t i = 0; i < n; ++i) {
    if (!alive[i]) continue;
    bool merged_any = true;
    while (merged_any) {
      merged_any = false;
      ++fixpoint_rounds;
      if (index != nullptr) {
        index->Candidates(clusters[i], static_cast<uint32_t>(i), alive,
                          &candidates);
      } else {
        candidates.clear();
        for (size_t j = 0; j < n; ++j) {
          if (j != i && alive[j]) candidates.push_back(static_cast<uint32_t>(j));
        }
      }
      for (uint32_t j : candidates) {
        ++similarity_checks;
        if (Similarity(clusters[i], clusters[j], params.g) >
            params.delta_sim) {
          // Grow the cluster's key set; only j's keys can be new, and the
          // postings for i's existing keys remain valid for the merged
          // cluster, so index j's keys under slot i.
          AtypicalCluster merged = MergeClusters(clusters[i], clusters[j], ids);
          if (index != nullptr) {
            index->AddKeys(clusters[j], static_cast<uint32_t>(i));
          }
          clusters[i] = std::move(merged);
          alive[j] = false;
          ++merges;
          merged_any = true;
          break;  // re-gather candidates for the grown cluster
        }
      }
    }
  }

  std::vector<AtypicalCluster> out;
  out.reserve(n - merges);
  for (size_t i = 0; i < n; ++i) {
    if (alive[i]) out.push_back(std::move(clusters[i]));
  }

  // Publish once per run; the hot loop above touches only locals.
  static obs::Counter* const obs_runs =
      obs::Registry()->GetCounter("integration.runs");
  static obs::Counter* const obs_inputs =
      obs::Registry()->GetCounter("integration.input_clusters");
  static obs::Counter* const obs_outputs =
      obs::Registry()->GetCounter("integration.output_clusters");
  static obs::Counter* const obs_checks =
      obs::Registry()->GetCounter("integration.similarity_checks");
  static obs::Counter* const obs_merges =
      obs::Registry()->GetCounter("integration.merges");
  static obs::Counter* const obs_rounds =
      obs::Registry()->GetCounter("integration.fixpoint_rounds");
  static obs::Histogram* const obs_seconds =
      obs::Registry()->GetHistogram("integration.seconds");
  obs_runs->Add(1);
  obs_inputs->Add(n);
  obs_outputs->Add(out.size());
  obs_checks->Add(similarity_checks);
  obs_merges->Add(merges);
  obs_rounds->Add(fixpoint_rounds);
  obs_seconds->Record(timer.ElapsedSeconds());

  if (stats != nullptr) {
    stats->input_clusters = n;
    stats->output_clusters = out.size();
    stats->similarity_checks = similarity_checks;
    stats->merges = merges;
    stats->seconds = timer.ElapsedSeconds();
  }
  return out;
}

}  // namespace atypical
