#include "core/integration.h"

#include <algorithm>
#include <memory>
#include <unordered_map>

#include "core/merge.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace atypical {

namespace {

// Inverted index from feature keys to cluster slots, with lazy deletion
// (dead slots are filtered by the caller's alive[] check).  Spatial and
// temporal key spaces are disambiguated by a domain tag in the high bits.
class CandidateIndex {
 public:
  explicit CandidateIndex(size_t num_slots) : last_seen_(num_slots, 0) {}

  void AddKeys(const AtypicalCluster& cluster, uint32_t slot) {
    for (const FeatureVector::Entry& e : cluster.spatial.entries()) {
      postings_[SpatialKey(e.key)].push_back(slot);
    }
    for (const FeatureVector::Entry& e : cluster.temporal.entries()) {
      postings_[TemporalKey(e.key)].push_back(slot);
    }
  }

  // Collects slots sharing at least one key with `cluster`, excluding
  // `self`, sorted ascending and deduplicated.
  void Candidates(const AtypicalCluster& cluster, uint32_t self,
                  const std::vector<bool>& alive,
                  std::vector<uint32_t>* out) {
    out->clear();
    ++scan_id_;
    auto visit = [&](uint64_t key) {
      const auto it = postings_.find(key);
      if (it == postings_.end()) return;
      for (uint32_t slot : it->second) {
        if (slot == self || !alive[slot]) continue;
        if (last_seen_[slot] == scan_id_) continue;
        last_seen_[slot] = scan_id_;
        out->push_back(slot);
      }
    };
    for (const FeatureVector::Entry& e : cluster.spatial.entries()) {
      visit(SpatialKey(e.key));
    }
    for (const FeatureVector::Entry& e : cluster.temporal.entries()) {
      visit(TemporalKey(e.key));
    }
    std::sort(out->begin(), out->end());
  }

 private:
  static uint64_t SpatialKey(uint32_t key) { return key; }
  static uint64_t TemporalKey(uint32_t key) {
    return (1ULL << 32) | key;
  }

  std::unordered_map<uint64_t, std::vector<uint32_t>> postings_;
  std::vector<uint64_t> last_seen_;
  uint64_t scan_id_ = 0;
};

}  // namespace

std::vector<AtypicalCluster> IntegrateClusters(
    std::vector<AtypicalCluster> clusters, const IntegrationParams& params,
    ClusterIdGenerator* ids, IntegrationStats* stats) {
  CHECK_GT(params.delta_sim, 0.0)
      << "δsim must be positive (disjoint clusters have similarity 0)";
  CHECK(ids != nullptr);
  Stopwatch timer;

  const size_t n = clusters.size();
  for (size_t i = 1; i < n; ++i) {
    CHECK(clusters[i].key_mode == clusters[0].key_mode)
        << "all inputs must share one temporal key mode";
  }

  std::vector<bool> alive(n, true);
  size_t similarity_checks = 0;
  size_t merges = 0;

  std::unique_ptr<CandidateIndex> index;
  if (params.use_candidate_index) {
    index = std::make_unique<CandidateIndex>(n);
    for (size_t i = 0; i < n; ++i) {
      index->AddKeys(clusters[i], static_cast<uint32_t>(i));
    }
  }

  // Greedy absorb: for each slot in ascending order, repeatedly merge the
  // lowest-numbered similar cluster into it until none qualifies, then move
  // on.  Every merged result re-scans all alive slots, so the loop ends at
  // the Algorithm 3 fixpoint ("until no clusters can be merged").
  std::vector<uint32_t> candidates;
  for (size_t i = 0; i < n; ++i) {
    if (!alive[i]) continue;
    bool merged_any = true;
    while (merged_any) {
      merged_any = false;
      if (index != nullptr) {
        index->Candidates(clusters[i], static_cast<uint32_t>(i), alive,
                          &candidates);
      } else {
        candidates.clear();
        for (size_t j = 0; j < n; ++j) {
          if (j != i && alive[j]) candidates.push_back(static_cast<uint32_t>(j));
        }
      }
      for (uint32_t j : candidates) {
        ++similarity_checks;
        if (Similarity(clusters[i], clusters[j], params.g) >
            params.delta_sim) {
          // Grow the cluster's key set; only j's keys can be new, and the
          // postings for i's existing keys remain valid for the merged
          // cluster, so index j's keys under slot i.
          AtypicalCluster merged = MergeClusters(clusters[i], clusters[j], ids);
          if (index != nullptr) {
            index->AddKeys(clusters[j], static_cast<uint32_t>(i));
          }
          clusters[i] = std::move(merged);
          alive[j] = false;
          ++merges;
          merged_any = true;
          break;  // re-gather candidates for the grown cluster
        }
      }
    }
  }

  std::vector<AtypicalCluster> out;
  out.reserve(n - merges);
  for (size_t i = 0; i < n; ++i) {
    if (alive[i]) out.push_back(std::move(clusters[i]));
  }

  if (stats != nullptr) {
    stats->input_clusters = n;
    stats->output_clusters = out.size();
    stats->similarity_checks = similarity_checks;
    stats->merges = merges;
    stats->seconds = timer.ElapsedSeconds();
  }
  return out;
}

}  // namespace atypical
