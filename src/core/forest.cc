#include "core/forest.h"

#include <algorithm>

#include "core/temporal_key.h"
#include "cube/hierarchy.h"
#include "obs/stats.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace atypical {

AtypicalForest::AtypicalForest(const SensorNetwork* network,
                               const TimeGrid& grid,
                               const ForestParams& params)
    : network_(network), grid_(grid), params_(params), ids_(1) {
  CHECK(network != nullptr);
}

void AtypicalForest::AddDay(int day,
                            const std::vector<AtypicalRecord>& records) {
  for (const AtypicalRecord& r : records) {
    CHECK_EQ(grid_.DayOfWindow(r.window), day)
        << "record window not on day " << day;
  }
  std::vector<AtypicalCluster> micros = RetrieveMicroClusters(
      records, *network_, grid_, params_.retrieval, &ids_);

  static obs::Counter* const days_added =
      obs::Registry()->GetCounter("forest.days_added");
  static obs::Counter* const day_batches_merged =
      obs::Registry()->GetCounter("forest.day_batches_merged");
  static obs::Histogram* const micros_per_day = obs::Registry()->GetHistogram(
      "forest.micros_per_day", obs::BucketLayout::Counts());
  micros_per_day->Record(static_cast<double>(micros.size()));

  num_micros_ += micros.size();
  day_versions_[day] = ++version_;
  auto [it, inserted] = micros_by_day_.try_emplace(day, std::move(micros));
  if (inserted) {
    days_added->Add(1);
  } else {
    // Late batch for an existing day: the new batch was clustered on its
    // own above; append its micro-clusters to the day's leaf set.  Records
    // split across batches are not re-joined at the leaf — query-time
    // integration merges similar clusters — and materialized week/month
    // levels are not refreshed automatically.
    day_batches_merged->Add(1);
    std::vector<AtypicalCluster>& existing = it->second;
    if (existing.empty()) {
      existing = std::move(micros);
    } else {
      existing.insert(existing.end(), std::make_move_iterator(micros.begin()),
                      std::make_move_iterator(micros.end()));
    }
  }
}

void AtypicalForest::AddRecords(const std::vector<AtypicalRecord>& records) {
  std::map<int, std::vector<AtypicalRecord>> by_day;
  for (const AtypicalRecord& r : records) {
    by_day[grid_.DayOfWindow(r.window)].push_back(r);
  }
  for (auto& [day, day_records] : by_day) {
    AddDay(day, day_records);
  }
}

void AtypicalForest::RecordDayProvenance(int day,
                                         const DayProvenance& provenance) {
  DayProvenance& stored = provenance_by_day_[day];
  const bool was_degraded = stored.degraded();
  stored.records_stored += provenance.records_stored;
  stored.records_lost += provenance.records_lost;
  stored.records_quarantined += provenance.records_quarantined;
  stored.blocks_skipped += provenance.blocks_skipped;
  stored.footer_missing = stored.footer_missing || provenance.footer_missing;

  static obs::Counter* const degraded_days =
      obs::Registry()->GetCounter("degradation.degraded_days");
  static obs::Counter* const lost =
      obs::Registry()->GetCounter("degradation.records_lost");
  static obs::Counter* const quarantined =
      obs::Registry()->GetCounter("degradation.records_quarantined");
  if (!was_degraded && stored.degraded()) degraded_days->Add(1);
  lost->Add(provenance.records_lost);
  quarantined->Add(provenance.records_quarantined);
}

const DayProvenance* AtypicalForest::day_provenance(int day) const {
  const auto it = provenance_by_day_.find(day);
  return it == provenance_by_day_.end() ? nullptr : &it->second;
}

std::vector<int> AtypicalForest::Days() const {
  std::vector<int> days;
  days.reserve(micros_by_day_.size());
  for (const auto& [day, _] : micros_by_day_) days.push_back(day);
  return days;
}

const std::vector<AtypicalCluster>& AtypicalForest::MicrosOfDay(int day) const {
  const auto it = micros_by_day_.find(day);
  CHECK(it != micros_by_day_.end()) << "no micro-clusters for day " << day;
  return it->second;
}

std::vector<const AtypicalCluster*> AtypicalForest::MicrosInRange(
    const DayRange& range) const {
  std::vector<const AtypicalCluster*> out;
  MicrosInRange(range, &out);
  return out;
}

void AtypicalForest::MicrosInRange(
    const DayRange& range, std::vector<const AtypicalCluster*>* out) const {
  out->clear();
  for (auto it = micros_by_day_.lower_bound(range.first_day);
       it != micros_by_day_.end() && it->first <= range.last_day; ++it) {
    for (const AtypicalCluster& c : it->second) out->push_back(&c);
  }
}

std::map<ClusterId, double> AtypicalForest::MicroSeverities(
    const DayRange& range) const {
  std::map<ClusterId, double> out;
  for (const AtypicalCluster* c : MicrosInRange(range)) {
    out.emplace(c->id, c->severity());
  }
  return out;
}

std::vector<AtypicalCluster> AtypicalForest::IntegrateRange(
    const DayRange& range) {
  std::vector<AtypicalCluster> input;
  for (const AtypicalCluster* micro : MicrosInRange(range)) {
    input.push_back(WithTemporalKeyMode(*micro, grid_,
                                        TemporalKeyMode::kTimeOfDay));
  }
  return IntegrateClusters(std::move(input), params_.integration, &ids_);
}

size_t AtypicalForest::MaterializeWeeks() {
  static obs::Counter* const weeks_materialized =
      obs::Registry()->GetCounter("forest.weeks_materialized");
  static obs::Histogram* const seconds =
      obs::Registry()->GetHistogram("forest.materialize_weeks_seconds");
  obs::TraceSpan span(seconds);
  macros_by_week_.clear();
  std::map<int, DayRange> weeks;
  for (const auto& [day, _] : micros_by_day_) {
    auto [it, inserted] =
        weeks.emplace(cube::WeekOfDay(day), DayRange{day, day});
    if (!inserted) {
      it->second.first_day = std::min(it->second.first_day, day);
      it->second.last_day = std::max(it->second.last_day, day);
    }
  }
  size_t built = 0;
  for (const auto& [week, range] : weeks) {
    std::vector<AtypicalCluster> macros = IntegrateRange(range);
    built += macros.size();
    macros_by_week_.emplace(week, std::move(macros));
  }
  weeks_version_ = version_;
  weeks_materialized->Add(macros_by_week_.size());
  return built;
}

size_t AtypicalForest::MaterializeMonths(int days_per_month) {
  CHECK_GT(days_per_month, 0);
  static obs::Counter* const months_materialized =
      obs::Registry()->GetCounter("forest.months_materialized");
  static obs::Histogram* const seconds =
      obs::Registry()->GetHistogram("forest.materialize_months_seconds");
  obs::TraceSpan span(seconds);
  month_days_ = days_per_month;
  macros_by_month_.clear();
  std::map<int, DayRange> months;
  for (const auto& [day, _] : micros_by_day_) {
    const int month = cube::MonthOfDay(day, days_per_month);
    auto [it, inserted] = months.emplace(month, DayRange{day, day});
    if (!inserted) {
      it->second.first_day = std::min(it->second.first_day, day);
      it->second.last_day = std::max(it->second.last_day, day);
    }
  }
  size_t built = 0;
  for (const auto& [month, range] : months) {
    std::vector<AtypicalCluster> macros = IntegrateRange(range);
    built += macros.size();
    macros_by_month_.emplace(month, std::move(macros));
  }
  months_version_ = version_;
  months_materialized->Add(macros_by_month_.size());
  return built;
}

const std::vector<AtypicalCluster>& AtypicalForest::MacrosOfWeek(
    int week) const {
  const auto it = macros_by_week_.find(week);
  CHECK(it != macros_by_week_.end()) << "week " << week << " not materialized";
  return it->second;
}

const std::vector<AtypicalCluster>& AtypicalForest::MacrosOfMonth(
    int month) const {
  const auto it = macros_by_month_.find(month);
  CHECK(it != macros_by_month_.end())
      << "month " << month << " not materialized";
  return it->second;
}

std::vector<int> AtypicalForest::MaterializedWeeks() const {
  std::vector<int> weeks;
  for (const auto& [week, _] : macros_by_week_) weeks.push_back(week);
  return weeks;
}

std::vector<int> AtypicalForest::MaterializedMonths() const {
  std::vector<int> months;
  for (const auto& [month, _] : macros_by_month_) months.push_back(month);
  return months;
}

void AtypicalForest::AdvanceIdsPast(
    const std::vector<AtypicalCluster>& clusters) {
  ClusterId max_id = 0;
  for (const AtypicalCluster& c : clusters) {
    max_id = std::max(max_id, c.id);
    for (ClusterId micro : c.micro_ids) max_id = std::max(max_id, micro);
  }
  ids_.EnsureAbove(max_id);
}

void AtypicalForest::InstallDay(int day,
                                std::vector<AtypicalCluster> micros) {
  CHECK(!micros_by_day_.contains(day)) << "day " << day << " already present";
  AdvanceIdsPast(micros);
  num_micros_ += micros.size();
  day_versions_[day] = ++version_;
  micros_by_day_.emplace(day, std::move(micros));
}

void AtypicalForest::InstallWeek(int week,
                                 std::vector<AtypicalCluster> macros) {
  AdvanceIdsPast(macros);
  // Installing a level asserts it is consistent with the days installed so
  // far (the persistence format saves levels and leaves from one forest
  // state); days mutated after this install make it stale again.
  weeks_version_ = version_;
  macros_by_week_[week] = std::move(macros);
}

void AtypicalForest::InstallMonth(int month,
                                  std::vector<AtypicalCluster> macros) {
  AdvanceIdsPast(macros);
  months_version_ = version_;
  macros_by_month_[month] = std::move(macros);
}

bool AtypicalForest::DaysMutatedSince(int first_day, int last_day,
                                      uint64_t level_version) const {
  for (auto it = day_versions_.lower_bound(first_day);
       it != day_versions_.end() && it->first <= last_day; ++it) {
    if (it->second > level_version) return true;
  }
  return false;
}

bool AtypicalForest::WeekIsStale(int week) const {
  if (!macros_by_week_.contains(week)) return false;
  return DaysMutatedSince(week * 7, week * 7 + 6, weeks_version_);
}

bool AtypicalForest::MonthIsStale(int month) const {
  if (!macros_by_month_.contains(month) || month_days_ <= 0) return false;
  const int first = month * month_days_;
  return DaysMutatedSince(first, first + month_days_ - 1, months_version_);
}

uint64_t AtypicalForest::ByteSize() const {
  uint64_t bytes = 0;
  for (const auto& [_, micros] : micros_by_day_) {
    for (const AtypicalCluster& c : micros) bytes += c.ByteSize();
  }
  for (const auto& [_, macros] : macros_by_week_) {
    for (const AtypicalCluster& c : macros) bytes += c.ByteSize();
  }
  for (const auto& [_, macros] : macros_by_month_) {
    for (const AtypicalCluster& c : macros) bytes += c.ByteSize();
  }
  return bytes;
}

}  // namespace atypical
