// The atypical forest (§III.C): per-day micro-clusters at the leaves,
// optionally materialized weekly/monthly macro-cluster levels above them.
//
// The forest is the system's offline-constructed model.  Analytical queries
// integrate leaf micro-clusters on demand (the paper's experiments
// pre-compute only the daily micro-clusters); materialized levels exist for
// larger deployments and are exercised by the materialization ablation.
#ifndef ATYPICAL_CORE_FOREST_H_
#define ATYPICAL_CORE_FOREST_H_

#include <map>
#include <vector>

#include "core/cluster.h"
#include "core/event_retrieval.h"
#include "core/integration.h"
#include "cps/record.h"
#include "cps/sensor_network.h"
#include "util/hot_path.h"

namespace atypical {

struct ForestParams {
  RetrievalParams retrieval;
  IntegrationParams integration;
};

// Data-quality provenance of one stored day: what the ingest path knows it
// lost before the day's records reached the forest.  Populated from the
// salvage reader's SalvageReport and the ingest guard's quarantine tally;
// queries over the day surface it as a completeness annotation, so a day
// with no clusters is distinguishable as "quiet" (no damage recorded) vs
// "blind" (records were lost on the way in).
struct DayProvenance {
  uint64_t records_stored = 0;       // records that reached the forest
  uint64_t records_lost = 0;         // lost to storage damage (salvage)
  uint64_t records_quarantined = 0;  // rejected by the ingest guard
  uint64_t blocks_skipped = 0;       // CRC-failed / implausible blocks
  bool footer_missing = false;       // source file ended mid-structure

  bool degraded() const {
    return records_lost > 0 || records_quarantined > 0 || blocks_skipped > 0 ||
           footer_missing;
  }
};

class AtypicalForest {
 public:
  AtypicalForest(const SensorNetwork* network, const TimeGrid& grid,
                 const ForestParams& params);

  const TimeGrid& time_grid() const { return grid_; }
  const ForestParams& params() const { return params_; }
  ClusterIdGenerator* ids() { return &ids_; }

  // Builds and stores the micro-clusters of one day.  `records` must all
  // fall on `day`.  Days may arrive in any order, and a day may arrive more
  // than once: a later batch is clustered on its own and its micro-clusters
  // are appended to the day's leaf set.  Records split across batches are
  // not re-joined at the leaf — query-time integration merges similar
  // clusters — and materialized week/month levels are not refreshed; call
  // MaterializeWeeks/MaterializeMonths again after late batches.  Until
  // then the affected levels read as stale (WeekIsStale/MonthIsStale) and
  // the query planner falls back to the day leaves instead of serving
  // pre-batch macros.
  void AddDay(int day, const std::vector<AtypicalRecord>& records);

  // Groups `records` by day and adds each day (appending to days already
  // present, per the AddDay batch-merge policy).
  void AddRecords(const std::vector<AtypicalRecord>& records);

  // Days present, ascending.
  std::vector<int> Days() const;
  bool HasDay(int day) const { return micros_by_day_.contains(day); }
  const std::vector<AtypicalCluster>& MicrosOfDay(int day) const;

  // Leaf micro-clusters whose day falls in `range` (ascending day order).
  std::vector<const AtypicalCluster*> MicrosInRange(const DayRange& range) const;

  // Same, into a caller-owned buffer (cleared first) so repeated queries
  // reuse its capacity (DESIGN §15).
  ATYPICAL_HOT void MicrosInRange(const DayRange& range,
                                  std::vector<const AtypicalCluster*>* out) const;

  // Micro-cluster severities by id over `range` (evaluation support).
  std::map<ClusterId, double> MicroSeverities(const DayRange& range) const;

  // Materializes week-level macro-clusters (time-of-day TF keys) for every
  // complete set of stored days in each week.  Re-materializing replaces the
  // level.  Returns the number of macro-clusters built.
  size_t MaterializeWeeks();
  // Same per `days_per_month`-day month.
  size_t MaterializeMonths(int days_per_month);
  // Month length used by MaterializeMonths; 0 when months were never
  // materialized in this process (e.g. a freshly loaded forest).
  int month_days() const { return month_days_; }

  bool HasWeek(int week) const { return macros_by_week_.contains(week); }
  const std::vector<AtypicalCluster>& MacrosOfWeek(int week) const;
  bool HasMonth(int month) const { return macros_by_month_.contains(month); }
  const std::vector<AtypicalCluster>& MacrosOfMonth(int month) const;
  std::vector<int> MaterializedWeeks() const;
  std::vector<int> MaterializedMonths() const;

  // ---- mutation versioning ----
  // Monotone counter bumped by every day mutation (AddDay / AddRecords /
  // InstallDay).  Materialization records the version it was built at, so a
  // materialized level whose covered days mutated afterwards is detectable
  // as stale — the query planner must not serve its macros
  // (CollectPlannedInputs skips them and counts
  // query.stale_materialized_skipped).  The serving layer additionally uses
  // the version as a cheap "did anything change" probe between snapshot
  // publishes (DESIGN §16).
  uint64_t version() const { return version_; }
  // True when some day in the week's/month's span mutated after the level
  // was last materialized (or installed).  Weeks/months that were never
  // materialized are not stale — they are simply absent.
  ATYPICAL_HOT bool WeekIsStale(int week) const;
  ATYPICAL_HOT bool MonthIsStale(int month) const;

  // ---- persistence support (storage::LoadForest) ----
  // Installs pre-built clusters directly, bypassing retrieval/integration.
  // The id generator is advanced past every installed cluster id so new
  // clusters never collide with persisted ones.
  void InstallDay(int day, std::vector<AtypicalCluster> micros);
  void InstallWeek(int week, std::vector<AtypicalCluster> macros);
  void InstallMonth(int month, std::vector<AtypicalCluster> macros);

  // ---- degradation provenance ----
  // Accumulates damage metadata for `day` (fields add up across calls, so
  // per-batch and per-source tallies compose).  Recording a provenance with
  // damage bumps the degradation.* obs counters.
  void RecordDayProvenance(int day, const DayProvenance& provenance);
  // Damage metadata for `day`, or nullptr when none was ever recorded
  // (which a query reads as "no known loss").
  const DayProvenance* day_provenance(int day) const;

  size_t num_micro_clusters() const { return num_micros_; }
  uint64_t ByteSize() const;

 private:
  // Integrates the day-leaf micros of `range` after re-keying to
  // time-of-day.
  std::vector<AtypicalCluster> IntegrateRange(const DayRange& range);

  // Moves the id generator past every id in `clusters`.
  void AdvanceIdsPast(const std::vector<AtypicalCluster>& clusters);

  // Any day in [first_day, last_day] mutated after `level_version`?
  bool DaysMutatedSince(int first_day, int last_day,
                        uint64_t level_version) const;

  const SensorNetwork* network_;
  TimeGrid grid_;
  ForestParams params_;
  ClusterIdGenerator ids_;
  std::map<int, std::vector<AtypicalCluster>> micros_by_day_;
  std::map<int, std::vector<AtypicalCluster>> macros_by_week_;
  std::map<int, std::vector<AtypicalCluster>> macros_by_month_;
  std::map<int, DayProvenance> provenance_by_day_;
  size_t num_micros_ = 0;
  int month_days_ = 0;
  // Mutation versioning: version_ counts day mutations, day_versions_ maps
  // each day to the version of its last mutation, and the per-level stamps
  // record the version the level was materialized (or installed) at.
  uint64_t version_ = 0;
  std::map<int, uint64_t> day_versions_;
  uint64_t weeks_version_ = 0;
  uint64_t months_version_ = 0;
};

}  // namespace atypical

#endif  // ATYPICAL_CORE_FOREST_H_
