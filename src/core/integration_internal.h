// Shared internals of Algorithm 3's serial and parallel drivers.
//
// The inverted candidate index restricts pairwise similarity checks to
// cluster pairs sharing at least one spatial or temporal key — disjoint
// pairs have similarity 0 and can never exceed δsim > 0, so pruning them
// keeps the result bit-identical to the naive quadratic scan (tested).
#ifndef ATYPICAL_CORE_INTEGRATION_INTERNAL_H_
#define ATYPICAL_CORE_INTEGRATION_INTERNAL_H_

#include <algorithm>
#include <cstdint>
#include <limits>
#include <unordered_map>
#include <vector>

#include "core/cluster.h"
#include "core/integration.h"
#include "util/hash_perturb.h"
#include "util/hot_path.h"

namespace atypical {
namespace integration_internal {

// Inverted index from feature keys to cluster slots, with lazy deletion
// (dead slots are filtered by the caller's alive[] check).  Spatial and
// temporal key spaces are disambiguated by a domain tag in the high bits.
//
// Merges re-post an absorbed cluster's keys under the winner slot (AddKeys
// in the drivers' merge block), so posting lists accumulate duplicates of
// the winner and stale entries for dead slots.  Candidates() filters both,
// but unbounded growth makes every later scan pay for all history — so the
// drivers arm a size watermark via SealBaseline() (trigger at 1.5× the
// just-built baseline: a fully collapsing run re-posts about one baseline's
// worth, so 2× would never fire within a run) and call MaybeCompact() after
// each merge; compaction rewrites lists sorted/deduped with dead slots
// dropped and re-arms at 2× the surviving size, which is amortized O(1) per
// posting.  Results are unchanged: Candidates() already dedups via
// last_seen_ and filters alive[].
//
// Not thread-safe; the parallel driver only queries it from the
// coordinating thread.
class CandidateIndex {
 public:
  explicit CandidateIndex(size_t num_slots) : last_seen_(num_slots, 0) {
    PerturbedReserve(postings_, num_slots * 2);
  }

  // Extends the slot space to `num_slots` (the incremental driver appends a
  // slot per arriving micro-cluster; batch drivers size the index up front).
  // Existing postings and the compaction watermark are untouched.
  void GrowSlots(size_t num_slots) {
    if (num_slots > last_seen_.size()) last_seen_.resize(num_slots, 0);
  }

  void AddKeys(const AtypicalCluster& cluster, uint32_t slot) {
    for (const FeatureVector::Entry& e : cluster.spatial.entries()) {
      Post(SpatialKey(e.key), slot);
    }
    for (const FeatureVector::Entry& e : cluster.temporal.entries()) {
      Post(TemporalKey(e.key), slot);
    }
  }

  // Arms compaction: trigger when postings grow 50% past the current
  // (just-built, duplicate-free) size.  Called once after the build loop.
  void SealBaseline() {
    compact_threshold_ = std::max<size_t>(
        total_postings_ + total_postings_ / 2, kMinPostings);
  }

  // Compacts if the armed watermark is exceeded.  Returns true when a
  // compaction ran (the drivers count these).
  bool MaybeCompact(const std::vector<bool>& alive) {
    if (total_postings_ <= compact_threshold_) return false;
    size_t kept = 0;
    // Each posting list is rewritten in place under its own key; no state
    // crosses entries, so visitation order cannot change the result.
    // NOLINTNEXTLINE(AL009): per-key rewrite with no cross-entry state
    for (auto it = postings_.begin(); it != postings_.end();) {
      std::vector<uint32_t>& slots = it->second;
      std::sort(slots.begin(), slots.end());
      slots.erase(std::unique(slots.begin(), slots.end()), slots.end());
      std::erase_if(slots, [&](uint32_t slot) { return !alive[slot]; });
      if (slots.empty()) {
        it = postings_.erase(it);
      } else {
        slots.shrink_to_fit();
        kept += slots.size();
        ++it;
      }
    }
    total_postings_ = kept;
    compact_threshold_ = std::max<size_t>(2 * kept, kMinPostings);
    return true;
  }

  // Collects slots sharing at least one key with `cluster`, excluding
  // `self`, sorted ascending and deduplicated.
  ATYPICAL_HOT void Candidates(const AtypicalCluster& cluster, uint32_t self,
                               const std::vector<bool>& alive,
                               std::vector<uint32_t>* out) {
    out->clear();
    ++scan_id_;
    auto visit = [&](uint64_t key) {
      const auto it = postings_.find(key);
      if (it == postings_.end()) return;
      for (uint32_t slot : it->second) {
        if (slot == self || !alive[slot]) continue;
        if (last_seen_[slot] == scan_id_) continue;
        last_seen_[slot] = scan_id_;
        out->push_back(slot);
      }
    };
    for (const FeatureVector::Entry& e : cluster.spatial.entries()) {
      visit(SpatialKey(e.key));
    }
    for (const FeatureVector::Entry& e : cluster.temporal.entries()) {
      visit(TemporalKey(e.key));
    }
    std::sort(out->begin(), out->end());
  }

 private:
  // Below this many postings compaction is never worth the rehash walk.
  static constexpr size_t kMinPostings = 64;

  static uint64_t SpatialKey(uint32_t key) { return key; }
  static uint64_t TemporalKey(uint32_t key) {
    return (1ULL << 32) | key;
  }

  void Post(uint64_t key, uint32_t slot) {
    postings_[key].push_back(slot);
    ++total_postings_;
  }

  std::unordered_map<uint64_t, std::vector<uint32_t>> postings_;
  std::vector<uint64_t> last_seen_;
  uint64_t scan_id_ = 0;
  size_t total_postings_ = 0;
  // SIZE_MAX until SealBaseline(): an unsealed index never compacts.
  size_t compact_threshold_ = std::numeric_limits<size_t>::max();
};

// The serial greedy fixpoint of Algorithm 3 — the exact body of
// IntegrateClusters minus obs publication: ascending slot sweep, each slot
// repeatedly absorbing its lowest-numbered qualifying candidate, budgets
// returning a valid partial partition with stats->converged=false.  Both
// IntegrateClusters and IncrementalIntegrator::Finalize() call this one
// function, which is what makes their outputs bit-identical by
// construction.  `stats` must be non-null and is filled completely
// (including seconds).
std::vector<AtypicalCluster> GreedyFixpoint(
    std::vector<AtypicalCluster> clusters, const IntegrationParams& params,
    ClusterIdGenerator* ids, IntegrationStats* stats);

}  // namespace integration_internal
}  // namespace atypical

#endif  // ATYPICAL_CORE_INTEGRATION_INTERNAL_H_
