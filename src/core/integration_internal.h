// Shared internals of Algorithm 3's serial and parallel drivers.
//
// The inverted candidate index restricts pairwise similarity checks to
// cluster pairs sharing at least one spatial or temporal key — disjoint
// pairs have similarity 0 and can never exceed δsim > 0, so pruning them
// keeps the result bit-identical to the naive quadratic scan (tested).
#ifndef ATYPICAL_CORE_INTEGRATION_INTERNAL_H_
#define ATYPICAL_CORE_INTEGRATION_INTERNAL_H_

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/cluster.h"

namespace atypical {
namespace integration_internal {

// Inverted index from feature keys to cluster slots, with lazy deletion
// (dead slots are filtered by the caller's alive[] check).  Spatial and
// temporal key spaces are disambiguated by a domain tag in the high bits.
// Not thread-safe; the parallel driver only queries it from the
// coordinating thread.
class CandidateIndex {
 public:
  explicit CandidateIndex(size_t num_slots) : last_seen_(num_slots, 0) {}

  void AddKeys(const AtypicalCluster& cluster, uint32_t slot) {
    for (const FeatureVector::Entry& e : cluster.spatial.entries()) {
      postings_[SpatialKey(e.key)].push_back(slot);
    }
    for (const FeatureVector::Entry& e : cluster.temporal.entries()) {
      postings_[TemporalKey(e.key)].push_back(slot);
    }
  }

  // Collects slots sharing at least one key with `cluster`, excluding
  // `self`, sorted ascending and deduplicated.
  void Candidates(const AtypicalCluster& cluster, uint32_t self,
                  const std::vector<bool>& alive,
                  std::vector<uint32_t>* out) {
    out->clear();
    ++scan_id_;
    auto visit = [&](uint64_t key) {
      const auto it = postings_.find(key);
      if (it == postings_.end()) return;
      for (uint32_t slot : it->second) {
        if (slot == self || !alive[slot]) continue;
        if (last_seen_[slot] == scan_id_) continue;
        last_seen_[slot] = scan_id_;
        out->push_back(slot);
      }
    };
    for (const FeatureVector::Entry& e : cluster.spatial.entries()) {
      visit(SpatialKey(e.key));
    }
    for (const FeatureVector::Entry& e : cluster.temporal.entries()) {
      visit(TemporalKey(e.key));
    }
    std::sort(out->begin(), out->end());
  }

 private:
  static uint64_t SpatialKey(uint32_t key) { return key; }
  static uint64_t TemporalKey(uint32_t key) {
    return (1ULL << 32) | key;
  }

  std::unordered_map<uint64_t, std::vector<uint32_t>> postings_;
  std::vector<uint64_t> last_seen_;
  uint64_t scan_id_ = 0;
};

}  // namespace integration_internal
}  // namespace atypical

#endif  // ATYPICAL_CORE_INTEGRATION_INTERNAL_H_
