// Analytical query processing (§IV): Q(W, T) over the atypical forest with
// three strategies.
//
//   kAll    — integrate every micro-cluster in range (exact, quadratic);
//   kPrune  — beforehand pruning: integrate only micro-clusters that are
//             themselves significant at the query's threshold (fast, but
//             misses significant macro-clusters built from trivial micros —
//             Example 6);
//   kGuided — Algorithm 4: compute red zones from the bottom-up cube, prune
//             micro-clusters outside them, integrate the rest, optionally
//             post-check severities to remove false positives.
#ifndef ATYPICAL_CORE_QUERY_H_
#define ATYPICAL_CORE_QUERY_H_

#include <vector>

#include "core/forest.h"
#include "core/integration.h"
#include "core/significance.h"
#include "cps/spatial_partition.h"
#include "cube/cube.h"
#include "cube/red_zone.h"
#include "util/hot_path.h"

namespace atypical {

// Q(W, T): spatial rectangle and day range.
struct AnalyticalQuery {
  GeoRect area;
  DayRange days;
};

// First id handed to macro-clusters a query's integration creates.  Run()
// draws from a query-local generator starting here instead of the forest's
// shared one, so (a) the engine never mutates the forest — Run() is truly
// const and safe against a concurrent materialization — and (b) the same
// query on the same forest state returns bit-identical results, ids
// included, no matter how many queries ran before or alongside it (the
// serving layer's cached-equals-uncached contract, DESIGN §16).  The base
// sits far above every stored id (leaf micros count from 1, the incremental
// integrator's scratch ids from 2^40), so result macro ids never collide
// with the micro ids they reference.
inline constexpr ClusterId kQueryMacroIdBase = ClusterId{1} << 42;

enum class QueryStrategy : uint8_t { kAll, kPrune, kGuided };

const char* QueryStrategyName(QueryStrategy strategy);

struct QueryCost {
  double seconds = 0.0;
  // The paper's I/O measure: number of micro-clusters fed to integration.
  size_t input_micro_clusters = 0;
  size_t micro_clusters_in_range = 0;
  size_t red_zones = 0;
  size_t regions_checked = 0;
  // Materialized-plan accounting: pre-integrated inputs used instead of
  // day micro-clusters, and the days they covered.
  size_t materialized_inputs = 0;
  int days_from_materialized = 0;
  // Materialized levels the planner refused because a late batch mutated a
  // covered day after the level was built (forest versioning; the level
  // would have served stale macros).  The skipped days fall back to leaves.
  size_t stale_materialized_skipped = 0;
  IntegrationStats integration;
};

// How much of the queried range the answer actually saw.  Built from the
// forest's per-day provenance (DayProvenance), it distinguishes a *quiet*
// day — in range, no data, no damage recorded — from a *blind* day, where
// the ingest path recorded loss.  An empty result over a degraded range
// means "we couldn't see", not "nothing happened".
struct DataCompleteness {
  int days_in_range = 0;
  int days_with_data = 0;      // days with stored micro-clusters
  int days_degraded = 0;       // days whose provenance records damage
  uint64_t records_lost = 0;   // summed over the range
  uint64_t records_quarantined = 0;
  // False when the query's own integration hit its round/deadline budget
  // (IntegrationStats::converged): clusters may be under-merged.
  bool integration_converged = true;

  bool complete() const {
    return days_degraded == 0 && records_lost == 0 &&
           records_quarantined == 0 && integration_converged;
  }
};

struct QueryResult {
  // Integrated macro-clusters (TF keyed by time-of-day).  Without
  // post-checking this is the full integration output; with post-checking
  // only clusters above the significance threshold remain.
  std::vector<AtypicalCluster> clusters;
  double threshold = 0.0;
  int num_sensors_in_w = 0;
  // Data-quality annotation for the answer (degradation contract, DESIGN
  // §12).  Always populated by Run(), even for empty ranges.
  DataCompleteness completeness;
  QueryCost cost;
};

struct QueryEngineOptions {
  IntegrationParams integration;
  SignificanceParams significance;
  cube::RedZoneFilterMode red_zone_mode =
      cube::RedZoneFilterMode::kKeepIntersecting;
  // Algorithm 4 lines 5–7: drop macro-clusters below the threshold after
  // integration.  Off by default to mirror the paper's experimental setup
  // ("this procedure is turned off in the experiments for a fair play").
  bool post_check_significance = false;
  // Use the forest's materialized weekly/monthly macro-clusters when they
  // fully cover part of the query range: months first, then weeks, then
  // leaf days for the remainder.  Severity mass is identical either way
  // (the features are algebraic); only the integration input shrinks.
  // Only sound for All queries — Pru/Gui prune at micro granularity — so
  // other strategies ignore it.
  bool use_materialized_levels = false;
};

// Caller-owned reusable buffers for QueryEngine::Run (DESIGN §15).  A
// serving loop keeps one per worker thread; repeated queries then reuse the
// grown capacity instead of re-allocating scratch per call.  The alloc_probe
// tests pin Run()'s steady-state allocation count with a warm scratch.
struct QueryScratch {
  // Sensors inside W, ascending by id (SensorsInRect order); membership
  // tests binary-search it.
  std::vector<SensorId> sensors_in_w;
  // Leaf micro-cluster pointers over T (MicrosInRange order).
  std::vector<const AtypicalCluster*> micros_in_range;
};

// Online query processor over a built forest.  The atypical cube drives the
// red-zone guidance; it must cover the forest's data.
class QueryEngine {
 public:
  // The engine only ever reads the forest: queries draw result ids from a
  // query-local generator (kQueryMacroIdBase), so a const forest is enough
  // and concurrent Run() calls never race a writer through the engine.
  QueryEngine(const SensorNetwork* network, const SpatialPartition* regions,
              const AtypicalForest* forest,
              const cube::BottomUpCube* atypical_cube,
              const QueryEngineOptions& options);

  const QueryEngineOptions& options() const { return options_; }

  // Runs Q(W, T).  An empty or inverted day range (NumDays() <= 0) covers
  // no days and returns the default-constructed QueryResult: no clusters,
  // zero threshold, zero num_sensors_in_w, zero cost.
  ATYPICAL_HOT QueryResult Run(const AnalyticalQuery& query,
                               QueryStrategy strategy) const;

  // As above, with caller-owned scratch reused across calls.  This is the
  // serving-loop entry point: at steady state (warm scratch, warm forest)
  // its allocations are O(result), pinned by tests/alloc_probe_test.cc.
  ATYPICAL_HOT QueryResult Run(const AnalyticalQuery& query,
                               QueryStrategy strategy,
                               QueryScratch* scratch) const;

  // The significance threshold δs·length(T)·N this engine would use for the
  // query (exposed for evaluation code).
  double ThresholdFor(const AnalyticalQuery& query) const;

 private:
  // Micro-clusters in range intersecting W, re-keyed to time-of-day.
  ATYPICAL_HOT std::vector<AtypicalCluster> CollectMicros(
      const AnalyticalQuery& query, QueryScratch* scratch,
      QueryCost* cost) const;

  // Materialized plan: months, then weeks, then leaf days for the rest.
  // `sensors_in_w` must be sorted ascending.
  ATYPICAL_HOT std::vector<AtypicalCluster> CollectPlannedInputs(
      const AnalyticalQuery& query, const std::vector<SensorId>& sensors_in_w,
      QueryCost* cost) const;

  // Drops inputs that do not touch the query area W, in place (order
  // preserved).  `sensors_in_w` must be sorted ascending.
  ATYPICAL_HOT static void FilterToArea(
      const std::vector<SensorId>& sensors_in_w,
      std::vector<AtypicalCluster>* inputs);

  const SensorNetwork* network_;
  const SpatialPartition* regions_;
  const AtypicalForest* forest_;
  const cube::BottomUpCube* atypical_cube_;
  QueryEngineOptions options_;
};

}  // namespace atypical

#endif  // ATYPICAL_CORE_QUERY_H_
