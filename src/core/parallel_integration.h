// Parallel Algorithm 3: sharded cluster integration on a worker pool.
//
// The serial driver (core/integration.h) spends nearly all of its time in
// the candidate similarity scans of the greedy fixpoint loop; the merges
// themselves are rare and linear (Proposition 2).  This driver keeps the
// serial loop's decisions — it shards each candidate scan across a small
// worker pool and picks the lowest-numbered qualifying candidate, exactly
// the cluster the serial scan would have chosen — so the output is
// bit-identical to IntegrateClusters on any input (tested), while the
// dominant O(n²) similarity work divides across threads.
//
// What makes the concurrency safe:
//   * merge commutativity/associativity (Property 3) means feature reads
//     during a scan never depend on scan order, and all writes (merges)
//     stay on the coordinating thread;
//   * FeatureVectors are force-compacted before workers share them, because
//     lazy compaction mutates under const (see FeatureVector::EnsureCompact);
//   * all worker/coordinator handoff state lives behind the annotated
//     Mutex/CondVar in util/sync.h, checked by Clang `-Wthread-safety` and
//     exercised under `-DATYPICAL_TSAN=ON` in CI.
//
// IntegrationStats::similarity_checks may differ from the serial driver's
// count: a worker stops at the first hit in its own shard, so shards past
// the globally chosen candidate may or may not have been scanned.  Every
// other field matches the serial run.
#ifndef ATYPICAL_CORE_PARALLEL_INTEGRATION_H_
#define ATYPICAL_CORE_PARALLEL_INTEGRATION_H_

#include <vector>

#include "core/cluster.h"
#include "core/integration.h"

namespace atypical {

struct ParallelIntegrationParams {
  IntegrationParams base;
  // Pool size.  1 falls back to the serial driver (still bit-identical).
  int num_threads = 4;
  // Candidate lists shorter than this are scanned inline by the
  // coordinator; the handoff latency would exceed the scan cost.
  size_t min_shard_candidates = 16;
};

// Drop-in parallel replacement for IntegrateClusters; same contract, same
// output, bit for bit (including cluster ids — the coordinator performs the
// merges in the serial order, so `ids` is consumed identically).
std::vector<AtypicalCluster> ParallelIntegrateClusters(
    std::vector<AtypicalCluster> clusters,
    const ParallelIntegrationParams& params, ClusterIdGenerator* ids,
    IntegrationStats* stats = nullptr);

}  // namespace atypical

#endif  // ATYPICAL_CORE_PARALLEL_INTEGRATION_H_
