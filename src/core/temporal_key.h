// Temporal feature keying.
//
// Micro-clusters summarize one event and key TF by absolute window id.  For
// cross-day integration (daily micros → weekly/monthly macros) windows of
// different days must be comparable, so TF is re-keyed to the window-of-day:
// the paper's Fig. 5 lists temporal features as clock times without dates,
// and its motivating merge ("the 10E freeway often jams ... in the evening
// rush hours") only works with time-of-day keys.
#ifndef ATYPICAL_CORE_TEMPORAL_KEY_H_
#define ATYPICAL_CORE_TEMPORAL_KEY_H_

#include "core/cluster.h"
#include "cps/types.h"

namespace atypical {

// Maps an absolute window to its key under `mode`.
uint32_t TemporalKey(WindowId window, const TimeGrid& grid,
                     TemporalKeyMode mode);

// Returns a copy of `cluster` with TF re-keyed under `mode` (severities of
// windows mapping to the same key accumulate).  Total severity, SF and
// metadata are unchanged.  Re-keying kTimeOfDay -> kAbsolute is impossible
// (information was discarded) and dies.
AtypicalCluster WithTemporalKeyMode(const AtypicalCluster& cluster,
                                    const TimeGrid& grid,
                                    TemporalKeyMode mode);

}  // namespace atypical

#endif  // ATYPICAL_CORE_TEMPORAL_KEY_H_
