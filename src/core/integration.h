// Algorithm 3: atypical cluster integration.
//
// Repeatedly merges cluster pairs whose similarity exceeds δsim until no
// pair qualifies (a fixpoint; merge order does not matter for feature
// correctness by Property 3, but hard clustering makes the partition itself
// order-dependent, so this implementation fixes a deterministic greedy
// order).  The accelerated path restricts candidate pairs to clusters
// sharing at least one spatial or temporal key via an inverted index —
// disjoint clusters have similarity 0 and can never exceed δsim > 0, so the
// result is bit-identical to the naive quadratic scan (tested).
#ifndef ATYPICAL_CORE_INTEGRATION_H_
#define ATYPICAL_CORE_INTEGRATION_H_

#include <vector>

#include "core/cluster.h"
#include "core/similarity.h"

namespace atypical {

struct IntegrationParams {
  double delta_sim = 0.5;  // paper default
  BalanceFunction g = BalanceFunction::kArithmeticMean;  // paper default
  bool use_candidate_index = true;
  // Answer Sim > δsim via conservative upper bounds where possible
  // (ExceedsThreshold, DESIGN §11).  Never changes results — the off
  // setting exists for benchmarking and the bit-identity property tests.
  bool use_similarity_fast_path = true;
  // Degradation guards on the fixpoint loop (0 = unlimited).  When either
  // budget trips, integration stops merging and returns the partition
  // reached so far — a clean partial result, not an error.  The outcome is
  // visible in IntegrationStats::converged and the
  // degradation.integration_partial counter.
  uint64_t max_fixpoint_rounds = 0;
  double deadline_seconds = 0.0;
};

struct IntegrationStats {
  size_t input_clusters = 0;
  size_t output_clusters = 0;
  size_t similarity_checks = 0;
  size_t merges = 0;
  // Scan accounting (SimilarityScanStats): exact_scans + pruned_scans is
  // the number of CommonSeverity evaluations the pure exact path runs.
  uint64_t exact_scans = 0;
  uint64_t pruned_scans = 0;
  // Candidate-index posting-list compactions (lazy-deletion GC).
  uint64_t index_compactions = 0;
  uint64_t fixpoint_rounds = 0;
  // False when a max_fixpoint_rounds / deadline_seconds guard stopped the
  // loop before the Algorithm 3 fixpoint: the output is a valid partition,
  // but some mergeable pairs may remain unmerged.
  bool converged = true;
  double seconds = 0.0;
};

// Integrates `clusters` (consumed) into macro-clusters.  All inputs must
// share one TemporalKeyMode.  δsim must be positive.
std::vector<AtypicalCluster> IntegrateClusters(
    std::vector<AtypicalCluster> clusters, const IntegrationParams& params,
    ClusterIdGenerator* ids, IntegrationStats* stats = nullptr);

}  // namespace atypical

#endif  // ATYPICAL_CORE_INTEGRATION_H_
