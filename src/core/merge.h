// Algorithm 2: merging two atypical clusters into a macro-cluster.
//
// SF and TF merge per Eq. 5/6 (common keys accumulate severity, the rest
// carry over) and the result gets a fresh id.  The operation is commutative
// and associative (Property 3) and runs in O(|SF1|+|SF2|+|TF1|+|TF2|)
// (Proposition 2).
#ifndef ATYPICAL_CORE_MERGE_H_
#define ATYPICAL_CORE_MERGE_H_

#include "core/cluster.h"

namespace atypical {

// Merges `a` and `b`.  Both clusters must use the same TemporalKeyMode.
// Metadata is combined: micro_ids union, day span union, record counts sum,
// children set to (a.id, b.id).
AtypicalCluster MergeClusters(const AtypicalCluster& a,
                              const AtypicalCluster& b,
                              ClusterIdGenerator* ids);

}  // namespace atypical

#endif  // ATYPICAL_CORE_MERGE_H_
