// Cluster similarity (Eq. 2–4).
//
//   Sim(C1, C2)    = ½ (SimSF + SimTF)
//   SimSF(C1, C2)  = g( Σ_{S1∩S2} μ1 / Σ_{S1} μ1 ,  Σ_{S1∩S2} μ2 / Σ_{S2} μ2 )
//   SimTF          analogous on temporal features
//
// g balances the two clusters' common-severity fractions; the paper
// evaluates max, min, arithmetic, geometric and harmonic means (Fig. 21).
#ifndef ATYPICAL_CORE_SIMILARITY_H_
#define ATYPICAL_CORE_SIMILARITY_H_

#include <string>

#include "core/cluster.h"

namespace atypical {

enum class BalanceFunction : uint8_t {
  kMax,
  kMin,
  kArithmeticMean,
  kGeometricMean,
  kHarmonicMean,
};

const char* BalanceFunctionName(BalanceFunction g);

// Applies the balance function to two fractions in [0, 1].
double Balance(BalanceFunction g, double p1, double p2);

// Eq. 3.  Empty features yield 0.
double SpatialSimilarity(const AtypicalCluster& c1, const AtypicalCluster& c2,
                         BalanceFunction g);

// Eq. 4.  The clusters must use the same TemporalKeyMode.
double TemporalSimilarity(const AtypicalCluster& c1, const AtypicalCluster& c2,
                          BalanceFunction g);

// Eq. 2.
double Similarity(const AtypicalCluster& c1, const AtypicalCluster& c2,
                  BalanceFunction g);

}  // namespace atypical

#endif  // ATYPICAL_CORE_SIMILARITY_H_
