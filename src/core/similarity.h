// Cluster similarity (Eq. 2–4).
//
//   Sim(C1, C2)    = ½ (SimSF + SimTF)
//   SimSF(C1, C2)  = g( Σ_{S1∩S2} μ1 / Σ_{S1} μ1 ,  Σ_{S1∩S2} μ2 / Σ_{S2} μ2 )
//   SimTF          analogous on temporal features
//
// g balances the two clusters' common-severity fractions; the paper
// evaluates max, min, arithmetic, geometric and harmonic means (Fig. 21).
#ifndef ATYPICAL_CORE_SIMILARITY_H_
#define ATYPICAL_CORE_SIMILARITY_H_

#include <string>

#include "core/cluster.h"
#include "util/hot_path.h"

namespace atypical {

enum class BalanceFunction : uint8_t {
  kMax,
  kMin,
  kArithmeticMean,
  kGeometricMean,
  kHarmonicMean,
};

const char* BalanceFunctionName(BalanceFunction g);

// Applies the balance function to two fractions in [0, 1].
double Balance(BalanceFunction g, double p1, double p2);

// Eq. 3.  Empty features yield 0.
double SpatialSimilarity(const AtypicalCluster& c1, const AtypicalCluster& c2,
                         BalanceFunction g);

// Eq. 4.  The clusters must use the same TemporalKeyMode.
double TemporalSimilarity(const AtypicalCluster& c1, const AtypicalCluster& c2,
                          BalanceFunction g);

// Eq. 2.
ATYPICAL_HOT double Similarity(const AtypicalCluster& c1,
                               const AtypicalCluster& c2, BalanceFunction g);

// ---- similarity fast path (DESIGN §11) ----
//
// The integration drivers only need the *verdict* Sim > δsim, not the value.
// A cheap upper bound on Sim that already falls at or below δsim proves the
// verdict "no" without the exact O(|SF|+|TF|) CommonSeverity merge-scans.
// The bound is conservative (never below the true similarity), so pruning
// is exact-safe: fast-path on/off produce bit-identical integration output.

// How many pairwise similarity evaluations took the exact path vs. were
// answered by the upper bound alone.  exact_scans + pruned_scans equals the
// number of evaluations the pure exact path would have scanned.
struct SimilarityScanStats {
  uint64_t exact_scans = 0;
  uint64_t pruned_scans = 0;

  SimilarityScanStats& operator+=(const SimilarityScanStats& o) {
    exact_scans += o.exact_scans;
    pruned_scans += o.pruned_scans;
    return *this;
  }
};

// Upper bound on Similarity(c1, c2, g) computed from the clusters'
// feature signatures, totals, max entry severities and severity sketches —
// O(kSignatureBuckets/64) words of work, no entry scans.  Guaranteed
// ≥ Similarity(c1, c2, g) (FP slack included; see DESIGN §11).
ATYPICAL_HOT double SimilarityUpperBound(const AtypicalCluster& c1,
                                         const AtypicalCluster& c2,
                                         BalanceFunction g);

// The drivers' entry point: exactly `Similarity(c1, c2, g) > delta_sim`,
// but answered via staged upper bounds when they already settle the verdict.
// With use_fast_path=false this is a plain exact evaluation (the baseline
// the property tests compare against).  `stats`, if non-null, is updated.
ATYPICAL_HOT bool ExceedsThreshold(const AtypicalCluster& c1,
                                   const AtypicalCluster& c2,
                                   BalanceFunction g, double delta_sim,
                                   SimilarityScanStats* stats = nullptr,
                                   bool use_fast_path = true);

}  // namespace atypical

#endif  // ATYPICAL_CORE_SIMILARITY_H_
