// Streaming event retrieval: the online counterpart of Algorithm 1.
//
// A CPS produces atypical records continuously in window order.  Instead of
// re-running batch retrieval, `StreamingEventBuilder` maintains the set of
// *open* events: records are appended as they arrive; two open events merge
// when a new record relates to both; an event closes once no future record
// can relate to any of its records (the stream has advanced past its last
// record's window by δt plus one window), at which point its micro-cluster
// is emitted.
//
// Invariant (tested): feeding a day's records in window order yields exactly
// the events of batch RetrieveEvents — the connected components of Def. 3
// do not depend on discovery order.  With the seq-carrying emit seam below,
// the guarantee is bit-exact: each emitted micro-cluster accumulates its
// records in the same order batch retrieval would, and carries the arrival
// index of its earliest record so a downstream consumer can reconstruct the
// batch event order (events sorted by smallest record index).
#ifndef ATYPICAL_CORE_STREAMING_H_
#define ATYPICAL_CORE_STREAMING_H_

#include <cstdint>
#include <functional>
#include <list>
#include <vector>

#include "core/cluster.h"
#include "core/event_retrieval.h"
#include "cps/record.h"
#include "cps/sensor_network.h"

namespace atypical {

class StreamingEventBuilder {
 public:
  // Called with the finished micro-cluster of each closed event, in closing
  // order.
  using EmitFn = std::function<void(AtypicalCluster)>;

  // Seq-carrying variant: also receives the arrival index (0-based position
  // in the fed stream) of the event's *earliest* record.  Closing order is
  // not batch order — an event opened late can close before one opened
  // early that keeps growing — but sorting emitted clusters by
  // `first_record_seq` reproduces exactly the event order of batch
  // `RetrieveEvents` (events ordered by smallest record index).  This is the
  // seam `IncrementalIntegrator` uses for its streamed≡batch guarantee.
  using EmitSeqFn = std::function<void(AtypicalCluster, uint64_t)>;

  StreamingEventBuilder(const SensorNetwork* network, const TimeGrid& grid,
                        const RetrievalParams& params,
                        ClusterIdGenerator* ids, EmitFn emit);
  StreamingEventBuilder(const SensorNetwork* network, const TimeGrid& grid,
                        const RetrievalParams& params,
                        ClusterIdGenerator* ids, EmitSeqFn emit);

  // Feeds one record.  Records must arrive in non-decreasing window order
  // (the natural order of a CPS feed); violating this dies.
  void Add(const AtypicalRecord& record);

  // Number of events currently open (awaiting possible growth).
  size_t open_events() const { return open_.size(); }

  // Total records fed so far.
  size_t records_seen() const { return records_seen_; }

  // Closes every open event regardless of window distance (end of stream).
  // Flush alone does NOT re-arm the builder for a new day: window ids
  // restart each day, and the monotonic-feed CHECK in Add() would fire.
  // Call Reset() between days.
  void Flush();

  // Flushes, then returns the builder to its freshly-constructed state
  // (window watermark and record counter zeroed) so one builder can serve
  // consecutive days whose window ids restart from 0.
  void Reset();

 private:
  // Each open record carries its arrival index so that merges can restore
  // exact global arrival order (windows alone cannot: equal-window records
  // interleaved across two merging events lose their relative order at
  // concatenation).
  struct TaggedRecord {
    AtypicalRecord record;
    uint64_t seq = 0;
  };
  struct OpenEvent {
    std::vector<TaggedRecord> records;
    WindowId last_window = 0;  // max window of any record
  };

  // Emits and removes events that can no longer grow given the stream has
  // reached `window`.
  void CloseExpired(WindowId window);
  void Emit(OpenEvent& event);

  bool Related(const AtypicalRecord& a, const AtypicalRecord& b) const;

  const SensorNetwork* network_;
  TimeGrid grid_;
  RetrievalParams params_;
  ClusterIdGenerator* ids_;
  EmitSeqFn emit_;
  std::list<OpenEvent> open_;
  WindowId last_seen_window_ = 0;
  uint64_t records_seen_ = 0;
};

// Convenience: streams `records` (sorted by window) through a builder and
// returns all micro-clusters (events ordered by closing time).
std::vector<AtypicalCluster> StreamMicroClusters(
    const std::vector<AtypicalRecord>& records, const SensorNetwork& network,
    const TimeGrid& grid, const RetrievalParams& params,
    ClusterIdGenerator* ids);

}  // namespace atypical

#endif  // ATYPICAL_CORE_STREAMING_H_
