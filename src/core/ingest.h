// Fault-tolerant ingestion: the degraded-mode front end of streaming event
// retrieval.
//
// `StreamingEventBuilder` (core/streaming.h) assumes a clean, window-ordered
// feed and dies on anything else.  Real CPS feeds deliver late, duplicated
// and malformed records; `RobustStreamingEventBuilder` wraps the strict
// builder behind a validating guard:
//
//   * malformed records — unknown sensor id, NaN/negative severity, severity
//     exceeding the window length, duplicate (sensor, window) pairs — are
//     quarantined and never reach the builder;
//   * out-of-order records are handled per `IngestPolicy`: `kStrict` dies
//     exactly like the raw builder, `kDrop` quarantines them, `kBuffer`
//     holds records in a bounded reorder buffer spanning
//     `lateness_horizon_windows` and releases them in window order, so a
//     stream permuted within the horizon produces exactly the clean-stream
//     events (tested against batch retrieval);
//   * every outcome lands in exactly one `IngestStats` counter, and the
//     counters always reconcile with the number of records fed.
//
// The guard's state is bounded: the reorder buffer and the duplicate-
// detection set only hold entries within the lateness horizon of the
// watermark (the maximum accepted window so far).
#ifndef ATYPICAL_CORE_INGEST_H_
#define ATYPICAL_CORE_INGEST_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <utility>

#include "core/streaming.h"

namespace atypical {

enum class IngestPolicy : int8_t {
  kStrict,  // any quarantine verdict is fatal (the raw builder's contract)
  kDrop,    // out-of-order records are quarantined; in-order ones flow through
  kBuffer,  // records late by at most the horizon are reordered and kept
};

const char* IngestPolicyName(IngestPolicy policy);

// Why a record was refused; kNone means it was accepted.
enum class QuarantineCause : int8_t {
  kNone = 0,
  kUnknownSensor,   // sensor id not present in the network
  kBadSeverity,     // NaN or negative severity
  kExcessSeverity,  // severity exceeds the window length
  kDuplicate,       // (sensor, window) already accepted
  kLate,            // window too old for the policy to admit
};

const char* QuarantineCauseName(QuarantineCause cause);

struct IngestOptions {
  IngestPolicy policy = IngestPolicy::kBuffer;
  // How many windows a record may lag behind the watermark and still be
  // admitted under kBuffer.  Also bounds the reorder buffer and the
  // duplicate-detection state.
  int lateness_horizon_windows = 4;
};

// Ingest outcome counters.  Invariant (tested):
//   records_in == accepted + quarantined().
struct IngestStats {
  uint64_t records_in = 0;  // everything fed to Add
  uint64_t accepted = 0;    // admitted (forwarded to or buffered for the builder)
  uint64_t reordered = 0;   // subset of accepted that arrived out of order
  uint64_t quarantined_unknown_sensor = 0;
  uint64_t quarantined_bad_severity = 0;
  uint64_t quarantined_excess_severity = 0;
  uint64_t quarantined_duplicate = 0;
  uint64_t quarantined_late = 0;

  uint64_t quarantined() const {
    return quarantined_unknown_sensor + quarantined_bad_severity +
           quarantined_excess_severity + quarantined_duplicate +
           quarantined_late;
  }
  bool Reconciles() const { return records_in == accepted + quarantined(); }
};

class RobustStreamingEventBuilder {
 public:
  using EmitFn = StreamingEventBuilder::EmitFn;
  using EmitSeqFn = StreamingEventBuilder::EmitSeqFn;
  // Observes every record actually released to the inner builder, in the
  // (non-decreasing window) order it is released.
  using AcceptFn = std::function<void(const AtypicalRecord&)>;

  RobustStreamingEventBuilder(const SensorNetwork* network,
                              const TimeGrid& grid,
                              const RetrievalParams& params,
                              ClusterIdGenerator* ids, EmitFn emit,
                              const IngestOptions& options = {});
  // Seq-carrying variant (see StreamingEventBuilder::EmitSeqFn): the seq is
  // the event's earliest record's position in the *released* stream, i.e.
  // the validated, window-ordered feed the accept tap observes — exactly
  // the record numbering batch retrieval over the accepted records uses.
  RobustStreamingEventBuilder(const SensorNetwork* network,
                              const TimeGrid& grid,
                              const RetrievalParams& params,
                              ClusterIdGenerator* ids, EmitSeqFn emit,
                              const IngestOptions& options = {});

  // Publishes the outstanding IngestStats delta to the global obs registry
  // (the "ingest.*" counters); Flush() publishes too, so per-record costs
  // stay out of the obs layer entirely.
  ~RobustStreamingEventBuilder();

  // Installs a tap on accepted records (e.g. to feed a severity cube with
  // only the validated stream).  Must be set before the first Add.
  void set_accept_tap(AcceptFn tap) { accept_tap_ = std::move(tap); }

  // Feeds one record and returns the verdict (kNone = accepted).  Under
  // kStrict any non-kNone verdict is fatal instead of returned.
  QuarantineCause Add(const AtypicalRecord& record);

  // Releases the reorder buffer in window order and closes all open events.
  void Flush();

  // Flushes, then re-arms the guard and the inner builder for a new day:
  // clears the watermark and the duplicate-detection state and zeroes the
  // inner builder's window watermark (day window ids restart from 0).
  // IngestStats stay cumulative across Reset() — the reconciliation
  // invariant spans the guard's whole lifetime.
  void Reset();

  const IngestStats& stats() const { return stats_; }
  size_t open_events() const { return builder_.open_events(); }
  size_t buffered() const { return buffer_.size(); }
  const IngestOptions& options() const { return options_; }

  struct Quarantined {
    AtypicalRecord record;
    QuarantineCause cause = QuarantineCause::kNone;
  };
  // Most recent quarantined records with their causes — a bounded debugging
  // log (the counters in stats() are always exact).
  const std::deque<Quarantined>& quarantine_log() const {
    return quarantine_log_;
  }

 private:
  // Field validation independent of arrival order.
  QuarantineCause ClassifyFields(const AtypicalRecord& record) const;
  void Quarantine(const AtypicalRecord& record, QuarantineCause cause);
  // Forwards to the inner builder and the accept tap.
  void Forward(const AtypicalRecord& record);
  // Releases buffered records whose window can no longer be preceded by any
  // future admissible record, and prunes expired duplicate-detection state.
  void ReleaseAndPrune();
  // Adds stats_ - published_ to the global registry and remembers the new
  // high-water mark; safe to call repeatedly.
  void PublishStats();

  const SensorNetwork* network_;
  TimeGrid grid_;
  IngestOptions options_;
  StreamingEventBuilder builder_;
  AcceptFn accept_tap_;

  // Reorder buffer keyed by window (kBuffer only).
  std::multimap<WindowId, AtypicalRecord> buffer_;
  // Accepted (window, sensor) pairs within the horizon, for dedup.
  std::set<std::pair<WindowId, SensorId>> seen_;
  WindowId watermark_ = 0;  // max accepted window
  bool has_watermark_ = false;
  IngestStats stats_;
  IngestStats published_;  // portion of stats_ already in the obs registry
  std::deque<Quarantined> quarantine_log_;
};

}  // namespace atypical

#endif  // ATYPICAL_CORE_INGEST_H_
