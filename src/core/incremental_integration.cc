#include "core/incremental_integration.h"

#include <algorithm>
#include <utility>

#include "core/merge.h"
#include "obs/stats.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace atypical {

namespace {
// Provisional ids (builder micros, online merges) live far above any real
// sequence so a leaked scratch id is obvious in logs and can never collide
// with the ids Finalize() assigns from the real generator.
constexpr ClusterId kScratchIdBase = ClusterId{1} << 40;
}  // namespace

IncrementalIntegrator::IncrementalIntegrator(const IntegrationParams& params,
                                             ClusterIdGenerator* ids)
    : params_(params), ids_(ids), scratch_ids_(kScratchIdBase) {
  CHECK_GT(params.delta_sim, 0.0)
      << "δsim must be positive (disjoint clusters have similarity 0)";
  CHECK(ids != nullptr);
  if (params_.use_candidate_index) {
    index_ = std::make_unique<integration_internal::CandidateIndex>(0);
    // Arm compaction from the start: the online index has no batch build
    // phase, so the baseline is empty and the watermark ratchets up from
    // the kMinPostings floor as the state grows (amortized O(1)/posting).
    index_->SealBaseline();
  }
}

IncrementalIntegrator::~IncrementalIntegrator() { PublishOnlineStats(); }

StreamingEventBuilder::EmitSeqFn IncrementalIntegrator::AsEmitFn() {
  return [this](AtypicalCluster micro, uint64_t first_record_seq) {
    Accept(std::move(micro), first_record_seq);
  };
}

void IncrementalIntegrator::Accept(AtypicalCluster micro,
                                   uint64_t first_record_seq) {
  CHECK(!finalized_)
      << "Accept after Finalize: call Reset() to start a new cycle";
  if (!slots_.empty()) {
    CHECK(micro.key_mode == slots_[0].key_mode)
        << "all inputs must share one temporal key mode";
  }
  DCHECK_EQ(micro.micro_ids.size(), size_t{1})
      << "Accept takes micro-clusters, not merged macros";
  ++stats_.arrivals;
  retained_.push_back(RetainedMicro{micro, first_record_seq});

  const uint32_t slot = static_cast<uint32_t>(slots_.size());
  slots_.push_back(std::move(micro));
  alive_.push_back(true);
  ++alive_count_;
  if (index_ != nullptr) {
    index_->GrowSlots(slots_.size());
    index_->AddKeys(slots_[slot], slot);
  }
  Cascade(slot);
}

void IncrementalIntegrator::Cascade(uint32_t focus) {
  // Budgets are per arrival: an online deployment cares about the latency
  // of *this* cascade, not cumulative rounds since construction.
  Stopwatch timer;
  uint64_t rounds = 0;
  while (true) {
    if ((params_.max_fixpoint_rounds > 0 &&
         rounds >= params_.max_fixpoint_rounds) ||
        (params_.deadline_seconds > 0.0 &&
         timer.ElapsedSeconds() >= params_.deadline_seconds)) {
      // Partial but valid: every slot is still a severity-conserving merge
      // of disjoint micros; only the fixpoint guarantee is suspended.
      ++stats_.budget_trips;
      stats_.converged = false;
      return;
    }
    ++rounds;
    ++stats_.cascade_rounds;
    if (index_ != nullptr) {
      index_->Candidates(slots_[focus], focus, alive_, &candidates_);
    } else {
      candidates_.clear();
      for (size_t j = 0; j < slots_.size(); ++j) {
        if (j != focus && alive_[j]) {
          candidates_.push_back(static_cast<uint32_t>(j));
        }
      }
    }
    bool merged_any = false;
    for (uint32_t j : candidates_) {
      ++stats_.similarity_checks;
      if (ExceedsThreshold(slots_[focus], slots_[j], params_.g,
                           params_.delta_sim, &scan_stats_,
                           params_.use_similarity_fast_path)) {
        // Lower slot absorbs (the batch drivers' discipline); the loser
        // slot keeps its dead cluster so its keys can be re-posted under
        // the winner.
        const uint32_t winner = focus < j ? focus : j;
        const uint32_t loser = focus < j ? j : focus;
        AtypicalCluster merged =
            MergeClusters(slots_[winner], slots_[loser], &scratch_ids_);
        slots_[winner] = std::move(merged);
        alive_[loser] = false;
        --alive_count_;
        if (index_ != nullptr) {
          index_->AddKeys(slots_[loser], winner);
          if (index_->MaybeCompact(alive_)) ++stats_.index_compactions;
        }
        ++stats_.online_merges;
        focus = winner;
        merged_any = true;
        break;  // re-gather candidates for the grown cluster
      }
    }
    // Only the focus slot ever changed, so once it has no qualifying
    // candidate the pre-arrival fixpoint (no alive pair above δsim) is
    // restored globally.
    if (!merged_any) return;
  }
}

std::vector<AtypicalCluster> IncrementalIntegrator::MacroSnapshot() const {
  std::vector<AtypicalCluster> out;
  out.reserve(alive_count_);
  for (size_t i = 0; i < slots_.size(); ++i) {
    if (alive_[i]) out.push_back(slots_[i]);
  }
  return out;
}

std::vector<AtypicalCluster> IncrementalIntegrator::Finalize(
    IntegrationStats* stats, std::vector<AtypicalCluster>* canonical_micros) {
  CHECK(!finalized_)
      << "Finalize called twice: call Reset() to start a new cycle";
  finalized_ = true;

  // Batch RetrieveEvents orders events by smallest record index; an event's
  // smallest record index is the feed position of its first record — the
  // first_record_seq the builders hand us (merges min-propagate it).  So
  // sorting by seq and replaying the real generator in that order
  // reproduces the batch micro numbering exactly.
  std::sort(retained_.begin(), retained_.end(),
            [](const RetainedMicro& a, const RetainedMicro& b) {
              return a.first_seq < b.first_seq;
            });
  std::vector<AtypicalCluster> micros;
  micros.reserve(retained_.size());
  for (size_t i = 0; i < retained_.size(); ++i) {
    if (i > 0) {
      CHECK_NE(retained_[i].first_seq, retained_[i - 1].first_seq)
          << "first_record_seq values must be unique within a cycle";
    }
    AtypicalCluster micro = std::move(retained_[i].micro);
    micro.id = ids_->Next();
    micro.micro_ids = {micro.id};
    micros.push_back(std::move(micro));
  }
  if (canonical_micros != nullptr) *canonical_micros = micros;

  IntegrationStats local;
  std::vector<AtypicalCluster> macros = integration_internal::GreedyFixpoint(
      std::move(micros), params_, ids_, &local);

  PublishOnlineStats();
  static obs::Counter* const obs_finalize_runs =
      obs::Registry()->GetCounter("integration.incremental.finalize_runs");
  static obs::Counter* const obs_finalize_merges =
      obs::Registry()->GetCounter("integration.incremental.finalize_merges");
  static obs::Histogram* const obs_finalize_seconds =
      obs::Registry()->GetHistogram("integration.incremental.finalize_seconds");
  static obs::Counter* const obs_partial =
      obs::Registry()->GetCounter("degradation.integration_partial");
  obs_finalize_runs->Add(1);
  obs_finalize_merges->Add(local.merges);
  obs_finalize_seconds->Record(local.seconds);
  if (!local.converged) obs_partial->Add(1);

  if (stats != nullptr) *stats = local;
  return macros;
}

void IncrementalIntegrator::Reset() {
  PublishOnlineStats();
  slots_.clear();
  alive_.clear();
  alive_count_ = 0;
  retained_.clear();
  finalized_ = false;
  scratch_ids_ = ClusterIdGenerator(kScratchIdBase);
  if (params_.use_candidate_index) {
    index_ = std::make_unique<integration_internal::CandidateIndex>(0);
    index_->SealBaseline();
  }
}

void IncrementalIntegrator::PublishOnlineStats() {
  static obs::Counter* const obs_arrivals =
      obs::Registry()->GetCounter("integration.incremental.arrivals");
  static obs::Counter* const obs_merges =
      obs::Registry()->GetCounter("integration.incremental.online_merges");
  static obs::Counter* const obs_checks =
      obs::Registry()->GetCounter("integration.incremental.similarity_checks");
  static obs::Counter* const obs_rounds =
      obs::Registry()->GetCounter("integration.incremental.cascade_rounds");
  static obs::Counter* const obs_compactions =
      obs::Registry()->GetCounter("integration.incremental.index_compactions");
  static obs::Counter* const obs_trips =
      obs::Registry()->GetCounter("degradation.incremental_budget_trips");
  // Deltas keep Finalize + Reset + destructor exact, like the ingest guard.
  obs_arrivals->Add(stats_.arrivals - published_.arrivals);
  obs_merges->Add(stats_.online_merges - published_.online_merges);
  obs_checks->Add(stats_.similarity_checks - published_.similarity_checks);
  obs_rounds->Add(stats_.cascade_rounds - published_.cascade_rounds);
  obs_compactions->Add(stats_.index_compactions - published_.index_compactions);
  obs_trips->Add(stats_.budget_trips - published_.budget_trips);
  published_ = stats_;
}

}  // namespace atypical
