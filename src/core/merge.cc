#include "core/merge.h"

#include <algorithm>

#include "util/logging.h"

namespace atypical {

AtypicalCluster MergeClusters(const AtypicalCluster& a,
                              const AtypicalCluster& b,
                              ClusterIdGenerator* ids) {
  CHECK(a.key_mode == b.key_mode)
      << "merging clusters with different temporal key modes";
  CHECK(ids != nullptr);

  AtypicalCluster out;
  out.id = ids->Next();
  out.spatial = FeatureVector::Merge(a.spatial, b.spatial);
  out.temporal = FeatureVector::Merge(a.temporal, b.temporal);
  out.key_mode = a.key_mode;

  out.micro_ids.reserve(a.micro_ids.size() + b.micro_ids.size());
  out.micro_ids = a.micro_ids;
  out.micro_ids.insert(out.micro_ids.end(), b.micro_ids.begin(),
                       b.micro_ids.end());
  std::sort(out.micro_ids.begin(), out.micro_ids.end());

  out.left_child = a.id;
  out.right_child = b.id;
  out.first_day = std::min(a.first_day, b.first_day);
  out.last_day = std::max(a.last_day, b.last_day);
  out.num_records = a.num_records + b.num_records;
  out.dominant_true_event = a.severity() >= b.severity()
                                ? a.dominant_true_event
                                : b.dominant_true_event;
  return out;
}

}  // namespace atypical
