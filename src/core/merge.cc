#include "core/merge.h"

#include <algorithm>
#include <cmath>

#include "obs/stats.h"
#include "util/logging.h"

namespace atypical {

AtypicalCluster MergeClusters(const AtypicalCluster& a,
                              const AtypicalCluster& b,
                              ClusterIdGenerator* ids) {
  CHECK(a.key_mode == b.key_mode)
      << "merging clusters with different temporal key modes";
  CHECK(ids != nullptr);
  static obs::Counter* const clusters_merged =
      obs::Registry()->GetCounter("merge.clusters_merged");
  clusters_merged->Add(1);

  AtypicalCluster out;
  out.id = ids->Next();
  out.spatial = FeatureVector::Merge(a.spatial, b.spatial);
  out.temporal = FeatureVector::Merge(a.temporal, b.temporal);
  out.key_mode = a.key_mode;

  // Fill via insert: assigning a.micro_ids here would replace the freshly
  // reserved buffer and force a second allocation for b's ids.
  out.micro_ids.reserve(a.micro_ids.size() + b.micro_ids.size());
  out.micro_ids.insert(out.micro_ids.end(), a.micro_ids.begin(),
                       a.micro_ids.end());
  out.micro_ids.insert(out.micro_ids.end(), b.micro_ids.begin(),
                       b.micro_ids.end());
  std::sort(out.micro_ids.begin(), out.micro_ids.end());

  out.left_child = a.id;
  out.right_child = b.id;
  out.first_day = std::min(a.first_day, b.first_day);
  out.last_day = std::max(a.last_day, b.last_day);
  out.num_records = a.num_records + b.num_records;
  out.dominant_true_event = a.severity() >= b.severity()
                                ? a.dominant_true_event
                                : b.dominant_true_event;

#if ATYPICAL_DCHECK_IS_ON
  // Debug invariants (Property 2/3 are what make concurrent merging safe,
  // so the debug build re-derives them on live data).  Severity mass is
  // conserved and stays non-negative, and SF/TF keep distributing the same
  // total (Def. 4's Σμ == Σν, up to FP accumulation-order error).
  const double mass = a.severity() + b.severity();
  DCHECK_GE(out.spatial.total(), 0.0);
  DCHECK_GE(out.temporal.total(), 0.0);
  DCHECK_LE(std::abs(out.severity() - mass), 1e-9 * std::max(1.0, mass));
  if (std::abs(a.spatial.total() - a.temporal.total()) <=
          1e-9 * std::max(1.0, a.severity()) &&
      std::abs(b.spatial.total() - b.temporal.total()) <=
          1e-9 * std::max(1.0, b.severity())) {
    DCHECK_LE(std::abs(out.spatial.total() - out.temporal.total()),
              1e-6 * std::max(1.0, mass))
        << "merge broke the Σμ == Σν severity-distribution invariant";
  }
  // Commutativity spot-check (~1/64 merges): per-key double addition of two
  // terms is exactly commutative, so the swapped merge must be bit-identical.
  if (((a.id ^ b.id) & 63) == 0) {
    DCHECK(FeatureVector::Merge(b.spatial, a.spatial) == out.spatial)
        << "spatial feature merge is not commutative";
    DCHECK(FeatureVector::Merge(b.temporal, a.temporal) == out.temporal)
        << "temporal feature merge is not commutative";
  }
#endif
  return out;
}

}  // namespace atypical
