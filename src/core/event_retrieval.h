// Algorithm 1: retrieving atypical events and summarizing them as
// micro-clusters in a single pass over the atypical records.
//
// An atypical event (Def. 3) is a maximal set of atypical records connected
// by the *direct atypical related* relation (Def. 1: sensor distance < δd
// and window interval < δt).  Events are found by seed expansion; with the
// spatio-temporal grid index the retrieval is O(N + n·k) (Proposition 1's
// indexed bound), without it O(N + n²).
#ifndef ATYPICAL_CORE_EVENT_RETRIEVAL_H_
#define ATYPICAL_CORE_EVENT_RETRIEVAL_H_

#include <vector>

#include "core/cluster.h"
#include "cps/record.h"
#include "cps/sensor_network.h"

namespace atypical {

struct RetrievalParams {
  double delta_d_miles = 1.5;  // paper default
  int delta_t_minutes = 15;    // paper default
  bool use_index = true;       // false = literal O(n²) neighbor scans
  DistanceMetric metric = DistanceMetric::kEuclidean;
};

struct RetrievalStats {
  size_t num_events = 0;
  size_t num_records = 0;
  size_t neighbor_checks = 0;  // candidate pairs examined
  double seconds = 0.0;
};

// Partitions `records` into atypical events; each inner vector holds indices
// into `records` (sorted ascending).  Events are ordered by their smallest
// record index, so the output is deterministic.
std::vector<std::vector<size_t>> RetrieveEvents(
    const std::vector<AtypicalRecord>& records, const SensorNetwork& network,
    const TimeGrid& grid, const RetrievalParams& params,
    RetrievalStats* stats = nullptr);

// Summarizes one event (record indices into `records`) as a micro-cluster
// (lines 6–12 of Algorithm 1): SF keyed by sensor, TF keyed by absolute
// window.
AtypicalCluster BuildMicroCluster(const std::vector<AtypicalRecord>& records,
                                  const std::vector<size_t>& event,
                                  const TimeGrid& grid,
                                  ClusterIdGenerator* ids);

// Full Algorithm 1: events + their micro-clusters.
std::vector<AtypicalCluster> RetrieveMicroClusters(
    const std::vector<AtypicalRecord>& records, const SensorNetwork& network,
    const TimeGrid& grid, const RetrievalParams& params,
    ClusterIdGenerator* ids, RetrievalStats* stats = nullptr);

}  // namespace atypical

#endif  // ATYPICAL_CORE_EVENT_RETRIEVAL_H_
