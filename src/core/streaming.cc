#include "core/streaming.h"

#include <algorithm>
#include <numeric>
#include <utility>

#include "util/logging.h"

namespace atypical {

StreamingEventBuilder::StreamingEventBuilder(const SensorNetwork* network,
                                             const TimeGrid& grid,
                                             const RetrievalParams& params,
                                             ClusterIdGenerator* ids,
                                             EmitFn emit)
    : StreamingEventBuilder(
          network, grid, params, ids,
          EmitSeqFn([inner = std::move(emit)](AtypicalCluster cluster,
                                              uint64_t /*first_record_seq*/) {
            inner(std::move(cluster));
          })) {}

StreamingEventBuilder::StreamingEventBuilder(const SensorNetwork* network,
                                             const TimeGrid& grid,
                                             const RetrievalParams& params,
                                             ClusterIdGenerator* ids,
                                             EmitSeqFn emit)
    : network_(network),
      grid_(grid),
      params_(params),
      ids_(ids),
      emit_(std::move(emit)) {
  CHECK(network != nullptr);
  CHECK(ids != nullptr);
  CHECK(emit_ != nullptr);
  CHECK_GT(params.delta_d_miles, 0.0);
  CHECK_GT(params.delta_t_minutes, 0);
}

bool StreamingEventBuilder::Related(const AtypicalRecord& a,
                                    const AtypicalRecord& b) const {
  if (grid_.IntervalMinutes(a.window, b.window) >= params_.delta_t_minutes) {
    return false;
  }
  return network_->Distance(a.sensor, b.sensor, params_.metric) <
         params_.delta_d_miles;
}

void StreamingEventBuilder::Add(const AtypicalRecord& record) {
  CHECK_GE(record.window, last_seen_window_)
      << "stream must be fed in non-decreasing window order";
  last_seen_window_ = record.window;
  const uint64_t seq = records_seen_++;
  CloseExpired(record.window);

  // Find every open event the record relates to.  Within an event, records
  // are stored in arrival (window) order, so scanning from the back stops
  // as soon as the temporal gap reaches δt.
  std::vector<std::list<OpenEvent>::iterator> matches;
  for (auto it = open_.begin(); it != open_.end(); ++it) {
    for (auto r = it->records.rbegin(); r != it->records.rend(); ++r) {
      if (grid_.IntervalMinutes(record.window, r->record.window) >=
          params_.delta_t_minutes) {
        break;  // everything earlier is even further away in time
      }
      if (Related(record, r->record)) {
        matches.push_back(it);
        break;
      }
    }
  }

  if (matches.empty()) {
    OpenEvent fresh;
    fresh.records.push_back(TaggedRecord{record, seq});
    fresh.last_window = record.window;
    open_.push_back(std::move(fresh));
    return;
  }

  // The record bridges all matching events into one (Def. 2 transitivity).
  OpenEvent& target = *matches.front();
  for (size_t i = 1; i < matches.size(); ++i) {
    OpenEvent& victim = *matches[i];
    target.records.insert(target.records.end(), victim.records.begin(),
                          victim.records.end());
    target.last_window = std::max(target.last_window, victim.last_window);
    open_.erase(matches[i]);
  }
  // Restore arrival order within the merged event.  Sorting by window is
  // not enough — even stably: equal-window records interleaved across the
  // merging events were pulled apart by the block concatenation above, and
  // no window-keyed comparison can put them back.  The arrival seq is a
  // unique total key, so this sort is deterministic and reproduces exactly
  // the order batch retrieval accumulates the same records in.
  if (matches.size() > 1) {
    std::sort(target.records.begin(), target.records.end(),
              [](const TaggedRecord& a, const TaggedRecord& b) {
                return a.seq < b.seq;
              });
  }
  target.records.push_back(TaggedRecord{record, seq});
  target.last_window = std::max(target.last_window, record.window);
}

void StreamingEventBuilder::CloseExpired(WindowId window) {
  for (auto it = open_.begin(); it != open_.end();) {
    // A future record has window >= `window`; if even `window` is already
    // δt away from the event's newest record, nothing can relate anymore.
    if (grid_.IntervalMinutes(it->last_window, window) >=
        params_.delta_t_minutes) {
      Emit(*it);
      it = open_.erase(it);
    } else {
      ++it;
    }
  }
}

void StreamingEventBuilder::Emit(OpenEvent& event) {
  std::vector<AtypicalRecord> records;
  records.reserve(event.records.size());
  uint64_t first_seq = event.records.front().seq;
  for (const TaggedRecord& tagged : event.records) {
    records.push_back(tagged.record);
    first_seq = std::min(first_seq, tagged.seq);
  }
  std::vector<size_t> all(records.size());
  std::iota(all.begin(), all.end(), size_t{0});
  emit_(BuildMicroCluster(records, all, grid_, ids_), first_seq);
}

void StreamingEventBuilder::Flush() {
  for (OpenEvent& event : open_) Emit(event);
  open_.clear();
}

void StreamingEventBuilder::Reset() {
  Flush();
  last_seen_window_ = 0;
  records_seen_ = 0;
}

std::vector<AtypicalCluster> StreamMicroClusters(
    const std::vector<AtypicalRecord>& records, const SensorNetwork& network,
    const TimeGrid& grid, const RetrievalParams& params,
    ClusterIdGenerator* ids) {
  std::vector<AtypicalCluster> out;
  StreamingEventBuilder builder(
      &network, grid, params, ids,
      [&out](AtypicalCluster cluster) { out.push_back(std::move(cluster)); });
  for (const AtypicalRecord& r : records) builder.Add(r);
  builder.Flush();
  return out;
}

}  // namespace atypical
