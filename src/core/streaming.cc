#include "core/streaming.h"

#include <algorithm>
#include <numeric>

#include "util/logging.h"

namespace atypical {

StreamingEventBuilder::StreamingEventBuilder(const SensorNetwork* network,
                                             const TimeGrid& grid,
                                             const RetrievalParams& params,
                                             ClusterIdGenerator* ids,
                                             EmitFn emit)
    : network_(network),
      grid_(grid),
      params_(params),
      ids_(ids),
      emit_(std::move(emit)) {
  CHECK(network != nullptr);
  CHECK(ids != nullptr);
  CHECK(emit_ != nullptr);
  CHECK_GT(params.delta_d_miles, 0.0);
  CHECK_GT(params.delta_t_minutes, 0);
}

bool StreamingEventBuilder::Related(const AtypicalRecord& a,
                                    const AtypicalRecord& b) const {
  if (grid_.IntervalMinutes(a.window, b.window) >= params_.delta_t_minutes) {
    return false;
  }
  return network_->Distance(a.sensor, b.sensor, params_.metric) <
         params_.delta_d_miles;
}

void StreamingEventBuilder::Add(const AtypicalRecord& record) {
  CHECK_GE(record.window, last_seen_window_)
      << "stream must be fed in non-decreasing window order";
  last_seen_window_ = record.window;
  ++records_seen_;
  CloseExpired(record.window);

  // Find every open event the record relates to.  Within an event, records
  // are stored in arrival (window) order, so scanning from the back stops
  // as soon as the temporal gap reaches δt.
  std::vector<std::list<OpenEvent>::iterator> matches;
  for (auto it = open_.begin(); it != open_.end(); ++it) {
    for (auto r = it->records.rbegin(); r != it->records.rend(); ++r) {
      if (grid_.IntervalMinutes(record.window, r->window) >=
          params_.delta_t_minutes) {
        break;  // everything earlier is even further away in time
      }
      if (Related(record, *r)) {
        matches.push_back(it);
        break;
      }
    }
  }

  if (matches.empty()) {
    OpenEvent fresh;
    fresh.records.push_back(record);
    fresh.last_window = record.window;
    open_.push_back(std::move(fresh));
    return;
  }

  // The record bridges all matching events into one (Def. 2 transitivity).
  OpenEvent& target = *matches.front();
  for (size_t i = 1; i < matches.size(); ++i) {
    OpenEvent& victim = *matches[i];
    target.records.insert(target.records.end(), victim.records.begin(),
                          victim.records.end());
    target.last_window = std::max(target.last_window, victim.last_window);
    open_.erase(matches[i]);
  }
  // Keep window order within the event (merge disturbed it).
  if (matches.size() > 1) {
    std::sort(target.records.begin(), target.records.end(),
              [](const AtypicalRecord& a, const AtypicalRecord& b) {
                return a.window < b.window;
              });
  }
  target.records.push_back(record);
  target.last_window = std::max(target.last_window, record.window);
}

void StreamingEventBuilder::CloseExpired(WindowId window) {
  for (auto it = open_.begin(); it != open_.end();) {
    // A future record has window >= `window`; if even `window` is already
    // δt away from the event's newest record, nothing can relate anymore.
    if (grid_.IntervalMinutes(it->last_window, window) >=
        params_.delta_t_minutes) {
      Emit(*it);
      it = open_.erase(it);
    } else {
      ++it;
    }
  }
}

void StreamingEventBuilder::Emit(OpenEvent& event) {
  std::vector<size_t> all(event.records.size());
  std::iota(all.begin(), all.end(), size_t{0});
  emit_(BuildMicroCluster(event.records, all, grid_, ids_));
}

void StreamingEventBuilder::Flush() {
  for (OpenEvent& event : open_) Emit(event);
  open_.clear();
}

std::vector<AtypicalCluster> StreamMicroClusters(
    const std::vector<AtypicalRecord>& records, const SensorNetwork& network,
    const TimeGrid& grid, const RetrievalParams& params,
    ClusterIdGenerator* ids) {
  std::vector<AtypicalCluster> out;
  StreamingEventBuilder builder(
      &network, grid, params, ids,
      [&out](AtypicalCluster cluster) { out.push_back(std::move(cluster)); });
  for (const AtypicalRecord& r : records) builder.Add(r);
  builder.Flush();
  return out;
}

}  // namespace atypical
