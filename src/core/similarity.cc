#include "core/similarity.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace atypical {

const char* BalanceFunctionName(BalanceFunction g) {
  switch (g) {
    case BalanceFunction::kMax:
      return "max";
    case BalanceFunction::kMin:
      return "min";
    case BalanceFunction::kArithmeticMean:
      return "avg";
    case BalanceFunction::kGeometricMean:
      return "geo";
    case BalanceFunction::kHarmonicMean:
      return "har";
  }
  return "unknown";
}

double Balance(BalanceFunction g, double p1, double p2) {
  switch (g) {
    case BalanceFunction::kMax:
      return std::max(p1, p2);
    case BalanceFunction::kMin:
      return std::min(p1, p2);
    case BalanceFunction::kArithmeticMean:
      return 0.5 * (p1 + p2);
    case BalanceFunction::kGeometricMean:
      return std::sqrt(p1 * p2);
    case BalanceFunction::kHarmonicMean:
      return p1 + p2 > 0.0 ? 2.0 * p1 * p2 / (p1 + p2) : 0.0;
  }
  LOG(FATAL) << "unknown BalanceFunction";
  return 0.0;
}

namespace {

double FeatureSimilarity(const FeatureVector& f1, const FeatureVector& f2,
                         BalanceFunction g) {
  if (f1.total() <= 0.0 || f2.total() <= 0.0) return 0.0;
  const auto [common1, common2] = f1.CommonSeverity(f2);
  double p1 = common1 / f1.total();
  double p2 = common2 / f2.total();
  // Common severity is a sub-sum of the total, so both fractions live in
  // [0, 1] mathematically — but total_ accumulates in Add/Merge order while
  // CommonSeverity sums in key order, and the orders can disagree by one
  // rounding step per accumulation.  The slack is therefore relative (1e-6
  // covers ~2^33 ULP-scale steps), not an absolute epsilon: million-record
  // clusters legitimately overshoot 1 + 1e-9.  Beyond the slack it is a
  // real bug, not rounding.  The fractions are then clamped so Balance and
  // every caller see exact [0, 1].
  constexpr double kAccumulationSlack = 1e-6;
  DCHECK_GE(p1, 0.0);
  DCHECK_LE(p1, 1.0 + kAccumulationSlack);
  DCHECK_GE(p2, 0.0);
  DCHECK_LE(p2, 1.0 + kAccumulationSlack);
  p1 = std::min(p1, 1.0);
  p2 = std::min(p2, 1.0);
  return Balance(g, p1, p2);
}

}  // namespace

double SpatialSimilarity(const AtypicalCluster& c1, const AtypicalCluster& c2,
                         BalanceFunction g) {
  return FeatureSimilarity(c1.spatial, c2.spatial, g);
}

double TemporalSimilarity(const AtypicalCluster& c1, const AtypicalCluster& c2,
                          BalanceFunction g) {
  CHECK(c1.key_mode == c2.key_mode)
      << "temporal similarity across different key modes is meaningless";
  return FeatureSimilarity(c1.temporal, c2.temporal, g);
}

double Similarity(const AtypicalCluster& c1, const AtypicalCluster& c2,
                  BalanceFunction g) {
  const double sim =
      0.5 * (SpatialSimilarity(c1, c2, g) + TemporalSimilarity(c1, c2, g));
  // FeatureSimilarity clamps its fractions into [0, 1], so the mean is
  // exactly bounded — no tolerance needed here.
  DCHECK_GE(sim, 0.0);
  DCHECK_LE(sim, 1.0) << "Eq. 2 is a mean of fractions";
  return sim;
}

}  // namespace atypical
