#include "core/similarity.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstddef>

#include "util/logging.h"

namespace atypical {

const char* BalanceFunctionName(BalanceFunction g) {
  switch (g) {
    case BalanceFunction::kMax:
      return "max";
    case BalanceFunction::kMin:
      return "min";
    case BalanceFunction::kArithmeticMean:
      return "avg";
    case BalanceFunction::kGeometricMean:
      return "geo";
    case BalanceFunction::kHarmonicMean:
      return "har";
  }
  return "unknown";
}

double Balance(BalanceFunction g, double p1, double p2) {
  switch (g) {
    case BalanceFunction::kMax:
      return std::max(p1, p2);
    case BalanceFunction::kMin:
      return std::min(p1, p2);
    case BalanceFunction::kArithmeticMean:
      return 0.5 * (p1 + p2);
    case BalanceFunction::kGeometricMean:
      return std::sqrt(p1 * p2);
    case BalanceFunction::kHarmonicMean:
      return p1 + p2 > 0.0 ? 2.0 * p1 * p2 / (p1 + p2) : 0.0;
  }
  LOG(FATAL) << "unknown BalanceFunction";
  return 0.0;
}

namespace {

double FeatureSimilarity(const FeatureVector& f1, const FeatureVector& f2,
                         BalanceFunction g) {
  if (f1.total() <= 0.0 || f2.total() <= 0.0) return 0.0;
  const auto [common1, common2] = f1.CommonSeverity(f2);
  double p1 = common1 / f1.total();
  double p2 = common2 / f2.total();
  // Common severity is a sub-sum of the total, so both fractions live in
  // [0, 1] mathematically — but total_ accumulates in Add/Merge order while
  // CommonSeverity sums in key order, and the orders can disagree by one
  // rounding step per accumulation.  The slack is therefore relative (1e-6
  // covers ~2^33 ULP-scale steps), not an absolute epsilon: million-record
  // clusters legitimately overshoot 1 + 1e-9.  Beyond the slack it is a
  // real bug, not rounding.  The fractions are then clamped so Balance and
  // every caller see exact [0, 1].
  constexpr double kAccumulationSlack = 1e-6;
  DCHECK_GE(p1, 0.0);
  DCHECK_LE(p1, 1.0 + kAccumulationSlack);
  DCHECK_GE(p2, 0.0);
  DCHECK_LE(p2, 1.0 + kAccumulationSlack);
  p1 = std::min(p1, 1.0);
  p2 = std::min(p2, 1.0);
  return Balance(g, p1, p2);
}

// Σ of f's per-bucket severity mass over the buckets both signatures
// occupy.  Every key f shares with the other vector lives in a common
// bucket, so this dominates f's true common severity.  O(popcount) work.
double SketchOverlapMass(const FeatureVector& f,
                         const FeatureVector::Signature& a,
                         const FeatureVector::Signature& b) {
  const auto& sketch = f.severity_sketch();
  double mass = 0.0;
  for (int word = 0; word < 2; ++word) {
    uint64_t bits = a.bucket_bits[word] & b.bucket_bits[word];
    while (bits != 0) {
      const int bit = std::countr_zero(bits);
      mass += sketch[static_cast<size_t>(word * 64 + bit)];
      bits &= bits - 1;
    }
  }
  return mass;
}

// Upper bound on FeatureSimilarity(f1, f2, g) from summaries alone.
//
// For each side, the common severity (the numerator of Eq. 3/4) is at most
//   · the side's total,
//   · (#keys both sides can share) × its max entry severity, and
//   · its severity mass in the hash buckets both signatures occupy.
// Dividing by the total and clamping to 1 bounds the fraction; Balance is
// monotone nondecreasing in each fraction for all five g, so applying it to
// the bounded fractions bounds the similarity.  The closing inflation
// absorbs FP rounding (the exact path sums in key order, the summaries in
// Add/Merge order), keeping the bound conservative-only — see DESIGN §11.
double FeatureUpperBound(const FeatureVector& f1, const FeatureVector& f2,
                         BalanceFunction g) {
  if (f1.total() <= 0.0 || f2.total() <= 0.0) return 0.0;
  const FeatureVector::Signature& s1 = f1.signature();
  const FeatureVector::Signature& s2 = f2.signature();
  if (s1.Disjoint(s2)) return 0.0;
  const uint32_t lo = std::max(s1.min_key, s2.min_key);
  const uint32_t hi = std::min(s1.max_key, s2.max_key);
  const double n_common = static_cast<double>(
      std::min(f1.CountKeysInRange(lo, hi), f2.CountKeysInRange(lo, hi)));
  const double ub1 =
      std::min({f1.total(), n_common * f1.max_entry_severity(),
                SketchOverlapMass(f1, s1, s2)});
  const double ub2 =
      std::min({f2.total(), n_common * f2.max_entry_severity(),
                SketchOverlapMass(f2, s1, s2)});
  const double p1 = std::min(ub1 / f1.total(), 1.0);
  const double p2 = std::min(ub2 / f2.total(), 1.0);
  return Balance(g, p1, p2) * (1.0 + 1e-9) + 1e-12;
}

}  // namespace

double SpatialSimilarity(const AtypicalCluster& c1, const AtypicalCluster& c2,
                         BalanceFunction g) {
  return FeatureSimilarity(c1.spatial, c2.spatial, g);
}

double TemporalSimilarity(const AtypicalCluster& c1, const AtypicalCluster& c2,
                          BalanceFunction g) {
  CHECK(c1.key_mode == c2.key_mode)
      << "temporal similarity across different key modes is meaningless";
  return FeatureSimilarity(c1.temporal, c2.temporal, g);
}

double Similarity(const AtypicalCluster& c1, const AtypicalCluster& c2,
                  BalanceFunction g) {
  const double sim =
      0.5 * (SpatialSimilarity(c1, c2, g) + TemporalSimilarity(c1, c2, g));
  // FeatureSimilarity clamps its fractions into [0, 1], so the mean is
  // exactly bounded — no tolerance needed here.
  DCHECK_GE(sim, 0.0);
  DCHECK_LE(sim, 1.0) << "Eq. 2 is a mean of fractions";
  return sim;
}

double SimilarityUpperBound(const AtypicalCluster& c1,
                            const AtypicalCluster& c2, BalanceFunction g) {
  CHECK(c1.key_mode == c2.key_mode)
      << "temporal similarity across different key modes is meaningless";
  return 0.5 * (FeatureUpperBound(c1.spatial, c2.spatial, g) +
                FeatureUpperBound(c1.temporal, c2.temporal, g));
}

bool ExceedsThreshold(const AtypicalCluster& c1, const AtypicalCluster& c2,
                      BalanceFunction g, double delta_sim,
                      SimilarityScanStats* stats, bool use_fast_path) {
  CHECK(c1.key_mode == c2.key_mode)
      << "temporal similarity across different key modes is meaningless";
  // Would the pure exact path have run at least one CommonSeverity scan?
  // (FeatureSimilarity skips the scan when either total is 0.)  Only such
  // evaluations are counted, so exact + pruned always sums to the exact
  // path's scan count and the pruning rate reads directly off the counters.
  const bool scannable =
      (c1.spatial.total() > 0.0 && c2.spatial.total() > 0.0) ||
      (c1.temporal.total() > 0.0 && c2.temporal.total() > 0.0);
  if (!use_fast_path) {
    if (stats != nullptr && scannable) ++stats->exact_scans;
    return Similarity(c1, c2, g) > delta_sim;
  }
  // Stage 1: signature-only bounds on both features.  sf ≤ sf_ub and
  // tf ≤ tf_ub, and FP addition/halving are monotone, so
  // 0.5·(sf+tf) ≤ 0.5·(sf_ub+tf_ub) holds bit-for-bit — a "no" here is a
  // proof the exact verdict is "no".
  const double sf_ub = FeatureUpperBound(c1.spatial, c2.spatial, g);
  const double tf_ub = FeatureUpperBound(c1.temporal, c2.temporal, g);
  if (0.5 * (sf_ub + tf_ub) <= delta_sim) {
    if (stats != nullptr && scannable) ++stats->pruned_scans;
    return false;
  }
  // Stage 2: exact SF, still-bounded TF — saves the TF scan when the exact
  // spatial term already sinks the pair.  Counts as an exact scan.
  const double sf = FeatureSimilarity(c1.spatial, c2.spatial, g);
  if (stats != nullptr && scannable) ++stats->exact_scans;
  if (0.5 * (sf + tf_ub) <= delta_sim) return false;
  // Stage 3: the exact expression, identical to Similarity().
  const double tf = FeatureSimilarity(c1.temporal, c2.temporal, g);
  const double sim = 0.5 * (sf + tf);
  DCHECK_GE(sim, 0.0);
  DCHECK_LE(sim, 1.0) << "Eq. 2 is a mean of fractions";
  return sim > delta_sim;
}

}  // namespace atypical
