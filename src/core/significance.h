// Significant clusters (Def. 5).
//
// C is significant for query Q(W, T) iff
//     severity(C) > δs · length(T) · N,       N = #sensors in W.
//
// The paper leaves length(T)'s unit implicit; only day units make its own
// figures mutually consistent (the atypical data is 2–5% of all sensor-time,
// so with minute units no cluster could ever reach δs = 5% of
// length(T)·N·window — yet Fig. 19 sweeps δs to 20% and still finds
// significant clusters).  The unit is therefore explicit and configurable
// here, with kDays as the default used by all reproduced experiments; see
// EXPERIMENTS.md for the calibration argument.
#ifndef ATYPICAL_CORE_SIGNIFICANCE_H_
#define ATYPICAL_CORE_SIGNIFICANCE_H_

#include <vector>

#include "core/cluster.h"
#include "cps/types.h"

namespace atypical {

enum class LengthUnit : uint8_t { kDays, kMinutes, kWindows };

const char* LengthUnitName(LengthUnit unit);

struct SignificanceParams {
  double delta_s = 0.05;  // paper default 5%
  LengthUnit unit = LengthUnit::kDays;
};

// length(T) in the configured unit.
double LengthOf(const DayRange& T, const TimeGrid& grid, LengthUnit unit);

// δs · length(T) · N.
double SignificanceThreshold(const SignificanceParams& params,
                             const DayRange& T, const TimeGrid& grid,
                             int num_sensors_in_w);

inline bool IsSignificant(const AtypicalCluster& cluster, double threshold) {
  return cluster.severity() > threshold;
}

// The significant subset of `clusters` (order preserved).
std::vector<AtypicalCluster> FilterSignificant(
    const std::vector<AtypicalCluster>& clusters, double threshold);

}  // namespace atypical

#endif  // ATYPICAL_CORE_SIGNIFICANCE_H_
