#include "core/significance.h"

#include "util/logging.h"

namespace atypical {

const char* LengthUnitName(LengthUnit unit) {
  switch (unit) {
    case LengthUnit::kDays:
      return "days";
    case LengthUnit::kMinutes:
      return "minutes";
    case LengthUnit::kWindows:
      return "windows";
  }
  return "unknown";
}

double LengthOf(const DayRange& T, const TimeGrid& grid, LengthUnit unit) {
  const double days = T.NumDays();
  switch (unit) {
    case LengthUnit::kDays:
      return days;
    case LengthUnit::kMinutes:
      return days * 1440.0;
    case LengthUnit::kWindows:
      return days * grid.WindowsPerDay();
  }
  LOG(FATAL) << "unknown LengthUnit";
  return 0.0;
}

double SignificanceThreshold(const SignificanceParams& params,
                             const DayRange& T, const TimeGrid& grid,
                             int num_sensors_in_w) {
  CHECK_GE(params.delta_s, 0.0);
  CHECK_GE(num_sensors_in_w, 0);
  return params.delta_s * LengthOf(T, grid, params.unit) * num_sensors_in_w;
}

std::vector<AtypicalCluster> FilterSignificant(
    const std::vector<AtypicalCluster>& clusters, double threshold) {
  std::vector<AtypicalCluster> out;
  for (const AtypicalCluster& c : clusters) {
    if (IsSignificant(c, threshold)) out.push_back(c);
  }
  return out;
}

}  // namespace atypical
