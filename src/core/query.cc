#include "core/query.h"

#include <algorithm>

#include "core/temporal_key.h"
#include "obs/stats.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace atypical {

const char* QueryStrategyName(QueryStrategy strategy) {
  switch (strategy) {
    case QueryStrategy::kAll:
      return "All";
    case QueryStrategy::kPrune:
      return "Pru";
    case QueryStrategy::kGuided:
      return "Gui";
  }
  return "unknown";
}

QueryEngine::QueryEngine(const SensorNetwork* network,
                         const SpatialPartition* regions,
                         const AtypicalForest* forest,
                         const cube::BottomUpCube* atypical_cube,
                         const QueryEngineOptions& options)
    : network_(network),
      regions_(regions),
      forest_(forest),
      atypical_cube_(atypical_cube),
      options_(options) {
  CHECK(network != nullptr);
  CHECK(regions != nullptr);
  CHECK(forest != nullptr);
  CHECK(atypical_cube != nullptr);
}

double QueryEngine::ThresholdFor(const AnalyticalQuery& query) const {
  const int n = static_cast<int>(network_->SensorsInRect(query.area).size());
  return SignificanceThreshold(options_.significance, query.days,
                               forest_->time_grid(), n);
}

namespace {

// Membership in the (sorted) sensors-of-W set.  Binary search over the
// caller's reused buffer keeps the hot path free of per-query hash sets.
bool TouchesArea(const AtypicalCluster& c,
                 const std::vector<SensorId>& sorted_in_w) {
  for (const FeatureVector::Entry& e : c.spatial.entries()) {
    if (std::binary_search(sorted_in_w.begin(), sorted_in_w.end(), e.key)) {
      return true;
    }
  }
  return false;
}

}  // namespace

void QueryEngine::FilterToArea(const std::vector<SensorId>& sensors_in_w,
                               std::vector<AtypicalCluster>* inputs) {
  std::erase_if(*inputs, [&](const AtypicalCluster& c) {
    return !TouchesArea(c, sensors_in_w);
  });
}

std::vector<AtypicalCluster> QueryEngine::CollectPlannedInputs(
    const AnalyticalQuery& query, const std::vector<SensorId>& sensors_in_w,
    QueryCost* cost) const {
  const DayRange& range = query.days;
  // Empty or inverted range: nothing to plan, and the cost stays zero.
  // Run() short-circuits before getting here; the guard keeps the method's
  // own contract safe for direct callers.
  if (range.NumDays() <= 0) return {};
  std::vector<bool> covered(static_cast<size_t>(range.NumDays()), false);
  auto cover = [&](int first, int last) {
    for (int day = first; day <= last; ++day) {
      covered[day - range.first_day] = true;
    }
  };
  auto all_uncovered = [&](int first, int last) {
    if (first < range.first_day || last > range.last_day) return false;
    for (int day = first; day <= last; ++day) {
      if (covered[day - range.first_day]) return false;
    }
    return true;
  };

  std::vector<AtypicalCluster> inputs;
  // Months first (largest pre-integrated units), then weeks.  A level whose
  // covered days mutated after it was built (late AddRecords batch) would
  // serve stale macros; the forest's versioning detects that, the planner
  // skips the level, and the days fall through to the leaf loop below.
  if (forest_->month_days() > 0) {
    for (int month : forest_->MaterializedMonths()) {
      const int first = month * forest_->month_days();
      const int last = first + forest_->month_days() - 1;
      if (!all_uncovered(first, last)) continue;
      if (forest_->MonthIsStale(month)) {
        ++cost->stale_materialized_skipped;
        continue;
      }
      for (const AtypicalCluster& c : forest_->MacrosOfMonth(month)) {
        inputs.push_back(c);
      }
      cover(first, last);
      cost->materialized_inputs += forest_->MacrosOfMonth(month).size();
      cost->days_from_materialized += last - first + 1;
    }
  }
  for (int week : forest_->MaterializedWeeks()) {
    const int first = week * 7;
    const int last = first + 6;
    if (!all_uncovered(first, last)) continue;
    if (forest_->WeekIsStale(week)) {
      ++cost->stale_materialized_skipped;
      continue;
    }
    for (const AtypicalCluster& c : forest_->MacrosOfWeek(week)) {
      inputs.push_back(c);
    }
    cover(first, last);
    cost->materialized_inputs += forest_->MacrosOfWeek(week).size();
    cost->days_from_materialized += 7;
  }
  // Leaf days for the remainder.
  for (int day = range.first_day; day <= range.last_day; ++day) {
    if (covered[day - range.first_day] || !forest_->HasDay(day)) continue;
    for (const AtypicalCluster& micro : forest_->MicrosOfDay(day)) {
      ++cost->micro_clusters_in_range;
      inputs.push_back(WithTemporalKeyMode(micro, forest_->time_grid(),
                                           TemporalKeyMode::kTimeOfDay));
    }
  }
  FilterToArea(sensors_in_w, &inputs);
  return inputs;
}

std::vector<AtypicalCluster> QueryEngine::CollectMicros(
    const AnalyticalQuery& query, QueryScratch* scratch,
    QueryCost* cost) const {
  forest_->MicrosInRange(query.days, &scratch->micros_in_range);
  std::vector<AtypicalCluster> micros;
  for (const AtypicalCluster* micro : scratch->micros_in_range) {
    ++cost->micro_clusters_in_range;
    // A micro-cluster belongs to the query if it touches W at all; events
    // straddling the boundary keep their full features (their severity must
    // stay exact for Def. 5 to be meaningful).
    if (TouchesArea(*micro, scratch->sensors_in_w)) {
      micros.push_back(WithTemporalKeyMode(*micro, forest_->time_grid(),
                                           TemporalKeyMode::kTimeOfDay));
    }
  }
  return micros;
}

QueryResult QueryEngine::Run(const AnalyticalQuery& query,
                             QueryStrategy strategy) const {
  QueryScratch scratch;
  return Run(query, strategy, &scratch);
}

QueryResult QueryEngine::Run(const AnalyticalQuery& query,
                             QueryStrategy strategy,
                             QueryScratch* scratch) const {
  Stopwatch timer;
  QueryResult result;
  if (query.days.NumDays() <= 0) {
    // Empty or inverted T: the query covers no days, so the answer is the
    // default-constructed result — no clusters, zero threshold, zero cost.
    // Returning early (instead of planning over a zero-length range) keeps
    // the threshold consistent with the empty evidence set.
    static obs::Counter* const empty_range =
        obs::Registry()->GetCounter("query.empty_range");
    empty_range->Add(1);
    return result;
  }
  std::vector<SensorId>& in_w = scratch->sensors_in_w;
  network_->SensorsInRect(query.area, &in_w);
  DCHECK(std::is_sorted(in_w.begin(), in_w.end()));
  result.num_sensors_in_w = static_cast<int>(in_w.size());
  result.threshold =
      SignificanceThreshold(options_.significance, query.days,
                            forest_->time_grid(), result.num_sensors_in_w);

  // Pru/Gui prune at micro granularity, so the materialized plan is only
  // sound for All.
  const bool planned =
      options_.use_materialized_levels && strategy == QueryStrategy::kAll;
  std::vector<AtypicalCluster> micros =
      planned ? CollectPlannedInputs(query, in_w, &result.cost)
              : CollectMicros(query, scratch, &result.cost);

  switch (strategy) {
    case QueryStrategy::kAll:
      break;
    case QueryStrategy::kPrune: {
      // Beforehand pruning: only micro-clusters that already clear the
      // query's significance bar are integrated (in place, order kept).
      std::erase_if(micros, [&](const AtypicalCluster& m) {
        return !IsSignificant(m, result.threshold);
      });
      break;
    }
    case QueryStrategy::kGuided: {
      // Algorithm 4 lines 1–3: red zones from the bottom-up measure.
      const std::vector<RegionId> regions_in_w =
          regions_->RegionsInRect(query.area);
      result.cost.regions_checked = regions_in_w.size();
      const std::vector<RegionId> red = cube::ComputeRedZones(
          *atypical_cube_, regions_in_w, query.days, result.threshold);
      result.cost.red_zones = red.size();
      micros = cube::FilterByRedZones(std::move(micros), red, *regions_,
                                      options_.red_zone_mode);
      break;
    }
  }

  result.cost.input_micro_clusters = micros.size();
  // Query-local id source: results are bit-identical for the same query on
  // the same forest state regardless of prior or concurrent queries, and
  // the forest stays untouched (see kQueryMacroIdBase).
  ClusterIdGenerator result_ids(kQueryMacroIdBase);
  result.clusters = IntegrateClusters(std::move(micros), options_.integration,
                                      &result_ids, &result.cost.integration);

  if (options_.post_check_significance) {
    // Algorithm 4 lines 5–7: remove false positives (in place, order kept).
    std::erase_if(result.clusters, [&](const AtypicalCluster& c) {
      return !IsSignificant(c, result.threshold);
    });
  }

  // Completeness annotation: fold the forest's per-day provenance over T so
  // the caller can tell a quiet day from a blind one.
  DataCompleteness& completeness = result.completeness;
  completeness.days_in_range = query.days.NumDays();
  completeness.integration_converged = result.cost.integration.converged;
  for (int day = query.days.first_day; day <= query.days.last_day; ++day) {
    if (forest_->HasDay(day)) ++completeness.days_with_data;
    const DayProvenance* provenance = forest_->day_provenance(day);
    if (provenance == nullptr || !provenance->degraded()) continue;
    ++completeness.days_degraded;
    completeness.records_lost += provenance->records_lost;
    completeness.records_quarantined += provenance->records_quarantined;
  }

  result.cost.seconds = timer.ElapsedSeconds();

  // Publish the run's QueryCost once; the strategies above touch only the
  // result object.
  static obs::Counter* const obs_runs =
      obs::Registry()->GetCounter("query.runs");
  static obs::Counter* const obs_inputs =
      obs::Registry()->GetCounter("query.input_micro_clusters");
  static obs::Counter* const obs_in_range =
      obs::Registry()->GetCounter("query.micro_clusters_in_range");
  static obs::Counter* const obs_materialized =
      obs::Registry()->GetCounter("query.materialized_inputs");
  static obs::Counter* const obs_materialized_days =
      obs::Registry()->GetCounter("query.days_from_materialized");
  static obs::Counter* const obs_stale_skipped =
      obs::Registry()->GetCounter("query.stale_materialized_skipped");
  static obs::Counter* const obs_clusters_out =
      obs::Registry()->GetCounter("query.clusters_out");
  static obs::Counter* const obs_exact_scans =
      obs::Registry()->GetCounter("query.similarity_exact_scans");
  static obs::Counter* const obs_pruned =
      obs::Registry()->GetCounter("query.similarity_pruned");
  static obs::Histogram* const obs_seconds =
      obs::Registry()->GetHistogram("query.seconds");
  static obs::Counter* const obs_degraded =
      obs::Registry()->GetCounter("degradation.degraded_queries");
  obs_runs->Add(1);
  if (!completeness.complete()) obs_degraded->Add(1);
  obs_inputs->Add(result.cost.input_micro_clusters);
  obs_in_range->Add(result.cost.micro_clusters_in_range);
  obs_materialized->Add(result.cost.materialized_inputs);
  obs_materialized_days->Add(
      static_cast<uint64_t>(std::max(0, result.cost.days_from_materialized)));
  obs_stale_skipped->Add(result.cost.stale_materialized_skipped);
  obs_clusters_out->Add(result.clusters.size());
  obs_exact_scans->Add(result.cost.integration.exact_scans);
  obs_pruned->Add(result.cost.integration.pruned_scans);
  obs_seconds->Record(result.cost.seconds);
  return result;
}

}  // namespace atypical
