// The atypical cluster model (Def. 4): the succinct summary of an atypical
// event, and the unit the whole system computes with.
//
// A cluster is C = ⟨ID, SF, TF⟩ where the spatial feature SF aggregates
// severity per sensor (μᵢ = Σ_T f(sᵢ, t)) and the temporal feature TF
// aggregates severity per time window (νⱼ = Σ_S f(s, tⱼ)).  Both features
// are algebraic (Property 2), so clusters merge in linear time and in any
// order (Property 3).
//
// Invariant: Σμ == Σν == severity(C) — both features distribute the same
// total severity, one by sensor and one by window.
#ifndef ATYPICAL_CORE_CLUSTER_H_
#define ATYPICAL_CORE_CLUSTER_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "cps/types.h"

namespace atypical {

// A sparse map from a 32-bit key (sensor id or temporal key) to aggregated
// severity, stored as a key-sorted vector for linear merges, deterministic
// iteration and cache-friendly scans.
class FeatureVector {
 public:
  struct Entry {
    uint32_t key;
    double severity;
    friend bool operator==(const Entry& a, const Entry& b) {
      return a.key == b.key && a.severity == b.severity;
    }
  };

  // Buckets in the signature key bitset and the severity-mass sketch used
  // by the similarity fast path (DESIGN §11).
  static constexpr uint32_t kSignatureBuckets = 128;

  // Cheap, always-current summary for similarity pruning: the key span and
  // a bitset of occupied hash buckets.  Both are monotone under Add() and
  // Merge() (keys are never removed), so the signature needs no
  // invalidation and is exact at every moment.
  struct Signature {
    uint32_t min_key = std::numeric_limits<uint32_t>::max();
    uint32_t max_key = 0;
    uint64_t bucket_bits[2] = {0, 0};  // bit b set ⇔ some key hashes to b

    bool empty() const { return min_key > max_key; }

    static uint32_t BucketOf(uint32_t key) {
      // Multiplicative mix, top 7 bits: sequential sensor/window ids spread
      // evenly over the 128 buckets.
      return static_cast<uint32_t>((key * 0x9E3779B97F4A7C15ull) >> 57);
    }

    bool HasBucket(uint32_t b) const {
      return ((bucket_bits[b >> 6] >> (b & 63)) & 1) != 0;
    }

    // True when the two key sets provably share nothing: spans disjoint, or
    // no common occupied bucket (a shared key sets the same bit in both).
    bool Disjoint(const Signature& o) const {
      if (empty() || o.empty()) return true;
      if (max_key < o.min_key || o.max_key < min_key) return true;
      return ((bucket_bits[0] & o.bucket_bits[0]) |
              (bucket_bits[1] & o.bucket_bits[1])) == 0;
    }
  };

  FeatureVector() = default;
  // The severity sketch cache is deep-copied so pre-built fast-path state
  // survives the cluster copies query planning makes.
  FeatureVector(const FeatureVector& other);
  FeatureVector& operator=(const FeatureVector& other);
  FeatureVector(FeatureVector&&) = default;
  FeatureVector& operator=(FeatureVector&&) = default;
  ~FeatureVector() = default;

  // Accumulates `severity` onto `key`.  Amortized O(1); entries are kept
  // sorted lazily (Compact() runs on first read after writes).
  void Add(uint32_t key, double severity);

  // Number of distinct keys.
  size_t size() const;
  bool empty() const { return size() == 0; }

  // Total severity across all keys.
  double total() const { return total_; }

  // Severity of `key`, 0 if absent.  O(log n).
  double Get(uint32_t key) const;
  bool Contains(uint32_t key) const;

  // Sorted, duplicate-free entries.
  const std::vector<Entry>& entries() const;

  // Forces the lazy sort/dedup now.  Reads are conceptually const but may
  // compact mutable state, so a FeatureVector must be compacted (and no
  // longer written) before it is shared across threads; after this call all
  // const accessors are physically read-only until the next Add().
  void EnsureCompact() const { Compact(); }

  // Severity mass shared with `other`: (Σ_{common keys} this.severity,
  // Σ_{common keys} other.severity).  The numerators of Eq. 3 / Eq. 4.
  // Heavily skewed sizes take a galloping-intersection path that visits the
  // common keys in the same ascending order as the merge scan, so the sums
  // are bit-identical either way.
  std::pair<double, double> CommonSeverity(const FeatureVector& other) const;

  // ---- similarity fast-path summaries (DESIGN §11) ----

  const Signature& signature() const { return sig_; }

  // Largest single-entry severity (0 when empty).  Forces compaction.
  double max_entry_severity() const {
    Compact();
    return max_severity_;
  }

  // Number of distinct keys in [lo, hi] inclusive.  O(log n).
  size_t CountKeysInRange(uint32_t lo, uint32_t hi) const;

  // Per-bucket severity mass aligned with signature().bucket_bits:
  // sketch[b] ≥ Σ severity of keys with Signature::BucketOf(key) == b (equal
  // up to FP rounding).  Built on first use in O(n), then maintained
  // incrementally by Add() and additively by Merge() — like the signature it
  // is monotone, never invalidated.
  const std::array<double, kSignatureBuckets>& severity_sketch() const;

  // Compacts and builds the severity sketch now, so every const accessor the
  // similarity fast path touches — entries(), signature(),
  // max_entry_severity(), severity_sketch() — is physically read-only
  // afterwards (until the next Add()); required before sharing across
  // threads.
  void EnsureSimilarityReady() const {
    Compact();
    severity_sketch();
  }

  // Merged feature per Eq. 5/6: common keys accumulate, others carry over.
  static FeatureVector Merge(const FeatureVector& a, const FeatureVector& b);

  // The entry with the highest severity; dies on empty feature.
  Entry Top() const;

  // Entries sorted by decreasing severity (ties by key).
  std::vector<Entry> TopEntries(size_t k) const;

  // Bytes a compact serialization needs: one (u32 key, f64 severity) pair
  // per entry (model-size accounting, Fig. 16).
  uint64_t ByteSize() const;

  friend bool operator==(const FeatureVector& a, const FeatureVector& b) {
    return a.entries() == b.entries();
  }

 private:
  void Compact() const;

  // `entries_` may hold unsorted duplicates between Add() calls;
  // `dirty_` marks that state.  Compact() is conceptually const.
  mutable std::vector<Entry> entries_;
  mutable bool dirty_ = false;
  double total_ = 0.0;
  Signature sig_;
  // Exact whenever !dirty_ (clean Add paths maintain it incrementally;
  // Compact() re-derives it after out-of-order adds).
  mutable double max_severity_ = 0.0;
  // Lazy so the ~1 KiB sketch is only paid by vectors that actually reach
  // the similarity fast path, not by every stored micro-cluster.
  mutable std::unique_ptr<std::array<double, kSignatureBuckets>> sketch_;
};

// How TF keys are derived from absolute windows; see temporal_key.h.
enum class TemporalKeyMode : uint8_t {
  kAbsolute,   // key = absolute WindowId (same-day analysis)
  kTimeOfDay,  // key = window-of-day (cross-day integration; paper Fig. 5
               // labels temporal features with clock times, no dates)
};

// An atypical micro- or macro-cluster.
struct AtypicalCluster {
  ClusterId id = 0;
  FeatureVector spatial;   // SF: sensor id -> μ
  FeatureVector temporal;  // TF: temporal key -> ν
  TemporalKeyMode key_mode = TemporalKeyMode::kAbsolute;

  // ---- metadata (not part of the paper's model; used for drill-down,
  //      evaluation and reporting) ----
  // Ids of the micro-clusters merged into this cluster ({id} for a micro).
  std::vector<ClusterId> micro_ids;
  // Ids of the two immediate children of the last merge (0,0 for a micro);
  // together with micro_ids this encodes the clustering tree (Fig. 10).
  ClusterId left_child = 0;
  ClusterId right_child = 0;
  // Absolute day span covered ([first,last] inclusive).
  int first_day = 0;
  int last_day = 0;
  // Number of raw atypical records summarized.
  int64_t num_records = 0;
  // Generator ground-truth label that contributed the most severity
  // (kNoEvent when unknown); used only by tests and EXPERIMENTS.
  EventId dominant_true_event = kNoEvent;

  // severity(C) = Σμ = Σν (Def. 5 uses this total).
  double severity() const { return spatial.total(); }

  int num_sensors() const { return static_cast<int>(spatial.size()); }
  int num_windows() const { return static_cast<int>(temporal.size()); }
  int num_micros() const { return static_cast<int>(micro_ids.size()); }

  // Compact serialized size: features plus a fixed header and the micro id
  // list.  The header names its fields via sizeof so the accounting tracks
  // the struct; the former hardcoded 48 silently omitted the
  // left_child/right_child links (delta noted in EXPERIMENTS.md, Fig. 16).
  uint64_t ByteSize() const {
    constexpr uint64_t kHeaderBytes =
        sizeof(ClusterId)            // id
        + 2 * sizeof(ClusterId)      // left_child, right_child
        + 2 * sizeof(int)            // first_day, last_day
        + sizeof(int64_t)            // num_records
        + sizeof(EventId)            // dominant_true_event
        + sizeof(TemporalKeyMode);   // key_mode
    return spatial.ByteSize() + temporal.ByteSize() +
           micro_ids.size() * sizeof(ClusterId) + kHeaderBytes;
  }

  // Human-readable summary (id, severity, top sensor, day span).
  std::string DebugString(const TimeGrid& grid) const;
};

// Process-wide monotonically increasing cluster id source.  Macro-clusters
// get fresh ids on every merge ("a new ID is generated", §III.C).
class ClusterIdGenerator {
 public:
  explicit ClusterIdGenerator(ClusterId first = 1) : next_(first) {}

  // Movable so owners (e.g. AtypicalForest) stay movable; moving a
  // generator that another thread is concurrently using is a logic error.
  ClusterIdGenerator(ClusterIdGenerator&& other) noexcept
      : next_(other.next_.load(std::memory_order_relaxed)) {}
  ClusterIdGenerator& operator=(ClusterIdGenerator&& other) noexcept {
    next_.store(other.next_.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
    return *this;
  }

  // Copyable so owners are copyable for snapshot cloning (the serving
  // layer's epoch publish copies the whole forest, DESIGN §16).  The copy
  // continues from the source's current position; both generators then
  // advance independently, which is exactly right for an immutable snapshot
  // next to a still-ingesting original.
  ClusterIdGenerator(const ClusterIdGenerator& other)
      : next_(other.next_.load(std::memory_order_relaxed)) {}
  ClusterIdGenerator& operator=(const ClusterIdGenerator& other) {
    next_.store(other.next_.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
    return *this;
  }

  ClusterId Next() { return next_.fetch_add(1, std::memory_order_relaxed); }

  // Guarantees all future ids exceed `id` (used when installing persisted
  // clusters next to freshly generated ones).
  void EnsureAbove(ClusterId id) {
    ClusterId current = next_.load(std::memory_order_relaxed);
    while (current <= id &&
           !next_.compare_exchange_weak(current, id + 1,
                                        std::memory_order_relaxed)) {
    }
  }

 private:
  std::atomic<ClusterId> next_;
};

}  // namespace atypical

#endif  // ATYPICAL_CORE_CLUSTER_H_
