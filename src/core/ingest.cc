#include "core/ingest.h"

#include <algorithm>
#include <cmath>

#include "obs/stats.h"
#include "util/logging.h"

namespace atypical {

namespace {
// Cap on the quarantine debugging log; counters stay exact beyond it.
constexpr size_t kQuarantineLogCap = 256;
}  // namespace

const char* IngestPolicyName(IngestPolicy policy) {
  switch (policy) {
    case IngestPolicy::kStrict:
      return "strict";
    case IngestPolicy::kDrop:
      return "drop";
    case IngestPolicy::kBuffer:
      return "buffer";
  }
  return "unknown";
}

const char* QuarantineCauseName(QuarantineCause cause) {
  switch (cause) {
    case QuarantineCause::kNone:
      return "none";
    case QuarantineCause::kUnknownSensor:
      return "unknown_sensor";
    case QuarantineCause::kBadSeverity:
      return "bad_severity";
    case QuarantineCause::kExcessSeverity:
      return "excess_severity";
    case QuarantineCause::kDuplicate:
      return "duplicate";
    case QuarantineCause::kLate:
      return "late";
  }
  return "unknown";
}

RobustStreamingEventBuilder::RobustStreamingEventBuilder(
    const SensorNetwork* network, const TimeGrid& grid,
    const RetrievalParams& params, ClusterIdGenerator* ids, EmitFn emit,
    const IngestOptions& options)
    : network_(network),
      grid_(grid),
      options_(options),
      builder_(network, grid, params, ids, std::move(emit)) {
  CHECK_GE(options.lateness_horizon_windows, 0);
}

RobustStreamingEventBuilder::RobustStreamingEventBuilder(
    const SensorNetwork* network, const TimeGrid& grid,
    const RetrievalParams& params, ClusterIdGenerator* ids, EmitSeqFn emit,
    const IngestOptions& options)
    : network_(network),
      grid_(grid),
      options_(options),
      builder_(network, grid, params, ids, std::move(emit)) {
  CHECK_GE(options.lateness_horizon_windows, 0);
}

RobustStreamingEventBuilder::~RobustStreamingEventBuilder() { PublishStats(); }

void RobustStreamingEventBuilder::PublishStats() {
  // Cached metric handles: one registry lookup per process, not per guard.
  static obs::Counter* const records_in =
      obs::Registry()->GetCounter("ingest.records_in");
  static obs::Counter* const accepted =
      obs::Registry()->GetCounter("ingest.accepted");
  static obs::Counter* const reordered =
      obs::Registry()->GetCounter("ingest.reordered");
  static obs::Counter* const quarantined_unknown_sensor =
      obs::Registry()->GetCounter("ingest.quarantined.unknown_sensor");
  static obs::Counter* const quarantined_bad_severity =
      obs::Registry()->GetCounter("ingest.quarantined.bad_severity");
  static obs::Counter* const quarantined_excess_severity =
      obs::Registry()->GetCounter("ingest.quarantined.excess_severity");
  static obs::Counter* const quarantined_duplicate =
      obs::Registry()->GetCounter("ingest.quarantined.duplicate");
  static obs::Counter* const quarantined_late =
      obs::Registry()->GetCounter("ingest.quarantined.late");

  // Deltas keep Flush + destructor (and repeated flushes) exact: the global
  // counters always total the per-instance IngestStats published so far.
  records_in->Add(stats_.records_in - published_.records_in);
  accepted->Add(stats_.accepted - published_.accepted);
  reordered->Add(stats_.reordered - published_.reordered);
  quarantined_unknown_sensor->Add(stats_.quarantined_unknown_sensor -
                                  published_.quarantined_unknown_sensor);
  quarantined_bad_severity->Add(stats_.quarantined_bad_severity -
                                published_.quarantined_bad_severity);
  quarantined_excess_severity->Add(stats_.quarantined_excess_severity -
                                   published_.quarantined_excess_severity);
  quarantined_duplicate->Add(stats_.quarantined_duplicate -
                             published_.quarantined_duplicate);
  quarantined_late->Add(stats_.quarantined_late - published_.quarantined_late);
  published_ = stats_;
}

QuarantineCause RobustStreamingEventBuilder::ClassifyFields(
    const AtypicalRecord& record) const {
  if (record.sensor == kInvalidSensor ||
      static_cast<int64_t>(record.sensor) >= network_->num_sensors()) {
    return QuarantineCause::kUnknownSensor;
  }
  if (std::isnan(record.severity_minutes) || record.severity_minutes < 0.0f) {
    return QuarantineCause::kBadSeverity;
  }
  if (record.severity_minutes >
      static_cast<float>(grid_.window_minutes())) {
    return QuarantineCause::kExcessSeverity;
  }
  return QuarantineCause::kNone;
}

QuarantineCause RobustStreamingEventBuilder::Add(const AtypicalRecord& record) {
  ++stats_.records_in;

  QuarantineCause cause = ClassifyFields(record);
  if (cause == QuarantineCause::kNone && has_watermark_) {
    // Arrival-order checks.  Late is checked before duplicate: a record too
    // old for admission is refused as late even if it also repeats one, so
    // every refusal maps to exactly one cause.
    const uint64_t horizon =
        static_cast<uint64_t>(options_.lateness_horizon_windows);
    switch (options_.policy) {
      case IngestPolicy::kStrict:
        break;  // the inner builder's order CHECK is the strict contract
      case IngestPolicy::kDrop:
        if (record.window < watermark_) cause = QuarantineCause::kLate;
        break;
      case IngestPolicy::kBuffer:
        if (static_cast<uint64_t>(record.window) + horizon < watermark_) {
          cause = QuarantineCause::kLate;
        }
        break;
    }
  }
  if (cause == QuarantineCause::kNone &&
      seen_.contains({record.window, record.sensor})) {
    cause = QuarantineCause::kDuplicate;
  }

  if (cause != QuarantineCause::kNone) {
    CHECK(options_.policy != IngestPolicy::kStrict)
        << "strict ingest refuses record: cause="
        << QuarantineCauseName(cause) << " sensor=" << record.sensor
        << " window=" << record.window
        << " severity=" << record.severity_minutes;
    Quarantine(record, cause);
    DCHECK(stats_.Reconciles())
        << "quarantine left records_in != accepted + quarantined";
    return cause;
  }

  const bool out_of_order = has_watermark_ && record.window < watermark_;
  if (!has_watermark_ || record.window > watermark_) {
    watermark_ = record.window;
    has_watermark_ = true;
  }
  ++stats_.accepted;
  if (out_of_order) ++stats_.reordered;
  seen_.insert({record.window, record.sensor});

  if (options_.policy == IngestPolicy::kBuffer) {
    buffer_.emplace(record.window, record);
  } else {
    Forward(record);
  }
  ReleaseAndPrune();
  DCHECK(stats_.Reconciles())
      << "accept left records_in != accepted + quarantined";
  return QuarantineCause::kNone;
}

void RobustStreamingEventBuilder::Quarantine(const AtypicalRecord& record,
                                             QuarantineCause cause) {
  switch (cause) {
    case QuarantineCause::kUnknownSensor:
      ++stats_.quarantined_unknown_sensor;
      break;
    case QuarantineCause::kBadSeverity:
      ++stats_.quarantined_bad_severity;
      break;
    case QuarantineCause::kExcessSeverity:
      ++stats_.quarantined_excess_severity;
      break;
    case QuarantineCause::kDuplicate:
      ++stats_.quarantined_duplicate;
      break;
    case QuarantineCause::kLate:
      ++stats_.quarantined_late;
      break;
    case QuarantineCause::kNone:
      CHECK(false) << "cannot quarantine an accepted record";
  }
  quarantine_log_.push_back({record, cause});
  if (quarantine_log_.size() > kQuarantineLogCap) quarantine_log_.pop_front();
}

void RobustStreamingEventBuilder::Forward(const AtypicalRecord& record) {
  if (accept_tap_) accept_tap_(record);
  builder_.Add(record);
}

void RobustStreamingEventBuilder::ReleaseAndPrune() {
  const uint64_t horizon =
      static_cast<uint64_t>(options_.lateness_horizon_windows);
  // A buffered record at `w` is safe to release once no admissible future
  // record can precede it, i.e. once w + horizon <= watermark (future
  // arrivals are admitted only at window >= watermark - horizon).
  while (!buffer_.empty() &&
         static_cast<uint64_t>(buffer_.begin()->first) + horizon <=
             watermark_) {
    Forward(buffer_.begin()->second);
    buffer_.erase(buffer_.begin());
  }
  // Dedup entries older than the admission bound can never collide again.
  while (!seen_.empty() &&
         static_cast<uint64_t>(seen_.begin()->first) + horizon < watermark_) {
    seen_.erase(seen_.begin());
  }
}

void RobustStreamingEventBuilder::Flush() {
  for (const auto& [window, record] : buffer_) Forward(record);
  buffer_.clear();
  builder_.Flush();
  PublishStats();
}

void RobustStreamingEventBuilder::Reset() {
  Flush();
  builder_.Reset();
  seen_.clear();
  watermark_ = 0;
  has_watermark_ = false;
}

}  // namespace atypical
