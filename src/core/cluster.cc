#include "core/cluster.h"

#include <algorithm>
#include <cstddef>

#include "util/logging.h"
#include "util/string_util.h"

namespace atypical {

FeatureVector::FeatureVector(const FeatureVector& other)
    : entries_(other.entries_),
      dirty_(other.dirty_),
      total_(other.total_),
      sig_(other.sig_),
      max_severity_(other.max_severity_) {
  if (other.sketch_ != nullptr) {
    sketch_ = std::make_unique<std::array<double, kSignatureBuckets>>(
        *other.sketch_);
  }
}

FeatureVector& FeatureVector::operator=(const FeatureVector& other) {
  if (this == &other) return *this;
  entries_ = other.entries_;
  dirty_ = other.dirty_;
  total_ = other.total_;
  sig_ = other.sig_;
  max_severity_ = other.max_severity_;
  sketch_.reset();
  if (other.sketch_ != nullptr) {
    sketch_ = std::make_unique<std::array<double, kSignatureBuckets>>(
        *other.sketch_);
  }
  return *this;
}

void FeatureVector::Add(uint32_t key, double severity) {
  CHECK_GE(severity, 0.0);
  if (severity == 0.0) return;
  sig_.min_key = std::min(sig_.min_key, key);
  sig_.max_key = std::max(sig_.max_key, key);
  const uint32_t bucket = Signature::BucketOf(key);
  sig_.bucket_bits[bucket >> 6] |= uint64_t{1} << (bucket & 63);
  if (sketch_ != nullptr) (*sketch_)[bucket] += severity;
  // Fast path: appending in key order keeps the vector clean.
  if (!dirty_ && !entries_.empty() && entries_.back().key == key) {
    entries_.back().severity += severity;
    max_severity_ = std::max(max_severity_, entries_.back().severity);
  } else if (!dirty_ && (entries_.empty() || entries_.back().key < key)) {
    entries_.push_back(Entry{key, severity});
    max_severity_ = std::max(max_severity_, severity);
  } else {
    entries_.push_back(Entry{key, severity});
    dirty_ = true;  // max_severity_ goes stale too; Compact() re-derives it
  }
  total_ += severity;
}

void FeatureVector::Compact() const {
  if (!dirty_) return;
  std::sort(entries_.begin(), entries_.end(),
            [](const Entry& a, const Entry& b) { return a.key < b.key; });
  size_t out = 0;
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (out > 0 && entries_[out - 1].key == entries_[i].key) {
      entries_[out - 1].severity += entries_[i].severity;
    } else {
      entries_[out++] = entries_[i];
    }
  }
  entries_.resize(out);  // NOEFFECT(allocates): shrink-only (out <= size())
  max_severity_ = 0.0;
  for (const Entry& e : entries_) {
    max_severity_ = std::max(max_severity_, e.severity);
  }
  dirty_ = false;
}

size_t FeatureVector::CountKeysInRange(uint32_t lo, uint32_t hi) const {
  if (lo > hi) return 0;
  Compact();
  const auto first = std::lower_bound(
      entries_.begin(), entries_.end(), lo,
      [](const Entry& e, uint32_t k) { return e.key < k; });
  const auto last = std::upper_bound(
      first, entries_.end(), hi,
      [](uint32_t k, const Entry& e) { return k < e.key; });
  return static_cast<size_t>(last - first);
}

const std::array<double, FeatureVector::kSignatureBuckets>&
FeatureVector::severity_sketch() const {
  if (sketch_ == nullptr) {
    auto sketch = std::make_unique<std::array<double, kSignatureBuckets>>();
    sketch->fill(0.0);
    for (const Entry& e : entries()) {
      (*sketch)[Signature::BucketOf(e.key)] += e.severity;
    }
    sketch_ = std::move(sketch);
  }
  return *sketch_;
}

size_t FeatureVector::size() const {
  Compact();
  return entries_.size();
}

double FeatureVector::Get(uint32_t key) const {
  Compact();
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), key,
      [](const Entry& e, uint32_t k) { return e.key < k; });
  if (it == entries_.end() || it->key != key) return 0.0;
  return it->severity;
}

bool FeatureVector::Contains(uint32_t key) const { return Get(key) > 0.0; }

const std::vector<FeatureVector::Entry>& FeatureVector::entries() const {
  Compact();
  return entries_;
}

namespace {

// First index in [lo, entries.size()) whose key is >= `key`, found by
// doubling steps then a binary search over the final bracket.  O(log gap)
// instead of O(gap), which is what makes the skewed intersection cheap.
size_t GallopLowerBound(const std::vector<FeatureVector::Entry>& entries,
                        size_t lo, uint32_t key) {
  size_t step = 1;
  size_t hi = lo;
  while (hi < entries.size() && entries[hi].key < key) {
    lo = hi + 1;
    hi += step;
    step *= 2;
  }
  hi = std::min(hi, entries.size());
  const auto it = std::lower_bound(
      entries.begin() + static_cast<ptrdiff_t>(lo),
      entries.begin() + static_cast<ptrdiff_t>(hi), key,
      [](const FeatureVector::Entry& e, uint32_t k) { return e.key < k; });
  return static_cast<size_t>(it - entries.begin());
}

// When one side is much larger, gallop through it instead of scanning.
// Both paths visit the common keys in the same ascending order and add the
// same values in the same order, so the accumulated sums are bit-identical.
constexpr size_t kGallopSkewFactor = 16;

}  // namespace

std::pair<double, double> FeatureVector::CommonSeverity(
    const FeatureVector& other) const {
  const auto& a = entries();
  const auto& b = other.entries();
  double mine = 0.0;
  double theirs = 0.0;
  size_t i = 0;
  size_t j = 0;
  if (a.size() * kGallopSkewFactor <= b.size() ||
      b.size() * kGallopSkewFactor <= a.size()) {
    // Drive from the small side, gallop in the large one.
    const bool a_small = a.size() <= b.size();
    const auto& small = a_small ? a : b;
    const auto& large = a_small ? b : a;
    size_t pos = 0;
    for (const Entry& e : small) {
      pos = GallopLowerBound(large, pos, e.key);
      if (pos == large.size()) break;
      if (large[pos].key == e.key) {
        mine += a_small ? e.severity : large[pos].severity;
        theirs += a_small ? large[pos].severity : e.severity;
        ++pos;
      }
    }
    return {mine, theirs};
  }
  while (i < a.size() && j < b.size()) {
    if (a[i].key < b[j].key) {
      ++i;
    } else if (a[i].key > b[j].key) {
      ++j;
    } else {
      mine += a[i].severity;
      theirs += b[j].severity;
      ++i;
      ++j;
    }
  }
  return {mine, theirs};
}

FeatureVector FeatureVector::Merge(const FeatureVector& a,
                                   const FeatureVector& b) {
  const auto& ea = a.entries();
  const auto& eb = b.entries();
  FeatureVector out;
  out.entries_.reserve(ea.size() + eb.size());
  size_t i = 0;
  size_t j = 0;
  while (i < ea.size() || j < eb.size()) {
    if (j == eb.size() || (i < ea.size() && ea[i].key < eb[j].key)) {
      out.entries_.push_back(ea[i++]);
    } else if (i == ea.size() || eb[j].key < ea[i].key) {
      out.entries_.push_back(eb[j++]);
    } else {
      out.entries_.push_back(
          Entry{ea[i].key, ea[i].severity + eb[j].severity});
      ++i;
      ++j;
    }
  }
  out.total_ = a.total_ + b.total_;
  out.sig_.min_key = std::min(a.sig_.min_key, b.sig_.min_key);
  out.sig_.max_key = std::max(a.sig_.max_key, b.sig_.max_key);
  out.sig_.bucket_bits[0] = a.sig_.bucket_bits[0] | b.sig_.bucket_bits[0];
  out.sig_.bucket_bits[1] = a.sig_.bucket_bits[1] | b.sig_.bucket_bits[1];
  for (const Entry& e : out.entries_) {
    out.max_severity_ = std::max(out.max_severity_, e.severity);
  }
  if (a.sketch_ != nullptr && b.sketch_ != nullptr) {
    // Keep fast-path state warm across merges: per-bucket mass is additive.
    out.sketch_ = std::make_unique<std::array<double, kSignatureBuckets>>();
    for (uint32_t bucket = 0; bucket < kSignatureBuckets; ++bucket) {
      (*out.sketch_)[bucket] = (*a.sketch_)[bucket] + (*b.sketch_)[bucket];
    }
  }
  return out;
}

FeatureVector::Entry FeatureVector::Top() const {
  const auto& e = entries();
  CHECK(!e.empty()) << "Top() on empty feature";
  // First-max-wins, like the scan this replaces: max_element keeps the
  // earliest of equal-severity entries because the comparator is strict.
  return *std::max_element(e.begin(), e.end(),
                           [](const Entry& a, const Entry& b) {
                             return a.severity < b.severity;
                           });
}

std::vector<FeatureVector::Entry> FeatureVector::TopEntries(size_t k) const {
  std::vector<Entry> sorted = entries();
  const auto mid =
      sorted.begin() +
      static_cast<ptrdiff_t>(std::min(k, sorted.size()));
  // partial_sort suffices: (severity desc, key asc) is a strict total order
  // on deduped entries, so the first k are unique regardless of algorithm.
  std::partial_sort(sorted.begin(), mid, sorted.end(),
                    [](const Entry& a, const Entry& b) {
                      if (a.severity != b.severity)
                        return a.severity > b.severity;
                      return a.key < b.key;
                    });
  if (sorted.size() > k) sorted.resize(k);
  return sorted;
}

uint64_t FeatureVector::ByteSize() const {
  return entries().size() * (sizeof(uint32_t) + sizeof(double));
}

std::string AtypicalCluster::DebugString(const TimeGrid& grid) const {
  if (spatial.empty()) {
    return StrPrintf("cluster %llu (empty)", (unsigned long long)id);
  }
  const FeatureVector::Entry top_sensor = spatial.Top();
  const FeatureVector::Entry top_window = temporal.Top();
  const int minute =
      key_mode == TemporalKeyMode::kTimeOfDay
          ? static_cast<int>(top_window.key) * grid.window_minutes()
          : grid.MinuteOfDay(static_cast<WindowId>(top_window.key));
  return StrPrintf(
      "cluster %llu: severity=%.1f min, %d sensors, %d windows, days %d-%d, "
      "%d micros; hottest sensor s%u (%.1f min), peak window %s (%.1f min)",
      (unsigned long long)id, severity(), num_sensors(), num_windows(),
      first_day, last_day, num_micros(), top_sensor.key, top_sensor.severity,
      ClockLabel(minute).c_str(), top_window.severity);
}

}  // namespace atypical
