#include "core/cluster.h"

#include <algorithm>

#include "util/logging.h"
#include "util/string_util.h"

namespace atypical {

void FeatureVector::Add(uint32_t key, double severity) {
  CHECK_GE(severity, 0.0);
  if (severity == 0.0) return;
  // Fast path: appending in key order keeps the vector clean.
  if (!dirty_ && !entries_.empty() && entries_.back().key == key) {
    entries_.back().severity += severity;
  } else if (!dirty_ && (entries_.empty() || entries_.back().key < key)) {
    entries_.push_back(Entry{key, severity});
  } else {
    entries_.push_back(Entry{key, severity});
    dirty_ = true;
  }
  total_ += severity;
}

void FeatureVector::Compact() const {
  if (!dirty_) return;
  std::sort(entries_.begin(), entries_.end(),
            [](const Entry& a, const Entry& b) { return a.key < b.key; });
  size_t out = 0;
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (out > 0 && entries_[out - 1].key == entries_[i].key) {
      entries_[out - 1].severity += entries_[i].severity;
    } else {
      entries_[out++] = entries_[i];
    }
  }
  entries_.resize(out);
  dirty_ = false;
}

size_t FeatureVector::size() const {
  Compact();
  return entries_.size();
}

double FeatureVector::Get(uint32_t key) const {
  Compact();
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), key,
      [](const Entry& e, uint32_t k) { return e.key < k; });
  if (it == entries_.end() || it->key != key) return 0.0;
  return it->severity;
}

bool FeatureVector::Contains(uint32_t key) const { return Get(key) > 0.0; }

const std::vector<FeatureVector::Entry>& FeatureVector::entries() const {
  Compact();
  return entries_;
}

std::pair<double, double> FeatureVector::CommonSeverity(
    const FeatureVector& other) const {
  const auto& a = entries();
  const auto& b = other.entries();
  double mine = 0.0;
  double theirs = 0.0;
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i].key < b[j].key) {
      ++i;
    } else if (a[i].key > b[j].key) {
      ++j;
    } else {
      mine += a[i].severity;
      theirs += b[j].severity;
      ++i;
      ++j;
    }
  }
  return {mine, theirs};
}

FeatureVector FeatureVector::Merge(const FeatureVector& a,
                                   const FeatureVector& b) {
  const auto& ea = a.entries();
  const auto& eb = b.entries();
  FeatureVector out;
  out.entries_.reserve(ea.size() + eb.size());
  size_t i = 0;
  size_t j = 0;
  while (i < ea.size() || j < eb.size()) {
    if (j == eb.size() || (i < ea.size() && ea[i].key < eb[j].key)) {
      out.entries_.push_back(ea[i++]);
    } else if (i == ea.size() || eb[j].key < ea[i].key) {
      out.entries_.push_back(eb[j++]);
    } else {
      out.entries_.push_back(
          Entry{ea[i].key, ea[i].severity + eb[j].severity});
      ++i;
      ++j;
    }
  }
  out.total_ = a.total_ + b.total_;
  return out;
}

FeatureVector::Entry FeatureVector::Top() const {
  const auto& e = entries();
  CHECK(!e.empty()) << "Top() on empty feature";
  Entry best = e[0];
  for (const Entry& entry : e) {
    if (entry.severity > best.severity) best = entry;
  }
  return best;
}

std::vector<FeatureVector::Entry> FeatureVector::TopEntries(size_t k) const {
  std::vector<Entry> sorted = entries();
  std::sort(sorted.begin(), sorted.end(), [](const Entry& a, const Entry& b) {
    if (a.severity != b.severity) return a.severity > b.severity;
    return a.key < b.key;
  });
  if (sorted.size() > k) sorted.resize(k);
  return sorted;
}

uint64_t FeatureVector::ByteSize() const {
  return entries().size() * (sizeof(uint32_t) + sizeof(double));
}

std::string AtypicalCluster::DebugString(const TimeGrid& grid) const {
  if (spatial.empty()) {
    return StrPrintf("cluster %llu (empty)", (unsigned long long)id);
  }
  const FeatureVector::Entry top_sensor = spatial.Top();
  const FeatureVector::Entry top_window = temporal.Top();
  const int minute =
      key_mode == TemporalKeyMode::kTimeOfDay
          ? static_cast<int>(top_window.key) * grid.window_minutes()
          : grid.MinuteOfDay(static_cast<WindowId>(top_window.key));
  return StrPrintf(
      "cluster %llu: severity=%.1f min, %d sensors, %d windows, days %d-%d, "
      "%d micros; hottest sensor s%u (%.1f min), peak window %s (%.1f min)",
      (unsigned long long)id, severity(), num_sensors(), num_windows(),
      first_day, last_day, num_micros(), top_sensor.key, top_sensor.severity,
      ClockLabel(minute).c_str(), top_window.severity);
}

}  // namespace atypical
