#include "core/temporal_key.h"

#include "util/logging.h"

namespace atypical {

uint32_t TemporalKey(WindowId window, const TimeGrid& grid,
                     TemporalKeyMode mode) {
  switch (mode) {
    case TemporalKeyMode::kAbsolute:
      return window;
    case TemporalKeyMode::kTimeOfDay:
      return static_cast<uint32_t>(grid.WindowOfDay(window));
  }
  LOG(FATAL) << "unknown TemporalKeyMode";
  return 0;
}

AtypicalCluster WithTemporalKeyMode(const AtypicalCluster& cluster,
                                    const TimeGrid& grid,
                                    TemporalKeyMode mode) {
  if (cluster.key_mode == mode) return cluster;
  CHECK(cluster.key_mode == TemporalKeyMode::kAbsolute)
      << "cannot recover absolute windows from time-of-day keys";

  AtypicalCluster out = cluster;
  FeatureVector rekeyed;
  for (const FeatureVector::Entry& e : cluster.temporal.entries()) {
    rekeyed.Add(TemporalKey(static_cast<WindowId>(e.key), grid, mode),
                e.severity);
  }
  out.temporal = std::move(rekeyed);
  out.key_mode = mode;
  return out;
}

}  // namespace atypical
