#include "obs/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/snapshot.h"
#include "util/logging.h"

namespace atypical {
namespace obs {

double BucketLayout::UpperBound(int bucket) const {
  if (bucket >= num_buckets) return std::numeric_limits<double>::infinity();
  return base * std::ldexp(1.0, bucket);  // base · 2^bucket, exact
}

int BucketLayout::BucketFor(double value) const {
  // Linear in num_buckets (30); the doubling comparison avoids a log() on
  // the hot path and is exact at the boundaries.
  double bound = base;
  for (int i = 0; i < num_buckets; ++i) {
    if (value <= bound) return i;
    bound *= 2.0;
  }
  return num_buckets;  // overflow
}

#if ATYPICAL_STATS_ENABLED

namespace {

// fetch_add on atomic<double> needs only relaxed read-modify-write; a CAS
// loop keeps us off the C++20 floating fetch_add (not lock-free
// everywhere).
void AtomicAdd(std::atomic<double>* target, double delta) {
  double current = target->load(std::memory_order_relaxed);
  while (!target->compare_exchange_weak(current, current + delta,
                                        std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>* target, double value) {
  double current = target->load(std::memory_order_relaxed);
  while (current < value &&
         !target->compare_exchange_weak(current, value,
                                        std::memory_order_relaxed)) {
  }
}

}  // namespace

Histogram::Histogram(const BucketLayout& layout)
    : layout_(layout),
      buckets_(new std::atomic<uint64_t>[static_cast<size_t>(
          layout.num_buckets + 1)]) {
  CHECK_GT(layout.num_buckets, 0);
  CHECK_GT(layout.base, 0.0);
  for (int i = 0; i <= layout_.num_buckets; ++i) {
    buckets_[static_cast<size_t>(i)].store(0, std::memory_order_relaxed);
  }
}

void Histogram::Record(double value) {
  if (std::isnan(value)) return;  // never poison the distribution
  value = std::max(value, 0.0);
  buckets_[static_cast<size_t>(layout_.BucketFor(value))].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(&sum_, value);
  AtomicMax(&max_, value);
}

double Histogram::Quantile(double q) const {
  const uint64_t total = count();
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(total);
  double cumulative = 0.0;
  for (int i = 0; i <= layout_.num_buckets; ++i) {
    const uint64_t in_bucket = bucket_count(i);
    if (in_bucket == 0) continue;
    if (cumulative + static_cast<double>(in_bucket) >= rank) {
      if (i == layout_.num_buckets) return max();  // overflow: best estimate
      const double lower = i == 0 ? 0.0 : layout_.UpperBound(i - 1);
      const double upper = layout_.UpperBound(i);
      const double fraction =
          (rank - cumulative) / static_cast<double>(in_bucket);
      return lower + (upper - lower) * fraction;
    }
    cumulative += static_cast<double>(in_bucket);
  }
  return max();
}

Counter* StatsRegistry::GetCounter(const std::string& name) {
  MutexLock lock(&mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(name, std::unique_ptr<Counter>(new Counter()))
             .first;
  }
  return it->second.get();
}

Gauge* StatsRegistry::GetGauge(const std::string& name) {
  MutexLock lock(&mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(name, std::unique_ptr<Gauge>(new Gauge())).first;
  }
  return it->second.get();
}

Histogram* StatsRegistry::GetHistogram(const std::string& name,
                                       const BucketLayout& layout) {
  MutexLock lock(&mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(name, std::unique_ptr<Histogram>(new Histogram(layout)))
             .first;
  } else {
    CHECK(it->second->layout() == layout)
        << "histogram '" << name << "' re-requested with a different layout";
  }
  return it->second.get();
}

StatsSnapshot StatsRegistry::Snapshot() const {
  StatsSnapshot snap;
  MutexLock lock(&mu_);
  snap.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snap.counters.emplace_back(name, counter->value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.emplace_back(name, gauge->value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, hist] : histograms_) {
    StatsSnapshot::HistogramData data;
    data.name = name;
    data.count = hist->count();
    data.sum = hist->sum();
    data.max = hist->max();
    data.p50 = hist->Quantile(0.50);
    data.p90 = hist->Quantile(0.90);
    data.p99 = hist->Quantile(0.99);
    for (int i = 0; i <= hist->layout().num_buckets; ++i) {
      const uint64_t in_bucket = hist->bucket_count(i);
      if (in_bucket == 0) continue;
      data.buckets.push_back({hist->layout().UpperBound(i), in_bucket});
    }
    snap.histograms.push_back(std::move(data));
  }
  return snap;
}

void StatsRegistry::Reset() {
  MutexLock lock(&mu_);
  for (const auto& [_, counter] : counters_) {
    counter->value_.store(0, std::memory_order_relaxed);
  }
  for (const auto& [_, gauge] : gauges_) {
    gauge->value_.store(0, std::memory_order_relaxed);
  }
  for (const auto& [_, hist] : histograms_) {
    for (int i = 0; i <= hist->layout_.num_buckets; ++i) {
      hist->buckets_[static_cast<size_t>(i)].store(0,
                                                   std::memory_order_relaxed);
    }
    hist->count_.store(0, std::memory_order_relaxed);
    hist->sum_.store(0.0, std::memory_order_relaxed);
    hist->max_.store(0.0, std::memory_order_relaxed);
  }
}

#else  // !ATYPICAL_STATS_ENABLED

StatsSnapshot StatsRegistry::Snapshot() const { return StatsSnapshot{}; }

#endif  // ATYPICAL_STATS_ENABLED

StatsRegistry* Registry() {
  // Leaked on purpose: instrumented code in static destructors must still
  // find a live registry.
  static StatsRegistry* const registry = new StatsRegistry();
  return registry;
}

}  // namespace obs
}  // namespace atypical
