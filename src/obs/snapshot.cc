#include "obs/snapshot.h"

#include <cmath>

#include "util/string_util.h"

namespace atypical {
namespace obs {

namespace {

// Deterministic shortest-ish double rendering shared by both exporters, so
// golden files and the JSON schema check never chase formatting drift.
std::string Num(double v) {
  if (std::isinf(v)) return v > 0 ? "inf" : "-inf";
  return StrPrintf("%.9g", v);
}

void AppendJsonString(const std::string& s, std::string* out) {
  out->push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          *out += StrPrintf("\\u%04x", c);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

}  // namespace

uint64_t StatsSnapshot::CounterValue(const std::string& name) const {
  for (const auto& [counter_name, value] : counters) {
    if (counter_name == name) return value;
  }
  return 0;
}

std::string StatsSnapshot::ToText() const {
  size_t width = 0;
  for (const auto& [name, _] : counters) width = std::max(width, name.size());
  for (const auto& [name, _] : gauges) width = std::max(width, name.size());
  for (const HistogramData& h : histograms) {
    width = std::max(width, h.name.size());
  }

  std::string out = "== pipeline stats ==\n";
  if (empty()) return out + "(no metrics recorded)\n";
  if (!counters.empty()) {
    out += "counters:\n";
    for (const auto& [name, value] : counters) {
      out += StrPrintf("  %-*s %llu\n", static_cast<int>(width), name.c_str(),
                       (unsigned long long)value);
    }
  }
  if (!gauges.empty()) {
    out += "gauges:\n";
    for (const auto& [name, value] : gauges) {
      out += StrPrintf("  %-*s %lld\n", static_cast<int>(width), name.c_str(),
                       (long long)value);
    }
  }
  if (!histograms.empty()) {
    out += "histograms:\n";
    for (const HistogramData& h : histograms) {
      out += StrPrintf(
          "  %-*s count=%llu sum=%s p50=%s p90=%s p99=%s max=%s\n",
          static_cast<int>(width), h.name.c_str(), (unsigned long long)h.count,
          Num(h.sum).c_str(), Num(h.p50).c_str(), Num(h.p90).c_str(),
          Num(h.p99).c_str(), Num(h.max).c_str());
    }
  }
  return out;
}

std::string StatsSnapshot::ToJson() const {
  std::string out;
  out += StrPrintf("{\n  \"schema_version\": %d,\n  \"counters\": {",
                   kStatsSchemaVersion);
  bool first = true;
  for (const auto& [name, value] : counters) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    ";
    AppendJsonString(name, &out);
    out += StrPrintf(": %llu", (unsigned long long)value);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    ";
    AppendJsonString(name, &out);
    out += StrPrintf(": %lld", (long long)value);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const HistogramData& h : histograms) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    ";
    AppendJsonString(h.name, &out);
    out += StrPrintf(
        ": {\"count\": %llu, \"sum\": %s, \"max\": %s, \"p50\": %s, "
        "\"p90\": %s, \"p99\": %s, \"buckets\": [",
        (unsigned long long)h.count, Num(h.sum).c_str(), Num(h.max).c_str(),
        Num(h.p50).c_str(), Num(h.p90).c_str(), Num(h.p99).c_str());
    for (size_t i = 0; i < h.buckets.size(); ++i) {
      if (i > 0) out += ", ";
      // The overflow bucket's bound is +inf, which JSON numbers cannot
      // carry; it travels as the string "inf" (see stats_schema.json).
      if (std::isinf(h.buckets[i].upper_bound)) {
        out += StrPrintf("{\"le\": \"inf\", \"count\": %llu}",
                         (unsigned long long)h.buckets[i].count);
      } else {
        out += StrPrintf("{\"le\": %s, \"count\": %llu}",
                         Num(h.buckets[i].upper_bound).c_str(),
                         (unsigned long long)h.buckets[i].count);
      }
    }
    out += "]}";
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

}  // namespace obs
}  // namespace atypical
