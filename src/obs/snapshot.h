// StatsSnapshot: a point-in-time copy of a StatsRegistry, renderable as an
// aligned text report or as JSON (schema: scripts/stats_schema.json,
// validated in CI by scripts/check_stats_schema.py).
//
// The snapshot type itself is always real — an ATYPICAL_NO_STATS build
// produces an empty snapshot that still renders valid (empty) JSON, so
// `atypical_cli --stats=json` keeps its contract in both build flavors.
#ifndef ATYPICAL_OBS_SNAPSHOT_H_
#define ATYPICAL_OBS_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace atypical {
namespace obs {

// Bumped whenever the JSON shape changes incompatibly.
inline constexpr int kStatsSchemaVersion = 1;

struct StatsSnapshot {
  struct HistogramData {
    struct Bucket {
      double upper_bound = 0.0;  // +inf for the overflow bucket
      uint64_t count = 0;
    };
    std::string name;
    uint64_t count = 0;
    double sum = 0.0;
    double max = 0.0;
    double p50 = 0.0;
    double p90 = 0.0;
    double p99 = 0.0;
    std::vector<Bucket> buckets;  // only buckets with samples, ascending
  };

  // All sorted by name.
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, int64_t>> gauges;
  std::vector<HistogramData> histograms;

  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }

  // Value of a counter by name, 0 when absent (test/reporting convenience).
  uint64_t CounterValue(const std::string& name) const;

  // Aligned human-readable report.
  std::string ToText() const;
  // Deterministic single-object JSON document (trailing newline included).
  std::string ToJson() const;
};

}  // namespace obs
}  // namespace atypical

#endif  // ATYPICAL_OBS_SNAPSHOT_H_
