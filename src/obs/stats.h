// Pipeline metrics: monotonic counters, gauges and fixed-bucket histograms
// behind a process-wide registry.
//
// The hot-path write primitives are lock-free (relaxed atomics); the
// registry itself serializes only registration and snapshotting behind the
// annotated Mutex from util/sync.h.  Call sites pay one name lookup ever by
// caching the returned pointer in a function-local static:
//
//   static obs::Counter* const accepted =
//       obs::Registry()->GetCounter("ingest.accepted");
//   accepted->Increment();
//
// Metric naming scheme (see DESIGN.md §9): lowercase dotted paths rooted at
// the subsystem — "ingest.accepted", "integration.parallel.merges",
// "query.seconds".  Histograms that record durations end in ".seconds" and
// use BucketLayout::Latency(); histograms of sizes/counts use
// BucketLayout::Counts().
//
// Building with -DATYPICAL_NO_STATS=ON (CMake option) replaces everything
// here with inline no-op stubs, so instrumentation compiles out entirely
// while call sites stay untouched.  Results never depend on instrumentation
// either way (asserted by obs_transparency_test and the stats-smoke CI job).
#ifndef ATYPICAL_OBS_STATS_H_
#define ATYPICAL_OBS_STATS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "util/sync.h"
#include "util/thread_annotations.h"

#ifdef ATYPICAL_NO_STATS
#define ATYPICAL_STATS_ENABLED 0
#else
#define ATYPICAL_STATS_ENABLED 1
#endif

namespace atypical {
namespace obs {

struct StatsSnapshot;

// Exponential bucket boundaries: bucket i covers values <= base·2^i, plus
// one implicit overflow bucket.  Fixed layouts keep every histogram's wire
// shape identical and snapshots mergeable.
struct BucketLayout {
  double base = 1e-6;
  int num_buckets = 30;

  // 1µs .. ~537s in doubling steps — spans a cache probe to a full
  // year-scale materialization.
  static constexpr BucketLayout Latency() { return {1e-6, 30}; }
  // 1 .. ~5.4e8 in doubling steps — batch sizes, clusters per day.
  static constexpr BucketLayout Counts() { return {1.0, 30}; }

  double UpperBound(int bucket) const;  // +inf for the overflow bucket
  int BucketFor(double value) const;    // num_buckets = overflow

  friend bool operator==(const BucketLayout& a, const BucketLayout& b) {
    return a.base == b.base && a.num_buckets == b.num_buckets;
  }
};

#if ATYPICAL_STATS_ENABLED

// A monotonically increasing event count.  Lock-free.
class Counter {
 public:
  void Increment() { Add(1); }
  void Add(uint64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

 private:
  friend class StatsRegistry;
  Counter() = default;
  std::atomic<uint64_t> value_{0};
};

// A point-in-time signed level (queue depths, open events).  Lock-free.
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { value_.fetch_add(d, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

 private:
  friend class StatsRegistry;
  Gauge() = default;
  std::atomic<int64_t> value_{0};
};

// Fixed-bucket distribution of non-negative samples.  Record() is lock-free:
// one bucket increment plus CAS loops for the running sum and max.
// Percentiles are interpolated within bucket bounds, so they are estimates
// whose error is bounded by the doubling bucket width.
class Histogram {
 public:
  void Record(double value);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double max() const { return max_.load(std::memory_order_relaxed); }
  uint64_t bucket_count(int bucket) const {
    return buckets_[static_cast<size_t>(bucket)].load(
        std::memory_order_relaxed);
  }
  const BucketLayout& layout() const { return layout_; }

  // q in [0, 1]; 0 with no samples.  Linear interpolation inside the bucket
  // holding the rank; the overflow bucket reports the observed max.
  double Quantile(double q) const;

  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

 private:
  friend class StatsRegistry;
  explicit Histogram(const BucketLayout& layout);

  BucketLayout layout_;
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;  // num_buckets + overflow
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> max_{0.0};
};

// Name → metric table.  One process-global instance behind Registry();
// tests build their own to get hermetic snapshots.
class StatsRegistry {
 public:
  StatsRegistry() = default;
  StatsRegistry(const StatsRegistry&) = delete;
  StatsRegistry& operator=(const StatsRegistry&) = delete;

  // Get-or-create; the returned pointer is stable for the registry's
  // lifetime (cache it).  Re-requesting a histogram with a different layout
  // dies — a name identifies one distribution.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name,
                          const BucketLayout& layout = BucketLayout::Latency());

  // Consistent-enough copy of every metric, sorted by name.  Concurrent
  // writers may be mid-update; each individual load is atomic.
  StatsSnapshot Snapshot() const;

  // Zeroes every registered metric (registrations survive).  Test support;
  // racing Reset with writers loses the concurrent increments.
  void Reset();

 private:
  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_
      ATYPICAL_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_
      ATYPICAL_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      ATYPICAL_GUARDED_BY(mu_);
};

#else  // !ATYPICAL_STATS_ENABLED — inline no-op stubs, same surface.

class Counter {
 public:
  void Increment() {}
  void Add(uint64_t) {}
  uint64_t value() const { return 0; }
};

class Gauge {
 public:
  void Set(int64_t) {}
  void Add(int64_t) {}
  int64_t value() const { return 0; }
};

class Histogram {
 public:
  void Record(double) {}
  uint64_t count() const { return 0; }
  double sum() const { return 0.0; }
  double max() const { return 0.0; }
  uint64_t bucket_count(int) const { return 0; }
  const BucketLayout& layout() const {
    static const BucketLayout layout;
    return layout;
  }
  double Quantile(double) const { return 0.0; }
};

class StatsRegistry {
 public:
  Counter* GetCounter(const std::string&) { return &counter_; }
  Gauge* GetGauge(const std::string&) { return &gauge_; }
  Histogram* GetHistogram(const std::string&,
                          const BucketLayout& = BucketLayout::Latency()) {
    return &histogram_;
  }
  StatsSnapshot Snapshot() const;  // empty (defined in snapshot.h users' TU)
  void Reset() {}

 private:
  Counter counter_;
  Gauge gauge_;
  Histogram histogram_;
};

#endif  // ATYPICAL_STATS_ENABLED

// The process-wide registry every built-in instrumentation point writes to.
StatsRegistry* Registry();

}  // namespace obs
}  // namespace atypical

#endif  // ATYPICAL_OBS_STATS_H_
