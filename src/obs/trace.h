// RAII scoped timers feeding the obs histograms.
//
//   void Integrate(...) {
//     obs::TraceSpan span(obs::Registry()->GetHistogram(
//         "integration.seconds"));
//     ...  // recorded on scope exit
//   }
//
// Stop() ends the span early and returns the elapsed seconds (once; later
// calls return the same reading).  Under ATYPICAL_NO_STATS the histogram is
// a no-op stub but the clock still runs, so Stop() keeps returning real
// durations for callers that print them.
#ifndef ATYPICAL_OBS_TRACE_H_
#define ATYPICAL_OBS_TRACE_H_

#include "obs/stats.h"
#include "util/stopwatch.h"

namespace atypical {
namespace obs {

class TraceSpan {
 public:
  // `hist` may be null: the span then only measures (for Stop() callers).
  explicit TraceSpan(Histogram* hist) : hist_(hist) {}

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  ~TraceSpan() { Stop(); }

  // Records the elapsed time into the histogram and returns it (seconds).
  // Idempotent; the destructor calls it too.
  double Stop() {
    if (!stopped_) {
      stopped_ = true;
      elapsed_seconds_ = timer_.ElapsedSeconds();
      if (hist_ != nullptr) hist_->Record(elapsed_seconds_);
    }
    return elapsed_seconds_;
  }

 private:
  Histogram* const hist_;
  Stopwatch timer_;
  bool stopped_ = false;
  double elapsed_seconds_ = 0.0;
};

}  // namespace obs
}  // namespace atypical

#endif  // ATYPICAL_OBS_TRACE_H_
