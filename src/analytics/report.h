// Shared experiment plumbing for the figure-reproduction benches and the
// end-to-end examples: build a workload, materialize the forest and the
// atypical cube over a span of months, and expose the pieces the paper's
// experiments combine.
#ifndef ATYPICAL_ANALYTICS_REPORT_H_
#define ATYPICAL_ANALYTICS_REPORT_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/forest.h"
#include "core/ingest.h"
#include "core/query.h"
#include "cube/cube.h"
#include "gen/workload.h"
#include "storage/reader.h"

namespace atypical {
namespace analytics {

// A fully-built analysis stack over `num_months` synthetic months.
struct ExperimentContext {
  std::unique_ptr<Workload> workload;
  // Atypical records per generated month (index = month).
  std::vector<std::vector<AtypicalRecord>> monthly_atypical;
  std::unique_ptr<AtypicalForest> forest;
  cube::BottomUpCube atypical_cube;  // MC cube over all generated months
  ForestParams forest_params;

  const SensorNetwork& network() const { return *workload->sensors; }
  const RegionGrid& regions() const { return *workload->regions; }
  const TimeGrid& time_grid() const {
    return workload->gen_config.time_grid;
  }
  int days_per_month() const { return workload->gen_config.days_per_month; }

  // Whole-area query over the first `num_days` days.
  AnalyticalQuery WholeAreaQuery(int num_days) const;

  // A query engine bound to this context.
  QueryEngine MakeEngine(const QueryEngineOptions& options) const;
};

// Paper-default parameters: δd = 1.5 mi, δt = 15 min, δsim = 0.5,
// g = arithmetic mean.
ForestParams DefaultForestParams();

// Paper-default δs = 5% with day length units.
SignificanceParams DefaultSignificanceParams();

QueryEngineOptions DefaultEngineOptions();

// Generates `num_months` months, builds daily micro-clusters and the
// atypical cube.
std::unique_ptr<ExperimentContext> BuildContext(
    WorkloadScale scale, int num_months,
    const ForestParams& params = DefaultForestParams(), uint64_t seed = 1);

// One-line health summary of an ingest run, e.g.
//   "in=1200 ok=1180 reord=40 quar=20 (sensor=3 sev=8 excess=0 dup=5 late=4)"
// — the per-day health line printed by the online monitoring example.
std::string IngestHealthLine(const IngestStats& stats);

// One-line summary of a salvage read, e.g.
//   "salvage: 1 block skipped, 119000 records recovered, 1000 lost"
// (appends ", N duplicated" for replayed blocks and " [footer missing]"
// when the file was truncated).
std::string SalvageHealthLine(const storage::SalvageReport& report);

// One-line summary of a query's DataCompleteness annotation, e.g.
//   "completeness: 28 days in range, 27 with data, 1 degraded, 1000 records
//    lost, 12 quarantined" or "completeness: full".
std::string CompletenessLine(const DataCompleteness& completeness);

// Attributes a salvage read's skipped blocks to absolute days: day ->
// upper bound on records lost on that day.  Dataset files are ordered by
// (window, sensor) and written in fixed `block_records` blocks, so block i
// covers record indices [i*block_records, (i+1)*block_records) and each
// index maps to a window, hence a day.  The per-day tallies sum to
// blocks_skipped * block_records, which may exceed SalvageReport::
// records_lost when the final (short) block was damaged — a bound, not an
// exact count, which is the right polarity for feeding DayProvenance.
std::map<int, uint64_t> LostRecordsByDay(const storage::SalvageReport& report,
                                         const DatasetMeta& meta,
                                         uint32_t block_records);

}  // namespace analytics
}  // namespace atypical

#endif  // ATYPICAL_ANALYTICS_REPORT_H_
