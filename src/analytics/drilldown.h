// Drill-down navigation of the clustering tree (Fig. 10) and report
// assembly for the paper's Example 1 questions.
//
// Every merged macro-cluster records its two immediate children and the set
// of micro-cluster ids it integrates; with the forest's leaf level this is
// enough to decompose any analytical result back into its daily events.
#ifndef ATYPICAL_ANALYTICS_DRILLDOWN_H_
#define ATYPICAL_ANALYTICS_DRILLDOWN_H_

#include <string>
#include <vector>

#include "core/cluster.h"
#include "core/forest.h"
#include "cps/sensor_network.h"
#include "util/csv.h"

namespace atypical {
namespace analytics {

// One leaf of a macro-cluster: the daily micro-cluster and its share of the
// macro's severity.
struct DrilldownLeaf {
  const AtypicalCluster* micro = nullptr;
  int day = 0;
  double severity = 0.0;
  double share = 0.0;  // severity / macro severity
};

// Resolves a macro-cluster's micro ids against the forest's leaf level.
// Micros missing from the forest (e.g. out of the loaded range) are skipped.
// Leaves are ordered by day, then severity descending.
std::vector<DrilldownLeaf> ResolveLeaves(const AtypicalCluster& macro,
                                         const AtypicalForest& forest);

// Per-day severity profile of a macro-cluster (day -> summed leaf severity),
// covering [macro.first_day, macro.last_day].  Days without events are 0.
std::vector<double> DailySeverityProfile(const AtypicalCluster& macro,
                                         const AtypicalForest& forest);

// The answers to the paper's Example 1 questions for one cluster:
//   (1) where — top sensors; (2) when — onset and peak time of day;
//   (3) how serious — severity concentration.
struct ClusterReport {
  ClusterId id = 0;
  double severity = 0.0;
  int num_sensors = 0;
  int num_days_active = 0;
  std::vector<FeatureVector::Entry> top_sensors;  // (1)
  int onset_minute_of_day = 0;                    // (2) first ramp-up
  int peak_minute_of_day = 0;                     // (2) hottest window
  double peak_share = 0.0;                        // (3) peak window share
  std::string summary;                            // one-line rendering
};

struct ReportOptions {
  size_t top_sensors = 3;
  // Onset = first time-of-day window reaching this fraction of the peak.
  double onset_fraction = 0.2;
};

// Builds the report for a time-of-day-keyed cluster.
ClusterReport BuildClusterReport(const AtypicalCluster& cluster,
                                 const SensorNetwork& network,
                                 const TimeGrid& grid,
                                 const ReportOptions& options = {});

// Renders reports for the `limit` most severe clusters as a Table
// ("rank, severity, sensors, days, onset, peak, hottest sensor").
Table RenderTopClusters(const std::vector<AtypicalCluster>& clusters,
                        const SensorNetwork& network, const TimeGrid& grid,
                        size_t limit);

}  // namespace analytics
}  // namespace atypical

#endif  // ATYPICAL_ANALYTICS_DRILLDOWN_H_
