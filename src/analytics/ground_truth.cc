#include "analytics/ground_truth.h"

namespace atypical {
namespace analytics {

GroundTruth ComputeGroundTruth(const QueryResult& all_result) {
  GroundTruth gt;
  gt.threshold = all_result.threshold;
  for (const AtypicalCluster& cluster : all_result.clusters) {
    if (IsSignificant(cluster, all_result.threshold)) {
      gt.significant_mass += cluster.severity();
      for (ClusterId micro : cluster.micro_ids) {
        gt.significant_micros.insert(micro);
      }
      gt.significant.push_back(cluster);
    }
  }
  return gt;
}

}  // namespace analytics
}  // namespace atypical
