#include "analytics/metrics.h"

#include <unordered_map>

namespace atypical {
namespace analytics {

namespace {

double SeverityOf(const std::map<ClusterId, double>& micro_severity,
                  ClusterId micro) {
  const auto it = micro_severity.find(micro);
  return it == micro_severity.end() ? 0.0 : it->second;
}

}  // namespace

PrecisionRecall EvaluateMass(
    const QueryResult& result, const GroundTruth& gt,
    const std::map<ClusterId, double>& micro_severity) {
  PrecisionRecall pr;
  pr.returned_clusters = result.clusters.size();
  pr.true_significant = gt.significant.size();

  double returned_mass = 0.0;
  double significant_returned_mass = 0.0;
  for (const AtypicalCluster& cluster : result.clusters) {
    for (ClusterId micro : cluster.micro_ids) {
      const double severity = SeverityOf(micro_severity, micro);
      returned_mass += severity;
      if (gt.significant_micros.contains(micro)) {
        significant_returned_mass += severity;
      }
    }
  }
  pr.precision =
      returned_mass > 0.0 ? significant_returned_mass / returned_mass : 0.0;
  pr.recall = gt.significant_mass > 0.0
                  ? significant_returned_mass / gt.significant_mass
                  : 1.0;
  return pr;
}

PrecisionRecall EvaluateClusterMatch(
    const QueryResult& result, const GroundTruth& gt,
    const std::map<ClusterId, double>& micro_severity,
    const ClusterMatchParams& params) {
  PrecisionRecall pr;
  pr.returned_clusters = result.clusters.size();
  pr.true_significant = gt.significant.size();

  // micro id -> index of the ground-truth cluster owning it.
  std::unordered_map<ClusterId, size_t> owner;
  for (size_t g = 0; g < gt.significant.size(); ++g) {
    for (ClusterId micro : gt.significant[g].micro_ids) {
      owner.emplace(micro, g);
    }
  }

  std::vector<bool> gt_matched(gt.significant.size(), false);
  size_t matched_returned = 0;
  for (const AtypicalCluster& cluster : result.clusters) {
    // Shared severity mass per ground-truth cluster.
    std::unordered_map<size_t, double> shared;
    for (ClusterId micro : cluster.micro_ids) {
      const auto it = owner.find(micro);
      if (it != owner.end()) {
        shared[it->second] += SeverityOf(micro_severity, micro);
      }
    }
    bool matched = false;
    for (const auto& [g, mass] : shared) {
      if (mass >= params.overlap * gt.significant[g].severity()) {
        gt_matched[g] = true;
        matched = true;
      }
    }
    if (matched) ++matched_returned;
  }

  pr.precision = pr.returned_clusters > 0
                     ? static_cast<double>(matched_returned) /
                           static_cast<double>(pr.returned_clusters)
                     : 0.0;
  size_t recovered = 0;
  for (const bool m : gt_matched) {
    if (m) ++recovered;
  }
  pr.recall = pr.true_significant > 0
                  ? static_cast<double>(recovered) /
                        static_cast<double>(pr.true_significant)
                  : 1.0;
  return pr;
}

}  // namespace analytics
}  // namespace atypical
