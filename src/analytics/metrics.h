// Precision / recall of analytical query results against the ground truth.
//
// Two evaluation protocols:
//
//  * Mass-weighted (primary; used by the Fig. 18/19 reproductions):
//    precision = fraction of the returned clusters' severity mass that
//    belongs to true significant clusters; recall = fraction of the ground
//    truth's mass recovered.  Macro-clusters carry their source micro ids,
//    and All's macros partition the micro universe, so the overlap is
//    computed exactly on shared micro-cluster ids.
//
//  * Cluster-matching (secondary): a returned cluster matches a ground-truth
//    cluster G if it recovers at least `overlap` of G's severity; precision
//    counts matched returned clusters, recall counts matched ground-truth
//    clusters.
#ifndef ATYPICAL_ANALYTICS_METRICS_H_
#define ATYPICAL_ANALYTICS_METRICS_H_

#include <map>

#include "analytics/ground_truth.h"
#include "core/query.h"

namespace atypical {
namespace analytics {

struct PrecisionRecall {
  double precision = 0.0;
  double recall = 0.0;
  size_t returned_clusters = 0;
  size_t true_significant = 0;
};

// Mass-weighted evaluation.  `micro_severity` maps every in-range micro id
// to its severity (AtypicalForest::MicroSeverities).
PrecisionRecall EvaluateMass(const QueryResult& result, const GroundTruth& gt,
                             const std::map<ClusterId, double>& micro_severity);

struct ClusterMatchParams {
  double overlap = 0.5;  // fraction of G's severity a match must recover
};

PrecisionRecall EvaluateClusterMatch(
    const QueryResult& result, const GroundTruth& gt,
    const std::map<ClusterId, double>& micro_severity,
    const ClusterMatchParams& params = {});

}  // namespace analytics
}  // namespace atypical

#endif  // ATYPICAL_ANALYTICS_METRICS_H_
