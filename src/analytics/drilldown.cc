#include "analytics/drilldown.h"

#include <algorithm>
#include <map>

#include "util/logging.h"
#include "util/string_util.h"

namespace atypical {
namespace analytics {

std::vector<DrilldownLeaf> ResolveLeaves(const AtypicalCluster& macro,
                                         const AtypicalForest& forest) {
  // Index the forest's leaves once per call; macro micro-id lists are small
  // relative to the forest, so look up day-by-day instead.
  std::map<ClusterId, std::pair<const AtypicalCluster*, int>> by_id;
  for (int day : forest.Days()) {
    for (const AtypicalCluster& micro : forest.MicrosOfDay(day)) {
      by_id.emplace(micro.id, std::make_pair(&micro, day));
    }
  }

  std::vector<DrilldownLeaf> leaves;
  const double total = macro.severity();
  for (ClusterId id : macro.micro_ids) {
    const auto it = by_id.find(id);
    if (it == by_id.end()) continue;
    DrilldownLeaf leaf;
    leaf.micro = it->second.first;
    leaf.day = it->second.second;
    leaf.severity = leaf.micro->severity();
    leaf.share = total > 0.0 ? leaf.severity / total : 0.0;
    leaves.push_back(leaf);
  }
  std::sort(leaves.begin(), leaves.end(),
            [](const DrilldownLeaf& a, const DrilldownLeaf& b) {
              if (a.day != b.day) return a.day < b.day;
              return a.severity > b.severity;
            });
  return leaves;
}

std::vector<double> DailySeverityProfile(const AtypicalCluster& macro,
                                         const AtypicalForest& forest) {
  const int days = macro.last_day - macro.first_day + 1;
  CHECK_GT(days, 0);
  std::vector<double> profile(days, 0.0);
  for (const DrilldownLeaf& leaf : ResolveLeaves(macro, forest)) {
    if (leaf.day >= macro.first_day && leaf.day <= macro.last_day) {
      profile[leaf.day - macro.first_day] += leaf.severity;
    }
  }
  return profile;
}

ClusterReport BuildClusterReport(const AtypicalCluster& cluster,
                                 const SensorNetwork& network,
                                 const TimeGrid& grid,
                                 const ReportOptions& options) {
  CHECK(cluster.key_mode == TemporalKeyMode::kTimeOfDay)
      << "reports read TF keys as times of day";
  ClusterReport report;
  report.id = cluster.id;
  report.severity = cluster.severity();
  report.num_sensors = cluster.num_sensors();
  report.num_days_active = cluster.last_day - cluster.first_day + 1;
  report.top_sensors = cluster.spatial.TopEntries(options.top_sensors);

  if (!cluster.temporal.empty()) {
    const FeatureVector::Entry peak = cluster.temporal.Top();
    report.peak_minute_of_day =
        static_cast<int>(peak.key) * grid.window_minutes();
    report.peak_share =
        report.severity > 0.0 ? peak.severity / report.severity : 0.0;
    for (const FeatureVector::Entry& e : cluster.temporal.entries()) {
      if (e.severity >= options.onset_fraction * peak.severity) {
        report.onset_minute_of_day =
            static_cast<int>(e.key) * grid.window_minutes();
        break;
      }
    }
  }

  std::string where;
  if (!report.top_sensors.empty()) {
    const Sensor& s = network.sensor(report.top_sensors[0].key);
    where = StrPrintf("s%u@hw%u", report.top_sensors[0].key, s.highway);
  }
  report.summary = StrPrintf(
      "%.0f sensor-min over %d sensors, %d days; onset %s, peak %s at %s",
      report.severity, report.num_sensors, report.num_days_active,
      ClockLabel(report.onset_minute_of_day).c_str(),
      ClockLabel(report.peak_minute_of_day).c_str(), where.c_str());
  return report;
}

Table RenderTopClusters(const std::vector<AtypicalCluster>& clusters,
                        const SensorNetwork& network, const TimeGrid& grid,
                        size_t limit) {
  std::vector<const AtypicalCluster*> ranked;
  ranked.reserve(clusters.size());
  for (const AtypicalCluster& c : clusters) ranked.push_back(&c);
  std::sort(ranked.begin(), ranked.end(),
            [](const AtypicalCluster* a, const AtypicalCluster* b) {
              return a->severity() > b->severity();
            });
  if (ranked.size() > limit) ranked.resize(limit);

  Table table({"rank", "severity", "sensors", "days", "onset", "peak",
               "hottest sensor"});
  int rank = 0;
  for (const AtypicalCluster* c : ranked) {
    const ClusterReport report = BuildClusterReport(*c, network, grid);
    const std::string hottest =
        report.top_sensors.empty()
            ? "-"
            : StrPrintf("s%u (%.0f min)", report.top_sensors[0].key,
                        report.top_sensors[0].severity);
    table.AddRow({StrPrintf("%d", ++rank),
                  StrPrintf("%.0f", report.severity),
                  StrPrintf("%d", report.num_sensors),
                  StrPrintf("%d", report.num_days_active),
                  ClockLabel(report.onset_minute_of_day),
                  ClockLabel(report.peak_minute_of_day), hottest});
  }
  return table;
}

}  // namespace analytics
}  // namespace atypical
