#include "analytics/report.h"

#include "util/logging.h"
#include "util/string_util.h"

namespace atypical {
namespace analytics {

ForestParams DefaultForestParams() {
  ForestParams params;
  params.retrieval.delta_d_miles = 1.5;
  params.retrieval.delta_t_minutes = 15;
  params.retrieval.use_index = true;
  params.integration.delta_sim = 0.5;
  params.integration.g = BalanceFunction::kArithmeticMean;
  params.integration.use_candidate_index = true;
  return params;
}

SignificanceParams DefaultSignificanceParams() {
  SignificanceParams params;
  params.delta_s = 0.05;
  params.unit = LengthUnit::kDays;
  return params;
}

QueryEngineOptions DefaultEngineOptions() {
  QueryEngineOptions options;
  options.integration = DefaultForestParams().integration;
  options.significance = DefaultSignificanceParams();
  return options;
}

AnalyticalQuery ExperimentContext::WholeAreaQuery(int num_days) const {
  AnalyticalQuery query;
  query.area = network().bounds();
  query.days = DayRange{0, num_days - 1};
  return query;
}

QueryEngine ExperimentContext::MakeEngine(
    const QueryEngineOptions& options) const {
  return QueryEngine(&network(), &regions(), forest.get(), &atypical_cube,
                     options);
}

std::unique_ptr<ExperimentContext> BuildContext(WorkloadScale scale,
                                                int num_months,
                                                const ForestParams& params,
                                                uint64_t seed) {
  CHECK_GT(num_months, 0);
  auto ctx = std::make_unique<ExperimentContext>();
  ctx->workload = MakeWorkload(scale, seed);
  CHECK_LE(num_months, ctx->workload->num_months);
  ctx->forest_params = params;
  ctx->forest = std::make_unique<AtypicalForest>(
      ctx->workload->sensors.get(), ctx->workload->gen_config.time_grid,
      params);

  for (int month = 0; month < num_months; ++month) {
    std::vector<AtypicalRecord> records =
        ctx->workload->generator->GenerateMonthAtypical(month);
    ctx->forest->AddRecords(records);
    ctx->atypical_cube.MergeFrom(cube::BottomUpCube::FromAtypical(
        records, *ctx->workload->regions,
        ctx->workload->gen_config.time_grid));
    ctx->monthly_atypical.push_back(std::move(records));
  }
  return ctx;
}

std::string IngestHealthLine(const IngestStats& stats) {
  return StrPrintf(
      "in=%llu ok=%llu reord=%llu quar=%llu "
      "(sensor=%llu sev=%llu excess=%llu dup=%llu late=%llu)",
      (unsigned long long)stats.records_in, (unsigned long long)stats.accepted,
      (unsigned long long)stats.reordered,
      (unsigned long long)stats.quarantined(),
      (unsigned long long)stats.quarantined_unknown_sensor,
      (unsigned long long)stats.quarantined_bad_severity,
      (unsigned long long)stats.quarantined_excess_severity,
      (unsigned long long)stats.quarantined_duplicate,
      (unsigned long long)stats.quarantined_late);
}

std::string SalvageHealthLine(const storage::SalvageReport& report) {
  std::string line = StrPrintf(
      "salvage: %llu block%s skipped, %llu records recovered, %llu lost",
      (unsigned long long)report.blocks_skipped,
      report.blocks_skipped == 1 ? "" : "s",
      (unsigned long long)report.records_recovered,
      (unsigned long long)report.records_lost);
  if (report.records_duplicated > 0) {
    line += StrPrintf(", %llu duplicated",
                      (unsigned long long)report.records_duplicated);
  }
  if (report.footer_missing) line += " [footer missing]";
  return line;
}

std::string CompletenessLine(const DataCompleteness& completeness) {
  if (completeness.complete()) return "completeness: full";
  std::string line = StrPrintf(
      "completeness: %d days in range, %d with data, %d degraded, "
      "%llu records lost, %llu quarantined",
      completeness.days_in_range, completeness.days_with_data,
      completeness.days_degraded,
      (unsigned long long)completeness.records_lost,
      (unsigned long long)completeness.records_quarantined);
  if (!completeness.integration_converged) line += " [integration partial]";
  return line;
}

std::map<int, uint64_t> LostRecordsByDay(const storage::SalvageReport& report,
                                         const DatasetMeta& meta,
                                         uint32_t block_records) {
  CHECK_GT(block_records, 0u);
  CHECK_GT(meta.num_sensors, 0);
  const uint64_t records_per_day =
      static_cast<uint64_t>(meta.time_grid.WindowsPerDay()) *
      static_cast<uint64_t>(meta.num_sensors);
  std::map<int, uint64_t> lost_by_day;
  for (const uint64_t block : report.skipped_blocks) {
    const uint64_t first_record = block * block_records;
    for (uint64_t i = 0; i < block_records; ++i) {
      const int day =
          meta.first_day +
          static_cast<int>((first_record + i) / records_per_day);
      // A skipped block past the file's real extent (forged counts, torn
      // tails) still lands on the meta's last day rather than inventing
      // days outside the dataset.
      const int last_day = meta.first_day + meta.num_days - 1;
      lost_by_day[day <= last_day ? day : last_day] += 1;
    }
  }
  return lost_by_day;
}

}  // namespace analytics
}  // namespace atypical
