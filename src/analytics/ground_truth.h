// Ground truth for effectiveness evaluation (§V.B).
//
// The integrating-all strategy prunes nothing, so its results contain every
// significant cluster; the true significant clusters extracted from an All
// run are the ground truth against which Pru and Gui are scored.
#ifndef ATYPICAL_ANALYTICS_GROUND_TRUTH_H_
#define ATYPICAL_ANALYTICS_GROUND_TRUTH_H_

#include <unordered_set>
#include <vector>

#include "core/query.h"

namespace atypical {
namespace analytics {

struct GroundTruth {
  // The true significant macro-clusters (severity > threshold in the All
  // result).
  std::vector<AtypicalCluster> significant;
  // Micro-cluster ids composing them.  All's macro-clusters partition the
  // in-range micros, so membership in this set classifies every micro as
  // significant-mass or trivial-mass.
  std::unordered_set<ClusterId> significant_micros;
  // Total severity of those micros (== Σ severity of `significant`).
  double significant_mass = 0.0;
  double threshold = 0.0;
};

// Builds the ground truth from an All-strategy result (run without
// significance post-checking so the full macro set is visible).
GroundTruth ComputeGroundTruth(const QueryResult& all_result);

}  // namespace analytics
}  // namespace atypical

#endif  // ATYPICAL_ANALYTICS_GROUND_TRUTH_H_
