#include "serve/adaptive.h"

#include "obs/stats.h"
#include "util/logging.h"

namespace atypical {
namespace serve {

namespace {

// Preference order for exploration and tie-breaks: Gui (the paper's
// recommended strategy), then Pru, then All.
constexpr QueryStrategy kPreferenceOrder[] = {
    QueryStrategy::kGuided, QueryStrategy::kPrune, QueryStrategy::kAll};

}  // namespace

AdaptiveStrategySelector::AdaptiveStrategySelector(
    const AdaptiveOptions& options)
    : options_(options) {
  CHECK_GT(options.ewma_alpha, 0.0);
  CHECK_LE(options.ewma_alpha, 1.0);
}

QueryStrategy AdaptiveStrategySelector::ChooseStrategy() const {
  MutexLock lock(&mu_);
  // Exploration: any strategy below the sample floor gets priority, least
  // sampled first so all three fill evenly.
  QueryStrategy explore = QueryStrategy::kGuided;
  uint64_t fewest = options_.min_samples_per_strategy;
  bool exploring = false;
  for (QueryStrategy s : kPreferenceOrder) {
    const uint64_t n = stats_[IndexOf(s)].samples;
    if (n < fewest) {
      fewest = n;
      explore = s;
      exploring = true;
    }
  }
  if (exploring) return explore;

  QueryStrategy best = QueryStrategy::kGuided;
  double best_seconds = stats_[IndexOf(best)].ewma_seconds;
  for (QueryStrategy s : kPreferenceOrder) {
    const double seconds = stats_[IndexOf(s)].ewma_seconds;
    if (seconds < best_seconds) {
      best = s;
      best_seconds = seconds;
    }
  }
  return best;
}

void AdaptiveStrategySelector::ObserveCost(QueryStrategy strategy,
                                           const QueryCost& cost) {
  MutexLock lock(&mu_);
  StrategyStats& s = stats_[IndexOf(strategy)];
  if (s.samples == 0) {
    s.ewma_seconds = cost.seconds;
  } else {
    s.ewma_seconds = options_.ewma_alpha * cost.seconds +
                     (1.0 - options_.ewma_alpha) * s.ewma_seconds;
  }
  ++s.samples;
}

AdaptiveStrategySelector::StrategyStats AdaptiveStrategySelector::StatsFor(
    QueryStrategy strategy) const {
  MutexLock lock(&mu_);
  return stats_[IndexOf(strategy)];
}

}  // namespace serve
}  // namespace atypical
