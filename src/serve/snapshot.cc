#include "serve/snapshot.h"

#include <utility>

#include "obs/stats.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace atypical {
namespace serve {

std::shared_ptr<const ForestSnapshot> SnapshotStore::AcquireSnapshot() const {
  MutexLock lock(&mu_);
  return current_;
}

void SnapshotStore::PublishSnapshot(
    std::shared_ptr<const ForestSnapshot> snapshot) {
  CHECK(snapshot != nullptr);
  MutexLock lock(&mu_);
  if (current_ != nullptr) {
    CHECK_GT(snapshot->epoch, current_->epoch)
        << "snapshot epochs must be published in increasing order";
  }
  current_ = std::move(snapshot);
}

uint64_t SnapshotStore::current_epoch() const {
  MutexLock lock(&mu_);
  return current_ == nullptr ? 0 : current_->epoch;
}

ServingForest::ServingForest(const SensorNetwork* network,
                             const SpatialPartition* regions,
                             const TimeGrid& grid, const ForestParams& params,
                             const QueryEngineOptions& options)
    : network_(network),
      regions_(regions),
      options_(options),
      staging_(network, grid, params) {
  CHECK(regions != nullptr);
  // Publish an empty epoch 1 up front so AcquireSnapshot() never returns
  // nullptr: queries before the first data publish get empty answers, not a
  // reader-side null check.
  PublishSnapshot();
}

std::shared_ptr<const ForestSnapshot> ServingForest::PublishSnapshot() {
  static obs::Counter* const publishes =
      obs::Registry()->GetCounter("serve.snapshot.publishes");
  static obs::Gauge* const epoch_gauge =
      obs::Registry()->GetGauge("serve.snapshot.epoch");
  static obs::Histogram* const seconds =
      obs::Registry()->GetHistogram("serve.snapshot.publish_seconds");
  obs::TraceSpan span(seconds);

  auto snapshot = std::make_shared<const ForestSnapshot>(
      next_epoch_++, network_, regions_,
      std::make_shared<const AtypicalForest>(staging_),
      std::make_shared<const cube::BottomUpCube>(cube_), options_);
  published_version_ = staging_.version();
  store_.PublishSnapshot(snapshot);

  publishes->Add(1);
  epoch_gauge->Set(static_cast<int64_t>(snapshot->epoch));
  return snapshot;
}

}  // namespace serve
}  // namespace atypical
