// Snapshot isolation for concurrent query serving (DESIGN §16).
//
// The batch pipeline queries a mutable AtypicalForest single-threaded; a
// serving deployment has many reader threads answering Q(W, T) while the
// ingest side keeps adding days and re-materializing levels.  The contract
// here is epoch-swapped immutability:
//
//   * a ForestSnapshot is one frozen epoch — forest, cube, and a
//     QueryEngine bound to them, all const after construction;
//   * readers AcquireSnapshot() (a shared_ptr copy under a Mutex held for
//     nanoseconds) and then run queries without any synchronization at all
//     — nothing they touch can change;
//   * the single writer mutates a private staging forest/cube that no
//     reader can see, and PublishSnapshot() clones it into a fresh
//     immutable epoch and swaps the pointer.  Readers holding the old
//     epoch keep it alive (shared_ptr) and finish their queries against a
//     consistent state; new acquires see the new epoch.
//
// Readers never block writers and writers never block readers beyond the
// pointer swap; there is no reader-count bookkeeping to contend on.  The
// price is one model copy per publish, amortized by publish cadence (a
// day-batch install, not a per-record event).
#ifndef ATYPICAL_SERVE_SNAPSHOT_H_
#define ATYPICAL_SERVE_SNAPSHOT_H_

#include <cstdint>
#include <memory>

#include "core/forest.h"
#include "core/query.h"
#include "cube/cube.h"
#include "util/sync.h"
#include "util/thread_annotations.h"

namespace atypical {
namespace serve {

// One immutable epoch of serving state.  Everything a query touches hangs
// off this object, so a reader holding the shared_ptr needs no further
// synchronization; QueryEngine::Run is const against a const forest (the
// query-local id generator keeps results deterministic per epoch).
struct ForestSnapshot {
  ForestSnapshot(uint64_t epoch_in, const SensorNetwork* network,
                 const SpatialPartition* regions,
                 std::shared_ptr<const AtypicalForest> forest_in,
                 std::shared_ptr<const cube::BottomUpCube> cube_in,
                 const QueryEngineOptions& options)
      : epoch(epoch_in),
        forest(std::move(forest_in)),
        cube(std::move(cube_in)),
        engine(network, regions, forest.get(), cube.get(), options) {}

  const uint64_t epoch;
  const std::shared_ptr<const AtypicalForest> forest;
  const std::shared_ptr<const cube::BottomUpCube> cube;
  const QueryEngine engine;  // bound to forest/cube above
};

// The epoch swap point: holds the current snapshot behind a Mutex that both
// sides touch only for a shared_ptr copy.
class SnapshotStore {
 public:
  SnapshotStore() = default;
  SnapshotStore(const SnapshotStore&) = delete;
  SnapshotStore& operator=(const SnapshotStore&) = delete;

  // The current epoch's snapshot; nullptr before the first publish.
  std::shared_ptr<const ForestSnapshot> AcquireSnapshot() const;

  // Swaps in `snapshot` as the current epoch.  Epochs must be published in
  // increasing order (single writer).
  void PublishSnapshot(std::shared_ptr<const ForestSnapshot> snapshot);

  // Epoch of the current snapshot, 0 before the first publish.
  uint64_t current_epoch() const;

 private:
  mutable Mutex mu_;
  std::shared_ptr<const ForestSnapshot> current_ ATYPICAL_GUARDED_BY(mu_);
};

// Writer facade over a staging forest + cube and the snapshot store.
//
// Single-writer: the staging_*() mutators and PublishSnapshot() must be
// called from one thread (or be externally serialized); AcquireSnapshot()
// and current_epoch() are safe from any thread.  The staging state is never
// reachable by readers, so the writer needs no locks while clustering a
// day's records — only the publish itself synchronizes.
class ServingForest {
 public:
  ServingForest(const SensorNetwork* network, const SpatialPartition* regions,
                const TimeGrid& grid, const ForestParams& params,
                const QueryEngineOptions& options);

  // ---- writer side ----
  // The private staging forest/cube; mutate freely, then PublishSnapshot().
  AtypicalForest* staging_forest() { return &staging_; }
  cube::BottomUpCube* staging_cube() { return &cube_; }

  // Clones the staging state into a new immutable epoch and swaps it in.
  // Returns the published snapshot.
  std::shared_ptr<const ForestSnapshot> PublishSnapshot();

  // True when the staging forest mutated since the last publish (writer
  // thread only; cheap "should I publish" probe).
  bool HasUnpublishedChanges() const {
    return staging_.version() != published_version_;
  }

  // ---- reader side ----
  // Never nullptr: the constructor publishes an empty epoch 1.
  std::shared_ptr<const ForestSnapshot> AcquireSnapshot() const {
    return store_.AcquireSnapshot();
  }
  uint64_t current_epoch() const { return store_.current_epoch(); }

  const QueryEngineOptions& options() const { return options_; }

 private:
  const SensorNetwork* network_;
  const SpatialPartition* regions_;
  QueryEngineOptions options_;
  AtypicalForest staging_;
  cube::BottomUpCube cube_;
  uint64_t next_epoch_ = 1;
  uint64_t published_version_ = 0;  // staging_.version() at last publish
  SnapshotStore store_;
};

}  // namespace serve
}  // namespace atypical

#endif  // ATYPICAL_SERVE_SNAPSHOT_H_
