// The concurrent query front-end (DESIGN §16): snapshot acquisition, result
// caching and adaptive strategy selection behind one call.
//
//   ServeReply r = service.ServeQuery(query, ServeStrategy::kAuto, &scratch);
//
// ServeQuery is safe from any number of threads concurrently with the
// single writer publishing new epochs through the ServingForest.  The
// serving contract — property-tested and TSan-pounded — is that every reply
// is bit-identical to a single-threaded, uncached
// `reply.snapshot->engine.Run(query, reply.strategy)` (timings and the
// shared obs counters excepted): caching, adaptivity and concurrency are
// performance features, never answer-changing ones.
#ifndef ATYPICAL_SERVE_QUERY_SERVICE_H_
#define ATYPICAL_SERVE_QUERY_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <memory>

#include "core/query.h"
#include "serve/adaptive.h"
#include "serve/result_cache.h"
#include "serve/snapshot.h"

namespace atypical {
namespace serve {

// The query strategies a client may request: the engine's three, plus kAuto
// — let the service pick per query from what it has learned.
enum class ServeStrategy : uint8_t { kAll, kPrune, kGuided, kAuto };

const char* ServeStrategyName(ServeStrategy strategy);

// The engine strategy behind a ServeStrategy; dies on kAuto (which only the
// service can resolve).
QueryStrategy ToQueryStrategy(ServeStrategy strategy);

struct ServeOptions {
  // Result-cache capacity in entries; 0 disables caching.
  size_t cache_entries = 1024;
  AdaptiveOptions adaptive;
};

struct ServeReply {
  // The answer; shared and immutable (a cache hit aliases the stored copy).
  std::shared_ptr<const QueryResult> result;
  // The snapshot the answer was computed against.  Holding it here lets the
  // caller re-run the query against exactly this state (the bit-identity
  // tests do) and pins the epoch alive until the reply is dropped.
  std::shared_ptr<const ForestSnapshot> snapshot;
  // The engine strategy actually run (kAuto resolved).
  QueryStrategy strategy = QueryStrategy::kGuided;
  bool cache_hit = false;
};

// Stateless per query apart from the cache and the adaptive model; one
// instance serves all threads.
class QueryService {
 public:
  // `serving` must outlive the service.
  explicit QueryService(const ServingForest* serving,
                        const ServeOptions& options = {});
  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  // Answers Q(W, T) from the current epoch: acquire snapshot → resolve
  // strategy → probe cache → on miss, run the engine, feed the adaptive
  // model, store the result.  `scratch` is the caller thread's reusable
  // query scratch (one per worker; see QueryScratch).
  ServeReply ServeQuery(const AnalyticalQuery& query, ServeStrategy strategy,
                        QueryScratch* scratch);

  // Convenience overload with a call-local scratch.
  ServeReply ServeQuery(const AnalyticalQuery& query, ServeStrategy strategy);

  QueryResultCache::CacheTotals cache_totals() const { return cache_.totals(); }
  AdaptiveStrategySelector::StrategyStats strategy_stats(
      QueryStrategy strategy) const {
    return selector_.StatsFor(strategy);
  }
  const ServingForest* serving() const { return serving_; }

 private:
  const ServingForest* serving_;
  ServeOptions options_;
  QueryResultCache cache_;
  AdaptiveStrategySelector selector_;
  // Highest epoch any request has seen; advancing it triggers the lazy GC
  // of older epochs' cache entries.
  std::atomic<uint64_t> gc_epoch_{0};
};

}  // namespace serve
}  // namespace atypical

#endif  // ATYPICAL_SERVE_QUERY_SERVICE_H_
