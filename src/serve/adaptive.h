// Adaptive strategy selection for serving (DESIGN §16).
//
// The paper's evaluation (§V) shows no single strategy dominates: All is
// exact but quadratic in the inputs, Pru is fast but can miss macro-clusters
// built from individually-trivial micros, Gui tracks All's answers at a
// fraction of the cost when red zones are selective.  A serving deployment
// sees a stable query mix, so the selector learns from its own traffic:
// observe each strategy's QueryCost, keep an EWMA of its latency, and route
// kAuto queries to the current-cheapest strategy once every strategy has a
// minimum number of samples (exploring least-sampled strategies first until
// then).  Gui — the paper's recommended default — is the fallback whenever
// there is nothing to learn from yet.
#ifndef ATYPICAL_SERVE_ADAPTIVE_H_
#define ATYPICAL_SERVE_ADAPTIVE_H_

#include <array>
#include <cstdint>

#include "core/query.h"
#include "util/sync.h"
#include "util/thread_annotations.h"

namespace atypical {
namespace serve {

struct AdaptiveOptions {
  // Samples each strategy needs before its EWMA is trusted; until every
  // strategy has this many, ChooseStrategy explores the least-sampled one.
  uint64_t min_samples_per_strategy = 3;
  // EWMA smoothing: ewma ← α·sample + (1-α)·ewma.
  double ewma_alpha = 0.2;
};

// Thread-safe: ChooseStrategy and ObserveCost may race freely across
// serving threads.
class AdaptiveStrategySelector {
 public:
  explicit AdaptiveStrategySelector(
      const AdaptiveOptions& options = AdaptiveOptions());
  AdaptiveStrategySelector(const AdaptiveStrategySelector&) = delete;
  AdaptiveStrategySelector& operator=(const AdaptiveStrategySelector&) = delete;

  // The strategy a kAuto query should run now: the least-sampled strategy
  // while any is below min_samples_per_strategy (exploration, Gui first),
  // else the one with the lowest latency EWMA (ties prefer Gui, then Pru).
  QueryStrategy ChooseStrategy() const;

  // Feeds one executed query's cost back into the model.  Cache hits must
  // not be observed — they measure the cache, not the strategy.
  void ObserveCost(QueryStrategy strategy, const QueryCost& cost);

  struct StrategyStats {
    uint64_t samples = 0;
    double ewma_seconds = 0.0;
  };
  StrategyStats StatsFor(QueryStrategy strategy) const;

 private:
  static constexpr int kNumStrategies = 3;
  static int IndexOf(QueryStrategy s) { return static_cast<int>(s); }

  const AdaptiveOptions options_;
  mutable Mutex mu_;
  std::array<StrategyStats, kNumStrategies> stats_ ATYPICAL_GUARDED_BY(mu_);
};

}  // namespace serve
}  // namespace atypical

#endif  // ATYPICAL_SERVE_ADAPTIVE_H_
