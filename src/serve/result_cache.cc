#include "serve/result_cache.h"

#include "obs/stats.h"
#include "util/logging.h"

namespace atypical {
namespace serve {

namespace {

obs::Counter* HitsCounter() {
  static obs::Counter* const c = obs::Registry()->GetCounter("serve.cache.hits");
  return c;
}
obs::Counter* MissesCounter() {
  static obs::Counter* const c =
      obs::Registry()->GetCounter("serve.cache.misses");
  return c;
}
obs::Counter* EvictionsCounter() {
  static obs::Counter* const c =
      obs::Registry()->GetCounter("serve.cache.evictions");
  return c;
}
obs::Counter* InvalidationsCounter() {
  static obs::Counter* const c =
      obs::Registry()->GetCounter("serve.cache.invalidations");
  return c;
}
obs::Gauge* EntriesGauge() {
  static obs::Gauge* const g =
      obs::Registry()->GetGauge("serve.cache.entries");
  return g;
}

}  // namespace

QueryResultCache::QueryResultCache(size_t max_entries)
    : max_entries_(max_entries) {}

std::shared_ptr<const QueryResult> QueryResultCache::FindCached(
    const QueryCacheKey& key) {
  MutexLock lock(&mu_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    MissesCounter()->Add(1);
    return nullptr;
  }
  ++hits_;
  HitsCounter()->Add(1);
  // Refresh recency: splice the node to the front without reallocating.
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->result;
}

void QueryResultCache::StoreCached(const QueryCacheKey& key,
                                   std::shared_ptr<const QueryResult> result) {
  CHECK(result != nullptr);
  if (max_entries_ == 0) return;  // caching disabled
  MutexLock lock(&mu_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    // Deterministic engines make a re-store redundant but harmless (a racing
    // miss on the same key); keep the first result, refresh recency.
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Entry{key, std::move(result)});
  index_.emplace(key, lru_.begin());
  while (index_.size() > max_entries_) {
    const Entry& victim = lru_.back();
    index_.erase(victim.key);
    lru_.pop_back();
    ++evictions_;
    EvictionsCounter()->Add(1);
  }
  EntriesGauge()->Set(static_cast<int64_t>(index_.size()));
}

size_t QueryResultCache::DropStaleEpochs(uint64_t live_epoch) {
  MutexLock lock(&mu_);
  // Keys order by epoch first, so the stale entries are a prefix of the
  // index.
  size_t dropped = 0;
  for (auto it = index_.begin();
       it != index_.end() && it->first.epoch < live_epoch;) {
    lru_.erase(it->second);
    it = index_.erase(it);
    ++dropped;
  }
  if (dropped > 0) {
    invalidations_ += dropped;
    InvalidationsCounter()->Add(dropped);
    EntriesGauge()->Set(static_cast<int64_t>(index_.size()));
  }
  return dropped;
}

QueryResultCache::CacheTotals QueryResultCache::totals() const {
  MutexLock lock(&mu_);
  CacheTotals t;
  t.hits = hits_;
  t.misses = misses_;
  t.evictions = evictions_;
  t.invalidations = invalidations_;
  t.entries = index_.size();
  const uint64_t lookups = hits_ + misses_;
  if (lookups > 0) {
    t.hit_rate_percent =
        100.0 * static_cast<double>(hits_) / static_cast<double>(lookups);
  }
  return t;
}

}  // namespace serve
}  // namespace atypical
