// LRU cache of query results keyed by the full query identity and the
// snapshot epoch it was computed against (DESIGN §16).
//
// Correctness rests on two facts: (a) a snapshot is immutable, so a result
// computed at epoch E is valid for E forever, and (b) QueryEngine::Run is
// bit-deterministic per (query, forest state) — the query-local id
// generator (kQueryMacroIdBase) makes even result macro ids reproducible.
// The epoch in the key therefore makes staleness structurally impossible: a
// new publish changes the key, so old entries can never answer new-epoch
// queries.  Old-epoch entries are garbage, collected lazily by
// DropStaleEpochs() when the service notices an epoch advance.
#ifndef ATYPICAL_SERVE_RESULT_CACHE_H_
#define ATYPICAL_SERVE_RESULT_CACHE_H_

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <tuple>
#include <utility>

#include "core/query.h"
#include "util/sync.h"
#include "util/thread_annotations.h"

namespace atypical {
namespace serve {

// Everything that determines a query's answer: W, T, the significance
// density δs, the (resolved, never kAuto) strategy, and the snapshot epoch.
struct QueryCacheKey {
  double min_x = 0, min_y = 0, max_x = 0, max_y = 0;  // W
  int first_day = 0, last_day = 0;                    // T
  double delta_s = 0;                                 // significance density
  QueryStrategy strategy = QueryStrategy::kAll;
  uint64_t epoch = 0;

  static QueryCacheKey Make(const AnalyticalQuery& query, double delta_s,
                            QueryStrategy strategy, uint64_t epoch) {
    return QueryCacheKey{query.area.min_x, query.area.min_y, query.area.max_x,
                         query.area.max_y, query.days.first_day,
                         query.days.last_day,  delta_s, strategy, epoch};
  }

 private:
  auto Tie() const {
    return std::tie(epoch, first_day, last_day, min_x, min_y, max_x, max_y,
                    delta_s, strategy);
  }

 public:
  // Epoch leads the ordering so one epoch's entries are contiguous in the
  // index and DropStaleEpochs is a single range erase.
  friend bool operator<(const QueryCacheKey& a, const QueryCacheKey& b) {
    return a.Tie() < b.Tie();
  }
  friend bool operator==(const QueryCacheKey& a, const QueryCacheKey& b) {
    return a.Tie() == b.Tie();
  }
};

// Thread-safe LRU map from QueryCacheKey to an immutable, shared
// QueryResult.  Bounded by entry count; eviction is strict LRU.
// `max_entries == 0` disables caching (every find misses, stores are
// dropped) so callers can turn the cache off without branching.
class QueryResultCache {
 public:
  explicit QueryResultCache(size_t max_entries);
  QueryResultCache(const QueryResultCache&) = delete;
  QueryResultCache& operator=(const QueryResultCache&) = delete;

  // The cached result for `key`, or nullptr on miss.  A hit refreshes the
  // entry's LRU position.  Counts serve.cache.{hits,misses}.
  std::shared_ptr<const QueryResult> FindCached(const QueryCacheKey& key);

  // Inserts (or refreshes) `key`.  Evicts the least-recently-used entry
  // when full.  Counts serve.cache.evictions per evicted entry.
  void StoreCached(const QueryCacheKey& key,
                   std::shared_ptr<const QueryResult> result);

  // Drops every entry with key.epoch < live_epoch (their snapshots can no
  // longer be acquired, so the entries can never hit again).  Returns the
  // number dropped; counts serve.cache.invalidations.
  size_t DropStaleEpochs(uint64_t live_epoch);

  struct CacheTotals {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t invalidations = 0;
    size_t entries = 0;
    // hits / (hits + misses) in percent; 0 before any lookup.
    double hit_rate_percent = 0.0;
  };
  CacheTotals totals() const;

  size_t max_entries() const { return max_entries_; }

 private:
  struct Entry {
    QueryCacheKey key;
    std::shared_ptr<const QueryResult> result;
  };
  // Recency list, most-recent first; the index maps a key to its list node.
  using LruList = std::list<Entry>;
  using Index = std::map<QueryCacheKey, LruList::iterator>;

  const size_t max_entries_;
  mutable Mutex mu_;
  LruList lru_ ATYPICAL_GUARDED_BY(mu_);
  Index index_ ATYPICAL_GUARDED_BY(mu_);
  uint64_t hits_ ATYPICAL_GUARDED_BY(mu_) = 0;
  uint64_t misses_ ATYPICAL_GUARDED_BY(mu_) = 0;
  uint64_t evictions_ ATYPICAL_GUARDED_BY(mu_) = 0;
  uint64_t invalidations_ ATYPICAL_GUARDED_BY(mu_) = 0;
};

}  // namespace serve
}  // namespace atypical

#endif  // ATYPICAL_SERVE_RESULT_CACHE_H_
