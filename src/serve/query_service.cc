#include "serve/query_service.h"

#include <utility>

#include "obs/stats.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace atypical {
namespace serve {

const char* ServeStrategyName(ServeStrategy strategy) {
  switch (strategy) {
    case ServeStrategy::kAll:
      return "All";
    case ServeStrategy::kPrune:
      return "Pru";
    case ServeStrategy::kGuided:
      return "Gui";
    case ServeStrategy::kAuto:
      return "Auto";
  }
  return "unknown";
}

QueryStrategy ToQueryStrategy(ServeStrategy strategy) {
  switch (strategy) {
    case ServeStrategy::kAll:
      return QueryStrategy::kAll;
    case ServeStrategy::kPrune:
      return QueryStrategy::kPrune;
    case ServeStrategy::kGuided:
      return QueryStrategy::kGuided;
    case ServeStrategy::kAuto:
      break;
  }
  LOG(FATAL) << "kAuto resolves inside the service, not here";
  return QueryStrategy::kGuided;
}

QueryService::QueryService(const ServingForest* serving,
                           const ServeOptions& options)
    : serving_(serving),
      options_(options),
      cache_(options.cache_entries),
      selector_(options.adaptive) {
  CHECK(serving != nullptr);
}

ServeReply QueryService::ServeQuery(const AnalyticalQuery& query,
                                    ServeStrategy strategy) {
  QueryScratch scratch;
  return ServeQuery(query, strategy, &scratch);
}

ServeReply QueryService::ServeQuery(const AnalyticalQuery& query,
                                    ServeStrategy strategy,
                                    QueryScratch* scratch) {
  static obs::Counter* const requests =
      obs::Registry()->GetCounter("serve.requests");
  static obs::Counter* const auto_requests =
      obs::Registry()->GetCounter("serve.auto_requests");
  static obs::Histogram* const request_seconds =
      obs::Registry()->GetHistogram("serve.request_seconds");
  obs::TraceSpan span(request_seconds);
  requests->Add(1);

  ServeReply reply;
  reply.snapshot = serving_->AcquireSnapshot();
  const ForestSnapshot& snap = *reply.snapshot;

  // Resolve kAuto before building the cache key, so an auto-routed query
  // and the same query issued with the explicit strategy share one entry.
  if (strategy == ServeStrategy::kAuto) {
    auto_requests->Add(1);
    reply.strategy = selector_.ChooseStrategy();
  } else {
    reply.strategy = ToQueryStrategy(strategy);
  }

  // Epoch advance: lazily collect cache entries from epochs no new request
  // can key into.  The epoch inside the key already guarantees correctness;
  // this only reclaims memory.
  uint64_t seen = gc_epoch_.load(std::memory_order_relaxed);
  if (snap.epoch > seen &&
      gc_epoch_.compare_exchange_strong(seen, snap.epoch,
                                        std::memory_order_relaxed)) {
    cache_.DropStaleEpochs(snap.epoch);
  }

  const QueryCacheKey key = QueryCacheKey::Make(
      query, snap.engine.options().significance.delta_s, reply.strategy,
      snap.epoch);
  if (std::shared_ptr<const QueryResult> cached = cache_.FindCached(key)) {
    reply.result = std::move(cached);
    reply.cache_hit = true;
    return reply;
  }

  auto result = std::make_shared<QueryResult>(
      snap.engine.Run(query, reply.strategy, scratch));
  // Cache hits skip this on purpose: a hit's cost measures the cache, not
  // the strategy.
  selector_.ObserveCost(reply.strategy, result->cost);
  reply.result = std::move(result);
  cache_.StoreCached(key, reply.result);
  return reply;
}

}  // namespace serve
}  // namespace atypical
