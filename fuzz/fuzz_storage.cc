// Structure-aware fuzzer for the storage salvage path and the ingest guard.
//
// Each iteration derives a damaged variant of a known-good dataset image via
// storage::BlockMutator (seeded, format-aware mutations: scrambled header
// fields, forged counts, payload flips, spliced/replayed blocks, torn
// tails), then drives the full degraded-read pipeline under invariants:
//
//   I1  nothing ever crashes — Open may fail, salvage may lose data, but
//       control always returns with a Status;
//   I2  if salvage Open succeeds, ReadAll succeeds (salvage never turns
//       block damage into an error);
//   I3  every record salvage returns is bit-exact some pristine record —
//       a CRC-failed block never leaks a record;
//   I4  records_recovered equals the number of records returned;
//   I5  a clean() SalvageReport implies the exact pristine sequence;
//   I6  a strict (non-salvage) read that returns kOk implies the pristine
//       record sequence AND a clean salvage report for the same bytes —
//       strict never reports success on damage salvage would flag;
//   I7  feeding the salvaged records to RobustStreamingEventBuilder always
//       reconciles (records_in == accepted + quarantined), even when a
//       replayed block drives the watermark backwards.
//
// A failure prints one line:  FAIL seed=<s> mutations=<m>: <why> [trail]
// and the pair (seed, mutations) reproduces it exactly — that is the corpus
// format of fuzz/corpus/regressions.txt (replayed via --corpus, wired into
// ctest).
//
// Usage:
//   fuzz_storage [--iterations N] [--seed S] [--max-mutations M]
//                [--records R] [--block-records B] [--verbose]
//   fuzz_storage --corpus FILE [--records R] [--block-records B]
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "analytics/report.h"
#include "core/ingest.h"
#include "gen/workload.h"
#include "storage/block_mutator.h"
#include "storage/reader.h"
#include "storage/writer.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace atypical {
namespace {

using storage::AppliedMutation;
using storage::BlockMutator;
using storage::DatasetReader;
using storage::ReaderOptions;
using storage::SalvageReport;

std::string EncodeKey(const Reading& r) {
  uint8_t buf[storage::kWireRecordBytes];
  storage::EncodeRecord(r, buf);
  return std::string(reinterpret_cast<const char*>(buf),  // NOLINT: byte I/O
                     sizeof(buf));
}

class FuzzHarness {
 public:
  FuzzHarness(size_t num_records, uint32_t block_records, bool verbose)
      : verbose_(verbose) {
    workload_ = MakeWorkload(WorkloadScale::kTiny, 4);
    grid_ = workload_->gen_config.time_grid;
    const Dataset full = workload_->generator->GenerateMonth(0);
    CHECK_GE(full.readings().size(), num_records);
    std::vector<Reading> slice(full.readings().begin(),
                               full.readings().begin() +
                                   static_cast<ptrdiff_t>(num_records));
    pristine_dataset_ = Dataset(full.meta(), std::move(slice));
    for (const Reading& r : pristine_dataset_.readings()) {
      pristine_keys_.insert(EncodeKey(r));
    }

    path_ = StrPrintf("fuzz_storage_tmp_%u.atyp",
                      static_cast<unsigned>(block_records));
    storage::WriterOptions options;
    options.block_records = block_records;
    CHECK_OK(WriteDataset(pristine_dataset_, path_, options).status());
    std::ifstream in(path_, std::ios::binary);
    std::vector<uint8_t> pristine_bytes(
        (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
    mutator_ = std::make_unique<BlockMutator>(std::move(pristine_bytes));
    CHECK_GE(mutator_->num_blocks(), 3u);
  }

  ~FuzzHarness() { std::remove(path_.c_str()); }

  // Runs one (seed, mutation count) case through every invariant.  Returns
  // true when all hold; prints a FAIL line otherwise.
  bool CheckOne(uint64_t seed, int mutations) {
    std::vector<AppliedMutation> applied;
    const std::vector<uint8_t> image =
        mutator_->Mutate(seed, mutations, &applied);
    for (const AppliedMutation& m : applied) ++kind_counts_[m.kind];
    {
      std::ofstream out(path_, std::ios::binary | std::ios::trunc);
      out.write(reinterpret_cast<const char*>(image.data()),  // NOLINT: byte I/O
                static_cast<std::streamsize>(image.size()));
    }

    const auto fail = [&](const std::string& why) {
      std::fprintf(stderr, "FAIL seed=%llu mutations=%d: %s [%s]\n",
                   (unsigned long long)seed, mutations, why.c_str(),
                   DescribeMutations(applied).c_str());
      return false;
    };

    // ---- salvage pass ----
    ReaderOptions salvage_options;
    salvage_options.salvage = true;
    SalvageReport report;
    bool salvage_opened = false;
    std::vector<Reading> salvaged;
    {
      Result<DatasetReader> reader = DatasetReader::Open(path_, salvage_options);
      if (reader.ok()) {
        salvage_opened = true;
        Result<Dataset> got = reader->ReadAll();
        report = reader->salvage_report();
        if (!got.ok()) {
          // I2: salvage degraded reads never fail after a successful Open.
          return fail("salvage ReadAll failed: " + got.status().ToString());
        }
        salvaged = got.value().readings();
      }
    }
    if (salvage_opened) {
      if (report.records_recovered != salvaged.size()) {
        return fail(StrPrintf("I4: records_recovered=%llu but %zu returned",
                              (unsigned long long)report.records_recovered,
                              salvaged.size()));
      }
      if (report.blocks_skipped != report.skipped_blocks.size()) {
        return fail("I4: blocks_skipped disagrees with skipped_blocks list");
      }
      for (const Reading& r : salvaged) {
        if (!pristine_keys_.contains(EncodeKey(r))) {
          // I3: a record that matches no pristine record leaked out of a
          // corrupt block.
          return fail(StrPrintf("I3: non-pristine record (sensor=%u window=%u)",
                                r.sensor, r.window));
        }
      }
      if (report.clean() && !MatchesPristine(salvaged)) {
        return fail("I5: clean report but records differ from pristine");
      }

      // I7: the ingest guard survives whatever salvage produced.
      if (!IngestReconciles(salvaged)) {
        return fail("I7: ingest stats do not reconcile");
      }
    }

    // ---- strict pass (differential oracle) ----
    const Result<Dataset> strict = storage::ReadDataset(path_);
    if (strict.ok()) {
      if (!MatchesPristine(strict.value().readings())) {
        return fail("I6: strict read ok but records differ from pristine");
      }
      if (!salvage_opened) {
        return fail("I6: strict read ok but salvage Open failed");
      }
      if (!report.clean()) {
        return fail("I6: strict read ok but salvage report is not clean: " +
                    analytics::SalvageHealthLine(report));
      }
    }

    if (verbose_) {
      std::printf("ok seed=%llu mutations=%d [%s] %s\n",
                  (unsigned long long)seed, mutations,
                  DescribeMutations(applied).c_str(),
                  salvage_opened ? analytics::SalvageHealthLine(report).c_str()
                                 : "(open failed)");
    }
    return true;
  }

  void PrintKindCoverage() const {
    std::printf("mutation coverage:\n");
    for (const auto& [kind, count] : kind_counts_) {
      std::printf("  %-18s %llu\n", storage::MutationKindName(kind),
                  (unsigned long long)count);
    }
  }

 private:
  bool MatchesPristine(const std::vector<Reading>& got) const {
    const std::vector<Reading>& want = pristine_dataset_.readings();
    if (got.size() != want.size()) return false;
    for (size_t i = 0; i < got.size(); ++i) {
      if (EncodeKey(got[i]) != EncodeKey(want[i])) return false;
    }
    return true;
  }

  bool IngestReconciles(const std::vector<Reading>& readings) {
    ClusterIdGenerator ids(1);
    size_t clusters = 0;
    IngestOptions options;
    options.policy = IngestPolicy::kBuffer;
    RobustStreamingEventBuilder guard(
        workload_->sensors.get(), grid_,
        analytics::DefaultForestParams().retrieval, &ids,
        [&](AtypicalCluster) { ++clusters; }, options);
    for (const Reading& r : readings) {
      if (!r.is_atypical()) continue;
      (void)guard.Add(AtypicalRecord{r.sensor, r.window, r.atypical_minutes,
                                     r.true_event});  // verdict irrelevant here
    }
    guard.Flush();
    return guard.stats().Reconciles();
  }

  bool verbose_;
  std::unique_ptr<Workload> workload_;
  TimeGrid grid_;
  Dataset pristine_dataset_;
  std::unordered_set<std::string> pristine_keys_;
  std::string path_;
  std::unique_ptr<BlockMutator> mutator_;
  std::map<storage::MutationKind, uint64_t> kind_counts_;
};

// Corpus line format: "<seed> <mutations>"; '#' starts a comment.
int ReplayCorpus(FuzzHarness* harness, const std::string& corpus_path) {
  std::ifstream corpus(corpus_path);
  if (!corpus) {
    std::fprintf(stderr, "cannot open corpus: %s\n", corpus_path.c_str());
    return 2;
  }
  int entries = 0;
  int failures = 0;
  std::string line;
  while (std::getline(corpus, line)) {
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    unsigned long long seed = 0;
    int mutations = 0;
    if (std::sscanf(line.c_str(), "%llu %d", &seed, &mutations) != 2) {
      continue;  // blank or comment-only line
    }
    ++entries;
    if (!harness->CheckOne(seed, mutations)) ++failures;
  }
  std::printf("corpus replay: %d entries, %d failures\n", entries, failures);
  if (entries == 0) {
    std::fprintf(stderr, "corpus had no entries: %s\n", corpus_path.c_str());
    return 2;
  }
  return failures == 0 ? 0 : 1;
}

int FuzzMain(int argc, char** argv) {
  FlagParser flags(argc, argv);
  const int iterations = static_cast<int>(flags.GetInt("iterations", 1000));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  const int max_mutations = static_cast<int>(flags.GetInt("max-mutations", 4));
  const size_t num_records =
      static_cast<size_t>(flags.GetInt("records", 1500));
  const uint32_t block_records =
      static_cast<uint32_t>(flags.GetInt("block-records", 96));
  const std::string corpus = flags.GetString("corpus", "");
  const bool verbose = flags.GetBool("verbose", false);
  if (!flags.ok()) {
    std::fprintf(stderr, "%s\n", flags.error().c_str());
    return 2;
  }
  CHECK_GT(max_mutations, 0);

  FuzzHarness harness(num_records, block_records, verbose);
  if (!corpus.empty()) return ReplayCorpus(&harness, corpus);

  for (int i = 0; i < iterations; ++i) {
    const uint64_t case_seed = seed + static_cast<uint64_t>(i);
    const int mutations = 1 + i % max_mutations;
    if (!harness.CheckOne(case_seed, mutations)) {
      std::fprintf(stderr,
                   "reproduce: fuzz_storage --corpus <(echo \"%llu %d\")\n",
                   (unsigned long long)case_seed, mutations);
      return 1;
    }
  }
  std::printf("fuzz_storage: %d iterations, 0 failures\n", iterations);
  harness.PrintKindCoverage();
  return 0;
}

}  // namespace
}  // namespace atypical

int main(int argc, char** argv) { return atypical::FuzzMain(argc, argv); }
