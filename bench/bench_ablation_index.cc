// Ablation: the spatio-temporal grid index in Algorithm 1.
//
// Proposition 1 claims O(N + n²) without an index and near-linear with one.
// This bench grows the record count and reports both paths' times and
// neighbor-check counts; the unindexed column should grow quadratically,
// the indexed one roughly linearly.
#include "analytics/report.h"
#include "bench/bench_util.h"
#include "core/event_retrieval.h"
#include "gen/workload.h"
#include "util/stopwatch.h"

int main() {
  using namespace atypical;
  bench::PrintHeader(
      "Ablation: grid index (Proposition 1)",
      "event retrieval cost vs record count, with and without the index",
      "unindexed time grows ~n², indexed ~n");

  const auto workload = MakeWorkload(WorkloadScale::kSmall);
  const TimeGrid grid = workload->gen_config.time_grid;
  // One month of records, truncated to increasing prefixes.
  const std::vector<AtypicalRecord> all =
      workload->generator->GenerateMonthAtypical(0);

  Table table({"records", "indexed (ms)", "brute (ms)", "speedup",
               "indexed checks", "brute checks"});
  for (const size_t n : {1000ul, 2000ul, 4000ul, 8000ul, 16000ul}) {
    if (n > all.size()) break;
    std::vector<AtypicalRecord> records(all.begin(), all.begin() + n);
    RetrievalParams params = analytics::DefaultForestParams().retrieval;
    ClusterIdGenerator ids;

    params.use_index = true;
    RetrievalStats indexed;
    Stopwatch t1;
    RetrieveMicroClusters(records, *workload->sensors, grid, params, &ids,
                          &indexed);
    const double indexed_ms = t1.ElapsedMillis();

    params.use_index = false;
    RetrievalStats brute;
    Stopwatch t2;
    RetrieveMicroClusters(records, *workload->sensors, grid, params, &ids,
                          &brute);
    const double brute_ms = t2.ElapsedMillis();

    table.AddRow({StrPrintf("%zu", n), StrPrintf("%.2f", indexed_ms),
                  StrPrintf("%.2f", brute_ms),
                  StrPrintf("%.0fx", brute_ms / std::max(indexed_ms, 1e-6)),
                  StrPrintf("%zu", indexed.neighbor_checks),
                  StrPrintf("%zu", brute.neighbor_checks)});
  }
  bench::EmitTable("ablation_index", table);
  return 0;
}
