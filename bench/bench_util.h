// Shared plumbing for the figure-reproduction benches.
//
// Every bench prints (a) what it reproduces and which shape the paper
// reports, (b) an aligned results table, and (c) writes the table as CSV to
// bench_results/ so the series can be re-plotted.
#ifndef ATYPICAL_BENCH_BENCH_UTIL_H_
#define ATYPICAL_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <sys/stat.h>

#include "obs/snapshot.h"
#include "obs/stats.h"
#include "obs/trace.h"
#include "util/csv.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace atypical {
namespace bench {

// Times a bench region through the same obs histograms the pipeline uses:
// each measurement also lands in the "bench.<name>.seconds" histogram, so a
// --stats-style snapshot of a bench run shows its timing distribution next
// to the pipeline's own.  Under ATYPICAL_NO_STATS the histogram is a no-op
// stub but the clock still runs, so the returned readings are unchanged.
class BenchTimer {
 public:
  explicit BenchTimer(const std::string& name)
      : span_(obs::Registry()->GetHistogram("bench." + name + ".seconds")) {}

  // Both stop the span (idempotent) and return the elapsed reading.
  double StopSeconds() { return span_.Stop(); }
  double StopMillis() { return span_.Stop() * 1e3; }

 private:
  obs::TraceSpan span_;
};

// Number of synthetic months used by year-scale benches; override with
// ATYPICAL_BENCH_MONTHS for quicker runs.
inline int BenchMonths(int default_months = 12) {
  const char* env = std::getenv("ATYPICAL_BENCH_MONTHS");
  if (env == nullptr) return default_months;
  const int64_t v = ParseInt64(env);
  return v > 0 ? static_cast<int>(v) : default_months;
}

inline void PrintHeader(const std::string& figure,
                        const std::string& description,
                        const std::string& paper_shape) {
  std::printf("==================================================\n");
  std::printf("%s — %s\n", figure.c_str(), description.c_str());
  std::printf("paper shape: %s\n", paper_shape.c_str());
  std::printf("==================================================\n");
}

inline void EmitTable(const std::string& name, const Table& table) {
  std::printf("\n%s\n", table.ToAlignedString().c_str());
  ::mkdir("bench_results", 0755);
  const std::string path = "bench_results/" + name + ".csv";
  const Status s = table.WriteCsv(path);
  if (s.ok()) {
    std::printf("(csv written to %s)\n", path.c_str());
  } else {
    std::printf("(csv not written: %s)\n", s.ToString().c_str());
  }
}

// Benches accept the same --stats[=text|json] [--stats-out FILE] contract
// as atypical_cli, so CI can snapshot their counters (e.g. the similarity
// pruning counters) with the schema checker.  Returns 0 on success, 2 on a
// malformed flag value or unwritable --stats-out path; no-op without
// --stats.
inline int DumpStatsIfRequested(const FlagParser& flags) {
  if (!flags.Has("stats")) return 0;
  const std::string mode = flags.GetString("stats", "text");
  std::string rendered;
  const obs::StatsSnapshot snapshot = obs::Registry()->Snapshot();
  if (mode == "json") {
    rendered = snapshot.ToJson();
  } else if (mode == "text" || mode == "true") {  // bare --stats
    rendered = snapshot.ToText();
  } else {
    std::fprintf(stderr, "--stats expects text or json, got: %s\n",
                 mode.c_str());
    return 2;
  }
  const std::string out_path = flags.GetString("stats-out", "");
  if (out_path.empty()) {
    std::fputs(rendered.c_str(), stdout);
    return 0;
  }
  std::ofstream out(out_path, std::ios::trunc);
  out << rendered;
  if (!out) {
    std::fprintf(stderr, "cannot write --stats-out file: %s\n",
                 out_path.c_str());
    return 2;
  }
  return 0;
}

}  // namespace bench
}  // namespace atypical

#endif  // ATYPICAL_BENCH_BENCH_UTIL_H_
