// Shared plumbing for the figure-reproduction benches.
//
// Every bench prints (a) what it reproduces and which shape the paper
// reports, (b) an aligned results table, and (c) writes the table as CSV to
// bench_results/ so the series can be re-plotted.
#ifndef ATYPICAL_BENCH_BENCH_UTIL_H_
#define ATYPICAL_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <string>
#include <sys/stat.h>
#include <vector>

#include "obs/snapshot.h"
#include "obs/stats.h"
#include "obs/trace.h"
#include "util/csv.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace atypical {
namespace bench {

// Times a bench region through the same obs histograms the pipeline uses:
// each measurement also lands in the "bench.<name>.seconds" histogram, so a
// --stats-style snapshot of a bench run shows its timing distribution next
// to the pipeline's own.  Under ATYPICAL_NO_STATS the histogram is a no-op
// stub but the clock still runs, so the returned readings are unchanged.
class BenchTimer {
 public:
  explicit BenchTimer(const std::string& name)
      : span_(obs::Registry()->GetHistogram("bench." + name + ".seconds")) {}

  // Both stop the span (idempotent) and return the elapsed reading.
  double StopSeconds() { return span_.Stop(); }
  double StopMillis() { return span_.Stop() * 1e3; }

 private:
  obs::TraceSpan span_;
};

// Number of synthetic months used by year-scale benches; override with
// ATYPICAL_BENCH_MONTHS for quicker runs.
inline int BenchMonths(int default_months = 12) {
  const char* env = std::getenv("ATYPICAL_BENCH_MONTHS");
  if (env == nullptr) return default_months;
  const int64_t v = ParseInt64(env);
  return v > 0 ? static_cast<int>(v) : default_months;
}

inline void PrintHeader(const std::string& figure,
                        const std::string& description,
                        const std::string& paper_shape) {
  std::printf("==================================================\n");
  std::printf("%s — %s\n", figure.c_str(), description.c_str());
  std::printf("paper shape: %s\n", paper_shape.c_str());
  std::printf("==================================================\n");
}

// Median of the raw samples; the summary stores both so plots can show
// spread while CI compares one number.
inline double MedianSeconds(std::vector<double> samples) {
  CHECK(!samples.empty());
  std::sort(samples.begin(), samples.end());
  const size_t n = samples.size();
  return n % 2 == 1 ? samples[n / 2]
                    : 0.5 * (samples[n / 2 - 1] + samples[n / 2]);
}

// Machine-readable companion to EmitTable's CSV: series name → raw timing
// samples plus their median, and a flat counters map.  Written to
// bench_results/<bench>_summary.json (schema_version 1, schema
// scripts/bench_summary_schema.json, validated by
// scripts/check_bench_summary.py in the bench-smoke CI job), so tooling
// consumes one stable format instead of scraping bench stdout.
class BenchSummary {
 public:
  explicit BenchSummary(std::string bench) : bench_(std::move(bench)) {}

  void AddSample(const std::string& series, double seconds) {
    series_[series].push_back(seconds);
  }
  void AddCounter(const std::string& name, uint64_t value) {
    counters_[name] = value;
  }

  void WriteJson() const {
    ::mkdir("bench_results", 0755);
    const std::string path = "bench_results/" + bench_ + "_summary.json";
    std::string out = "{\n  \"schema_version\": 1,\n  \"bench\": ";
    AppendJsonString(bench_, &out);
    out += ",\n  \"series\": {";
    bool first = true;
    for (const auto& [name, samples] : series_) {
      out += first ? "\n" : ",\n";
      first = false;
      out += "    ";
      AppendJsonString(name, &out);
      out += StrPrintf(": {\"median_seconds\": %.9g, \"samples\": [",
                       MedianSeconds(samples));
      for (size_t i = 0; i < samples.size(); ++i) {
        out += StrPrintf(i == 0 ? "%.9g" : ", %.9g", samples[i]);
      }
      out += "]}";
    }
    out += first ? "},\n" : "\n  },\n";
    out += "  \"counters\": {";
    first = true;
    for (const auto& [name, value] : counters_) {
      out += first ? "\n" : ",\n";
      first = false;
      out += "    ";
      AppendJsonString(name, &out);
      out += StrPrintf(": %llu", (unsigned long long)value);
    }
    out += first ? "}\n}\n" : "\n  }\n}\n";
    std::ofstream file(path, std::ios::trunc);
    file << out;
    if (file) {
      std::printf("(summary written to %s)\n", path.c_str());
    } else {
      std::printf("(summary not written: cannot open %s)\n", path.c_str());
    }
  }

 private:
  static void AppendJsonString(const std::string& s, std::string* out) {
    out->push_back('"');
    for (const char c : s) {
      if (c == '"' || c == '\\') out->push_back('\\');
      if (static_cast<unsigned char>(c) < 0x20) {
        *out += StrPrintf("\\u%04x", c);
      } else {
        out->push_back(c);
      }
    }
    out->push_back('"');
  }

  std::string bench_;
  std::map<std::string, std::vector<double>> series_;  // seconds
  std::map<std::string, uint64_t> counters_;
};

inline void EmitTable(const std::string& name, const Table& table) {
  std::printf("\n%s\n", table.ToAlignedString().c_str());
  ::mkdir("bench_results", 0755);
  const std::string path = "bench_results/" + name + ".csv";
  const Status s = table.WriteCsv(path);
  if (s.ok()) {
    std::printf("(csv written to %s)\n", path.c_str());
  } else {
    std::printf("(csv not written: %s)\n", s.ToString().c_str());
  }
}

// Benches accept the same --stats[=text|json] [--stats-out FILE] contract
// as atypical_cli, so CI can snapshot their counters (e.g. the similarity
// pruning counters) with the schema checker.  Returns 0 on success, 2 on a
// malformed flag value or unwritable --stats-out path; no-op without
// --stats.
inline int DumpStatsIfRequested(const FlagParser& flags) {
  if (!flags.Has("stats")) return 0;
  const std::string mode = flags.GetString("stats", "text");
  std::string rendered;
  const obs::StatsSnapshot snapshot = obs::Registry()->Snapshot();
  if (mode == "json") {
    rendered = snapshot.ToJson();
  } else if (mode == "text" || mode == "true") {  // bare --stats
    rendered = snapshot.ToText();
  } else {
    std::fprintf(stderr, "--stats expects text or json, got: %s\n",
                 mode.c_str());
    return 2;
  }
  const std::string out_path = flags.GetString("stats-out", "");
  if (out_path.empty()) {
    std::fputs(rendered.c_str(), stdout);
    return 0;
  }
  std::ofstream out(out_path, std::ios::trunc);
  out << rendered;
  if (!out) {
    std::fprintf(stderr, "cannot write --stats-out file: %s\n",
                 out_path.c_str());
    return 2;
  }
  return 0;
}

}  // namespace bench
}  // namespace atypical

#endif  // ATYPICAL_BENCH_BENCH_UTIL_H_
