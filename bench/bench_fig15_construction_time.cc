// Fig. 15 reproduction: offline model-construction time vs number of
// datasets for the four systems of §V.A:
//   PR — pre-processing: scan the raw on-disk dataset, select atypical
//        records (shared by all models, runs once);
//   OC — original CubeView: bottom-up cube over ALL readings (reads the raw
//        dataset too);
//   MC — modified CubeView: bottom-up cube over atypical records only;
//   AC — atypical clusters: Algorithm 1 over atypical records.
//
// Times are cumulative over the datasets used, as in the paper.
#include <cstdio>

#include "bench/bench_util.h"
#include "core/event_retrieval.h"
#include "analytics/report.h"
#include "cube/cube.h"
#include "gen/workload.h"
#include "storage/reader.h"
#include "storage/writer.h"

int main() {
  using namespace atypical;
  const int months = bench::BenchMonths();
  bench::PrintHeader(
      "Fig. 15", "construction time vs # of datasets (seconds, cumulative)",
      "MC and AC an order of magnitude faster than OC; PR close to OC "
      "(both scan the raw data)");

  const auto workload = MakeWorkload(WorkloadScale::kSmall);
  const TimeGrid grid = workload->gen_config.time_grid;
  const RetrievalParams retrieval =
      analytics::DefaultForestParams().retrieval;
  ClusterIdGenerator ids;

  Table table({"# datasets", "PR (s)", "OC (s)", "MC (s)", "AC (s)"});
  double pr_total = 0.0;
  double oc_total = 0.0;
  double mc_total = 0.0;
  double ac_total = 0.0;

  for (int month = 0; month < months; ++month) {
    const Dataset dataset = workload->generator->GenerateMonth(month);
    const std::string path =
        StrPrintf("/tmp/atypical_fig15_m%d.atyp", month);
    CHECK_OK(storage::WriteDataset(dataset, path).status());

    // PR: one full scan of the stored raw data selecting atypical records.
    bench::BenchTimer pr_timer("fig15.pr");
    std::vector<AtypicalRecord> atypical;
    {
      Result<storage::DatasetReader> reader =
          storage::DatasetReader::Open(path);
      CHECK_OK(reader.status());
      const Result<int64_t> scanned =
          reader->ScanAtypical([&](const AtypicalRecord& r) {
            atypical.push_back(r);
          });
      CHECK_OK(scanned.status());
    }
    pr_total += pr_timer.StopSeconds();

    // OC: read the raw dataset back and aggregate every reading.
    bench::BenchTimer oc_timer("fig15.oc");
    {
      Result<Dataset> raw = storage::ReadDataset(path);
      CHECK_OK(raw.status());
      cube::BottomUpCube oc =
          cube::BottomUpCube::FromReadings(*raw, *workload->regions);
      (void)oc;  // timing the build; the cube itself is discarded
    }
    oc_total += oc_timer.StopSeconds();

    // MC: aggregate only the pre-selected atypical records.
    bench::BenchTimer mc_timer("fig15.mc");
    {
      cube::BottomUpCube mc = cube::BottomUpCube::FromAtypical(
          atypical, *workload->regions, grid);
      (void)mc;  // timing the build; the cube itself is discarded
    }
    mc_total += mc_timer.StopSeconds();

    // AC: Algorithm 1 over the atypical records.
    bench::BenchTimer ac_timer("fig15.ac");
    {
      const auto micros = RetrieveMicroClusters(atypical, *workload->sensors,
                                                grid, retrieval, &ids);
      (void)micros;  // timing the clustering; output discarded
    }
    ac_total += ac_timer.StopSeconds();

    std::remove(path.c_str());
    table.AddRow({StrPrintf("%d", month + 1), StrPrintf("%.3f", pr_total),
                  StrPrintf("%.3f", oc_total), StrPrintf("%.3f", mc_total),
                  StrPrintf("%.3f", ac_total)});
  }
  bench::EmitTable("fig15_construction_time", table);
  std::printf("note: OC/PR scan all %d-month raw data (with disk I/O); MC/AC "
              "touch only the ~3%% atypical slice.\n",
              months);
  return 0;
}
