// Ablation: partial materialization of the atypical forest.
//
// The paper materializes only daily micro-clusters and integrates online
// (§IV); larger deployments can pre-compute weekly macro-clusters and answer
// month queries by integrating ~4 week-level inputs instead of hundreds of
// day-level ones.  This bench compares both plans: latency and whether the
// significant-cluster severities agree.
#include <algorithm>

#include "analytics/report.h"
#include "bench/bench_util.h"
#include "core/integration.h"
#include "core/significance.h"
#include "core/temporal_key.h"
#include "util/stopwatch.h"

int main() {
  using namespace atypical;
  bench::PrintHeader(
      "Ablation: forest materialization level",
      "month-scale integration from day micros vs materialized week macros",
      "week-level inputs cut online integration cost; severity mass is "
      "conserved either way (Property 2)");

  const int months = bench::BenchMonths(2);
  const auto ctx = analytics::BuildContext(WorkloadScale::kSmall, months);
  const IntegrationParams integration = ctx->forest_params.integration;
  const SignificanceParams sig = analytics::DefaultSignificanceParams();
  const TimeGrid& grid = ctx->time_grid();

  Stopwatch materialize_timer;
  ctx->forest->MaterializeWeeks();
  const double materialize_ms = materialize_timer.ElapsedMillis();

  Table table({"month", "day inputs", "from-days (ms)", "week inputs",
               "from-weeks (ms)", "mass match", "sig match"});
  for (int month = 0; month < months; ++month) {
    const DayRange days{month * ctx->days_per_month(),
                        (month + 1) * ctx->days_per_month() - 1};
    const double threshold = SignificanceThreshold(
        sig, days, grid, ctx->network().num_sensors());

    // Plan A: integrate the day-level micro-clusters.
    std::vector<AtypicalCluster> day_inputs;
    for (const AtypicalCluster* micro : ctx->forest->MicrosInRange(days)) {
      day_inputs.push_back(
          WithTemporalKeyMode(*micro, grid, TemporalKeyMode::kTimeOfDay));
    }
    const size_t day_count = day_inputs.size();
    ClusterIdGenerator ids_a(1u << 20);
    Stopwatch plan_a;
    const auto from_days =
        IntegrateClusters(std::move(day_inputs), integration, &ids_a);
    const double plan_a_ms = plan_a.ElapsedMillis();

    // Plan B: integrate the materialized week-level macro-clusters.
    std::vector<AtypicalCluster> week_inputs;
    for (int week = days.first_day / 7; week * 7 <= days.last_day; ++week) {
      if (!ctx->forest->HasWeek(week)) continue;
      for (const AtypicalCluster& macro : ctx->forest->MacrosOfWeek(week)) {
        week_inputs.push_back(macro);
      }
    }
    const size_t week_count = week_inputs.size();
    ClusterIdGenerator ids_b(1u << 21);
    Stopwatch plan_b;
    const auto from_weeks =
        IntegrateClusters(std::move(week_inputs), integration, &ids_b);
    const double plan_b_ms = plan_b.ElapsedMillis();

    // Severity mass must agree exactly (algebraic features); the
    // significant sets should agree closely (hard clustering may split
    // borderline clusters differently).
    double mass_a = 0.0;
    double mass_b = 0.0;
    size_t sig_a = 0;
    size_t sig_b = 0;
    for (const auto& c : from_days) {
      mass_a += c.severity();
      if (IsSignificant(c, threshold)) ++sig_a;
    }
    for (const auto& c : from_weeks) {
      mass_b += c.severity();
      if (IsSignificant(c, threshold)) ++sig_b;
    }

    table.AddRow({StrPrintf("%d", month + 1), StrPrintf("%zu", day_count),
                  StrPrintf("%.2f", plan_a_ms), StrPrintf("%zu", week_count),
                  StrPrintf("%.2f", plan_b_ms),
                  std::abs(mass_a - mass_b) < 1e-6 ? "yes" : "NO",
                  StrPrintf("%zu vs %zu", sig_a, sig_b)});
  }
  bench::EmitTable("ablation_materialization", table);
  std::printf("(one-time weekly materialization cost: %.1f ms)\n",
              materialize_ms);
  return 0;
}
