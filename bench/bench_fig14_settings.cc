// Fig. 14 reproduction: the experiment-settings table — one row per monthly
// dataset with sensor count, reading count and atypical fraction, plus the
// parameter defaults used throughout.  The paper's PeMS datasets are
// replaced by the synthetic workload (see DESIGN.md §2); the row structure
// and the 2–5% atypical band are what must match.
#include "bench/bench_util.h"
#include "gen/workload.h"

int main() {
  using namespace atypical;
  const int months = bench::BenchMonths();
  bench::PrintHeader(
      "Fig. 14", "experiment settings and datasets",
      "12 monthly datasets, ~2.3%-4% atypical data, fixed sensor fleet");

  const auto workload = MakeWorkload(WorkloadScale::kSmall);
  Table table({"dataset", "days", "sensors", "readings", "atypical%"});
  int64_t total_readings = 0;
  for (int month = 0; month < months; ++month) {
    const DatasetMeta meta = workload->generator->MetaForMonth(month);
    const auto atypical = workload->generator->GenerateMonthAtypical(month);
    const double fraction = static_cast<double>(atypical.size()) /
                            static_cast<double>(meta.ExpectedReadings());
    total_readings += meta.ExpectedReadings();
    table.AddRow({meta.name, StrPrintf("%d", meta.num_days),
                  StrPrintf("%d", meta.num_sensors),
                  StrPrintf("%.1fM",
                            static_cast<double>(meta.ExpectedReadings()) / 1e6),
                  StrPrintf("%.1f%%", fraction * 100.0)});
  }
  bench::EmitTable("fig14_datasets", table);
  std::printf("total readings across %d months: %.1fM "
              "(paper: 428M over 54 GB; scaled per DESIGN.md)\n",
              months, static_cast<double>(total_readings) / 1e6);

  Table params({"parameter", "range", "default"});
  params.AddRow({"severity threshold δs", "2% - 20%", "5%"});
  params.AddRow({"distance threshold δd", "1.5 - 24 mile", "1.5 mile"});
  params.AddRow({"time interval threshold δt", "15 - 80 min", "15 min"});
  params.AddRow({"similarity threshold δsim", "0.1 - 1", "0.5"});
  params.AddRow({"balance function g", "max/min/avg/geo/har", "avg"});
  bench::EmitTable("fig14_parameters", params);
  return 0;
}
