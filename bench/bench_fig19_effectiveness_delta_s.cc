// Fig. 19 reproduction: precision / recall vs severity threshold δs at a
// fixed 14-day query range.
//
// Paper shapes: precision drops as δs grows (fewer clusters clear the bar);
// Pru's recall *rises* with δs (very severe clusters are built from big
// micro-clusters that beforehand pruning keeps).
#include "analytics/ground_truth.h"
#include "analytics/metrics.h"
#include "analytics/report.h"
#include "bench/bench_util.h"

int main() {
  using namespace atypical;
  bench::PrintHeader(
      "Fig. 19", "precision / recall vs δs (query range fixed at 14 days)",
      "precision drops with larger δs; Pru recall increases with δs");

  const auto ctx = analytics::BuildContext(WorkloadScale::kSmall,
                                           bench::BenchMonths(1));
  Table table({"δs", "prec All", "prec Pru", "prec Gui", "recall All",
               "recall Pru", "recall Gui", "#sig", "Pru cluster-recall"});
  for (const double delta_s : {0.02, 0.05, 0.10, 0.15, 0.20}) {
    QueryEngineOptions options = analytics::DefaultEngineOptions();
    options.significance.delta_s = delta_s;
    const QueryEngine engine = ctx->MakeEngine(options);
    const AnalyticalQuery query = ctx->WholeAreaQuery(14);

    const QueryResult all = engine.Run(query, QueryStrategy::kAll);
    const QueryResult pru = engine.Run(query, QueryStrategy::kPrune);
    const QueryResult gui = engine.Run(query, QueryStrategy::kGuided);
    const analytics::GroundTruth gt = analytics::ComputeGroundTruth(all);
    const auto severities = ctx->forest->MicroSeverities(query.days);
    const auto pr_all = analytics::EvaluateMass(all, gt, severities);
    const auto pr_pru = analytics::EvaluateMass(pru, gt, severities);
    const auto pr_gui = analytics::EvaluateMass(gui, gt, severities);
    // Cluster-level recall, the granularity behind the paper's observation
    // that Pru "is unlikely to miss the macro-clusters with very high
    // severities": at large δs the ground truth shrinks to the mega
    // clusters, which Pru always recovers.
    const auto cm_pru =
        analytics::EvaluateClusterMatch(pru, gt, severities);

    table.AddRow(
        {StrPrintf("%.0f%%", delta_s * 100),
         StrPrintf("%.3f", pr_all.precision),
         StrPrintf("%.3f", pr_pru.precision),
         StrPrintf("%.3f", pr_gui.precision),
         StrPrintf("%.3f", pr_all.recall), StrPrintf("%.3f", pr_pru.recall),
         StrPrintf("%.3f", pr_gui.recall),
         StrPrintf("%zu", gt.significant.size()),
         StrPrintf("%.3f", cm_pru.recall)});
  }
  bench::EmitTable("fig19_effectiveness_delta_s", table);
  return 0;
}
