// Fig. 21 reproduction: average severity of the significant monthly
// macro-clusters as the similarity threshold δsim sweeps 0.1..1.0, for all
// five balance functions g.
//
// Paper shapes: max integrates the most (highest average severity), min is
// the most conservative; severity falls sharply as δsim grows; δsim ≈ 0.5
// sits at the knee (the paper's recommended setting).
#include "analytics/report.h"
#include "bench/bench_util.h"
#include "core/event_retrieval.h"
#include "core/integration.h"
#include "core/significance.h"
#include "core/temporal_key.h"
#include "gen/workload.h"

int main() {
  using namespace atypical;
  bench::PrintHeader(
      "Fig. 21", "avg severity of significant clusters vs δsim per g",
      "max > avg > geo > har > min; severity decays with δsim; knee ~0.5");

  const int months = bench::BenchMonths(6);
  const auto workload = MakeWorkload(WorkloadScale::kSmall);
  const TimeGrid grid = workload->gen_config.time_grid;
  const SignificanceParams sig = analytics::DefaultSignificanceParams();
  const double month_threshold = SignificanceThreshold(
      sig, DayRange{0, workload->gen_config.days_per_month - 1}, grid,
      workload->sensors->num_sensors());

  // Micro-cluster retrieval does not depend on δsim/g: do it once per month.
  ClusterIdGenerator ids;
  std::vector<std::vector<AtypicalCluster>> monthly_micros;
  for (int m = 0; m < months; ++m) {
    std::vector<AtypicalCluster> micros = RetrieveMicroClusters(
        workload->generator->GenerateMonthAtypical(m), *workload->sensors,
        grid, analytics::DefaultForestParams().retrieval, &ids);
    for (AtypicalCluster& c : micros) {
      c = WithTemporalKeyMode(c, grid, TemporalKeyMode::kTimeOfDay);
    }
    monthly_micros.push_back(std::move(micros));
  }

  const BalanceFunction functions[] = {
      BalanceFunction::kMin, BalanceFunction::kHarmonicMean,
      BalanceFunction::kGeometricMean, BalanceFunction::kArithmeticMean,
      BalanceFunction::kMax};

  Table table({"δsim", "min", "har", "geo", "avg", "max"});
  for (int step = 1; step <= 10; ++step) {
    const double delta_sim = step / 10.0;
    std::vector<std::string> row = {StrPrintf("%.1f", delta_sim)};
    for (const BalanceFunction g : functions) {
      IntegrationParams params;
      params.delta_sim = delta_sim;
      params.g = g;
      double severity_sum = 0.0;
      int significant = 0;
      for (const auto& micros : monthly_micros) {
        const std::vector<AtypicalCluster> macros =
            IntegrateClusters(micros, params, &ids);
        for (const AtypicalCluster& c : macros) {
          if (IsSignificant(c, month_threshold)) {
            severity_sum += c.severity();
            ++significant;
          }
        }
      }
      row.push_back(significant > 0
                        ? StrPrintf("%.0f", severity_sum / significant)
                        : "-");
    }
    table.AddRow(std::move(row));
  }
  bench::EmitTable("fig21_balance_functions", table);
  std::printf("(values: average severity in sensor-minutes of significant "
              "monthly clusters, %d months; δs = 5%%)\n",
              months);
  return 0;
}
