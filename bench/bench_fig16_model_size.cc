// Fig. 16 reproduction: constructed model size vs number of datasets for
//   MC — modified CubeView cube (atypical data only; smallest),
//   AC — atypical clusters (all SF/TF features; ~0.5-1% of AE in the paper),
//   OC — original CubeView cube (all readings),
//   AE — the raw atypical events themselves (records; largest of the
//        atypical-side representations).
#include "analytics/report.h"
#include "bench/bench_util.h"
#include "core/event_retrieval.h"
#include "cube/cube.h"
#include "gen/workload.h"

int main() {
  using namespace atypical;
  const int months = bench::BenchMonths();
  bench::PrintHeader(
      "Fig. 16", "constructed model size vs # of datasets (KB, cumulative)",
      "MC smallest; AC stores full spatial+temporal features at ~0.5-1% of "
      "AE; OC grows with all data");

  const auto workload = MakeWorkload(WorkloadScale::kSmall);
  const TimeGrid grid = workload->gen_config.time_grid;
  const RetrievalParams retrieval =
      analytics::DefaultForestParams().retrieval;
  ClusterIdGenerator ids;

  cube::BottomUpCube oc;
  cube::BottomUpCube mc;
  uint64_t ac_bytes = 0;
  uint64_t ae_bytes = 0;

  Table table(
      {"# datasets", "MC (KB)", "AC (KB)", "OC (KB)", "AE (KB)", "AC/AE"});
  for (int month = 0; month < months; ++month) {
    const Dataset dataset = workload->generator->GenerateMonth(month);
    const std::vector<AtypicalRecord> atypical =
        dataset.ExtractAtypicalRecords();

    oc.MergeFrom(cube::BottomUpCube::FromReadings(dataset,
                                                  *workload->regions));
    mc.MergeFrom(cube::BottomUpCube::FromAtypical(atypical,
                                                  *workload->regions, grid));
    for (const AtypicalCluster& c : RetrieveMicroClusters(
             atypical, *workload->sensors, grid, retrieval, &ids)) {
      ac_bytes += c.ByteSize();
    }
    // AE: the atypical events stored raw — every record with its event
    // grouping (record payload dominates).
    ae_bytes += atypical.size() * sizeof(AtypicalRecord);

    table.AddRow({StrPrintf("%d", month + 1),
                  StrPrintf("%.0f", static_cast<double>(mc.ByteSize()) / 1024.0),
                  StrPrintf("%.0f", static_cast<double>(ac_bytes) / 1024.0),
                  StrPrintf("%.0f", static_cast<double>(oc.ByteSize()) / 1024.0),
                  StrPrintf("%.0f", static_cast<double>(ae_bytes) / 1024.0),
                  StrPrintf("%.1f%%", 100.0 * static_cast<double>(ac_bytes) /
                                          static_cast<double>(ae_bytes))});
  }
  bench::EmitTable("fig16_model_size", table);
  std::printf(
      "note: the reproduced shape is {MC, AC} << AE << OC.  AC/AE lands near "
      "40%% rather than the paper's 0.5-1%% because laptop-scale events hold "
      "far fewer records per (sensor, window) feature than 4,076-sensor "
      "PeMS events; AC here even undercuts MC, whose four materialized "
      "roll-up levels dominate at this scale.\n");
  return 0;
}
