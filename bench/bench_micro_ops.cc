// Operation-level micro-benchmarks (google-benchmark): the primitive costs
// behind Propositions 1-3 — feature merges, similarity, event retrieval
// with/without the index, cube aggregation, record codecs.
#include <benchmark/benchmark.h>

#include "analytics/report.h"
#include "core/event_retrieval.h"
#include "core/integration.h"
#include "core/merge.h"
#include "core/similarity.h"
#include "cube/cube.h"
#include "gen/workload.h"
#include "storage/format.h"
#include "util/random.h"

namespace atypical {
namespace {

FeatureVector RandomFeature(int size, uint32_t key_space, Rng& rng) {
  FeatureVector f;
  for (int i = 0; i < size; ++i) {
    f.Add(static_cast<uint32_t>(rng.UniformInt(uint64_t{key_space})),
          rng.Uniform(1.0, 10.0));
  }
  return f;
}

AtypicalCluster RandomCluster(int size, uint32_t key_space, Rng& rng,
                              ClusterIdGenerator* ids) {
  AtypicalCluster c;
  c.id = ids->Next();
  c.micro_ids = {c.id};
  c.spatial = RandomFeature(size, key_space, rng);
  c.temporal = RandomFeature(size, key_space, rng);
  return c;
}

void BM_FeatureVectorMerge(benchmark::State& state) {
  Rng rng(1);
  const int size = static_cast<int>(state.range(0));
  const FeatureVector a = RandomFeature(size, 4 * size, rng);
  const FeatureVector b = RandomFeature(size, 4 * size, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(FeatureVector::Merge(a, b));
  }
  state.SetItemsProcessed(state.iterations() * 2 * size);
}
BENCHMARK(BM_FeatureVectorMerge)->Arg(8)->Arg(64)->Arg(512)->Arg(4096);

void BM_Similarity(benchmark::State& state) {
  Rng rng(2);
  ClusterIdGenerator ids;
  const int size = static_cast<int>(state.range(0));
  const AtypicalCluster a = RandomCluster(size, 2 * size, rng, &ids);
  const AtypicalCluster b = RandomCluster(size, 2 * size, rng, &ids);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        Similarity(a, b, BalanceFunction::kArithmeticMean));
  }
}
BENCHMARK(BM_Similarity)->Arg(8)->Arg(64)->Arg(512);

void BM_MergeClusters(benchmark::State& state) {
  Rng rng(3);
  ClusterIdGenerator ids;
  const int size = static_cast<int>(state.range(0));
  const AtypicalCluster a = RandomCluster(size, 2 * size, rng, &ids);
  const AtypicalCluster b = RandomCluster(size, 2 * size, rng, &ids);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MergeClusters(a, b, &ids));
  }
}
BENCHMARK(BM_MergeClusters)->Arg(8)->Arg(64)->Arg(512);

// Shared workload for retrieval/cube benchmarks.
struct RetrievalFixture {
  std::unique_ptr<Workload> workload = MakeWorkload(WorkloadScale::kTiny, 51);
  std::vector<AtypicalRecord> records =
      workload->generator->GenerateMonthAtypical(0);
};

RetrievalFixture& Fixture() {
  static RetrievalFixture* fixture = new RetrievalFixture();
  return *fixture;
}

void BM_EventRetrievalIndexed(benchmark::State& state) {
  RetrievalFixture& f = Fixture();
  std::vector<AtypicalRecord> records = f.records;
  records.resize(std::min<size_t>(records.size(), state.range(0)));
  RetrievalParams params = analytics::DefaultForestParams().retrieval;
  params.use_index = true;
  for (auto _ : state) {
    ClusterIdGenerator ids;
    benchmark::DoNotOptimize(
        RetrieveMicroClusters(records, *f.workload->sensors,
                              f.workload->gen_config.time_grid, params, &ids));
  }
  state.SetItemsProcessed(state.iterations() * records.size());
}
BENCHMARK(BM_EventRetrievalIndexed)->Arg(200)->Arg(500)->Arg(1000);

void BM_EventRetrievalBruteForce(benchmark::State& state) {
  RetrievalFixture& f = Fixture();
  std::vector<AtypicalRecord> records = f.records;
  records.resize(std::min<size_t>(records.size(), state.range(0)));
  RetrievalParams params = analytics::DefaultForestParams().retrieval;
  params.use_index = false;
  for (auto _ : state) {
    ClusterIdGenerator ids;
    benchmark::DoNotOptimize(
        RetrieveMicroClusters(records, *f.workload->sensors,
                              f.workload->gen_config.time_grid, params, &ids));
  }
  state.SetItemsProcessed(state.iterations() * records.size());
}
BENCHMARK(BM_EventRetrievalBruteForce)->Arg(200)->Arg(500)->Arg(1000);

void BM_Integration(benchmark::State& state) {
  Rng rng(4);
  ClusterIdGenerator ids;
  std::vector<AtypicalCluster> micros;
  for (int i = 0; i < state.range(0); ++i) {
    micros.push_back(RandomCluster(8, 64, rng, &ids));
  }
  const IntegrationParams params;
  for (auto _ : state) {
    ClusterIdGenerator out_ids(100000);
    benchmark::DoNotOptimize(IntegrateClusters(micros, params, &out_ids));
  }
  state.SetItemsProcessed(state.iterations() * micros.size());
}
BENCHMARK(BM_Integration)->Arg(50)->Arg(200)->Arg(800);

void BM_CubeBuildAtypical(benchmark::State& state) {
  RetrievalFixture& f = Fixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(cube::BottomUpCube::FromAtypical(
        f.records, *f.workload->regions, f.workload->gen_config.time_grid));
  }
  state.SetItemsProcessed(state.iterations() * f.records.size());
}
BENCHMARK(BM_CubeBuildAtypical);

void BM_CubeF(benchmark::State& state) {
  RetrievalFixture& f = Fixture();
  const cube::BottomUpCube cube = cube::BottomUpCube::FromAtypical(
      f.records, *f.workload->regions, f.workload->gen_config.time_grid);
  std::vector<RegionId> regions;
  for (RegionId r = 0;
       r < static_cast<RegionId>(f.workload->regions->num_regions()); ++r) {
    regions.push_back(r);
  }
  const DayRange days{0, 6};
  for (auto _ : state) {
    benchmark::DoNotOptimize(cube.F(regions, days));
  }
}
BENCHMARK(BM_CubeF);

void BM_RecordCodec(benchmark::State& state) {
  Reading r;
  r.sensor = 42;
  r.window = 12345;
  r.speed_mph = 61.5f;
  r.occupancy = 0.3f;
  r.atypical_minutes = 4.0f;
  r.true_event = 99;
  uint8_t buf[storage::kWireRecordBytes];
  for (auto _ : state) {
    storage::EncodeRecord(r, buf);
    benchmark::DoNotOptimize(storage::DecodeRecord(buf));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RecordCodec);

void BM_Crc32Block(benchmark::State& state) {
  std::vector<uint8_t> block(64 * 1024);
  Rng rng(5);
  for (uint8_t& b : block) b = static_cast<uint8_t>(rng.Next64());
  for (auto _ : state) {
    benchmark::DoNotOptimize(storage::Crc32(block.data(), block.size()));
  }
  state.SetBytesProcessed(state.iterations() * block.size());
}
BENCHMARK(BM_Crc32Block);

}  // namespace
}  // namespace atypical

BENCHMARK_MAIN();
