// Incremental vs. per-epoch batch integration (core/incremental_integration.h).
//
// The online integrator folds each arriving micro-cluster into the current
// macro partition with one candidate cascade — amortized cost per arrival is
// one focus-chain scan, so a whole stream costs about as much as ONE batch
// fixpoint.  The alternative without it is re-running `IntegrateClusters`
// from scratch every epoch to refresh the live picture, which costs a full
// O(k²) scan per epoch and O(n³/E) overall.  Rows report both per-event
// costs plus the one-shot `Finalize()` that re-derives the canonical batch
// partition; the batch row's result is CHECKed bit-identical to Finalize's
// on every row, so the speedup never buys a different answer.
#include <algorithm>

#include "bench/bench_util.h"
#include "core/incremental_integration.h"
#include "core/integration.h"
#include "util/random.h"

namespace atypical {
namespace {

// Same scan-heavy population as bench_integration: small key space keeps
// candidate lists long, δsim = 0.7 keeps merges rare, so the cost being
// amortized is candidate scanning, not merge bookkeeping.
std::vector<AtypicalCluster> MakeMicros(int count, uint32_t key_space,
                                        int keys_per_cluster, uint64_t seed,
                                        ClusterIdGenerator* ids) {
  Rng rng(seed);
  std::vector<AtypicalCluster> out;
  out.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    AtypicalCluster c;
    c.id = ids->Next();
    c.micro_ids = {c.id};
    for (int j = 0; j < keys_per_cluster; ++j) {
      const double severity = rng.Uniform(0.5, 15.0);
      c.spatial.Add(static_cast<uint32_t>(rng.UniformInt(uint64_t{key_space})),
                    severity);
      c.temporal.Add(
          static_cast<uint32_t>(rng.UniformInt(uint64_t{key_space})),
          severity);
    }
    out.push_back(std::move(c));
  }
  return out;
}

struct IncrementalRun {
  double accept_ms = 0;    // all Accept() cascades
  double finalize_ms = 0;  // one canonical re-derivation
  std::vector<AtypicalCluster> macros;
};

IncrementalRun RunIncremental(const std::vector<AtypicalCluster>& micros,
                              const IntegrationParams& params) {
  IncrementalRun run;
  ClusterIdGenerator ids(1);
  IncrementalIntegrator integrator(params, &ids);
  {
    bench::BenchTimer timer("incremental.accept");
    for (size_t i = 0; i < micros.size(); ++i) {
      integrator.Accept(micros[i], /*first_record_seq=*/i);
    }
    run.accept_ms = timer.StopMillis();
  }
  {
    bench::BenchTimer timer("incremental.finalize");
    run.macros = integrator.Finalize();
    run.finalize_ms = timer.StopMillis();
  }
  return run;
}

// What staying fresh costs without the incremental path: re-run the batch
// fixpoint over the whole prefix after every epoch of `epoch` arrivals.
double RunPerEpochBatch(const std::vector<AtypicalCluster>& micros,
                        const IntegrationParams& params, int epoch,
                        size_t* num_epochs) {
  bench::BenchTimer timer("batch.per_epoch");
  *num_epochs = 0;
  for (size_t end = static_cast<size_t>(epoch); end <= micros.size();
       end += static_cast<size_t>(epoch)) {
    ClusterIdGenerator ids(1u << 20);
    const std::vector<AtypicalCluster> prefix(micros.begin(),
                                              micros.begin() + end);
    IntegrateClusters(prefix, params, &ids);
    ++*num_epochs;
  }
  return timer.StopMillis();
}

}  // namespace
}  // namespace atypical

int main(int argc, char** argv) {
  using namespace atypical;
  FlagParser flags(argc, argv);
  // --clusters N replaces the {250, 500, 1000} sweep with a single row —
  // CI's bench-smoke job uses it to keep the run tiny.
  const int64_t clusters_override = flags.GetInt("clusters", 0);
  if (!flags.ok()) {
    std::fprintf(stderr, "%s\n", flags.error().c_str());
    return 2;
  }
  std::vector<int> row_sizes = {250, 500, 1000};
  if (clusters_override > 0) {
    row_sizes = {static_cast<int>(clusters_override)};
  }

  bench::PrintHeader(
      "bench_incremental_integration — online Algorithm 3",
      "per-arrival cascade + one Finalize vs. re-running the batch fixpoint "
      "every epoch (20 epochs per row)",
      "online per-event cost stays near-flat in n (sub-quadratic total) "
      "while per-epoch batch per-event cost grows ~n^2; results are "
      "bit-identical by construction");

  IntegrationParams params;
  params.delta_sim = 0.7;  // scan-bound: see MakeMicros comment

  Table table({"micros", "online total (ms)", "online/event (us)",
               "finalize (ms)", "epochs", "batch total (ms)",
               "batch/event (us)", "speedup"});
  for (const int n : row_sizes) {
    ClusterIdGenerator ids(1);
    const auto micros = MakeMicros(n, /*key_space=*/48,
                                   /*keys_per_cluster=*/24,
                                   /*seed=*/1234 + static_cast<uint64_t>(n),
                                   &ids);

    const IncrementalRun inc = RunIncremental(micros, params);

    // Bit-identity witness: one generator numbers the micros and then keeps
    // going into the batch fixpoint, exactly the sequence Finalize replays.
    {
      ClusterIdGenerator batch_ids(1);
      const auto batch_micros =
          MakeMicros(n, 48, 24, 1234 + static_cast<uint64_t>(n), &batch_ids);
      const auto batch = IntegrateClusters(batch_micros, params, &batch_ids);
      CHECK_EQ(batch.size(), inc.macros.size())
          << "incremental Finalize diverged from batch at n=" << n;
      for (size_t i = 0; i < batch.size(); ++i) {
        CHECK(batch[i].id == inc.macros[i].id &&
              batch[i].spatial == inc.macros[i].spatial &&
              batch[i].temporal == inc.macros[i].temporal &&
              batch[i].micro_ids == inc.macros[i].micro_ids)
            << "incremental Finalize diverged from batch at n=" << n
            << " cluster " << i;
      }
    }

    const int epoch = std::max(1, n / 20);
    size_t num_epochs = 0;
    const double batch_ms = RunPerEpochBatch(micros, params, epoch,
                                             &num_epochs);
    const double online_total_ms = inc.accept_ms + inc.finalize_ms;
    const double online_per_event_us = inc.accept_ms * 1e3 / n;
    const double batch_per_event_us = batch_ms * 1e3 / n;
    table.AddRow(
        {StrPrintf("%d", n), StrPrintf("%.1f", online_total_ms),
         StrPrintf("%.2f", online_per_event_us),
         StrPrintf("%.1f", inc.finalize_ms), StrPrintf("%zu", num_epochs),
         StrPrintf("%.1f", batch_ms), StrPrintf("%.2f", batch_per_event_us),
         StrPrintf("%.1fx",
                   batch_ms / std::max(online_total_ms, 1e-6))});
  }
  bench::EmitTable("bench_incremental_integration", table);
  return bench::DumpStatsIfRequested(flags);
}
