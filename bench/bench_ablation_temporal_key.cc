// Ablation: temporal-feature keying for cross-day integration.
//
// DESIGN.md argues TF must be re-keyed to time-of-day before integrating
// daily micro-clusters (the paper's Fig. 5 shows clock-time features).
// With absolute window keys, clusters from different days share no temporal
// keys, TF similarity is 0, and recurring events never merge — this bench
// quantifies that.
#include <algorithm>

#include "analytics/report.h"
#include "bench/bench_util.h"
#include "core/integration.h"
#include "core/temporal_key.h"

int main() {
  using namespace atypical;
  bench::PrintHeader(
      "Ablation: temporal key mode",
      "cross-day integration with absolute vs time-of-day TF keys",
      "time-of-day keys merge recurring daily events; absolute keys cannot "
      "(TF similarity across days is 0)");

  const auto ctx = analytics::BuildContext(WorkloadScale::kSmall,
                                           bench::BenchMonths(1));
  const TimeGrid& grid = ctx->time_grid();
  const IntegrationParams integration = ctx->forest_params.integration;

  Table table({"key mode", "input micros", "output macros", "merges",
               "largest cluster (days)"});
  for (const TemporalKeyMode mode :
       {TemporalKeyMode::kAbsolute, TemporalKeyMode::kTimeOfDay}) {
    std::vector<AtypicalCluster> inputs;
    for (const AtypicalCluster* micro :
         ctx->forest->MicrosInRange(DayRange{0, 27})) {
      inputs.push_back(WithTemporalKeyMode(*micro, grid, mode));
    }
    const size_t input_count = inputs.size();
    ClusterIdGenerator ids(1u << 22);
    IntegrationStats stats;
    const auto macros =
        IntegrateClusters(std::move(inputs), integration, &ids, &stats);
    int longest_span = 0;
    for (const AtypicalCluster& c : macros) {
      longest_span = std::max(longest_span, c.last_day - c.first_day + 1);
    }
    table.AddRow({mode == TemporalKeyMode::kAbsolute ? "absolute"
                                                     : "time-of-day",
                  StrPrintf("%zu", input_count),
                  StrPrintf("%zu", macros.size()),
                  StrPrintf("%zu", stats.merges),
                  StrPrintf("%d", longest_span)});
  }
  bench::EmitTable("ablation_temporal_key", table);
  return 0;
}
