// Ablation: red-zone region granularity and filter mode.
//
// Property 5's safety argument assumes a significant cluster lies inside one
// region; very fine grids split event footprints across regions that are
// individually below the threshold (risking recall), very coarse grids make
// every region red (no pruning).  This bench sweeps the cell size and also
// contrasts the keep-intersecting filter with the stricter keep-contained
// variant.
#include "analytics/ground_truth.h"
#include "analytics/metrics.h"
#include "analytics/report.h"
#include "bench/bench_util.h"

int main() {
  using namespace atypical;
  bench::PrintHeader(
      "Ablation: red-zone granularity (Property 5 in practice)",
      "Gui pruning power and recall vs region cell size / filter mode",
      "a mid-size grid prunes most micro-clusters at recall 1.0");

  const int months = bench::BenchMonths(1);
  const auto ctx = analytics::BuildContext(WorkloadScale::kSmall, months);
  const AnalyticalQuery query = ctx->WholeAreaQuery(28);

  // Ground truth from All is independent of the region grid.
  const QueryEngine base_engine =
      ctx->MakeEngine(analytics::DefaultEngineOptions());
  const QueryResult all = base_engine.Run(query, QueryStrategy::kAll);
  const analytics::GroundTruth gt = analytics::ComputeGroundTruth(all);
  const auto severities = ctx->forest->MicroSeverities(query.days);

  Table table({"cell (mi)", "mode", "regions", "red zones", "input micros",
               "pruned %", "recall", "precision"});
  for (const double cell : {1.5, 3.0, 6.0, 12.0}) {
    // Rebuild the pre-defined partition and the guidance cube on it.
    const RegionGrid regions(ctx->network(), cell);
    cube::BottomUpCube atypical_cube;
    for (const auto& month : ctx->monthly_atypical) {
      atypical_cube.MergeFrom(cube::BottomUpCube::FromAtypical(
          month, regions, ctx->time_grid()));
    }
    for (const cube::RedZoneFilterMode mode :
         {cube::RedZoneFilterMode::kKeepIntersecting,
          cube::RedZoneFilterMode::kKeepContained}) {
      QueryEngineOptions options = analytics::DefaultEngineOptions();
      options.red_zone_mode = mode;
      const QueryEngine engine(&ctx->network(), &regions, ctx->forest.get(),
                               &atypical_cube, options);
      const QueryResult gui = engine.Run(query, QueryStrategy::kGuided);
      const analytics::PrecisionRecall pr =
          analytics::EvaluateMass(gui, gt, severities);
      const double pruned =
          100.0 * (1.0 - static_cast<double>(gui.cost.input_micro_clusters) /
                             static_cast<double>(
                                 all.cost.input_micro_clusters));
      table.AddRow(
          {StrPrintf("%.1f", cell),
           mode == cube::RedZoneFilterMode::kKeepIntersecting ? "intersect"
                                                              : "contained",
           StrPrintf("%d", regions.num_regions()),
           StrPrintf("%zu", gui.cost.red_zones),
           StrPrintf("%zu", gui.cost.input_micro_clusters),
           StrPrintf("%.0f%%", pruned), StrPrintf("%.3f", pr.recall),
           StrPrintf("%.3f", pr.precision)});
    }
  }
  bench::EmitTable("ablation_redzone", table);
  return 0;
}
