// Serial vs. parallel Algorithm 3 (core/parallel_integration.h).
//
// The greedy fixpoint's candidate similarity scans dominate integration
// cost; the parallel driver shards them across a worker pool and must (a)
// stay bit-identical to the serial driver — asserted here on every row —
// and (b) approach the hardware's core count in speedup on scan-bound
// workloads.  Rows report serial and 2/4-thread times; interpret the
// speedup columns against the `hw_threads` column — on a single-core
// machine the parallel driver can only pay handoff overhead.
#include <thread>

#include "bench/bench_util.h"
#include "core/integration.h"
#include "core/parallel_integration.h"
#include "util/random.h"

namespace atypical {
namespace {

// Scan-heavy micro-cluster population: a small key space keeps candidate
// lists long and δsim = 0.7 keeps merges rare, so nearly all time goes to
// the pairwise similarity scans the pool shards.  (δsim = 0.6, used here
// before, sits just under this population's snowball point: one merge makes
// the winner similar enough to absorb everything, the run collapses to a
// single macro-cluster, and the bench measures merge bookkeeping instead of
// the candidate scanning it claims to — at 0.7 the same population yields
// ~n²/2 scans and almost no merges, the shape both drivers are built for.)
std::vector<AtypicalCluster> MakeMicros(int count, uint32_t key_space,
                                        int keys_per_cluster, uint64_t seed,
                                        ClusterIdGenerator* ids) {
  Rng rng(seed);
  std::vector<AtypicalCluster> out;
  out.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    AtypicalCluster c;
    c.id = ids->Next();
    c.micro_ids = {c.id};
    for (int j = 0; j < keys_per_cluster; ++j) {
      const double severity = rng.Uniform(0.5, 15.0);
      c.spatial.Add(static_cast<uint32_t>(rng.UniformInt(uint64_t{key_space})),
                    severity);
      c.temporal.Add(
          static_cast<uint32_t>(rng.UniformInt(uint64_t{key_space})),
          severity);
    }
    out.push_back(std::move(c));
  }
  return out;
}

double RunSerial(const std::vector<AtypicalCluster>& micros,
                 const IntegrationParams& params, size_t* out_clusters,
                 IntegrationStats* out_stats = nullptr) {
  ClusterIdGenerator ids(1u << 20);
  bench::BenchTimer timer("integration.serial");
  const auto macros = IntegrateClusters(micros, params, &ids, out_stats);
  const double ms = timer.StopMillis();
  *out_clusters = macros.size();
  return ms;
}

double RunParallel(const std::vector<AtypicalCluster>& micros,
                   const IntegrationParams& base, int threads,
                   size_t expect_clusters) {
  ParallelIntegrationParams params;
  params.base = base;
  params.num_threads = threads;
  ClusterIdGenerator ids(1u << 20);
  bench::BenchTimer timer("integration.parallel");
  const auto macros = ParallelIntegrateClusters(micros, params, &ids);
  const double ms = timer.StopMillis();
  CHECK_EQ(macros.size(), expect_clusters)
      << "parallel driver diverged from serial at " << threads << " threads";
  return ms;
}

}  // namespace
}  // namespace atypical

int main(int argc, char** argv) {
  using namespace atypical;
  FlagParser flags(argc, argv);
  // --clusters N replaces the {500, 1000, 2000} sweep with a single row —
  // CI's bench-smoke job uses it to keep the run tiny.
  const int64_t clusters_override = flags.GetInt("clusters", 0);
  // Each timing is repeated --reps times; the table and summary report the
  // median, the summary also keeps the raw samples.
  const int reps = static_cast<int>(flags.GetInt("reps", 3));
  if (!flags.ok()) {
    std::fprintf(stderr, "%s\n", flags.error().c_str());
    return 2;
  }
  if (reps < 1) {
    std::fprintf(stderr, "--reps must be >= 1\n");
    return 2;
  }
  std::vector<int> row_sizes = {500, 1000, 2000};
  if (clusters_override > 0) {
    row_sizes = {static_cast<int>(clusters_override)};
  }

  const unsigned hw = std::thread::hardware_concurrency();
  bench::PrintHeader(
      "bench_integration — parallel Algorithm 3",
      StrPrintf("sharded candidate scanning vs. serial greedy fixpoint "
                "(hardware threads: %u)",
                hw),
      "speedup at 4 threads approaches min(4, cores) on scan-bound inputs; "
      "the fast path prunes >= half the exact similarity scans");

  IntegrationParams base;
  base.delta_sim = 0.7;  // scan-bound: see MakeMicros comment

  bench::BenchSummary summary("bench_integration");
  Table table({"clusters", "hw_threads", "serial (ms)", "2t (ms)", "4t (ms)",
               "speedup 2t", "speedup 4t", "exact scans", "pruned"});
  for (const int n : row_sizes) {
    ClusterIdGenerator ids(1);
    const auto micros = MakeMicros(n, /*key_space=*/48,
                                   /*keys_per_cluster=*/24,
                                   /*seed=*/1234 + static_cast<uint64_t>(n),
                                   &ids);
    size_t serial_clusters = 0;
    IntegrationStats serial_stats;
    std::vector<double> serial_s, p2_s, p4_s;
    for (int rep = 0; rep < reps; ++rep) {
      serial_s.push_back(
          RunSerial(micros, base, &serial_clusters, &serial_stats) / 1e3);
      p2_s.push_back(RunParallel(micros, base, 2, serial_clusters) / 1e3);
      p4_s.push_back(RunParallel(micros, base, 4, serial_clusters) / 1e3);
    }
    for (const double s : serial_s) {
      summary.AddSample(StrPrintf("serial.n=%d", n), s);
    }
    for (const double s : p2_s) {
      summary.AddSample(StrPrintf("parallel2.n=%d", n), s);
    }
    for (const double s : p4_s) {
      summary.AddSample(StrPrintf("parallel4.n=%d", n), s);
    }
    const double serial_ms = bench::MedianSeconds(serial_s) * 1e3;
    const double p2_ms = bench::MedianSeconds(p2_s) * 1e3;
    const double p4_ms = bench::MedianSeconds(p4_s) * 1e3;
    table.AddRow({StrPrintf("%d", n), StrPrintf("%u", hw),
                  StrPrintf("%.1f", serial_ms), StrPrintf("%.1f", p2_ms),
                  StrPrintf("%.1f", p4_ms),
                  StrPrintf("%.2fx", serial_ms / std::max(p2_ms, 1e-6)),
                  StrPrintf("%.2fx", serial_ms / std::max(p4_ms, 1e-6)),
                  StrPrintf("%llu",
                            (unsigned long long)serial_stats.exact_scans),
                  StrPrintf("%llu",
                            (unsigned long long)serial_stats.pruned_scans)});
    summary.AddCounter(StrPrintf("exact_scans.n=%d", n),
                       serial_stats.exact_scans);
    summary.AddCounter(StrPrintf("pruned_scans.n=%d", n),
                       serial_stats.pruned_scans);
  }
  summary.AddCounter("hw_threads", hw);
  summary.AddCounter("reps", static_cast<uint64_t>(reps));
  bench::EmitTable("bench_integration", table);
  summary.WriteJson();
  if (hw < 4) {
    std::printf(
        "\nnote: only %u hardware thread(s) available — parallel rows "
        "measure coordination overhead, not speedup; re-run on >=4 cores "
        "for the headline number.\n",
        hw);
  }
  return bench::DumpStatsIfRequested(flags);
}
