// Ablation: Def. 1's distance metric.
//
// With Euclidean distance, concurrent jams on crossing highways chain into
// one event at interchanges — over a month this percolation produces the
// few huge rush-hour clusters the paper's Fig. 11(b) shows for LA.  With
// road-network distance events stay confined to one highway, yielding many
// more, smaller clusters.  This bench quantifies the difference.
#include <algorithm>
#include <set>

#include "analytics/report.h"
#include "bench/bench_util.h"
#include "core/event_retrieval.h"
#include "core/forest.h"
#include "core/significance.h"
#include "gen/workload.h"

int main() {
  using namespace atypical;
  bench::PrintHeader(
      "Ablation: distance metric (Def. 1)",
      "euclidean vs road-network distance for event chaining",
      "euclidean percolates events across interchanges into mega-clusters; "
      "road distance fragments them per highway");

  const int months = bench::BenchMonths(1);
  const auto workload = MakeWorkload(WorkloadScale::kSmall);
  const TimeGrid grid = workload->gen_config.time_grid;
  const SignificanceParams sig = analytics::DefaultSignificanceParams();

  Table table({"metric", "micro-clusters", "largest micro (sensors)",
               "largest micro (highways)", "monthly macros", "significant",
               "top severity"});
  for (const DistanceMetric metric :
       {DistanceMetric::kEuclidean, DistanceMetric::kRoadNetwork}) {
    ForestParams params = analytics::DefaultForestParams();
    params.retrieval.metric = metric;
    AtypicalForest forest(workload->sensors.get(), grid, params);
    for (int m = 0; m < months; ++m) {
      forest.AddRecords(workload->generator->GenerateMonthAtypical(m));
    }

    size_t largest_sensors = 0;
    size_t largest_highways = 0;
    for (int day : forest.Days()) {
      for (const AtypicalCluster& c : forest.MicrosOfDay(day)) {
        if (static_cast<size_t>(c.num_sensors()) > largest_sensors) {
          largest_sensors = c.num_sensors();
          std::set<HighwayId> highways;
          for (const auto& e : c.spatial.entries()) {
            highways.insert(workload->sensors->sensor(e.key).highway);
          }
          largest_highways = highways.size();
        }
      }
    }

    forest.MaterializeMonths(workload->gen_config.days_per_month);
    const double threshold = SignificanceThreshold(
        sig, DayRange{0, workload->gen_config.days_per_month - 1}, grid,
        workload->sensors->num_sensors());
    size_t macros = 0;
    size_t significant = 0;
    double top = 0.0;
    for (int m : forest.MaterializedMonths()) {
      for (const AtypicalCluster& c : forest.MacrosOfMonth(m)) {
        ++macros;
        if (IsSignificant(c, threshold)) ++significant;
        top = std::max(top, c.severity());
      }
    }

    table.AddRow({DistanceMetricName(metric),
                  StrPrintf("%zu", forest.num_micro_clusters()),
                  StrPrintf("%zu", largest_sensors),
                  StrPrintf("%zu", largest_highways),
                  StrPrintf("%zu", macros), StrPrintf("%zu", significant),
                  StrPrintf("%.0f", top)});
  }
  bench::EmitTable("ablation_metric", table);
  return 0;
}
