// Robustness ablation: cost of the fault-tolerant ingest guard.
//
// The guard (core/ingest.h) validates every record, deduplicates within the
// lateness horizon, and — under kBuffer — reorders late arrivals before the
// strict streaming builder sees them.  This bench measures that overhead on
// a clean feed against the raw builder, then shows the guard absorbing a
// deterministically mangled feed (delayed, duplicated, corrupted records)
// that would kill the raw builder outright.
#include <vector>

#include "analytics/report.h"
#include "bench/bench_util.h"
#include "core/ingest.h"
#include "core/streaming.h"
#include "gen/workload.h"
#include "util/fault.h"

namespace atypical {
namespace {

struct RunResult {
  double seconds = 0.0;
  size_t clusters = 0;
  IngestStats stats;
};

RunResult RunRaw(const Workload& workload, const TimeGrid& grid,
                 const RetrievalParams& params,
                 const std::vector<AtypicalRecord>& records) {
  RunResult result;
  ClusterIdGenerator ids(1);
  StreamingEventBuilder builder(workload.sensors.get(), grid, params, &ids,
                                [&](AtypicalCluster) { ++result.clusters; });
  bench::BenchTimer watch("robust_ingest.raw");
  for (const AtypicalRecord& r : records) builder.Add(r);
  builder.Flush();
  result.seconds = watch.StopSeconds();
  result.stats.records_in = records.size();
  result.stats.accepted = records.size();
  return result;
}

RunResult RunGuarded(const Workload& workload, const TimeGrid& grid,
                     const RetrievalParams& params, IngestPolicy policy,
                     const std::vector<AtypicalRecord>& records) {
  RunResult result;
  ClusterIdGenerator ids(1);
  IngestOptions options;
  options.policy = policy;
  RobustStreamingEventBuilder guard(
      workload.sensors.get(), grid, params, &ids,
      [&](AtypicalCluster) { ++result.clusters; }, options);
  bench::BenchTimer watch("robust_ingest.guard");
  for (const AtypicalRecord& r : records) guard.Add(r);
  guard.Flush();
  result.seconds = watch.StopSeconds();
  result.stats = guard.stats();
  return result;
}

}  // namespace
}  // namespace atypical

int main(int argc, char** argv) {
  using namespace atypical;
  FlagParser flags(argc, argv);
  bench::PrintHeader(
      "Robust ingest overhead",
      "validating guard + reorder buffer vs the raw streaming builder",
      "guard overhead should be a small constant factor; only the mangled "
      "feed quarantines records");

  const auto workload = MakeWorkload(WorkloadScale::kSmall);
  const TimeGrid grid = workload->gen_config.time_grid;
  const RetrievalParams params = analytics::DefaultForestParams().retrieval;
  const std::vector<AtypicalRecord> clean =
      workload->generator->GenerateMonthAtypical(0);

  // A hostile feed the raw builder cannot survive: bounded delays (within
  // the default lateness horizon), duplicates, and malformed records.
  FaultPlan plan(42);
  std::vector<AtypicalRecord> mangled =
      plan.DelayRecords(clean, IngestOptions{}.lateness_horizon_windows);
  mangled = plan.DuplicateRecords(mangled, 0.02);
  mangled = plan.CorruptRecords(mangled, 0.01, grid);

  const RunResult raw = RunRaw(*workload, grid, params, clean);

  Table table({"configuration", "records in", "accepted", "quarantined",
               "clusters", "Mrec/s", "overhead"});
  const auto add_row = [&](const char* name, const RunResult& r) {
    const double mrps =
        r.seconds > 0
            ? static_cast<double>(r.stats.records_in) / r.seconds / 1e6
            : 0.0;
    const double overhead =
        raw.seconds > 0 ? (r.seconds / raw.seconds - 1.0) * 100.0 : 0.0;
    table.AddRow({name, StrPrintf("%llu", (unsigned long long)r.stats.records_in),
                  StrPrintf("%llu", (unsigned long long)r.stats.accepted),
                  StrPrintf("%llu", (unsigned long long)r.stats.quarantined()),
                  StrPrintf("%zu", r.clusters), StrPrintf("%.2f", mrps),
                  StrPrintf("%+.0f%%", overhead)});
  };

  add_row("raw builder (clean)", raw);
  add_row("guard kStrict (clean)",
          RunGuarded(*workload, grid, params, IngestPolicy::kStrict, clean));
  add_row("guard kDrop (clean)",
          RunGuarded(*workload, grid, params, IngestPolicy::kDrop, clean));
  add_row("guard kBuffer (clean)",
          RunGuarded(*workload, grid, params, IngestPolicy::kBuffer, clean));
  const RunResult hostile =
      RunGuarded(*workload, grid, params, IngestPolicy::kBuffer, mangled);
  add_row("guard kBuffer (mangled)", hostile);

  bench::EmitTable("robust_ingest", table);
  std::printf("mangled feed health: %s\n",
              analytics::IngestHealthLine(hostile.stats).c_str());
  return bench::DumpStatsIfRequested(flags);
}
