// Fig. 20 reproduction: number of clusters vs δt (a) and δd (b).
//
// For each parameter setting the full span of data is re-clustered:
// micro-clusters per day, weekly and monthly macro-clusters, and the
// significant subsets at the default δs.
//
// Paper shapes: weekly/monthly macro counts far exceed the per-day micro
// count but only a tiny fraction are significant; macro counts fall quickly
// as δt grows (more merging) and more slowly with δd; significant counts
// are robust to both.
#include "analytics/report.h"
#include "bench/bench_util.h"
#include "core/event_retrieval.h"
#include "core/forest.h"
#include "core/significance.h"
#include "gen/workload.h"

namespace {

using namespace atypical;

struct Row {
  double micro_per_day;
  double macro_week;
  double macro_month;
  double sig_week;
  double sig_month;
};

Row Measure(const Workload& workload, int months, double delta_d,
            int delta_t) {
  ForestParams params = analytics::DefaultForestParams();
  params.retrieval.delta_d_miles = delta_d;
  params.retrieval.delta_t_minutes = delta_t;
  AtypicalForest forest(workload.sensors.get(), workload.gen_config.time_grid,
                        params);
  for (int m = 0; m < months; ++m) {
    forest.AddRecords(workload.generator->GenerateMonthAtypical(m));
  }
  const int days = months * workload.gen_config.days_per_month;
  const TimeGrid& grid = workload.gen_config.time_grid;
  const int n = workload.sensors->num_sensors();
  const SignificanceParams sig = analytics::DefaultSignificanceParams();

  Row row{};
  row.micro_per_day =
      static_cast<double>(forest.num_micro_clusters()) / days;

  forest.MaterializeWeeks();
  const double week_threshold =
      SignificanceThreshold(sig, DayRange{0, 6}, grid, n);
  int weeks = 0;
  for (int w = 0; w * 7 < days; ++w) {
    if (!forest.HasWeek(w)) continue;
    ++weeks;
    for (const AtypicalCluster& c : forest.MacrosOfWeek(w)) {
      row.macro_week += 1;
      if (IsSignificant(c, week_threshold)) row.sig_week += 1;
    }
  }
  if (weeks > 0) {
    row.macro_week /= weeks;
    row.sig_week /= weeks;
  }

  forest.MaterializeMonths(workload.gen_config.days_per_month);
  const double month_threshold = SignificanceThreshold(
      sig, DayRange{0, workload.gen_config.days_per_month - 1}, grid, n);
  for (int m = 0; m < months; ++m) {
    for (const AtypicalCluster& c : forest.MacrosOfMonth(m)) {
      row.macro_month += 1;
      if (IsSignificant(c, month_threshold)) row.sig_month += 1;
    }
  }
  row.macro_month /= months;
  row.sig_month /= months;
  return row;
}

void EmitSweep(const char* name, const char* axis, bool sweep_delta_t,
               const std::vector<std::pair<double, int>>& settings,
               const Workload& workload, int months) {
  Table table({axis, "micro/day", "macro(week)", "macro(month)", "sig(week)",
               "sig(month)"});
  for (const auto& [delta_d, delta_t] : settings) {
    const Row row = Measure(workload, months, delta_d, delta_t);
    const std::string label = sweep_delta_t ? StrPrintf("%d min", delta_t)
                                            : StrPrintf("%.1f mi", delta_d);
    table.AddRow({label, StrPrintf("%.1f", row.micro_per_day),
                  StrPrintf("%.1f", row.macro_week),
                  StrPrintf("%.1f", row.macro_month),
                  StrPrintf("%.1f", row.sig_week),
                  StrPrintf("%.1f", row.sig_month)});
  }
  bench::EmitTable(name, table);
}

}  // namespace

int main() {
  using namespace atypical;
  bench::PrintHeader(
      "Fig. 20", "# of clusters vs δt (a) and δd (b)",
      "macro counts >> significant counts; counts shrink fast with δt, "
      "slower with δd; significant counts robust to both");

  const int months = bench::BenchMonths(6);
  const auto workload = MakeWorkload(WorkloadScale::kSmall);

  std::printf("\n(a) sweep δt at δd = 1.5 mi, %d months\n", months);
  EmitSweep("fig20a_delta_t", "δt", /*sweep_delta_t=*/true,
            {{1.5, 15}, {1.5, 20}, {1.5, 40}, {1.5, 60}, {1.5, 80}},
            *workload, months);

  std::printf("\n(b) sweep δd at δt = 15 min, %d months\n", months);
  EmitSweep("fig20b_delta_d", "δd", /*sweep_delta_t=*/false,
            {{1.5, 15}, {3.0, 15}, {6.0, 15}, {12.0, 15}, {24.0, 15}},
            *workload, months);
  return 0;
}
