// Microbench for the similarity fast path (DESIGN §11): how often does the
// signature/upper-bound stage answer ExceedsThreshold without an exact
// CommonSeverity scan, and what does that save in wall-clock?
//
// Three pair populations stress the three fast-path mechanisms:
//   dense      — bench_integration's seed shape (key space 48, 24 adds per
//                feature): overlapping spans, pruning must come from the
//                severity-mass bound;
//   localized  — contiguous per-cluster key spans scattered over a wide key
//                space: mostly disjoint signatures, pruning is nearly free;
//   skewed     — alternating 4-key and 512-key clusters: exact scans that do
//                run take the galloping intersection.
//
// Every fast verdict is CHECKed against the exact verdict in-loop, so a run
// that completes is itself a correctness witness.
#include <cstdint>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "core/cluster.h"
#include "core/similarity.h"
#include "util/flags.h"
#include "util/random.h"

namespace atypical {
namespace {

constexpr BalanceFunction kAllBalanceFunctions[] = {
    BalanceFunction::kMax,           BalanceFunction::kMin,
    BalanceFunction::kArithmeticMean, BalanceFunction::kGeometricMean,
    BalanceFunction::kHarmonicMean,
};

struct Regime {
  const char* name;
  std::vector<AtypicalCluster> clusters;
};

AtypicalCluster MakeCluster(ClusterId id) {
  AtypicalCluster c;
  c.id = id;
  c.micro_ids = {id};
  return c;
}

// bench_integration's generator shape: dense key overlap, severities that
// keep most pairs well below δsim = 0.6 but force the bound to look at
// severity mass, not just spans.
Regime MakeDense(int count) {
  Rng rng(2024);
  Regime r{"dense", {}};
  for (int i = 0; i < count; ++i) {
    AtypicalCluster c = MakeCluster(static_cast<ClusterId>(i + 1));
    for (int j = 0; j < 24; ++j) {
      const double severity = rng.Uniform(0.5, 15.0);
      c.spatial.Add(static_cast<uint32_t>(rng.UniformInt(uint64_t{48})),
                    severity);
      c.temporal.Add(static_cast<uint32_t>(rng.UniformInt(uint64_t{48})),
                     severity);
    }
    r.clusters.push_back(std::move(c));
  }
  return r;
}

// Each cluster owns a contiguous 16-key span; spans are scattered over a
// 4096-key space so most pairs have disjoint signatures and prune before
// any per-entry work.
Regime MakeLocalized(int count) {
  Rng rng(7);
  Regime r{"localized", {}};
  for (int i = 0; i < count; ++i) {
    AtypicalCluster c = MakeCluster(static_cast<ClusterId>(i + 1));
    const uint32_t base = static_cast<uint32_t>(rng.UniformInt(uint64_t{4080}));
    for (uint32_t j = 0; j < 16; ++j) {
      c.spatial.Add(base + j, rng.Uniform(0.5, 15.0));
      c.temporal.Add(base + j, rng.Uniform(0.5, 15.0));
    }
    r.clusters.push_back(std::move(c));
  }
  return r;
}

// Alternating tiny (4-key) and huge (512-key) clusters over a shared key
// space: the exact scans that survive the bound hit CommonSeverity's
// galloping branch (size ratio 128 ≥ the 16× skew factor).
Regime MakeSkewed(int count) {
  Rng rng(99);
  Regime r{"skewed", {}};
  for (int i = 0; i < count; ++i) {
    AtypicalCluster c = MakeCluster(static_cast<ClusterId>(i + 1));
    const int keys = (i % 2 == 0) ? 4 : 512;
    for (int j = 0; j < keys; ++j) {
      const double severity = rng.Uniform(0.5, 15.0);
      c.spatial.Add(static_cast<uint32_t>(rng.UniformInt(uint64_t{4096})),
                    severity);
      c.temporal.Add(static_cast<uint32_t>(rng.UniformInt(uint64_t{4096})),
                     severity);
    }
    r.clusters.push_back(std::move(c));
  }
  return r;
}

struct SweepResult {
  uint64_t pairs = 0;
  SimilarityScanStats stats;
  double fast_ms = 0.0;
  double exact_ms = 0.0;
};

// All-pairs ExceedsThreshold, exact path timed first, then the fast path
// with in-loop verdict equality CHECKs against the stored exact verdicts.
SweepResult SweepAllPairs(const std::vector<AtypicalCluster>& clusters,
                          BalanceFunction g, double delta_sim) {
  SweepResult result;
  std::vector<uint8_t> exact_verdicts;
  exact_verdicts.reserve(clusters.size() * (clusters.size() - 1) / 2);
  {
    bench::BenchTimer timer("micro_similarity.exact");
    for (size_t i = 0; i < clusters.size(); ++i) {
      for (size_t j = i + 1; j < clusters.size(); ++j) {
        exact_verdicts.push_back(ExceedsThreshold(clusters[i], clusters[j], g,
                                                  delta_sim, nullptr,
                                                  /*use_fast_path=*/false)
                                     ? 1
                                     : 0);
      }
    }
    result.exact_ms = timer.StopMillis();
  }
  {
    bench::BenchTimer timer("micro_similarity.fast");
    size_t pair = 0;
    for (size_t i = 0; i < clusters.size(); ++i) {
      for (size_t j = i + 1; j < clusters.size(); ++j) {
        const bool fast = ExceedsThreshold(clusters[i], clusters[j], g,
                                           delta_sim, &result.stats,
                                           /*use_fast_path=*/true);
        CHECK_EQ(fast, exact_verdicts[pair] != 0)
            << "fast path diverged: g=" << BalanceFunctionName(g)
            << " pair=" << i << "," << j;
        ++pair;
      }
    }
    result.fast_ms = timer.StopMillis();
  }
  result.pairs = exact_verdicts.size();
  return result;
}

}  // namespace
}  // namespace atypical

int main(int argc, char** argv) {
  using namespace atypical;
  FlagParser flags(argc, argv);
  const int clusters = static_cast<int>(flags.GetInt("clusters", 160));
  const double delta_sim = flags.GetDouble("delta-sim", 0.6);
  if (!flags.ok()) {
    std::fprintf(stderr, "%s\n", flags.error().c_str());
    return 2;
  }
  if (clusters < 2) {
    std::fprintf(stderr, "--clusters must be >= 2\n");
    return 2;
  }

  bench::PrintHeader(
      "bench_micro_similarity — Eq. 2-4 fast path",
      StrPrintf("all-pairs ExceedsThreshold, fast vs. exact, %d clusters, "
                "delta_sim=%.2f",
                clusters, delta_sim),
      "upper-bound pruning answers most verdicts without an exact scan; "
      "verdicts stay bit-identical (CHECKed per pair)");

  Regime regimes[] = {MakeDense(clusters), MakeLocalized(clusters),
                      MakeSkewed(clusters)};
  // The drivers amortize sketch construction once per cluster outside the
  // pair loop (EnsureSimilarityReady in the parallel prep pass); mirror
  // that so the sweep times the per-pair cost, not one-time setup.
  for (Regime& regime : regimes) {
    for (AtypicalCluster& c : regime.clusters) {
      c.spatial.EnsureSimilarityReady();
      c.temporal.EnsureSimilarityReady();
    }
  }

  SimilarityScanStats totals;
  bench::BenchSummary summary("bench_micro_similarity");
  Table table({"regime", "g", "pairs", "exact scans", "pruned", "pruned %",
               "fast (ms)", "exact (ms)", "speedup"});
  for (const Regime& regime : regimes) {
    for (const BalanceFunction g : kAllBalanceFunctions) {
      const SweepResult r = SweepAllPairs(regime.clusters, g, delta_sim);
      totals += r.stats;
      summary.AddSample(
          StrPrintf("%s.%s.fast", regime.name, BalanceFunctionName(g)),
          r.fast_ms / 1e3);
      summary.AddSample(
          StrPrintf("%s.%s.exact", regime.name, BalanceFunctionName(g)),
          r.exact_ms / 1e3);
      const uint64_t decided = r.stats.exact_scans + r.stats.pruned_scans;
      table.AddRow(
          {regime.name, BalanceFunctionName(g), StrPrintf("%llu", (unsigned long long)r.pairs),
           StrPrintf("%llu", (unsigned long long)r.stats.exact_scans),
           StrPrintf("%llu", (unsigned long long)r.stats.pruned_scans),
           StrPrintf("%.1f%%", decided == 0
                                   ? 0.0
                                   : 100.0 * (double)r.stats.pruned_scans /
                                         (double)decided),
           StrPrintf("%.2f", r.fast_ms), StrPrintf("%.2f", r.exact_ms),
           StrPrintf("%.2fx", r.exact_ms / std::max(r.fast_ms, 1e-6))});
    }
  }
  summary.AddCounter("similarity.exact_scans", totals.exact_scans);
  summary.AddCounter("similarity.pruned", totals.pruned_scans);
  bench::EmitTable("bench_micro_similarity", table);
  summary.WriteJson();

  // Publish the sweep's accounting under the pipeline counter names so a
  // --stats=json dump of this bench carries the same schema CI checks on
  // the drivers.
  obs::Registry()->GetCounter("similarity.exact_scans")
      ->Add(totals.exact_scans);
  obs::Registry()->GetCounter("similarity.pruned")->Add(totals.pruned_scans);
  return bench::DumpStatsIfRequested(flags);
}
