// Closed-loop concurrent query serving throughput (DESIGN §16).
//
// N worker threads — each with its own warm QueryScratch, the serving idiom
// — replay a small repeating Q(W, T) pool through one shared QueryService
// (snapshot isolation + result cache + kAuto strategy selection) while a
// writer thread keeps staging new days and publishing epochs.  Workers
// optionally pace to a target aggregate QPS; unthrottled (the default) the
// bench measures saturation throughput.  Latency lands in the same
// serve.request_seconds obs histogram production serving uses, so p50/p99
// come from the pipeline's own instrumentation; every 64th reply is
// re-checked bit-identical against an uncached engine run on its snapshot,
// keeping the closed loop honest.
//
// Flags:
//   --threads=N            worker threads (default 4)
//   --duration-seconds=S   measurement window (default 2.0)
//   --qps=Q                target aggregate QPS, 0 = unthrottled (default 0)
//   --queries=P            distinct queries in the pool (default 12)
//   --cache-entries=E      result-cache capacity, 0 disables (default 1024)
//   --publish-every-ms=M   writer publish cadence, 0 = no writer (default 250)
//   --months=K             synthetic months (default 2)
//   --stats[=text|json] [--stats-out FILE]
#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "analytics/report.h"
#include "bench/bench_util.h"
#include "serve/query_service.h"
#include "util/stopwatch.h"

namespace atypical {
namespace {

struct WorkerTotals {
  uint64_t requests = 0;
  uint64_t cache_hits = 0;
  uint64_t identity_checks = 0;
  uint64_t identity_failures = 0;
};

// Deep answer equality for the spot checks (timings excluded by design).
bool SameAnswer(const QueryResult& a, const QueryResult& b) {
  if (a.threshold != b.threshold || a.clusters.size() != b.clusters.size()) {
    return false;
  }
  for (size_t i = 0; i < a.clusters.size(); ++i) {
    if (a.clusters[i].id != b.clusters[i].id ||
        a.clusters[i].micro_ids != b.clusters[i].micro_ids ||
        !(a.clusters[i].spatial == b.clusters[i].spatial)) {
      return false;
    }
  }
  return true;
}

int Main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  const int threads = static_cast<int>(flags.GetInt("threads", 4));
  const double duration_seconds = flags.GetDouble("duration-seconds", 2.0);
  const double target_qps = flags.GetDouble("qps", 0.0);
  const int pool_size = static_cast<int>(flags.GetInt("queries", 12));
  const size_t cache_entries =
      static_cast<size_t>(flags.GetInt("cache-entries", 1024));
  const double publish_every_ms = flags.GetDouble("publish-every-ms", 250.0);
  const int months = static_cast<int>(flags.GetInt("months", 2));
  CHECK(flags.ok()) << flags.error();
  CHECK_GT(threads, 0);
  CHECK_GT(pool_size, 0);

  bench::PrintHeader(
      "query serving", "closed-loop concurrent serving throughput",
      "flat p50 under load; hit rate grows with pool reuse; p99 bounded by "
      "publish-induced misses");

  const std::unique_ptr<analytics::ExperimentContext> ctx =
      analytics::BuildContext(WorkloadScale::kTiny, months,
                              analytics::DefaultForestParams(), 47);

  serve::ServingForest serving(&ctx->network(), &ctx->regions(),
                               ctx->time_grid(), ctx->forest_params,
                               analytics::DefaultEngineOptions());
  serving.staging_cube()->MergeFrom(ctx->atypical_cube);
  // Serve the first month from the start; the writer drips the rest in.
  serving.staging_forest()->AddRecords(ctx->monthly_atypical[0]);
  serving.PublishSnapshot();

  serve::ServeOptions options;
  options.cache_entries = cache_entries;
  serve::QueryService service(&serving, options);

  // The repeating pool: whole-area queries over shifted windows, so repeats
  // hit the cache and distinct days exercise different integration sizes.
  const int total_days = months * ctx->days_per_month();
  std::vector<AnalyticalQuery> pool;
  pool.reserve(static_cast<size_t>(pool_size));
  for (int i = 0; i < pool_size; ++i) {
    AnalyticalQuery query = ctx->WholeAreaQuery(total_days);
    const int first = i % std::max(1, total_days - 6);
    query.days = DayRange{first, first + 6};
    pool.push_back(query);
  }

  std::atomic<bool> stop{false};
  std::vector<WorkerTotals> totals(static_cast<size_t>(threads));

  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(threads));
  const double per_worker_interval =
      target_qps > 0 ? static_cast<double>(threads) / target_qps : 0.0;
  for (int w = 0; w < threads; ++w) {
    workers.emplace_back([&, w] {
      WorkerTotals& mine = totals[static_cast<size_t>(w)];
      QueryScratch scratch;
      Stopwatch pace;
      double next_send = 0.0;
      for (uint64_t i = 0; !stop.load(std::memory_order_relaxed); ++i) {
        if (per_worker_interval > 0) {
          // Open-ish pacing: send at fixed intervals, never ahead of plan.
          while (pace.ElapsedSeconds() < next_send &&
                 !stop.load(std::memory_order_relaxed)) {
            std::this_thread::yield();
          }
          next_send += per_worker_interval;
        }
        const AnalyticalQuery& query =
            pool[(static_cast<uint64_t>(w) + i) % pool.size()];
        const serve::ServeReply reply =
            service.ServeQuery(query, serve::ServeStrategy::kAuto, &scratch);
        ++mine.requests;
        if (reply.cache_hit) ++mine.cache_hits;
        if (i % 64 == 0) {
          // The closed loop's honesty check: served answer == uncached
          // single-threaded run on the same snapshot.
          ++mine.identity_checks;
          const QueryResult direct =
              reply.snapshot->engine.Run(query, reply.strategy, &scratch);
          if (!SameAnswer(*reply.result, direct)) ++mine.identity_failures;
        }
      }
    });
  }

  std::thread writer([&] {
    if (publish_every_ms <= 0) return;
    // Drip the remaining months' records in day-sized batches, one publish
    // per cadence tick; once data runs out the writer goes quiet (steady
    // state: pure cache serving).
    std::map<int, std::vector<AtypicalRecord>> pending;
    for (int m = 1; m < months; ++m) {
      for (const AtypicalRecord& r : ctx->monthly_atypical[static_cast<size_t>(m)]) {
        pending[ctx->time_grid().DayOfWindow(r.window)].push_back(r);
      }
    }
    auto it = pending.begin();
    while (!stop.load(std::memory_order_relaxed) && it != pending.end()) {
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          publish_every_ms));
      serving.staging_forest()->AddDay(it->first, it->second);
      serving.PublishSnapshot();
      ++it;
    }
  });

  Stopwatch wall;
  std::this_thread::sleep_for(
      std::chrono::duration<double>(duration_seconds));
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : workers) t.join();
  writer.join();
  const double elapsed = wall.ElapsedSeconds();

  WorkerTotals sum;
  for (const WorkerTotals& t : totals) {
    sum.requests += t.requests;
    sum.cache_hits += t.cache_hits;
    sum.identity_checks += t.identity_checks;
    sum.identity_failures += t.identity_failures;
  }
  CHECK_EQ(sum.identity_failures, 0u)
      << "served answers diverged from uncached engine runs";
  CHECK_GT(sum.requests, 0u);

  obs::Histogram* const latency =
      obs::Registry()->GetHistogram("serve.request_seconds");
  const double p50 = latency->Quantile(0.50);
  const double p99 = latency->Quantile(0.99);
  const double qps = static_cast<double>(sum.requests) / elapsed;
  const serve::QueryResultCache::CacheTotals cache = service.cache_totals();

  Table table({"threads", "requests", "qps", "p50 (ms)", "p99 (ms)",
               "hit rate (%)", "epochs"});
  table.AddRow({StrPrintf("%d", threads), StrPrintf("%llu",
                    (unsigned long long)sum.requests),
                StrPrintf("%.0f", qps), StrPrintf("%.3f", p50 * 1e3),
                StrPrintf("%.3f", p99 * 1e3),
                StrPrintf("%.1f", cache.hit_rate_percent),
                StrPrintf("%llu", (unsigned long long)serving.current_epoch())});
  bench::EmitTable("bench_query_serving", table);

  bench::BenchSummary summary("bench_query_serving");
  summary.AddSample("request_p50", p50);
  summary.AddSample("request_p99", p99);
  summary.AddCounter("requests", sum.requests);
  summary.AddCounter("qps", static_cast<uint64_t>(qps));
  summary.AddCounter("threads", static_cast<uint64_t>(threads));
  summary.AddCounter("cache_hits", cache.hits);
  summary.AddCounter("cache_misses", cache.misses);
  summary.AddCounter("cache_evictions", cache.evictions);
  summary.AddCounter("cache_invalidations", cache.invalidations);
  summary.AddCounter("hit_rate_percent",
                     static_cast<uint64_t>(cache.hit_rate_percent));
  summary.AddCounter("epochs_published", serving.current_epoch());
  summary.AddCounter("identity_checks", sum.identity_checks);
  summary.WriteJson();

  return bench::DumpStatsIfRequested(flags);
}

}  // namespace
}  // namespace atypical

int main(int argc, char** argv) { return atypical::Main(argc, argv); }
