// Fig. 17 reproduction: analytical-query efficiency vs query time range for
// the three strategies — (a) wall time, (b) I/O cost measured as the number
// of input micro-clusters fed to integration (the paper's metric).
//
// Setup mirrors §V.B: only daily micro-clusters are pre-computed; the
// spatial range is the whole area; the time range grows from 7 to 84 days.
#include <algorithm>

#include "analytics/report.h"
#include "bench/bench_util.h"

int main() {
  using namespace atypical;
  bench::PrintHeader(
      "Fig. 17", "query time (a) and # input micro-clusters (b) vs range",
      "Gui and Pru much cheaper than All; Gui time ~15-20% of All with I/O "
      "close to Pru");

  const int months = bench::BenchMonths(3);
  const auto ctx = analytics::BuildContext(WorkloadScale::kSmall, months);
  const QueryEngine engine =
      ctx->MakeEngine(analytics::DefaultEngineOptions());

  Table table({"range (days)", "All (ms)", "Pru (ms)", "Gui (ms)",
               "All #in", "Pru #in", "Gui #in", "Gui/All time"});
  const int max_days = months * ctx->days_per_month();
  for (const int days : {7, 14, 21, 28, 56, 84}) {
    if (days > max_days) break;
    const AnalyticalQuery query = ctx->WholeAreaQuery(days);
    // Median of three runs per strategy to steady the wall times.
    double ms[3] = {0, 0, 0};
    size_t input[3] = {0, 0, 0};
    const QueryStrategy strategies[3] = {
        QueryStrategy::kAll, QueryStrategy::kPrune, QueryStrategy::kGuided};
    for (int s = 0; s < 3; ++s) {
      std::vector<double> runs;
      for (int rep = 0; rep < 3; ++rep) {
        const QueryResult r = engine.Run(query, strategies[s]);
        runs.push_back(r.cost.seconds * 1e3);
        input[s] = r.cost.input_micro_clusters;
      }
      std::sort(runs.begin(), runs.end());
      ms[s] = runs[1];
    }
    table.AddRow({StrPrintf("%d", days), StrPrintf("%.2f", ms[0]),
                  StrPrintf("%.2f", ms[1]), StrPrintf("%.2f", ms[2]),
                  StrPrintf("%zu", input[0]), StrPrintf("%zu", input[1]),
                  StrPrintf("%zu", input[2]),
                  StrPrintf("%.0f%%", 100.0 * ms[2] / std::max(ms[0], 1e-9))});
  }
  bench::EmitTable("fig17_query_cost", table);
  return 0;
}
