// Fig. 18 reproduction: precision (a) and recall (b) of the significant-
// cluster results vs query time range.
//
// Protocol (see DESIGN.md / EXPERIMENTS.md): ground truth = the true
// significant clusters from All's results; precision/recall are measured on
// severity mass over shared micro-cluster ids.  As in the paper, Gui's
// final severity post-check is disabled "for a fair play"; with it on, Gui
// reaches 100% precision (shown in the last column).
#include "analytics/ground_truth.h"
#include "analytics/metrics.h"
#include "analytics/report.h"
#include "bench/bench_util.h"

int main() {
  using namespace atypical;
  bench::PrintHeader(
      "Fig. 18", "precision / recall vs query range (days)",
      "precision decreases with range for all; Pru precision highest but "
      "recall can fall below 0.5; All and Gui recall stay at 1.0");

  const int months = bench::BenchMonths(3);
  const auto ctx = analytics::BuildContext(WorkloadScale::kSmall, months);
  const QueryEngine engine =
      ctx->MakeEngine(analytics::DefaultEngineOptions());
  QueryEngineOptions checked_options = analytics::DefaultEngineOptions();
  checked_options.post_check_significance = true;
  const QueryEngine checked = ctx->MakeEngine(checked_options);

  Table table({"range (days)", "prec All", "prec Pru", "prec Gui",
               "recall All", "recall Pru", "recall Gui", "#sig",
               "prec Gui+check"});
  const int max_days = months * ctx->days_per_month();
  for (const int days : {7, 14, 21, 28, 56, 84}) {
    if (days > max_days) break;
    const AnalyticalQuery query = ctx->WholeAreaQuery(days);
    const QueryResult all = engine.Run(query, QueryStrategy::kAll);
    const QueryResult pru = engine.Run(query, QueryStrategy::kPrune);
    const QueryResult gui = engine.Run(query, QueryStrategy::kGuided);
    const analytics::GroundTruth gt = analytics::ComputeGroundTruth(all);
    const auto severities = ctx->forest->MicroSeverities(query.days);

    const auto pr_all = analytics::EvaluateMass(all, gt, severities);
    const auto pr_pru = analytics::EvaluateMass(pru, gt, severities);
    const auto pr_gui = analytics::EvaluateMass(gui, gt, severities);

    // Gui with the exact post-check (Algorithm 4 lines 5-7).
    const QueryResult gui_checked =
        checked.Run(query, QueryStrategy::kGuided);
    double checked_mass = 0.0;
    double checked_sig_mass = 0.0;
    for (const AtypicalCluster& c : gui_checked.clusters) {
      for (ClusterId id : c.micro_ids) {
        const auto it = severities.find(id);
        if (it == severities.end()) continue;
        checked_mass += it->second;
        if (gt.significant_micros.contains(id)) {
          checked_sig_mass += it->second;
        }
      }
    }
    const double prec_checked =
        checked_mass > 0 ? checked_sig_mass / checked_mass : 0.0;

    table.AddRow({StrPrintf("%d", days), StrPrintf("%.3f", pr_all.precision),
                  StrPrintf("%.3f", pr_pru.precision),
                  StrPrintf("%.3f", pr_gui.precision),
                  StrPrintf("%.3f", pr_all.recall),
                  StrPrintf("%.3f", pr_pru.recall),
                  StrPrintf("%.3f", pr_gui.recall),
                  StrPrintf("%zu", gt.significant.size()),
                  StrPrintf("%.3f", prec_checked)});
  }
  bench::EmitTable("fig18_effectiveness_range", table);
  return 0;
}
