// Ablation: the pre-defined partition scheme behind red-zone guidance.
//
// §II.A lists zipcode areas, streets, and R-tree rectangles as
// interchangeable regionalizations.  This bench runs the guided strategy
// with the uniform grid vs the density-adaptive R-tree leaf partition and
// compares pruning power and recall.
#include "analytics/ground_truth.h"
#include "analytics/metrics.h"
#include "analytics/report.h"
#include "bench/bench_util.h"
#include "index/rtree.h"

int main() {
  using namespace atypical;
  bench::PrintHeader(
      "Ablation: pre-defined partition scheme (red zones)",
      "uniform grid vs R-tree leaf rectangles as the region scheme",
      "density-adaptive leaves isolate hotspot corridors more tightly at "
      "equal region counts");

  const int months = bench::BenchMonths(1);
  const auto ctx = analytics::BuildContext(WorkloadScale::kSmall, months);
  const AnalyticalQuery query = ctx->WholeAreaQuery(28);

  const QueryResult all = ctx->MakeEngine(analytics::DefaultEngineOptions())
                              .Run(query, QueryStrategy::kAll);
  const analytics::GroundTruth gt = analytics::ComputeGroundTruth(all);
  const auto severities = ctx->forest->MicroSeverities(query.days);

  // Candidate partitions, roughly matched in region count.
  const RegionGrid grid_fine(ctx->network(), 1.5);
  const RegionGrid grid_coarse(ctx->network(), 3.0);
  const index::RTreeLeafPartition rtree_small(ctx->network(), 8);
  const index::RTreeLeafPartition rtree_large(ctx->network(), 24);
  const std::vector<const SpatialPartition*> partitions = {
      &grid_fine, &grid_coarse, &rtree_small, &rtree_large};

  Table table({"partition", "regions", "red zones", "input micros",
               "pruned %", "recall", "precision"});
  for (const SpatialPartition* partition : partitions) {
    cube::BottomUpCube atypical_cube;
    for (const auto& month : ctx->monthly_atypical) {
      atypical_cube.MergeFrom(cube::BottomUpCube::FromAtypical(
          month, *partition, ctx->time_grid()));
    }
    const QueryEngine engine(&ctx->network(), partition, ctx->forest.get(),
                             &atypical_cube,
                             analytics::DefaultEngineOptions());
    const QueryResult gui = engine.Run(query, QueryStrategy::kGuided);
    const analytics::PrecisionRecall pr =
        analytics::EvaluateMass(gui, gt, severities);
    table.AddRow(
        {partition->Name(), StrPrintf("%d", partition->num_regions()),
         StrPrintf("%zu", gui.cost.red_zones),
         StrPrintf("%zu", gui.cost.input_micro_clusters),
         StrPrintf("%.0f%%",
                   100.0 * (1.0 - static_cast<double>(
                                      gui.cost.input_micro_clusters) /
                                  static_cast<double>(
                                      all.cost.input_micro_clusters))),
         StrPrintf("%.3f", pr.recall), StrPrintf("%.3f", pr.precision)});
  }
  bench::EmitTable("ablation_partition", table);
  return 0;
}
