#include "index/rtree.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "cube/cube.h"
#include "gen/workload.h"
#include "util/random.h"

namespace atypical {
namespace index {
namespace {

class RTreeTest : public ::testing::Test {
 protected:
  RTreeTest() : workload_(MakeWorkload(WorkloadScale::kSmall, 81)) {}

  const SensorNetwork& network() { return *workload_->sensors; }
  std::unique_ptr<Workload> workload_;
};

TEST_F(RTreeTest, QueryMatchesLinearScan) {
  const SensorRTree tree(network());
  Rng rng(5);
  const GeoRect bounds = network().bounds();
  for (int trial = 0; trial < 50; ++trial) {
    const double x0 = rng.Uniform(bounds.min_x, bounds.max_x);
    const double y0 = rng.Uniform(bounds.min_y, bounds.max_y);
    const double x1 = rng.Uniform(x0, bounds.max_x);
    const double y1 = rng.Uniform(y0, bounds.max_y);
    const GeoRect rect{x0, y0, x1, y1};
    std::vector<SensorId> expected = network().SensorsInRect(rect);
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(tree.Query(rect), expected) << "trial " << trial;
  }
}

TEST_F(RTreeTest, WholeBoundsReturnsEverything) {
  const SensorRTree tree(network());
  EXPECT_EQ(tree.Query(network().bounds()).size(),
            static_cast<size_t>(network().num_sensors()));
}

TEST_F(RTreeTest, EmptyRectReturnsNothing) {
  const SensorRTree tree(network());
  EXPECT_TRUE(tree.Query({-100.0, -100.0, -99.0, -99.0}).empty());
}

TEST_F(RTreeTest, LeavesPartitionTheSensors) {
  const SensorRTree tree(network(), /*leaf_capacity=*/16);
  std::set<SensorId> seen;
  for (int leaf = 0; leaf < tree.num_leaves(); ++leaf) {
    const GeoRect mbr = tree.LeafRect(leaf);
    for (SensorId s : tree.LeafSensors(leaf)) {
      EXPECT_TRUE(seen.insert(s).second) << "sensor in two leaves";
      EXPECT_EQ(tree.LeafOfSensor(s), leaf);
      EXPECT_TRUE(mbr.Contains(network().location(s)));
    }
    EXPECT_LE(tree.LeafSensors(leaf).size(), 16u);
  }
  EXPECT_EQ(seen.size(), static_cast<size_t>(network().num_sensors()));
}

TEST_F(RTreeTest, LeafCountMatchesCapacity) {
  const SensorRTree tree(network(), /*leaf_capacity=*/16);
  const int n = network().num_sensors();
  EXPECT_GE(tree.num_leaves(), (n + 15) / 16);
  EXPECT_LE(tree.num_leaves(), n / 8 + 4);  // slices may leave ragged tails
  EXPECT_GE(tree.height(), 2);
}

TEST_F(RTreeTest, LeavesInRectCoversAllMatchingSensors) {
  const SensorRTree tree(network());
  Rng rng(9);
  const GeoRect bounds = network().bounds();
  for (int trial = 0; trial < 20; ++trial) {
    const double x0 = rng.Uniform(bounds.min_x, bounds.max_x);
    const double y0 = rng.Uniform(bounds.min_y, bounds.max_y);
    const GeoRect rect{x0, y0, std::min(bounds.max_x, x0 + 8.0),
                       std::min(bounds.max_y, y0 + 6.0)};
    const std::vector<int> leaves = tree.LeavesInRect(rect);
    const std::set<int> leaf_set(leaves.begin(), leaves.end());
    for (SensorId s : network().SensorsInRect(rect)) {
      EXPECT_TRUE(leaf_set.contains(tree.LeafOfSensor(s)))
          << "sensor " << s << " trial " << trial;
    }
  }
}

TEST_F(RTreeTest, SingleSensorNetworkWorks) {
  RoadNetworkConfig roads;
  roads.num_highways = 1;
  roads.area_width_miles = 2.0;
  roads.area_height_miles = 2.0;
  const RoadNetwork net = RoadNetwork::Generate(roads);
  SensorNetworkConfig config;
  config.target_num_sensors = 1;
  const SensorNetwork sensors = SensorNetwork::Place(net, config);
  const SensorRTree tree(sensors);
  EXPECT_EQ(tree.num_leaves(), 1);
  EXPECT_EQ(tree.Query(sensors.bounds()).size(),
            static_cast<size_t>(sensors.num_sensors()));
}

TEST_F(RTreeTest, PartitionInterfaceContract) {
  const RTreeLeafPartition partition(network(), 16);
  EXPECT_EQ(partition.num_regions(), partition.tree().num_leaves());
  EXPECT_EQ(partition.Name(), "rtree-leaves-16");
  int total = 0;
  for (RegionId r = 0; r < static_cast<RegionId>(partition.num_regions());
       ++r) {
    for (SensorId s : partition.SensorsInRegion(r)) {
      EXPECT_EQ(partition.RegionOfSensor(s), r);
      ++total;
    }
  }
  EXPECT_EQ(total, network().num_sensors());
  EXPECT_EQ(partition.RegionsInRect(network().bounds()).size(),
            static_cast<size_t>(partition.num_regions()));
}

TEST_F(RTreeTest, PartitionDrivesTheCubeAndRedZones) {
  // The R-tree partition plugs into the bottom-up cube exactly like the
  // grid: total severity is conserved regardless of the scheme.
  const std::vector<AtypicalRecord> records =
      workload_->generator->GenerateMonthAtypical(0);
  const TimeGrid grid = workload_->gen_config.time_grid;
  const RTreeLeafPartition partition(network(), 16);
  const cube::BottomUpCube severity_cube =
      cube::BottomUpCube::FromAtypical(records, partition, grid);
  double total = 0.0;
  for (const AtypicalRecord& r : records)
    total += static_cast<double>(r.severity_minutes);
  std::vector<RegionId> all;
  for (RegionId r = 0; r < static_cast<RegionId>(partition.num_regions());
       ++r) {
    all.push_back(r);
  }
  EXPECT_NEAR(severity_cube.F(all, DayRange{0, 27}), total, 1e-3);
}

TEST_F(RTreeTest, AdaptsToSensorDensity) {
  // Leaf rectangles in dense areas are smaller than the uniform grid cell.
  const RTreeLeafPartition partition(network(), 16);
  double min_area = 1e18;
  double max_area = 0.0;
  for (int leaf = 0; leaf < partition.tree().num_leaves(); ++leaf) {
    const GeoRect r = partition.tree().LeafRect(leaf);
    const double area = std::max(1e-6, r.Width() * r.Height());
    min_area = std::min(min_area, area);
    max_area = std::max(max_area, area);
  }
  EXPECT_GT(max_area / min_area, 3.0)
      << "leaf sizes should vary with density";
}

}  // namespace
}  // namespace index
}  // namespace atypical
