// The query engine must work identically across pre-defined partition
// schemes: All ignores regions entirely; Gui's recall guarantee holds for
// any partition.
#include <gtest/gtest.h>

#include "analytics/ground_truth.h"
#include "analytics/metrics.h"
#include "analytics/report.h"
#include "index/rtree.h"

namespace atypical {
namespace {

class QueryPartitionTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ctx_ = analytics::BuildContext(WorkloadScale::kTiny, 2,
                                   analytics::DefaultForestParams(), 113)
               .release();
  }
  static void TearDownTestSuite() { delete ctx_; }

  // Builds an engine over an arbitrary partition (rebuilding the guidance
  // cube on it).
  struct Stack {
    std::unique_ptr<cube::BottomUpCube> cube;
    std::unique_ptr<QueryEngine> engine;
  };
  static Stack MakeStack(const SpatialPartition* partition) {
    Stack stack;
    stack.cube = std::make_unique<cube::BottomUpCube>();
    for (const auto& month : ctx_->monthly_atypical) {
      stack.cube->MergeFrom(cube::BottomUpCube::FromAtypical(
          month, *partition, ctx_->time_grid()));
    }
    stack.engine = std::make_unique<QueryEngine>(
        &ctx_->network(), partition, ctx_->forest.get(), stack.cube.get(),
        analytics::DefaultEngineOptions());
    return stack;
  }

  static analytics::ExperimentContext* ctx_;
};

analytics::ExperimentContext* QueryPartitionTest::ctx_ = nullptr;

TEST_F(QueryPartitionTest, AllIsPartitionInvariant) {
  const AnalyticalQuery query = ctx_->WholeAreaQuery(14);
  const index::RTreeLeafPartition rtree(ctx_->network(), 8);
  const RegionGrid grid(ctx_->network(), 4.0);
  const QueryResult a = MakeStack(&rtree).engine->Run(query,
                                                      QueryStrategy::kAll);
  const QueryResult b = MakeStack(&grid).engine->Run(query,
                                                     QueryStrategy::kAll);
  ASSERT_EQ(a.clusters.size(), b.clusters.size());
  for (size_t i = 0; i < a.clusters.size(); ++i) {
    EXPECT_EQ(a.clusters[i].micro_ids, b.clusters[i].micro_ids);
  }
}

TEST_F(QueryPartitionTest, GuidedKeepsSignificantMassOnEveryPartition) {
  const AnalyticalQuery query = ctx_->WholeAreaQuery(14);
  const QueryResult all =
      ctx_->MakeEngine(analytics::DefaultEngineOptions())
          .Run(query, QueryStrategy::kAll);
  const analytics::GroundTruth gt = analytics::ComputeGroundTruth(all);
  const auto severities = ctx_->forest->MicroSeverities(query.days);

  const index::RTreeLeafPartition rtree_fine(ctx_->network(), 6);
  const index::RTreeLeafPartition rtree_coarse(ctx_->network(), 20);
  const RegionGrid grid_fine(ctx_->network(), 2.0);
  const RegionGrid grid_coarse(ctx_->network(), 6.0);
  for (const SpatialPartition* partition :
       {static_cast<const SpatialPartition*>(&rtree_fine),
        static_cast<const SpatialPartition*>(&rtree_coarse),
        static_cast<const SpatialPartition*>(&grid_fine),
        static_cast<const SpatialPartition*>(&grid_coarse)}) {
    const QueryResult gui =
        MakeStack(partition).engine->Run(query, QueryStrategy::kGuided);
    const analytics::PrecisionRecall pr =
        analytics::EvaluateMass(gui, gt, severities);
    EXPECT_GT(pr.recall, 0.95) << partition->Name();
    EXPECT_LE(gui.cost.input_micro_clusters,
              all.cost.input_micro_clusters)
        << partition->Name();
  }
}

TEST_F(QueryPartitionTest, RedZoneCountBoundedByRegions) {
  const AnalyticalQuery query = ctx_->WholeAreaQuery(7);
  const index::RTreeLeafPartition partition(ctx_->network(), 8);
  const QueryResult gui =
      MakeStack(&partition).engine->Run(query, QueryStrategy::kGuided);
  EXPECT_LE(gui.cost.red_zones, gui.cost.regions_checked);
  EXPECT_EQ(gui.cost.regions_checked,
            static_cast<size_t>(partition.num_regions()));
}

}  // namespace
}  // namespace atypical
