#include "storage/format.h"

#include <gtest/gtest.h>

namespace atypical {
namespace storage {
namespace {

TEST(WireRecordTest, EncodeDecodeRoundTrip) {
  Reading r;
  r.sensor = 1234;
  r.window = 56789;
  r.speed_mph = 61.25f;
  r.occupancy = 0.375f;
  r.atypical_minutes = 4.5f;
  r.true_event = 0x1122334455667788ULL;
  uint8_t buf[kWireRecordBytes];
  EncodeRecord(r, buf);
  const Reading back = DecodeRecord(buf);
  EXPECT_EQ(back.sensor, r.sensor);
  EXPECT_EQ(back.window, r.window);
  EXPECT_EQ(back.speed_mph, r.speed_mph);
  EXPECT_EQ(back.occupancy, r.occupancy);
  EXPECT_EQ(back.atypical_minutes, r.atypical_minutes);
  EXPECT_EQ(back.true_event, r.true_event);
}

TEST(WireRecordTest, EncodingIsLittleEndianStable) {
  Reading r;
  r.sensor = 0x01020304;
  r.window = 0x0a0b0c0d;
  uint8_t buf[kWireRecordBytes] = {};
  EncodeRecord(r, buf);
  EXPECT_EQ(buf[0], 0x04);
  EXPECT_EQ(buf[1], 0x03);
  EXPECT_EQ(buf[2], 0x02);
  EXPECT_EQ(buf[3], 0x01);
  EXPECT_EQ(buf[4], 0x0d);
  EXPECT_EQ(buf[7], 0x0a);
}

TEST(FileHeaderTest, EncodeDecodeRoundTrip) {
  FileHeader h;
  h.version = 1;
  h.month_index = 11;
  h.first_day = 308;
  h.num_days = 28;
  h.num_sensors = 450;
  h.window_minutes = 15;
  h.block_records = 1024;
  uint8_t buf[kFileHeaderBytes];
  EncodeFileHeader(h, buf);
  const FileHeader back = DecodeFileHeader(buf);
  EXPECT_EQ(back.version, h.version);
  EXPECT_EQ(back.month_index, h.month_index);
  EXPECT_EQ(back.first_day, h.first_day);
  EXPECT_EQ(back.num_days, h.num_days);
  EXPECT_EQ(back.num_sensors, h.num_sensors);
  EXPECT_EQ(back.window_minutes, h.window_minutes);
  EXPECT_EQ(back.block_records, h.block_records);
}

TEST(BlockHeaderTest, EncodeDecodeRoundTrip) {
  BlockHeader b;
  b.record_count = 65536;
  b.crc32 = 0xdeadbeef;
  uint8_t buf[kBlockHeaderBytes];
  EncodeBlockHeader(b, buf);
  const BlockHeader back = DecodeBlockHeader(buf);
  EXPECT_EQ(back.record_count, b.record_count);
  EXPECT_EQ(back.crc32, b.crc32);
}

TEST(FooterTest, EncodeDecodeRoundTrip) {
  Footer f;
  f.total_records = 0x0102030405060708ULL;
  uint8_t buf[kFooterBytes];
  EncodeFooter(f, buf);
  const Footer back = DecodeFooter(buf);
  EXPECT_EQ(back.magic, kFooterMagic);
  EXPECT_EQ(back.total_records, f.total_records);
}

TEST(Crc32Test, MatchesKnownVector) {
  // The canonical CRC-32 check value.
  const char data[] = "123456789";
  EXPECT_EQ(Crc32(data, 9), 0xcbf43926u);
}

TEST(Crc32Test, EmptyInputIsZero) { EXPECT_EQ(Crc32("", 0), 0u); }

TEST(Crc32Test, SensitiveToSingleBitFlips) {
  uint8_t data[16] = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16};
  const uint32_t base = Crc32(data, sizeof(data));
  for (size_t i = 0; i < sizeof(data); ++i) {
    data[i] ^= 0x01;
    EXPECT_NE(Crc32(data, sizeof(data)), base) << "byte " << i;
    data[i] ^= 0x01;
  }
}

TEST(FormatConstantsTest, FooterMagicCannotBeARecordCount) {
  // NextBlock disambiguates footer from block by the first u32; the footer
  // magic must therefore exceed any plausible record count.
  EXPECT_GT(kFooterMagic, 1u << 28);
}

}  // namespace
}  // namespace storage
}  // namespace atypical
