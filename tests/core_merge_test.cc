// Algorithm 2 and its algebraic properties (Properties 2 and 3).
#include "core/merge.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace atypical {
namespace {

AtypicalCluster RandomCluster(Rng& rng, ClusterIdGenerator* ids,
                              uint32_t key_space = 20) {
  AtypicalCluster c;
  c.id = ids->Next();
  c.micro_ids = {c.id};
  const int n = 1 + static_cast<int>(rng.UniformInt(uint64_t{10}));
  for (int i = 0; i < n; ++i) {
    c.spatial.Add(static_cast<uint32_t>(rng.UniformInt(uint64_t{key_space})),
                  rng.Uniform(1.0, 20.0));
    c.temporal.Add(static_cast<uint32_t>(rng.UniformInt(uint64_t{key_space})),
                   rng.Uniform(1.0, 20.0));
  }
  c.first_day = static_cast<int>(rng.UniformInt(uint64_t{20}));
  c.last_day = c.first_day + static_cast<int>(rng.UniformInt(uint64_t{3}));
  c.num_records = n;
  return c;
}

bool FeaturesEqual(const AtypicalCluster& a, const AtypicalCluster& b) {
  if (a.spatial.entries().size() != b.spatial.entries().size()) return false;
  if (a.temporal.entries().size() != b.temporal.entries().size()) return false;
  for (size_t i = 0; i < a.spatial.entries().size(); ++i) {
    const auto& ea = a.spatial.entries()[i];
    const auto& eb = b.spatial.entries()[i];
    if (ea.key != eb.key || std::abs(ea.severity - eb.severity) > 1e-9) {
      return false;
    }
  }
  for (size_t i = 0; i < a.temporal.entries().size(); ++i) {
    const auto& ea = a.temporal.entries()[i];
    const auto& eb = b.temporal.entries()[i];
    if (ea.key != eb.key || std::abs(ea.severity - eb.severity) > 1e-9) {
      return false;
    }
  }
  return true;
}

TEST(MergeTest, PaperStyleExample) {
  // CA and CC from Fig. 5 (truncated): common sensors accumulate, the rest
  // carry over.
  ClusterIdGenerator ids(100);
  AtypicalCluster ca;
  ca.id = 1;
  ca.micro_ids = {1};
  ca.spatial.Add(1, 182.0);
  ca.spatial.Add(2, 97.0);
  ca.temporal.Add(32, 150.0);
  ca.temporal.Add(33, 129.0);
  AtypicalCluster cc;
  cc.id = 2;
  cc.micro_ids = {2};
  cc.spatial.Add(1, 103.0);
  cc.spatial.Add(7, 54.0);
  cc.temporal.Add(33, 80.0);
  cc.temporal.Add(34, 77.0);

  const AtypicalCluster merged = MergeClusters(ca, cc, &ids);
  EXPECT_EQ(merged.id, 100u);  // fresh id
  EXPECT_DOUBLE_EQ(merged.spatial.Get(1), 285.0);  // common sensor s1
  EXPECT_DOUBLE_EQ(merged.spatial.Get(2), 97.0);
  EXPECT_DOUBLE_EQ(merged.spatial.Get(7), 54.0);
  EXPECT_DOUBLE_EQ(merged.temporal.Get(33), 209.0);  // common window
  EXPECT_DOUBLE_EQ(merged.temporal.Get(32), 150.0);
  EXPECT_DOUBLE_EQ(merged.temporal.Get(34), 77.0);
  EXPECT_DOUBLE_EQ(merged.severity(), ca.severity() + cc.severity());
  EXPECT_EQ(merged.micro_ids, (std::vector<ClusterId>{1, 2}));
  EXPECT_EQ(merged.left_child, 1u);
  EXPECT_EQ(merged.right_child, 2u);
}

TEST(MergeTest, MetadataCombines) {
  ClusterIdGenerator ids(10);
  Rng rng(1);
  AtypicalCluster a = RandomCluster(rng, &ids);
  AtypicalCluster b = RandomCluster(rng, &ids);
  a.first_day = 3;
  a.last_day = 5;
  b.first_day = 1;
  b.last_day = 4;
  a.num_records = 11;
  b.num_records = 22;
  const AtypicalCluster m = MergeClusters(a, b, &ids);
  EXPECT_EQ(m.first_day, 1);
  EXPECT_EQ(m.last_day, 5);
  EXPECT_EQ(m.num_records, 33);
  EXPECT_EQ(m.num_micros(), 2);
}

TEST(MergeTest, CommutativeOnFeatures) {
  // Property 3 part 1: C1 merge C2 == C2 merge C1 (ids aside).
  Rng rng(42);
  ClusterIdGenerator ids(1);
  for (int trial = 0; trial < 100; ++trial) {
    const AtypicalCluster a = RandomCluster(rng, &ids);
    const AtypicalCluster b = RandomCluster(rng, &ids);
    const AtypicalCluster ab = MergeClusters(a, b, &ids);
    const AtypicalCluster ba = MergeClusters(b, a, &ids);
    EXPECT_TRUE(FeaturesEqual(ab, ba)) << "trial " << trial;
    EXPECT_EQ(ab.micro_ids, ba.micro_ids);  // sorted union
  }
}

TEST(MergeTest, AssociativeOnFeatures) {
  // Property 3 part 2: (C1 merge C2) merge C3 == C1 merge (C2 merge C3).
  Rng rng(43);
  ClusterIdGenerator ids(1);
  for (int trial = 0; trial < 100; ++trial) {
    const AtypicalCluster a = RandomCluster(rng, &ids);
    const AtypicalCluster b = RandomCluster(rng, &ids);
    const AtypicalCluster c = RandomCluster(rng, &ids);
    const AtypicalCluster left =
        MergeClusters(MergeClusters(a, b, &ids), c, &ids);
    const AtypicalCluster right =
        MergeClusters(a, MergeClusters(b, c, &ids), &ids);
    EXPECT_TRUE(FeaturesEqual(left, right)) << "trial " << trial;
    EXPECT_EQ(left.micro_ids, right.micro_ids);
  }
}

TEST(MergeTest, AlgebraicAgainstDirectAggregation) {
  // Property 2: merging n clusters in any grouping equals aggregating all
  // their underlying contributions directly.
  Rng rng(44);
  ClusterIdGenerator ids(1);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<AtypicalCluster> parts;
    FeatureVector direct_sf;
    FeatureVector direct_tf;
    for (int i = 0; i < 6; ++i) {
      parts.push_back(RandomCluster(rng, &ids));
      for (const auto& e : parts.back().spatial.entries()) {
        direct_sf.Add(e.key, e.severity);
      }
      for (const auto& e : parts.back().temporal.entries()) {
        direct_tf.Add(e.key, e.severity);
      }
    }
    // Left fold.
    AtypicalCluster folded = parts[0];
    for (size_t i = 1; i < parts.size(); ++i) {
      folded = MergeClusters(folded, parts[i], &ids);
    }
    // Balanced tree fold.
    std::vector<AtypicalCluster> level = parts;
    while (level.size() > 1) {
      std::vector<AtypicalCluster> next;
      for (size_t i = 0; i + 1 < level.size(); i += 2) {
        next.push_back(MergeClusters(level[i], level[i + 1], &ids));
      }
      if (level.size() % 2 == 1) next.push_back(level.back());
      level = std::move(next);
    }
    for (const auto& e : direct_sf.entries()) {
      EXPECT_NEAR(folded.spatial.Get(e.key), e.severity, 1e-9);
      EXPECT_NEAR(level[0].spatial.Get(e.key), e.severity, 1e-9);
    }
    for (const auto& e : direct_tf.entries()) {
      EXPECT_NEAR(folded.temporal.Get(e.key), e.severity, 1e-9);
      EXPECT_NEAR(level[0].temporal.Get(e.key), e.severity, 1e-9);
    }
  }
}

TEST(MergeTest, SeverityInvariantPreserved) {
  Rng rng(45);
  ClusterIdGenerator ids(1);
  for (int trial = 0; trial < 50; ++trial) {
    AtypicalCluster a = RandomCluster(rng, &ids);
    AtypicalCluster b = RandomCluster(rng, &ids);
    // Make inputs satisfy Σμ == Σν by construction.
    // (RandomCluster does not guarantee it, so check relative totals only.)
    const AtypicalCluster m = MergeClusters(a, b, &ids);
    EXPECT_NEAR(m.spatial.total(), a.spatial.total() + b.spatial.total(),
                1e-9);
    EXPECT_NEAR(m.temporal.total(), a.temporal.total() + b.temporal.total(),
                1e-9);
  }
}

TEST(MergeTest, DominantEventFollowsBiggerCluster) {
  ClusterIdGenerator ids(1);
  AtypicalCluster a;
  a.id = ids.Next();
  a.spatial.Add(1, 100.0);
  a.temporal.Add(1, 100.0);
  a.dominant_true_event = 7;
  a.micro_ids = {a.id};
  AtypicalCluster b;
  b.id = ids.Next();
  b.spatial.Add(2, 1.0);
  b.temporal.Add(2, 1.0);
  b.dominant_true_event = 9;
  b.micro_ids = {b.id};
  EXPECT_EQ(MergeClusters(a, b, &ids).dominant_true_event, 7u);
  EXPECT_EQ(MergeClusters(b, a, &ids).dominant_true_event, 7u);
}

TEST(MergeDeathTest, MixedKeyModesDie) {
  ClusterIdGenerator ids(1);
  Rng rng(46);
  AtypicalCluster a = RandomCluster(rng, &ids);
  AtypicalCluster b = RandomCluster(rng, &ids);
  b.key_mode = TemporalKeyMode::kTimeOfDay;
  EXPECT_DEATH((void)MergeClusters(a, b, &ids), "key modes");
}

}  // namespace
}  // namespace atypical
