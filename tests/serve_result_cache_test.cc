// QueryResultCache unit tests: hit/miss/eviction accounting, strict LRU
// order, epoch keying and invalidation, and the disabled (0-entry) mode.
#include <gtest/gtest.h>

#include <memory>

#include "serve/result_cache.h"

namespace atypical {
namespace serve {
namespace {

// A result distinguishable by its threshold (the cache never inspects
// contents, so any marker works).
std::shared_ptr<const QueryResult> MarkedResult(double marker) {
  auto r = std::make_shared<QueryResult>();
  r->threshold = marker;
  return r;
}

QueryCacheKey KeyFor(int day, uint64_t epoch,
                     QueryStrategy strategy = QueryStrategy::kAll) {
  AnalyticalQuery query;
  query.area = GeoRect{0, 0, 10, 10};
  query.days = DayRange{day, day + 6};
  return QueryCacheKey::Make(query, 0.05, strategy, epoch);
}

TEST(QueryResultCacheTest, MissThenHit) {
  QueryResultCache cache(4);
  const QueryCacheKey key = KeyFor(0, 1);
  EXPECT_EQ(cache.FindCached(key), nullptr);
  cache.StoreCached(key, MarkedResult(1.0));

  std::shared_ptr<const QueryResult> hit = cache.FindCached(key);
  ASSERT_NE(hit, nullptr);
  EXPECT_DOUBLE_EQ(hit->threshold, 1.0);

  const QueryResultCache::CacheTotals totals = cache.totals();
  EXPECT_EQ(totals.hits, 1u);
  EXPECT_EQ(totals.misses, 1u);
  EXPECT_EQ(totals.evictions, 0u);
  EXPECT_EQ(totals.entries, 1u);
  EXPECT_DOUBLE_EQ(totals.hit_rate_percent, 50.0);
}

TEST(QueryResultCacheTest, KeyCoversEveryQueryDimension) {
  QueryResultCache cache(16);
  const QueryCacheKey base = KeyFor(0, 1, QueryStrategy::kAll);
  cache.StoreCached(base, MarkedResult(1.0));

  // Different T, strategy, or epoch: all distinct entries.
  EXPECT_EQ(cache.FindCached(KeyFor(7, 1)), nullptr);
  EXPECT_EQ(cache.FindCached(KeyFor(0, 1, QueryStrategy::kGuided)), nullptr);
  EXPECT_EQ(cache.FindCached(KeyFor(0, 2)), nullptr);

  // Different W or δs likewise.
  QueryCacheKey other_area = base;
  other_area.max_x = 5.0;
  EXPECT_EQ(cache.FindCached(other_area), nullptr);
  QueryCacheKey other_delta = base;
  other_delta.delta_s = 0.10;
  EXPECT_EQ(cache.FindCached(other_delta), nullptr);

  ASSERT_NE(cache.FindCached(base), nullptr);
}

TEST(QueryResultCacheTest, EvictsLeastRecentlyUsed) {
  QueryResultCache cache(2);
  cache.StoreCached(KeyFor(0, 1), MarkedResult(0.0));
  cache.StoreCached(KeyFor(7, 1), MarkedResult(7.0));
  // Touch day-0 so day-7 becomes the LRU victim.
  ASSERT_NE(cache.FindCached(KeyFor(0, 1)), nullptr);
  cache.StoreCached(KeyFor(14, 1), MarkedResult(14.0));

  EXPECT_NE(cache.FindCached(KeyFor(0, 1)), nullptr);
  EXPECT_EQ(cache.FindCached(KeyFor(7, 1)), nullptr);  // evicted
  EXPECT_NE(cache.FindCached(KeyFor(14, 1)), nullptr);
  EXPECT_EQ(cache.totals().evictions, 1u);
  EXPECT_EQ(cache.totals().entries, 2u);
}

TEST(QueryResultCacheTest, DropStaleEpochsRemovesOnlyOldEntries) {
  QueryResultCache cache(8);
  cache.StoreCached(KeyFor(0, 1), MarkedResult(1.0));
  cache.StoreCached(KeyFor(7, 1), MarkedResult(1.0));
  cache.StoreCached(KeyFor(0, 2), MarkedResult(2.0));

  EXPECT_EQ(cache.DropStaleEpochs(2), 2u);
  EXPECT_EQ(cache.FindCached(KeyFor(0, 1)), nullptr);
  EXPECT_EQ(cache.FindCached(KeyFor(7, 1)), nullptr);
  EXPECT_NE(cache.FindCached(KeyFor(0, 2)), nullptr);

  const QueryResultCache::CacheTotals totals = cache.totals();
  EXPECT_EQ(totals.invalidations, 2u);
  EXPECT_EQ(totals.entries, 1u);

  // Idempotent once clean.
  EXPECT_EQ(cache.DropStaleEpochs(2), 0u);
}

TEST(QueryResultCacheTest, RedundantStoreKeepsFirstResult) {
  QueryResultCache cache(4);
  const QueryCacheKey key = KeyFor(0, 1);
  cache.StoreCached(key, MarkedResult(1.0));
  // A racing miss on the same key re-stores; deterministic engines make the
  // two results identical, so keeping the first is correct.
  cache.StoreCached(key, MarkedResult(1.0));
  EXPECT_EQ(cache.totals().entries, 1u);
}

TEST(QueryResultCacheTest, ZeroCapacityDisablesCaching) {
  QueryResultCache cache(0);
  const QueryCacheKey key = KeyFor(0, 1);
  cache.StoreCached(key, MarkedResult(1.0));
  EXPECT_EQ(cache.FindCached(key), nullptr);
  EXPECT_EQ(cache.totals().entries, 0u);
  EXPECT_EQ(cache.totals().misses, 1u);
}

}  // namespace
}  // namespace serve
}  // namespace atypical
