#include "util/status.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/logging.h"

namespace atypical {
namespace {

// The no-exceptions contract leans on moves being cheap and available; pin
// that down at compile time alongside the [[nodiscard]] markings.
static_assert(std::is_move_constructible_v<Status>);
static_assert(std::is_move_assignable_v<Status>);
static_assert(std::is_move_constructible_v<Result<std::string>>);
static_assert(std::is_move_assignable_v<Result<std::string>>);

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = InvalidArgumentError("bad delta");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad delta");
  EXPECT_EQ(s.ToString(), "invalid_argument: bad delta");
}

TEST(StatusTest, FactoryHelpersSetExpectedCodes) {
  EXPECT_EQ(NotFoundError("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(OutOfRangeError("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(FailedPreconditionError("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(DataLossError("x").code(), StatusCode::kDataLoss);
  EXPECT_EQ(IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(UnimplementedError("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(InternalError("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(InvalidArgumentError("a"), InvalidArgumentError("a"));
  EXPECT_FALSE(InvalidArgumentError("a") == InvalidArgumentError("b"));
  EXPECT_FALSE(InvalidArgumentError("a") == NotFoundError("a"));
  EXPECT_EQ(Status::Ok(), Status());
}

TEST(StatusCodeNameTest, AllCodesNamed) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "ok");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInvalidArgument),
               "invalid_argument");
  EXPECT_STREQ(StatusCodeName(StatusCode::kDataLoss), "data_loss");
  EXPECT_STREQ(StatusCodeName(StatusCode::kIoError), "io_error");
}

TEST(StatusCodeNameTest, OutOfEnumValueIsUnknown) {
  // A StatusCode deserialized from a corrupt or future source must not read
  // past the name table; it degrades to "unknown".
  EXPECT_STREQ(StatusCodeName(static_cast<StatusCode>(99)), "unknown");
  EXPECT_STREQ(StatusCodeName(static_cast<StatusCode>(-1)), "unknown");
  const Status s(static_cast<StatusCode>(42), "from the future");
  EXPECT_EQ(s.ToString(), "unknown: from the future");
}

TEST(StatusTest, MoveConstructionTransfersCodeAndMessage) {
  Status src = DataLossError("block 7 torn");
  const Status dst = std::move(src);
  EXPECT_EQ(dst.code(), StatusCode::kDataLoss);
  EXPECT_EQ(dst.message(), "block 7 torn");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(NotFoundError("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  const std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "payload");
}

TEST(ResultTest, MoveConstructionTransfersValue) {
  Result<std::vector<int>> src(std::vector<int>{1, 2, 3});
  const Result<std::vector<int>> dst = std::move(src);
  ASSERT_TRUE(dst.ok());
  EXPECT_EQ(dst.value().size(), 3u);
}

TEST(ResultTest, MoveConstructionTransfersError) {
  Result<std::vector<int>> src(NotFoundError("gone"));
  const Result<std::vector<int>> dst = std::move(src);
  EXPECT_FALSE(dst.ok());
  EXPECT_EQ(dst.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(dst.status().message(), "gone");
}

TEST(ResultTest, MoveOnlyValueType) {
  // Result must not require copyability of T.
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  const std::unique_ptr<int> out = std::move(r).value();
  EXPECT_EQ(*out, 7);
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r(std::string("abc"));
  EXPECT_EQ(r->size(), 3u);
}

TEST(ResultDeathTest, ValueOnErrorDies) {
  Result<int> r(InternalError("boom"));
  EXPECT_DEATH((void)r.value(), "boom");
}

Status FailsWhen(bool fail) {
  ATYPICAL_RETURN_IF_ERROR(fail ? InternalError("inner") : Status::Ok());
  return Status::Ok();
}

TEST(ReturnIfErrorTest, PropagatesAndPasses) {
  EXPECT_TRUE(FailsWhen(false).ok());
  EXPECT_EQ(FailsWhen(true).code(), StatusCode::kInternal);
  EXPECT_EQ(FailsWhen(true).message(), "inner");
}

Status CountingStep(int* evaluations, bool fail) {
  ++*evaluations;
  return fail ? IoError("step failed") : Status::Ok();
}

Status RunTwoSteps(int* evaluations, bool fail_first) {
  ATYPICAL_RETURN_IF_ERROR(CountingStep(evaluations, fail_first));
  ATYPICAL_RETURN_IF_ERROR(CountingStep(evaluations, false));
  return Status::Ok();
}

TEST(ReturnIfErrorTest, EvaluatesExpressionExactlyOnce) {
  int evaluations = 0;
  EXPECT_TRUE(RunTwoSteps(&evaluations, false).ok());
  EXPECT_EQ(evaluations, 2);  // both steps ran, each exactly once

  evaluations = 0;
  EXPECT_EQ(RunTwoSteps(&evaluations, true).code(), StatusCode::kIoError);
  EXPECT_EQ(evaluations, 1);  // short-circuits after the failing step
}

TEST(ReturnIfErrorTest, CheckOkConsumesStatusExpressions) {
  // CHECK_OK / DCHECK_OK are the macro-level consumers of [[nodiscard]]
  // Status expressions; passing must be side-effect-transparent.
  int evaluations = 0;
  CHECK_OK(CountingStep(&evaluations, false));
  EXPECT_EQ(evaluations, 1);
}

TEST(ReturnIfErrorDeathTest, CheckOkDiesWithCodeAndMessage) {
  int evaluations = 0;
  EXPECT_DEATH(CHECK_OK(CountingStep(&evaluations, true)),
               "io_error: step failed");
}

}  // namespace
}  // namespace atypical
