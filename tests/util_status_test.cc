#include "util/status.h"

#include <gtest/gtest.h>

namespace atypical {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = InvalidArgumentError("bad delta");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad delta");
  EXPECT_EQ(s.ToString(), "invalid_argument: bad delta");
}

TEST(StatusTest, FactoryHelpersSetExpectedCodes) {
  EXPECT_EQ(NotFoundError("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(OutOfRangeError("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(FailedPreconditionError("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(DataLossError("x").code(), StatusCode::kDataLoss);
  EXPECT_EQ(IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(UnimplementedError("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(InternalError("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(InvalidArgumentError("a"), InvalidArgumentError("a"));
  EXPECT_FALSE(InvalidArgumentError("a") == InvalidArgumentError("b"));
  EXPECT_FALSE(InvalidArgumentError("a") == NotFoundError("a"));
  EXPECT_EQ(Status::Ok(), Status());
}

TEST(StatusCodeNameTest, AllCodesNamed) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "ok");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInvalidArgument),
               "invalid_argument");
  EXPECT_STREQ(StatusCodeName(StatusCode::kDataLoss), "data_loss");
  EXPECT_STREQ(StatusCodeName(StatusCode::kIoError), "io_error");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(NotFoundError("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  const std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "payload");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r(std::string("abc"));
  EXPECT_EQ(r->size(), 3u);
}

TEST(ResultDeathTest, ValueOnErrorDies) {
  Result<int> r(InternalError("boom"));
  EXPECT_DEATH((void)r.value(), "boom");
}

Status FailsWhen(bool fail) {
  ATYPICAL_RETURN_IF_ERROR(fail ? InternalError("inner") : Status::Ok());
  return Status::Ok();
}

TEST(ReturnIfErrorTest, PropagatesAndPasses) {
  EXPECT_TRUE(FailsWhen(false).ok());
  EXPECT_EQ(FailsWhen(true).code(), StatusCode::kInternal);
  EXPECT_EQ(FailsWhen(true).message(), "inner");
}

}  // namespace
}  // namespace atypical
