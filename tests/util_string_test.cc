#include "util/string_util.h"

#include <gtest/gtest.h>

namespace atypical {
namespace {

TEST(StrPrintfTest, FormatsLikePrintf) {
  EXPECT_EQ(StrPrintf("x=%d y=%.2f s=%s", 3, 1.5, "ab"), "x=3 y=1.50 s=ab");
  EXPECT_EQ(StrPrintf("empty"), "empty");
  EXPECT_EQ(StrPrintf("%s", ""), "");
}

TEST(StrPrintfTest, LongOutput) {
  const std::string big(500, 'z');
  EXPECT_EQ(StrPrintf("%s!", big.c_str()), big + "!");
}

TEST(StrSplitTest, SplitsAndKeepsEmptyFields) {
  EXPECT_EQ(StrSplit("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(StrSplit("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(StrSplit("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(StrSplit(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(StrJoinTest, JoinsWithSeparator) {
  EXPECT_EQ(StrJoin({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(StrJoin({}, ","), "");
  EXPECT_EQ(StrJoin({"solo"}, ","), "solo");
}

TEST(SplitJoinTest, RoundTrip) {
  const std::string text = "q,w,e,r";
  EXPECT_EQ(StrJoin(StrSplit(text, ','), ","), text);
}

TEST(AffixTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("atypical", "aty"));
  EXPECT_FALSE(StartsWith("aty", "atypical"));
  EXPECT_TRUE(EndsWith("data.csv", ".csv"));
  EXPECT_FALSE(EndsWith("data.csv", ".bin"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_TRUE(EndsWith("x", ""));
}

TEST(HumanBytesTest, ScalesUnits) {
  EXPECT_EQ(HumanBytes(0), "0 B");
  EXPECT_EQ(HumanBytes(512), "512 B");
  EXPECT_EQ(HumanBytes(2048), "2.0 KB");
  EXPECT_EQ(HumanBytes(uint64_t{3} * 1024 * 1024), "3.0 MB");
  EXPECT_EQ(HumanBytes(uint64_t{5} * 1024 * 1024 * 1024), "5.0 GB");
}

TEST(ClockLabelTest, FormatsPaperStyleTimes) {
  EXPECT_EQ(ClockLabel(8 * 60 + 5), "8:05am");
  EXPECT_EQ(ClockLabel(18 * 60 + 20), "6:20pm");
  EXPECT_EQ(ClockLabel(0), "12:00am");
  EXPECT_EQ(ClockLabel(12 * 60), "12:00pm");
  EXPECT_EQ(ClockLabel(23 * 60 + 59), "11:59pm");
}

TEST(ClockLabelTest, WrapsAcrossDays) {
  EXPECT_EQ(ClockLabel(1440 + 60), "1:00am");
  EXPECT_EQ(ClockLabel(-60), "11:00pm");
}

TEST(ParseInt64Test, ParsesDigitsOnly) {
  EXPECT_EQ(ParseInt64("0"), 0);
  EXPECT_EQ(ParseInt64("12345"), 12345);
  EXPECT_EQ(ParseInt64(""), -1);
  EXPECT_EQ(ParseInt64("12a"), -1);
  EXPECT_EQ(ParseInt64("-5"), -1);
  EXPECT_EQ(ParseInt64("1.5"), -1);
}

TEST(ParseDoubleTest, ParsesOrFallsBack) {
  EXPECT_DOUBLE_EQ(ParseDouble("1.5", -1.0), 1.5);
  EXPECT_DOUBLE_EQ(ParseDouble("-2", -1.0), -2.0);
  EXPECT_DOUBLE_EQ(ParseDouble("", 9.0), 9.0);
  EXPECT_DOUBLE_EQ(ParseDouble("abc", 9.0), 9.0);
  EXPECT_DOUBLE_EQ(ParseDouble("1.5x", 9.0), 9.0);
}

}  // namespace
}  // namespace atypical
