// The ingest guard must (a) reproduce batch retrieval exactly from a stream
// permuted within its lateness horizon, (b) put every malformed record in
// exactly one quarantine counter with totals that reconcile, and (c) die
// under kStrict exactly where the raw builder would.
#include "core/ingest.h"

#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "analytics/report.h"
#include "gen/workload.h"
#include "util/fault.h"
#include "util/string_util.h"

namespace atypical {
namespace {

class IngestTest : public ::testing::Test {
 public:
  IngestTest()
      : workload_(MakeWorkload(WorkloadScale::kTiny, 61)),
        grid_(workload_->gen_config.time_grid),
        params_(analytics::DefaultForestParams().retrieval) {}

  // Canonical signature of a cluster set (ids and ordering differ between
  // batch and stream).
  static std::multiset<std::string> Signatures(
      const std::vector<AtypicalCluster>& clusters) {
    std::multiset<std::string> out;
    for (const AtypicalCluster& c : clusters) {
      std::string sig;
      for (const auto& e : c.spatial.entries()) {
        sig += StrPrintf("s%u:%.1f;", e.key, e.severity);
      }
      sig += "|";
      for (const auto& e : c.temporal.entries()) {
        sig += StrPrintf("t%u:%.1f;", e.key, e.severity);
      }
      out.insert(std::move(sig));
    }
    return out;
  }

  // Runs `records` through a guard with the given options; returns emitted
  // clusters, exposing the guard via `out_guard` when non-null.
  std::vector<AtypicalCluster> Run(const std::vector<AtypicalRecord>& records,
                                   const IngestOptions& options,
                                   IngestStats* out_stats = nullptr) {
    std::vector<AtypicalCluster> emitted;
    ClusterIdGenerator ids(1);
    RobustStreamingEventBuilder guard(
        workload_->sensors.get(), grid_, params_, &ids,
        [&](AtypicalCluster c) { emitted.push_back(std::move(c)); }, options);
    for (const AtypicalRecord& r : records) guard.Add(r);
    guard.Flush();
    if (out_stats != nullptr) *out_stats = guard.stats();
    return emitted;
  }

  std::vector<AtypicalCluster> Batch(
      const std::vector<AtypicalRecord>& records) {
    ClusterIdGenerator ids(100000);
    return RetrieveMicroClusters(records, *workload_->sensors, grid_, params_,
                                 &ids);
  }

  std::unique_ptr<Workload> workload_;
  TimeGrid grid_;
  RetrievalParams params_;
};

TEST_F(IngestTest, CleanStreamMatchesBatch) {
  const std::vector<AtypicalRecord> records =
      workload_->generator->GenerateMonthAtypical(0);
  IngestStats stats;
  const auto clusters = Run(records, IngestOptions{}, &stats);
  EXPECT_EQ(Signatures(clusters), Signatures(Batch(records)));
  EXPECT_EQ(stats.records_in, records.size());
  EXPECT_EQ(stats.accepted, records.size());
  EXPECT_EQ(stats.quarantined(), 0u);
  EXPECT_EQ(stats.reordered, 0u);
  EXPECT_TRUE(stats.Reconciles());
}

// Acceptance invariant (b): a stream permuted within the lateness horizon
// yields, under kBuffer, micro-clusters identical to batch retrieval on the
// clean input.
TEST_F(IngestTest, PermutedWithinHorizonMatchesBatch) {
  const std::vector<AtypicalRecord> records =
      workload_->generator->GenerateMonthAtypical(0);
  const auto batch_sigs = Signatures(Batch(records));
  for (const uint64_t seed : {3ull, 17ull, 99ull}) {
    FaultPlan plan(seed);
    IngestOptions options;
    options.policy = IngestPolicy::kBuffer;
    options.lateness_horizon_windows = 6;
    const std::vector<AtypicalRecord> permuted = plan.DelayRecords(records, 6);
    IngestStats stats;
    const auto clusters = Run(permuted, options, &stats);
    EXPECT_EQ(Signatures(clusters), batch_sigs) << "seed " << seed;
    EXPECT_EQ(stats.accepted, records.size());
    EXPECT_EQ(stats.quarantined(), 0u);
    EXPECT_GT(stats.reordered, 0u);
    EXPECT_TRUE(stats.Reconciles());
  }
}

// Acceptance invariant (c): every malformed record lands in exactly one
// quarantine counter and IngestStats totals reconcile with records fed.
TEST_F(IngestTest, MangledStreamReconcilesAndQuarantinesByCause) {
  const std::vector<AtypicalRecord> clean =
      workload_->generator->GenerateMonthAtypical(1);
  FaultPlan plan(5);
  std::vector<AtypicalRecord> feed = plan.DelayRecords(clean, 4);
  feed = plan.DuplicateRecords(std::move(feed), 0.05);
  feed = plan.CorruptRecords(std::move(feed), 0.08, grid_);

  IngestOptions options;
  options.policy = IngestPolicy::kBuffer;
  options.lateness_horizon_windows = 4;
  std::vector<AtypicalCluster> emitted;
  ClusterIdGenerator ids(1);
  RobustStreamingEventBuilder guard(
      workload_->sensors.get(), grid_, params_, &ids,
      [&](AtypicalCluster c) { emitted.push_back(std::move(c)); }, options);
  size_t forwarded = 0;
  guard.set_accept_tap([&](const AtypicalRecord&) { ++forwarded; });
  for (const AtypicalRecord& r : feed) {
    const QuarantineCause cause = guard.Add(r);
    // The verdict and the counters agree record by record.
    if (cause == QuarantineCause::kNone) {
      EXPECT_TRUE(guard.stats().Reconciles());
    }
  }
  guard.Flush();

  const IngestStats& stats = guard.stats();
  EXPECT_EQ(stats.records_in, feed.size());
  EXPECT_TRUE(stats.Reconciles());
  EXPECT_GT(stats.quarantined_unknown_sensor, 0u);
  EXPECT_GT(stats.quarantined_bad_severity, 0u);
  EXPECT_GT(stats.quarantined_excess_severity, 0u);
  EXPECT_GT(stats.quarantined_duplicate, 0u);
  // Every accepted record reached the inner builder after Flush.
  EXPECT_EQ(forwarded, stats.accepted);
  EXPECT_FALSE(emitted.empty());
}

TEST_F(IngestTest, EachMalformationLandsInItsOwnCounter) {
  IngestOptions options;
  options.policy = IngestPolicy::kBuffer;
  IngestStats stats;
  const WindowId w = grid_.MakeWindow(0, 10);
  const float nan = std::numeric_limits<float>::quiet_NaN();
  const float excess = static_cast<float>(grid_.window_minutes()) + 1.0f;
  const std::vector<AtypicalRecord> feed = {
      {0, w, 5.0f, kNoEvent},            // ok
      {kInvalidSensor, w, 5.0f, kNoEvent},
      {1u << 30, w, 5.0f, kNoEvent},     // out-of-range sensor id
      {1, w, nan, kNoEvent},
      {1, w, -2.0f, kNoEvent},
      {1, w, excess, kNoEvent},
      {0, w, 5.0f, kNoEvent},            // duplicate of the first
  };
  Run(feed, options, &stats);
  EXPECT_EQ(stats.records_in, feed.size());
  EXPECT_EQ(stats.accepted, 1u);
  EXPECT_EQ(stats.quarantined_unknown_sensor, 2u);
  EXPECT_EQ(stats.quarantined_bad_severity, 2u);
  EXPECT_EQ(stats.quarantined_excess_severity, 1u);
  EXPECT_EQ(stats.quarantined_duplicate, 1u);
  EXPECT_EQ(stats.quarantined_late, 0u);
  EXPECT_TRUE(stats.Reconciles());
}

TEST_F(IngestTest, BufferQuarantinesBeyondHorizonAsLate) {
  IngestOptions options;
  options.policy = IngestPolicy::kBuffer;
  options.lateness_horizon_windows = 3;
  IngestStats stats;
  const std::vector<AtypicalRecord> feed = {
      {0, 100, 5.0f, kNoEvent},
      {1, 97, 5.0f, kNoEvent},   // exactly at the horizon: admitted
      {2, 96, 5.0f, kNoEvent},   // one past the horizon: late
  };
  Run(feed, options, &stats);
  EXPECT_EQ(stats.accepted, 2u);
  EXPECT_EQ(stats.reordered, 1u);
  EXPECT_EQ(stats.quarantined_late, 1u);
  EXPECT_TRUE(stats.Reconciles());
}

TEST_F(IngestTest, DropPolicyDropsAnyOutOfOrderRecord) {
  IngestOptions options;
  options.policy = IngestPolicy::kDrop;
  IngestStats stats;
  const std::vector<AtypicalRecord> feed = {
      {0, 100, 5.0f, kNoEvent},
      {1, 99, 5.0f, kNoEvent},   // behind the watermark: dropped
      {2, 100, 5.0f, kNoEvent},  // equal window: kept
      {3, 101, 5.0f, kNoEvent},
  };
  const auto clusters = Run(feed, options, &stats);
  EXPECT_EQ(stats.accepted, 3u);
  EXPECT_EQ(stats.quarantined_late, 1u);
  EXPECT_EQ(stats.reordered, 0u);
  EXPECT_TRUE(stats.Reconciles());
  double severity = 0;
  for (const auto& c : clusters) severity += c.severity();
  EXPECT_DOUBLE_EQ(severity, 15.0);
}

TEST_F(IngestTest, BufferedRecordsDrainOnFlush) {
  IngestOptions options;
  options.policy = IngestPolicy::kBuffer;
  options.lateness_horizon_windows = 8;
  ClusterIdGenerator ids(1);
  size_t emitted = 0;
  RobustStreamingEventBuilder guard(
      workload_->sensors.get(), grid_, params_, &ids,
      [&](AtypicalCluster) { ++emitted; }, options);
  guard.Add({0, 100, 5.0f, kNoEvent});
  guard.Add({1, 102, 5.0f, kNoEvent});
  EXPECT_EQ(guard.buffered(), 2u);  // all within the horizon, still held
  guard.Flush();
  EXPECT_EQ(guard.buffered(), 0u);
  EXPECT_EQ(guard.open_events(), 0u);
  EXPECT_GT(emitted, 0u);
  EXPECT_EQ(guard.stats().accepted, 2u);
}

TEST_F(IngestTest, QuarantineLogRecordsCauses) {
  IngestOptions options;
  options.policy = IngestPolicy::kDrop;
  ClusterIdGenerator ids(1);
  RobustStreamingEventBuilder guard(
      workload_->sensors.get(), grid_, params_, &ids, [](AtypicalCluster) {},
      options);
  guard.Add({0, 100, 5.0f, kNoEvent});
  guard.Add({kInvalidSensor, 100, 5.0f, kNoEvent});
  guard.Add({1, 90, 5.0f, kNoEvent});
  ASSERT_EQ(guard.quarantine_log().size(), 2u);
  EXPECT_EQ(guard.quarantine_log()[0].cause, QuarantineCause::kUnknownSensor);
  EXPECT_EQ(guard.quarantine_log()[1].cause, QuarantineCause::kLate);
  EXPECT_EQ(guard.quarantine_log()[1].record.window, 90u);
}

TEST_F(IngestTest, StrictDiesOnMalformedRecord) {
  IngestOptions options;
  options.policy = IngestPolicy::kStrict;
  ClusterIdGenerator ids(1);
  RobustStreamingEventBuilder guard(workload_->sensors.get(), grid_, params_,
                                    &ids, [](AtypicalCluster) {}, options);
  guard.Add({0, 100, 5.0f, kNoEvent});
  EXPECT_DEATH(guard.Add({kInvalidSensor, 101, 5.0f, kNoEvent}),
               "unknown_sensor");
}

TEST_F(IngestTest, StrictDiesOnOutOfOrderRecord) {
  IngestOptions options;
  options.policy = IngestPolicy::kStrict;
  ClusterIdGenerator ids(1);
  RobustStreamingEventBuilder guard(workload_->sensors.get(), grid_, params_,
                                    &ids, [](AtypicalCluster) {}, options);
  guard.Add({0, 100, 5.0f, kNoEvent});
  EXPECT_DEATH(guard.Add({1, 99, 5.0f, kNoEvent}),
               "non-decreasing window order");
}

TEST_F(IngestTest, StrictCleanStreamMatchesRawBuilder) {
  const std::vector<AtypicalRecord> records =
      workload_->generator->GenerateMonthAtypical(2);
  IngestOptions options;
  options.policy = IngestPolicy::kStrict;
  IngestStats stats;
  const auto clusters = Run(records, options, &stats);
  ClusterIdGenerator ids(1);
  const auto raw = StreamMicroClusters(records, *workload_->sensors, grid_,
                                       params_, &ids);
  EXPECT_EQ(Signatures(clusters), Signatures(raw));
  EXPECT_EQ(stats.accepted, records.size());
}

TEST_F(IngestTest, ResetServesConsecutiveDays) {
  // One guard across two feeds whose window ids restart (the worst case:
  // the exact same stream again).  Reset() must rewind the inner builder's
  // window watermark AND clear the guard's own dedup state — every re-fed
  // (window, sensor) pair is a fresh observation, not a duplicate.  Stats
  // stay cumulative across Reset().
  const std::vector<AtypicalRecord> feed =
      workload_->generator->GenerateMonthAtypical(0);

  std::vector<AtypicalCluster> emitted;
  ClusterIdGenerator ids(1);
  RobustStreamingEventBuilder guard(
      workload_->sensors.get(), grid_, params_, &ids,
      [&](AtypicalCluster c) { emitted.push_back(std::move(c)); });
  for (const AtypicalRecord& r : feed) guard.Add(r);
  guard.Reset();
  EXPECT_EQ(guard.buffered(), 0u);
  EXPECT_EQ(guard.open_events(), 0u);
  const size_t after_first = emitted.size();
  // Without the dedup clear every record would be quarantined as a
  // duplicate; without the watermark rewind the inner builder would die.
  for (const AtypicalRecord& r : feed) guard.Add(r);
  guard.Flush();

  EXPECT_TRUE(guard.stats().Reconciles());
  EXPECT_EQ(guard.stats().records_in, 2 * feed.size());
  EXPECT_EQ(guard.stats().accepted, 2 * feed.size());
  EXPECT_EQ(guard.stats().quarantined(), 0u);

  const auto batch_sigs = Signatures(Batch(feed));
  EXPECT_EQ(Signatures({emitted.begin(),
                        emitted.begin() + static_cast<long>(after_first)}),
            batch_sigs);
  EXPECT_EQ(Signatures({emitted.begin() + static_cast<long>(after_first),
                        emitted.end()}),
            batch_sigs);
}

}  // namespace
}  // namespace atypical
