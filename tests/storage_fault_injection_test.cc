// Operation-level fault injection through the writer and reader decorator
// hooks: a scheduled writer fault leaves a torn-but-salvageable file, a
// scheduled reader fault is transient (the retry succeeds), and
// probabilistic schedules replay bit-identically from their seed.
#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "gen/workload.h"
#include "storage/fault_injection.h"
#include "storage/reader.h"
#include "storage/writer.h"
#include "util/logging.h"

namespace atypical {
namespace storage {
namespace {

constexpr uint32_t kBlockRecords = 64;
constexpr uint64_t kNumBlocks = 4;
constexpr uint64_t kTotalRecords = kNumBlocks * kBlockRecords;

class FaultInjectionTest : public ::testing::Test {
 protected:
  FaultInjectionTest() {
    const auto workload = MakeWorkload(WorkloadScale::kTiny, 4);
    const Dataset full = workload->generator->GenerateMonth(0);
    std::vector<Reading> slice(full.readings().begin(),
                               full.readings().begin() + kTotalRecords);
    dataset_ = Dataset(full.meta(), std::move(slice));
    path_ = ::testing::TempDir() + "/fault_injection_test.atyp";
  }
  ~FaultInjectionTest() override { std::remove(path_.c_str()); }

  Status WriteWithFaults(IoFaultSchedule* faults) {
    WriterOptions options;
    options.block_records = kBlockRecords;
    options.faults = faults;
    Result<DatasetWriter> writer =
        DatasetWriter::Open(path_, dataset_.meta(), options);
    if (!writer.ok()) return writer.status();
    ATYPICAL_RETURN_IF_ERROR(writer->Append(dataset_.readings()));
    return writer->Finish();
  }

  Dataset dataset_;
  std::string path_;
};

// A fault at block-write N tears block N mid-write; salvage recovers the N
// preceding blocks exactly, for every N.
TEST_F(FaultInjectionTest, TornBlockWriteLeavesSalvageablePrefix) {
  for (uint64_t fail_op = 0; fail_op < kNumBlocks; ++fail_op) {
    IoFaultSchedule faults = IoFaultSchedule::FailAt({fail_op});
    const Status written = WriteWithFaults(&faults);
    EXPECT_EQ(written.code(), StatusCode::kIoError) << written.ToString();
    EXPECT_EQ(faults.failures_injected(), 1u);

    ReaderOptions options;
    options.salvage = true;
    SalvageReport report;
    const Result<Dataset> got = ReadDataset(path_, options, &report);
    ASSERT_TRUE(got.ok()) << "fail_op=" << fail_op << ": "
                          << got.status().ToString();
    EXPECT_EQ(report.records_recovered, fail_op * kBlockRecords);
    EXPECT_TRUE(report.footer_missing) << "fail_op=" << fail_op;
    EXPECT_FALSE(report.clean());
    for (size_t i = 0; i < got->readings().size(); ++i) {
      ASSERT_EQ(got->readings()[i].window, dataset_.readings()[i].window);
      ASSERT_EQ(got->readings()[i].sensor, dataset_.readings()[i].sensor);
    }
    // Strict mode refuses the torn file outright.
    EXPECT_EQ(ReadDataset(path_).status().code(), StatusCode::kDataLoss);
  }
}

// A fault on the footer write loses no data records — only the footer — and
// salvage reports exactly that.
TEST_F(FaultInjectionTest, FooterWriteFaultLosesNoRecords) {
  // Op indices 0..3 are the block writes; op 4 is the footer.
  IoFaultSchedule faults = IoFaultSchedule::FailAt({kNumBlocks});
  EXPECT_EQ(WriteWithFaults(&faults).code(), StatusCode::kIoError);

  ReaderOptions options;
  options.salvage = true;
  SalvageReport report;
  const Result<Dataset> got = ReadDataset(path_, options, &report);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(report.records_recovered, kTotalRecords);
  EXPECT_EQ(report.blocks_skipped, 0u);
  EXPECT_EQ(report.records_lost, 0u);
  EXPECT_TRUE(report.footer_missing);
}

// After any injected write fault the writer is dead: further Append/Finish
// calls fail kFailedPrecondition instead of appending past a torn block.
TEST_F(FaultInjectionTest, WriterIsDeadAfterInjectedFault) {
  IoFaultSchedule faults = IoFaultSchedule::FailAt({0});
  WriterOptions options;
  options.block_records = kBlockRecords;
  options.faults = &faults;
  Result<DatasetWriter> writer =
      DatasetWriter::Open(path_, dataset_.meta(), options);
  ASSERT_TRUE(writer.ok());
  EXPECT_EQ(writer->Append(dataset_.readings()).code(), StatusCode::kIoError);
  EXPECT_EQ(writer->Append(dataset_.readings()).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(writer->Finish().code(), StatusCode::kFailedPrecondition);
}

// A reader fault fires before any bytes are consumed, so the same NextBlock
// retried succeeds and the full dataset still comes back.
TEST_F(FaultInjectionTest, ReaderFaultIsTransient) {
  CHECK_OK(WriteWithFaults(nullptr));

  IoFaultSchedule faults = IoFaultSchedule::FailAt({1});  // second block read
  ReaderOptions options;
  options.faults = &faults;
  Result<DatasetReader> reader = DatasetReader::Open(path_, options);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();

  std::vector<Reading> all;
  std::vector<Reading> block;
  int transient_errors = 0;
  while (true) {
    Result<bool> more = reader->NextBlock(&block);
    if (!more.ok()) {
      ASSERT_EQ(more.status().code(), StatusCode::kIoError);
      ++transient_errors;
      continue;  // retry the same block
    }
    if (!*more) break;
    all.insert(all.end(), block.begin(), block.end());
  }
  EXPECT_EQ(transient_errors, 1);
  ASSERT_EQ(all.size(), dataset_.readings().size());
  for (size_t i = 0; i < all.size(); ++i) {
    ASSERT_EQ(all[i].window, dataset_.readings()[i].window);
    ASSERT_EQ(all[i].sensor, dataset_.readings()[i].sensor);
  }
}

// Probabilistic schedules are deterministic in their seed: two schedules
// with the same (seed, p) inject faults at identical operations.
TEST_F(FaultInjectionTest, ProbabilisticScheduleReplaysFromSeed) {
  std::vector<uint64_t> first;
  std::vector<uint64_t> second;
  for (std::vector<uint64_t>* out : {&first, &second}) {
    IoFaultSchedule faults(99, 0.3);
    for (uint64_t op = 0; op < 200; ++op) {
      if (!faults.OnOp("probe").ok()) out->push_back(op);
    }
    EXPECT_EQ(faults.ops_seen(), 200u);
    EXPECT_EQ(faults.failures_injected(), out->size());
  }
  EXPECT_EQ(first, second);
  EXPECT_FALSE(first.empty());            // p = 0.3 over 200 ops must fire
  EXPECT_LT(first.size(), 120u);          // ... and must not fire always
}

// p = 0 never fires; FailAt({}) never fires.
TEST_F(FaultInjectionTest, EmptySchedulesNeverFire) {
  IoFaultSchedule never(7, 0.0);
  IoFaultSchedule none = IoFaultSchedule::FailAt({});
  for (uint64_t op = 0; op < 50; ++op) {
    EXPECT_TRUE(never.OnOp("probe").ok());
    EXPECT_TRUE(none.OnOp("probe").ok());
  }
  EXPECT_EQ(never.failures_injected(), 0u);
  EXPECT_EQ(none.failures_injected(), 0u);
}

}  // namespace
}  // namespace storage
}  // namespace atypical
