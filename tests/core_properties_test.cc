// Cross-module invariants of the whole pipeline.
#include <set>

#include <gtest/gtest.h>

#include "analytics/report.h"
#include "core/event_retrieval.h"
#include "core/integration.h"
#include "core/temporal_key.h"
#include "gen/workload.h"
#include "core/merge.h"
#include "index/grid_index.h"

namespace atypical {
namespace {

class PipelinePropertyTest : public ::testing::Test {
 protected:
  PipelinePropertyTest()
      : workload_(MakeWorkload(WorkloadScale::kTiny, 97)),
        grid_(workload_->gen_config.time_grid),
        records_(workload_->generator->GenerateMonthAtypical(0)) {}

  std::unique_ptr<Workload> workload_;
  TimeGrid grid_;
  std::vector<AtypicalRecord> records_;
};

TEST_F(PipelinePropertyTest, IntegrationIsIdempotent) {
  // Algorithm 3 runs to a fixpoint, so integrating its output again must
  // change nothing (no pair of outputs exceeds δsim).
  ClusterIdGenerator ids(1);
  std::vector<AtypicalCluster> micros = RetrieveMicroClusters(
      records_, *workload_->sensors, grid_,
      analytics::DefaultForestParams().retrieval, &ids);
  for (AtypicalCluster& c : micros) {
    c = WithTemporalKeyMode(c, grid_, TemporalKeyMode::kTimeOfDay);
  }
  const IntegrationParams params;
  const auto once = IntegrateClusters(std::move(micros), params, &ids);
  IntegrationStats stats;
  const auto twice = IntegrateClusters(once, params, &ids, &stats);
  EXPECT_EQ(stats.merges, 0u);
  EXPECT_EQ(twice.size(), once.size());
}

TEST_F(PipelinePropertyTest, SeverityConservedThroughPipeline) {
  // records -> micros -> integration never create or lose severity mass.
  double record_mass = 0.0;
  for (const AtypicalRecord& r : records_)
    record_mass += static_cast<double>(r.severity_minutes);

  ClusterIdGenerator ids(1);
  std::vector<AtypicalCluster> micros = RetrieveMicroClusters(
      records_, *workload_->sensors, grid_,
      analytics::DefaultForestParams().retrieval, &ids);
  double micro_mass = 0.0;
  for (const AtypicalCluster& c : micros) micro_mass += c.severity();
  EXPECT_NEAR(micro_mass, record_mass, 1e-3);

  for (AtypicalCluster& c : micros) {
    c = WithTemporalKeyMode(c, grid_, TemporalKeyMode::kTimeOfDay);
  }
  const auto macros =
      IntegrateClusters(std::move(micros), IntegrationParams{}, &ids);
  double macro_mass = 0.0;
  for (const AtypicalCluster& c : macros) macro_mass += c.severity();
  EXPECT_NEAR(macro_mass, record_mass, 1e-3);
}

TEST_F(PipelinePropertyTest, RoadMetricConfinesEventsToOneHighway) {
  RetrievalParams params = analytics::DefaultForestParams().retrieval;
  params.metric = DistanceMetric::kRoadNetwork;
  ClusterIdGenerator ids(1);
  const auto micros = RetrieveMicroClusters(records_, *workload_->sensors,
                                            grid_, params, &ids);
  ASSERT_FALSE(micros.empty());
  for (const AtypicalCluster& c : micros) {
    std::set<HighwayId> highways;
    for (const auto& e : c.spatial.entries()) {
      highways.insert(workload_->sensors->sensor(e.key).highway);
    }
    EXPECT_EQ(highways.size(), 1u) << "cluster " << c.id;
  }
}

TEST_F(PipelinePropertyTest, RoadMetricYieldsAtLeastAsManyEvents) {
  // Road distance >= Euclidean distance, so the road relation is a subset:
  // connected components can only fragment, never merge.
  RetrievalParams euclid = analytics::DefaultForestParams().retrieval;
  RetrievalParams road = euclid;
  road.metric = DistanceMetric::kRoadNetwork;
  const auto events_euclid =
      RetrieveEvents(records_, *workload_->sensors, grid_, euclid);
  const auto events_road =
      RetrieveEvents(records_, *workload_->sensors, grid_, road);
  EXPECT_GE(events_road.size(), events_euclid.size());
}

TEST_F(PipelinePropertyTest, IndexedRoadMetricMatchesBruteForce) {
  RetrievalParams indexed = analytics::DefaultForestParams().retrieval;
  indexed.metric = DistanceMetric::kRoadNetwork;
  indexed.use_index = true;
  RetrievalParams brute = indexed;
  brute.use_index = false;
  EXPECT_EQ(RetrieveEvents(records_, *workload_->sensors, grid_, indexed),
            RetrieveEvents(records_, *workload_->sensors, grid_, brute));
}

TEST_F(PipelinePropertyTest, SensorDistanceProperties) {
  const SensorNetwork& network = *workload_->sensors;
  for (SensorId a = 0; a < 20 && a < static_cast<SensorId>(network.num_sensors());
       ++a) {
    for (SensorId b = 0;
         b < 20 && b < static_cast<SensorId>(network.num_sensors()); ++b) {
      const double euclid = network.Distance(a, b, DistanceMetric::kEuclidean);
      const double road = network.Distance(a, b, DistanceMetric::kRoadNetwork);
      // Symmetry.
      EXPECT_DOUBLE_EQ(euclid,
                       network.Distance(b, a, DistanceMetric::kEuclidean));
      EXPECT_DOUBLE_EQ(road,
                       network.Distance(b, a, DistanceMetric::kRoadNetwork));
      // Road distance dominates Euclidean (chord <= path).
      EXPECT_GE(road + 1e-9, euclid);
      if (a == b) {
        EXPECT_DOUBLE_EQ(euclid, 0.0);
        EXPECT_DOUBLE_EQ(road, 0.0);
      }
    }
  }
}

TEST_F(PipelinePropertyTest, QueriesAreDeterministic) {
  const auto ctx =
      analytics::BuildContext(WorkloadScale::kTiny, 1,
                              analytics::DefaultForestParams(), 97);
  const QueryEngine engine = ctx->MakeEngine(analytics::DefaultEngineOptions());
  const AnalyticalQuery query = ctx->WholeAreaQuery(7);
  for (const QueryStrategy strategy :
       {QueryStrategy::kAll, QueryStrategy::kPrune, QueryStrategy::kGuided}) {
    const QueryResult a = engine.Run(query, strategy);
    const QueryResult b = engine.Run(query, strategy);
    ASSERT_EQ(a.clusters.size(), b.clusters.size())
        << QueryStrategyName(strategy);
    for (size_t i = 0; i < a.clusters.size(); ++i) {
      EXPECT_EQ(a.clusters[i].micro_ids, b.clusters[i].micro_ids);
      EXPECT_DOUBLE_EQ(a.clusters[i].severity(), b.clusters[i].severity());
    }
  }
}

TEST_F(PipelinePropertyTest, RekeyingCommutesWithMerging) {
  // WithTemporalKeyMode(merge(a, b)) == merge(rekey(a), rekey(b)):
  // re-keying is a homomorphism for the algebraic features.
  ClusterIdGenerator ids(1);
  std::vector<AtypicalCluster> micros = RetrieveMicroClusters(
      records_, *workload_->sensors, grid_,
      analytics::DefaultForestParams().retrieval, &ids);
  if (micros.size() < 2) GTEST_SKIP();
  for (size_t i = 0; i + 1 < micros.size() && i < 20; i += 2) {
    ClusterIdGenerator merge_ids(1000000);
    const AtypicalCluster merged_then_rekeyed = WithTemporalKeyMode(
        MergeClusters(micros[i], micros[i + 1], &merge_ids), grid_,
        TemporalKeyMode::kTimeOfDay);
    ClusterIdGenerator merge_ids2(1000000);
    const AtypicalCluster rekeyed_then_merged = MergeClusters(
        WithTemporalKeyMode(micros[i], grid_, TemporalKeyMode::kTimeOfDay),
        WithTemporalKeyMode(micros[i + 1], grid_,
                            TemporalKeyMode::kTimeOfDay),
        &merge_ids2);
    EXPECT_EQ(merged_then_rekeyed.temporal.entries(),
              rekeyed_then_merged.temporal.entries())
        << "pair " << i;
  }
}

}  // namespace
}  // namespace atypical
