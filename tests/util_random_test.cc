#include "util/random.h"

#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

namespace atypical {
namespace {

TEST(RngTest, DeterministicPerSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next64(), b.Next64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next64() == b.Next64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(RngTest, UniformMeanNearHalf) {
  Rng rng(99);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.Uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, UniformIntCoversAllValues) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(uint64_t{7}));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(13);
  std::set<int64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.UniformInt(-2, 2));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), -2);
  EXPECT_EQ(*seen.rbegin(), 2);
}

TEST(RngTest, UniformIntSingletonRange) {
  Rng rng(5);
  EXPECT_EQ(rng.UniformInt(4, 4), 4);
  EXPECT_EQ(rng.UniformInt(uint64_t{1}), 0u);
}

TEST(RngTest, NormalMomentsApproximatelyStandard) {
  Rng rng(17);
  const int n = 100000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal();
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(RngTest, NormalShiftScale) {
  Rng rng(19);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(23);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

class PoissonMeanTest : public ::testing::TestWithParam<double> {};

TEST_P(PoissonMeanTest, SampleMeanMatchesLambda) {
  const double lambda = GetParam();
  Rng rng(29);
  const int n = 20000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Poisson(lambda);
  EXPECT_NEAR(sum / n, lambda, std::max(0.05, lambda * 0.05));
}

INSTANTIATE_TEST_SUITE_P(Lambdas, PoissonMeanTest,
                         ::testing::Values(0.5, 3.0, 12.0, 50.0));

TEST(RngTest, PoissonZeroLambdaIsZero) {
  Rng rng(1);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.Poisson(0.0), 0);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(31);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, WeightedIndexMatchesWeights) {
  Rng rng(37);
  const std::vector<double> weights = {1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(weights.size(), 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.WeightedIndex(weights)];
  EXPECT_EQ(counts[2], 0);  // zero weight never chosen
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.01);
  EXPECT_NEAR(counts[3] / static_cast<double>(n), 0.6, 0.01);
}

TEST(RngTest, WeightedIndexSingleEntry) {
  Rng rng(41);
  EXPECT_EQ(rng.WeightedIndex({5.0}), 0u);
}

TEST(RngTest, ForkedStreamsAreDecorrelated) {
  Rng parent(43);
  Rng child_a = parent.Fork(1);
  Rng child_b = parent.Fork(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (child_a.Next64() == child_b.Next64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngDeathTest, InvalidArguments) {
  Rng rng(1);
  EXPECT_DEATH((void)rng.UniformInt(uint64_t{0}), "Check failed");
  EXPECT_DEATH((void)rng.UniformInt(5, 4), "Check failed");
  EXPECT_DEATH((void)rng.Poisson(-1.0), "Check failed");
  EXPECT_DEATH((void)rng.Exponential(0.0), "Check failed");
  EXPECT_DEATH((void)rng.WeightedIndex({}), "Check failed");
  EXPECT_DEATH((void)rng.WeightedIndex({0.0, 0.0}), "Check failed");
  EXPECT_DEATH((void)rng.WeightedIndex({-1.0, 2.0}), "Check failed");
}

}  // namespace
}  // namespace atypical
