#include "cps/sensor_network.h"

#include <gtest/gtest.h>

namespace atypical {
namespace {

RoadNetwork MakeRoads() {
  RoadNetworkConfig config;
  config.num_highways = 8;
  config.area_width_miles = 20.0;
  config.area_height_miles = 15.0;
  config.seed = 3;
  return RoadNetwork::Generate(config);
}

SensorNetwork MakeSensors(const RoadNetwork& roads, int target = 150) {
  SensorNetworkConfig config;
  config.target_num_sensors = target;
  return SensorNetwork::Place(roads, config);
}

TEST(SensorNetworkTest, PlacesApproximatelyTargetCount) {
  const RoadNetwork roads = MakeRoads();
  const SensorNetwork net = MakeSensors(roads, 150);
  EXPECT_GE(net.num_sensors(), 120);
  EXPECT_LE(net.num_sensors(), 180);
}

TEST(SensorNetworkTest, IdsAreDense) {
  const RoadNetwork roads = MakeRoads();
  const SensorNetwork net = MakeSensors(roads);
  for (int i = 0; i < net.num_sensors(); ++i) {
    EXPECT_EQ(net.sensor(i).id, static_cast<SensorId>(i));
  }
}

TEST(SensorNetworkTest, EverySensorSitsOnItsHighway) {
  const RoadNetwork roads = MakeRoads();
  const SensorNetwork net = MakeSensors(roads);
  for (const Sensor& s : net.sensors()) {
    const Highway& hw = roads.highway(s.highway);
    const GeoPoint expected = hw.PointAtMile(s.mile_post);
    EXPECT_LT(DistanceMiles(s.location, expected), 1e-9);
  }
}

TEST(SensorNetworkTest, HighwayListsOrderedByMilePost) {
  const RoadNetwork roads = MakeRoads();
  const SensorNetwork net = MakeSensors(roads);
  for (int h = 0; h < net.num_highways(); ++h) {
    const std::vector<SensorId>& line = net.SensorsOnHighway(h);
    for (size_t i = 1; i < line.size(); ++i) {
      EXPECT_LT(net.sensor(line[i - 1]).mile_post,
                net.sensor(line[i]).mile_post);
      EXPECT_EQ(net.sensor(line[i]).highway, static_cast<HighwayId>(h));
    }
  }
}

TEST(SensorNetworkTest, NeighborLinksAreConsistent) {
  const RoadNetwork roads = MakeRoads();
  const SensorNetwork net = MakeSensors(roads);
  for (int h = 0; h < net.num_highways(); ++h) {
    const std::vector<SensorId>& line = net.SensorsOnHighway(h);
    if (line.empty()) continue;
    EXPECT_EQ(net.sensor(line.front()).upstream, kInvalidSensor);
    EXPECT_EQ(net.sensor(line.back()).downstream, kInvalidSensor);
    for (size_t i = 1; i < line.size(); ++i) {
      EXPECT_EQ(net.sensor(line[i]).upstream, line[i - 1]);
      EXPECT_EQ(net.sensor(line[i - 1]).downstream, line[i]);
    }
  }
}

TEST(SensorNetworkTest, SpacingIsRoughlyUniform) {
  const RoadNetwork roads = MakeRoads();
  const SensorNetwork net = MakeSensors(roads);
  const double spacing = net.spacing_miles();
  EXPECT_GT(spacing, 0.0);
  for (int h = 0; h < net.num_highways(); ++h) {
    const std::vector<SensorId>& line = net.SensorsOnHighway(h);
    for (size_t i = 1; i < line.size(); ++i) {
      const double gap = net.sensor(line[i]).mile_post -
                         net.sensor(line[i - 1]).mile_post;
      EXPECT_GT(gap, 0.25 * spacing);
      EXPECT_LT(gap, 2.5 * spacing);
    }
  }
}

TEST(SensorNetworkTest, SensorsNearMatchesBruteForce) {
  const RoadNetwork roads = MakeRoads();
  const SensorNetwork net = MakeSensors(roads);
  const GeoPoint center{10.0, 7.5};
  const double radius = 3.0;
  const std::vector<SensorId> near = net.SensorsNear(center, radius);
  for (const Sensor& s : net.sensors()) {
    const bool in_radius = DistanceMiles(s.location, center) <= radius;
    const bool listed =
        std::find(near.begin(), near.end(), s.id) != near.end();
    EXPECT_EQ(in_radius, listed) << "sensor " << s.id;
  }
}

TEST(SensorNetworkTest, SensorsInRectMatchesBruteForce) {
  const RoadNetwork roads = MakeRoads();
  const SensorNetwork net = MakeSensors(roads);
  const GeoRect rect{5.0, 3.0, 15.0, 12.0};
  const std::vector<SensorId> inside = net.SensorsInRect(rect);
  for (const Sensor& s : net.sensors()) {
    const bool in_rect = rect.Contains(s.location);
    const bool listed =
        std::find(inside.begin(), inside.end(), s.id) != inside.end();
    EXPECT_EQ(in_rect, listed) << "sensor " << s.id;
  }
}

TEST(SensorNetworkTest, WholeBoundsRectContainsAllSensors) {
  const RoadNetwork roads = MakeRoads();
  const SensorNetwork net = MakeSensors(roads);
  EXPECT_EQ(net.SensorsInRect(net.bounds()).size(),
            static_cast<size_t>(net.num_sensors()));
}

TEST(SensorNetworkDeathTest, OutOfRangeSensorDies) {
  const RoadNetwork roads = MakeRoads();
  const SensorNetwork net = MakeSensors(roads);
  EXPECT_DEATH((void)net.sensor(net.num_sensors()), "Check failed");
}

}  // namespace
}  // namespace atypical
