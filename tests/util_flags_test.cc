#include "util/flags.h"

#include <gtest/gtest.h>

namespace atypical {
namespace {

FlagParser Parse(std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  return FlagParser(static_cast<int>(args.size()), args.data());
}

TEST(FlagParserTest, EmptyCommandLine) {
  const FlagParser flags = Parse({});
  EXPECT_TRUE(flags.ok());
  EXPECT_TRUE(flags.positional().empty());
  EXPECT_EQ(flags.GetString("missing", "dflt"), "dflt");
}

TEST(FlagParserTest, PositionalThenFlags) {
  const FlagParser flags = Parse({"analyze", "extra", "--dir", "/tmp/x"});
  EXPECT_TRUE(flags.ok());
  EXPECT_EQ(flags.positional(),
            (std::vector<std::string>{"analyze", "extra"}));
  EXPECT_EQ(flags.GetString("dir", ""), "/tmp/x");
}

TEST(FlagParserTest, EqualsAndSpaceForms) {
  const FlagParser flags = Parse({"--a=1", "--b", "2", "--c=x=y"});
  EXPECT_EQ(flags.GetInt("a", 0), 1);
  EXPECT_EQ(flags.GetInt("b", 0), 2);
  EXPECT_EQ(flags.GetString("c", ""), "x=y");
}

TEST(FlagParserTest, BareFlagIsBooleanTrue) {
  const FlagParser flags = Parse({"--verbose", "--count=3"});
  EXPECT_TRUE(flags.GetBool("verbose", false));
  EXPECT_EQ(flags.GetInt("count", 0), 3);
}

TEST(FlagParserTest, BareFlagAtEnd) {
  const FlagParser flags = Parse({"--post-check"});
  EXPECT_TRUE(flags.Has("post-check"));
  EXPECT_TRUE(flags.GetBool("post-check", false));
}

TEST(FlagParserTest, TypedGetters) {
  const FlagParser flags = Parse({"--f=1.5", "--i=42", "--b=false"});
  EXPECT_DOUBLE_EQ(flags.GetDouble("f", 0.0), 1.5);
  EXPECT_EQ(flags.GetInt("i", 0), 42);
  EXPECT_FALSE(flags.GetBool("b", true));
}

TEST(FlagParserTest, MalformedValuesSetError) {
  const FlagParser flags = Parse({"--i=abc"});
  EXPECT_EQ(flags.GetInt("i", 7), 7);
  EXPECT_FALSE(flags.ok());
  EXPECT_NE(flags.error().find("--i"), std::string::npos);
}

TEST(FlagParserTest, MalformedBoolSetsError) {
  const FlagParser flags = Parse({"--b=maybe"});
  EXPECT_TRUE(flags.GetBool("b", true));
  EXPECT_FALSE(flags.ok());
}

TEST(FlagParserTest, PositionalAfterFlagsIsError) {
  const FlagParser flags = Parse({"--a=1", "stray"});
  EXPECT_FALSE(flags.ok());
}

TEST(FlagParserTest, UnreadFlagsDetected) {
  const FlagParser flags = Parse({"--used=1", "--typo=2"});
  (void)flags.GetInt("used", 0);  // marks the flag consumed
  EXPECT_EQ(flags.UnreadFlags(), std::vector<std::string>{"typo"});
}

TEST(FlagParserTest, LastOccurrenceWins) {
  const FlagParser flags = Parse({"--n=1", "--n=2"});
  EXPECT_EQ(flags.GetInt("n", 0), 2);
}

}  // namespace
}  // namespace atypical
