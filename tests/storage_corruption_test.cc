// Failure injection on the on-disk format: every corruption must surface as
// a DataLoss status, never as silent bad data or a crash.
#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "gen/workload.h"
#include "storage/reader.h"
#include "storage/writer.h"
#include "util/fault.h"
#include "util/logging.h"

namespace atypical {
namespace storage {
namespace {

class StorageCorruptionTest : public ::testing::Test {
 protected:
  StorageCorruptionTest() {
    const auto workload = MakeWorkload(WorkloadScale::kTiny, 4);
    dataset_ = workload->generator->GenerateMonth(0);
    path_ = ::testing::TempDir() + "/corruption_test.atyp";
    WriterOptions options;
    options.block_records = 1000;
    CHECK_OK(WriteDataset(dataset_, path_, options).status());
    std::ifstream in(path_, std::ios::binary);
    bytes_.assign(std::istreambuf_iterator<char>(in),
                  std::istreambuf_iterator<char>());
  }
  ~StorageCorruptionTest() override { std::remove(path_.c_str()); }

  // Writes `bytes_` (possibly mutated) back and returns the read status.
  Status ReadBackStatus() {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(bytes_.data(), static_cast<std::streamsize>(bytes_.size()));
    out.close();
    return ReadDataset(path_).status();
  }

  Dataset dataset_;
  std::string path_;
  std::vector<char> bytes_;
};

TEST_F(StorageCorruptionTest, PristineFileReads) {
  EXPECT_TRUE(ReadBackStatus().ok());
}

TEST_F(StorageCorruptionTest, FlippedPayloadByteFailsCrc) {
  // Flip a byte well inside the first block's payload.
  bytes_[8 + 28 + 8 + 100] ^= 0x40;
  const Status s = ReadBackStatus();
  EXPECT_EQ(s.code(), StatusCode::kDataLoss);
  EXPECT_NE(s.message().find("crc"), std::string::npos);
}

TEST_F(StorageCorruptionTest, BadMagicRejected) {
  bytes_[0] = 'X';
  const Status s = ReadBackStatus();
  EXPECT_EQ(s.code(), StatusCode::kDataLoss);
  EXPECT_NE(s.message().find("magic"), std::string::npos);
}

TEST_F(StorageCorruptionTest, UnsupportedVersionRejected) {
  bytes_[8] = 99;  // version field, first header byte
  EXPECT_EQ(ReadBackStatus().code(), StatusCode::kDataLoss);
}

TEST_F(StorageCorruptionTest, ImplausibleWindowMinutesRejected) {
  bytes_[8 + 20] = 7;  // window_minutes = 7 does not divide 1440
  EXPECT_EQ(ReadBackStatus().code(), StatusCode::kDataLoss);
}

TEST_F(StorageCorruptionTest, TruncatedHeaderRejected) {
  bytes_.resize(20);
  EXPECT_EQ(ReadBackStatus().code(), StatusCode::kDataLoss);
}

TEST_F(StorageCorruptionTest, TruncatedPayloadRejected) {
  bytes_.resize(bytes_.size() / 2);
  EXPECT_EQ(ReadBackStatus().code(), StatusCode::kDataLoss);
}

TEST_F(StorageCorruptionTest, MissingFooterRejected) {
  bytes_.resize(bytes_.size() - 12);
  EXPECT_EQ(ReadBackStatus().code(), StatusCode::kDataLoss);
}

TEST_F(StorageCorruptionTest, FooterCountMismatchRejected) {
  // Corrupt the footer's record count (last 8 bytes).
  bytes_[bytes_.size() - 1] ^= 0x01;
  const Status s = ReadBackStatus();
  EXPECT_EQ(s.code(), StatusCode::kDataLoss);
  EXPECT_NE(s.message().find("footer"), std::string::npos);
}

TEST_F(StorageCorruptionTest, EmptyFileRejected) {
  bytes_.clear();
  EXPECT_EQ(ReadBackStatus().code(), StatusCode::kDataLoss);
}

TEST_F(StorageCorruptionTest, MissingFileIsIoError) {
  EXPECT_EQ(ReadDataset("/no/such/file.atyp").status().code(),
            StatusCode::kIoError);
}

TEST_F(StorageCorruptionTest, SeededBitFlipsAlwaysSurfaceAsDataLoss) {
  // Deterministic fault sweep: any single bit flip in the payload region
  // must fail the strict read with kDataLoss, for every seed.
  const size_t payload_lo = 8 + 28 + 8;
  const size_t payload_hi = payload_lo + 1000 * 28;  // first 1000-record block
  for (uint64_t seed = 0; seed < 16; ++seed) {
    FaultPlan plan(seed);
    std::vector<char> bytes = bytes_;
    std::vector<uint8_t> mutated(bytes.begin(), bytes.end());
    plan.FlipBit(&mutated, payload_lo, payload_hi);
    bytes_.assign(mutated.begin(), mutated.end());
    EXPECT_EQ(ReadBackStatus().code(), StatusCode::kDataLoss) << "seed " << seed;
    bytes_ = bytes;  // restore for the next seed
  }
}

TEST_F(StorageCorruptionTest, SeededTruncationAlwaysSurfacesAsDataLoss) {
  for (uint64_t seed = 0; seed < 8; ++seed) {
    FaultPlan plan(seed);
    const std::vector<char> original = bytes_;
    std::vector<uint8_t> mutated(bytes_.begin(), bytes_.end());
    plan.TruncateTail(&mutated, 8 + 28);  // keep magic + header
    bytes_.assign(mutated.begin(), mutated.end());
    EXPECT_EQ(ReadBackStatus().code(), StatusCode::kDataLoss) << "seed " << seed;
    bytes_ = original;
  }
}

TEST_F(StorageCorruptionTest, ImplausibleBlockRecordCountRejected) {
  // record_count far above the header's block_records must not be trusted
  // (it would otherwise drive a multi-gigabyte allocation).
  bytes_[8 + 28] = static_cast<char>(0xff);
  bytes_[8 + 28 + 1] = static_cast<char>(0xff);
  bytes_[8 + 28 + 2] = static_cast<char>(0xff);
  bytes_[8 + 28 + 3] = static_cast<char>(0x7f);
  const Status s = ReadBackStatus();
  EXPECT_EQ(s.code(), StatusCode::kDataLoss);
  EXPECT_NE(s.message().find("implausible block record count"),
            std::string::npos);
}

TEST_F(StorageCorruptionTest, ScanAtypicalAlsoDetectsCorruption) {
  bytes_[8 + 28 + 8 + 50] ^= 0x10;
  std::ofstream out(path_, std::ios::binary | std::ios::trunc);
  out.write(bytes_.data(), static_cast<std::streamsize>(bytes_.size()));
  out.close();
  Result<DatasetReader> reader = DatasetReader::Open(path_);
  ASSERT_TRUE(reader.ok());
  const Result<int64_t> scanned =
      reader->ScanAtypical([](const AtypicalRecord&) {});
  EXPECT_FALSE(scanned.ok());
  EXPECT_EQ(scanned.status().code(), StatusCode::kDataLoss);
}

}  // namespace
}  // namespace storage
}  // namespace atypical
