#include "ext/prediction.h"

#include <gtest/gtest.h>

#include "gen/workload.h"

namespace atypical {
namespace ext {
namespace {

TEST(PredictionTest, LearnsARepeatingProfile) {
  const TimeGrid grid(15);
  CongestionPredictor predictor(4, grid);
  // Sensor 2 congests 10 minutes in window 32 every weekday.
  std::vector<AtypicalRecord> train;
  for (int day = 0; day < 5; ++day) {  // Mon..Fri
    train.push_back({2, grid.MakeWindow(day, 32), 10.0f, kNoEvent});
  }
  predictor.Train(train);
  EXPECT_EQ(predictor.training_days(false), 5);
  EXPECT_EQ(predictor.training_days(true), 0);
  EXPECT_DOUBLE_EQ(predictor.ExpectedMinutes(2, 32, false), 10.0);
  EXPECT_DOUBLE_EQ(predictor.ExpectedMinutes(2, 33, false), 0.0);
  EXPECT_DOUBLE_EQ(predictor.ExpectedMinutes(1, 32, false), 0.0);
}

TEST(PredictionTest, SeparatesWeekdayAndWeekendProfiles) {
  const TimeGrid grid(15);
  CongestionPredictor predictor(2, grid);
  std::vector<AtypicalRecord> train;
  train.push_back({0, grid.MakeWindow(0, 10), 8.0f, kNoEvent});  // Monday
  train.push_back({0, grid.MakeWindow(5, 50), 6.0f, kNoEvent});  // Saturday
  predictor.Train(train);
  EXPECT_DOUBLE_EQ(predictor.ExpectedMinutes(0, 10, false), 8.0);
  EXPECT_DOUBLE_EQ(predictor.ExpectedMinutes(0, 10, true), 0.0);
  EXPECT_DOUBLE_EQ(predictor.ExpectedMinutes(0, 50, true), 6.0);
}

TEST(PredictionTest, IntermittentEventAveragesDown) {
  const TimeGrid grid(15);
  CongestionPredictor predictor(1, grid);
  std::vector<AtypicalRecord> train;
  // Congested on 1 of 4 weekdays.
  train.push_back({0, grid.MakeWindow(0, 20), 12.0f, kNoEvent});
  train.push_back({0, grid.MakeWindow(1, 60), 1.0f, kNoEvent});
  train.push_back({0, grid.MakeWindow(2, 61), 1.0f, kNoEvent});
  train.push_back({0, grid.MakeWindow(3, 62), 1.0f, kNoEvent});
  predictor.Train(train);
  EXPECT_DOUBLE_EQ(predictor.ExpectedMinutes(0, 20, false), 3.0);
}

TEST(PredictionTest, PredictDayListsCellsAboveThreshold) {
  const TimeGrid grid(15);
  PredictionParams params;
  params.min_predicted_minutes = 2.0;
  CongestionPredictor predictor(3, grid, params);
  std::vector<AtypicalRecord> train;
  train.push_back({1, grid.MakeWindow(0, 30), 9.0f, kNoEvent});
  train.push_back({2, grid.MakeWindow(0, 31), 1.0f, kNoEvent});
  predictor.Train(train);
  const auto cells = predictor.PredictDay(false);
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(cells[0].sensor, 1u);
  EXPECT_EQ(cells[0].window_of_day, 30);
  EXPECT_FLOAT_EQ(cells[0].expected_minutes, 9.0f);
}

TEST(PredictionTest, PerfectlyPeriodicDataScoresPerfectly) {
  const TimeGrid grid(15);
  CongestionPredictor predictor(2, grid);
  std::vector<AtypicalRecord> train;
  for (int day = 0; day < 4; ++day) {
    train.push_back({0, grid.MakeWindow(day, 32), 10.0f, kNoEvent});
  }
  predictor.Train(train);
  const std::vector<AtypicalRecord> actual = {
      {0, grid.MakeWindow(4, 32), 10.0f, kNoEvent}};  // Friday, same profile
  const PredictionQuality q = predictor.Evaluate(4, actual);
  EXPECT_DOUBLE_EQ(q.precision, 1.0);
  EXPECT_DOUBLE_EQ(q.recall, 1.0);
  EXPECT_DOUBLE_EQ(q.mean_absolute_error_minutes, 0.0);
}

TEST(PredictionTest, EndToEndOnGeneratedMonthBeatsChance) {
  const auto workload = MakeWorkload(WorkloadScale::kTiny, 37);
  const TimeGrid grid = workload->gen_config.time_grid;
  // Train on month 0 + 1, evaluate on the first weekday of month 2.
  CongestionPredictor predictor(workload->sensors->num_sensors(), grid);
  predictor.Train(workload->generator->GenerateMonthAtypical(0));
  predictor.Train(workload->generator->GenerateMonthAtypical(1));

  const auto month2 = workload->generator->GenerateMonthAtypical(2);
  const int eval_day = 14;  // first day of month 2 (tiny months = 7 days)
  ASSERT_FALSE(IsWeekend(eval_day));
  std::vector<AtypicalRecord> actual;
  for (const AtypicalRecord& r : month2) {
    if (grid.DayOfWindow(r.window) == eval_day) actual.push_back(r);
  }
  ASSERT_FALSE(actual.empty());
  const PredictionQuality q = predictor.Evaluate(eval_day, actual);
  // Recurring hotspots make recall of the recurring mass achievable; random
  // incidents put a ceiling on precision.  Chance-level hit rate would be
  // ~the atypical fraction (a few percent).
  EXPECT_GT(q.recall, 0.2);
  EXPECT_GT(q.precision, 0.2);
}

TEST(PredictionTest, UntrainedPredictorPredictsNothing) {
  const TimeGrid grid(15);
  CongestionPredictor predictor(2, grid);
  EXPECT_TRUE(predictor.PredictDay(false).empty());
  EXPECT_DOUBLE_EQ(predictor.ExpectedMinutes(0, 0, false), 0.0);
}

TEST(PredictionDeathTest, EvaluateRejectsWrongDay) {
  const TimeGrid grid(15);
  CongestionPredictor predictor(2, grid);
  const std::vector<AtypicalRecord> actual = {
      {0, grid.MakeWindow(3, 10), 5.0f, kNoEvent}};
  EXPECT_DEATH((void)predictor.Evaluate(2, actual), "Check failed");
}

}  // namespace
}  // namespace ext
}  // namespace atypical
