// Salvage-mode reads: block-level corruption is skipped with resync at the
// next block boundary; every surviving record is returned bit-exact, corrupt
// records are never returned, and the SalvageReport tallies the damage.
#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "gen/workload.h"
#include "storage/reader.h"
#include "storage/writer.h"
#include "util/fault.h"
#include "util/logging.h"

namespace atypical {
namespace storage {
namespace {

constexpr uint32_t kBlockRecords = 500;
constexpr size_t kDataStart = sizeof(kMagic) + kFileHeaderBytes;
constexpr size_t kFullBlockBytes =
    kBlockHeaderBytes + kBlockRecords * kWireRecordBytes;

class StorageSalvageTest : public ::testing::Test {
 protected:
  StorageSalvageTest() {
    const auto workload = MakeWorkload(WorkloadScale::kTiny, 4);
    dataset_ = workload->generator->GenerateMonth(0);
    path_ = ::testing::TempDir() + "/salvage_test.atyp";
    WriterOptions options;
    options.block_records = kBlockRecords;
    CHECK_OK(WriteDataset(dataset_, path_, options).status());
    std::ifstream in(path_, std::ios::binary);
    pristine_.assign(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
    CHECK_GE(NumBlocks(), 3u);  // the tests need a first, middle, last block
  }
  ~StorageSalvageTest() override { std::remove(path_.c_str()); }

  uint64_t NumRecords() const {
    return static_cast<uint64_t>(dataset_.num_readings());
  }
  uint64_t NumBlocks() const {
    return (NumRecords() + kBlockRecords - 1) / kBlockRecords;
  }
  uint32_t BlockCount(uint64_t block) const {
    return static_cast<uint32_t>(
        std::min<uint64_t>(kBlockRecords, NumRecords() - block * kBlockRecords));
  }
  size_t BlockOffset(uint64_t block) const {
    return kDataStart + block * kFullBlockBytes;
  }
  size_t PayloadOffset(uint64_t block) const {
    return BlockOffset(block) + kBlockHeaderBytes;
  }

  void WriteBytes(const std::vector<uint8_t>& bytes) {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
  }

  Result<Dataset> SalvageRead(SalvageReport* report) {
    ReaderOptions options;
    options.salvage = true;
    return ReadDataset(path_, options, report);
  }

  // Expects the salvage-read `got` to equal the pristine readings with the
  // records of `skipped_block` removed, field for field.
  void ExpectRecoveredAllBut(const Dataset& got, uint64_t skipped_block) {
    const std::vector<Reading>& all = dataset_.readings();
    const size_t skip_begin = skipped_block * kBlockRecords;
    const size_t skip_end = skip_begin + BlockCount(skipped_block);
    ASSERT_EQ(static_cast<uint64_t>(got.num_readings()),
              NumRecords() - BlockCount(skipped_block));
    size_t src = 0;
    for (const Reading& r : got.readings()) {
      if (src == skip_begin) src = skip_end;
      ASSERT_LT(src, all.size());
      EXPECT_EQ(r.sensor, all[src].sensor);
      EXPECT_EQ(r.window, all[src].window);
      EXPECT_EQ(r.speed_mph, all[src].speed_mph);
      EXPECT_EQ(r.occupancy, all[src].occupancy);
      EXPECT_EQ(r.atypical_minutes, all[src].atypical_minutes);
      EXPECT_EQ(r.true_event, all[src].true_event);
      ++src;
    }
  }

  Dataset dataset_;
  std::string path_;
  std::vector<uint8_t> pristine_;
};

TEST_F(StorageSalvageTest, PristineFileReportsClean) {
  SalvageReport report;
  const Result<Dataset> got = SalvageRead(&report);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.records_recovered, NumRecords());
  EXPECT_EQ(static_cast<uint64_t>(got->num_readings()), NumRecords());
}

// Acceptance invariant (a): a single in-block bit flip loses exactly that
// block; everything else is recovered bit-exact and tallied.
TEST_F(StorageSalvageTest, PayloadBitFlipLosesExactlyOneBlock) {
  const uint64_t targets[] = {0, NumBlocks() / 2, NumBlocks() - 1};
  for (const uint64_t block : targets) {
    FaultPlan plan(1000 + block);
    std::vector<uint8_t> bytes = pristine_;
    plan.FlipBit(&bytes, PayloadOffset(block),
                 PayloadOffset(block) + BlockCount(block) * kWireRecordBytes);
    WriteBytes(bytes);

    SalvageReport report;
    const Result<Dataset> got = SalvageRead(&report);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(report.blocks_skipped, 1u) << "block " << block;
    EXPECT_EQ(report.records_lost, BlockCount(block));
    EXPECT_EQ(report.records_recovered, NumRecords() - BlockCount(block));
    EXPECT_FALSE(report.footer_missing);
    ExpectRecoveredAllBut(*got, block);
  }
}

TEST_F(StorageSalvageTest, CrcFieldFlipSkipsExactlyOneBlock) {
  const uint64_t block = 1;
  FaultPlan plan(7);
  std::vector<uint8_t> bytes = pristine_;
  // The stored crc32 lives in the second word of the block header.
  plan.FlipBit(&bytes, BlockOffset(block) + 4, BlockOffset(block) + 8);
  WriteBytes(bytes);

  SalvageReport report;
  const Result<Dataset> got = SalvageRead(&report);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(report.blocks_skipped, 1u);
  EXPECT_EQ(report.records_lost, BlockCount(block));
  ExpectRecoveredAllBut(*got, block);
}

TEST_F(StorageSalvageTest, ImplausibleRecordCountResyncsAtNextBlock) {
  // A corrupt record count cannot be trusted; the reader resyncs assuming
  // the writer's fixed block size, which is exact for any non-final block.
  for (const uint32_t bogus_count : {0u, 0x7fffffffu}) {
    const uint64_t block = 1;
    std::vector<uint8_t> bytes = pristine_;
    detail::PutU32(bytes.data() + BlockOffset(block), bogus_count);
    WriteBytes(bytes);

    SalvageReport report;
    const Result<Dataset> got = SalvageRead(&report);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(report.blocks_skipped, 1u) << "count " << bogus_count;
    EXPECT_EQ(report.records_lost, kBlockRecords);
    EXPECT_FALSE(report.footer_missing);
    ExpectRecoveredAllBut(*got, block);
  }
}

TEST_F(StorageSalvageTest, TruncatedTailRecoversLeadingBlocks) {
  const uint64_t cut_block = NumBlocks() - 2;
  std::vector<uint8_t> bytes = pristine_;
  bytes.resize(PayloadOffset(cut_block) + 37);  // mid-payload
  WriteBytes(bytes);

  SalvageReport report;
  const Result<Dataset> got = SalvageRead(&report);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(static_cast<uint64_t>(got->num_readings()),
            cut_block * kBlockRecords);
  EXPECT_TRUE(report.footer_missing);
  EXPECT_GE(report.blocks_skipped, 1u);
  EXPECT_EQ(report.records_recovered, cut_block * kBlockRecords);
}

TEST_F(StorageSalvageTest, StrictModeStillRejectsTheSameDamage) {
  FaultPlan plan(21);
  std::vector<uint8_t> bytes = pristine_;
  plan.FlipBit(&bytes, PayloadOffset(0), PayloadOffset(0) + 100);
  WriteBytes(bytes);
  EXPECT_EQ(ReadDataset(path_).status().code(), StatusCode::kDataLoss);
}

TEST_F(StorageSalvageTest, SalvageScanAtypicalSkipsCorruptBlock) {
  const uint64_t block = 2;
  FaultPlan plan(33);
  std::vector<uint8_t> bytes = pristine_;
  plan.FlipBit(&bytes, PayloadOffset(block),
               PayloadOffset(block) + BlockCount(block) * kWireRecordBytes);
  WriteBytes(bytes);

  ReaderOptions options;
  options.salvage = true;
  Result<DatasetReader> reader = DatasetReader::Open(path_, options);
  ASSERT_TRUE(reader.ok());
  int64_t atypical = 0;
  const Result<int64_t> scanned =
      reader->ScanAtypical([&](const AtypicalRecord&) { ++atypical; });
  ASSERT_TRUE(scanned.ok()) << scanned.status().ToString();
  EXPECT_EQ(static_cast<uint64_t>(*scanned), NumRecords() - BlockCount(block));
  EXPECT_EQ(reader->salvage_report().blocks_skipped, 1u);
}

// Sweep: random single bit flips across the whole payload region never
// produce corrupt records — every record returned matches the pristine file.
TEST_F(StorageSalvageTest, RandomPayloadFlipsNeverYieldCorruptRecords) {
  for (uint64_t seed = 0; seed < 8; ++seed) {
    FaultPlan plan(seed);
    std::vector<uint8_t> bytes = pristine_;
    const uint64_t block = seed % NumBlocks();
    plan.FlipBit(&bytes, PayloadOffset(block),
                 PayloadOffset(block) + BlockCount(block) * kWireRecordBytes);
    WriteBytes(bytes);

    SalvageReport report;
    const Result<Dataset> got = SalvageRead(&report);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(report.blocks_skipped, 1u) << "seed " << seed;
    ExpectRecoveredAllBut(*got, block);
  }
}

}  // namespace
}  // namespace storage
}  // namespace atypical
