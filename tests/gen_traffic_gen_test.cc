#include "gen/traffic_gen.h"

#include <gtest/gtest.h>

#include "gen/workload.h"

namespace atypical {
namespace {

class TrafficGenTest : public ::testing::Test {
 protected:
  TrafficGenTest() : workload_(MakeWorkload(WorkloadScale::kTiny, 2)) {}

  const TrafficGenerator& generator() { return *workload_->generator; }
  std::unique_ptr<Workload> workload_;
};

TEST_F(TrafficGenTest, MonthHasExpectedShape) {
  const Dataset ds = generator().GenerateMonth(0);
  const DatasetMeta& meta = ds.meta();
  EXPECT_EQ(meta.month_index, 0);
  EXPECT_EQ(meta.first_day, 0);
  EXPECT_EQ(meta.num_sensors, workload_->sensors->num_sensors());
  EXPECT_EQ(ds.num_readings(), meta.ExpectedReadings());
  EXPECT_EQ(meta.name, "D1");
}

TEST_F(TrafficGenTest, SecondMonthStartsAfterFirst) {
  const DatasetMeta m0 = generator().MetaForMonth(0);
  const DatasetMeta m1 = generator().MetaForMonth(1);
  EXPECT_EQ(m1.first_day, m0.first_day + m0.num_days);
  EXPECT_EQ(m1.name, "D2");
}

TEST_F(TrafficGenTest, ReadingsOrderedWindowMajor) {
  const Dataset ds = generator().GenerateMonth(0);
  const auto& readings = ds.readings();
  for (size_t i = 1; i < readings.size(); ++i) {
    const bool ordered =
        readings[i - 1].window < readings[i].window ||
        (readings[i - 1].window == readings[i].window &&
         readings[i - 1].sensor < readings[i].sensor);
    ASSERT_TRUE(ordered) << "at index " << i;
  }
}

TEST_F(TrafficGenTest, AtypicalFractionInPaperBand) {
  const Dataset ds = generator().GenerateMonth(0);
  // The paper's datasets run ~2.3% to ~4% atypical; allow a wider band for
  // the tiny test scale.
  EXPECT_GT(ds.atypical_fraction(), 0.005);
  EXPECT_LT(ds.atypical_fraction(), 0.12);
}

TEST_F(TrafficGenTest, AtypicalReadingsAreLabeledAndSlow) {
  const Dataset ds = generator().GenerateMonth(0);
  double atypical_speed_sum = 0.0;
  double normal_speed_sum = 0.0;
  int64_t atypical_count = 0;
  int64_t normal_count = 0;
  for (const Reading& r : ds.readings()) {
    if (r.is_atypical()) {
      EXPECT_NE(r.true_event, kNoEvent);
      EXPECT_LE(r.atypical_minutes,
                static_cast<float>(ds.meta().time_grid.window_minutes()));
      atypical_speed_sum += static_cast<double>(r.speed_mph);
      ++atypical_count;
    } else {
      EXPECT_EQ(r.true_event, kNoEvent);
      normal_speed_sum += static_cast<double>(r.speed_mph);
      ++normal_count;
    }
  }
  ASSERT_GT(atypical_count, 0);
  ASSERT_GT(normal_count, 0);
  EXPECT_LT(atypical_speed_sum / static_cast<double>(atypical_count),
            normal_speed_sum / static_cast<double>(normal_count) - 10.0);
}

TEST_F(TrafficGenTest, GenerateMonthAtypicalMatchesFullExtraction) {
  const Dataset full = generator().GenerateMonth(0);
  const std::vector<AtypicalRecord> direct =
      generator().GenerateMonthAtypical(0);
  const std::vector<AtypicalRecord> extracted = full.ExtractAtypicalRecords();
  ASSERT_EQ(direct.size(), extracted.size());
  for (size_t i = 0; i < direct.size(); ++i) {
    EXPECT_EQ(direct[i].sensor, extracted[i].sensor) << i;
    EXPECT_EQ(direct[i].window, extracted[i].window) << i;
    EXPECT_EQ(direct[i].severity_minutes, extracted[i].severity_minutes) << i;
    EXPECT_EQ(direct[i].true_event, extracted[i].true_event) << i;
  }
}

TEST_F(TrafficGenTest, GenerationIsDeterministic) {
  const Dataset a = generator().GenerateMonth(1);
  const Dataset b = generator().GenerateMonth(1);
  ASSERT_EQ(a.num_readings(), b.num_readings());
  for (int64_t i = 0; i < a.num_readings(); ++i) {
    const Reading& ra = a.readings()[i];
    const Reading& rb = b.readings()[i];
    ASSERT_EQ(ra.speed_mph, rb.speed_mph) << i;
    ASSERT_EQ(ra.atypical_minutes, rb.atypical_minutes) << i;
  }
}

TEST_F(TrafficGenTest, MonthsDiffer) {
  const std::vector<AtypicalRecord> m0 = generator().GenerateMonthAtypical(0);
  const std::vector<AtypicalRecord> m1 = generator().GenerateMonthAtypical(1);
  ASSERT_FALSE(m0.empty());
  ASSERT_FALSE(m1.empty());
  // Different day span entirely.
  const TimeGrid grid = workload_->gen_config.time_grid;
  EXPECT_LT(grid.DayOfWindow(m0.back().window),
            grid.DayOfWindow(m1.front().window) + 1);
}

TEST_F(TrafficGenTest, RecurringHotspotsAppearOnMostWeekdays) {
  // Count distinct weekdays (of the first week) on which the most active
  // sensor is atypical — major hotspots recur nearly daily.
  const std::vector<AtypicalRecord> records =
      generator().GenerateMonthAtypical(0);
  const TimeGrid grid = workload_->gen_config.time_grid;
  std::map<SensorId, std::set<int>> days_by_sensor;
  for (const AtypicalRecord& r : records) {
    const int day = grid.DayOfWindow(r.window);
    if (!IsWeekend(day)) days_by_sensor[r.sensor].insert(day);
  }
  size_t max_days = 0;
  for (const auto& [s, days] : days_by_sensor) {
    max_days = std::max(max_days, days.size());
  }
  // kTiny months have 7 days = 5 weekdays.
  EXPECT_GE(max_days, 4u);
}

}  // namespace
}  // namespace atypical
