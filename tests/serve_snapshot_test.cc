// Snapshot isolation (DESIGN §16): epochs advance monotonically, published
// snapshots are immutable — a reader holding an old epoch keeps getting the
// old answer while new epochs see new data — and the engine runs against a
// const forest (the const-correctness regression this layer depends on).
#include <gtest/gtest.h>

#include <memory>
#include <type_traits>

#include "analytics/report.h"
#include "core/query.h"
#include "serve/snapshot.h"
#include "serve_test_util.h"

namespace atypical {
namespace serve {
namespace {

class ServeSnapshotTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ctx_ = analytics::BuildContext(WorkloadScale::kTiny, 2,
                                   analytics::DefaultForestParams(), 29)
               .release();
  }
  static void TearDownTestSuite() {
    delete ctx_;
    ctx_ = nullptr;
  }

  static analytics::ExperimentContext* ctx_;
};

analytics::ExperimentContext* ServeSnapshotTest::ctx_ = nullptr;

// The engine must accept a const forest: Run() is const and draws result
// ids from a query-local generator, so a frozen snapshot is sufficient.
// This line is the compile-time regression for the old signature, which
// demanded a mutable AtypicalForest* and made snapshot serving impossible.
static_assert(
    std::is_constructible_v<QueryEngine, const SensorNetwork*,
                            const SpatialPartition*, const AtypicalForest*,
                            const cube::BottomUpCube*,
                            const QueryEngineOptions&>,
    "QueryEngine must be constructible over a const forest");

TEST_F(ServeSnapshotTest, InitialSnapshotIsEmptyButServable) {
  auto serving = MakeServing(*ctx_, analytics::DefaultEngineOptions());
  std::shared_ptr<const ForestSnapshot> snap = serving->AcquireSnapshot();
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->epoch, 1u);
  EXPECT_EQ(serving->current_epoch(), 1u);

  const QueryResult result =
      snap->engine.Run(ctx_->WholeAreaQuery(7), QueryStrategy::kAll);
  EXPECT_TRUE(result.clusters.empty());
  EXPECT_EQ(result.completeness.days_with_data, 0);
}

TEST_F(ServeSnapshotTest, EpochsAdvanceMonotonically) {
  auto serving = MakeServing(*ctx_, analytics::DefaultEngineOptions());
  uint64_t last = serving->current_epoch();
  for (int i = 0; i < 3; ++i) {
    std::shared_ptr<const ForestSnapshot> snap = serving->PublishSnapshot();
    EXPECT_GT(snap->epoch, last);
    EXPECT_EQ(serving->current_epoch(), snap->epoch);
    last = snap->epoch;
  }
}

TEST_F(ServeSnapshotTest, UnpublishedChangesProbe) {
  auto serving = MakeServing(*ctx_, analytics::DefaultEngineOptions());
  EXPECT_FALSE(serving->HasUnpublishedChanges());
  StageMonth(*ctx_, 0, serving.get());
  EXPECT_TRUE(serving->HasUnpublishedChanges());
  serving->PublishSnapshot();
  EXPECT_FALSE(serving->HasUnpublishedChanges());
}

TEST_F(ServeSnapshotTest, OldEpochKeepsOldAnswer) {
  auto serving = MakeServing(*ctx_, analytics::DefaultEngineOptions());
  StageMonth(*ctx_, 0, serving.get());
  std::shared_ptr<const ForestSnapshot> month0 = serving->PublishSnapshot();

  const AnalyticalQuery query = ctx_->WholeAreaQuery(14);
  const QueryResult before =
      month0->engine.Run(query, QueryStrategy::kAll);

  // Writer keeps going: month 1 lands and is published.  The old snapshot
  // must not see it.
  StageMonth(*ctx_, 1, serving.get());
  std::shared_ptr<const ForestSnapshot> month1 = serving->PublishSnapshot();
  EXPECT_GT(month1->epoch, month0->epoch);

  const QueryResult after = month0->engine.Run(query, QueryStrategy::kAll);
  ExpectBitIdentical(before, after);

  // The new epoch does see the new days (months are 7 days at kTiny scale,
  // so days 7..13 only have data at epoch month1).
  const QueryResult fresh = month1->engine.Run(query, QueryStrategy::kAll);
  EXPECT_GT(fresh.completeness.days_with_data,
            before.completeness.days_with_data);
}

TEST_F(ServeSnapshotTest, RepeatedRunsOnOneSnapshotAreBitIdentical) {
  auto serving = MakeServing(*ctx_, analytics::DefaultEngineOptions());
  StageMonth(*ctx_, 0, serving.get());
  std::shared_ptr<const ForestSnapshot> snap = serving->PublishSnapshot();

  const AnalyticalQuery query = ctx_->WholeAreaQuery(7);
  for (const QueryStrategy strategy :
       {QueryStrategy::kAll, QueryStrategy::kPrune, QueryStrategy::kGuided}) {
    const QueryResult first = snap->engine.Run(query, strategy);
    const QueryResult second = snap->engine.Run(query, strategy);
    ExpectBitIdentical(first, second);
    // Result macro ids come from the query-local base, never from stored
    // leaf ids (which count from 1).
    for (const AtypicalCluster& c : first.clusters) {
      if (c.num_micros() > 1) {
        EXPECT_GE(c.id, kQueryMacroIdBase);
      }
    }
  }
}

TEST_F(ServeSnapshotTest, SnapshotSurvivesServingForestMutation) {
  auto serving = MakeServing(*ctx_, analytics::DefaultEngineOptions());
  StageMonth(*ctx_, 0, serving.get());
  std::shared_ptr<const ForestSnapshot> snap = serving->PublishSnapshot();
  const AnalyticalQuery query = ctx_->WholeAreaQuery(7);
  const QueryResult before = snap->engine.Run(query, QueryStrategy::kGuided);

  // Heavy staging churn after the publish: more data, re-materialization.
  StageMonth(*ctx_, 1, serving.get());
  serving->staging_forest()->MaterializeWeeks();
  serving->staging_forest()->MaterializeMonths(ctx_->days_per_month());
  serving->PublishSnapshot();

  const QueryResult after = snap->engine.Run(query, QueryStrategy::kGuided);
  ExpectBitIdentical(before, after);
}

}  // namespace
}  // namespace serve
}  // namespace atypical
