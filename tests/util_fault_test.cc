// FaultPlan must be deterministic per seed and produce exactly the
// advertised damage, so robustness tests can assert exact outcomes.
#include "util/fault.h"

#include <cmath>
#include <map>
#include <numeric>

#include <gtest/gtest.h>

namespace atypical {
namespace {

std::vector<uint8_t> MakeBytes(size_t n) {
  std::vector<uint8_t> bytes(n);
  for (size_t i = 0; i < n; ++i) bytes[i] = static_cast<uint8_t>(i * 37 + 11);
  return bytes;
}

std::vector<AtypicalRecord> MakeStream(int n, int window_stride = 1) {
  std::vector<AtypicalRecord> records;
  for (int i = 0; i < n; ++i) {
    records.push_back({static_cast<SensorId>(i % 7),
                       static_cast<WindowId>(100 + (i / 7) * window_stride),
                       2.5f, kNoEvent});
  }
  return records;
}

TEST(FaultPlanTest, SameSeedSameFaults) {
  for (const uint64_t seed : {1ull, 42ull, 0xdeadbeefull}) {
    FaultPlan a(seed);
    FaultPlan b(seed);
    std::vector<uint8_t> bytes_a = MakeBytes(4096);
    std::vector<uint8_t> bytes_b = bytes_a;
    EXPECT_EQ(a.FlipBit(&bytes_a), b.FlipBit(&bytes_b));
    EXPECT_EQ(bytes_a, bytes_b);
    EXPECT_EQ(a.DuplicateRange(&bytes_a), b.DuplicateRange(&bytes_b));
    EXPECT_EQ(bytes_a, bytes_b);
    EXPECT_EQ(a.TruncateTail(&bytes_a), b.TruncateTail(&bytes_b));
    EXPECT_EQ(bytes_a, bytes_b);

    const std::vector<AtypicalRecord> stream = MakeStream(200);
    EXPECT_EQ(a.DelayRecords(stream, 3), b.DelayRecords(stream, 3));
    EXPECT_EQ(a.DropRecords(stream, 0.3), b.DropRecords(stream, 0.3));
    EXPECT_EQ(a.DuplicateRecords(stream, 0.3),
              b.DuplicateRecords(stream, 0.3));
  }
}

TEST(FaultPlanTest, FlipBitChangesExactlyOneBitInRange) {
  FaultPlan plan(7);
  const std::vector<uint8_t> original = MakeBytes(1024);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<uint8_t> bytes = original;
    const size_t offset = plan.FlipBit(&bytes, 100, 200);
    ASSERT_GE(offset, 100u);
    ASSERT_LT(offset, 200u);
    int differing_bits = 0;
    for (size_t i = 0; i < bytes.size(); ++i) {
      differing_bits += __builtin_popcount(bytes[i] ^ original[i]);
      if (bytes[i] != original[i]) {
        EXPECT_EQ(i, offset);
      }
    }
    EXPECT_EQ(differing_bits, 1);
  }
}

TEST(FaultPlanTest, TruncateTailShrinksWithinBounds) {
  FaultPlan plan(9);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<uint8_t> bytes = MakeBytes(512);
    const size_t new_size = plan.TruncateTail(&bytes, 64);
    EXPECT_EQ(bytes.size(), new_size);
    EXPECT_GE(new_size, 64u);
    EXPECT_LT(new_size, 512u);
  }
}

TEST(FaultPlanTest, DuplicateRangeInsertsAdjacentCopy) {
  FaultPlan plan(11);
  for (int trial = 0; trial < 20; ++trial) {
    const std::vector<uint8_t> original = MakeBytes(512);
    std::vector<uint8_t> bytes = original;
    const size_t offset = plan.DuplicateRange(&bytes, 32);
    const size_t len = bytes.size() - original.size();
    ASSERT_GE(len, 1u);
    ASSERT_LE(len, 32u);
    // Prefix unchanged, range duplicated, suffix shifted.
    for (size_t i = 0; i < offset + len; ++i) EXPECT_EQ(bytes[i], original[i]);
    for (size_t i = 0; i < len; ++i) {
      EXPECT_EQ(bytes[offset + len + i], original[offset + i]);
    }
    for (size_t i = offset + len; i < original.size(); ++i) {
      EXPECT_EQ(bytes[i + len], original[i]);
    }
  }
}

TEST(FaultPlanTest, DropRecordsPreservesOrderAndBounds) {
  FaultPlan plan(13);
  const std::vector<AtypicalRecord> stream = MakeStream(500);
  EXPECT_EQ(plan.DropRecords(stream, 0.0), stream);
  EXPECT_TRUE(plan.DropRecords(stream, 1.0).empty());
  const std::vector<AtypicalRecord> kept = plan.DropRecords(stream, 0.4);
  EXPECT_LT(kept.size(), stream.size());
  EXPECT_GT(kept.size(), 0u);
  // Kept records appear in their original relative order.
  size_t cursor = 0;
  for (const AtypicalRecord& r : kept) {
    while (cursor < stream.size() && !(stream[cursor] == r)) ++cursor;
    ASSERT_LT(cursor, stream.size());
    ++cursor;
  }
}

TEST(FaultPlanTest, DelayRecordsPermutesWithinHorizon) {
  FaultPlan plan(17);
  const std::vector<AtypicalRecord> stream = MakeStream(600);
  const int horizon = 5;
  const std::vector<AtypicalRecord> delayed = plan.DelayRecords(stream, horizon);
  ASSERT_EQ(delayed.size(), stream.size());

  // Same multiset of records.
  auto key = [](const AtypicalRecord& r) {
    return std::make_pair(r.window, r.sensor);
  };
  std::multimap<std::pair<WindowId, SensorId>, float> expected;
  for (const AtypicalRecord& r : stream) {
    expected.emplace(key(r), r.severity_minutes);
  }
  for (const AtypicalRecord& r : delayed) {
    auto it = expected.find(key(r));
    ASSERT_NE(it, expected.end());
    expected.erase(it);
  }
  EXPECT_TRUE(expected.empty());

  // Bounded displacement: no earlier arrival is more than `horizon` windows
  // ahead of any later one.
  WindowId watermark = 0;
  bool some_out_of_order = false;
  for (const AtypicalRecord& r : delayed) {
    if (watermark > r.window) {
      some_out_of_order = true;
      EXPECT_LE(watermark - r.window, static_cast<WindowId>(horizon));
    }
    watermark = std::max(watermark, r.window);
  }
  EXPECT_TRUE(some_out_of_order);  // a 600-record stream should shuffle

  // Zero delay is the identity on a sorted stream.
  EXPECT_EQ(plan.DelayRecords(stream, 0), stream);
}

TEST(FaultPlanTest, DuplicateRecordsInsertsAdjacentCopies) {
  FaultPlan plan(19);
  const std::vector<AtypicalRecord> stream = MakeStream(100);
  const std::vector<AtypicalRecord> doubled = plan.DuplicateRecords(stream, 1.0);
  ASSERT_EQ(doubled.size(), 2 * stream.size());
  for (size_t i = 0; i < stream.size(); ++i) {
    EXPECT_EQ(doubled[2 * i], stream[i]);
    EXPECT_EQ(doubled[2 * i + 1], stream[i]);
  }
  EXPECT_EQ(plan.DuplicateRecords(stream, 0.0), stream);
}

TEST(FaultPlanTest, CorruptRecordsCyclesAllMalformationKinds) {
  FaultPlan plan(23);
  const TimeGrid grid(5);
  const std::vector<AtypicalRecord> stream = MakeStream(40);
  const std::vector<AtypicalRecord> corrupted =
      plan.CorruptRecords(stream, 1.0, grid);
  ASSERT_EQ(corrupted.size(), stream.size());
  int unknown_sensor = 0, nan_severity = 0, negative = 0, excess = 0;
  for (const AtypicalRecord& r : corrupted) {
    if (r.sensor == kInvalidSensor) {
      ++unknown_sensor;
    } else if (std::isnan(r.severity_minutes)) {
      ++nan_severity;
    } else if (r.severity_minutes < 0.0f) {
      ++negative;
    } else if (r.severity_minutes >
               static_cast<float>(grid.window_minutes())) {
      ++excess;
    }
  }
  // Every record corrupted, round-robin over the four kinds.
  EXPECT_EQ(unknown_sensor, 10);
  EXPECT_EQ(nan_severity, 10);
  EXPECT_EQ(negative, 10);
  EXPECT_EQ(excess, 10);
  EXPECT_EQ(plan.CorruptRecords(stream, 0.0, grid), stream);
}

}  // namespace
}  // namespace atypical
