// End-to-end streamed≡batch equivalence: records → RobustStreamingEventBuilder
// → IncrementalIntegrator::Finalize() must be bit-identical — cluster ids
// included — to the batch pipeline (records → RetrieveMicroClusters →
// IntegrateClusters) over the same accepted records, including mangled
// feeds where the guard quarantines or reorders part of the input, and
// budget-tripped partial results.
#include <algorithm>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "analytics/report.h"
#include "core/event_retrieval.h"
#include "core/incremental_integration.h"
#include "core/ingest.h"
#include "core/integration.h"
#include "gen/workload.h"
#include "util/fault.h"

namespace atypical {
namespace {

void ExpectIdentical(const std::vector<AtypicalCluster>& batch,
                     const std::vector<AtypicalCluster>& streamed) {
  ASSERT_EQ(batch.size(), streamed.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    const AtypicalCluster& b = batch[i];
    const AtypicalCluster& s = streamed[i];
    EXPECT_EQ(b.id, s.id) << "cluster " << i;
    EXPECT_EQ(b.spatial, s.spatial) << "cluster " << i;
    EXPECT_EQ(b.temporal, s.temporal) << "cluster " << i;
    EXPECT_EQ(b.key_mode, s.key_mode) << "cluster " << i;
    EXPECT_EQ(b.micro_ids, s.micro_ids) << "cluster " << i;
    EXPECT_EQ(b.left_child, s.left_child) << "cluster " << i;
    EXPECT_EQ(b.right_child, s.right_child) << "cluster " << i;
    EXPECT_EQ(b.first_day, s.first_day) << "cluster " << i;
    EXPECT_EQ(b.last_day, s.last_day) << "cluster " << i;
    EXPECT_EQ(b.num_records, s.num_records) << "cluster " << i;
  }
}

class StreamingEquivalenceTest : public ::testing::Test {
 public:
  StreamingEquivalenceTest()
      : workload_(MakeWorkload(WorkloadScale::kTiny, 61)),
        grid_(workload_->gen_config.time_grid),
        retrieval_(analytics::DefaultForestParams().retrieval) {}

  struct StreamedRun {
    std::vector<AtypicalCluster> macros;
    std::vector<AtypicalCluster> micros;  // canonical, re-numbered
    std::vector<AtypicalRecord> accepted;  // released order (the tap)
    IntegrationStats stats;
    IngestStats ingest;
  };

  // Full online pipeline: guard → incremental integrator → Finalize.
  StreamedRun RunStreamed(const std::vector<AtypicalRecord>& feed,
                          const IntegrationParams& integration,
                          const IngestOptions& options) {
    StreamedRun run;
    ClusterIdGenerator ids(1);
    IncrementalIntegrator integrator(integration, &ids);
    RobustStreamingEventBuilder guard(workload_->sensors.get(), grid_,
                                      retrieval_, integrator.scratch_ids(),
                                      integrator.AsEmitFn(), options);
    guard.set_accept_tap(
        [&](const AtypicalRecord& r) { run.accepted.push_back(r); });
    for (const AtypicalRecord& r : feed) guard.Add(r);
    guard.Flush();
    run.ingest = guard.stats();
    run.macros = integrator.Finalize(&run.stats, &run.micros);
    return run;
  }

  // Batch pipeline over the accepted records, one generator end to end.
  std::vector<AtypicalCluster> RunBatch(
      const std::vector<AtypicalRecord>& accepted,
      const IntegrationParams& integration,
      std::vector<AtypicalCluster>* out_micros = nullptr,
      IntegrationStats* out_stats = nullptr) {
    ClusterIdGenerator ids(1);
    std::vector<AtypicalCluster> micros = RetrieveMicroClusters(
        accepted, *workload_->sensors, grid_, retrieval_, &ids);
    if (out_micros != nullptr) *out_micros = micros;
    return IntegrateClusters(std::move(micros), integration, &ids, out_stats);
  }

  std::unique_ptr<Workload> workload_;
  TimeGrid grid_;
  RetrievalParams retrieval_;
};

TEST_F(StreamingEquivalenceTest, CleanFeedMatchesBatchAcrossParams) {
  const std::vector<AtypicalRecord> records =
      workload_->generator->GenerateMonthAtypical(0);
  for (const BalanceFunction g :
       {BalanceFunction::kMax, BalanceFunction::kArithmeticMean,
        BalanceFunction::kHarmonicMean}) {
    for (const double delta_sim : {0.25, 0.5}) {
      IntegrationParams integration;
      integration.g = g;
      integration.delta_sim = delta_sim;
      const StreamedRun run = RunStreamed(records, integration, {});
      ASSERT_EQ(run.accepted.size(), records.size());
      std::vector<AtypicalCluster> batch_micros;
      const auto batch = RunBatch(run.accepted, integration, &batch_micros);
      ExpectIdentical(batch_micros, run.micros);
      ExpectIdentical(batch, run.macros);
    }
  }
}

TEST_F(StreamingEquivalenceTest, PermutedFeedMatchesBatchOnReleasedOrder) {
  const std::vector<AtypicalRecord> records =
      workload_->generator->GenerateMonthAtypical(0);
  IntegrationParams integration;
  for (const uint64_t seed : {3ull, 17ull, 99ull}) {
    FaultPlan plan(seed);
    IngestOptions options;
    options.policy = IngestPolicy::kBuffer;
    options.lateness_horizon_windows = 6;
    const std::vector<AtypicalRecord> permuted = plan.DelayRecords(records, 6);
    const StreamedRun run = RunStreamed(permuted, integration, options);
    ASSERT_GT(run.ingest.reordered, 0u) << "seed " << seed;
    ASSERT_EQ(run.accepted.size(), records.size());
    ExpectIdentical(RunBatch(run.accepted, integration), run.macros);
  }
}

TEST_F(StreamingEquivalenceTest, MangledFeedMatchesBatchOnSalvagedRecords) {
  // Quarantined/salvaged inputs: the guard drops malformed and duplicated
  // records; the equivalence contract is over what survives (the accept
  // tap), exactly like degradation_end_to_end's salvage story.
  const std::vector<AtypicalRecord> clean =
      workload_->generator->GenerateMonthAtypical(1);
  FaultPlan plan(5);
  std::vector<AtypicalRecord> feed = plan.DelayRecords(clean, 4);
  feed = plan.DuplicateRecords(std::move(feed), 0.05);
  feed = plan.CorruptRecords(std::move(feed), 0.08, grid_);

  IngestOptions options;
  options.policy = IngestPolicy::kBuffer;
  options.lateness_horizon_windows = 4;
  IntegrationParams integration;
  const StreamedRun run = RunStreamed(feed, integration, options);
  ASSERT_GT(run.ingest.quarantined(), 0u);
  ASSERT_TRUE(run.ingest.Reconciles());
  ASSERT_EQ(run.accepted.size(), run.ingest.accepted);
  ExpectIdentical(RunBatch(run.accepted, integration), run.macros);
}

TEST_F(StreamingEquivalenceTest, BudgetTrippedPartialMatchesBatch) {
  const std::vector<AtypicalRecord> records =
      workload_->generator->GenerateMonthAtypical(0);
  IntegrationParams integration;
  integration.delta_sim = 0.25;
  integration.max_fixpoint_rounds = 2;
  const StreamedRun run = RunStreamed(records, integration, {});
  IntegrationStats batch_stats;
  const auto batch =
      RunBatch(run.accepted, integration, nullptr, &batch_stats);
  EXPECT_FALSE(batch_stats.converged) << "budget did not trip; tighten it";
  EXPECT_EQ(batch_stats.converged, run.stats.converged);
  ExpectIdentical(batch, run.macros);
}

}  // namespace
}  // namespace atypical
