// Wider randomized sweeps of Algorithm 3: every balance function and a grid
// of thresholds/seeds must preserve the fixpoint, conservation, and
// naive/indexed equivalence invariants.
#include <set>

#include <gtest/gtest.h>

#include "core/integration.h"
#include "core/merge.h"
#include "util/random.h"

namespace atypical {
namespace {

std::vector<AtypicalCluster> RandomMicros(int count, uint32_t key_space,
                                          uint64_t seed,
                                          ClusterIdGenerator* ids) {
  Rng rng(seed);
  std::vector<AtypicalCluster> out;
  for (int i = 0; i < count; ++i) {
    AtypicalCluster c;
    c.id = ids->Next();
    c.micro_ids = {c.id};
    const int n = 1 + static_cast<int>(rng.UniformInt(uint64_t{8}));
    for (int j = 0; j < n; ++j) {
      c.spatial.Add(static_cast<uint32_t>(rng.UniformInt(uint64_t{key_space})),
                    rng.Uniform(0.5, 15.0));
      c.temporal.Add(
          static_cast<uint32_t>(rng.UniformInt(uint64_t{key_space})),
          rng.Uniform(0.5, 15.0));
    }
    out.push_back(std::move(c));
  }
  return out;
}

struct StressCase {
  BalanceFunction g;
  double delta_sim;
  uint64_t seed;
};

class IntegrationStressTest : public ::testing::TestWithParam<StressCase> {};

TEST_P(IntegrationStressTest, InvariantsHold) {
  const StressCase c = GetParam();
  ClusterIdGenerator ids(1);
  std::vector<AtypicalCluster> micros = RandomMicros(90, 14, c.seed, &ids);

  std::set<ClusterId> input_ids;
  double input_mass = 0.0;
  for (const auto& m : micros) {
    input_ids.insert(m.id);
    input_mass += m.severity();
  }

  IntegrationParams params;
  params.g = c.g;
  params.delta_sim = c.delta_sim;
  IntegrationStats stats;
  const auto macros = IntegrateClusters(micros, params, &ids, &stats);

  // Conservation + partition of micro ids.
  std::set<ClusterId> output_ids;
  double output_mass = 0.0;
  for (const auto& macro : macros) {
    output_mass += macro.severity();
    for (ClusterId id : macro.micro_ids) {
      ASSERT_TRUE(output_ids.insert(id).second);
    }
  }
  EXPECT_EQ(output_ids, input_ids);
  EXPECT_NEAR(output_mass, input_mass, 1e-6);

  // Fixpoint: no output pair above the threshold.
  for (size_t i = 0; i < macros.size(); ++i) {
    for (size_t j = i + 1; j < macros.size(); ++j) {
      ASSERT_LE(Similarity(macros[i], macros[j], c.g), c.delta_sim);
    }
  }

  // Naive path agrees exactly.
  IntegrationParams naive = params;
  naive.use_candidate_index = false;
  ClusterIdGenerator naive_ids(1u << 20);
  const auto reference = IntegrateClusters(micros, naive, &naive_ids);
  ASSERT_EQ(macros.size(), reference.size());
  for (size_t i = 0; i < macros.size(); ++i) {
    ASSERT_EQ(macros[i].micro_ids, reference[i].micro_ids);
  }
}

std::vector<StressCase> MakeCases() {
  std::vector<StressCase> cases;
  const BalanceFunction functions[] = {
      BalanceFunction::kMax, BalanceFunction::kMin,
      BalanceFunction::kArithmeticMean, BalanceFunction::kGeometricMean,
      BalanceFunction::kHarmonicMean};
  uint64_t seed = 1;
  for (const BalanceFunction g : functions) {
    for (const double delta_sim : {0.25, 0.5, 0.75}) {
      cases.push_back(StressCase{g, delta_sim, seed++});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, IntegrationStressTest,
                         ::testing::ValuesIn(MakeCases()));

TEST(IntegrationStressOrderTest, MaxMergesAtLeastAsMuchAsMin) {
  // Balance(max) >= Balance(min) pointwise does not guarantee fewer output
  // clusters for min in general (hard clustering), but mass-weighted
  // integration depth should follow the ordering on average over seeds.
  int max_wins = 0;
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    ClusterIdGenerator ids(1);
    const auto micros = RandomMicros(60, 10, seed, &ids);
    IntegrationParams with_max;
    with_max.g = BalanceFunction::kMax;
    IntegrationParams with_min;
    with_min.g = BalanceFunction::kMin;
    ClusterIdGenerator ids_a(1u << 20);
    ClusterIdGenerator ids_b(1u << 21);
    const size_t n_max = IntegrateClusters(micros, with_max, &ids_a).size();
    const size_t n_min = IntegrateClusters(micros, with_min, &ids_b).size();
    if (n_max <= n_min) ++max_wins;
  }
  EXPECT_GE(max_wins, 8);
}

TEST(IntegrationStressScaleTest, LargeInputCompletes) {
  // 1,500 clusters through the candidate-index path stays well under a
  // second and returns a valid partition.
  ClusterIdGenerator ids(1);
  const auto micros = RandomMicros(1500, 4000, 99, &ids);
  IntegrationStats stats;
  const auto macros =
      IntegrateClusters(micros, IntegrationParams{}, &ids, &stats);
  EXPECT_EQ(stats.input_clusters, 1500u);
  EXPECT_EQ(stats.output_clusters, macros.size());
  EXPECT_LT(stats.similarity_checks, 1500u * 1500u / 4);
}

}  // namespace
}  // namespace atypical
