#include "core/temporal_key.h"

#include <gtest/gtest.h>

namespace atypical {
namespace {

TEST(TemporalKeyTest, AbsoluteModeIsIdentity) {
  const TimeGrid grid(15);
  const WindowId w = grid.MakeWindow(3, 40);
  EXPECT_EQ(TemporalKey(w, grid, TemporalKeyMode::kAbsolute), w);
}

TEST(TemporalKeyTest, TimeOfDayModeFoldsDays) {
  const TimeGrid grid(15);
  const uint32_t key0 =
      TemporalKey(grid.MakeWindow(0, 32), grid, TemporalKeyMode::kTimeOfDay);
  const uint32_t key5 =
      TemporalKey(grid.MakeWindow(5, 32), grid, TemporalKeyMode::kTimeOfDay);
  EXPECT_EQ(key0, 32u);
  EXPECT_EQ(key0, key5);
  EXPECT_NE(key0, TemporalKey(grid.MakeWindow(0, 33), grid,
                              TemporalKeyMode::kTimeOfDay));
}

TEST(WithTemporalKeyModeTest, SameModeIsCopy) {
  const TimeGrid grid(15);
  AtypicalCluster c;
  c.id = 4;
  c.temporal.Add(100, 5.0);
  const AtypicalCluster out =
      WithTemporalKeyMode(c, grid, TemporalKeyMode::kAbsolute);
  EXPECT_EQ(out.temporal.entries(), c.temporal.entries());
  EXPECT_EQ(out.id, 4u);
}

TEST(WithTemporalKeyModeTest, RekeyAggregatesSameTimeOfDay) {
  const TimeGrid grid(15);
  AtypicalCluster c;
  c.id = 9;
  c.spatial.Add(1, 12.0);
  // Same time of day on three different days, plus one other window.
  c.temporal.Add(grid.MakeWindow(0, 32), 3.0);
  c.temporal.Add(grid.MakeWindow(1, 32), 4.0);
  c.temporal.Add(grid.MakeWindow(2, 32), 2.0);
  c.temporal.Add(grid.MakeWindow(1, 40), 3.0);

  const AtypicalCluster out =
      WithTemporalKeyMode(c, grid, TemporalKeyMode::kTimeOfDay);
  EXPECT_TRUE(out.key_mode == TemporalKeyMode::kTimeOfDay);
  EXPECT_EQ(out.temporal.size(), 2u);
  EXPECT_DOUBLE_EQ(out.temporal.Get(32), 9.0);
  EXPECT_DOUBLE_EQ(out.temporal.Get(40), 3.0);
  // Severity and SF untouched.
  EXPECT_DOUBLE_EQ(out.temporal.total(), c.temporal.total());
  EXPECT_EQ(out.spatial.entries(), c.spatial.entries());
}

TEST(WithTemporalKeyModeTest, MetadataSurvives) {
  const TimeGrid grid(15);
  AtypicalCluster c;
  c.id = 2;
  c.micro_ids = {2};
  c.first_day = 4;
  c.last_day = 6;
  c.num_records = 17;
  c.dominant_true_event = 99;
  c.temporal.Add(grid.MakeWindow(4, 10), 5.0);
  const AtypicalCluster out =
      WithTemporalKeyMode(c, grid, TemporalKeyMode::kTimeOfDay);
  EXPECT_EQ(out.id, 2u);
  EXPECT_EQ(out.micro_ids, c.micro_ids);
  EXPECT_EQ(out.first_day, 4);
  EXPECT_EQ(out.last_day, 6);
  EXPECT_EQ(out.num_records, 17);
  EXPECT_EQ(out.dominant_true_event, 99u);
}

TEST(WithTemporalKeyModeDeathTest, CannotRecoverAbsoluteKeys) {
  const TimeGrid grid(15);
  AtypicalCluster c;
  c.key_mode = TemporalKeyMode::kTimeOfDay;
  c.temporal.Add(32, 5.0);
  EXPECT_DEATH((void)WithTemporalKeyMode(c, grid, TemporalKeyMode::kAbsolute),
               "cannot recover");
}

}  // namespace
}  // namespace atypical
