#include "ext/corroboration_filter.h"

#include <gtest/gtest.h>

#include "gen/workload.h"

namespace atypical {
namespace ext {
namespace {

class CorroborationTest : public ::testing::Test {
 protected:
  CorroborationTest()
      : workload_(MakeWorkload(WorkloadScale::kTiny, 31)), grid_(15) {}

  std::unique_ptr<Workload> workload_;
  TimeGrid grid_;
};

TEST_F(CorroborationTest, IsolatedRecordDropped) {
  // One lone record has zero corroborators.
  const std::vector<AtypicalRecord> records = {
      {0, grid_.MakeWindow(0, 40), 5.0f, kNoEvent}};
  CorroborationStats stats;
  const auto kept = FilterTrustworthy(records, *workload_->sensors, grid_,
                                      CorroborationParams{}, &stats);
  EXPECT_TRUE(kept.empty());
  EXPECT_EQ(stats.input_records, 1u);
  EXPECT_EQ(stats.dropped_records, 1u);
}

TEST_F(CorroborationTest, CorroboratedPairKept) {
  // Two records at the same sensor in adjacent-enough windows corroborate
  // each other (δt default 15 requires interval < 15; same window works).
  const WindowId w = grid_.MakeWindow(0, 40);
  const std::vector<AtypicalRecord> records = {
      {0, w, 5.0f, kNoEvent}, {0, w, 4.0f, kNoEvent}};
  CorroborationStats stats;
  const auto kept = FilterTrustworthy(records, *workload_->sensors, grid_,
                                      CorroborationParams{}, &stats);
  EXPECT_EQ(kept.size(), 2u);
  EXPECT_EQ(stats.kept_records, 2u);
}

TEST_F(CorroborationTest, MinCorroboratorsZeroKeepsEverything) {
  const std::vector<AtypicalRecord> records = {
      {0, grid_.MakeWindow(0, 40), 5.0f, kNoEvent}};
  CorroborationParams params;
  params.min_corroborators = 0;
  const auto kept =
      FilterTrustworthy(records, *workload_->sensors, grid_, params);
  EXPECT_EQ(kept.size(), 1u);
}

TEST_F(CorroborationTest, HigherBarDropsMore) {
  const std::vector<AtypicalRecord> records =
      workload_->generator->GenerateMonthAtypical(0);
  CorroborationParams loose;
  loose.min_corroborators = 1;
  CorroborationParams strict;
  strict.min_corroborators = 6;
  const auto kept_loose =
      FilterTrustworthy(records, *workload_->sensors, grid_, loose);
  const auto kept_strict =
      FilterTrustworthy(records, *workload_->sensors, grid_, strict);
  EXPECT_LE(kept_strict.size(), kept_loose.size());
  EXPECT_LE(kept_loose.size(), records.size());
}

TEST_F(CorroborationTest, GeneratedEventsSurviveMostly) {
  // Real (generated) events are spatially coherent, so the default filter
  // keeps the bulk of their records.
  const std::vector<AtypicalRecord> records =
      workload_->generator->GenerateMonthAtypical(0);
  CorroborationStats stats;
  FilterTrustworthy(records, *workload_->sensors, grid_,
                    CorroborationParams{}, &stats);
  EXPECT_GT(static_cast<double>(stats.kept_records) /
                static_cast<double>(stats.input_records),
            0.6);
}

TEST_F(CorroborationTest, OrderPreserved) {
  const std::vector<AtypicalRecord> records =
      workload_->generator->GenerateMonthAtypical(0);
  const auto kept = FilterTrustworthy(records, *workload_->sensors, grid_,
                                      CorroborationParams{});
  // kept must be a subsequence of records.
  size_t pos = 0;
  for (const AtypicalRecord& k : kept) {
    while (pos < records.size() && !(records[pos] == k)) ++pos;
    ASSERT_LT(pos, records.size());
    ++pos;
  }
}

}  // namespace
}  // namespace ext
}  // namespace atypical
