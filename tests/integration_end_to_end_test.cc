// Full pipeline: generate → persist → re-read → scan atypical → forest →
// cube → All/Pru/Gui queries → metrics.  This is the system the paper's
// Fig. 2 describes, exercised end to end.
#include <cstdio>

#include <gtest/gtest.h>

#include "analytics/ground_truth.h"
#include "analytics/metrics.h"
#include "analytics/report.h"
#include "storage/reader.h"
#include "storage/writer.h"
#include "util/logging.h"

namespace atypical {
namespace {

class EndToEndTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    workload_ = MakeWorkload(WorkloadScale::kTiny, 41).release();
    const TimeGrid grid = workload_->gen_config.time_grid;

    // Offline construction (Fig. 2 left): write months to disk, scan them
    // back (PR), build the forest (AC) and the atypical cube (MC).
    forest_ = new AtypicalForest(workload_->sensors.get(), grid,
                                 analytics::DefaultForestParams());
    cube_ = new cube::BottomUpCube();
    for (int month = 0; month < 2; ++month) {
      const Dataset ds = workload_->generator->GenerateMonth(month);
      const std::string path = ::testing::TempDir() + "/e2e_month" +
                               std::to_string(month) + ".atyp";
      CHECK_OK(storage::WriteDataset(ds, path).status());
      Result<storage::DatasetReader> reader =
          storage::DatasetReader::Open(path);
      CHECK_OK(reader.status());
      std::vector<AtypicalRecord> atypical;
      const Result<int64_t> scanned =
          reader->ScanAtypical([&](const AtypicalRecord& r) {
            atypical.push_back(r);
          });
      CHECK_OK(scanned.status());
      forest_->AddRecords(atypical);
      cube_->MergeFrom(cube::BottomUpCube::FromAtypical(
          atypical, *workload_->regions, grid));
      std::remove(path.c_str());
    }
  }

  static void TearDownTestSuite() {
    delete forest_;
    delete cube_;
    delete workload_;
  }

  QueryEngine Engine() {
    return QueryEngine(workload_->sensors.get(), workload_->regions.get(),
                       forest_, cube_, analytics::DefaultEngineOptions());
  }

  AnalyticalQuery WholeArea(int days) {
    AnalyticalQuery q;
    q.area = workload_->sensors->bounds();
    q.days = DayRange{0, days - 1};
    return q;
  }

  static Workload* workload_;
  static AtypicalForest* forest_;
  static cube::BottomUpCube* cube_;
};

Workload* EndToEndTest::workload_ = nullptr;
AtypicalForest* EndToEndTest::forest_ = nullptr;
cube::BottomUpCube* EndToEndTest::cube_ = nullptr;

TEST_F(EndToEndTest, ForestHoldsBothMonths) {
  EXPECT_EQ(forest_->Days().size(), 14u);
  EXPECT_GT(forest_->num_micro_clusters(), 20u);
}

TEST_F(EndToEndTest, AllStrategyRecallIsPerfect) {
  const AnalyticalQuery query = WholeArea(14);
  const QueryResult all = Engine().Run(query, QueryStrategy::kAll);
  const analytics::GroundTruth gt = analytics::ComputeGroundTruth(all);
  ASSERT_GT(gt.significant.size(), 0u) << "workload produced no significant "
                                          "clusters; calibration is off";
  const auto severities = forest_->MicroSeverities(query.days);
  const analytics::PrecisionRecall pr =
      analytics::EvaluateMass(all, gt, severities);
  EXPECT_DOUBLE_EQ(pr.recall, 1.0);
  EXPECT_GT(pr.precision, 0.3);
}

TEST_F(EndToEndTest, GuidedMatchesAllOnSignificantMassAndIsCheaper) {
  const AnalyticalQuery query = WholeArea(14);
  const QueryResult all = Engine().Run(query, QueryStrategy::kAll);
  const QueryResult gui = Engine().Run(query, QueryStrategy::kGuided);
  const analytics::GroundTruth gt = analytics::ComputeGroundTruth(all);
  const auto severities = forest_->MicroSeverities(query.days);
  const analytics::PrecisionRecall pr_gui =
      analytics::EvaluateMass(gui, gt, severities);
  const analytics::PrecisionRecall pr_all =
      analytics::EvaluateMass(all, gt, severities);
  EXPECT_GT(pr_gui.recall, 0.95);
  EXPECT_GE(pr_gui.precision, pr_all.precision);
  EXPECT_LT(gui.cost.input_micro_clusters, all.cost.input_micro_clusters);
}

TEST_F(EndToEndTest, PruneTradesRecallForPrecision) {
  const AnalyticalQuery query = WholeArea(14);
  const QueryResult all = Engine().Run(query, QueryStrategy::kAll);
  const QueryResult pru = Engine().Run(query, QueryStrategy::kPrune);
  const analytics::GroundTruth gt = analytics::ComputeGroundTruth(all);
  const auto severities = forest_->MicroSeverities(query.days);
  const analytics::PrecisionRecall pr_pru =
      analytics::EvaluateMass(pru, gt, severities);
  const analytics::PrecisionRecall pr_all =
      analytics::EvaluateMass(all, gt, severities);
  EXPECT_GE(pr_pru.precision, pr_all.precision);
  EXPECT_LT(pr_pru.recall, 1.0);
  EXPECT_LE(pru.cost.input_micro_clusters,
            all.cost.input_micro_clusters * 3 / 4);
}

TEST_F(EndToEndTest, WeeklyQueriesAgreeWithMaterializedWeeks) {
  // Integrating day micros online must conserve severity mass exactly as
  // offline materialization does.
  forest_->MaterializeWeeks();
  const auto& week0 = forest_->MacrosOfWeek(0);
  double offline_mass = 0.0;
  for (const AtypicalCluster& c : week0) offline_mass += c.severity();

  const QueryResult online = Engine().Run(WholeArea(7), QueryStrategy::kAll);
  double online_mass = 0.0;
  for (const AtypicalCluster& c : online.clusters) {
    online_mass += c.severity();
  }
  EXPECT_NEAR(online_mass, offline_mass, 1e-6);
}

TEST_F(EndToEndTest, DominantEventLabelsTraceBackToGenerator) {
  // Micro-clusters recover the generator's planted events: most micros map
  // to exactly one ground-truth event id.
  int labeled = 0;
  int total = 0;
  for (int day : forest_->Days()) {
    for (const AtypicalCluster& c : forest_->MicrosOfDay(day)) {
      ++total;
      if (c.dominant_true_event != kNoEvent) ++labeled;
    }
  }
  EXPECT_EQ(labeled, total);
}

TEST_F(EndToEndTest, QueryAnswersThePaperIntroQuestions) {
  // Example 1's three questions have concrete answers in the cluster model.
  const QueryResult result = Engine().Run(WholeArea(14), QueryStrategy::kAll);
  const analytics::GroundTruth gt = analytics::ComputeGroundTruth(result);
  ASSERT_FALSE(gt.significant.empty());
  const AtypicalCluster& top = gt.significant.front();
  // (1) Where: the hottest sensor exists and is a real sensor.
  const FeatureVector::Entry where = top.spatial.Top();
  EXPECT_LT(where.key,
            static_cast<uint32_t>(workload_->sensors->num_sensors()));
  // (2) When: the peak window is a valid time of day.
  const FeatureVector::Entry when = top.temporal.Top();
  EXPECT_LT(when.key, static_cast<uint32_t>(
                          workload_->gen_config.time_grid.WindowsPerDay()));
  // (3) How serious: severity on the top sensor is a large share of a
  // sensible total.
  EXPECT_GT(where.severity, 0.0);
  EXPECT_LE(where.severity, top.severity());
}

}  // namespace
}  // namespace atypical
