// Writer crash-consistency contract: DatasetWriter assembles each block
// fully in memory (CRC before header) and writes it as one flushed
// contiguous write, so a crash tears at most the final in-flight block.
// The sweep below truncates the image at EVERY byte boundary of the last
// block and requires the salvage reader to recover every earlier block
// intact — no cut point may lose more than the block it lands in.
#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "gen/workload.h"
#include "storage/reader.h"
#include "storage/writer.h"
#include "util/fault.h"
#include "util/logging.h"

namespace atypical {
namespace storage {
namespace {

constexpr uint32_t kBlockRecords = 64;
constexpr size_t kDataStart = sizeof(kMagic) + kFileHeaderBytes;
constexpr size_t kFullBlockBytes =
    kBlockHeaderBytes + kBlockRecords * kWireRecordBytes;

class WriterCrashTest : public ::testing::Test {
 protected:
  WriterCrashTest() {
    const auto workload = MakeWorkload(WorkloadScale::kTiny, 4);
    const Dataset full = workload->generator->GenerateMonth(0);
    // 4 full blocks: the sweep wants several flushed blocks before the torn
    // one, and an exact multiple keeps BlockCount() uniform.
    std::vector<Reading> slice(full.readings().begin(),
                               full.readings().begin() + 4 * kBlockRecords);
    dataset_ = Dataset(full.meta(), std::move(slice));
    path_ = ::testing::TempDir() + "/writer_crash_test.atyp";
    WriterOptions options;
    options.block_records = kBlockRecords;
    CHECK_OK(WriteDataset(dataset_, path_, options).status());
    std::ifstream in(path_, std::ios::binary);
    pristine_.assign(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
  }
  ~WriterCrashTest() override { std::remove(path_.c_str()); }

  uint64_t NumBlocks() const { return 4; }
  uint64_t NumRecords() const {
    return static_cast<uint64_t>(dataset_.num_readings());
  }

  void WriteBytes(const std::vector<uint8_t>& bytes) {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
  }

  Dataset dataset_;
  std::string path_;
  std::vector<uint8_t> pristine_;
};

TEST_F(WriterCrashTest, ImageLayoutMatchesGeometry) {
  // The sweep below depends on the writer's fixed layout; pin it.
  ASSERT_EQ(pristine_.size(),
            kDataStart + NumBlocks() * kFullBlockBytes + kFooterBytes);
}

// The acceptance sweep: cut the file at every byte boundary of the last
// block (from its first header byte through its final payload byte) and
// demand all three leading blocks back, bit-exact.
TEST_F(WriterCrashTest, TornFinalBlockIsAlwaysRecoverable) {
  const size_t last_block_offset = kDataStart + 3 * kFullBlockBytes;
  const uint64_t survivors = 3 * kBlockRecords;
  for (size_t cut = last_block_offset;
       cut < last_block_offset + kFullBlockBytes; ++cut) {
    std::vector<uint8_t> bytes = pristine_;
    FaultPlan::TruncateTo(&bytes, cut);
    WriteBytes(bytes);

    ReaderOptions options;
    options.salvage = true;
    SalvageReport report;
    const Result<Dataset> got = ReadDataset(path_, options, &report);
    ASSERT_TRUE(got.ok()) << "cut=" << cut << ": " << got.status().ToString();
    ASSERT_EQ(static_cast<uint64_t>(got->num_readings()), survivors)
        << "cut=" << cut;
    EXPECT_EQ(report.records_recovered, survivors);
    EXPECT_TRUE(report.footer_missing) << "cut=" << cut;
    for (size_t i = 0; i < survivors; ++i) {
      ASSERT_EQ(got->readings()[i].window, dataset_.readings()[i].window);
      ASSERT_EQ(got->readings()[i].sensor, dataset_.readings()[i].sensor);
    }
  }
}

// Cuts inside the footer lose no records at all.
TEST_F(WriterCrashTest, TornFooterLosesNoRecords) {
  for (size_t tail = 1; tail <= kFooterBytes; ++tail) {
    std::vector<uint8_t> bytes = pristine_;
    FaultPlan::TruncateTo(&bytes, pristine_.size() - tail);
    WriteBytes(bytes);

    ReaderOptions options;
    options.salvage = true;
    SalvageReport report;
    const Result<Dataset> got = ReadDataset(path_, options, &report);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(static_cast<uint64_t>(got->num_readings()), NumRecords());
    EXPECT_TRUE(report.footer_missing);
    EXPECT_EQ(report.records_recovered, NumRecords());
  }
}

// The streaming writer and the one-shot WriteDataset produce identical
// bytes: the refactor may not change the format.
TEST_F(WriterCrashTest, StreamingWriterMatchesOneShot) {
  const std::string stream_path =
      ::testing::TempDir() + "/writer_crash_stream.atyp";
  WriterOptions options;
  options.block_records = kBlockRecords;
  Result<DatasetWriter> writer =
      DatasetWriter::Open(stream_path, dataset_.meta(), options);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  // Feed in uneven slices to exercise the pending buffer.
  const std::vector<Reading>& all = dataset_.readings();
  size_t pos = 0;
  for (const size_t step : {7UL, 100UL, 64UL}) {
    const size_t n = std::min(step, all.size() - pos);
    ASSERT_TRUE(writer->Append({all.begin() + static_cast<ptrdiff_t>(pos),
                                all.begin() + static_cast<ptrdiff_t>(pos + n)})
                    .ok());
    pos += n;
  }
  ASSERT_TRUE(
      writer->Append({all.begin() + static_cast<ptrdiff_t>(pos), all.end()})
          .ok());
  ASSERT_TRUE(writer->Finish().ok());
  EXPECT_EQ(writer->records_written(), NumRecords());

  std::ifstream in(stream_path, std::ios::binary);
  const std::vector<uint8_t> streamed(
      (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  std::remove(stream_path.c_str());
  EXPECT_EQ(streamed, pristine_);
}

// Append/Finish on a finished or failed writer fail loudly instead of
// corrupting the file.
TEST_F(WriterCrashTest, FinishedWriterRejectsFurtherUse) {
  const std::string stream_path =
      ::testing::TempDir() + "/writer_crash_reuse.atyp";
  WriterOptions options;
  options.block_records = kBlockRecords;
  Result<DatasetWriter> writer =
      DatasetWriter::Open(stream_path, dataset_.meta(), options);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer->Append(dataset_.readings()).ok());
  ASSERT_TRUE(writer->Finish().ok());
  EXPECT_EQ(writer->Append(dataset_.readings()).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(writer->Finish().code(), StatusCode::kFailedPrecondition);
  std::remove(stream_path.c_str());
}

TEST_F(WriterCrashTest, ZeroBlockRecordsIsRejected) {
  WriterOptions options;
  options.block_records = 0;
  EXPECT_EQ(DatasetWriter::Open(path_, dataset_.meta(), options)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace storage
}  // namespace atypical
