// Shared fixtures for the serving-layer tests: build a ServingForest from an
// ExperimentContext, and assert the serving contract's bit-identity — two
// QueryResults equal in every answer-bearing field, ids included (timings
// are wall-clock and excluded by design; see DESIGN §16).
#ifndef ATYPICAL_TESTS_SERVE_TEST_UTIL_H_
#define ATYPICAL_TESTS_SERVE_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <memory>

#include "analytics/report.h"
#include "core/query.h"
#include "serve/snapshot.h"

namespace atypical {
namespace serve {

// Deep answer equality (no tolerance): clusters with ids, features,
// lineage; threshold; completeness; the deterministic cost fields.  Returns
// false on the first difference so concurrent callers (the pounding test)
// can count failures without gtest assertions in the hot loop.
inline bool BitIdentical(const QueryResult& a, const QueryResult& b) {
  if (a.threshold != b.threshold) return false;
  if (a.num_sensors_in_w != b.num_sensors_in_w) return false;
  if (a.clusters.size() != b.clusters.size()) return false;
  for (size_t i = 0; i < a.clusters.size(); ++i) {
    const AtypicalCluster& x = a.clusters[i];
    const AtypicalCluster& y = b.clusters[i];
    if (x.id != y.id || x.left_child != y.left_child ||
        x.right_child != y.right_child || x.first_day != y.first_day ||
        x.last_day != y.last_day || x.num_records != y.num_records ||
        x.key_mode != y.key_mode || x.micro_ids != y.micro_ids ||
        !(x.spatial == y.spatial) || !(x.temporal == y.temporal)) {
      return false;
    }
  }
  const DataCompleteness& ca = a.completeness;
  const DataCompleteness& cb = b.completeness;
  if (ca.days_in_range != cb.days_in_range ||
      ca.days_with_data != cb.days_with_data ||
      ca.days_degraded != cb.days_degraded ||
      ca.records_lost != cb.records_lost ||
      ca.records_quarantined != cb.records_quarantined ||
      ca.integration_converged != cb.integration_converged) {
    return false;
  }
  return a.cost.input_micro_clusters == b.cost.input_micro_clusters &&
         a.cost.micro_clusters_in_range == b.cost.micro_clusters_in_range &&
         a.cost.red_zones == b.cost.red_zones &&
         a.cost.regions_checked == b.cost.regions_checked;
}

inline void ExpectBitIdentical(const QueryResult& a, const QueryResult& b) {
  EXPECT_TRUE(BitIdentical(a, b));
  // Re-check the headline fields with individual assertions so a failure
  // names what diverged.
  EXPECT_DOUBLE_EQ(a.threshold, b.threshold);
  ASSERT_EQ(a.clusters.size(), b.clusters.size());
  for (size_t i = 0; i < a.clusters.size(); ++i) {
    EXPECT_EQ(a.clusters[i].id, b.clusters[i].id) << "cluster " << i;
    EXPECT_EQ(a.clusters[i].micro_ids, b.clusters[i].micro_ids)
        << "cluster " << i;
  }
}

// A ServingForest over `ctx`'s network/regions/grid with the context's MC
// cube staged; call StageMonth + PublishSnapshot to make data visible.
inline std::unique_ptr<ServingForest> MakeServing(
    const analytics::ExperimentContext& ctx, const QueryEngineOptions& options) {
  auto serving = std::make_unique<ServingForest>(
      &ctx.network(), &ctx.regions(), ctx.time_grid(), ctx.forest_params,
      options);
  serving->staging_cube()->MergeFrom(ctx.atypical_cube);
  return serving;
}

// Adds one generated month's atypical records to the staging forest
// (not visible until the next PublishSnapshot()).
inline void StageMonth(const analytics::ExperimentContext& ctx, int month,
                       ServingForest* serving) {
  serving->staging_forest()->AddRecords(ctx.monthly_atypical[month]);
}

}  // namespace serve
}  // namespace atypical

#endif  // ATYPICAL_TESTS_SERVE_TEST_UTIL_H_
