#include "cps/types.h"

#include <gtest/gtest.h>

namespace atypical {
namespace {

TEST(GeoPointTest, DistanceIsEuclidean) {
  EXPECT_DOUBLE_EQ(DistanceMiles({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(DistanceMiles({1, 1}, {1, 1}), 0.0);
  EXPECT_DOUBLE_EQ(DistanceMiles({-1, 0}, {2, 0}), 3.0);
}

TEST(GeoRectTest, ContainsIsInclusive) {
  const GeoRect r{0, 0, 10, 5};
  EXPECT_TRUE(r.Contains({0, 0}));
  EXPECT_TRUE(r.Contains({10, 5}));
  EXPECT_TRUE(r.Contains({5, 2.5}));
  EXPECT_FALSE(r.Contains({10.1, 2}));
  EXPECT_FALSE(r.Contains({5, -0.1}));
  EXPECT_DOUBLE_EQ(r.Width(), 10.0);
  EXPECT_DOUBLE_EQ(r.Height(), 5.0);
}

TEST(TimeGridTest, WindowsPerDay) {
  EXPECT_EQ(TimeGrid(5).WindowsPerDay(), 288);
  EXPECT_EQ(TimeGrid(15).WindowsPerDay(), 96);
  EXPECT_EQ(TimeGrid(60).WindowsPerDay(), 24);
}

TEST(TimeGridTest, WindowDayConversionsRoundTrip) {
  const TimeGrid grid(15);
  for (int day : {0, 1, 13, 100}) {
    for (int w : {0, 1, 50, 95}) {
      const WindowId id = grid.MakeWindow(day, w);
      EXPECT_EQ(grid.DayOfWindow(id), day);
      EXPECT_EQ(grid.WindowOfDay(id), w);
      EXPECT_EQ(grid.MinuteOfDay(id), w * 15);
    }
  }
}

TEST(TimeGridTest, StartMinuteIsAbsolute) {
  const TimeGrid grid(15);
  EXPECT_EQ(grid.StartMinute(grid.MakeWindow(0, 0)), 0);
  EXPECT_EQ(grid.StartMinute(grid.MakeWindow(0, 4)), 60);
  EXPECT_EQ(grid.StartMinute(grid.MakeWindow(1, 0)), 1440);
  EXPECT_EQ(grid.StartMinute(grid.MakeWindow(2, 2)), 2 * 1440 + 30);
}

TEST(TimeGridTest, IntervalMinutesIsSymmetricWindowGap) {
  const TimeGrid grid(5);
  const WindowId a = grid.MakeWindow(0, 10);
  const WindowId b = grid.MakeWindow(0, 13);
  // Windows 10 and 13 are separated by two full windows: gap = 10 minutes.
  EXPECT_EQ(grid.IntervalMinutes(a, b), 10);
  EXPECT_EQ(grid.IntervalMinutes(b, a), 10);
  EXPECT_EQ(grid.IntervalMinutes(a, a), 0);
  // Adjacent windows touch: gap 0 (also across midnight).
  EXPECT_EQ(grid.IntervalMinutes(a, a + 1), 0);
  EXPECT_EQ(grid.IntervalMinutes(grid.MakeWindow(0, 287),
                                 grid.MakeWindow(1, 0)),
            0);
}

TEST(WindowRangeTest, ContainsAndSize) {
  const WindowRange r{10, 20};
  EXPECT_TRUE(r.Contains(10));
  EXPECT_TRUE(r.Contains(19));
  EXPECT_FALSE(r.Contains(20));
  EXPECT_FALSE(r.Contains(9));
  EXPECT_EQ(r.size(), 10u);
  EXPECT_FALSE(r.empty());
  EXPECT_TRUE((WindowRange{5, 5}).empty());
  EXPECT_EQ((WindowRange{7, 3}).size(), 0u);
}

TEST(DayRangeTest, NumDaysInclusive) {
  EXPECT_EQ((DayRange{0, 6}).NumDays(), 7);
  EXPECT_EQ((DayRange{3, 3}).NumDays(), 1);
  EXPECT_EQ((DayRange{5, 4}).NumDays(), 0);
  EXPECT_EQ(DayRange{}.NumDays(), 0);
}

TEST(DayRangeTest, ContainsDay) {
  const DayRange r{2, 5};
  EXPECT_TRUE(r.ContainsDay(2));
  EXPECT_TRUE(r.ContainsDay(5));
  EXPECT_FALSE(r.ContainsDay(1));
  EXPECT_FALSE(r.ContainsDay(6));
}

TEST(DayRangeTest, ToWindowsCoversWholeDays) {
  const TimeGrid grid(15);
  const DayRange r{1, 2};
  const WindowRange w = r.ToWindows(grid);
  EXPECT_EQ(w.begin, grid.MakeWindow(1, 0));
  EXPECT_EQ(w.end, grid.MakeWindow(3, 0));
  EXPECT_EQ(w.size(), 2u * 96);
  EXPECT_TRUE((DayRange{3, 2}).ToWindows(grid).empty());
}

}  // namespace
}  // namespace atypical
